// Command benchjson converts `go test -bench -benchmem` output on
// stdin into machine-readable JSON, so the Makefile's bench target can
// commit numbers (BENCH_sim.json) next to the human-readable log.
//
// With -out FILE it appends a history entry — keyed by git SHA and
// date — to the file's "history" array instead of overwriting, so the
// committed document accumulates a benchmark timeline across
// revisions. Re-running on the same SHA replaces that SHA's entry
// rather than duplicating it. A legacy single-document file (the
// pre-history format) is migrated into the array on first append.
// Without -out, the single parsed document goes to stdout as before.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric units (e.g. "geo-B" for the
	// radio geometry's resident bytes) that the fixed fields above do
	// not cover.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// MemMeasured records whether the line carried -benchmem fields at
	// all, so a genuine "0 B/op" is distinguishable from an unmeasured
	// run when building the summary.
	MemMeasured bool `json:"-"`
}

// Summary condenses a run into the two series the history gates on:
// allocation rate per benchmark and the geometry-memory curve. Keeping
// them keyed and flat makes a regression diff between two history
// entries a one-line jq, the same way ns_per_op already is.
type Summary struct {
	// BytesPerOp maps each -benchmem benchmark to its B/op, including
	// explicit zeros — the steady-state-alloc gate.
	BytesPerOp map[string]int64 `json:"bytes_per_op,omitempty"`
	// GeometryBytes maps node count (the "n=<count>" sub-benchmark
	// label) to the geometry's resident bytes from the geo-B metric.
	GeometryBytes map[string]float64 `json:"geometry_bytes,omitempty"`
}

// Doc is one benchmark run.
type Doc struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
	Summary *Summary `json:"summary,omitempty"`
}

// Entry is one history element: a run stamped with its revision.
type Entry struct {
	SHA  string `json:"sha"`
	Date string `json:"date"`
	Doc
}

// History is the -out file format.
type History struct {
	History []Entry `json:"history"`
}

func main() {
	var outPath, sha, date string
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		flagVal := func() string {
			i++
			if i >= len(args) {
				fmt.Fprintf(os.Stderr, "benchjson: %s needs a value\n", args[i-1])
				os.Exit(2)
			}
			return args[i]
		}
		switch args[i] {
		case "-out":
			outPath = flagVal()
		case "-sha":
			sha = flagVal()
		case "-date":
			date = flagVal()
		default:
			fmt.Fprintf(os.Stderr, "benchjson: unknown flag %s (have -out, -sha, -date)\n", args[i])
			os.Exit(2)
		}
	}
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if outPath == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if sha == "" {
		sha = gitSHA()
	}
	if date == "" {
		date = time.Now().UTC().Format("2006-01-02")
	}
	if err := appendHistory(outPath, Entry{SHA: sha, Date: date, Doc: *doc}); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// gitSHA asks git for the current revision; outside a repository the
// entry is stamped "unknown" rather than failing the bench run.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// appendHistory loads path (tolerating a missing file and migrating
// the legacy single-document format), upserts the entry by SHA, and
// writes the file back.
func appendHistory(path string, entry Entry) error {
	hist, err := loadHistory(path)
	if err != nil {
		return err
	}
	replaced := false
	for i := range hist.History {
		if hist.History[i].SHA == entry.SHA {
			hist.History[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		hist.History = append(hist.History, entry)
	}
	buf, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// loadHistory reads an existing history file. A legacy file — the
// old overwrite format, a single Doc — becomes the first history
// entry, stamped "pre-history" since its revision is unrecorded.
func loadHistory(path string) (*History, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &History{History: []Entry{}}, nil
	}
	if err != nil {
		return nil, err
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if _, ok := probe["history"]; ok {
		var hist History
		if err := json.Unmarshal(data, &hist); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &hist, nil
	}
	var legacy Doc
	if err := json.Unmarshal(data, &legacy); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(legacy.Results) == 0 {
		return &History{History: []Entry{}}, nil
	}
	return &History{History: []Entry{{SHA: "pre-history", Doc: legacy}}}, nil
}

func parse(sc *bufio.Scanner) (*Doc, error) {
	doc := &Doc{Results: []Result{}}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseLine(line)
			if ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	summarize(doc)
	return doc, nil
}

// summarize derives the gating series from the parsed results; a run
// with neither memory measurements nor geometry metrics keeps a nil
// summary and an unchanged document shape.
func summarize(doc *Doc) {
	s := &Summary{}
	for _, r := range doc.Results {
		if r.MemMeasured {
			if s.BytesPerOp == nil {
				s.BytesPerOp = map[string]int64{}
			}
			s.BytesPerOp[r.Name] = r.BytesPerOp
		}
		if v, ok := r.Metrics["geo-B"]; ok {
			if s.GeometryBytes == nil {
				s.GeometryBytes = map[string]float64{}
			}
			s.GeometryBytes[seriesKey(r.Name)] = v
		}
	}
	if s.BytesPerOp != nil || s.GeometryBytes != nil {
		doc.Summary = s
	}
}

// seriesKey reduces "BenchmarkGeometryBuild/n=250000" to "250000"; a
// name without the n= convention keys the series verbatim.
func seriesKey(name string) string {
	if i := strings.LastIndex(name, "/n="); i >= 0 {
		return name[i+3:]
	}
	return name
}

// parseLine handles one result line, e.g.
//
//	BenchmarkMediumTransmit/active=32-8  2000  36168 ns/op  8051 B/op  210 allocs/op
//
// Unit-carrying fields appear as "<value> <unit>" pairs after the
// iteration count; unknown units are ignored.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -<GOMAXPROCS> suffix the harness appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(val, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			r.MemMeasured = true
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		default:
			// Custom b.ReportMetric units (geo-B, frames/sec, ...).
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = f
			}
		}
	}
	return r, true
}
