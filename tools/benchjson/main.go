// Command benchjson converts `go test -bench -benchmem` output on
// stdin into a JSON document on stdout, so the Makefile's bench target
// can commit machine-readable numbers (BENCH_sim.json) next to the
// human-readable log.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Doc is the emitted document.
type Doc struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Doc, error) {
	doc := &Doc{Results: []Result{}}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseLine(line)
			if ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return doc, nil
}

// parseLine handles one result line, e.g.
//
//	BenchmarkMediumTransmit/active=32-8  2000  36168 ns/op  8051 B/op  210 allocs/op
//
// Unit-carrying fields appear as "<value> <unit>" pairs after the
// iteration count; unknown units are ignored.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -<GOMAXPROCS> suffix the harness appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(val, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	return r, true
}
