package main

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
cpu: AMD EPYC 7B13
BenchmarkMediumTransmit/active=32-8  	    2000	     36168 ns/op	    8051 B/op	     210 allocs/op
BenchmarkKernelHeap-8               	 1000000	      1042 ns/op
some unrelated log line
PASS
ok  	mnp/internal/radio	2.345s
`

func TestParseGolden(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(sampleBench)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.CPU != "AMD EPYC 7B13" {
		t.Fatalf("header = %q/%q/%q", doc.Goos, doc.Goarch, doc.CPU)
	}
	want := []Result{
		{Name: "BenchmarkMediumTransmit/active=32", Iterations: 2000, NsPerOp: 36168, BytesPerOp: 8051, AllocsPerOp: 210},
		{Name: "BenchmarkKernelHeap", Iterations: 1000000, NsPerOp: 1042},
	}
	if len(doc.Results) != len(want) {
		t.Fatalf("parsed %d results, want %d: %+v", len(doc.Results), len(want), doc.Results)
	}
	for i, w := range want {
		if doc.Results[i] != w {
			t.Errorf("result %d = %+v, want %+v", i, doc.Results[i], w)
		}
	}
}

// TestEmitGolden pins the emitted JSON shape end to end, so downstream
// consumers of BENCH_sim.json notice schema drift here first.
func TestEmitGolden(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(sampleBench)))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "goos": "linux",
  "goarch": "amd64",
  "cpu": "AMD EPYC 7B13",
  "results": [
    {
      "name": "BenchmarkMediumTransmit/active=32",
      "iterations": 2000,
      "ns_per_op": 36168,
      "bytes_per_op": 8051,
      "allocs_per_op": 210
    },
    {
      "name": "BenchmarkKernelHeap",
      "iterations": 1000000,
      "ns_per_op": 1042,
      "bytes_per_op": 0,
      "allocs_per_op": 0
    }
  ]
}
`
	if b.String() != golden {
		t.Fatalf("emitted JSON drifted from golden:\n%s", b.String())
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("no benchmarks here\n"))); err == nil {
		t.Fatal("parse accepted input with no benchmark lines")
	}
}

func TestParseLineEdgeCases(t *testing.T) {
	// Name without a -N suffix survives unstripped.
	r, ok := parseLine("BenchmarkPlain 100 5 ns/op")
	if !ok || r.Name != "BenchmarkPlain" || r.Iterations != 100 {
		t.Fatalf("parseLine = %+v, %v", r, ok)
	}
	// Non-numeric iteration count is rejected.
	if _, ok := parseLine("BenchmarkBad abc 5 ns/op"); ok {
		t.Fatal("parseLine accepted a bad iteration count")
	}
	// Short lines are rejected.
	if _, ok := parseLine("BenchmarkShort 100"); ok {
		t.Fatal("parseLine accepted a short line")
	}
	// Unknown units are ignored, known ones still land.
	r, ok = parseLine("BenchmarkMixed-4 10 7 ns/op 3 widgets/op 9 B/op")
	if !ok || r.NsPerOp != 7 || r.BytesPerOp != 9 || r.Name != "BenchmarkMixed" {
		t.Fatalf("parseLine = %+v", r)
	}
}
