package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
cpu: AMD EPYC 7B13
BenchmarkMediumTransmit/active=32-8  	    2000	     36168 ns/op	    8051 B/op	     210 allocs/op
BenchmarkKernelHeap-8               	 1000000	      1042 ns/op
some unrelated log line
PASS
ok  	mnp/internal/radio	2.345s
`

func TestParseGolden(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(sampleBench)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.CPU != "AMD EPYC 7B13" {
		t.Fatalf("header = %q/%q/%q", doc.Goos, doc.Goarch, doc.CPU)
	}
	want := []Result{
		{Name: "BenchmarkMediumTransmit/active=32", Iterations: 2000, NsPerOp: 36168, BytesPerOp: 8051, AllocsPerOp: 210, MemMeasured: true},
		{Name: "BenchmarkKernelHeap", Iterations: 1000000, NsPerOp: 1042},
	}
	if len(doc.Results) != len(want) {
		t.Fatalf("parsed %d results, want %d: %+v", len(doc.Results), len(want), doc.Results)
	}
	for i, w := range want {
		if !reflect.DeepEqual(doc.Results[i], w) {
			t.Errorf("result %d = %+v, want %+v", i, doc.Results[i], w)
		}
	}
}

// TestEmitGolden pins the emitted JSON shape end to end, so downstream
// consumers of BENCH_sim.json notice schema drift here first.
func TestEmitGolden(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(sampleBench)))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "goos": "linux",
  "goarch": "amd64",
  "cpu": "AMD EPYC 7B13",
  "results": [
    {
      "name": "BenchmarkMediumTransmit/active=32",
      "iterations": 2000,
      "ns_per_op": 36168,
      "bytes_per_op": 8051,
      "allocs_per_op": 210
    },
    {
      "name": "BenchmarkKernelHeap",
      "iterations": 1000000,
      "ns_per_op": 1042,
      "bytes_per_op": 0,
      "allocs_per_op": 0
    }
  ],
  "summary": {
    "bytes_per_op": {
      "BenchmarkMediumTransmit/active=32": 8051
    }
  }
}
`
	if b.String() != golden {
		t.Fatalf("emitted JSON drifted from golden:\n%s", b.String())
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("no benchmarks here\n"))); err == nil {
		t.Fatal("parse accepted input with no benchmark lines")
	}
}

// TestHistoryAppend covers the -out lifecycle: fresh file, append of a
// second revision, and upsert when the same SHA is benched again.
func TestHistoryAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sim.json")
	doc, err := parse(bufio.NewScanner(strings.NewReader(sampleBench)))
	if err != nil {
		t.Fatal(err)
	}
	if err := appendHistory(path, Entry{SHA: "aaa1111", Date: "2026-08-01", Doc: *doc}); err != nil {
		t.Fatal(err)
	}
	if err := appendHistory(path, Entry{SHA: "bbb2222", Date: "2026-08-06", Doc: *doc}); err != nil {
		t.Fatal(err)
	}
	hist, err := loadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.History) != 2 || hist.History[0].SHA != "aaa1111" || hist.History[1].SHA != "bbb2222" {
		t.Fatalf("history = %+v", hist.History)
	}
	if hist.History[0].Date != "2026-08-01" || len(hist.History[1].Results) != 2 {
		t.Fatalf("entry contents lost: %+v", hist.History)
	}

	// Re-benching the same SHA replaces its entry in place.
	mod := *doc
	mod.Results = mod.Results[:1]
	if err := appendHistory(path, Entry{SHA: "bbb2222", Date: "2026-08-07", Doc: mod}); err != nil {
		t.Fatal(err)
	}
	hist, err = loadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.History) != 2 {
		t.Fatalf("upsert duplicated: %d entries", len(hist.History))
	}
	if hist.History[1].Date != "2026-08-07" || len(hist.History[1].Results) != 1 {
		t.Fatalf("upsert did not replace: %+v", hist.History[1])
	}
}

// TestHistoryMigratesLegacyFile: the old overwrite-format file becomes
// the first history entry instead of being clobbered.
func TestHistoryMigratesLegacyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sim.json")
	doc, err := parse(bufio.NewScanner(strings.NewReader(sampleBench)))
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendHistory(path, Entry{SHA: "ccc3333", Date: "2026-08-06", Doc: *doc}); err != nil {
		t.Fatal(err)
	}
	hist, err := loadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.History) != 2 {
		t.Fatalf("migration produced %d entries, want 2", len(hist.History))
	}
	if hist.History[0].SHA != "pre-history" || len(hist.History[0].Results) != 2 {
		t.Fatalf("legacy entry = %+v", hist.History[0])
	}
	if hist.History[1].SHA != "ccc3333" {
		t.Fatalf("new entry = %+v", hist.History[1])
	}
}

func TestLoadHistoryRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sim.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadHistory(path); err == nil {
		t.Fatal("garbage file accepted")
	}
}

func TestParseLineEdgeCases(t *testing.T) {
	// Name without a -N suffix survives unstripped.
	r, ok := parseLine("BenchmarkPlain 100 5 ns/op")
	if !ok || r.Name != "BenchmarkPlain" || r.Iterations != 100 {
		t.Fatalf("parseLine = %+v, %v", r, ok)
	}
	// Non-numeric iteration count is rejected.
	if _, ok := parseLine("BenchmarkBad abc 5 ns/op"); ok {
		t.Fatal("parseLine accepted a bad iteration count")
	}
	// Short lines are rejected.
	if _, ok := parseLine("BenchmarkShort 100"); ok {
		t.Fatal("parseLine accepted a short line")
	}
	// Unknown units are captured as metrics; known ones still land.
	r, ok = parseLine("BenchmarkMixed-4 10 7 ns/op 3 widgets/op 9 B/op")
	if !ok || r.NsPerOp != 7 || r.BytesPerOp != 9 || r.Name != "BenchmarkMixed" {
		t.Fatalf("parseLine = %+v", r)
	}
	if r.Metrics["widgets/op"] != 3 {
		t.Fatalf("custom metric lost: %+v", r.Metrics)
	}
}

// TestSummarySeries: -benchmem lines land in bytes_per_op (zeros
// included — the steady-state-alloc gate) and geo-B metrics build the
// node-count-keyed geometry-memory series.
func TestSummarySeries(t *testing.T) {
	const bench = `goos: linux
BenchmarkMediumTransmit/active=1-8  100  370 ns/op  0 B/op  0 allocs/op
BenchmarkGeometryBuild/n=1000-8     50   90000 ns/op  52000 geo-B  24576 B/op  9 allocs/op
BenchmarkGeometryBuild/n=250000-8   2    21000000 ns/op  6500000 geo-B  5000000 B/op  11 allocs/op
BenchmarkKernelHeap-8               1000 1042 ns/op
`
	doc, err := parse(bufio.NewScanner(strings.NewReader(bench)))
	if err != nil {
		t.Fatal(err)
	}
	s := doc.Summary
	if s == nil {
		t.Fatal("no summary built")
	}
	if got, ok := s.BytesPerOp["BenchmarkMediumTransmit/active=1"]; !ok || got != 0 {
		t.Fatalf("zero-alloc benchmark missing from bytes_per_op: %+v (ok=%v)", s.BytesPerOp, ok)
	}
	if _, ok := s.BytesPerOp["BenchmarkKernelHeap"]; ok {
		t.Fatalf("unmeasured benchmark leaked into bytes_per_op: %+v", s.BytesPerOp)
	}
	if s.GeometryBytes["1000"] != 52000 || s.GeometryBytes["250000"] != 6.5e6 {
		t.Fatalf("geometry series = %+v", s.GeometryBytes)
	}
	if len(s.GeometryBytes) != 2 {
		t.Fatalf("geometry series has extra keys: %+v", s.GeometryBytes)
	}
	// The summary survives the history round-trip keyed by SHA.
	path := filepath.Join(t.TempDir(), "BENCH_sim.json")
	if err := appendHistory(path, Entry{SHA: "abc1234", Date: "2026-08-08", Doc: *doc}); err != nil {
		t.Fatal(err)
	}
	hist, err := loadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if hist.History[0].Summary == nil || hist.History[0].Summary.GeometryBytes["250000"] != 6.5e6 {
		t.Fatalf("summary lost in history: %+v", hist.History[0].Summary)
	}
}

func TestSeriesKey(t *testing.T) {
	if k := seriesKey("BenchmarkGeometryBuild/n=1000"); k != "1000" {
		t.Fatalf("seriesKey = %q", k)
	}
	if k := seriesKey("BenchmarkOther"); k != "BenchmarkOther" {
		t.Fatalf("seriesKey fallback = %q", k)
	}
}
