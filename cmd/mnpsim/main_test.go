package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mnp/internal/telemetry"
)

// capture redirects stdout around fn and returns what was printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	_ = w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	_ = r.Close()
	return string(buf[:n]), runErr
}

func TestRunSummary(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-rows", "2", "-cols", "2", "-packets", "16", "-seed", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"completed: all 4 nodes", "mean active radio time"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunReports(t *testing.T) {
	reports := map[string]string{
		"energy":   "per-node energy",
		"traffic":  "messages per minute",
		"parents":  "sender order",
		"progress": "propagation progress",
	}
	for report, want := range reports {
		out, err := capture(t, func() error {
			return run([]string{"-rows", "2", "-cols", "2", "-packets", "16", "-report", report})
		})
		if err != nil {
			t.Fatalf("%s: %v", report, err)
		}
		if !strings.Contains(out, want) {
			t.Errorf("report %s missing %q", report, want)
		}
	}
}

func TestRunTrace(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-rows", "1", "-cols", "2", "-packets", "16", "-trace", "1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"event trace of node 1", "got full program"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q", want)
		}
	}
}

func TestRunBaselineProtocols(t *testing.T) {
	for _, proto := range []string{"deluge", "moap", "xnp"} {
		_, err := capture(t, func() error {
			return run([]string{"-rows", "1", "-cols", "2", "-packets", "16", "-protocol", proto})
		})
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-protocol", "bogus"}); err == nil {
		t.Error("bogus protocol accepted")
	}
	if err := run([]string{"-rows", "0"}); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := capture(t, func() error {
		return run([]string{"-rows", "1", "-cols", "2", "-packets", "16", "-report", "bogus"})
	}); err == nil {
		t.Error("bogus report accepted")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestTelemetryAndLive(t *testing.T) {
	dir := t.TempDir()
	_, err := capture(t, func() error {
		return run([]string{"-rows", "2", "-cols", "2", "-packets", "16", "-seed", "3",
			"-telemetry", dir, "-live"})
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "events.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := telemetry.ReadAll(f)
	if err != nil {
		t.Fatalf("NDJSON stream does not fully parse: %v", err)
	}
	if len(recs) < 10 || recs[0].Type != telemetry.TypeMeta ||
		recs[len(recs)-1].Type != telemetry.TypeSummary {
		t.Fatalf("stream shape wrong: %d records", len(recs))
	}
	if _, err := os.Stat(filepath.Join(dir, "counters.prom")); err != nil {
		t.Error(err)
	}
}
