// Command mnpsim runs one simulated dissemination and prints a report:
//
//	mnpsim -rows 10 -cols 10 -packets 640 -protocol mnp -report energy
//
// Protocols: mnp (default), deluge, moap, xnp, rlnc. Reports: summary
// (default), energy, traffic, parents, progress.
//
// Telemetry and profiling (all default off): -telemetry dir/ streams
// the run as NDJSON plus a Prometheus counters dump; -pprof,
// -cpuprofile and -tracefile capture profiles; -live prints progress
// on stderr.
//
// -shards N partitions the deployment into N spatial shards advanced
// in conservative lockstep (deterministic per (seed, shards); see
// DESIGN.md §4f); -workers controls shard parallelism. -tiles RxC (or
// "auto") switches to 2D tile partitioning with -shards logical
// executors, and -repartition migrates tiles between executors at
// barriers when load skews (results stay a pure function of
// (seed, tile grid); see DESIGN.md §4i).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mnp/internal/experiment"
	"mnp/internal/node"
	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/telemetry"
	"mnp/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mnpsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mnpsim", flag.ContinueOnError)
	var (
		rows     = fs.Int("rows", 10, "grid rows")
		cols     = fs.Int("cols", 10, "grid columns")
		spacing  = fs.Float64("spacing", 10, "inter-node spacing in feet")
		packets  = fs.Int("packets", 640, "program size in 22-byte packets")
		protocol = fs.String("protocol", "mnp", "protocol: mnp, deluge, moap, xnp, rlnc, gossip")
		power    = fs.Int("power", radio.PowerSim, "TinyOS transmit power level (1,3,4,20,50,255)")
		seed     = fs.Int64("seed", 1, "simulation seed")
		shards   = fs.Int("shards", 1, "spatial shards run in lockstep (1 = classic sequential kernel); with -tiles: logical executors")
		workers  = fs.Int("workers", 0, "executor goroutines: 0 auto, 1 inline, N parallel (needs an engine run)")
		tiles    = fs.String("tiles", "", `2D tile grid "RxC" (e.g. 4x4) or "auto"; default: -shards contiguous strips`)
		repart   = fs.Bool("repartition", false, "adaptively migrate tiles between executors at lockstep barriers")
		optim    = fs.Bool("optimistic", false, "speculate windows ahead of the lockstep barrier, rolling back on late cross-tile traffic (needs an engine run)")
		lookahd  = fs.Int("lookahead", 0, "speculation depth in windows for -optimistic (0 = engine default)")
		limit    = fs.Duration("limit", 6*time.Hour, "simulated time limit")
		report   = fs.String("report", "summary", "report: summary, energy, traffic, parents, progress")
		traceID  = fs.Int("trace", -1, "dump the protocol event trace of one node ID (-1 disables)")

		telemetryDir = fs.String("telemetry", "", "write NDJSON events + Prometheus counters into this directory")
		pprofAddr    = fs.String("pprof", "", "serve /debug/pprof and /debug/vars on this address")
		cpuProfile   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		tracePath    = fs.String("tracefile", "", "write a runtime/trace capture to this file")
		live         = fs.Bool("live", false, "report live run progress on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := telemetry.StartProfiling(telemetry.ProfileConfig{
		PprofAddr: *pprofAddr, CPUProfile: *cpuProfile, TracePath: *tracePath,
	})
	if err != nil {
		return err
	}
	defer stopProf()

	var proto experiment.ProtocolKind
	switch strings.ToLower(*protocol) {
	case "mnp":
		proto = experiment.ProtocolMNP
	case "deluge":
		proto = experiment.ProtocolDeluge
	case "moap":
		proto = experiment.ProtocolMOAP
	case "xnp":
		proto = experiment.ProtocolXNP
	case "rlnc":
		proto = experiment.ProtocolRLNC
	case "gossip":
		proto = experiment.ProtocolGossip
	default:
		return fmt.Errorf("unknown protocol %q", *protocol)
	}

	tileRows, tileCols, tileAuto, err := experiment.ParseTileSpec(*tiles)
	if err != nil {
		return err
	}
	setup := experiment.Setup{
		Name:         "mnpsim",
		Rows:         *rows,
		Cols:         *cols,
		Spacing:      *spacing,
		ImagePackets: *packets,
		Protocol:     proto,
		Power:        *power,
		Seed:         *seed,
		Shards:       *shards,
		Workers:      *workers,
		TileRows:     tileRows,
		TileCols:     tileCols,
		TileAuto:     tileAuto,
		Repartition:  *repart,
		Optimistic:   *optim,
		Lookahead:    *lookahd,
		Limit:        *limit,
	}
	// The trace log and telemetry recorder need the run's clock (the
	// kernel sequentially, the engine's replay clock when sharded),
	// which exists only after the deployment is built; bind it lazily.
	var (
		clock func() time.Duration
		tlog  *trace.Log
	)
	lazyNow := func() time.Duration {
		if clock == nil {
			return 0
		}
		return clock()
	}
	var observers node.MultiObserver
	if *traceID >= 0 {
		id := packet.NodeID(*traceID)
		var err error
		tlog, err = trace.NewLog(lazyNow,
			trace.WithNodeFilter(func(n packet.NodeID) bool { return n == id }))
		if err != nil {
			return err
		}
		observers = append(observers, tlog)
	}
	var prog *telemetry.Progress
	if *live {
		prog = telemetry.NewProgress(os.Stderr, "mnpsim", *rows**cols, time.Second)
		observers = append(observers, prog)
	}
	switch len(observers) {
	case 0:
	case 1:
		setup.Observer = observers[0]
	default:
		setup.Observer = observers
	}
	var stream *telemetry.Stream
	if *telemetryDir != "" {
		if err := os.MkdirAll(*telemetryDir, 0o755); err != nil {
			return err
		}
		stream, err = telemetry.CreateStream(filepath.Join(*telemetryDir, "events.ndjson"))
		if err != nil {
			return err
		}
		defer stream.Close()
		rec, err := telemetry.NewRecorder(stream, lazyNow)
		if err != nil {
			return err
		}
		setup.Telemetry = rec
	}
	res, err := experiment.Build(setup)
	if err != nil {
		return err
	}
	clock = res.Now
	res.RunToCompletion()
	res.FinishTelemetry()
	if prog != nil {
		prog.Final()
	}
	if stream != nil {
		counters := res.Counters()
		counters.PublishExpvar("mnp")
		promPath := filepath.Join(*telemetryDir, "counters.prom")
		pf, err := os.Create(promPath)
		if err != nil {
			return err
		}
		if err := counters.WritePrometheus(pf); err != nil {
			pf.Close()
			return err
		}
		if err := pf.Close(); err != nil {
			return err
		}
		if err := stream.Close(); err != nil {
			return fmt.Errorf("telemetry stream: %w", err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: %d NDJSON records in %s, counters in %s\n",
			stream.Lines(), filepath.Join(*telemetryDir, "events.ndjson"), promPath)
	}

	ct := res.CompletionTime
	fmt.Printf("topology: %s (%d nodes), program: %d packets (%.1f KB), protocol: %s, power: %d, seed: %d\n",
		res.Layout.Name(), res.Layout.N(), res.Image.TotalPackets(),
		float64(res.Image.Size())/1024, proto, *power, *seed)
	if res.Completed {
		fmt.Printf("completed: all %d nodes in %s\n", res.Layout.N(), ct.Round(time.Second))
	} else {
		fmt.Printf("INCOMPLETE after %s: %d/%d nodes\n",
			limit.Round(time.Second), res.Network.CompletedCount(), res.Layout.N())
	}
	if res.Engine != nil {
		st := res.Engine.Stats()
		fmt.Printf("engine: tiles %s, executors %d, windows %d, ghosts exported %d, tile migrations %d\n",
			res.TileGrid, res.Engine.Executors(), st.Windows, st.GhostsExported, st.Migrations)
		if *optim {
			fmt.Printf("speculation: %d rounds, %d/%d windows committed, %d rollbacks\n",
				st.SpecRounds, st.SpecCommitted, st.SpecWindows, st.Rollbacks)
		}
	}
	fmt.Printf("mean active radio time: %s (%s excluding initial idle listening)\n",
		res.Collector.MeanActiveRadioTime(ct).Round(time.Second),
		res.Collector.MeanActiveRadioTimeAfterFirstAdv(ct).Round(time.Second))
	fmt.Printf("concurrent same-neighborhood data senders: %d\n", res.Collector.ConcurrencyViolations())

	switch strings.ToLower(*report) {
	case "summary":
	case "energy":
		printEnergy(res)
	case "traffic":
		printTraffic(res)
	case "parents":
		printParents(res)
	case "progress":
		printProgress(res)
	default:
		return fmt.Errorf("unknown report %q", *report)
	}
	if tlog != nil {
		fmt.Printf("\nevent trace of node %d:\n", *traceID)
		if err := tlog.Dump(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func printEnergy(res *experiment.Result) {
	ct := res.CompletionTime
	fmt.Println("\nper-node energy (nAh, Table 1 costs):")
	var total float64
	for i := 0; i < res.Layout.N(); i++ {
		id := packet.NodeID(i)
		l := res.Collector.Ledger(id, ct)
		total += l.Total()
		if i < 10 || i == res.Layout.N()-1 {
			fmt.Printf("  %v: %s\n", id, l)
		} else if i == 10 {
			fmt.Println("  ...")
		}
	}
	fmt.Printf("network total: %.0f nAh (mean %.0f nAh/node)\n",
		total, total/float64(res.Layout.N()))
}

func printTraffic(res *experiment.Result) {
	fmt.Println("\nmessages per minute (adv / req / data):")
	adv := res.Collector.WindowCounts(packet.ClassAdvertisement)
	req := res.Collector.WindowCounts(packet.ClassRequest)
	data := res.Collector.WindowCounts(packet.ClassData)
	for m := 0; m < len(data); m++ {
		a, r := 0, 0
		if m < len(adv) {
			a = adv[m]
		}
		if m < len(req) {
			r = req[m]
		}
		fmt.Printf("  minute %3d: %5d / %5d / %5d\n", m, a, r, data[m])
	}
}

func printParents(res *experiment.Result) {
	fmt.Println()
	for i := 0; i < res.Layout.N(); i++ {
		id := packet.NodeID(i)
		parent, ok := res.Collector.Parent(id)
		switch {
		case id == 0:
			fmt.Printf("  %v: base station\n", id)
		case ok:
			fmt.Printf("  %v <- %v\n", id, parent)
		default:
			fmt.Printf("  %v: no parent recorded\n", id)
		}
	}
	fmt.Print("sender order:")
	for i, id := range res.Collector.SenderOrder() {
		fmt.Printf(" %d:%v", i+1, id)
	}
	fmt.Println()
}

func printProgress(res *experiment.Result) {
	ct := res.CompletionTime
	fmt.Println("\npropagation progress:")
	for pct := 10; pct <= 100; pct += 10 {
		t := ct * time.Duration(pct) / 100
		fmt.Printf("  %3d%% of time: %5.1f%% of nodes hold the program\n",
			pct, 100*res.Collector.CompletedFractionAt(t))
	}
}
