package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	_ = w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	_ = r.Close()
	return string(buf[:n]), runErr
}

func TestList(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"T1", "F5", "F13", "EDEL", "A5"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %s", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"T1"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table 1") {
		t.Errorf("T1 output wrong:\n%s", out)
	}
}

func TestRunMultipleByID(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-seed", "5", "t1", "F5"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "=== T1") || !strings.Contains(out, "=== F5") {
		t.Errorf("multi-run output wrong:\n%s", out)
	}
}

func TestParallelRun(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-parallel", "T1", "F5"}) })
	if err != nil {
		t.Fatal(err)
	}
	// Reports stay in selection order even when run concurrently.
	t1 := strings.Index(out, "=== T1")
	f5 := strings.Index(out, "=== F5")
	if t1 < 0 || f5 < 0 || t1 > f5 {
		t.Fatalf("parallel output misordered:\n%s", out)
	}
}

func TestMultiSeedRun(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-seeds", "5, 9", "-workers", "2", "T1"}) })
	if err != nil {
		t.Fatal(err)
	}
	// One report per seed, in seed-list order regardless of which
	// worker finished first.
	s5 := strings.Index(out, "(seed 5)")
	s9 := strings.Index(out, "(seed 9)")
	if s5 < 0 || s9 < 0 || s5 > s9 {
		t.Fatalf("multi-seed output misordered:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no experiments accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-seeds", "x", "T1"}); err == nil {
		t.Error("unparsable seed list accepted")
	}
	if err := run([]string{"-seeds", ", ,", "T1"}); err == nil {
		t.Error("empty seed list accepted")
	}
}
