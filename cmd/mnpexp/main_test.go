package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mnp/internal/telemetry"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	_ = w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	_ = r.Close()
	return string(buf[:n]), runErr
}

func TestList(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"T1", "F5", "F13", "EDEL", "A5"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %s", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"T1"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table 1") {
		t.Errorf("T1 output wrong:\n%s", out)
	}
}

func TestRunMultipleByID(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-seed", "5", "t1", "F5"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "=== T1") || !strings.Contains(out, "=== F5") {
		t.Errorf("multi-run output wrong:\n%s", out)
	}
}

func TestParallelRun(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-parallel", "T1", "F5"}) })
	if err != nil {
		t.Fatal(err)
	}
	// Reports stay in selection order even when run concurrently.
	t1 := strings.Index(out, "=== T1")
	f5 := strings.Index(out, "=== F5")
	if t1 < 0 || f5 < 0 || t1 > f5 {
		t.Fatalf("parallel output misordered:\n%s", out)
	}
}

func TestMultiSeedRun(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-seeds", "5, 9", "-workers", "2", "T1"}) })
	if err != nil {
		t.Fatal(err)
	}
	// One report per seed, in seed-list order regardless of which
	// worker finished first.
	s5 := strings.Index(out, "(seed 5)")
	s9 := strings.Index(out, "(seed 9)")
	if s5 < 0 || s9 < 0 || s5 > s9 {
		t.Fatalf("multi-seed output misordered:\n%s", out)
	}
}

// artifactDir returns where a test should write its inspectable
// output: MNP_ARTIFACT_DIR if set (CI uploads that directory when a
// job fails), else a scratch dir.
func artifactDir(t *testing.T) string {
	if d := os.Getenv("MNP_ARTIFACT_DIR"); d != "" {
		sub := filepath.Join(d, strings.ReplaceAll(t.Name(), "/", "_"))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		return sub
	}
	return t.TempDir()
}

// TestTelemetryRun replays a 3×5-grid deployment with -telemetry and
// verifies the two artifacts: every NDJSON line parses back into a
// Record (meta first, summary last), and the Prometheus dump carries
// the run's counters.
func TestTelemetryRun(t *testing.T) {
	dir := artifactDir(t)
	out, err := capture(t, func() error {
		return run([]string{"-telemetry", dir, "-rows", "3", "-cols", "5", "-packets", "64", "-seed", "11", "-progress"})
	})
	if err != nil {
		t.Fatalf("telemetry run failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "telemetry:") {
		t.Errorf("report does not mention telemetry:\n%s", out)
	}

	f, err := os.Open(filepath.Join(dir, "events.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := telemetry.ReadAll(f)
	if err != nil {
		t.Fatalf("NDJSON stream does not fully parse: %v", err)
	}
	if len(recs) < 100 {
		t.Fatalf("only %d records for a 15-node run", len(recs))
	}
	first, last := recs[0], recs[len(recs)-1]
	if first.Type != telemetry.TypeMeta || first.V != telemetry.SchemaVersion ||
		first.Nodes != 15 || first.Seed != 11 || first.Protocol != "MNP" {
		t.Errorf("meta record = %+v", first)
	}
	if last.Type != telemetry.TypeSummary || last.Counters["mnp_nodes_completed"] != 15 {
		t.Errorf("summary record = %+v", last)
	}
	types := map[string]int{}
	for _, r := range recs {
		types[r.Type]++
	}
	for _, want := range []string{telemetry.TypeEvent, telemetry.TypeRadio, telemetry.TypeStorage} {
		if types[want] == 0 {
			t.Errorf("stream has no %q records (got %v)", want, types)
		}
	}
	if types[telemetry.TypeViolation] != 0 {
		t.Errorf("clean run recorded %d violations", types[telemetry.TypeViolation])
	}

	prom, err := os.ReadFile(filepath.Join(dir, "counters.prom"))
	if err != nil {
		t.Fatal(err)
	}
	dump := string(prom)
	for _, want := range []string{
		"# TYPE mnp_tx_frames_total counter",
		"mnp_nodes 15",
		"mnp_nodes_completed 15",
		`mnp_tx_frames_total{class="data"}`,
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("Prometheus dump missing %q:\n%s", want, dump)
		}
	}
	// The summary record and the Prometheus dump are two views of the
	// same registry; spot-check they agree.
	if tx := last.Counters["mnp_tx_frames_total"]; tx <= 0 ||
		!strings.Contains(dump, "mnp_tx_frames_total "+strconv.FormatInt(tx, 10)+"\n") {
		t.Errorf("summary tx=%d not found in dump:\n%s", tx, dump)
	}
}

// TestTelemetryWithFaults exercises the combined path: a fault plan
// plus telemetry; the fault events must appear in the stream.
func TestTelemetryWithFaults(t *testing.T) {
	dir := artifactDir(t)
	_, err := capture(t, func() error {
		return run([]string{"-telemetry", dir, "-faults", "reboot:7@30s+10s",
			"-rows", "3", "-cols", "5", "-packets", "64", "-seed", "11"})
	})
	if err != nil {
		t.Fatalf("faulted telemetry run failed: %v", err)
	}
	f, err := os.Open(filepath.Join(dir, "events.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := telemetry.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.Type == telemetry.TypeFault && r.Kind == "reboot" {
			found = true
			break
		}
	}
	if !found {
		t.Error("stream carries no reboot fault record")
	}
}

// TestProfilingFlags smoke-tests -cpuprofile and -trace: both files
// must exist and be non-empty after a short run.
func TestProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	trc := filepath.Join(dir, "trace.out")
	_, err := capture(t, func() error {
		return run([]string{"-cpuprofile", cpu, "-trace", trc, "T1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, trc} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
		} else if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestTelemetryRejectsExperimentIDs(t *testing.T) {
	if err := run([]string{"-telemetry", t.TempDir(), "T1"}); err == nil {
		t.Error("-telemetry with experiment IDs accepted")
	}
}

func TestErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no experiments accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-seeds", "x", "T1"}); err == nil {
		t.Error("unparsable seed list accepted")
	}
	if err := run([]string{"-seeds", ", ,", "T1"}); err == nil {
		t.Error("empty seed list accepted")
	}
}
