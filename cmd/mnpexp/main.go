// Command mnpexp reproduces the paper's tables and figures:
//
//	mnpexp -list          # show available experiments
//	mnpexp T1 F5 EDEL     # run specific experiments
//	mnpexp all            # run everything (minutes of CPU)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"mnp"
	"mnp/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mnpexp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mnpexp", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list experiments and exit")
		seed     = fs.Int64("seed", 42, "simulation seed")
		seeds    = fs.String("seeds", "", "comma-separated seed list; runs each experiment once per seed on a worker pool")
		workers  = fs.Int("workers", 0, "worker pool size for -seeds (0 = GOMAXPROCS)")
		parallel = fs.Bool("parallel", false, "run the selected experiments concurrently")
		csvDir   = fs.String("csv", "", "write the series figures' raw data as CSV files into this directory and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, s := range experiment.AllSpecs() {
			fmt.Printf("  %-5s %s\n", s.ID, s.Title)
		}
		return nil
	}
	if *csvDir != "" {
		paths, err := experiment.WriteCSVs(*csvDir, *seed)
		if err != nil {
			return err
		}
		for _, p := range paths {
			fmt.Println("wrote", p)
		}
		return nil
	}
	ids := fs.Args()
	if len(ids) == 0 {
		return fmt.Errorf("no experiments named; try -list or 'all'")
	}
	var specs []experiment.Spec
	if len(ids) == 1 && strings.EqualFold(ids[0], "all") {
		specs = experiment.AllSpecs()
	} else {
		for _, id := range ids {
			s, ok := experiment.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			specs = append(specs, s)
		}
	}
	if *seeds != "" {
		seedList, err := parseSeeds(*seeds)
		if err != nil {
			return err
		}
		// Multi-seed fan-out: each experiment runs once per seed on a
		// worker pool. RunSeeds merges deterministically — reports come
		// back in seed-list order no matter which worker finishes first.
		for _, s := range specs {
			for _, r := range mnp.RunSeeds(s, seedList, *workers) {
				if r.Err != nil {
					return fmt.Errorf("%s seed %d: %w", s.ID, r.Seed, r.Err)
				}
				fmt.Printf("=== %s — %s (seed %d) ===\n", s.ID, s.Title, r.Seed)
				fmt.Println(r.Report)
			}
		}
		return nil
	}
	if !*parallel {
		for _, s := range specs {
			fmt.Printf("=== %s — %s ===\n", s.ID, s.Title)
			out, err := s.Run(*seed)
			if err != nil {
				return fmt.Errorf("%s: %w", s.ID, err)
			}
			fmt.Println(out)
		}
		return nil
	}
	// Parallel: every spec is an independent simulation; run them all
	// concurrently and print the reports in the original order.
	type outcome struct {
		out string
		err error
	}
	results := make([]outcome, len(specs))
	var wg sync.WaitGroup
	for i, s := range specs {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := s.Run(*seed)
			results[i] = outcome{out: out, err: err}
		}()
	}
	wg.Wait()
	for i, s := range specs {
		if results[i].err != nil {
			return fmt.Errorf("%s: %w", s.ID, results[i].err)
		}
		fmt.Printf("=== %s — %s ===\n", s.ID, s.Title)
		fmt.Println(results[i].out)
	}
	return nil
}

func parseSeeds(list string) ([]int64, error) {
	var out []int64
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", f, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-seeds given but no seeds parsed from %q", list)
	}
	return out, nil
}
