// Command mnpexp reproduces the paper's tables and figures:
//
//	mnpexp -list          # show available experiments
//	mnpexp T1 F5 EDEL     # run specific experiments
//	mnpexp all            # run everything (minutes of CPU)
//
// It also runs chaos deployments — dissemination under an injected
// fault plan with the protocol-invariant checker attached:
//
//	mnpexp -faults 'reboot:7@30s+10s; eeprom:*:0.01'
//	mnpexp -faults 'randkill:6@20s-145s' -rows 8 -cols 8 -seed 22
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"mnp"
	"mnp/internal/experiment"
	"mnp/internal/faults"
	"mnp/internal/invariant"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mnpexp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mnpexp", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list experiments and exit")
		seed     = fs.Int64("seed", 42, "simulation seed")
		seeds    = fs.String("seeds", "", "comma-separated seed list; runs each experiment once per seed on a worker pool")
		workers  = fs.Int("workers", 0, "worker pool size for -seeds (0 = GOMAXPROCS)")
		parallel = fs.Bool("parallel", false, "run the selected experiments concurrently")
		csvDir   = fs.String("csv", "", "write the series figures' raw data as CSV files into this directory and exit")
		faultStr = fs.String("faults", "", "run a chaos deployment under this fault spec (e.g. 'crash:5@20s; eeprom:*:0.01'); see internal/faults")
		rows     = fs.Int("rows", 8, "chaos deployment grid rows (-faults only)")
		cols     = fs.Int("cols", 8, "chaos deployment grid cols (-faults only)")
		packets  = fs.Int("packets", 128, "chaos deployment image size in packets (-faults only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *faultStr != "" {
		if len(fs.Args()) > 0 {
			return fmt.Errorf("-faults runs its own deployment; drop the experiment IDs %v", fs.Args())
		}
		return runChaos(*faultStr, *rows, *cols, *packets, *seed)
	}
	if *list {
		for _, s := range experiment.AllSpecs() {
			fmt.Printf("  %-5s %s\n", s.ID, s.Title)
		}
		return nil
	}
	if *csvDir != "" {
		paths, err := experiment.WriteCSVs(*csvDir, *seed)
		if err != nil {
			return err
		}
		for _, p := range paths {
			fmt.Println("wrote", p)
		}
		return nil
	}
	ids := fs.Args()
	if len(ids) == 0 {
		return fmt.Errorf("no experiments named; try -list or 'all'")
	}
	var specs []experiment.Spec
	if len(ids) == 1 && strings.EqualFold(ids[0], "all") {
		specs = experiment.AllSpecs()
	} else {
		for _, id := range ids {
			s, ok := experiment.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			specs = append(specs, s)
		}
	}
	if *seeds != "" {
		seedList, err := parseSeeds(*seeds)
		if err != nil {
			return err
		}
		// Multi-seed fan-out: each experiment runs once per seed on a
		// worker pool. RunSeeds merges deterministically — reports come
		// back in seed-list order no matter which worker finishes first.
		for _, s := range specs {
			for _, r := range mnp.RunSeeds(s, seedList, *workers) {
				if r.Err != nil {
					return fmt.Errorf("%s seed %d: %w", s.ID, r.Seed, r.Err)
				}
				fmt.Printf("=== %s — %s (seed %d) ===\n", s.ID, s.Title, r.Seed)
				fmt.Println(r.Report)
			}
		}
		return nil
	}
	if !*parallel {
		for _, s := range specs {
			fmt.Printf("=== %s — %s ===\n", s.ID, s.Title)
			out, err := s.Run(*seed)
			if err != nil {
				return fmt.Errorf("%s: %w", s.ID, err)
			}
			fmt.Println(out)
		}
		return nil
	}
	// Parallel: every spec is an independent simulation; run them all
	// concurrently and print the reports in the original order.
	type outcome struct {
		out string
		err error
	}
	results := make([]outcome, len(specs))
	var wg sync.WaitGroup
	for i, s := range specs {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := s.Run(*seed)
			results[i] = outcome{out: out, err: err}
		}()
	}
	wg.Wait()
	for i, s := range specs {
		if results[i].err != nil {
			return fmt.Errorf("%s: %w", s.ID, results[i].err)
		}
		fmt.Printf("=== %s — %s ===\n", s.ID, s.Title)
		fmt.Println(results[i].out)
	}
	return nil
}

// runChaos executes one dissemination run under the parsed fault plan
// with the invariant checker attached, then reports the outcome: who
// died, who completed, how many EEPROM faults were absorbed, and
// whether every surviving image is byte-identical and every protocol
// invariant held.
func runChaos(spec string, rows, cols, packets int, seed int64) error {
	plan, err := faults.ParseSpec(spec)
	if err != nil {
		return err
	}
	fmt.Println(plan)
	res, err := experiment.Run(experiment.Setup{
		Name: "chaos", Rows: rows, Cols: cols, ImagePackets: packets,
		Seed: seed, Limit: 12 * time.Hour,
		Faults:     plan,
		Invariants: &invariant.Config{},
	})
	if err != nil {
		return err
	}
	dead, completed, eepromFaults := 0, 0, 0
	for _, n := range res.Network.Nodes {
		if n.Dead() {
			dead++
		} else if n.Completed() {
			completed++
		}
		eepromFaults += n.EEPROM().FaultCount()
	}
	fmt.Printf("nodes: %d total, %d dead, %d survivors completed\n",
		res.Layout.N(), dead, completed)
	if eepromFaults > 0 {
		fmt.Printf("eeprom: absorbed %d injected write faults\n", eepromFaults)
	}
	if res.Completed {
		fmt.Printf("completion: %v\n", res.CompletionTime)
	} else {
		fmt.Println("completion: survivors did not all finish within the limit")
	}
	if err := res.VerifyImages(); err != nil {
		return fmt.Errorf("image verification: %w", err)
	}
	fmt.Println("images: every survivor holds a byte-identical copy")
	if err := res.VerifyInvariants(); err != nil {
		return fmt.Errorf("invariant check: %w", err)
	}
	fmt.Println("invariants: write-once, in-order, advertisement, sleep, sender-exclusivity all held")
	if !res.Completed {
		return fmt.Errorf("chaos run incomplete")
	}
	return nil
}

func parseSeeds(list string) ([]int64, error) {
	var out []int64
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", f, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-seeds given but no seeds parsed from %q", list)
	}
	return out, nil
}
