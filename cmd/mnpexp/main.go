// Command mnpexp reproduces the paper's tables and figures:
//
//	mnpexp -list          # show available experiments
//	mnpexp T1 F5 EDEL     # run specific experiments
//	mnpexp all            # run everything (minutes of CPU)
//
// It also runs chaos deployments — dissemination under an injected
// fault plan with the protocol-invariant checker attached:
//
//	mnpexp -faults 'reboot:7@30s+10s; eeprom:*:0.01'
//	mnpexp -faults 'randkill:6@20s-145s' -rows 8 -cols 8 -seed 22
//
// Scenario files (see internal/scenario) replace hand-wired flags
// with a checked-in document; with several seeds in the file (or
// -seeds) the run fans out on a worker pool and prints the campaign
// comparison table:
//
//	mnpexp -scenario deploy.toml
//	mnpexp -scenario deploy.toml -seeds 1,2,3 -workers 4
//
// Telemetry and profiling hooks (all default off):
//
//	mnpexp -telemetry out/ -rows 3 -cols 5   # NDJSON event stream + counters
//	mnpexp -pprof localhost:6060 all         # live /debug/pprof + /debug/vars
//	mnpexp -cpuprofile cpu.out -trace trace.out F8
//
// With -telemetry, the deployment writes out/events.ndjson (one JSON
// object per line, schema-versioned; pipe through jq) and
// out/counters.prom (Prometheus text format).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"mnp"
	"mnp/internal/campaign"
	"mnp/internal/experiment"
	"mnp/internal/faults"
	"mnp/internal/invariant"
	"mnp/internal/scenario"
	"mnp/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mnpexp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mnpexp", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list experiments and exit")
		seed     = fs.Int64("seed", 42, "simulation seed")
		seeds    = fs.String("seeds", "", "comma-separated seed list; runs each experiment once per seed on a worker pool")
		workers  = fs.Int("workers", 0, "worker pool size for -seeds (0 = GOMAXPROCS)")
		parallel = fs.Bool("parallel", false, "run the selected experiments concurrently")
		csvDir   = fs.String("csv", "", "write the series figures' raw data as CSV files into this directory and exit")
		faultStr = fs.String("faults", "", "run a chaos deployment under this fault spec (e.g. 'crash:5@20s; eeprom:*:0.01'); see internal/faults")
		scenPath = fs.String("scenario", "", "run the deployment a scenario file describes (TOML/JSON; see internal/scenario)")
		rows     = fs.Int("rows", 8, "deployment grid rows (-faults / -telemetry runs)")
		cols     = fs.Int("cols", 8, "deployment grid cols (-faults / -telemetry runs)")
		packets  = fs.Int("packets", 128, "deployment image size in packets (-faults / -telemetry runs)")
		shards   = fs.Int("shards", 1, "spatial shards per run, advanced in lockstep (1 = classic sequential kernel); with -tiles: logical executors")
		tiles    = fs.String("tiles", "", `2D tile grid "RxC" (e.g. 4x4) or "auto" for every run; default: -shards contiguous strips`)
		repart   = fs.Bool("repartition", false, "adaptively migrate tiles between executors at lockstep barriers")
		optim    = fs.Bool("optimistic", false, "speculate windows ahead of the lockstep barrier, rolling back on late cross-tile traffic (needs an engine run)")
		lookahd  = fs.Int("lookahead", 0, "speculation depth in windows for -optimistic (0 = engine default)")

		telemetryDir = fs.String("telemetry", "", "write NDJSON events + Prometheus counters for a deployment run into this directory")
		pprofAddr    = fs.String("pprof", "", "serve /debug/pprof and /debug/vars on this address for the whole invocation")
		cpuProfile   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		tracePath    = fs.String("trace", "", "write a runtime/trace capture to this file")
		progress     = fs.Bool("progress", false, "report live deployment progress on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := telemetry.StartProfiling(telemetry.ProfileConfig{
		PprofAddr: *pprofAddr, CPUProfile: *cpuProfile, TracePath: *tracePath,
	})
	if err != nil {
		return err
	}
	defer stopProf()
	// Predefined specs fix everything but the seed; the shard count,
	// tile grid, and repartitioner reach them through the package
	// defaults.
	experiment.SetDefaultShards(*shards)
	tileRows, tileCols, tileAuto, err := experiment.ParseTileSpec(*tiles)
	if err != nil {
		return err
	}
	if tileAuto {
		experiment.SetDefaultTiles(-1, -1)
	} else {
		experiment.SetDefaultTiles(tileRows, tileCols)
	}
	experiment.SetDefaultRepartition(*repart)
	experiment.SetDefaultOptimistic(*optim, *lookahd)
	if *scenPath != "" {
		if len(fs.Args()) > 0 {
			return fmt.Errorf("-scenario runs its own deployment; drop the experiment IDs %v", fs.Args())
		}
		if *faultStr != "" || *telemetryDir != "" {
			return fmt.Errorf("-scenario carries faults and telemetry in the file; drop -faults/-telemetry")
		}
		return runScenario(*scenPath, *seeds, *workers, *progress)
	}
	if *faultStr != "" || *telemetryDir != "" {
		if len(fs.Args()) > 0 {
			return fmt.Errorf("-faults/-telemetry run their own deployment; drop the experiment IDs %v", fs.Args())
		}
		return runDeploy(*faultStr, *rows, *cols, *packets, *seed, *telemetryDir, *progress)
	}
	if *list {
		for _, s := range experiment.AllSpecs() {
			fmt.Printf("  %-5s %s\n", s.ID, s.Title)
		}
		return nil
	}
	if *csvDir != "" {
		paths, err := experiment.WriteCSVs(*csvDir, *seed)
		if err != nil {
			return err
		}
		for _, p := range paths {
			fmt.Println("wrote", p)
		}
		return nil
	}
	ids := fs.Args()
	if len(ids) == 0 {
		return fmt.Errorf("no experiments named; try -list or 'all'")
	}
	var specs []experiment.Spec
	if len(ids) == 1 && strings.EqualFold(ids[0], "all") {
		specs = experiment.AllSpecs()
	} else {
		for _, id := range ids {
			s, ok := experiment.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			specs = append(specs, s)
		}
	}
	if *seeds != "" {
		seedList, err := parseSeeds(*seeds)
		if err != nil {
			return err
		}
		// Multi-seed fan-out: each experiment runs once per seed on a
		// worker pool. RunSeeds merges deterministically — reports come
		// back in seed-list order no matter which worker finishes first.
		for si, s := range specs {
			if *progress {
				fmt.Fprintf(os.Stderr, "sweep: %s (%d/%d), %d seeds on %d workers\n",
					s.ID, si+1, len(specs), len(seedList), *workers)
			}
			for _, r := range mnp.RunSeeds(s, seedList, *workers) {
				if r.Err != nil {
					return fmt.Errorf("%s seed %d: %w", s.ID, r.Seed, r.Err)
				}
				fmt.Printf("=== %s — %s (seed %d) ===\n", s.ID, s.Title, r.Seed)
				fmt.Println(r.Report)
			}
		}
		return nil
	}
	if !*parallel {
		for _, s := range specs {
			fmt.Printf("=== %s — %s ===\n", s.ID, s.Title)
			out, err := s.Run(*seed)
			if err != nil {
				return fmt.Errorf("%s: %w", s.ID, err)
			}
			fmt.Println(out)
		}
		return nil
	}
	// Parallel: every spec is an independent simulation; run them all
	// concurrently and print the reports in the original order.
	type outcome struct {
		out string
		err error
	}
	results := make([]outcome, len(specs))
	var wg sync.WaitGroup
	for i, s := range specs {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := s.Run(*seed)
			results[i] = outcome{out: out, err: err}
		}()
	}
	wg.Wait()
	for i, s := range specs {
		if results[i].err != nil {
			return fmt.Errorf("%s: %w", s.ID, results[i].err)
		}
		fmt.Printf("=== %s — %s ===\n", s.ID, s.Title)
		fmt.Println(results[i].out)
	}
	return nil
}

// runDeploy executes one dissemination run — optionally under a parsed
// fault plan — with the invariant checker attached, then reports the
// outcome: who died, who completed, how many EEPROM faults were
// absorbed, and whether every surviving image is byte-identical and
// every protocol invariant held. With telemetryDir set, the run also
// streams NDJSON events and dumps the final counters in Prometheus
// text format.
func runDeploy(spec string, rows, cols, packets int, seed int64, telemetryDir string, progress bool) error {
	var plan *faults.Plan
	if spec != "" {
		var err error
		plan, err = faults.ParseSpec(spec)
		if err != nil {
			return err
		}
		fmt.Println(plan)
	}
	setup := experiment.Setup{
		Name: "deploy", Rows: rows, Cols: cols, ImagePackets: packets,
		Seed: seed, Limit: 12 * time.Hour,
		Faults:     plan,
		Invariants: &invariant.Config{},
	}
	return execDeploy(setup, telemetryDir, progress)
}

// runScenario executes the deployment a scenario file describes. One
// seed runs through the full deploy path (telemetry per the file's
// [telemetry] table, images and invariants verified); several seeds —
// from the file's seed list or -seeds — fan out as a degenerate
// campaign and print the comparison table.
func runScenario(path, seedsFlag string, workers int, progress bool) error {
	sc, err := scenario.ParseFile(path)
	if err != nil {
		return err
	}
	seedList := sc.SeedList()
	if seedsFlag != "" {
		if seedList, err = parseSeeds(seedsFlag); err != nil {
			return err
		}
	}
	if len(seedList) > 1 {
		plan, err := campaign.PlanForScenario(*sc, seedList, workers)
		if err != nil {
			return err
		}
		out, err := (&campaign.Runner{Plan: plan, Logf: func(format string, args ...any) {
			if progress {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}
		}}).Run()
		if err != nil {
			return err
		}
		fmt.Print(out.Report)
		for _, res := range out.Results {
			if res.Err != "" {
				return fmt.Errorf("seed %d: %s", res.Seed, res.Err)
			}
		}
		return nil
	}
	sc.Run.Seed = seedList[0]
	sc.Run.Seeds = nil
	setup, err := sc.Compile()
	if err != nil {
		return err
	}
	telemetryDir := ""
	if sc.Telemetry != nil {
		telemetryDir = sc.Telemetry.Dir
		progress = progress || sc.Telemetry.Progress
	}
	return execDeploy(setup, telemetryDir, progress)
}

// execDeploy wires progress and telemetry around a setup, runs it, and
// verifies the outcome — the shared tail of -faults/-telemetry and
// -scenario runs.
func execDeploy(setup experiment.Setup, telemetryDir string, progress bool) error {
	var prog *telemetry.Progress
	if progress {
		n := setup.Rows * setup.Cols
		if setup.Layout != nil {
			n = setup.Layout.N()
		}
		prog = telemetry.NewProgress(os.Stderr, setup.Name, n, time.Second)
		setup.Observer = prog
	}
	var stream *telemetry.Stream
	// The recorder timestamps storage operations with the run clock (the
	// kernel sequentially, the engine's replay clock when sharded), which
	// exists only once the deployment is built; bind it lazily.
	var clock func() time.Duration
	if telemetryDir != "" {
		if err := os.MkdirAll(telemetryDir, 0o755); err != nil {
			return err
		}
		var err error
		stream, err = telemetry.CreateStream(filepath.Join(telemetryDir, "events.ndjson"))
		if err != nil {
			return err
		}
		defer stream.Close()
		rec, err := telemetry.NewRecorder(stream, func() time.Duration {
			if clock == nil {
				return 0
			}
			return clock()
		})
		if err != nil {
			return err
		}
		setup.Telemetry = rec
	}
	res, err := experiment.Build(setup)
	if err != nil {
		return err
	}
	clock = res.Now
	return finishDeploy(res, setup, telemetryDir, stream, prog)
}

func finishDeploy(res *experiment.Result, setup experiment.Setup, telemetryDir string, stream *telemetry.Stream, prog *telemetry.Progress) error {
	res.RunToCompletion()
	res.FinishTelemetry()
	if prog != nil {
		prog.Final()
	}

	dead, completed, eepromFaults := 0, 0, 0
	for _, n := range res.Network.Nodes {
		if n.Dead() {
			dead++
		} else if n.Completed() {
			completed++
		}
		eepromFaults += n.EEPROM().FaultCount()
	}
	fmt.Printf("nodes: %d total, %d dead, %d survivors completed\n",
		res.Layout.N(), dead, completed)
	if eepromFaults > 0 {
		fmt.Printf("eeprom: absorbed %d injected write faults\n", eepromFaults)
	}
	if res.Completed {
		fmt.Printf("completion: %v\n", res.CompletionTime)
	} else {
		fmt.Println("completion: survivors did not all finish within the limit")
	}

	if telemetryDir != "" {
		counters := res.Counters()
		counters.PublishExpvar("mnp")
		promPath := filepath.Join(telemetryDir, "counters.prom")
		f, err := os.Create(promPath)
		if err != nil {
			return err
		}
		if err := counters.WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := stream.Close(); err != nil {
			return fmt.Errorf("telemetry stream: %w", err)
		}
		fmt.Printf("telemetry: %d NDJSON records in %s, counters in %s\n",
			stream.Lines(), filepath.Join(telemetryDir, "events.ndjson"), promPath)
	}

	if err := res.VerifyImages(); err != nil {
		return fmt.Errorf("image verification: %w", err)
	}
	fmt.Println("images: every survivor holds a byte-identical copy")
	if err := res.VerifyInvariants(); err != nil {
		return fmt.Errorf("invariant check: %w", err)
	}
	fmt.Println("invariants: write-once, in-order, advertisement, sleep, sender-exclusivity all held")
	if !res.Completed {
		return fmt.Errorf("deployment incomplete")
	}
	return nil
}

func parseSeeds(list string) ([]int64, error) {
	var out []int64
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", f, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-seeds given but no seeds parsed from %q", list)
	}
	return out, nil
}
