// Command mnpdiff builds, inspects and applies the block-level image
// patches used for difference-based reprogramming over MNP:
//
//	mnpdiff diff v1.bin v2.bin patch.mnp    # create a patch
//	mnpdiff apply v1.bin patch.mnp out.bin  # reconstruct v2
//	mnpdiff inspect patch.mnp               # show patch composition
package main

import (
	"flag"
	"fmt"
	"os"

	"mnp/internal/imgdiff"
	"mnp/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mnpdiff:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mnpdiff", flag.ContinueOnError)
	blockSize := fs.Int("block", imgdiff.DefaultBlockSize, "diff block size in bytes")
	pprofAddr := fs.String("pprof", "", "serve /debug/pprof on this address")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file (diffing large images)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := telemetry.StartProfiling(telemetry.ProfileConfig{
		PprofAddr: *pprofAddr, CPUProfile: *cpuProfile,
	})
	if err != nil {
		return err
	}
	defer stopProf()
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: mnpdiff [-block N] diff|apply|inspect <files…>")
	}
	switch rest[0] {
	case "diff":
		if len(rest) != 4 {
			return fmt.Errorf("usage: mnpdiff diff <old> <new> <patch>")
		}
		return diffCmd(rest[1], rest[2], rest[3], *blockSize)
	case "apply":
		if len(rest) != 4 {
			return fmt.Errorf("usage: mnpdiff apply <old> <patch> <out>")
		}
		return applyCmd(rest[1], rest[2], rest[3])
	case "inspect":
		if len(rest) != 2 {
			return fmt.Errorf("usage: mnpdiff inspect <patch>")
		}
		return inspectCmd(rest[1])
	default:
		return fmt.Errorf("unknown subcommand %q", rest[0])
	}
}

func diffCmd(oldPath, newPath, patchPath string, blockSize int) error {
	oldData, err := os.ReadFile(oldPath)
	if err != nil {
		return err
	}
	newData, err := os.ReadFile(newPath)
	if err != nil {
		return err
	}
	patch, err := imgdiff.Diff(oldData, newData, blockSize)
	if err != nil {
		return err
	}
	if err := os.WriteFile(patchPath, patch, 0o644); err != nil {
		return err
	}
	st, err := imgdiff.Inspect(patch)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d bytes (%.1f%% of the new image)\n",
		patchPath, st.PatchSize, 100*st.Ratio())
	return nil
}

func applyCmd(oldPath, patchPath, outPath string) error {
	oldData, err := os.ReadFile(oldPath)
	if err != nil {
		return err
	}
	patch, err := os.ReadFile(patchPath)
	if err != nil {
		return err
	}
	newData, err := imgdiff.Apply(oldData, patch)
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, newData, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d bytes\n", outPath, len(newData))
	return nil
}

func inspectCmd(patchPath string) error {
	patch, err := os.ReadFile(patchPath)
	if err != nil {
		return err
	}
	st, err := imgdiff.Inspect(patch)
	if err != nil {
		return err
	}
	fmt.Printf("block size:    %d bytes\n", st.BlockSize)
	fmt.Printf("base image:    %d bytes\n", st.OldSize)
	fmt.Printf("new image:     %d bytes\n", st.NewSize)
	fmt.Printf("patch:         %d bytes (%.1f%% of new)\n", st.PatchSize, 100*st.Ratio())
	fmt.Printf("copy ops:      %d (%d bytes reused)\n", st.CopyOps, st.CopiedBytes)
	fmt.Printf("literal ops:   %d (%d bytes shipped)\n", st.DataOps, st.LiteralBytes)
	return nil
}
