package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, dir, name string, data []byte) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDiffApplyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	v1 := make([]byte, 4096)
	rng.Read(v1)
	v2 := append([]byte(nil), v1...)
	copy(v2[100:], []byte("edited"))

	oldP := writeTemp(t, dir, "v1.bin", v1)
	newP := writeTemp(t, dir, "v2.bin", v2)
	patchP := filepath.Join(dir, "patch.mnp")
	outP := filepath.Join(dir, "out.bin")

	if err := run([]string{"diff", oldP, newP, patchP}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"inspect", patchP}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"apply", oldP, patchP, outP}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outP)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v2) {
		t.Fatal("round trip mismatch")
	}
}

func TestBlockFlag(t *testing.T) {
	dir := t.TempDir()
	v1 := bytes.Repeat([]byte{1, 2, 3, 4}, 512)
	oldP := writeTemp(t, dir, "v1.bin", v1)
	patchP := filepath.Join(dir, "p.mnp")
	if err := run([]string{"-block", "64", "diff", oldP, oldP, patchP}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-block", "1", "diff", oldP, oldP, patchP}); err == nil {
		t.Fatal("invalid block size accepted")
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"bogus"},
		{"diff", "a"},
		{"apply", "a"},
		{"inspect"},
		{"diff", "/nonexistent1", "/nonexistent2", "/tmp/x"},
		{"apply", "/nonexistent1", "/nonexistent2", "/tmp/x"},
		{"inspect", "/nonexistent"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
