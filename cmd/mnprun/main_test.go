package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testPlan is the acceptance-bar campaign: 2 protocols x 2 seeds x 2
// topologies = 8 cells.
const testPlan = `
version = 1
name = "e2e"
protocols = ["mnp", "deluge"]
seeds = [42, 7]
workers = 4

[[topologies]]
kind = "grid"
rows = 3
cols = 3

[[topologies]]
kind = "line"
n = 4

[scenario]
[scenario.run]
image_packets = 16
limit = "4h"
`

const testScenario = `
version = 1
name = "smoke"
[topology]
kind = "grid"
rows = 3
cols = 3
[run]
seed = 42
image_packets = 16
limit = "4h"
[invariants]
enabled = true
`

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestScenarioMode(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation in -short mode")
	}
	path := writeFile(t, "scenario.toml", testScenario)
	if err := run([]string{"-quiet", path}); err != nil {
		t.Fatal(err)
	}
	// Campaign flags on a single scenario are a usage error.
	if err := run([]string{path, "-out", t.TempDir()}); err == nil {
		t.Fatal("scenario accepted -out")
	}
}

// TestCampaignDeterministicAndResumable is the CLI acceptance test:
// the full matrix runs via mnprun, the report is byte-identical across
// independent runs at equal worker counts, and a campaign stopped
// mid-flight resumes from its checkpoint without re-running finished
// cells.
func TestCampaignDeterministicAndResumable(t *testing.T) {
	if testing.Short() {
		t.Skip("8-cell campaign in -short mode")
	}
	plan := writeFile(t, "plan.toml", testPlan)

	// Two independent full runs must produce identical report bytes.
	dirA, dirB := t.TempDir(), t.TempDir()
	for _, dir := range []string{dirA, dirB} {
		if err := run([]string{"-quiet", plan, "-out", dir}); err != nil {
			t.Fatal(err)
		}
	}
	reportA, err := os.ReadFile(filepath.Join(dirA, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	reportB, err := os.ReadFile(filepath.Join(dirB, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reportA) != string(reportB) {
		t.Errorf("independent runs disagree:\n--- A\n%s\n--- B\n%s", reportA, reportB)
	}
	if !strings.Contains(string(reportA), "8 cells") {
		t.Errorf("report does not cover the 8-cell matrix:\n%s", reportA)
	}

	// Interrupt after 3 cells, then resume in the same directory.
	dirC := t.TempDir()
	if err := run([]string{"-quiet", plan, "-out", dirC, "-max-cells", "3"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dirC, "report.txt")); !os.IsNotExist(err) {
		t.Fatal("interrupted campaign wrote a report")
	}
	partial, err := os.ReadFile(filepath.Join(dirC, "cells.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := nonEmptyLines(string(partial)); len(lines) != 4 { // header + 3 cells
		t.Fatalf("partial checkpoint has %d lines, want 4:\n%s", len(lines), partial)
	}

	if err := run([]string{"-quiet", plan, "-out", dirC}); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(dirC, "cells.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	// Resume appends: the partial prefix is untouched (its cells were
	// not re-run), and exactly the 5 remaining cells follow.
	if !strings.HasPrefix(string(full), string(partial)) {
		t.Error("resume rewrote already-checkpointed cells")
	}
	if lines := nonEmptyLines(string(full)); len(lines) != 9 { // header + 8 cells
		t.Fatalf("resumed checkpoint has %d lines, want 9", len(lines))
	}
	reportC, err := os.ReadFile(filepath.Join(dirC, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reportC) != string(reportA) {
		t.Errorf("resumed report differs from uninterrupted run:\n--- resumed\n%s\n--- reference\n%s", reportC, reportA)
	}
}

func TestUsageErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no-args run succeeded")
	}
	if err := run([]string{"/nonexistent/plan.toml"}); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeFile(t, "bad.toml", "version = 1\nprotocols = [\"warp\"]\n[scenario.topology]\nkind = \"grid\"\nrows = 2\ncols = 2\n")
	if err := run([]string{bad}); err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Errorf("bad plan error = %v", err)
	}
}

func nonEmptyLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.TrimSpace(l) != "" {
			out = append(out, l)
		}
	}
	return out
}
