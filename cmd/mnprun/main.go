// Command mnprun executes scenario files and campaign plans — the
// declarative face of the simulator:
//
//	mnprun scenario.toml                  # one deployment, full verification
//	mnprun plan.toml -out results/        # expand the matrix, checkpoint per cell
//	mnprun plan.toml -out results/        # run again: resumes, skips finished cells
//	mnprun plan.toml -out results/ -max-cells 3   # stop early (CI resume drills)
//
// A document with a [scenario] table or sweep axes (protocols, seeds,
// [[topologies]], fault_plans) is a campaign plan; anything else is a
// single scenario. Campaigns write cells.ndjson (one finished cell per
// line, resumable) and report.txt into -out; the aggregated comparison
// report also goes to stdout and is byte-deterministic: the same plan
// produces the same report regardless of worker count or how many
// times the campaign was interrupted and resumed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mnp/internal/campaign"
	"mnp/internal/experiment"
	"mnp/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mnprun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mnprun", flag.ContinueOnError)
	var (
		out      = fs.String("out", "", "campaign checkpoint directory (cells.ndjson, report.txt); campaigns re-run with the same -out resume")
		resume   = fs.String("resume", "", "alias for -out")
		workers  = fs.Int("workers", 0, "concurrent cells (0 = plan's setting, then GOMAXPROCS)")
		maxCells = fs.Int("max-cells", 0, "stop after running this many new cells (0 = run everything)")
		quiet    = fs.Bool("quiet", false, "suppress per-cell progress on stderr")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: mnprun [flags] file.toml [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Accept flags on either side of the file argument (mnprun
	// plan.toml -out dir/ reads naturally).
	if fs.NArg() < 1 {
		fs.Usage()
		return fmt.Errorf("no scenario or plan file named")
	}
	path := fs.Arg(0)
	if fs.NArg() > 1 {
		if err := fs.Parse(fs.Args()[1:]); err != nil {
			return err
		}
		if fs.NArg() > 0 {
			return fmt.Errorf("one file at a time; unexpected %v", fs.Args())
		}
	}
	dir := *out
	if dir == "" {
		dir = *resume
	}

	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if isCampaign(data) {
		return runCampaign(path, data, dir, *workers, *maxCells, *quiet)
	}
	if dir != "" || *maxCells != 0 {
		return fmt.Errorf("%s is a single scenario; -out/-resume/-max-cells apply to campaign plans", path)
	}
	return runScenario(path, data)
}

// isCampaign sniffs the document kind: campaign plans have a nested
// scenario table or at least one sweep axis.
func isCampaign(data []byte) bool {
	generic, err := scenario.ParseDocument(data)
	if err != nil {
		return false // let the scenario parser report the error
	}
	for _, key := range []string{"scenario", "protocols", "seeds", "topologies", "mobilities", "fault_plans", "protocol_options"} {
		if _, ok := generic[key]; ok {
			return true
		}
	}
	return false
}

func runCampaign(path string, data []byte, dir string, workers, maxCells int, quiet bool) error {
	plan, err := campaign.ParsePlan(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	r := &campaign.Runner{Plan: plan, Dir: dir, Workers: workers, MaxCells: maxCells}
	if !quiet {
		r.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	outcome, err := r.Run()
	if err != nil {
		return err
	}
	if outcome.Remaining > 0 {
		fmt.Printf("campaign %s: stopped with %d/%d cells done (%d still to run); re-run with the same -out to resume\n",
			plan.Name, len(outcome.Results), len(outcome.Cells), outcome.Remaining)
		return nil
	}
	fmt.Print(outcome.Report)
	failed := 0
	for _, res := range outcome.Results {
		if res.Err != "" {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d cells failed", failed, len(outcome.Results))
	}
	return nil
}

// runScenario runs one deployment with full verification — the
// scenario-file equivalent of mnpexp's deploy mode.
func runScenario(path string, data []byte) error {
	sc, err := scenario.Parse(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	setup, err := sc.Compile()
	if err != nil {
		return err
	}
	res, err := experiment.Run(setup)
	if err != nil {
		return err
	}
	dead, completed := 0, 0
	for _, n := range res.Network.Nodes {
		if n.Dead() {
			dead++
		} else if n.Completed() {
			completed++
		}
	}
	fmt.Printf("scenario %s: %d nodes, %d dead, %d survivors completed\n",
		setup.Name, res.Layout.N(), dead, completed)
	if res.Completed {
		fmt.Printf("completion: %v\n", res.CompletionTime.Round(time.Millisecond))
	} else {
		fmt.Println("completion: survivors did not all finish within the limit")
	}
	if err := res.VerifyImages(); err != nil {
		return fmt.Errorf("image verification: %w", err)
	}
	fmt.Println("images: every survivor holds a byte-identical copy")
	if err := res.VerifyInvariants(); err != nil {
		return fmt.Errorf("invariant check: %w", err)
	}
	if setup.Invariants != nil {
		fmt.Println("invariants: all held")
	}
	if !res.Completed {
		return fmt.Errorf("deployment incomplete")
	}
	return nil
}
