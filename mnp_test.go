package mnp

import (
	"strings"
	"testing"
	"time"
)

func TestExperimentsList(t *testing.T) {
	specs := Experiments()
	if len(specs) != 17 {
		t.Fatalf("got %d experiments, want 17", len(specs))
	}
	for _, s := range specs {
		if s.ID == "" || s.Title == "" || s.Run == nil {
			t.Fatalf("incomplete spec %+v", s)
		}
	}
}

func TestRunExperimentTable1(t *testing.T) {
	out, err := RunExperiment("T1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table 1") {
		t.Fatalf("unexpected report: %q", out)
	}
	if _, err := RunExperiment("bogus", 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestSimulateFacade(t *testing.T) {
	res, err := Simulate(Setup{
		Name: "facade", Rows: 2, Cols: 2, ImagePackets: 32,
		Protocol: ProtocolMNP, Power: PowerSim, Seed: 1,
		Limit: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("facade run incomplete")
	}
	if err := res.VerifyImages(); err != nil {
		t.Fatal(err)
	}
}
