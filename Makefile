# Development targets for the MNP reproduction. Everything uses only
# the standard Go toolchain.

GO        ?= go
BENCH_OUT ?= BENCH_sim.json

FUZZTIME ?= 10s

.PHONY: build test race race-short race-engine vet fuzz-short bench bench-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-short skips the long soak/golden simulations — the CI-friendly
# race pass.
race-short:
	$(GO) test -race -short ./...

# race-engine exercises the sharded lockstep engine under the race
# detector: the engine, tile-partition, and kernel-window unit tests,
# the sharded experiment suite (sequential-vs-sharded equivalence at
# shards 1 and 4, determinism with inline and parallel workers,
# sharded chaos), the tiled suite (the grid x workers{1,2,4} x
# repartitioning equivalence matrix, tiled chaos, repartition during
# fault windows, observer-replay ordering under migration), the
# mobility suite (the mobile equivalence matrix, churn chaos, and the
# static zero-cost check), the optimistic suite (speculation-vs-lockstep
# equivalence across lookahead depths and worker counts, chaos under
# rollback, the speculation counters), and the sharded + mobile golden
# hashes (shards=4, workers 1 and 4, optimism off and on).
race-engine:
	$(GO) test -race ./internal/engine/ ./internal/sim/ ./internal/checkpoint/
	$(GO) test -race ./internal/experiment/ -run 'TestSetupValidate|TestSharded|TestTiled|TestMobility|TestOptimistic'
	$(GO) test -race . -run 'TestShardedRunMatchesGolden|TestMobileRunMatchesGolden'

vet:
	$(GO) vet ./...

# fuzz-short runs each native fuzz target for a fixed small budget
# (override with FUZZTIME=30s etc.). The go tool accepts one -fuzz
# target per invocation, hence one line per target. The targets carry
# no build tags (native fuzzing needs none), so plain `make vet`
# already type-checks every fuzz file.
fuzz-short:
	$(GO) test -run '^$$' -fuzz 'FuzzMNPPacketSequence' -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -run '^$$' -fuzz 'FuzzRuntimeOps' -fuzztime $(FUZZTIME) ./internal/node/nodetest/
	$(GO) test -run '^$$' -fuzz 'FuzzRecordRoundTrip' -fuzztime $(FUZZTIME) ./internal/telemetry/
	$(GO) test -run '^$$' -fuzz 'FuzzScenarioParse' -fuzztime $(FUZZTIME) ./internal/scenario/
	$(GO) test -run '^$$' -fuzz 'FuzzGridIndex' -fuzztime $(FUZZTIME) ./internal/topology/
	$(GO) test -run '^$$' -fuzz 'FuzzIndexMoves' -fuzztime $(FUZZTIME) ./internal/topology/
	$(GO) test -run '^$$' -fuzz 'FuzzTilePartition' -fuzztime $(FUZZTIME) ./internal/engine/
	$(GO) test -run '^$$' -fuzz 'FuzzRLNCDecode' -fuzztime $(FUZZTIME) ./internal/rlnc/

# bench runs the simulation-substrate micro-benchmarks plus the
# end-to-end Figure 8 regeneration and the sharded-engine scaling
# series, and appends the numbers (ns/op, B/op, allocs/op) as a
# history entry — keyed by git SHA and date — to $(BENCH_OUT), so the
# committed file accumulates a timeline across revisions. The
# micro-benchmarks get a large fixed iteration count so the lazily
# built radio tables amortize out; the Fig8 and engine runs are
# seconds per iteration, so a couple suffice.
bench: build
	@rm -f bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkMediumTransmit|BenchmarkKernelSchedule' \
		-benchmem -benchtime 2000x . | tee bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkGeometryBuild' \
		-benchmem -benchtime 20x . | tee -a bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkRLNCDecode' \
		-benchmem -benchtime 100x ./internal/rlnc/ | tee -a bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkIndexMove' \
		-benchmem -benchtime 2000x ./internal/topology/ | tee -a bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkFig8ActiveRadioTime$$' \
		-benchmem -benchtime 2x . | tee -a bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkEngineGrid' \
		-benchmem -benchtime 2x -timeout 30m . | tee -a bench.out
	$(GO) run ./tools/benchjson -out $(BENCH_OUT) < bench.out
	@echo "appended to $(BENCH_OUT)"

# bench-smoke is the CI-sized slice of `make bench`: the tiled
# engine-grid series (2x2, 4x4, 4x4 with the repartitioner) plus the
# optimistic series (speculative execution at workers 1, 2, 4 with a
# conservative baseline), one iteration per config, appended to the
# same SHA-keyed $(BENCH_OUT) history. The tiled lines carry the custom
# "imbalance" metric and the optimistic lines "rollback-rate" and
# "spec-depth", so every revision records balance and speculation
# datapoints without paying for the full micro-benchmark sweep.
bench-smoke: build
	@rm -f bench-smoke.out
	$(GO) test -run '^$$' -bench 'BenchmarkEngineGrid/(tiles|optimistic)' \
		-benchmem -benchtime 1x -timeout 40m . | tee bench-smoke.out
	$(GO) run ./tools/benchjson -out $(BENCH_OUT) < bench-smoke.out
	@echo "appended to $(BENCH_OUT)"

clean:
	rm -f bench.out bench-smoke.out $(BENCH_OUT)
