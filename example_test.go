package mnp_test

import (
	"fmt"
	"log"
	"time"

	"mnp"
)

// ExampleSimulate disseminates a one-segment program across a small
// grid and verifies every node received it intact.
func ExampleSimulate() {
	res, err := mnp.Simulate(mnp.Setup{
		Name:         "example",
		Rows:         3,
		Cols:         3,
		ImagePackets: 64,
		Protocol:     mnp.ProtocolMNP,
		Power:        mnp.PowerSim,
		Seed:         1,
		Limit:        time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("completed:", res.Completed)
	fmt.Println("nodes reprogrammed:", res.Network.CompletedCount())
	fmt.Println("verified:", res.VerifyImages() == nil)
	// Output:
	// completed: true
	// nodes reprogrammed: 9
	// verified: true
}

// ExampleRunExperiment regenerates the paper's Table 1.
func ExampleRunExperiment() {
	report, err := mnp.RunExperiment("T1", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)
	// Output:
	// Table 1: power required by various Mica operations (nAh)
	//   Transmitting a packet                20.000
	//   Receiving a packet                    8.000
	//   Idle listening for 1 millisecond      1.250
	//   EEPROM Read 16 Data bytes             1.111
	//   EEPROM Write 16 Data bytes           83.333
	//   (1 s of idle listening = 1250 nAh = 62 packet transmissions)
}

// ExampleExperiments lists the reproducible paper artifacts.
func ExampleExperiments() {
	for _, spec := range mnp.Experiments()[:3] {
		fmt.Println(spec.ID, "—", spec.Title)
	}
	// Output:
	// T1 — Table 1: power required by various Mica operations
	// F5 — Figure 5: indoor 3x5 grid, power levels 3 and 4
	// F6 — Figure 6: outdoor 5x5 grid, full and low power
}
