package core

import (
	"testing"
	"time"

	"mnp/internal/image"
	"mnp/internal/invariant"
	"mnp/internal/node"
	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/sim"
	"mnp/internal/topology"
)

// testnet bundles a full simulated MNP deployment. Every net built by
// buildNet runs with the online protocol-invariant checker attached;
// verifyAll enforces it.
type testnet struct {
	kernel  *sim.Kernel
	medium  *radio.Medium
	network *node.Network
	img     *image.Image
	protos  []*MNP
	checker *invariant.Checker
}

type netOpts struct {
	rows, cols int
	spacing    float64
	segments   int
	seed       int64
	power      int
	radioMod   func(*radio.Params)
	cfgMod     func(id packet.NodeID, c *Config)
}

func buildNet(t *testing.T, o netOpts) *testnet {
	t.Helper()
	if o.power == 0 {
		o.power = radio.PowerSim
	}
	if o.spacing == 0 {
		o.spacing = 10
	}
	if o.segments == 0 {
		o.segments = 1
	}
	img, err := image.Random(1, o.segments, o.seed+100)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := topology.Grid(o.rows, o.cols, o.spacing)
	if err != nil {
		t.Fatal(err)
	}
	kernel := sim.New(o.seed)
	rp := radio.DefaultParams()
	if o.radioMod != nil {
		o.radioMod(&rp)
	}
	medium, err := radio.NewMedium(kernel, layout, rp, o.seed+1)
	if err != nil {
		t.Fatal(err)
	}
	rangeFt, err := medium.RangeFor(o.power)
	if err != nil {
		t.Fatal(err)
	}
	chk, err := invariant.New(invariant.Config{
		Now:     kernel.Now,
		Airtime: medium.Airtime,
		Neighbor: func(a, b packet.NodeID) bool {
			d, err := layout.Distance(a, b)
			return err == nil && d <= rangeFt
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	medium.SetTap(chk.PacketSent)
	tn := &testnet{kernel: kernel, medium: medium, img: img, checker: chk}
	nw, err := node.NewNetwork(kernel, medium, layout, func(id packet.NodeID) (node.Protocol, node.Config) {
		cfg := DefaultConfig()
		if id == 0 {
			cfg.Base = true
			cfg.Image = img
		}
		if o.cfgMod != nil {
			o.cfgMod(id, &cfg)
		}
		m := New(cfg)
		tn.protos = append(tn.protos, m)
		return m, node.Config{TxPower: o.power}
	}, chk)
	if err != nil {
		t.Fatal(err)
	}
	tn.network = nw
	nw.Start()
	return tn
}

// verifyAll checks the paper's reliability requirements on every live
// node: accuracy (byte-identical image) and the EEPROM write-once
// invariant.
func (tn *testnet) verifyAll(t *testing.T) {
	t.Helper()
	for _, n := range tn.network.Nodes {
		if n.Dead() {
			continue
		}
		if !n.Completed() {
			t.Fatalf("node %v did not complete", n.ID())
		}
		data, err := tn.img.Reassemble(func(seg, pkt int) []byte {
			return n.EEPROM().Read(seg, pkt)
		})
		if err != nil {
			t.Fatalf("node %v: reassemble: %v", n.ID(), err)
		}
		if !tn.img.Verify(data) {
			t.Fatalf("node %v: image mismatch", n.ID())
		}
		if w := n.EEPROM().MaxWriteCount(); w > 1 {
			t.Fatalf("node %v: EEPROM write-once violated (max %d)", n.ID(), w)
		}
	}
	tn.checker.Check(t)
}

func TestTwoNodeDissemination(t *testing.T) {
	tn := buildNet(t, netOpts{rows: 1, cols: 2, segments: 1, seed: 1})
	if !tn.network.RunUntilComplete(30 * time.Minute) {
		t.Fatalf("dissemination incomplete: %d/%d", tn.network.CompletedCount(), len(tn.network.Nodes))
	}
	tn.verifyAll(t)
}

func TestLineMultihopDissemination(t *testing.T) {
	// 1×6 line at 20 ft spacing, 27 ft range: strictly multihop.
	tn := buildNet(t, netOpts{rows: 1, cols: 6, spacing: 20, segments: 1, seed: 2})
	if !tn.network.RunUntilComplete(60 * time.Minute) {
		t.Fatalf("dissemination incomplete: %d/%d", tn.network.CompletedCount(), len(tn.network.Nodes))
	}
	tn.verifyAll(t)
}

func TestGridDisseminationPipelined(t *testing.T) {
	tn := buildNet(t, netOpts{rows: 5, cols: 5, segments: 3, seed: 3})
	if !tn.network.RunUntilComplete(2 * time.Hour) {
		t.Fatalf("dissemination incomplete: %d/%d", tn.network.CompletedCount(), len(tn.network.Nodes))
	}
	tn.verifyAll(t)
}

func TestSegmentsArriveInOrder(t *testing.T) {
	tn := buildNet(t, netOpts{rows: 1, cols: 4, spacing: 20, segments: 3, seed: 4})
	if !tn.network.RunUntilComplete(2 * time.Hour) {
		t.Fatal("dissemination incomplete")
	}
	// Pipelining invariant: every node's RvdSeg reached the total, and
	// the protocol only ever advances rvdSeg by one, so order followed.
	for _, p := range tn.protos {
		if p.RvdSeg() != tn.img.Segments() {
			t.Fatalf("rvdSeg = %d", p.RvdSeg())
		}
	}
	tn.verifyAll(t)
}

func TestDisseminationUnderHeavyLoss(t *testing.T) {
	tn := buildNet(t, netOpts{
		rows: 2, cols: 3, segments: 1, seed: 5,
		radioMod: func(p *radio.Params) {
			p.BERFloor = 8e-4 // ~9% frame loss even at zero distance
			p.BERCeil = 3e-2
		},
	})
	if !tn.network.RunUntilComplete(4 * time.Hour) {
		t.Fatalf("lossy dissemination incomplete: %d/%d", tn.network.CompletedCount(), len(tn.network.Nodes))
	}
	tn.verifyAll(t)
}

func TestSenderDeathRecovery(t *testing.T) {
	// Kill the base station after the first row of nodes has the
	// program; coverage of the rest must still complete via survivors.
	tn := buildNet(t, netOpts{rows: 1, cols: 4, spacing: 20, segments: 1, seed: 6})
	killed := false
	tn.kernel.RunUntil(func() bool {
		if !killed && tn.network.Node(1).Completed() {
			killed = true
			tn.network.Node(0).Kill()
		}
		return tn.network.AllCompleted()
	}, 2*time.Hour)
	if !tn.network.AllCompleted() {
		t.Fatalf("recovery incomplete: %d/%d", tn.network.CompletedCount(), len(tn.network.Nodes))
	}
	tn.verifyAll(t)
}

func TestMidStreamParentDeathTriggersFailAndRetry(t *testing.T) {
	// Kill the base mid-transfer: receivers must hit the download
	// watchdog, fail, and re-acquire from nothing — with only two nodes
	// the network is then partitioned, so the receiver simply must not
	// wedge or falsely complete.
	tn := buildNet(t, netOpts{rows: 1, cols: 3, spacing: 5, segments: 1, seed: 7})
	sawDownload := false
	tn.kernel.RunUntil(func() bool {
		if !sawDownload {
			for _, p := range tn.protos[1:] {
				if p.State() == StateDownload {
					sawDownload = true
					tn.network.Node(0).Kill()
					break
				}
			}
		}
		return tn.network.AllCompleted()
	}, 30*time.Minute)
	if !sawDownload {
		t.Skip("transfer never observed mid-stream")
	}
	// Nodes 1 and 2 hold partial data; with the only source dead they
	// must be idle/failed (not stuck in download forever), unless one
	// completed before the kill and then re-served the other.
	tn.kernel.Run(30 * time.Minute)
	for _, p := range tn.protos[1:] {
		if p.State() == StateDownload || p.State() == StateUpdate {
			t.Fatalf("receiver wedged in %v after parent death", p.State())
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() time.Duration {
		tn := buildNet(t, netOpts{rows: 3, cols: 3, segments: 1, seed: 9})
		if !tn.network.RunUntilComplete(time.Hour) {
			t.Fatal("incomplete")
		}
		return tn.network.CompletionTime()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different completion times: %v vs %v", a, b)
	}
}

func TestAtMostOneSenderPerNeighborhood(t *testing.T) {
	// The paper's headline property: "the sender selection algorithm
	// ensured that two nearby sensors never transmitted simultaneously."
	// We count data-transmission overlap among mutually-audible senders.
	o := netOpts{rows: 4, cols: 4, segments: 2, seed: 10}
	img, err := image.Random(1, o.segments, o.seed+100)
	if err != nil {
		t.Fatal(err)
	}
	layout, _ := topology.Grid(o.rows, o.cols, 10)
	kernel := sim.New(o.seed)
	medium, err := radio.NewMedium(kernel, layout, radio.DefaultParams(), o.seed+1)
	if err != nil {
		t.Fatal(err)
	}
	type senderWindow struct {
		id    packet.NodeID
		until time.Duration
	}
	var active []senderWindow
	violations := 0
	sink := &funcSink{onSent: func(src packet.NodeID, kind packet.Kind, bytes int) {
		if kind != packet.KindData {
			return
		}
		now := kernel.Now()
		end := now + medium.Airtime(bytes)
		live := active[:0]
		for _, w := range active {
			if w.until > now {
				live = append(live, w)
			}
		}
		active = live
		for _, w := range active {
			d, err := layout.Distance(src, w.id)
			if err == nil && d <= 27 { // PowerSim range: same neighborhood
				violations++
			}
		}
		active = append(active, senderWindow{id: src, until: end})
	}}
	medium.SetSink(sink)
	nw, err := node.NewNetwork(kernel, medium, layout, func(id packet.NodeID) (node.Protocol, node.Config) {
		cfg := DefaultConfig()
		if id == 0 {
			cfg.Base = true
			cfg.Image = img
		}
		return New(cfg), node.Config{TxPower: radio.PowerSim}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	if !nw.RunUntilComplete(4 * time.Hour) {
		t.Fatalf("incomplete: %d/%d", nw.CompletedCount(), len(nw.Nodes))
	}
	totalData := 0
	for range nw.Nodes {
		totalData++
	}
	// Time-varying links make perfection impossible (the paper says the
	// same); require the overlap count to be a tiny fraction of data
	// transmissions.
	if violations > 25 {
		t.Fatalf("concurrent same-neighborhood data senders: %d overlaps", violations)
	}
}

type funcSink struct {
	onSent func(packet.NodeID, packet.Kind, int)
}

func (s *funcSink) FrameSent(src packet.NodeID, k packet.Kind, b int) {
	if s.onSent != nil {
		s.onSent(src, k, b)
	}
}
func (s *funcSink) FrameReceived(packet.NodeID, packet.NodeID, packet.Kind, int) {}
func (s *funcSink) FrameCollided(packet.NodeID, packet.NodeID, packet.Kind)      {}

func TestRebootSignalFloodsNetwork(t *testing.T) {
	tn := buildNet(t, netOpts{rows: 2, cols: 3, segments: 1, seed: 12})
	if !tn.network.RunUntilComplete(time.Hour) {
		t.Fatal("incomplete")
	}
	tn.protos[0].Reboot()
	tn.kernel.Run(tn.kernel.Now() + 10*time.Second)
	rebooted := 0
	for _, p := range tn.protos {
		if p.Rebooted() {
			rebooted++
		}
	}
	if rebooted != len(tn.protos) {
		t.Fatalf("rebooted %d/%d nodes", rebooted, len(tn.protos))
	}
}

func TestNoPipeliningStillCompletes(t *testing.T) {
	tn := buildNet(t, netOpts{
		rows: 1, cols: 4, spacing: 20, segments: 2, seed: 13,
		cfgMod: func(_ packet.NodeID, c *Config) { c.NoPipelining = true },
	})
	if !tn.network.RunUntilComplete(4 * time.Hour) {
		t.Fatalf("basic-mode dissemination incomplete: %d/%d", tn.network.CompletedCount(), len(tn.network.Nodes))
	}
	tn.verifyAll(t)
}

// jammer blasts junk control frames at a fixed cadence, modelling
// external interference sharing the channel.
type jammer struct {
	rt       node.Runtime
	interval time.Duration
}

func (j *jammer) Init(rt node.Runtime) {
	j.rt = rt
	rt.RadioOn()
	rt.SetTimer(1, j.interval)
}

func (j *jammer) OnPacket(packet.Packet, packet.NodeID) {}

func (j *jammer) OnTimer(node.TimerID) {
	_ = j.rt.Send(&packet.Query{Src: j.rt.ID(), ProgramID: 77, SegID: 1})
	j.rt.SetTimer(1, j.interval)
}

func TestDisseminationSurvivesJammer(t *testing.T) {
	// One node in the middle of a 3x3 grid is a jammer transmitting
	// junk every 120 ms (≈12% channel occupancy in its neighborhood).
	// Dissemination must still cover every real node.
	img, err := image.Random(1, 1, 71)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := topology.Grid(3, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	kernel := sim.New(72)
	medium, err := radio.NewMedium(kernel, layout, radio.DefaultParams(), 73)
	if err != nil {
		t.Fatal(err)
	}
	const jammerID = packet.NodeID(4) // the center node
	nw, err := node.NewNetwork(kernel, medium, layout, func(id packet.NodeID) (node.Protocol, node.Config) {
		if id == jammerID {
			return &jammer{interval: 120 * time.Millisecond}, node.Config{TxPower: radio.PowerSim}
		}
		cfg := DefaultConfig()
		if id == 0 {
			cfg.Base = true
			cfg.Image = img
		}
		return New(cfg), node.Config{TxPower: radio.PowerSim}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	covered := func() bool {
		for _, n := range nw.Nodes {
			if n.ID() != jammerID && !n.Completed() {
				return false
			}
		}
		return true
	}
	if !kernel.RunUntil(covered, 6*time.Hour) {
		done := 0
		for _, n := range nw.Nodes {
			if n.Completed() {
				done++
			}
		}
		t.Fatalf("jammed dissemination incomplete: %d/8 real nodes", done)
	}
	for _, n := range nw.Nodes {
		if n.ID() == jammerID {
			continue
		}
		data, err := img.Reassemble(func(seg, pkt int) []byte { return n.EEPROM().Read(seg, pkt) })
		if err != nil {
			t.Fatalf("node %v: %v", n.ID(), err)
		}
		if !img.Verify(data) {
			t.Fatalf("node %v image mismatch under jamming", n.ID())
		}
	}
}

func TestOverTheAirVersionUpgrade(t *testing.T) {
	// Round 1: program 1 reaches everyone. Round 2: the operator loads
	// program 2 at the base over serial; the network upgrades itself
	// over the air.
	tn := buildNet(t, netOpts{rows: 3, cols: 3, segments: 1, seed: 41})
	if !tn.network.RunUntilComplete(time.Hour) {
		t.Fatal("initial dissemination incomplete")
	}
	img2, err := image.Random(2, 2, 141)
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.protos[0].LoadProgram(img2); err != nil {
		t.Fatal(err)
	}
	upgraded := func() bool {
		for _, p := range tn.protos {
			if p.RvdSeg() != img2.Segments() {
				return false
			}
		}
		return true
	}
	if !tn.kernel.RunUntil(upgraded, 6*time.Hour) {
		done := 0
		for _, p := range tn.protos {
			if p.RvdSeg() == img2.Segments() {
				done++
			}
		}
		t.Fatalf("upgrade incomplete: %d/%d nodes on v2", done, len(tn.protos))
	}
	for _, n := range tn.network.Nodes {
		data, err := img2.Reassemble(func(seg, pkt int) []byte {
			return n.EEPROM().Read(seg, pkt)
		})
		if err != nil {
			t.Fatalf("node %v: %v", n.ID(), err)
		}
		if !img2.Verify(data) {
			t.Fatalf("node %v holds a wrong v2 image", n.ID())
		}
		if w := n.EEPROM().MaxWriteCount(); w > 1 {
			t.Fatalf("node %v: write-once violated after upgrade (max %d)", n.ID(), w)
		}
	}
}

func TestRandomTopologyDissemination(t *testing.T) {
	// The paper makes no assumption about topology beyond connectivity;
	// a random connected placement must reach full coverage too.
	img, err := image.Random(1, 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := topology.ConnectedRandom(16, 60, 60, 27, 31, 25)
	if err != nil {
		t.Fatal(err)
	}
	kernel := sim.New(32)
	medium, err := radio.NewMedium(kernel, layout, radio.DefaultParams(), 33)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := node.NewNetwork(kernel, medium, layout, func(id packet.NodeID) (node.Protocol, node.Config) {
		cfg := DefaultConfig()
		if id == 0 {
			cfg.Base = true
			cfg.Image = img
		}
		return New(cfg), node.Config{TxPower: radio.PowerSim}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	if !nw.RunUntilComplete(6 * time.Hour) {
		t.Fatalf("random topology incomplete: %d/%d", nw.CompletedCount(), len(nw.Nodes))
	}
	for _, n := range nw.Nodes {
		data, err := img.Reassemble(func(seg, pkt int) []byte { return n.EEPROM().Read(seg, pkt) })
		if err != nil {
			t.Fatalf("node %v: %v", n.ID(), err)
		}
		if !img.Verify(data) {
			t.Fatalf("node %v image mismatch", n.ID())
		}
	}
}

func TestQueryUpdateDisabledStillCompletes(t *testing.T) {
	tn := buildNet(t, netOpts{
		rows: 2, cols: 3, segments: 1, seed: 14,
		cfgMod: func(_ packet.NodeID, c *Config) { c.QueryUpdate = false },
	})
	if !tn.network.RunUntilComplete(2 * time.Hour) {
		t.Fatalf("no-repair dissemination incomplete: %d/%d", tn.network.CompletedCount(), len(tn.network.Nodes))
	}
	tn.verifyAll(t)
}
