package core

import (
	"testing"

	"mnp/internal/bitvec"
	"mnp/internal/image"
	"mnp/internal/packet"
)

// testImage returns a small 2-segment image: 8 packets per segment,
// 4-byte payloads.
func testImage(t *testing.T, segments int) *image.Image {
	t.Helper()
	im, err := image.Random(1, segments, 11, image.WithSegmentPackets(8), image.WithPayloadSize(4))
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// newBase returns an initialized base-station MNP over a fake runtime.
func newBase(t *testing.T, id packet.NodeID, segments int, mod func(*Config)) (*MNP, *fakeRuntime) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Base = true
	cfg.Image = testImage(t, segments)
	if mod != nil {
		mod(&cfg)
	}
	m := New(cfg)
	rt := newFakeRuntime(id)
	m.Init(rt)
	return m, rt
}

// newReceiver returns an idle MNP that has learned the program
// geometry from one advertisement sent by advSrc.
func newReceiver(t *testing.T, id packet.NodeID, segments int, mod func(*Config)) (*MNP, *fakeRuntime) {
	t.Helper()
	cfg := DefaultConfig()
	if mod != nil {
		mod(&cfg)
	}
	m := New(cfg)
	rt := newFakeRuntime(id)
	m.Init(rt)
	return m, rt
}

func advFrom(src packet.NodeID, segID, reqCtr int, segments int) *packet.Advertise {
	return &packet.Advertise{
		Src:             src,
		ProgramID:       1,
		ProgramSegments: uint8(segments),
		SegID:           uint8(segID),
		SegNominal:      8,
		TotalPackets:    uint16(8 * segments),
		ReqCtr:          uint8(reqCtr),
	}
}

func TestBaseInitPreloadsAndAdvertises(t *testing.T) {
	m, rt := newBase(t, 0, 2, nil)
	if m.State() != StateAdvertise {
		t.Fatalf("state = %v, want advertise", m.State())
	}
	if !rt.done {
		t.Fatal("base not marked complete")
	}
	if m.RvdSeg() != 2 {
		t.Fatalf("RvdSeg = %d", m.RvdSeg())
	}
	if got := rt.store.Slots(); got != 16 {
		t.Fatalf("preloaded slots = %d, want 16", got)
	}
	if m.advSeg != 2 {
		t.Fatalf("advSeg = %d, want highest segment", m.advSeg)
	}
	if !rt.TimerPending(timerAdvertise) {
		t.Fatal("no advertise timer set")
	}
}

func TestBaseWithoutImagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for base without image")
		}
	}()
	m := New(Config{Base: true})
	m.Init(newFakeRuntime(0))
}

func TestAdvertiseTickSendsAndReschedules(t *testing.T) {
	m, rt := newBase(t, 0, 2, nil)
	m.OnTimer(timerAdvertise)
	a, ok := rt.lastSent(packet.KindAdvertise).(*packet.Advertise)
	if !ok {
		t.Fatal("no advertisement sent")
	}
	if a.Src != 0 || a.SegID != 2 || a.ProgramSegments != 2 || a.TotalPackets != 16 || a.ReqCtr != 0 {
		t.Fatalf("bad advertisement: %+v", a)
	}
	if !rt.TimerPending(timerAdvertise) {
		t.Fatal("advertise timer not rescheduled")
	}
}

func TestRequestPullsAdvertisedSegmentDownAndCountsDistinctRequesters(t *testing.T) {
	m, _ := newBase(t, 0, 2, nil)
	miss, _ := bitvec.AllSet(8)
	req := &packet.DownloadRequest{
		Src: 7, DestID: 0, ProgramID: 1, SegID: 1, SegPackets: 8, Missing: miss,
	}
	m.OnPacket(req, 7)
	if m.advSeg != 1 {
		t.Fatalf("advSeg = %d, want 1 (rule 3)", m.advSeg)
	}
	if m.ReqCtr() != 1 {
		t.Fatalf("ReqCtr = %d, want 1", m.ReqCtr())
	}
	m.OnPacket(req, 7) // same requester again
	if m.ReqCtr() != 1 {
		t.Fatalf("duplicate requester counted: ReqCtr = %d", m.ReqCtr())
	}
	req2 := &packet.DownloadRequest{
		Src: 8, DestID: 0, ProgramID: 1, SegID: 1, SegPackets: 8, Missing: miss,
	}
	m.OnPacket(req2, 8)
	if m.ReqCtr() != 2 {
		t.Fatalf("ReqCtr = %d, want 2", m.ReqCtr())
	}
}

func TestRequestForSegmentWeLackIsIgnored(t *testing.T) {
	m, _ := newBase(t, 0, 2, nil)
	req := &packet.DownloadRequest{Src: 7, DestID: 0, ProgramID: 1, SegID: 3, SegPackets: 8}
	m.OnPacket(req, 7)
	if m.ReqCtr() != 0 {
		t.Fatal("counted a request for a segment beyond the program")
	}
}

func TestConcedeToAdvertiserWithMoreRequesters(t *testing.T) {
	m, rt := newBase(t, 5, 2, nil)
	// Give ourselves one requester on segment 2.
	miss, _ := bitvec.AllSet(8)
	m.OnPacket(&packet.DownloadRequest{Src: 9, DestID: 5, ProgramID: 1, SegID: 2, SegPackets: 8, Missing: miss}, 9)
	if m.ReqCtr() != 1 {
		t.Fatalf("setup: ReqCtr = %d", m.ReqCtr())
	}
	// A same-segment advertiser with 2 requesters wins.
	m.OnPacket(advFrom(3, 2, 2, 2), 3)
	if m.State() != StateSleep {
		t.Fatalf("state = %v, want sleep", m.State())
	}
	if rt.radioOn {
		t.Fatal("radio still on in sleep state")
	}
	if m.ReqCtr() != 0 {
		t.Fatal("ReqCtr not reset on concession")
	}
}

func TestTieBrokenByNodeID(t *testing.T) {
	// Equal ReqCtr: the higher node ID wins, so node 5 concedes to 9
	// but not to 2.
	m, _ := newBase(t, 5, 2, nil)
	miss, _ := bitvec.AllSet(8)
	m.OnPacket(&packet.DownloadRequest{Src: 9, DestID: 5, ProgramID: 1, SegID: 2, SegPackets: 8, Missing: miss}, 9)

	m.OnPacket(advFrom(2, 2, 1, 2), 2)
	if m.State() != StateAdvertise {
		t.Fatalf("conceded to lower ID on tie: %v", m.State())
	}
	m.OnPacket(advFrom(9, 2, 1, 2), 9)
	if m.State() != StateSleep {
		t.Fatalf("did not concede to higher ID on tie: %v", m.State())
	}
}

func TestAdvertiserWithNoRequestersDoesNotForceSleep(t *testing.T) {
	m, _ := newBase(t, 5, 2, nil)
	m.OnPacket(advFrom(9, 2, 0, 2), 9)
	if m.State() != StateAdvertise {
		t.Fatalf("conceded to an advertiser with ReqCtr=0: %v", m.State())
	}
}

func TestOverheardRequestTriggersConcession(t *testing.T) {
	// The hidden-terminal defence: node 5 never heard node 3's
	// advertisements, but a request destined to 3 carrying ReqCtr=4
	// still silences node 5.
	m, _ := newBase(t, 5, 2, nil)
	req := &packet.DownloadRequest{
		Src: 9, DestID: 3, ProgramID: 1, SegID: 2, SegPackets: 8, EchoReqCtr: 4,
	}
	m.OnPacket(req, 9)
	if m.State() != StateSleep {
		t.Fatalf("state = %v, want sleep", m.State())
	}
}

func TestLowerSegmentGetsPriority(t *testing.T) {
	// §3.1.2 rule 4: an advertiser of a lower segment with at least one
	// requester silences higher-segment advertisers regardless of their
	// own count.
	m, _ := newBase(t, 5, 2, nil)
	miss, _ := bitvec.AllSet(8)
	for _, src := range []packet.NodeID{7, 8, 9} {
		m.OnPacket(&packet.DownloadRequest{Src: src, DestID: 5, ProgramID: 1, SegID: 2, SegPackets: 8, Missing: miss}, src)
	}
	if m.ReqCtr() != 3 {
		t.Fatalf("setup: ReqCtr = %d", m.ReqCtr())
	}
	m.OnPacket(advFrom(3, 1, 1, 2), 3)
	if m.State() != StateSleep {
		t.Fatalf("state = %v, want sleep (lower segment priority)", m.State())
	}
}

func TestBecomeSenderAfterKAdvertisements(t *testing.T) {
	m, rt := newBase(t, 0, 2, nil)
	miss, _ := bitvec.AllSet(8)
	m.OnPacket(&packet.DownloadRequest{Src: 7, DestID: 0, ProgramID: 1, SegID: 1, SegPackets: 8, Missing: miss}, 7)
	advanceAdvRounds(m, DefaultConfig().AdvertiseCount+1)
	if m.State() != StateForward {
		t.Fatalf("state = %v, want forward", m.State())
	}
	sd, ok := rt.lastSent(packet.KindStartDownload).(*packet.StartDownload)
	if !ok {
		t.Fatal("no StartDownload sent")
	}
	if sd.SegID != 1 || sd.SegPackets != 8 {
		t.Fatalf("StartDownload = %+v", sd)
	}
}

func TestForwardSendsOnlyRequestedPackets(t *testing.T) {
	m, rt := newBase(t, 0, 1, nil)
	miss := bitvec.MustNew(8)
	miss.Set(1)
	miss.Set(3)
	m.OnPacket(&packet.DownloadRequest{Src: 7, DestID: 0, ProgramID: 1, SegID: 1, SegPackets: 8, Missing: miss}, 7)
	advanceAdvRounds(m, DefaultConfig().AdvertiseCount+1)
	// Drive the data pacer to exhaustion.
	for i := 0; i < 20 && m.State() == StateForward; i++ {
		m.OnTimer(timerForwardData)
	}
	var ids []int
	for _, p := range rt.sent {
		if d, ok := p.(*packet.Data); ok {
			ids = append(ids, int(d.PacketID))
		}
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("data packets sent = %v, want [1 3]", ids)
	}
	if rt.sentCount(packet.KindEndDownload) != 1 {
		t.Fatal("no EndDownload sent")
	}
	if m.State() != StateQuery {
		t.Fatalf("state = %v, want query (QueryUpdate on)", m.State())
	}
	if rt.sentCount(packet.KindQuery) != 1 {
		t.Fatal("no Query sent")
	}
}

func TestForwardWithoutQueryUpdateSleepsAfterEnd(t *testing.T) {
	m, rt := newBase(t, 0, 1, func(c *Config) { c.QueryUpdate = false })
	miss, _ := bitvec.AllSet(8)
	m.OnPacket(&packet.DownloadRequest{Src: 7, DestID: 0, ProgramID: 1, SegID: 1, SegPackets: 8, Missing: miss}, 7)
	advanceAdvRounds(m, DefaultConfig().AdvertiseCount+1)
	for i := 0; i < 20 && m.State() == StateForward; i++ {
		m.OnTimer(timerForwardData)
	}
	if m.State() != StateSleep {
		t.Fatalf("state = %v, want sleep", m.State())
	}
	if rt.sentCount(packet.KindData) != 8 {
		t.Fatalf("sent %d data packets, want 8", rt.sentCount(packet.KindData))
	}
}

func TestRepairRequestServedInQueryState(t *testing.T) {
	m, rt := newBase(t, 0, 1, nil)
	miss, _ := bitvec.AllSet(8)
	m.OnPacket(&packet.DownloadRequest{Src: 7, DestID: 0, ProgramID: 1, SegID: 1, SegPackets: 8, Missing: miss}, 7)
	advanceAdvRounds(m, DefaultConfig().AdvertiseCount+1)
	for i := 0; i < 20 && m.State() == StateForward; i++ {
		m.OnTimer(timerForwardData)
	}
	if m.State() != StateQuery {
		t.Fatalf("setup: state = %v", m.State())
	}
	before := rt.sentCount(packet.KindData)
	m.OnPacket(&packet.RepairRequest{Src: 7, DestID: 0, ProgramID: 1, SegID: 1, PacketID: 5}, 7)
	if rt.sentCount(packet.KindData) != before+1 {
		t.Fatal("repair request not served")
	}
	// A repair request for someone else is ignored.
	m.OnPacket(&packet.RepairRequest{Src: 7, DestID: 3, ProgramID: 1, SegID: 1, PacketID: 5}, 7)
	if rt.sentCount(packet.KindData) != before+1 {
		t.Fatal("served a repair request destined elsewhere")
	}
	// Timeout ends the repair phase: sender sleeps.
	m.OnTimer(timerQueryWait)
	if m.State() != StateSleep {
		t.Fatalf("state after query timeout = %v, want sleep", m.State())
	}
}

func TestFruitlessRoundsDutyCycleWithBackoff(t *testing.T) {
	m, rt := newBase(t, 0, 2, nil)
	base := m.advInterval
	// A round of K advertisements with no requesters ends in radio-off
	// dormancy with a doubled interval.
	advanceAdvRounds(m, DefaultConfig().AdvertiseCount+1)
	if m.State() != StateSleep {
		t.Fatalf("state = %v, want dormant sleep", m.State())
	}
	if rt.radioOn {
		t.Fatal("radio on during dormancy")
	}
	if m.advInterval != 2*base {
		t.Fatalf("advInterval = %v, want doubled %v", m.advInterval, 2*base)
	}
	// Waking resumes advertising without resetting the backoff.
	m.OnTimer(timerSleep)
	if m.State() != StateAdvertise || !rt.radioOn {
		t.Fatalf("after wake: state = %v, radio = %v", m.State(), rt.radioOn)
	}
	if m.advInterval != 2*base {
		t.Fatalf("wake reset the backoff: %v", m.advInterval)
	}
	// Repeated fruitless rounds cap at MaxAdvertiseInterval.
	for i := 0; i < 100; i++ {
		advanceAdvRounds(m, DefaultConfig().AdvertiseCount+1)
		m.OnTimer(timerSleep)
	}
	if m.advInterval > DefaultConfig().MaxAdvertiseInterval {
		t.Fatalf("advInterval %v exceeds cap", m.advInterval)
	}
	// A download request restores full advertisement frequency.
	miss, _ := bitvec.AllSet(8)
	m.OnPacket(&packet.DownloadRequest{Src: 7, DestID: 0, ProgramID: 1, SegID: 2, SegPackets: 8, Missing: miss}, 7)
	if m.advInterval != base {
		t.Fatalf("request did not reset backoff: %v", m.advInterval)
	}
}

func TestReceiverRequestsExpectedSegment(t *testing.T) {
	m, rt := newReceiver(t, 9, 2, nil)
	if m.State() != StateIdle {
		t.Fatalf("initial state = %v", m.State())
	}
	// Advertiser offers segment 2; we hold nothing, so we ask for 1.
	m.OnPacket(advFrom(4, 2, 0, 2), 4)
	req, ok := rt.lastSent(packet.KindDownloadRequest).(*packet.DownloadRequest)
	if !ok {
		t.Fatal("no download request sent")
	}
	if req.DestID != 4 || req.SegID != 1 || req.SegPackets != 8 {
		t.Fatalf("request = %+v", req)
	}
	if req.Missing == nil || req.Missing.Count() != 8 {
		t.Fatalf("missing vector = %v, want all 8 set", req.Missing)
	}
	if req.EchoReqCtr != 0 {
		t.Fatalf("EchoReqCtr = %d", req.EchoReqCtr)
	}
	// An advertisement for a segment we already logically hold (0 < 1
	// is impossible; use segID <= rvdSeg after download) — covered in
	// download flow tests.
}

func TestDownloadFlowCompleteSegment(t *testing.T) {
	m, rt := newReceiver(t, 9, 2, nil)
	im := testImage(t, 2)
	m.OnPacket(advFrom(4, 2, 0, 2), 4)
	m.OnPacket(&packet.StartDownload{Src: 4, ProgramID: 1, SegID: 1, SegPackets: 8}, 4)
	if m.State() != StateDownload {
		t.Fatalf("state = %v, want download", m.State())
	}
	if p, ok := m.Parent(); !ok || p != 4 {
		t.Fatalf("parent = %v/%v", p, ok)
	}
	for pkt := 0; pkt < 8; pkt++ {
		payload, _ := im.Payload(1, pkt)
		m.OnPacket(&packet.Data{Src: 4, ProgramID: 1, SegID: 1, PacketID: uint8(pkt), Payload: payload}, 4)
	}
	// Duplicates must not rewrite EEPROM.
	payload, _ := im.Payload(1, 0)
	m.OnPacket(&packet.Data{Src: 4, ProgramID: 1, SegID: 1, PacketID: 0, Payload: payload}, 4)
	if got := rt.store.MaxWriteCount(); got != 1 {
		t.Fatalf("EEPROM write-once violated: max writes = %d", got)
	}
	m.OnPacket(&packet.EndDownload{Src: 4, ProgramID: 1, SegID: 1}, 4)
	if m.RvdSeg() != 1 {
		t.Fatalf("RvdSeg = %d, want 1", m.RvdSeg())
	}
	if m.State() != StateAdvertise {
		t.Fatalf("state = %v, want advertise (pipelining)", m.State())
	}
	if rt.done {
		t.Fatal("completed with only 1 of 2 segments")
	}
}

func TestDataFromAnySenderAccepted(t *testing.T) {
	m, _ := newReceiver(t, 9, 1, nil)
	im := testImage(t, 1)
	m.OnPacket(advFrom(4, 1, 0, 1), 4)
	m.OnPacket(&packet.StartDownload{Src: 4, ProgramID: 1, SegID: 1, SegPackets: 8}, 4)
	// Packets arrive from node 6, not the parent; still stored.
	payload, _ := im.Payload(1, 2)
	m.OnPacket(&packet.Data{Src: 6, ProgramID: 1, SegID: 1, PacketID: 2, Payload: payload}, 6)
	if m.missing.Get(2) {
		t.Fatal("packet from non-parent not stored")
	}
}

func TestIdleNodeJoinsStreamOnData(t *testing.T) {
	// A node that missed StartDownload joins on the first data packet
	// of the segment it expects.
	m, _ := newReceiver(t, 9, 1, nil)
	im := testImage(t, 1)
	m.OnPacket(advFrom(4, 1, 0, 1), 4)
	if m.State() != StateIdle {
		t.Fatalf("state = %v", m.State())
	}
	payload, _ := im.Payload(1, 5)
	m.OnPacket(&packet.Data{Src: 4, ProgramID: 1, SegID: 1, PacketID: 5, Payload: payload}, 4)
	if m.State() != StateDownload {
		t.Fatalf("state = %v, want download", m.State())
	}
	if m.missing.Get(5) {
		t.Fatal("joining data packet not stored")
	}
}

func TestMissingVectorPersistsAcrossAttempts(t *testing.T) {
	m, rt := newReceiver(t, 9, 1, nil)
	im := testImage(t, 1)
	m.OnPacket(advFrom(4, 1, 0, 1), 4)
	m.OnPacket(&packet.StartDownload{Src: 4, ProgramID: 1, SegID: 1, SegPackets: 8}, 4)
	for pkt := 0; pkt < 4; pkt++ {
		payload, _ := im.Payload(1, pkt)
		m.OnPacket(&packet.Data{Src: 4, ProgramID: 1, SegID: 1, PacketID: uint8(pkt), Payload: payload}, 4)
	}
	// Watchdog fires: fail, back to idle, partial segment retained.
	m.OnTimer(timerDownloadWatchdog)
	if m.State() != StateIdle {
		t.Fatalf("state = %v, want idle after fail", m.State())
	}
	// The next request advertises only the 4 missing packets.
	m.OnPacket(advFrom(4, 1, 0, 1), 4)
	req := rt.lastSent(packet.KindDownloadRequest).(*packet.DownloadRequest)
	if req.Missing.Count() != 4 {
		t.Fatalf("missing count = %d, want 4", req.Missing.Count())
	}
	// Retried download rewrites nothing.
	m.OnPacket(&packet.StartDownload{Src: 4, ProgramID: 1, SegID: 1, SegPackets: 8}, 4)
	for pkt := 0; pkt < 8; pkt++ {
		payload, _ := im.Payload(1, pkt)
		m.OnPacket(&packet.Data{Src: 4, ProgramID: 1, SegID: 1, PacketID: uint8(pkt), Payload: payload}, 4)
	}
	if got := rt.store.MaxWriteCount(); got != 1 {
		t.Fatalf("retry rewrote EEPROM: max writes = %d", got)
	}
	m.OnPacket(&packet.EndDownload{Src: 4, ProgramID: 1, SegID: 1}, 4)
	if !rt.done {
		t.Fatal("single-segment program not complete")
	}
}

func TestQueryUpdateRepairLoop(t *testing.T) {
	m, rt := newReceiver(t, 9, 1, nil)
	im := testImage(t, 1)
	m.OnPacket(advFrom(4, 1, 0, 1), 4)
	m.OnPacket(&packet.StartDownload{Src: 4, ProgramID: 1, SegID: 1, SegPackets: 8}, 4)
	// Lose packets 2 and 6.
	for pkt := 0; pkt < 8; pkt++ {
		if pkt == 2 || pkt == 6 {
			continue
		}
		payload, _ := im.Payload(1, pkt)
		m.OnPacket(&packet.Data{Src: 4, ProgramID: 1, SegID: 1, PacketID: uint8(pkt), Payload: payload}, 4)
	}
	m.OnPacket(&packet.EndDownload{Src: 4, ProgramID: 1, SegID: 1}, 4)
	if m.State() != StateUpdate {
		t.Fatalf("state = %v, want update", m.State())
	}
	// Parent queries; we request packet 2 first.
	m.OnPacket(&packet.Query{Src: 4, ProgramID: 1, SegID: 1}, 4)
	rr := rt.lastSent(packet.KindRepairRequest).(*packet.RepairRequest)
	if rr.PacketID != 2 || rr.DestID != 4 {
		t.Fatalf("repair request = %+v", rr)
	}
	// Retransmission arrives; next request is for 6.
	p2, _ := im.Payload(1, 2)
	m.OnPacket(&packet.Data{Src: 4, ProgramID: 1, SegID: 1, PacketID: 2, Payload: p2}, 4)
	rr = rt.lastSent(packet.KindRepairRequest).(*packet.RepairRequest)
	if rr.PacketID != 6 {
		t.Fatalf("second repair request = %+v", rr)
	}
	p6, _ := im.Payload(1, 6)
	m.OnPacket(&packet.Data{Src: 4, ProgramID: 1, SegID: 1, PacketID: 6, Payload: p6}, 4)
	if !rt.done {
		t.Fatal("repair loop did not complete the program")
	}
}

func TestQueryFromNonParentIgnored(t *testing.T) {
	m, rt := newReceiver(t, 9, 1, nil)
	im := testImage(t, 1)
	m.OnPacket(advFrom(4, 1, 0, 1), 4)
	m.OnPacket(&packet.StartDownload{Src: 4, ProgramID: 1, SegID: 1, SegPackets: 8}, 4)
	payload, _ := im.Payload(1, 0)
	m.OnPacket(&packet.Data{Src: 4, ProgramID: 1, SegID: 1, PacketID: 0, Payload: payload}, 4)
	m.OnPacket(&packet.EndDownload{Src: 4, ProgramID: 1, SegID: 1}, 4)
	if m.State() != StateUpdate {
		t.Skipf("losses (%d) exceeded repair threshold", 7)
	}
	before := rt.sentCount(packet.KindRepairRequest)
	m.OnPacket(&packet.Query{Src: 6, ProgramID: 1, SegID: 1}, 6)
	if rt.sentCount(packet.KindRepairRequest) != before {
		t.Fatal("responded to a non-parent query")
	}
}

func TestTooManyLossesFailInsteadOfRepair(t *testing.T) {
	m, _ := newReceiver(t, 9, 1, func(c *Config) { c.RepairThreshold = 2 })
	im := testImage(t, 1)
	m.OnPacket(advFrom(4, 1, 0, 1), 4)
	m.OnPacket(&packet.StartDownload{Src: 4, ProgramID: 1, SegID: 1, SegPackets: 8}, 4)
	// Only 3 of 8 arrive: 5 missing > threshold 2.
	for pkt := 0; pkt < 3; pkt++ {
		payload, _ := im.Payload(1, pkt)
		m.OnPacket(&packet.Data{Src: 4, ProgramID: 1, SegID: 1, PacketID: uint8(pkt), Payload: payload}, 4)
	}
	m.OnPacket(&packet.EndDownload{Src: 4, ProgramID: 1, SegID: 1}, 4)
	if m.State() != StateIdle {
		t.Fatalf("state = %v, want idle (fail path)", m.State())
	}
}

func TestQueryAfterLastRepairPacketCompletes(t *testing.T) {
	// A Query can arrive after the final retransmission already filled
	// the MissingVector; the repair path must then complete the
	// segment instead of requesting packet -1.
	m, rt := newReceiver(t, 9, 1, nil)
	img := testImage(t, 1)
	m.OnPacket(advFrom(4, 1, 0, 1), 4)
	m.OnPacket(&packet.StartDownload{Src: 4, ProgramID: 1, SegID: 1, SegPackets: 8}, 4)
	for pkt := 0; pkt < 7; pkt++ {
		payload, _ := img.Payload(1, pkt)
		m.OnPacket(&packet.Data{Src: 4, ProgramID: 1, SegID: 1, PacketID: uint8(pkt), Payload: payload}, 4)
	}
	m.OnPacket(&packet.EndDownload{Src: 4, ProgramID: 1, SegID: 1}, 4)
	if m.State() != StateUpdate {
		t.Fatalf("setup: state = %v", m.State())
	}
	// The missing packet arrives from a third party before any query.
	p7, _ := img.Payload(1, 7)
	m.OnPacket(&packet.Data{Src: 6, ProgramID: 1, SegID: 1, PacketID: 7, Payload: p7}, 6)
	if !rt.done {
		t.Fatal("segment not completed by stray repair data")
	}
	if m.State() != StateAdvertise {
		t.Fatalf("state = %v, want advertise", m.State())
	}
}

func TestUpdateTimeoutFails(t *testing.T) {
	m, _ := newReceiver(t, 9, 1, nil)
	im := testImage(t, 1)
	m.OnPacket(advFrom(4, 1, 0, 1), 4)
	m.OnPacket(&packet.StartDownload{Src: 4, ProgramID: 1, SegID: 1, SegPackets: 8}, 4)
	for pkt := 0; pkt < 7; pkt++ {
		payload, _ := im.Payload(1, pkt)
		m.OnPacket(&packet.Data{Src: 4, ProgramID: 1, SegID: 1, PacketID: uint8(pkt), Payload: payload}, 4)
	}
	m.OnPacket(&packet.EndDownload{Src: 4, ProgramID: 1, SegID: 1}, 4)
	if m.State() != StateUpdate {
		t.Fatalf("state = %v", m.State())
	}
	m.OnTimer(timerUpdateWait)
	if m.State() != StateIdle {
		t.Fatalf("state = %v, want idle after update timeout", m.State())
	}
}

func TestAdvertiserSleepsThroughUninterestingTransfer(t *testing.T) {
	m, _ := newBase(t, 0, 2, nil)
	// Base holds everything; any StartDownload is uninteresting.
	m.OnPacket(&packet.StartDownload{Src: 9, ProgramID: 1, SegID: 1, SegPackets: 8}, 9)
	if m.State() != StateSleep {
		t.Fatalf("state = %v, want sleep", m.State())
	}
}

func TestWakeFromSleep(t *testing.T) {
	m, rt := newBase(t, 0, 2, nil)
	m.OnPacket(&packet.StartDownload{Src: 9, ProgramID: 1, SegID: 1, SegPackets: 8}, 9)
	if m.State() != StateSleep || rt.radioOn {
		t.Fatalf("setup: state = %v, radio = %v", m.State(), rt.radioOn)
	}
	m.OnTimer(timerSleep)
	if m.State() != StateAdvertise || !rt.radioOn {
		t.Fatalf("after wake: state = %v, radio = %v", m.State(), rt.radioOn)
	}
}

func TestSleeperWithNoSegmentsWakesToIdle(t *testing.T) {
	m, _ := newReceiver(t, 9, 2, nil)
	m.OnPacket(advFrom(4, 2, 0, 2), 4)
	// Transfer of segment 2 is uninteresting while we hold nothing —
	// but the idle state never sleeps (Figure 4), so inject via
	// advertise: impossible. Drive sleep directly through a lost
	// competition instead: a node with no segments cannot advertise,
	// so simulate by timer misfire safety.
	m.OnTimer(timerSleep) // no-op outside sleep state
	if m.State() != StateIdle {
		t.Fatalf("state = %v", m.State())
	}
}

func TestNoPipeliningAdvertisesOnlyWhenComplete(t *testing.T) {
	m, _ := newReceiver(t, 9, 2, func(c *Config) { c.NoPipelining = true })
	im := testImage(t, 2)
	m.OnPacket(advFrom(4, 2, 0, 2), 4)
	m.OnPacket(&packet.StartDownload{Src: 4, ProgramID: 1, SegID: 1, SegPackets: 8}, 4)
	for pkt := 0; pkt < 8; pkt++ {
		payload, _ := im.Payload(1, pkt)
		m.OnPacket(&packet.Data{Src: 4, ProgramID: 1, SegID: 1, PacketID: uint8(pkt), Payload: payload}, 4)
	}
	m.OnPacket(&packet.EndDownload{Src: 4, ProgramID: 1, SegID: 1}, 4)
	if m.State() != StateIdle {
		t.Fatalf("basic mode advertised with partial program: %v", m.State())
	}
	// Second segment completes the program: now it advertises.
	m.OnPacket(advFrom(4, 2, 0, 2), 4)
	m.OnPacket(&packet.StartDownload{Src: 4, ProgramID: 1, SegID: 2, SegPackets: 8}, 4)
	for pkt := 0; pkt < 8; pkt++ {
		payload, _ := im.Payload(2, pkt)
		m.OnPacket(&packet.Data{Src: 4, ProgramID: 1, SegID: 2, PacketID: uint8(pkt), Payload: payload}, 4)
	}
	m.OnPacket(&packet.EndDownload{Src: 4, ProgramID: 1, SegID: 2}, 4)
	if m.State() != StateAdvertise {
		t.Fatalf("complete basic-mode node not advertising: %v", m.State())
	}
}

func TestNoSenderSelectionIgnoresCompetition(t *testing.T) {
	m, _ := newBase(t, 5, 2, func(c *Config) { c.NoSenderSelection = true })
	m.OnPacket(advFrom(9, 2, 7, 2), 9)
	if m.State() != StateAdvertise {
		t.Fatalf("ablated node conceded: %v", m.State())
	}
	req := &packet.DownloadRequest{Src: 9, DestID: 3, ProgramID: 1, SegID: 2, SegPackets: 8, EchoReqCtr: 7}
	m.OnPacket(req, 9)
	if m.State() != StateAdvertise {
		t.Fatalf("ablated node conceded to overheard request: %v", m.State())
	}
}

func TestNoSleepKeepsRadioOn(t *testing.T) {
	m, rt := newBase(t, 0, 2, func(c *Config) { c.NoSleep = true })
	m.OnPacket(advFrom(9, 2, 3, 2), 9)
	if m.State() != StateSleep {
		t.Fatalf("state = %v, want sleep", m.State())
	}
	if !rt.radioOn {
		t.Fatal("NoSleep turned the radio off")
	}
}

func TestBatteryAwareAdvertisementPower(t *testing.T) {
	m, rt := newBase(t, 0, 1, func(c *Config) {
		c.BatteryAware = true
		c.LowPower = 3
		c.BatteryLowWater = 0.25
	})
	rt.battery = 0.1
	m.OnTimer(timerAdvertise)
	if len(rt.powers) == 0 {
		t.Fatal("no packet sent")
	}
	last := rt.powers[len(rt.powers)-1]
	if last != 3 {
		t.Fatalf("advertisement power = %d, want low power 3", last)
	}
	if rt.txPower != 255 {
		t.Fatalf("base power not restored: %d", rt.txPower)
	}
	// Healthy battery uses base power.
	rt.battery = 0.9
	m.OnTimer(timerAdvertise)
	if got := rt.powers[len(rt.powers)-1]; got != 255 {
		t.Fatalf("healthy-battery power = %d, want 255", got)
	}
}

func TestStartSignalGossipAndReboot(t *testing.T) {
	m, rt := newBase(t, 0, 1, nil)
	m.OnPacket(&packet.StartSignal{Src: 5, ProgramID: 1}, 5)
	if !m.Rebooted() {
		t.Fatal("complete node did not reboot")
	}
	if rt.sentCount(packet.KindStartSignal) != 1 {
		t.Fatal("signal not gossiped")
	}
	// Idempotent.
	m.OnPacket(&packet.StartSignal{Src: 6, ProgramID: 1}, 6)
	if rt.sentCount(packet.KindStartSignal) != 1 {
		t.Fatal("signal gossiped twice")
	}

	// An incomplete node forwards the signal but does not reboot.
	m2, rt2 := newReceiver(t, 9, 1, nil)
	m2.OnPacket(advFrom(4, 1, 0, 1), 4)
	m2.OnPacket(&packet.StartSignal{Src: 5, ProgramID: 1}, 5)
	if m2.Rebooted() {
		t.Fatal("incomplete node rebooted")
	}
	if rt2.sentCount(packet.KindStartSignal) != 1 {
		t.Fatal("incomplete node did not gossip")
	}
}

func TestOlderProgramIgnored(t *testing.T) {
	m, rt := newReceiver(t, 9, 1, nil)
	adv5 := advFrom(4, 1, 0, 1)
	adv5.ProgramID = 5
	m.OnPacket(adv5, 4) // learn program 5
	sentBefore := len(rt.sent)
	stale := advFrom(6, 1, 0, 1)
	stale.ProgramID = 3 // older version
	m.OnPacket(stale, 6)
	if len(rt.sent) != sentBefore {
		t.Fatal("requested an older program")
	}
	m.OnPacket(&packet.StartDownload{Src: 6, ProgramID: 3, SegID: 1, SegPackets: 8}, 6)
	if m.State() != StateIdle {
		t.Fatal("downloaded an older program")
	}
}

func TestNewerProgramTriggersUpgrade(t *testing.T) {
	m, rt := newReceiver(t, 9, 2, nil)
	img := testImage(t, 2)
	// Fully acquire segment 1 of program 1.
	m.OnPacket(advFrom(4, 2, 0, 2), 4)
	m.OnPacket(&packet.StartDownload{Src: 4, ProgramID: 1, SegID: 1, SegPackets: 8}, 4)
	for pkt := 0; pkt < 8; pkt++ {
		payload, _ := img.Payload(1, pkt)
		m.OnPacket(&packet.Data{Src: 4, ProgramID: 1, SegID: 1, PacketID: uint8(pkt), Payload: payload}, 4)
	}
	m.OnPacket(&packet.EndDownload{Src: 4, ProgramID: 1, SegID: 1}, 4)
	if m.RvdSeg() != 1 || rt.store.Slots() == 0 {
		t.Fatal("setup: segment 1 not acquired")
	}
	// Program 2 appears: the node abandons program 1.
	newer := advFrom(7, 1, 0, 3)
	newer.ProgramID = 2
	m.OnPacket(newer, 7)
	if m.geom.programID != 2 || m.geom.segments != 3 {
		t.Fatalf("geometry not upgraded: %+v", m.geom)
	}
	if m.RvdSeg() != 0 {
		t.Fatalf("RvdSeg = %d after upgrade", m.RvdSeg())
	}
	if rt.store.Slots() != 0 {
		t.Fatal("old program data survived the upgrade")
	}
	// The upgrade advertisement itself is acted on: a request goes out.
	req, ok := rt.lastSent(packet.KindDownloadRequest).(*packet.DownloadRequest)
	if !ok || req.ProgramID != 2 || req.SegID != 1 {
		t.Fatalf("no request for the new program: %+v", req)
	}
}

func TestProgramIDWraparound(t *testing.T) {
	m, _ := newReceiver(t, 9, 1, nil)
	old := advFrom(4, 1, 0, 1)
	old.ProgramID = 250
	m.OnPacket(old, 4)
	// 2 is "newer" than 250 under serial-number arithmetic.
	wrapped := advFrom(5, 1, 0, 1)
	wrapped.ProgramID = 2
	m.OnPacket(wrapped, 5)
	if m.geom.programID != 2 {
		t.Fatalf("wraparound upgrade failed: program %d", m.geom.programID)
	}
}

func TestNoUpgradeFreezesProgram(t *testing.T) {
	m, _ := newReceiver(t, 9, 1, func(c *Config) { c.NoUpgrade = true })
	m.OnPacket(advFrom(4, 1, 0, 1), 4)
	newer := advFrom(5, 1, 0, 1)
	newer.ProgramID = 2
	m.OnPacket(newer, 5)
	if m.geom.programID != 1 {
		t.Fatalf("NoUpgrade node switched to program %d", m.geom.programID)
	}
}

func TestLoadProgram(t *testing.T) {
	m, rt := newReceiver(t, 9, 1, nil)
	m.OnPacket(advFrom(4, 1, 0, 1), 4) // running program 1
	img2, err := image.Random(2, 1, 61, image.WithSegmentPackets(8), image.WithPayloadSize(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(nil); err == nil {
		t.Fatal("nil image accepted")
	}
	if err := m.LoadProgram(img2); err != nil {
		t.Fatal(err)
	}
	if m.State() != StateAdvertise || m.RvdSeg() != 1 || !rt.done {
		t.Fatalf("LoadProgram state: %v rvd=%d done=%v", m.State(), m.RvdSeg(), rt.done)
	}
	if m.geom.programID != 2 {
		t.Fatalf("program = %d", m.geom.programID)
	}
	// Loading the same (non-newer) version is rejected.
	if err := m.LoadProgram(img2); err == nil {
		t.Fatal("re-loading the same version accepted")
	}
}

func TestIdleDutyCycleTogglesUntilFirstContact(t *testing.T) {
	m, rt := newReceiver(t, 9, 1, func(c *Config) {
		c.IdleDutyCycle = true
		c.IdleOnPeriod = 500000000   // 500ms
		c.IdleOffPeriod = 1500000000 // 1.5s
	})
	if !rt.radioOn {
		t.Fatal("radio off at init")
	}
	if !rt.TimerPending(timerIdleDuty) {
		t.Fatal("idle duty timer not armed")
	}
	// Tick: listen window ends, radio sleeps.
	m.OnTimer(timerIdleDuty)
	if rt.radioOn {
		t.Fatal("radio on after listen window")
	}
	// Tick: sleep window ends, radio listens again.
	m.OnTimer(timerIdleDuty)
	if !rt.radioOn {
		t.Fatal("radio off after sleep window")
	}
	// First contact cancels the duty cycle permanently.
	m.OnPacket(advFrom(4, 1, 0, 1), 4)
	if rt.TimerPending(timerIdleDuty) {
		t.Fatal("duty timer still armed after first contact")
	}
	if !rt.radioOn {
		t.Fatal("radio off after first contact")
	}
	// A stale duty tick after contact is a no-op.
	m.OnTimer(timerIdleDuty)
	if !rt.radioOn {
		t.Fatal("stale duty tick turned the radio off")
	}
}

func TestIdleDutyCycleDisabledByDefault(t *testing.T) {
	_, rt := newReceiver(t, 9, 1, nil)
	if rt.TimerPending(timerIdleDuty) {
		t.Fatal("duty timer armed without IdleDutyCycle")
	}
}

func TestStateStrings(t *testing.T) {
	for s := StateIdle; s <= StateUpdate; s++ {
		if s.String() == "" {
			t.Errorf("empty name for state %d", s)
		}
	}
	if State(99).String() != "State(99)" {
		t.Errorf("unknown state string = %q", State(99).String())
	}
}
