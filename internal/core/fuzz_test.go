package core

import (
	"math/rand"
	"testing"

	"mnp/internal/node/nodetest"
	"mnp/internal/packet"
)

// TestFuzzReceiverNeverPanics hammers a fresh MNP node with arbitrary
// packet sequences and timer interleavings: the state machine must
// tolerate adversarial or corrupted traffic (wrong program IDs,
// impossible segment numbers, mismatched bitmap sizes) without
// panicking or storing beyond its EEPROM.
func TestFuzzReceiverNeverPanics(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rt := nodetest.New(9)
		rt.Attach(New(DefaultConfig()))
		rt.Fuzz(rng, 3000)
	}
}

// TestFuzzBaseNeverPanics does the same for a base station, which also
// exercises the sender-side states.
func TestFuzzBaseNeverPanics(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		cfg := DefaultConfig()
		cfg.Base = true
		cfg.Image = testImage(t, 2)
		rt := nodetest.New(0)
		rt.Attach(New(cfg))
		rt.Fuzz(rng, 3000)
	}
}

// TestFuzzVariantsNeverPanic covers the configuration corners: basic
// mode, ablations, repair off, battery-aware, idle duty cycle.
func TestFuzzVariantsNeverPanic(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.NoPipelining = true },
		func(c *Config) { c.NoSenderSelection = true },
		func(c *Config) { c.NoSleep = true },
		func(c *Config) { c.QueryUpdate = false },
		func(c *Config) { c.BatteryAware = true; c.LowPower = 1 },
		func(c *Config) {
			c.IdleDutyCycle = true
			c.IdleOnPeriod = 500000000
			c.IdleOffPeriod = 1500000000
		},
	}
	for i, mod := range mods {
		rng := rand.New(rand.NewSource(int64(i) + 99))
		cfg := DefaultConfig()
		mod(&cfg)
		rt := nodetest.New(5)
		rt.Attach(New(cfg))
		rt.Fuzz(rng, 2000)
	}
}

// TestFuzzedNodeStillFunctions verifies that after absorbing garbage, a
// node still completes a clean, well-formed transfer.
func TestFuzzedNodeStillFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rt := nodetest.New(9)
	m := New(DefaultConfig())
	rt.Attach(m)

	// Storm of garbage on program IDs 1..3.
	rt.Fuzz(rng, 2000)

	// Now a legitimate dissemination of a distinct program (ID 200 is
	// outside the fuzzer's range, so its geometry is clean) — but the
	// node may have latched onto a fuzzed program already; accept
	// either full completion or clean rejection, never a corrupt state.
	img := testImage(t, 1)
	adv := advFrom(4, 1, 0, 1)
	adv.ProgramID = 200
	rt.Deliver(adv, 4)
	rt.Deliver(&packet.StartDownload{Src: 4, ProgramID: 200, SegID: 1, SegPackets: 8}, 4)
	for pkt := 0; pkt < 8; pkt++ {
		payload, _ := img.Payload(1, pkt)
		rt.Deliver(&packet.Data{Src: 4, ProgramID: 200, SegID: 1, PacketID: uint8(pkt), Payload: payload}, 4)
	}
	rt.Deliver(&packet.EndDownload{Src: 4, ProgramID: 200, SegID: 1}, 4)

	// EEPROM write-once must have survived everything.
	if w := rt.EEPROM.MaxWriteCount(); w > 1 {
		t.Fatalf("fuzzing broke the write-once invariant: max %d writes", w)
	}
}
