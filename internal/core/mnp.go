// Package core implements MNP, the paper's contribution: a reliable
// multihop reprogramming protocol built around greedy sender selection,
// segment pipelining, bitmap-driven loss recovery, and aggressive radio
// sleeping.
//
// The protocol is a state machine (paper Figure 4) with states idle,
// download, advertise, forward, sleep and fail, plus the optional
// query/update repair states. It is written against node.Runtime and
// runs identically on the discrete-event harness and the goroutine
// runtime.
package core

import (
	"fmt"
	"time"

	"mnp/internal/bitvec"
	"mnp/internal/image"
	"mnp/internal/node"
	"mnp/internal/packet"
)

// State is the MNP state-machine state.
type State int

// Protocol states (Figure 4).
const (
	StateIdle State = iota + 1
	StateDownload
	StateAdvertise
	StateForward
	StateSleep
	StateFail
	StateQuery  // sender side of the optional repair phase
	StateUpdate // receiver side of the optional repair phase
)

var stateNames = map[State]string{
	StateIdle:      "idle",
	StateDownload:  "download",
	StateAdvertise: "advertise",
	StateForward:   "forward",
	StateSleep:     "sleep",
	StateFail:      "fail",
	StateQuery:     "query",
	StateUpdate:    "update",
}

// String returns the state name.
func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Timer IDs used with the runtime.
const (
	timerAdvertise node.TimerID = iota + 1
	timerDownloadWatchdog
	timerSleep
	timerForwardData
	timerQueryWait
	timerUpdateWait
	timerStartSignal
	timerIdleDuty
)

// startSignalRepeats is how many times a node re-gossips the reboot
// signal. The repeats are spread over several sleep periods so that
// neighbors sleeping through the first broadcast still catch one.
const startSignalRepeats = 3

// Config tunes the protocol. Zero values select the defaults the
// evaluation uses.
type Config struct {
	// Base marks the base station: its EEPROM is preloaded with Image
	// and it starts in the advertise state.
	Base bool
	// Image is the program to disseminate; required at the base,
	// ignored elsewhere (receivers learn the geometry from
	// advertisements).
	Image *image.Image

	// AdvertiseCount is K: advertisements sent in a round before the
	// forwarding decision.
	AdvertiseCount int
	// AdvertiseInterval is the base advertisement spacing; actual gaps
	// are uniform in [0.5, 1.5] of the current interval.
	AdvertiseInterval time.Duration
	// MaxAdvertiseInterval caps the exponential slow-down applied when
	// a round ends with no requesters.
	MaxAdvertiseInterval time.Duration
	// DataInterval paces packet transmission within a segment.
	DataInterval time.Duration
	// DownloadTimeout bounds the wait for the next packet from the
	// parent before giving up (fail state).
	DownloadTimeout time.Duration
	// SleepFactor scales the sleep duration relative to the expected
	// segment transmission time.
	SleepFactor float64

	// NoPipelining selects the basic protocol (§3.1.1): a node becomes
	// a source only once it holds the entire program.
	NoPipelining bool
	// NoUpgrade freezes the node on its current program: by default a
	// node that hears advertisements for a newer program (serial-number
	// ordering on ProgramID) abandons its state and acquires the new
	// version — reprogramming is, after all, the point.
	NoUpgrade bool
	// NoSenderSelection disables the ReqCtr competition (ablation A1):
	// sources never concede to better-placed sources.
	NoSenderSelection bool
	// NoSleep keeps the radio on where the protocol would sleep
	// (ablation A2); the node still pauses its advertising.
	NoSleep bool

	// QueryUpdate enables the optional query/update repair phase.
	QueryUpdate bool
	// RepairThreshold is the largest number of missing packets the
	// receiver will try to repair via query/update rather than failing
	// the segment.
	RepairThreshold int

	// IdleDutyCycle enables the paper's S-MAC-style suggestion for
	// removing initial idle listening: a node that has not yet heard
	// any advertisement duty-cycles its radio in the idle state,
	// listening for IdleOnPeriod and sleeping for IdleOffPeriod, until
	// the propagation wave arrives. Zero periods disable the feature.
	IdleDutyCycle bool
	// IdleOnPeriod is the listen window of the idle duty cycle.
	IdleOnPeriod time.Duration
	// IdleOffPeriod is the sleep window of the idle duty cycle.
	IdleOffPeriod time.Duration

	// BatteryAware enables the §6 extension: advertisements are sent
	// at reduced power when the battery is low, shrinking the follower
	// set so that drained nodes lose the sender election.
	BatteryAware bool
	// LowPower is the advertisement power level used when the battery
	// is below BatteryLowWater.
	LowPower int
	// BatteryLowWater is the battery fraction below which LowPower is
	// used.
	BatteryLowWater float64
}

// DefaultConfig returns the configuration used by the paper-shaped
// experiments (query/update enabled, pipelining on).
func DefaultConfig() Config {
	return Config{
		AdvertiseCount:       5,
		AdvertiseInterval:    500 * time.Millisecond,
		MaxAdvertiseInterval: 64 * time.Second,
		DataInterval:         30 * time.Millisecond,
		DownloadTimeout:      3 * time.Second,
		SleepFactor:          1.0,
		QueryUpdate:          true,
		RepairThreshold:      16,
		BatteryLowWater:      0.25,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.AdvertiseCount == 0 {
		c.AdvertiseCount = d.AdvertiseCount
	}
	if c.AdvertiseInterval == 0 {
		c.AdvertiseInterval = d.AdvertiseInterval
	}
	if c.MaxAdvertiseInterval == 0 {
		c.MaxAdvertiseInterval = d.MaxAdvertiseInterval
	}
	if c.DataInterval == 0 {
		c.DataInterval = d.DataInterval
	}
	if c.DownloadTimeout == 0 {
		c.DownloadTimeout = d.DownloadTimeout
	}
	if c.SleepFactor == 0 {
		c.SleepFactor = d.SleepFactor
	}
	if c.RepairThreshold == 0 {
		c.RepairThreshold = d.RepairThreshold
	}
	if c.BatteryLowWater == 0 {
		c.BatteryLowWater = d.BatteryLowWater
	}
	return c
}

// geometry is what a node knows about the program being disseminated.
type geometry struct {
	known        bool
	programID    uint8
	segments     int
	segNominal   int
	totalPackets int
}

// packetsIn returns the number of packets in segment seg.
func (g geometry) packetsIn(seg int) int {
	if seg < 1 || seg > g.segments {
		return 0
	}
	rest := g.totalPackets - (seg-1)*g.segNominal
	if rest > g.segNominal {
		return g.segNominal
	}
	return rest
}

// MNP is one node's protocol instance.
type MNP struct {
	cfg Config
	rt  node.Runtime

	state State
	geom  geometry

	// Receiver side.
	rvdSeg    int            // highest segment held completely (my.RvdSegID)
	missing   *bitvec.Vector // MissingVector for segment rvdSeg+1 (persists across attempts)
	parent    packet.NodeID
	hasParent bool

	// Source side.
	advSeg      int // segment being advertised
	reqCtr      int
	requesters  map[packet.NodeID]bool
	forward     *bitvec.Vector // ForwardVector for advSeg
	advSent     int
	advInterval time.Duration

	dormant     bool
	waveSeen    bool
	rebooted    bool
	sawStartSig bool
	sigRepeats  int
	lastSigSent time.Duration
	basePower   int
}

var _ node.Protocol = (*MNP)(nil)

// New returns an MNP instance with the given configuration.
func New(cfg Config) *MNP {
	return &MNP{cfg: cfg.withDefaults()}
}

// State returns the current protocol state (for tests and metrics).
func (m *MNP) State() State { return m.state }

// ReqCtr returns the current requester count (for tests).
func (m *MNP) ReqCtr() int { return m.reqCtr }

// RvdSeg returns the highest completely received segment.
func (m *MNP) RvdSeg() int { return m.rvdSeg }

// Parent returns the current parent and whether one is set.
func (m *MNP) Parent() (packet.NodeID, bool) { return m.parent, m.hasParent }

// Rebooted reports whether the node acted on a StartSignal.
func (m *MNP) Rebooted() bool { return m.rebooted }

// Init implements node.Protocol.
func (m *MNP) Init(rt node.Runtime) {
	m.rt = rt
	m.basePower = rt.TxPower()
	m.requesters = make(map[packet.NodeID]bool)
	rt.RadioOn()
	if m.cfg.Base {
		if m.cfg.Image == nil {
			panic("core: base station requires an image")
		}
		im := m.cfg.Image
		m.geom = geometry{
			known:        true,
			programID:    im.ProgramID(),
			segments:     im.Segments(),
			segNominal:   im.SegmentPackets(),
			totalPackets: im.TotalPackets(),
		}
		for seg := 1; seg <= im.Segments(); seg++ {
			n, _ := im.PacketsIn(seg)
			for pkt := 0; pkt < n; pkt++ {
				if rt.HasPacket(seg, pkt) {
					continue // rebooting base: flash already holds the image
				}
				payload, _ := im.Payload(seg, pkt)
				if err := rt.Store(seg, pkt, payload); err != nil {
					panic(fmt.Sprintf("core: preloading base image: %v", err))
				}
			}
		}
		m.rvdSeg = im.Segments()
		rt.Complete()
		m.enterAdvertise()
		return
	}
	m.enterIdle()
}

// OnTimer implements node.Protocol.
func (m *MNP) OnTimer(id node.TimerID) {
	switch id {
	case timerAdvertise:
		m.advertiseTick()
	case timerDownloadWatchdog:
		if m.state == StateDownload {
			m.enterFail()
		}
	case timerSleep:
		if m.state == StateSleep {
			m.wake()
		}
	case timerForwardData:
		m.forwardTick()
	case timerQueryWait:
		if m.state == StateQuery {
			m.finishSending()
		}
	case timerStartSignal:
		m.gossipStartSignal()
	case timerIdleDuty:
		m.idleDutyTick()
	case timerUpdateWait:
		if m.state == StateUpdate {
			m.enterFail()
		}
	}
}

// OnPacket implements node.Protocol.
func (m *MNP) OnPacket(p packet.Packet, from packet.NodeID) {
	if !m.waveSeen {
		// First contact: the propagation wave has arrived, so the idle
		// duty cycle (if any) ends and the radio listens continuously.
		m.waveSeen = true
		m.rt.CancelTimer(timerIdleDuty)
		if m.state == StateIdle {
			m.rt.RadioOn()
		}
	}
	switch pkt := p.(type) {
	case *packet.Advertise:
		m.onAdvertise(pkt)
	case *packet.DownloadRequest:
		m.onDownloadRequest(pkt)
	case *packet.StartDownload:
		m.onStartDownload(pkt)
	case *packet.Data:
		m.onData(pkt)
	case *packet.EndDownload:
		m.onEndDownload(pkt)
	case *packet.Query:
		m.onQuery(pkt)
	case *packet.RepairRequest:
		m.onRepairRequest(pkt)
	case *packet.StartSignal:
		m.onStartSignal(pkt)
	}
}

// --- state entries ---

func (m *MNP) setState(s State) {
	if m.state == s {
		return
	}
	m.state = s
	m.rt.Event(node.Event{Kind: node.EventStateChange, State: s.String()})
}

func (m *MNP) enterIdle() {
	m.rt.RadioOn()
	m.setState(StateIdle)
	// Before the propagation wave first reaches this node, optionally
	// duty-cycle the radio (the paper's S-MAC suggestion for removing
	// initial idle listening). After first contact the idle state
	// listens continuously, as the requester role requires.
	if m.cfg.IdleDutyCycle && !m.waveSeen && m.cfg.IdleOnPeriod > 0 && m.cfg.IdleOffPeriod > 0 {
		m.rt.SetTimer(timerIdleDuty, m.jitter(m.cfg.IdleOnPeriod))
	}
}

// jitter returns a duration uniform in [0.5, 1.5] × d.
func (m *MNP) jitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(m.rt.Rand().Int63n(int64(d)+1))
}

func (m *MNP) idleDutyTick() {
	if m.state != StateIdle || m.waveSeen || !m.cfg.IdleDutyCycle {
		return
	}
	if m.rt.IsRadioOn() {
		m.rt.RadioOff()
		m.rt.SetTimer(timerIdleDuty, m.jitter(m.cfg.IdleOffPeriod))
		return
	}
	m.rt.RadioOn()
	m.rt.SetTimer(timerIdleDuty, m.jitter(m.cfg.IdleOnPeriod))
}

func (m *MNP) enterAdvertise() {
	m.advInterval = m.cfg.AdvertiseInterval
	m.resumeAdvertise()
}

// resumeAdvertise enters the advertise state without resetting the
// between-round backoff (used when waking from a fruitless-round
// dormancy, where the paper "advertises with reduced frequency").
func (m *MNP) resumeAdvertise() {
	m.rt.RadioOn()
	m.setState(StateAdvertise)
	m.advSeg = m.rvdSeg
	m.resetRound()
	m.scheduleAdvertise()
}

// resetRound clears the sender-selection round state: "whenever k
// attempts to advertise again, k must reset its ReqCtr value to zero
// and recalculate its requesters."
func (m *MNP) resetRound() {
	m.reqCtr = 0
	m.requesters = make(map[packet.NodeID]bool)
	m.advSent = 0
	m.forward = nil
}

func (m *MNP) scheduleAdvertise() {
	// Advertisements within a burst are spaced by a random interval in
	// [0.5, 1.5] × the base interval to avoid synchronized collisions;
	// the reduced advertisement frequency of a quiet network comes from
	// the growing dormancy gaps between bursts, not wider spacing.
	base := m.cfg.AdvertiseInterval
	d := base/2 + time.Duration(m.rt.Rand().Int63n(int64(base)))
	m.rt.SetTimer(timerAdvertise, d)
}

// enterDormant is the low-duty-cycle tail of the advertise state: the
// radio sleeps for the backed-off interval, then the node wakes and
// advertises another burst.
func (m *MNP) enterDormant() {
	m.rt.CancelTimer(timerAdvertise)
	m.resetRound()
	m.dormant = true
	m.setState(StateSleep)
	if !m.cfg.NoSleep {
		m.rt.RadioOff()
	}
	half := m.advInterval / 2
	d := half + time.Duration(m.rt.Rand().Int63n(int64(m.advInterval)))
	m.rt.SetTimer(timerSleep, d)
}

func (m *MNP) advertiseTick() {
	if m.state != StateAdvertise {
		return
	}
	if m.advSent >= m.cfg.AdvertiseCount {
		// End of round: forward if anyone asked; otherwise advertise
		// with reduced frequency. A fully updated node realizes the
		// reduction as radio-off dormancy between bursts — this is
		// where a node that already holds the code "spends most of the
		// time in sleeping state". A node still missing segments must
		// keep listening (it is a requester too, and powering off would
		// make it sleep through transfers it just requested), so it
		// stays awake and merely spaces its bursts out.
		if m.reqCtr > 0 {
			m.enterForward()
			return
		}
		m.advInterval *= 2
		if m.advInterval > m.cfg.MaxAdvertiseInterval {
			m.advInterval = m.cfg.MaxAdvertiseInterval
		}
		if m.rvdSeg == m.geom.segments {
			m.enterDormant()
			return
		}
		m.resetRound()
		half := m.advInterval / 2
		m.rt.SetTimer(timerAdvertise, half+time.Duration(m.rt.Rand().Int63n(int64(m.advInterval))))
		return
	}
	adv := &packet.Advertise{
		Src:             m.rt.ID(),
		ProgramID:       m.geom.programID,
		ProgramSegments: uint8(m.geom.segments),
		SegID:           uint8(m.advSeg),
		SegNominal:      uint8(m.geom.segNominal),
		TotalPackets:    uint16(m.geom.totalPackets),
		ReqCtr:          clampUint8(m.reqCtr),
	}
	m.withAdvertisePower(func() {
		_ = m.rt.Send(adv)
	})
	m.advSent++
	m.scheduleAdvertise()
}

// withAdvertisePower runs fn with the battery-aware power level
// applied, restoring the base level afterwards.
func (m *MNP) withAdvertisePower(fn func()) {
	if m.cfg.BatteryAware && m.rt.Battery() < m.cfg.BatteryLowWater && m.cfg.LowPower != 0 {
		m.rt.SetTxPower(m.cfg.LowPower)
		defer m.rt.SetTxPower(m.basePower)
	}
	fn()
}

func (m *MNP) enterSleep() {
	m.rt.CancelTimer(timerAdvertise)
	m.resetRound()
	m.dormant = false
	// Losing the competition is a sign of nearby activity: advertise at
	// full frequency again once awake.
	m.advInterval = m.cfg.AdvertiseInterval
	m.setState(StateSleep)
	d := m.sleepDuration()
	if !m.cfg.NoSleep {
		m.rt.RadioOff()
	}
	m.rt.SetTimer(timerSleep, d)
}

// sleepDuration approximates the expected transmission time of one
// segment (the paper sleeps losers for about one code-transmission
// time so the winner can finish).
func (m *MNP) sleepDuration() time.Duration {
	pkts := m.geom.segNominal
	if pkts == 0 {
		pkts = image.DefaultSegmentPackets
	}
	base := time.Duration(float64(pkts) * m.cfg.SleepFactor * float64(m.cfg.DataInterval))
	// Jitter ±25% so sleepers do not wake in lockstep.
	quarter := base / 4
	return base - quarter + time.Duration(m.rt.Rand().Int63n(int64(2*quarter)+1))
}

func (m *MNP) wake() {
	dormant := m.dormant
	m.dormant = false
	if m.canAdvertise() {
		if dormant {
			m.resumeAdvertise() // keep the reduced frequency
			return
		}
		m.enterAdvertise()
		return
	}
	m.enterIdle()
}

// canAdvertise reports whether this node may act as a source: with
// pipelining, any node holding at least one segment; in the basic
// protocol, only nodes holding the entire program.
func (m *MNP) canAdvertise() bool {
	if !m.geom.known || m.rvdSeg == 0 {
		return false
	}
	if m.cfg.NoPipelining {
		return m.rvdSeg == m.geom.segments
	}
	return true
}

func (m *MNP) enterFail() {
	// Fail is transient: release the EEPROM write handle and fall back
	// to idle. Stored packets and the MissingVector survive, so a
	// retried segment never rewrites EEPROM.
	m.rt.CancelTimer(timerDownloadWatchdog)
	m.rt.CancelTimer(timerUpdateWait)
	m.hasParent = false
	m.setState(StateFail)
	m.enterIdle()
}

func (m *MNP) enterDownload(parent packet.NodeID, segPackets int) {
	m.rt.CancelTimer(timerAdvertise)
	m.rt.RadioOn()
	m.parent = parent
	m.hasParent = true
	m.ensureMissing(segPackets)
	m.setState(StateDownload)
	m.rt.Event(node.Event{Kind: node.EventParentSet, Peer: parent, Seg: m.rvdSeg + 1})
	m.rt.SetTimer(timerDownloadWatchdog, m.cfg.DownloadTimeout)
}

// ensureMissing materializes the MissingVector for segment rvdSeg+1.
// It persists across download attempts so each packet is written to
// EEPROM exactly once.
func (m *MNP) ensureMissing(segPackets int) {
	if m.missing != nil && m.missing.Len() == segPackets {
		return
	}
	v, err := bitvec.AllSet(segPackets)
	if err != nil {
		return
	}
	m.missing = v
}

func (m *MNP) enterForward() {
	m.rt.CancelTimer(timerAdvertise)
	m.setState(StateForward)
	m.rt.Event(node.Event{Kind: node.EventBecameSender, Seg: m.advSeg})
	start := &packet.StartDownload{
		Src:        m.rt.ID(),
		ProgramID:  m.geom.programID,
		SegID:      uint8(m.advSeg),
		SegPackets: uint8(m.geom.packetsIn(m.advSeg)),
	}
	_ = m.rt.Send(start)
	m.rt.SetTimer(timerForwardData, m.cfg.DataInterval)
}

func (m *MNP) forwardTick() {
	if m.state != StateForward {
		return
	}
	if m.forward == nil || m.forward.None() {
		m.endDownloadAndRepair()
		return
	}
	pkt := m.forward.First()
	m.forward.Clear(pkt)
	payload := m.rt.Load(m.advSeg, pkt)
	if payload != nil {
		_ = m.rt.Send(&packet.Data{
			Src:       m.rt.ID(),
			ProgramID: m.geom.programID,
			SegID:     uint8(m.advSeg),
			PacketID:  uint8(pkt),
			Payload:   payload,
		})
	}
	m.rt.SetTimer(timerForwardData, m.cfg.DataInterval)
}

func (m *MNP) endDownloadAndRepair() {
	_ = m.rt.Send(&packet.EndDownload{
		Src:       m.rt.ID(),
		ProgramID: m.geom.programID,
		SegID:     uint8(m.advSeg),
	})
	if m.cfg.QueryUpdate {
		m.setState(StateQuery)
		_ = m.rt.Send(&packet.Query{
			Src:       m.rt.ID(),
			ProgramID: m.geom.programID,
			SegID:     uint8(m.advSeg),
		})
		m.rt.SetTimer(timerQueryWait, m.queryWindow())
		return
	}
	m.finishSending()
}

// queryWindow is how long the sender waits for repair requests before
// concluding the repair phase.
func (m *MNP) queryWindow() time.Duration {
	return 8 * m.cfg.DataInterval
}

// finishSending ends a transmission round: the sender quits the
// competition temporarily by sleeping, giving other sources a chance.
func (m *MNP) finishSending() {
	m.resetRound()
	m.enterSleep()
}

// --- message handlers ---

func (m *MNP) learnGeometry(a *packet.Advertise) {
	if m.geom.known {
		return
	}
	if a.ProgramSegments == 0 || a.SegNominal == 0 || a.TotalPackets == 0 {
		return
	}
	m.geom = geometry{
		known:        true,
		programID:    a.ProgramID,
		segments:     int(a.ProgramSegments),
		segNominal:   int(a.SegNominal),
		totalPackets: int(a.TotalPackets),
	}
	m.recoverFromStore()
	if m.rvdSeg > 0 && m.state == StateIdle && m.canAdvertise() {
		// A rebooted node recovered whole segments: resume the source
		// role it held before the crash.
		m.enterAdvertise()
	}
}

// recoverFromStore rebuilds the receiver's RAM progress (RvdSegID and
// the MissingVector) from EEPROM contents once the program geometry is
// known. On a mote flash survives a reboot while RAM does not; without
// this scan a crashed-and-rebooted node would download — and rewrite —
// packets it already holds, breaking the write-once guarantee. On a
// fresh node the store is empty and the scan changes nothing.
func (m *MNP) recoverFromStore() {
	for seg := 1; seg <= m.geom.segments; seg++ {
		n := m.geom.packetsIn(seg)
		held := 0
		for pkt := 0; pkt < n; pkt++ {
			if m.rt.HasPacket(seg, pkt) {
				held++
			}
		}
		if held == n && n > 0 {
			m.rvdSeg = seg
			continue
		}
		if held > 0 && n <= bitvec.MaxBits {
			// Partial next segment: resume its download where it stopped.
			if v, err := bitvec.AllSet(n); err == nil {
				for pkt := 0; pkt < n; pkt++ {
					if m.rt.HasPacket(seg, pkt) {
						v.Clear(pkt)
					}
				}
				m.missing = v
			}
		}
		return
	}
	if m.rvdSeg == m.geom.segments && m.geom.segments > 0 {
		m.rt.Complete()
	}
}

func (m *MNP) onAdvertise(a *packet.Advertise) {
	m.learnGeometry(a)
	if m.geom.known && a.ProgramID != m.geom.programID {
		// A different program is circulating. If it is newer, abandon
		// ours and acquire it; otherwise let the stale advertiser
		// discover the new version the same way.
		if !m.cfg.NoUpgrade && newerProgram(a.ProgramID, m.geom.programID) {
			m.upgradeTo(a)
		}
		return
	}
	if !m.geom.known {
		return
	}
	// A node advertising after the reboot signal circulated was asleep
	// when the gossip passed; tell it (rate-limited).
	if m.sawStartSig && m.rt.Now()-m.lastSigSent > 2*time.Second {
		m.lastSigSent = m.rt.Now()
		_ = m.rt.Send(&packet.StartSignal{Src: m.rt.ID(), ProgramID: m.geom.programID})
	}
	switch m.state {
	case StateIdle, StateAdvertise:
		// Requester role: ask for the next segment we need if the
		// advertiser has something beyond what we hold.
		if int(a.SegID) > m.rvdSeg && m.rvdSeg < m.geom.segments {
			m.sendDownloadRequest(a)
		}
		if m.state != StateAdvertise {
			return
		}
		// Source competition (Figure 2b): concede to an advertiser
		// with more requesters, with node ID as the tie breaker, and
		// give priority to lower segments (§3.1.2 rule 4).
		if m.cfg.NoSenderSelection {
			return
		}
		if a.ReqCtr > 0 {
			lowerSeg := int(a.SegID) < m.advSeg
			sameSeg := int(a.SegID) == m.advSeg
			if lowerSeg || (sameSeg && Outranks(int(a.ReqCtr), a.Src, m.reqCtr, m.rt.ID())) {
				m.enterSleep()
			}
		}
	default:
		// Downloading, forwarding, repairing or sleeping: competition
		// messages are irrelevant.
	}
}

func (m *MNP) sendDownloadRequest(a *packet.Advertise) {
	want := m.rvdSeg + 1
	segPkts := m.geom.packetsIn(want)
	if segPkts <= 0 || segPkts > bitvec.MaxBits {
		return
	}
	m.ensureMissing(segPkts)
	req := &packet.DownloadRequest{
		Src:        m.rt.ID(),
		DestID:     a.Src,
		ProgramID:  m.geom.programID,
		SegID:      uint8(want),
		SegPackets: uint8(segPkts),
		EchoReqCtr: a.ReqCtr,
		Missing:    m.missing.Clone(),
	}
	_ = m.rt.Send(req)
}

func (m *MNP) onDownloadRequest(r *packet.DownloadRequest) {
	if !m.geom.known || r.ProgramID != m.geom.programID {
		return
	}
	if m.state == StateForward && r.DestID == m.rt.ID() && int(r.SegID) == m.advSeg {
		// Late joiner while we stream: fold its losses so it still
		// gets the packets it needs this round.
		m.foldRequest(r)
		return
	}
	if m.state != StateAdvertise {
		return
	}
	if r.DestID == m.rt.ID() {
		if int(r.SegID) > m.rvdSeg {
			return // we cannot serve a segment we do not hold
		}
		if int(r.SegID) < m.advSeg {
			// §3.1.2 rule 3: a request for a lower segment pulls the
			// advertised segment down; restart the round for it.
			m.advSeg = int(r.SegID)
			m.resetRound()
		}
		if int(r.SegID) == m.advSeg {
			if !m.requesters[r.Src] {
				m.requesters[r.Src] = true
				m.reqCtr++
			}
			m.foldRequest(r)
			// Demand means the network is updating: advertise at full
			// frequency again.
			m.advInterval = m.cfg.AdvertiseInterval
		}
		return
	}
	// Overheard request destined to another source k: learn of k's
	// standing (this is the hidden-terminal defence) and concede if k
	// is doing better; also yield to lower-segment activity.
	if m.cfg.NoSenderSelection {
		return
	}
	if r.EchoReqCtr > 0 {
		lowerSeg := int(r.SegID) < m.advSeg
		sameSeg := int(r.SegID) == m.advSeg
		if lowerSeg || (sameSeg && Outranks(int(r.EchoReqCtr), r.DestID, m.reqCtr, m.rt.ID())) {
			m.enterSleep()
		}
	}
}

// foldRequest ORs the requester's MissingVector into the
// ForwardVector: "an advertising node's ForwardVector is the union of
// the missing packets in the download requests the node has received."
func (m *MNP) foldRequest(r *packet.DownloadRequest) {
	segPkts := m.geom.packetsIn(int(r.SegID))
	if m.forward == nil || m.forward.Len() != segPkts {
		v, err := bitvec.New(segPkts)
		if err != nil {
			return
		}
		m.forward = v
	}
	if r.Missing != nil && r.Missing.Len() == m.forward.Len() {
		_ = m.forward.Or(r.Missing)
		return
	}
	// A request without loss information asks for the whole segment.
	m.forward.SetAll()
}

func (m *MNP) onStartDownload(s *packet.StartDownload) {
	if !m.geom.known || s.ProgramID != m.geom.programID {
		return
	}
	switch m.state {
	case StateIdle, StateAdvertise, StateUpdate:
		if int(s.SegID) == m.rvdSeg+1 {
			m.enterDownload(s.Src, int(s.SegPackets))
			return
		}
		if m.state == StateAdvertise && m.cfg.NoSenderSelection {
			// Ablation A1: without sender selection, a competing
			// source neither concedes nor stands down for a transfer.
			return
		}
		if m.state == StateAdvertise || m.state == StateUpdate {
			// A neighbor won with a segment we do not need: sleep
			// through its transmission.
			m.enterSleep()
		}
	case StateDownload:
		// Another sender starting our segment: packets are acceptable
		// from anyone; nothing to do.
	default:
	}
}

func (m *MNP) onData(d *packet.Data) {
	if !m.geom.known || d.ProgramID != m.geom.programID {
		return
	}
	seg := int(d.SegID)
	switch m.state {
	case StateDownload, StateUpdate:
		if seg != m.rvdSeg+1 || m.missing == nil {
			return
		}
		pkt := int(d.PacketID)
		if pkt >= m.missing.Len() {
			return
		}
		if m.missing.Get(pkt) {
			if err := m.rt.Store(seg, pkt, d.Payload); err != nil {
				return
			}
			m.missing.Clear(pkt)
		}
		if m.state == StateDownload {
			m.rt.SetTimer(timerDownloadWatchdog, m.cfg.DownloadTimeout)
			return
		}
		// Update state: ask for the next missing packet, or finish.
		if m.missing.None() {
			m.completeSegment()
			return
		}
		m.sendRepairRequest()
	case StateIdle:
		// Data for the segment we need, from a transfer whose start we
		// missed: join it (the paper allows receiving from any sender
		// with a matching segment ID).
		if seg == m.rvdSeg+1 && m.geom.packetsIn(seg) > 0 {
			m.enterDownload(d.Src, m.geom.packetsIn(seg))
			m.onData(d)
		}
	case StateAdvertise:
		if seg == m.rvdSeg+1 {
			m.enterDownload(d.Src, m.geom.packetsIn(seg))
			m.onData(d)
			return
		}
		if m.cfg.NoSenderSelection {
			return // ablation A1: keep competing through the stream
		}
		// A neighbor is streaming a segment we do not need.
		m.enterSleep()
	default:
	}
}

func (m *MNP) onEndDownload(e *packet.EndDownload) {
	if !m.geom.known || e.ProgramID != m.geom.programID {
		return
	}
	if m.state != StateDownload || int(e.SegID) != m.rvdSeg+1 {
		return
	}
	if m.missing != nil && m.missing.None() {
		m.completeSegment()
		return
	}
	// Losses remain. The paper offers two choices: fail immediately, or
	// enter the query/update phase when the loss count is repairable.
	if e.Src == m.parent && m.cfg.QueryUpdate &&
		m.missing != nil && m.missing.Count() <= m.cfg.RepairThreshold {
		m.rt.CancelTimer(timerDownloadWatchdog)
		m.setState(StateUpdate)
		m.rt.SetTimer(timerUpdateWait, m.cfg.DownloadTimeout)
		return
	}
	if e.Src == m.parent {
		m.enterFail()
	}
}

func (m *MNP) completeSegment() {
	m.rt.CancelTimer(timerDownloadWatchdog)
	m.rt.CancelTimer(timerUpdateWait)
	m.rvdSeg++
	m.missing = nil
	m.hasParent = false
	m.rt.Event(node.Event{Kind: node.EventGotSegment, Seg: m.rvdSeg})
	if m.rvdSeg == m.geom.segments {
		m.rt.Complete()
	}
	if m.canAdvertise() {
		m.enterAdvertise()
		return
	}
	m.enterIdle()
}

func (m *MNP) onQuery(q *packet.Query) {
	if m.state != StateUpdate || !m.hasParent || q.Src != m.parent {
		return
	}
	if int(q.SegID) != m.rvdSeg+1 {
		return
	}
	m.sendRepairRequest()
}

func (m *MNP) sendRepairRequest() {
	if m.missing == nil {
		return
	}
	pkt := m.missing.First()
	if pkt < 0 {
		m.completeSegment()
		return
	}
	_ = m.rt.Send(&packet.RepairRequest{
		Src:       m.rt.ID(),
		DestID:    m.parent,
		ProgramID: m.geom.programID,
		SegID:     uint8(m.rvdSeg + 1),
		PacketID:  uint8(pkt),
	})
	m.rt.SetTimer(timerUpdateWait, m.cfg.DownloadTimeout)
}

func (m *MNP) onRepairRequest(r *packet.RepairRequest) {
	if m.state != StateQuery || r.DestID != m.rt.ID() {
		return
	}
	if int(r.SegID) != m.advSeg {
		return
	}
	payload := m.rt.Load(m.advSeg, int(r.PacketID))
	if payload == nil {
		return
	}
	_ = m.rt.Send(&packet.Data{
		Src:       m.rt.ID(),
		ProgramID: m.geom.programID,
		SegID:     r.SegID,
		PacketID:  r.PacketID,
		Payload:   payload,
	})
	m.rt.SetTimer(timerQueryWait, m.queryWindow())
}

func (m *MNP) onStartSignal(s *packet.StartSignal) {
	if m.sawStartSig {
		return
	}
	m.sawStartSig = true
	m.sigRepeats = startSignalRepeats
	// Gossip the signal outward, then reboot if we hold the code. The
	// gossip repeats so neighbors asleep right now still catch one.
	m.gossipStartSignal()
	if m.geom.known && m.rvdSeg == m.geom.segments {
		m.rebooted = true
		m.rt.Event(node.Event{Kind: node.EventRebooted})
		// A rebooted node's dissemination duty is over; it keeps its
		// radio on as a gossip relay so neighbors that slept through
		// the flood still learn of the signal when they wake and
		// advertise (see onAdvertise).
		m.rt.CancelTimer(timerAdvertise)
		m.rt.CancelTimer(timerSleep)
		m.rt.CancelTimer(timerForwardData)
		m.rt.CancelTimer(timerQueryWait)
		m.dormant = false
		m.enterIdle()
	}
}

func (m *MNP) gossipStartSignal() {
	if m.sigRepeats <= 0 {
		return
	}
	m.sigRepeats--
	_ = m.rt.Send(&packet.StartSignal{Src: m.rt.ID(), ProgramID: m.geom.programID})
	if m.sigRepeats > 0 {
		// Space the repeats about one sleep period apart with jitter.
		gap := m.sleepDuration() + time.Duration(m.rt.Rand().Int63n(int64(time.Second)))
		m.rt.SetTimer(timerStartSignal, gap)
	}
}

// Reboot injects the external start signal at this node (used at the
// base station once dissemination is observed complete).
func (m *MNP) Reboot() {
	m.onStartSignal(&packet.StartSignal{Src: m.rt.ID(), ProgramID: m.geom.programID})
}

// newerProgram compares program IDs with RFC 1982 serial-number
// arithmetic so version numbers may wrap the uint8 space: a is newer
// than b when (a-b) mod 256 lies in (0, 128).
func newerProgram(a, b uint8) bool {
	d := a - b
	return d != 0 && d < 128
}

// upgradeTo abandons the current program and starts acquiring the
// newer one advertised by a: all protocol state is reset and the old
// image's EEPROM space is erased (the flash must be rewritten anyway).
func (m *MNP) upgradeTo(a *packet.Advertise) {
	if a.ProgramSegments == 0 || a.SegNominal == 0 || a.TotalPackets == 0 {
		return
	}
	m.resetAllState()
	m.rt.EraseStore()
	m.geom = geometry{
		known:        true,
		programID:    a.ProgramID,
		segments:     int(a.ProgramSegments),
		segNominal:   int(a.SegNominal),
		totalPackets: int(a.TotalPackets),
	}
	m.enterIdle()
	// Act on the advertisement that brought the news.
	m.onAdvertise(a)
}

// LoadProgram installs a new image directly on this node (the
// operator's serial cable at the base station) and starts advertising
// it. The rest of the network upgrades over the air.
func (m *MNP) LoadProgram(img *image.Image) error {
	if img == nil {
		return fmt.Errorf("core: nil image")
	}
	if m.geom.known && !newerProgram(img.ProgramID(), m.geom.programID) {
		return fmt.Errorf("core: program %d is not newer than %d", img.ProgramID(), m.geom.programID)
	}
	m.resetAllState()
	m.rt.EraseStore()
	m.geom = geometry{
		known:        true,
		programID:    img.ProgramID(),
		segments:     img.Segments(),
		segNominal:   img.SegmentPackets(),
		totalPackets: img.TotalPackets(),
	}
	for seg := 1; seg <= img.Segments(); seg++ {
		n, _ := img.PacketsIn(seg)
		for pkt := 0; pkt < n; pkt++ {
			payload, _ := img.Payload(seg, pkt)
			if err := m.rt.Store(seg, pkt, payload); err != nil {
				return fmt.Errorf("core: loading program: %w", err)
			}
		}
	}
	m.rvdSeg = img.Segments()
	m.rt.Complete()
	m.enterAdvertise()
	return nil
}

// resetAllState cancels every timer and clears per-program state in
// preparation for a new program version.
func (m *MNP) resetAllState() {
	for _, id := range []node.TimerID{
		timerAdvertise, timerDownloadWatchdog, timerSleep,
		timerForwardData, timerQueryWait, timerUpdateWait, timerIdleDuty,
	} {
		m.rt.CancelTimer(id)
	}
	m.rvdSeg = 0
	m.missing = nil
	m.hasParent = false
	m.dormant = false
	m.resetRound()
	m.advInterval = m.cfg.AdvertiseInterval
}

// Outranks is the sender-selection order: source "other" (with
// otherCtr requesters) beats source "mine" (with myCtr requesters)
// when it has strictly more requesters, with the higher node ID
// breaking ties. The paper's no-deadlock argument rests on this being
// a strict total order over distinct (ReqCtr, ID) pairs: "the node
// with highest ReqCtr — with appropriate tie breaker on node ID —
// will succeed."
func Outranks(otherCtr int, otherID packet.NodeID, myCtr int, myID packet.NodeID) bool {
	if otherCtr != myCtr {
		return otherCtr > myCtr
	}
	return otherID > myID
}

func clampUint8(v int) uint8 {
	if v > 255 {
		return 255
	}
	if v < 0 {
		return 0
	}
	return uint8(v)
}
