package core

import (
	"math/rand"
	"time"

	"mnp/internal/eeprom"
	"mnp/internal/node"
	"mnp/internal/packet"
)

// fakeRuntime implements node.Runtime for direct unit tests of the
// state machine: sends are captured, timers are fired manually.
type fakeRuntime struct {
	id      packet.NodeID
	now     time.Duration
	rng     *rand.Rand
	sent    []packet.Packet
	timers  map[node.TimerID]time.Duration
	radioOn bool
	txPower int
	powers  []int // power level of each send
	store   *eeprom.Store
	done    bool
	battery float64
	events  []node.Event
}

func newFakeRuntime(id packet.NodeID) *fakeRuntime {
	st, err := eeprom.New(eeprom.DefaultCapacity)
	if err != nil {
		panic(err)
	}
	return &fakeRuntime{
		id:      id,
		rng:     rand.New(rand.NewSource(int64(id) + 42)),
		timers:  make(map[node.TimerID]time.Duration),
		txPower: 255,
		store:   st,
		battery: 1.0,
	}
}

func (f *fakeRuntime) ID() packet.NodeID  { return f.id }
func (f *fakeRuntime) Now() time.Duration { return f.now }
func (f *fakeRuntime) Rand() *rand.Rand   { return f.rng }

func (f *fakeRuntime) Send(p packet.Packet) error {
	f.sent = append(f.sent, p)
	f.powers = append(f.powers, f.txPower)
	return nil
}

func (f *fakeRuntime) SetTimer(id node.TimerID, d time.Duration) { f.timers[id] = d }
func (f *fakeRuntime) CancelTimer(id node.TimerID)               { delete(f.timers, id) }
func (f *fakeRuntime) TimerPending(id node.TimerID) bool {
	_, ok := f.timers[id]
	return ok
}

func (f *fakeRuntime) RadioOn()         { f.radioOn = true }
func (f *fakeRuntime) RadioOff()        { f.radioOn = false }
func (f *fakeRuntime) IsRadioOn() bool  { return f.radioOn }
func (f *fakeRuntime) SetTxPower(l int) { f.txPower = l }
func (f *fakeRuntime) TxPower() int     { return f.txPower }

func (f *fakeRuntime) Store(seg, pkt int, payload []byte) error {
	return f.store.Write(seg, pkt, payload)
}
func (f *fakeRuntime) Load(seg, pkt int) []byte    { return f.store.Read(seg, pkt) }
func (f *fakeRuntime) HasPacket(seg, pkt int) bool { return f.store.Has(seg, pkt) }
func (f *fakeRuntime) EraseStore()                 { f.store.Erase() }

func (f *fakeRuntime) Complete()        { f.done = true }
func (f *fakeRuntime) Battery() float64 { return f.battery }
func (f *fakeRuntime) Event(ev node.Event) {
	f.events = append(f.events, ev)
}

var _ node.Runtime = (*fakeRuntime)(nil)

// lastSent returns the most recent packet of the given kind, or nil.
func (f *fakeRuntime) lastSent(k packet.Kind) packet.Packet {
	for i := len(f.sent) - 1; i >= 0; i-- {
		if f.sent[i].Kind() == k {
			return f.sent[i]
		}
	}
	return nil
}

// sentCount counts packets of the given kind.
func (f *fakeRuntime) sentCount(k packet.Kind) int {
	c := 0
	for _, p := range f.sent {
		if p.Kind() == k {
			c++
		}
	}
	return c
}

// advanceAdvRounds fires the advertise timer n times.
func advanceAdvRounds(m *MNP, n int) {
	for i := 0; i < n; i++ {
		m.OnTimer(timerAdvertise)
	}
}
