package core

import (
	"testing"
	"time"

	"mnp/internal/image"
	"mnp/internal/node"
	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/sim"
	"mnp/internal/topology"
)

// TestMultiProgramOverlappingSubsets realizes the paper's §6 scenario:
// two different programs disseminated concurrently to non-disjoint
// subsets of one network. Program 1 goes to every node from the
// north-west corner; program 2 goes only to even-numbered nodes from a
// south-east source. Each mote runs one MNP instance per subscribed
// program behind a node.Demux sharing its radio and EEPROM.
func TestMultiProgramOverlappingSubsets(t *testing.T) {
	img1, err := image.Random(1, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	img2raw := image.WithSegmentPackets(64)
	img2, err := image.Random(2, 1, 51, img2raw)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := topology.Grid(4, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	kernel := sim.New(9)
	medium, err := radio.NewMedium(kernel, layout, radio.DefaultParams(), 10)
	if err != nil {
		t.Fatal(err)
	}
	const prog2Base = packet.NodeID(14)
	wantsProg2 := func(id packet.NodeID) bool { return id%2 == 0 }

	subsOf := make(map[packet.NodeID][]uint8)
	nw, err := node.NewNetwork(kernel, medium, layout, func(id packet.NodeID) (node.Protocol, node.Config) {
		ncfg := node.Config{TxPower: radio.PowerSim}
		cfg1 := DefaultConfig()
		if id == 0 {
			cfg1.Base = true
			cfg1.Image = img1
		}
		if !wantsProg2(id) {
			subsOf[id] = []uint8{1}
			d, err := node.NewDemux(node.ProgramClassifier(1), New(cfg1))
			if err != nil {
				t.Fatal(err)
			}
			return d, ncfg
		}
		cfg2 := DefaultConfig()
		if id == prog2Base {
			cfg2.Base = true
			cfg2.Image = img2
		}
		subsOf[id] = []uint8{1, 2}
		d, err := node.NewDemux(node.ProgramClassifier(1, 2), New(cfg1), New(cfg2))
		if err != nil {
			t.Fatal(err)
		}
		return d, ncfg
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	if !nw.RunUntilComplete(6 * time.Hour) {
		t.Fatalf("multi-program dissemination incomplete: %d/%d", nw.CompletedCount(), len(nw.Nodes))
	}

	// Verify both programs, reading through the demux segment spaces.
	for _, n := range nw.Nodes {
		for subIdx, prog := range subsOf[n.ID()] {
			img := img1
			if prog == 2 {
				img = img2
			}
			offset := subIdx * node.SegSpace
			data, err := img.Reassemble(func(seg, pkt int) []byte {
				return n.EEPROM().Read(offset+seg, pkt)
			})
			if err != nil {
				t.Fatalf("node %v program %d: %v", n.ID(), prog, err)
			}
			if !img.Verify(data) {
				t.Fatalf("node %v program %d: image mismatch", n.ID(), prog)
			}
		}
		if w := n.EEPROM().MaxWriteCount(); w > 1 {
			t.Fatalf("node %v rewrote EEPROM (max %d)", n.ID(), w)
		}
		// Odd nodes must not have collected any of program 2.
		if !wantsProg2(n.ID()) {
			for seg := 1; seg < node.SegSpace; seg++ {
				if n.EEPROM().Has(node.SegSpace+seg, 0) {
					t.Fatalf("unsubscribed node %v stored program 2 data", n.ID())
				}
			}
		}
	}
}
