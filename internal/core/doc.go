package core

// The MNP state machine, as implemented (paper Figure 4, both
// variants, plus the duty-cycled advertise tail):
//
//	            Adv(SegID>rvd)/send DL req
//	          ┌───────────────────────────┐
//	          │                           │
//	        ┌─┴──┐  StartDownload(rvd+1)┌─▼────────┐
//	        │idle├──────────────────────►download  │
//	        └─▲──┘        set parent    └─┬──┬─────┘
//	          │                           │  │ EndDownload, missing>thresh
//	     fail │ (transient: release       │  │ or watchdog timeout
//	          │  EEPROM, keep data)       │  └──────────► fail ──► idle
//	          │                           │ EndDownload, no missing
//	          │                           ▼
//	        ┌─┴────┐   lose competition ┌─────────┐
//	        │sleep ◄────────────────────┤advertise│◄──── segment done
//	        └─┬────┘  (higher ReqCtr,   └─┬──▲────┘
//	          │ wake   lower segment,     │  │ K advs, no requests:
//	          │        other transfer)    │  │ dormant sleep, backoff
//	          │                           │ K advs, ReqCtr>0
//	          ▼                           ▼
//	        advertise (resume)          ┌───────┐ finish ForwardVector
//	                                    │forward├──────────────┐
//	                                    └───────┘              │
//	                                     EndDownload + Query   ▼
//	        update (receiver repair) ◄─────────────────── query (sender)
//	          │ per-packet RepairRequest/Data with parent   │
//	          └── none missing ──► segment done             └─ quiet ─► sleep
//
// Message roles (paper §3):
//
//	Advertise        source competition + program discovery; carries
//	                 ReqCtr so weaker sources concede
//	DownloadRequest  broadcast, destined via a field; carries the
//	                 requester's MissingVector and echoes the source's
//	                 ReqCtr (the hidden-terminal defence)
//	StartDownload    the selection winner announces a segment stream
//	Data             one packet; accepted from any sender of the
//	                 expected segment; written to EEPROM exactly once
//	EndDownload      closes the stream; triggers advance or repair
//	Query/Repair     the optional per-packet repair phase
//	StartSignal      the operator's reboot command, gossiped
//
// Extensions implemented beyond Figure 4, all opt-in through Config or
// on by default where the paper argues for them: dormancy between
// fruitless advertising rounds (reduced-frequency advertising realized
// as radio-off sleep for fully-updated nodes), battery-aware
// advertisement power (§6), pre-contact idle duty cycling (§4.2), and
// over-the-air version upgrades via serial-number program ordering.
