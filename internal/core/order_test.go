package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mnp/internal/packet"
)

// The paper's deadlock-freedom claim ("this cannot cause deadlock, as
// the node with highest ReqCtr — with appropriate tie breaker on node
// ID — will succeed") requires the concession relation to be a strict
// total order over competitors. These properties pin that down.

type competitor struct {
	ctr int
	id  packet.NodeID
}

func outranks(a, b competitor) bool {
	return Outranks(a.ctr, a.id, b.ctr, b.id)
}

func randomCompetitors(rng *rand.Rand, n int) []competitor {
	// IDs are distinct (they are addresses); counters may collide.
	ids := rng.Perm(1 << 12)
	out := make([]competitor, n)
	for i := range out {
		out[i] = competitor{ctr: rng.Intn(6), id: packet.NodeID(ids[i])}
	}
	return out
}

// Property: irreflexive and antisymmetric — no mutual concessions, so
// two competitors can never both go to sleep because of each other.
func TestQuickOutranksAntisymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := randomCompetitors(rng, 2)
		a, b := cs[0], cs[1]
		if outranks(a, a) || outranks(b, b) {
			return false
		}
		return outranks(a, b) != outranks(b, a) // exactly one direction
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: transitive — concession chains cannot cycle.
func TestQuickOutranksTransitive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := randomCompetitors(rng, 3)
		a, b, c := cs[0], cs[1], cs[2]
		if outranks(a, b) && outranks(b, c) && !outranks(a, c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: every nonempty set of competitors has exactly one member
// that concedes to nobody — the unique surviving sender.
func TestQuickUniqueWinner(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%12 + 2
		cs := randomCompetitors(rng, n)
		winners := 0
		for i, a := range cs {
			conceded := false
			for j, b := range cs {
				if i != j && outranks(b, a) {
					conceded = true
					break
				}
			}
			if !conceded {
				winners++
			}
		}
		return winners == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The winner is the lexicographic maximum of (ReqCtr, ID) — the
// greediest choice the paper intends.
func TestWinnerIsGreedyMaximum(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		cs := randomCompetitors(rng, 8)
		best := cs[0]
		for _, c := range cs[1:] {
			if outranks(c, best) {
				best = c
			}
		}
		for _, c := range cs {
			if c.ctr > best.ctr || (c.ctr == best.ctr && c.id > best.id) {
				t.Fatalf("winner %+v is not the (ctr,id) maximum; %+v is larger", best, c)
			}
		}
	}
}
