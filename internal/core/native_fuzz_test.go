package core

import (
	"testing"

	"mnp/internal/bitvec"
	"mnp/internal/node/nodetest"
	"mnp/internal/packet"
)

// FuzzMNPPacketSequence is the native coverage-guided companion to the
// seed-based robustness tests in fuzz_test.go: the fuzzer mutates raw
// frame bytes, so it explores codec-level corruption (truncated
// frames, wild field values, CRC-valid-but-nonsense messages) that
// RandomPacket's well-typed generator cannot reach. Two properties
// must hold for every input: the state machine never panics, and the
// EEPROM write-once invariant survives whatever the frames claim.
//
// Input framing: repeated chunks of [len][len bytes of frame][fires],
// where fires%4 timers are dispatched after the frame. Undecodable
// frames are skipped, as a real node drops them.
func FuzzMNPPacketSequence(f *testing.F) {
	missing := bitvec.MustNew(8)
	missing.Set(3)
	for _, p := range []packet.Packet{
		&packet.Advertise{Src: 0, ProgramID: 1, ProgramSegments: 2, SegID: 1, SegNominal: 4, TotalPackets: 8, ReqCtr: 1},
		&packet.DownloadRequest{Src: 2, DestID: 1, ProgramID: 1, SegID: 1, SegPackets: 4, EchoReqCtr: 1, Missing: missing},
		&packet.StartDownload{Src: 0, ProgramID: 1, SegID: 1, SegPackets: 4},
		&packet.Data{Src: 0, ProgramID: 1, SegID: 1, PacketID: 0, Payload: make([]byte, 22)},
		&packet.EndDownload{Src: 0, ProgramID: 1, SegID: 1},
		&packet.Query{Src: 0, ProgramID: 1, SegID: 1},
		&packet.RepairRequest{Src: 2, DestID: 0, ProgramID: 1, SegID: 1, PacketID: 3},
		&packet.StartSignal{Src: 0, ProgramID: 1},
	} {
		frame := packet.Encode(p)
		chunk := append([]byte{byte(len(frame))}, frame...)
		chunk = append(chunk, 1)
		f.Add(chunk)
	}
	f.Add([]byte{0, 5, 3, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		rt := nodetest.New(1)
		m := New(DefaultConfig())
		rt.Attach(m)
		for len(data) > 0 {
			n := int(data[0])
			data = data[1:]
			if n > len(data) {
				n = len(data)
			}
			frame := data[:n]
			data = data[n:]
			if p, err := packet.Decode(frame); err == nil {
				from := packet.NodeID(0)
				if s, ok := p.(interface{ Source() packet.NodeID }); ok {
					from = s.Source()
				}
				rt.Deliver(p, from)
			}
			if len(data) > 0 {
				fires := int(data[0] % 4)
				data = data[1:]
				for i := 0; i < fires; i++ {
					if !rt.FireNext() {
						break
					}
				}
			}
		}
		if w := rt.EEPROM.MaxWriteCount(); w > 1 {
			t.Fatalf("adversarial frames broke EEPROM write-once (max %d writes)", w)
		}
	})
}
