package core

import (
	"mnp/internal/node"
	"mnp/internal/packet"
	"mnp/internal/protoreg"
)

// ApplyOptions overlays declarative option strings onto an MNP
// configuration. It is the string-keyed face of Config used by
// scenario files and the protocol registry; unknown keys or malformed
// values are errors.
func ApplyOptions(cfg *Config, options map[string]string) error {
	o := protoreg.NewOpts(options)
	o.Int("advertise_count", &cfg.AdvertiseCount)
	o.Duration("advertise_interval", &cfg.AdvertiseInterval)
	o.Duration("max_advertise_interval", &cfg.MaxAdvertiseInterval)
	o.Duration("data_interval", &cfg.DataInterval)
	o.Duration("download_timeout", &cfg.DownloadTimeout)
	o.Float("sleep_factor", &cfg.SleepFactor)
	o.Bool("no_pipelining", &cfg.NoPipelining)
	o.Bool("no_upgrade", &cfg.NoUpgrade)
	o.Bool("no_sender_selection", &cfg.NoSenderSelection)
	o.Bool("no_sleep", &cfg.NoSleep)
	o.Bool("query_update", &cfg.QueryUpdate)
	o.Int("repair_threshold", &cfg.RepairThreshold)
	o.Bool("idle_duty_cycle", &cfg.IdleDutyCycle)
	o.Duration("idle_on_period", &cfg.IdleOnPeriod)
	o.Duration("idle_off_period", &cfg.IdleOffPeriod)
	o.Bool("battery_aware", &cfg.BatteryAware)
	o.Int("low_power", &cfg.LowPower)
	o.Float("battery_low_water", &cfg.BatteryLowWater)
	return o.Err()
}

func init() {
	protoreg.Register("mnp", func(b protoreg.Build) (node.Protocol, error) {
		cfg := DefaultConfig()
		if b.Base {
			cfg.Base = true
			cfg.Image = b.Image
		}
		if err := ApplyOptions(&cfg, b.Options); err != nil {
			return nil, err
		}
		if tune, ok := b.Tune.(func(packet.NodeID, *Config)); ok && tune != nil {
			tune(b.ID, &cfg)
		}
		return New(cfg), nil
	})
}
