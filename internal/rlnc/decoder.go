package rlnc

// decoder runs incremental Gaussian elimination over one segment: each
// coded packet contributes a row [coeffs | payload]; rows are reduced
// against the pivoted basis on arrival, so completing a segment is
// O(k) row operations per packet instead of one big end-of-segment
// solve — exactly how a mote would spread the CPU cost across
// receptions.
type decoder struct {
	k    int // packets in the segment (coefficient width)
	w    int // coded payload width in bytes
	rank int
	// rows[p] is nil or a row whose leading coefficient is a 1 in
	// column p, laid out as k coefficient bytes followed by w payload
	// bytes.
	rows [][]byte
}

func newDecoder(k, w int) *decoder {
	return &decoder{k: k, w: w, rows: make([][]byte, k)}
}

// addRow folds one coded packet into the basis. It returns the number
// of GF(256) row operations performed (the energy unit) and whether the
// row was innovative (increased the rank). Payloads shorter than w are
// zero-padded; coefficient vectors shorter than k are rejected as
// non-innovative, and extra coefficients are ignored.
func (d *decoder) addRow(coeffs, payload []byte) (ops int, innovative bool) {
	if len(coeffs) < d.k || len(payload) > d.w || d.rank == d.k {
		return 0, false
	}
	row := make([]byte, d.k+d.w)
	copy(row, coeffs[:d.k])
	copy(row[d.k:], payload)
	for {
		p := -1
		for i, c := range row[:d.k] {
			if c != 0 {
				p = i
				break
			}
		}
		if p < 0 {
			return ops, false // linearly dependent on the basis
		}
		if d.rows[p] == nil {
			scaleRow(row, gfInv(row[p]))
			ops++
			d.rows[p] = row
			d.rank++
			return ops, true
		}
		addScaledRow(row, d.rows[p], row[p])
		ops++
	}
}

// complete reports whether the basis has full rank.
func (d *decoder) complete() bool { return d.rank == d.k }

// reduce back-substitutes the full-rank basis to reduced row-echelon
// form, after which row p's payload is the segment's packet p. It
// returns the row operations performed and panics if called before
// full rank.
func (d *decoder) reduce() (ops int) {
	if !d.complete() {
		panic("rlnc: reduce before full rank")
	}
	for p := d.k - 1; p > 0; p-- {
		for q := 0; q < p; q++ {
			if c := d.rows[q][p]; c != 0 {
				addScaledRow(d.rows[q], d.rows[p], c)
				ops++
			}
		}
	}
	return ops
}

// packet returns the decoded payload of packet p after reduce.
func (d *decoder) packet(p int) []byte { return d.rows[p][d.k:] }
