package rlnc

import (
	"math/rand"
	"testing"
)

// The exp table must enumerate every non-zero field element exactly
// once per period — the property the decoder's termination depends on
// (a non-generator builds a short cycle, log/inv go wrong, and pivot
// normalization never reaches 1).
func TestGeneratorHasFullOrder(t *testing.T) {
	seen := make(map[byte]int, 255)
	for i := 0; i < 255; i++ {
		v := gfExp[i]
		if v == 0 {
			t.Fatalf("gfExp[%d] = 0; zero is not in the multiplicative group", i)
		}
		if j, dup := seen[v]; dup {
			t.Fatalf("gfExp[%d] = gfExp[%d] = %#x: generator has order %d, not 255", i, j, v, i-j)
		}
		seen[v] = i
	}
	for i := 255; i < 512; i++ {
		if gfExp[i] != gfExp[i-255] {
			t.Fatalf("doubled table wrong at %d", i)
		}
	}
	for v := 1; v < 256; v++ {
		if gfExp[gfLog[byte(v)]] != byte(v) {
			t.Fatalf("log/exp round trip broken at %#x", v)
		}
	}
}

// Field axioms. Commutativity and identity are cheap enough to check
// exhaustively over all pairs; associativity and distributivity over a
// deterministic random sample of triples.
func TestFieldAxioms(t *testing.T) {
	for a := 0; a < 256; a++ {
		ab, ba := byte(a), byte(a)
		if gfMul(ab, 1) != ab {
			t.Fatalf("%#x * 1 != %#x", a, a)
		}
		if gfMul(ab, 0) != 0 {
			t.Fatalf("%#x * 0 != 0", a)
		}
		for b := a; b < 256; b++ {
			if gfMul(ab, byte(b)) != gfMul(byte(b), ba) {
				t.Fatalf("multiplication not commutative at (%#x, %#x)", a, b)
			}
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(gfMul(a, b), c) != gfMul(a, gfMul(b, c)) {
			t.Fatalf("multiplication not associative at (%#x, %#x, %#x)", a, b, c)
		}
		// Addition is XOR; distributivity ties the two together.
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity fails at (%#x, %#x, %#x)", a, b, c)
		}
	}
}

// Every non-zero element has an inverse that round-trips through
// multiplication and division.
func TestInverseRoundTrip(t *testing.T) {
	if gfInv(0) != 0 {
		t.Fatal("gfInv(0) must be 0 by convention")
	}
	for a := 1; a < 256; a++ {
		ab := byte(a)
		inv := gfInv(ab)
		if inv == 0 {
			t.Fatalf("gfInv(%#x) = 0", a)
		}
		if gfMul(ab, inv) != 1 {
			t.Fatalf("%#x * inv(%#x) = %#x, want 1", a, a, gfMul(ab, inv))
		}
		if gfDiv(ab, ab) != 1 {
			t.Fatalf("%#x / %#x != 1", a, a)
		}
		for b := 1; b < 256; b++ {
			bb := byte(b)
			if gfMul(gfDiv(ab, bb), bb) != ab {
				t.Fatalf("(%#x / %#x) * %#x != %#x", a, b, b, a)
			}
		}
	}
}

// The row helpers must agree with scalar gfMul element-wise.
func TestRowOpsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(64)
		src := make([]byte, n)
		rng.Read(src)
		c := byte(rng.Intn(256))

		row := append([]byte(nil), src...)
		scaleRow(row, c)
		for i := range row {
			if row[i] != gfMul(src[i], c) {
				t.Fatalf("scaleRow c=%#x differs from gfMul at %d", c, i)
			}
		}

		dst := make([]byte, n)
		rng.Read(dst)
		want := make([]byte, n)
		for i := range want {
			want[i] = dst[i] ^ gfMul(src[i], c)
		}
		addScaledRow(dst, src, c)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("addScaledRow c=%#x differs from scalar at %d", c, i)
			}
		}
	}
}
