package rlnc

import (
	"bytes"
	"math/rand"
	"testing"
)

// encode builds one coded row c·rows over the given source packets,
// the same accumulation sendCoded performs.
func encode(srcRows [][]byte, coeffs []byte, w int) []byte {
	payload := make([]byte, w)
	for i, c := range coeffs {
		addScaledRow(payload, srcRows[i], c)
	}
	return payload
}

func randomSegment(rng *rand.Rand, k, w int) [][]byte {
	rows := make([][]byte, k)
	for i := range rows {
		rows[i] = make([]byte, w)
		rng.Read(rows[i])
	}
	return rows
}

// Round trip: random combinations of a random segment decode back to
// the exact source packets, for a spread of segment geometries
// including k=1 and the short-last-segment shapes.
func TestDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range []struct{ k, w int }{
		{1, 22}, {2, 22}, {7, 22}, {32, 22}, {128, 22}, {5, 1}, {16, 100},
	} {
		src := randomSegment(rng, shape.k, shape.w)
		d := newDecoder(shape.k, shape.w)
		coeffs := make([]byte, shape.k)
		received := 0
		for !d.complete() {
			rng.Read(coeffs)
			received++
			if received > 20*shape.k+50 {
				t.Fatalf("k=%d w=%d: no full rank after %d rows", shape.k, shape.w, received)
			}
			ops, innovative := d.addRow(coeffs, encode(src, coeffs, shape.w))
			if innovative && ops == 0 {
				t.Fatalf("k=%d: innovative row reported zero ops", shape.k)
			}
		}
		d.reduce()
		for p := 0; p < shape.k; p++ {
			if !bytes.Equal(d.packet(p), src[p]) {
				t.Fatalf("k=%d w=%d: packet %d decoded wrong", shape.k, shape.w, p)
			}
		}
		// Random coding needs barely more than k receptions.
		if received > shape.k+10 {
			t.Errorf("k=%d: %d receptions for rank %d — coefficients are not behaving randomly",
				shape.k, received, shape.k)
		}
	}
}

// Dependent and duplicate rows must be absorbed without rank change,
// and short coefficient vectors rejected outright.
func TestDecoderRejectsNonInnovative(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	k, w := 8, 22
	src := randomSegment(rng, k, w)
	d := newDecoder(k, w)

	c1 := make([]byte, k)
	rng.Read(c1)
	if _, innovative := d.addRow(c1, encode(src, c1, w)); !innovative {
		t.Fatal("first row not innovative")
	}
	if _, innovative := d.addRow(c1, encode(src, c1, w)); innovative {
		t.Fatal("duplicate row counted as innovative")
	}
	// A scaled copy of an existing basis row is dependent too.
	c2 := append([]byte(nil), c1...)
	scaleRow(c2, 3)
	if _, innovative := d.addRow(c2, encode(src, c2, w)); innovative {
		t.Fatal("scaled duplicate counted as innovative")
	}
	if d.rank != 1 {
		t.Fatalf("rank = %d after duplicates, want 1", d.rank)
	}

	if _, innovative := d.addRow(c1[:k-1], make([]byte, w)); innovative {
		t.Fatal("short coefficient vector accepted")
	}
	if _, innovative := d.addRow(c1, make([]byte, w+1)); innovative {
		t.Fatal("oversized payload accepted")
	}
	if _, innovative := d.addRow(make([]byte, k), make([]byte, w)); innovative {
		t.Fatal("all-zero coefficient vector accepted")
	}
}

// drawCoeffs is a pure function of (src, seg, attempt) and never
// returns the all-zero vector.
func TestDrawCoeffsDeterministicAndNonzero(t *testing.T) {
	a, b := make([]byte, 32), make([]byte, 32)
	drawCoeffs(a, 5, 3, 77)
	drawCoeffs(b, 5, 3, 77)
	if !bytes.Equal(a, b) {
		t.Fatal("same (src, seg, attempt) drew different coefficients")
	}
	drawCoeffs(b, 5, 3, 78)
	if bytes.Equal(a, b) {
		t.Fatal("different attempts drew identical coefficients")
	}
	drawCoeffs(b, 6, 3, 77)
	if bytes.Equal(a, b) {
		t.Fatal("different senders drew identical coefficients")
	}
	for attempt := uint32(0); attempt < 2000; attempt++ {
		v := make([]byte, 4)
		drawCoeffs(v, 1, 1, attempt)
		if bytes.Equal(v, make([]byte, 4)) {
			t.Fatalf("attempt %d drew the all-zero vector", attempt)
		}
	}
}

// FuzzRLNCDecode feeds arbitrary row material into a small decoder and
// checks the structural invariants: rank is monotone and bounded by k,
// addRow never panics, and a decoder driven to full rank by valid rows
// afterwards still reduces to the original segment.
func FuzzRLNCDecode(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 9, 9, 9})
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 40))
	f.Add([]byte{2, 4, 8, 16, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		const k, w = 4, 6
		d := newDecoder(k, w)
		// Slice the fuzz input into (coeffs, payload) chunks of varying
		// shape, including deliberately short and long ones.
		for len(data) > 0 {
			n := int(data[0])%(k+w+4) + 1
			if n > len(data) {
				n = len(data)
			}
			chunk := data[:n]
			data = data[n:]
			cut := len(chunk) / 2
			before := d.rank
			ops, innovative := d.addRow(chunk[:cut], chunk[cut:])
			if d.rank < before || d.rank > k {
				t.Fatalf("rank %d -> %d (k=%d)", before, d.rank, k)
			}
			if innovative != (d.rank == before+1) {
				t.Fatalf("innovative=%v but rank %d -> %d", innovative, before, d.rank)
			}
			if ops < 0 || (innovative && ops == 0) {
				t.Fatalf("ops = %d, innovative = %v", ops, innovative)
			}
		}
		// Whatever partial basis the fuzz rows built, valid coded rows
		// must still complete it and decode exactly.
		rng := rand.New(rand.NewSource(1))
		src := randomSegment(rng, k, w)
		// The fuzz rows encode arbitrary payloads, not src, so restart:
		// correctness of the solve is covered by feeding a fresh decoder
		// from the partial basis's surviving coefficient space.
		d = newDecoder(k, w)
		coeffs := make([]byte, k)
		for tries := 0; !d.complete() && tries < 200; tries++ {
			rng.Read(coeffs)
			d.addRow(coeffs, encode(src, coeffs, w))
		}
		if !d.complete() {
			t.Fatal("valid rows failed to reach full rank")
		}
		d.reduce()
		for p := 0; p < k; p++ {
			if !bytes.Equal(d.packet(p), src[p]) {
				t.Fatalf("packet %d decoded wrong after fuzz prelude", p)
			}
		}
	})
}

// BenchmarkRLNCDecode measures decoding one full 128-packet segment of
// 22-byte payloads — the per-segment CPU cost a mote pays, and the
// number BENCH_sim.json tracks for regressions.
func BenchmarkRLNCDecode(b *testing.B) {
	const k, w = 128, 22
	rng := rand.New(rand.NewSource(42))
	src := randomSegment(rng, k, w)
	// Pre-draw more coded rows than a decode consumes so the timed loop
	// does no RNG work.
	type coded struct{ coeffs, payload []byte }
	rows := make([]coded, k+16)
	for i := range rows {
		c := make([]byte, k)
		rng.Read(c)
		rows[i] = coded{coeffs: c, payload: encode(src, c, w)}
	}
	b.SetBytes(int64(k * w))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := newDecoder(k, w)
		for _, r := range rows {
			if d.complete() {
				break
			}
			d.addRow(r.coeffs, r.payload)
		}
		if !d.complete() {
			b.Fatal("segment did not decode")
		}
		d.reduce()
	}
}
