package rlnc

// GF(256) arithmetic for random linear coding, built on log/exp tables
// over the Reed-Solomon polynomial x^8+x^4+x^3+x^2+1 (0x11D) with
// generator 2 — the same field every fountain/RLNC implementation on
// 8-bit motes uses, because a multiply is then two table lookups and an
// add is XOR.

var (
	gfExp [512]byte // gfExp[i] = g^i, doubled so Mul skips a mod 255
	gfLog [256]byte // gfLog[gfExp[i]] = i; gfLog[0] unused
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		gfExp[i] = x
		gfLog[x] = byte(i)
		// multiply x by the generator 2
		hi := x & 0x80
		x <<= 1
		if hi != 0 {
			x ^= 0x1D // reduce by 0x11D
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies a and b in GF(256).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfInv returns the multiplicative inverse of a; gfInv(0) is 0 (zero
// has no inverse — callers must pivot on non-zero entries).
func gfInv(a byte) byte {
	if a == 0 {
		return 0
	}
	return gfExp[255-int(gfLog[a])]
}

// gfDiv divides a by b; gfDiv(x, 0) is 0 by the gfInv convention.
func gfDiv(a, b byte) byte { return gfMul(a, gfInv(b)) }

// scaleRow multiplies every byte of row by c in place.
func scaleRow(row []byte, c byte) {
	if c == 1 {
		return
	}
	for i, v := range row {
		if v != 0 {
			row[i] = gfExp[int(gfLog[v])+int(gfLog[c])]
		}
	}
}

// addScaledRow sets dst += c*src element-wise (XOR is addition).
func addScaledRow(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		for i, v := range src {
			dst[i] ^= v
		}
	default:
		lc := int(gfLog[c])
		for i, v := range src {
			if v != 0 {
				dst[i] ^= gfExp[int(gfLog[v])+lc]
			}
		}
	}
}
