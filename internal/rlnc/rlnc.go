// Package rlnc implements a rateless coded dissemination protocol:
// segments travel as random linear combinations over GF(256) of their
// packets, so any k innovative receptions — from any mix of senders —
// complete a k-packet segment. Receivers run incremental Gaussian
// elimination and advertise their decode rank; there is no
// MissingVector and no request round trip, which is exactly the
// machinery MNP's ReqCtr sender-selection phase exists to coordinate
// (see DESIGN.md §4j for where each approach wins).
//
// The protocol pipelines segments strictly in order, like MNP: a node
// only collects coded packets for segment completeSegs+1, and only
// serves segments it has fully decoded and stored, so the write-once /
// in-order EEPROM invariants hold unchanged.
package rlnc

import (
	"fmt"
	"time"

	"mnp/internal/image"
	"mnp/internal/node"
	"mnp/internal/packet"
)

// Timer IDs.
const (
	timerAdvertise node.TimerID = iota + 1
	timerData
	timerFlushRetry
)

// Config tunes the protocol.
type Config struct {
	// Base marks the (single) source; Image is required there.
	Base  bool
	Image *image.Image
	// AdvInterval is the base advertisement period; each advertisement
	// adds a uniform delay in [0, AdvJitter) to desynchronize
	// neighbors.
	AdvInterval time.Duration
	AdvJitter   time.Duration
	// DataInterval paces coded-packet bursts while demand is live.
	DataInterval time.Duration
	// DemandTTL is how long one heard advertisement from a lagging
	// neighbor keeps this node transmitting coded packets.
	DemandTTL time.Duration
}

// DefaultConfig returns the parameters used by the experiments.
func DefaultConfig() Config {
	return Config{
		AdvInterval:  2 * time.Second,
		AdvJitter:    500 * time.Millisecond,
		DataInterval: 30 * time.Millisecond,
		DemandTTL:    5 * time.Second,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.AdvInterval == 0 {
		c.AdvInterval = d.AdvInterval
	}
	if c.AdvJitter == 0 {
		c.AdvJitter = d.AdvJitter
	}
	if c.DataInterval == 0 {
		c.DataInterval = d.DataInterval
	}
	if c.DemandTTL == 0 {
		c.DemandTTL = d.DemandTTL
	}
	return c
}

// flushRetryDelay spaces retries of EEPROM writes that failed (e.g.
// under injected flash faults).
const flushRetryDelay = 100 * time.Millisecond

// RLNC is one node's protocol instance.
type RLNC struct {
	cfg Config
	rt  node.Runtime

	// Image geometry, RAM-resident: the base takes it from the image,
	// everyone else learns it from the first advertisement heard (and
	// re-learns it the same way after a reboot).
	known      bool
	programID  uint8
	segments   int
	nominal    int // packets per full segment
	total      int // packets in the whole image
	payloadLen int // bytes per coded payload
	tail       int // bytes in the image's final packet

	completeSegs int      // segments fully decoded and stored
	dec          *decoder // decoder of segment completeSegs+1, nil when idle
	flushSeg     int      // decoded segment mid-flush to EEPROM (0 = none)

	// Sender side: RAM cache of the segment currently being served, so
	// each coded packet costs one pass over the cached rows instead of
	// k EEPROM reads.
	txSeg   int
	txRows  [][]byte
	attempt uint32 // coded-frame counter; seeds the coefficient draws

	demandSeg   int // lowest segment a lagging neighbor needs (0 = none)
	demandUntil time.Duration

	// peers caches the last advertisement heard per neighbor, feeding
	// the server-density estimate that paces coded transmissions: ten
	// co-located servers each send at a tenth of the solo rate, keeping
	// the aggregate near one frame per DataInterval. Without this, a
	// dense neighborhood serving one straggler saturates the channel
	// and collisions stop the straggler's rank from ever advancing.
	peers map[packet.NodeID]peerInfo
}

type peerInfo struct {
	seen time.Duration
	segs int
}

var _ node.Protocol = (*RLNC)(nil)

// New returns an RLNC instance.
func New(cfg Config) *RLNC {
	return &RLNC{cfg: cfg.withDefaults()}
}

// Init implements node.Protocol.
func (r *RLNC) Init(rt node.Runtime) {
	r.rt = rt
	rt.RadioOn() // rank exchange needs everyone listening
	if !r.cfg.Base {
		return // geometry arrives with the first advertisement
	}
	im := r.cfg.Image
	if im == nil {
		panic("rlnc: base station requires an image")
	}
	r.known = true
	r.programID = im.ProgramID()
	r.segments = im.Segments()
	r.nominal = im.SegmentPackets()
	r.total = im.TotalPackets()
	r.payloadLen = im.PayloadSize()
	r.tail = im.Size() - (r.total-1)*r.payloadLen
	for seq := 0; seq < r.total; seq++ {
		seg, pkt := seq/r.nominal+1, seq%r.nominal
		if rt.HasPacket(seg, pkt) {
			continue // rebooted base: EEPROM survived
		}
		payload, _ := im.FlatPayload(seq)
		if err := rt.Store(seg, pkt, payload); err != nil {
			panic(fmt.Sprintf("rlnc: preloading base image: %v", err))
		}
	}
	r.completeSegs = r.segments
	rt.Complete()
	r.scheduleAdv()
}

// packetsIn returns the packet count (coefficient width) of a segment.
func (r *RLNC) packetsIn(seg int) int {
	if seg == r.segments {
		return r.total - (r.segments-1)*r.nominal
	}
	return r.nominal
}

// OnTimer implements node.Protocol.
func (r *RLNC) OnTimer(id node.TimerID) {
	switch id {
	case timerAdvertise:
		r.advTick()
	case timerData:
		r.dataTick()
	case timerFlushRetry:
		r.flushSegment()
	}
}

// OnPacket implements node.Protocol.
func (r *RLNC) OnPacket(p packet.Packet, from packet.NodeID) {
	switch pkt := p.(type) {
	case *packet.RlncAdv:
		r.onAdv(pkt)
	case *packet.RlncData:
		r.onData(pkt)
	}
}

// --- advertisement / demand ---

func (r *RLNC) scheduleAdv() {
	d := r.cfg.AdvInterval + time.Duration(r.rt.Rand().Int63n(int64(r.cfg.AdvJitter)))
	r.rt.SetTimer(timerAdvertise, d)
}

func (r *RLNC) advTick() {
	if !r.known {
		return
	}
	rank := 0
	if r.dec != nil {
		rank = r.dec.rank
	}
	_ = r.rt.Send(&packet.RlncAdv{
		Src:          r.rt.ID(),
		ProgramID:    r.programID,
		Segments:     uint8(r.segments),
		SegPackets:   uint8(r.nominal),
		TotalPackets: uint16(r.total),
		PayloadLen:   uint8(r.payloadLen),
		Tail:         uint8(r.tail),
		CompleteSegs: uint8(r.completeSegs),
		Rank:         uint8(rank),
	})
	r.scheduleAdv()
}

// learn adopts the image geometry from the first advertisement heard
// and recovers any segments that survived in EEPROM across a reboot
// (RAM state is lost, flash is not).
func (r *RLNC) learn(a *packet.RlncAdv) {
	if a.Segments == 0 || a.SegPackets == 0 || a.TotalPackets == 0 || a.PayloadLen == 0 {
		return
	}
	r.known = true
	r.programID = a.ProgramID
	r.segments = int(a.Segments)
	r.nominal = int(a.SegPackets)
	r.total = int(a.TotalPackets)
	r.payloadLen = int(a.PayloadLen)
	r.tail = int(a.Tail)
	for s := 1; s <= r.segments; s++ {
		full := true
		for i, k := 0, r.packetsIn(s); i < k; i++ {
			if !r.rt.HasPacket(s, i) {
				full = false
				break
			}
		}
		if !full {
			break
		}
		r.completeSegs = s
	}
	if r.completeSegs == r.segments {
		r.rt.Complete()
	}
	r.scheduleAdv()
}

// serverCount estimates how many nodes (self included) currently hold
// segment seg in this neighborhood, from recently heard
// advertisements. Stale entries are pruned as a side effect.
func (r *RLNC) serverCount(seg int) int {
	horizon := 2 * (r.cfg.AdvInterval + r.cfg.AdvJitter)
	now := r.rt.Now()
	n := 1
	for id, p := range r.peers {
		if now-p.seen > horizon {
			delete(r.peers, id)
			continue
		}
		if p.segs >= seg {
			n++
		}
	}
	return n
}

// dataPace is the inter-frame spacing while serving: the base interval
// scaled by the number of co-located servers, plus jitter so equal
// estimates do not lockstep.
func (r *RLNC) dataPace() time.Duration {
	servers := r.serverCount(r.demandSeg)
	base := time.Duration(servers) * r.cfg.DataInterval
	return base + time.Duration(r.rt.Rand().Int63n(int64(r.cfg.DataInterval)))
}

func (r *RLNC) onAdv(a *packet.RlncAdv) {
	if !r.known {
		r.learn(a)
	}
	if !r.known || a.ProgramID != r.programID {
		return
	}
	if r.peers == nil {
		r.peers = make(map[packet.NodeID]peerInfo)
	}
	r.peers[a.Src] = peerInfo{seen: r.rt.Now(), segs: int(a.CompleteSegs)}
	if int(a.CompleteSegs) >= r.completeSegs {
		return // the neighbor is not behind us; nothing to serve
	}
	// The neighbor's next segment is one we hold: register demand and
	// start (or keep) the coded burst, offset randomly so concurrent
	// servers interleave instead of colliding.
	need := int(a.CompleteSegs) + 1
	until := r.rt.Now() + r.cfg.DemandTTL
	switch {
	case r.demandSeg == 0 || need < r.demandSeg:
		r.demandSeg = need
		r.demandUntil = until
	case need == r.demandSeg && until > r.demandUntil:
		r.demandUntil = until
	}
	// Advertisements needing a higher segment deliberately do not
	// refresh the TTL: the lower demand must be allowed to expire, or a
	// mixed neighborhood pins the sender on its slowest segment forever.
	if !r.rt.TimerPending(timerData) {
		r.rt.SetTimer(timerData, time.Duration(r.rt.Rand().Int63n(int64(4*r.cfg.DataInterval))))
	}
}

// --- sender side ---

func (r *RLNC) dataTick() {
	if r.demandSeg == 0 || r.demandSeg > r.completeSegs || r.rt.Now() >= r.demandUntil {
		r.demandSeg = 0
		return
	}
	r.sendCoded(r.demandSeg)
	r.rt.SetTimer(timerData, r.dataPace())
}

// sendCoded broadcasts one fresh random linear combination of seg.
func (r *RLNC) sendCoded(seg int) {
	k := r.packetsIn(seg)
	if r.txSeg != seg {
		rows := make([][]byte, k)
		for i := 0; i < k; i++ {
			p := r.rt.Load(seg, i)
			if p == nil {
				return // only complete segments are served
			}
			row := make([]byte, r.payloadLen)
			copy(row, p) // the image's final packet is shorter: zero-pad
			rows[i] = row
		}
		r.txSeg, r.txRows = seg, rows
	}
	r.attempt++
	coeffs := make([]byte, k)
	drawCoeffs(coeffs, r.rt.ID(), seg, r.attempt)
	payload := make([]byte, r.payloadLen)
	for i, c := range coeffs {
		addScaledRow(payload, r.txRows[i], c)
	}
	_ = r.rt.Send(&packet.RlncData{
		Src:       r.rt.ID(),
		ProgramID: r.programID,
		Seg:       uint8(seg),
		Coeffs:    coeffs,
		Payload:   payload,
	})
}

// drawCoeffs fills dst with the coefficient vector of (src, seg,
// attempt): a splitmix64 stream keyed by the triple, so a frame's
// coefficients are reproducible from its header alone and two senders
// never draw identical combinations. An all-zero draw (probability
// 256^-k) degrades to a unit vector rather than a wasted frame.
func drawCoeffs(dst []byte, src packet.NodeID, seg int, attempt uint32) {
	s := uint64(src)<<40 ^ uint64(uint32(seg))<<32 ^ uint64(attempt)
	nonzero := false
	var buf uint64
	bits := 0
	for i := range dst {
		if bits == 0 {
			s += 0x9E3779B97F4A7C15
			z := s
			z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
			z = (z ^ z>>27) * 0x94D049BB133111EB
			buf = z ^ z>>31
			bits = 8
		}
		dst[i] = byte(buf)
		buf >>= 8
		bits--
		if dst[i] != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		dst[int(attempt)%len(dst)] = 1
	}
}

// --- receiver side ---

func (r *RLNC) onData(d *packet.RlncData) {
	if !r.known || d.ProgramID != r.programID {
		return // geometry arrives with advertisements
	}
	seg := int(d.Seg)
	if seg <= r.completeSegs || seg == r.flushSeg {
		// Someone else is serving a segment we already decoded; if we
		// are serving it too, back off to thin duplicate coverage.
		if seg == r.demandSeg && r.rt.TimerPending(timerData) {
			d := r.dataPace() + time.Duration(r.rt.Rand().Int63n(int64(2*r.cfg.DataInterval)))
			r.rt.SetTimer(timerData, d)
		}
		return
	}
	if seg != r.completeSegs+1 {
		return // segments pipeline strictly in order
	}
	if r.dec == nil {
		r.dec = newDecoder(r.packetsIn(seg), r.payloadLen)
	}
	ops, _ := r.dec.addRow(d.Coeffs, d.Payload)
	if r.dec.complete() {
		ops += r.dec.reduce()
	}
	if ops > 0 {
		r.rt.Event(node.Event{Kind: node.EventDecodeOps, Seg: seg, Ops: ops})
	}
	if r.dec.complete() {
		r.flushSeg = seg
		r.flushSegment()
	}
}

// flushSegment writes the decoded segment to EEPROM. Slots already
// present (a retry after a mid-flush write fault or reboot) are
// skipped, preserving write-once; a failed write re-arms a retry timer
// instead of losing the decoded data.
func (r *RLNC) flushSegment() {
	seg := r.flushSeg
	if seg == 0 || r.dec == nil || !r.dec.complete() {
		return
	}
	for i, k := 0, r.packetsIn(seg); i < k; i++ {
		if r.rt.HasPacket(seg, i) {
			continue
		}
		payload := r.dec.packet(i)
		if flat := (seg-1)*r.nominal + i; flat == r.total-1 {
			payload = payload[:r.tail]
		}
		if err := r.rt.Store(seg, i, payload); err != nil {
			r.rt.SetTimer(timerFlushRetry, flushRetryDelay)
			return
		}
	}
	r.flushSeg = 0
	r.dec = nil
	r.completeSegs = seg
	r.rt.Event(node.Event{Kind: node.EventGotSegment, Seg: seg})
	if r.completeSegs == r.segments {
		r.rt.Complete()
	}
	// Advertise the new state promptly so the next hop's pipeline
	// starts without waiting out a full advertisement period.
	r.rt.SetTimer(timerAdvertise, time.Duration(r.rt.Rand().Int63n(int64(r.cfg.AdvJitter))))
}
