package sim

import (
	"testing"
	"time"
)

// Fired and cancelled events return to the free list and are reused for
// later schedules.
func TestEventFreeListReuse(t *testing.T) {
	k := New(1)
	tm := k.MustSchedule(time.Millisecond, func() {})
	ev := tm.ev
	k.Run(time.Second)
	if len(k.free) != 1 || k.free[0] != ev {
		t.Fatalf("fired event not recycled (free list %d entries)", len(k.free))
	}
	tm2 := k.MustSchedule(time.Millisecond, func() {})
	if tm2.ev != ev {
		t.Fatal("new schedule did not reuse the recycled event")
	}
	tm2.Cancel()
	k.Run(time.Second)
	if len(k.free) != 1 || k.free[0] != ev {
		t.Fatal("cancelled event not recycled")
	}
}

// A Timer handle from a previous life of a recycled event is stale: its
// generation no longer matches, so Cancel must not touch the new event
// and Active must report false.
func TestStaleTimerHandleIsInert(t *testing.T) {
	k := New(1)
	stale := k.MustSchedule(time.Millisecond, func() {})
	k.Run(time.Second) // fires; event recycled, generation bumped

	fired := false
	fresh := k.MustSchedule(time.Millisecond, func() { fired = true })
	if fresh.ev != stale.ev {
		t.Fatal("test premise broken: event was not reused")
	}
	if stale.Active() {
		t.Fatal("stale handle reports active")
	}
	stale.Cancel() // must not cancel the fresh event
	if !fresh.Active() {
		t.Fatal("stale Cancel killed the fresh event")
	}
	k.Run(time.Second)
	if !fired {
		t.Fatal("fresh event did not fire after stale Cancel")
	}
}

// Steady-state scheduling (schedule one, run one, repeat) does not
// allocate once the pool is warm.
func TestSteadyStateSchedulingAllocFree(t *testing.T) {
	k := New(1)
	k.MustSchedule(0, func() {})
	k.Run(time.Second) // warm the pool
	allocs := testing.AllocsPerRun(1000, func() {
		k.MustSchedule(time.Microsecond, func() {})
		k.Step()
	})
	if allocs > 0 {
		t.Fatalf("steady-state scheduling allocates %.1f per op, want 0", allocs)
	}
}
