// Package sim is a deterministic discrete-event simulation kernel: a
// virtual clock, a priority queue of events, cancellable timers, and a
// seeded RNG. It plays the role TOSSIM plays in the paper — the
// substrate every experiment runs on — while guaranteeing that a run is
// a pure function of its seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Kernel is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; everything in a simulation executes inside event
// callbacks on one goroutine.
type Kernel struct {
	now     time.Duration
	seq     uint64
	queue   eventHeap
	rng     *rand.Rand
	stopped bool
}

// New returns a kernel whose RNG is seeded with seed. Two kernels with
// the same seed and the same schedule of callbacks produce identical
// runs.
func New(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time (elapsed since simulation
// start).
func (k *Kernel) Now() time.Duration { return k.now }

// Rand returns the kernel's deterministic RNG. All randomness in a
// simulation must come from here.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Timer is a handle to a scheduled event.
type Timer struct {
	ev *event
}

// Cancel prevents the timer's callback from running. Cancelling an
// already-fired or already-cancelled timer is a no-op.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.cancelled = true
	}
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && !t.ev.cancelled && !t.ev.fired
}

// Schedule runs fn after delay of virtual time. A negative delay is an
// error; a zero delay runs fn after all events already scheduled for
// the current instant (FIFO among equal times).
func (k *Kernel) Schedule(delay time.Duration, fn func()) (*Timer, error) {
	if delay < 0 {
		return nil, fmt.Errorf("sim: negative delay %v", delay)
	}
	return k.at(k.now+delay, fn), nil
}

// MustSchedule is Schedule for delays known to be non-negative; it
// panics otherwise.
func (k *Kernel) MustSchedule(delay time.Duration, fn func()) *Timer {
	t, err := k.Schedule(delay, fn)
	if err != nil {
		panic(err)
	}
	return t
}

func (k *Kernel) at(when time.Duration, fn func()) *Timer {
	ev := &event{at: when, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, ev)
	return &Timer{ev: ev}
}

// Step executes the next pending event. It returns false when the
// queue is empty.
func (k *Kernel) Step() bool {
	for k.queue.Len() > 0 {
		ev := heap.Pop(&k.queue).(*event)
		if ev.cancelled {
			continue
		}
		k.now = ev.at
		ev.fired = true
		ev.fn()
		return true
	}
	return false
}

// Stop makes the current Run return after the executing event
// completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue drains, the virtual clock would
// pass limit, or Stop is called. It returns the number of events
// executed. Events scheduled exactly at limit still run.
func (k *Kernel) Run(limit time.Duration) int {
	k.stopped = false
	n := 0
	for !k.stopped {
		next, ok := k.peek()
		if !ok || next > limit {
			break
		}
		if !k.Step() {
			break
		}
		n++
	}
	return n
}

// RunUntil executes events until pred returns true, the clock passes
// limit, or the queue drains. It reports whether pred was satisfied.
// pred is evaluated after every event.
func (k *Kernel) RunUntil(pred func() bool, limit time.Duration) bool {
	if pred() {
		return true
	}
	k.stopped = false
	for !k.stopped {
		next, ok := k.peek()
		if !ok || next > limit {
			return false
		}
		if !k.Step() {
			return false
		}
		if pred() {
			return true
		}
	}
	return false
}

// Pending returns the number of events waiting (including cancelled
// ones not yet reaped).
func (k *Kernel) Pending() int { return k.queue.Len() }

func (k *Kernel) peek() (time.Duration, bool) {
	for k.queue.Len() > 0 {
		ev := k.queue[0]
		if ev.cancelled {
			heap.Pop(&k.queue)
			continue
		}
		return ev.at, true
	}
	return 0, false
}

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
	index     int
}

// eventHeap orders events by (time, insertion sequence) so equal-time
// events run FIFO and runs are deterministic.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
