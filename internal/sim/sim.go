// Package sim is a deterministic discrete-event simulation kernel: a
// virtual clock, a priority queue of events, cancellable timers, and a
// seeded RNG. It plays the role TOSSIM plays in the paper — the
// substrate every experiment runs on — while guaranteeing that a run is
// a pure function of its seed.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Kernel is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; everything in a simulation executes inside event
// callbacks on one goroutine.
type Kernel struct {
	now     time.Duration
	seq     uint64
	queue   eventHeap
	free    []*event
	rng     *rand.Rand
	stopped bool
}

// initialQueueCap pre-sizes the event heap and free list so
// steady-state scheduling never grows either: a 400-node deployment
// keeps on the order of one timer and one in-flight frame per node.
const initialQueueCap = 1024

// New returns a kernel whose RNG is seeded with seed. Two kernels with
// the same seed and the same schedule of callbacks produce identical
// runs.
func New(seed int64) *Kernel {
	return NewSized(seed, 0)
}

// NewSized returns a kernel whose event heap and free list are
// pre-sized for roughly hint simultaneous events, so large deployments
// (which keep a few timers and an in-flight frame per node) never grow
// either mid-run. A hint at or below the default capacity behaves
// exactly like New; capacity never changes scheduling order.
func NewSized(seed int64, hint int) *Kernel {
	c := initialQueueCap
	if hint > c {
		c = hint
	}
	k := &Kernel{
		queue: make(eventHeap, 0, c),
		rng:   rand.New(rand.NewSource(seed)),
	}
	if hint > 0 {
		// Carve the free list out of one contiguous block: scheduling
		// stays allocation-free from the first event and neighboring
		// events share cache lines.
		block := make([]event, c)
		k.free = make([]*event, 0, c)
		for i := range block {
			k.free = append(k.free, &block[i])
		}
	}
	return k
}

// Now returns the current virtual time (elapsed since simulation
// start).
func (k *Kernel) Now() time.Duration { return k.now }

// Rand returns the kernel's deterministic RNG. All randomness in a
// simulation must come from here.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Timer is a handle to a scheduled event. It is a small value; copy it
// freely. The zero Timer is inert: Cancel is a no-op and Active
// reports false.
//
// Fired and cancelled events are recycled through a free list, so a
// Timer remembers the generation of the event it was issued for and
// quietly expires when the event's slot is reused — a stale handle can
// never cancel someone else's event.
type Timer struct {
	ev  *event
	gen uint64
}

// Cancel prevents the timer's callback from running. Cancelling an
// already-fired or already-cancelled timer is a no-op.
func (t Timer) Cancel() {
	if t.ev != nil && t.ev.gen == t.gen {
		t.ev.cancelled = true
	}
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.cancelled && !t.ev.fired
}

// Schedule runs fn after delay of virtual time. A negative delay is an
// error; a zero delay runs fn after all events already scheduled for
// the current instant (FIFO among equal times).
func (k *Kernel) Schedule(delay time.Duration, fn func()) (Timer, error) {
	if delay < 0 {
		return Timer{}, fmt.Errorf("sim: negative delay %v", delay)
	}
	return k.at(k.now+delay, fn), nil
}

// MustSchedule is Schedule for delays known to be non-negative; it
// panics otherwise.
func (k *Kernel) MustSchedule(delay time.Duration, fn func()) Timer {
	t, err := k.Schedule(delay, fn)
	if err != nil {
		panic(err)
	}
	return t
}

// ScheduleAt runs fn at the absolute virtual time when, which must not
// precede the current clock. The sharded engine uses it to land
// cross-shard frame deliveries at their exact end-of-frame instants,
// which were computed on another shard's clock.
func (k *Kernel) ScheduleAt(when time.Duration, fn func()) (Timer, error) {
	if when < k.now {
		return Timer{}, fmt.Errorf("sim: schedule at %v before now %v", when, k.now)
	}
	return k.at(when, fn), nil
}

func (k *Kernel) at(when time.Duration, fn func()) Timer {
	var ev *event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		ev.cancelled, ev.fired = false, false
	} else {
		ev = &event{}
	}
	ev.at, ev.seq, ev.fn = when, k.seq, fn
	k.seq++
	k.push(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// recycle returns a popped event to the free list, bumping its
// generation so stale Timer handles expire.
func (k *Kernel) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	k.free = append(k.free, ev)
}

// Step executes the next pending event. It returns false when the
// queue is empty.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		ev := k.pop()
		if ev.cancelled {
			k.recycle(ev)
			continue
		}
		k.now = ev.at
		ev.fired = true
		fn := ev.fn
		k.recycle(ev)
		fn()
		return true
	}
	return false
}

// Stop makes the current Run return after the executing event
// completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue drains, the virtual clock would
// pass limit, or Stop is called. It returns the number of events
// executed. Events scheduled exactly at limit still run.
func (k *Kernel) Run(limit time.Duration) int {
	k.stopped = false
	n := 0
	for !k.stopped {
		next, ok := k.peek()
		if !ok || next > limit {
			break
		}
		if !k.Step() {
			break
		}
		n++
	}
	return n
}

// RunBefore executes every event strictly earlier than limit and
// returns the number executed. Events scheduled at or after limit stay
// queued and the clock is left at the last executed event. This is the
// window-bounded run the sharded engine advances each shard by: with
// limit = the next barrier, everything the shard can safely do without
// seeing other shards' frames runs, and nothing else.
func (k *Kernel) RunBefore(limit time.Duration) int {
	k.stopped = false
	n := 0
	for !k.stopped {
		next, ok := k.peek()
		if !ok || next >= limit {
			break
		}
		if !k.Step() {
			break
		}
		n++
	}
	return n
}

// NextEventAt returns the time of the earliest pending event, without
// running it. The second result is false when the queue is empty.
func (k *Kernel) NextEventAt() (time.Duration, bool) { return k.peek() }

// AdvanceTo moves the clock forward to t without running anything. It
// panics if an event earlier than t is still pending — callers (the
// sharded engine, advancing every shard to a window barrier after
// RunBefore drained it) must have run those first. A t in the past is a
// no-op.
func (k *Kernel) AdvanceTo(t time.Duration) {
	if t <= k.now {
		return
	}
	if next, ok := k.peek(); ok && next < t {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) would skip an event at %v", t, next))
	}
	k.now = t
}

// RunUntil executes events until pred returns true, the clock passes
// limit, or the queue drains. It reports whether pred was satisfied.
// pred is evaluated after every event.
func (k *Kernel) RunUntil(pred func() bool, limit time.Duration) bool {
	if pred() {
		return true
	}
	k.stopped = false
	for !k.stopped {
		next, ok := k.peek()
		if !ok || next > limit {
			return false
		}
		if !k.Step() {
			return false
		}
		if pred() {
			return true
		}
	}
	return false
}

// Pending returns the number of events waiting (including cancelled
// ones not yet reaped).
func (k *Kernel) Pending() int { return len(k.queue) }

func (k *Kernel) peek() (time.Duration, bool) {
	for len(k.queue) > 0 {
		ev := k.queue[0]
		if ev.cancelled {
			k.pop()
			k.recycle(ev)
			continue
		}
		return ev.at, true
	}
	return 0, false
}

type event struct {
	at        time.Duration
	seq       uint64
	gen       uint64
	fn        func()
	cancelled bool
	fired     bool
}

// before orders events by (time, insertion sequence) so equal-time
// events run FIFO and runs are deterministic. The order is total —
// sequence numbers are unique — so any heap arity pops events in the
// same order.
func (e *event) before(f *event) bool {
	if e.at != f.at {
		return e.at < f.at
	}
	return e.seq < f.seq
}

// eventHeap is a 4-ary min-heap of events. Quad-ary beats binary here:
// the tree is half as deep, sift-down touches fewer cache lines, and
// the kernel pops exactly as many events as it pushes. The sift
// routines move a hole instead of swapping, and are inlined free of
// interface calls — container/heap was the top CPU cost of a 400-node
// run.
type eventHeap []*event

// push inserts ev, sifting the hole up from the new leaf.
func (k *Kernel) push(ev *event) {
	q := append(k.queue, ev)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !ev.before(q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = ev
	k.queue = q
}

// pop removes and returns the minimum event, sifting the displaced
// last leaf down from the root.
func (k *Kernel) pop() *event {
	q := k.queue
	n := len(q) - 1
	min := q[0]
	last := q[n]
	q[n] = nil
	q = q[:n]
	k.queue = q
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			m := c
			for j := c + 1; j < end; j++ {
				if q[j].before(q[m]) {
					m = j
				}
			}
			if !q[m].before(last) {
				break
			}
			q[i] = q[m]
			i = m
		}
		q[i] = last
	}
	return min
}
