package sim

import "math/rand"

// CountingSource wraps a rand.Source64 and counts draws. Every call is
// forwarded unchanged, so a rand.Rand over the wrapper produces exactly
// the sequence the bare source would — golden hashes are unaffected —
// while the draw count gives checkpointing a free version stamp
// (checkpoint.Versioned): a source whose count is unchanged since the
// last snapshot cannot have advanced, so its ~5KB of internal state
// need not be copied again. This is what makes per-round checkpoints of
// hundreds of mostly-idle per-node RNGs O(dirty state).
type CountingSource struct {
	src rand.Source64
	n   uint64
}

// NewCountingSource wraps src, which must implement rand.Source64 (the
// sources rand.NewSource returns all do).
func NewCountingSource(src rand.Source) *CountingSource {
	s64, ok := src.(rand.Source64)
	if !ok {
		panic("sim: CountingSource requires a rand.Source64")
	}
	return &CountingSource{src: s64}
}

// Int63 implements rand.Source.
func (c *CountingSource) Int63() int64 { c.n++; return c.src.Int63() }

// Uint64 implements rand.Source64.
func (c *CountingSource) Uint64() uint64 { c.n++; return c.src.Uint64() }

// Seed implements rand.Source.
func (c *CountingSource) Seed(seed int64) { c.n++; c.src.Seed(seed) }

// StateVersion implements checkpoint.Versioned: it advances on every
// draw, so equal versions imply identical internal state.
func (c *CountingSource) StateVersion() uint64 { return c.n }
