package sim

import (
	"fmt"
	"testing"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	k := New(1)
	var got []int
	k.MustSchedule(30*time.Millisecond, func() { got = append(got, 3) })
	k.MustSchedule(10*time.Millisecond, func() { got = append(got, 1) })
	k.MustSchedule(20*time.Millisecond, func() { got = append(got, 2) })
	if n := k.Run(time.Second); n != 3 {
		t.Fatalf("ran %d events, want 3", n)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v", k.Now())
	}
}

func TestEqualTimesRunFIFO(t *testing.T) {
	k := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.MustSchedule(time.Millisecond, func() { got = append(got, i) })
	}
	k.Run(time.Second)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestNegativeDelayRejected(t *testing.T) {
	k := New(1)
	if _, err := k.Schedule(-time.Millisecond, func() {}); err == nil {
		t.Fatal("negative delay accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchedule did not panic")
		}
	}()
	k.MustSchedule(-1, func() {})
}

func TestCancelPreventsExecution(t *testing.T) {
	k := New(1)
	fired := false
	tm := k.MustSchedule(10*time.Millisecond, func() { fired = true })
	if !tm.Active() {
		t.Fatal("fresh timer inactive")
	}
	tm.Cancel()
	if tm.Active() {
		t.Fatal("cancelled timer active")
	}
	k.Run(time.Second)
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Cancel is idempotent and safe after the run.
	tm.Cancel()
	var zeroTimer Timer
	zeroTimer.Cancel() // must not panic
	if zeroTimer.Active() {
		t.Fatal("zero timer active")
	}
}

func TestTimerInactiveAfterFiring(t *testing.T) {
	k := New(1)
	tm := k.MustSchedule(time.Millisecond, func() {})
	k.Run(time.Second)
	if tm.Active() {
		t.Fatal("fired timer still active")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	k := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			k.MustSchedule(time.Millisecond, tick)
		}
	}
	k.MustSchedule(0, tick)
	k.Run(time.Second)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if k.Now() != 4*time.Millisecond {
		t.Fatalf("Now = %v, want 4ms", k.Now())
	}
}

func TestRunRespectsLimit(t *testing.T) {
	k := New(1)
	ran := []time.Duration{}
	for _, d := range []time.Duration{time.Millisecond, time.Second, time.Hour} {
		d := d
		k.MustSchedule(d, func() { ran = append(ran, d) })
	}
	k.Run(time.Second) // events at exactly the limit still run
	if len(ran) != 2 {
		t.Fatalf("ran %v, want first two", ran)
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", k.Pending())
	}
	// The remaining event is still runnable later.
	k.Run(2 * time.Hour)
	if len(ran) != 3 {
		t.Fatalf("ran %v after extended run", ran)
	}
}

func TestStop(t *testing.T) {
	k := New(1)
	count := 0
	for i := 0; i < 10; i++ {
		k.MustSchedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run(time.Second)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestRunUntil(t *testing.T) {
	k := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		k.MustSchedule(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	if !k.RunUntil(func() bool { return count == 4 }, time.Second) {
		t.Fatal("RunUntil did not satisfy predicate")
	}
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if k.RunUntil(func() bool { return count == 100 }, time.Second) {
		t.Fatal("RunUntil satisfied impossible predicate")
	}
	// Immediately-true predicate runs nothing.
	before := count
	if !k.RunUntil(func() bool { return true }, time.Second) {
		t.Fatal("trivially true predicate unsatisfied")
	}
	if count != before {
		t.Fatal("events ran for a trivially true predicate")
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	k := New(1)
	if k.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) []int {
		k := New(seed)
		var out []int
		var spawn func()
		spawn = func() {
			v := k.Rand().Intn(1000)
			out = append(out, v)
			if len(out) < 50 {
				k.MustSchedule(time.Duration(k.Rand().Intn(100))*time.Millisecond, spawn)
			}
		}
		k.MustSchedule(0, spawn)
		k.Run(time.Hour)
		return out
	}
	a, b := trace(7), trace(7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := trace(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestCancelledEventsReapedFromPeek(t *testing.T) {
	k := New(1)
	timers := make([]Timer, 100)
	for i := range timers {
		timers[i] = k.MustSchedule(time.Millisecond, func() {})
	}
	for _, tm := range timers {
		tm.Cancel()
	}
	fired := false
	k.MustSchedule(2*time.Millisecond, func() { fired = true })
	if n := k.Run(time.Second); n != 1 {
		t.Fatalf("ran %d events, want 1", n)
	}
	if !fired {
		t.Fatal("surviving event did not fire")
	}
}

// Property: for any random schedule (including events scheduled from
// inside events), execution times are monotonically non-decreasing.
func TestQuickExecutionOrderMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		k := New(seed)
		var times []time.Duration
		var spawn func(depth int)
		spawn = func(depth int) {
			times = append(times, k.Now())
			if depth < 3 {
				n := k.Rand().Intn(4)
				for i := 0; i < n; i++ {
					d := time.Duration(k.Rand().Intn(1000)) * time.Millisecond
					k.MustSchedule(d, func() { spawn(depth + 1) })
				}
			}
		}
		for i := 0; i < 10; i++ {
			d := time.Duration(k.Rand().Intn(5000)) * time.Millisecond
			k.MustSchedule(d, func() { spawn(0) })
		}
		k.Run(time.Hour)
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quickCheck(f, 100); err != nil {
		t.Fatal(err)
	}
}

// quickCheck is a tiny local stand-in for testing/quick that feeds
// sequential seeds (quick's random int64s are fine too, but sequential
// seeds make failures reproducible at a glance).
func quickCheck(f func(int64) bool, n int) error {
	for seed := int64(0); seed < int64(n); seed++ {
		if !f(seed) {
			return fmt.Errorf("property failed at seed %d", seed)
		}
	}
	return nil
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := New(1)
		for j := 0; j < 100; j++ {
			k.MustSchedule(time.Duration(j)*time.Microsecond, func() {})
		}
		k.Run(time.Second)
	}
}
