package sim

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

// The window primitives — RunBefore, AdvanceTo, NextEventAt,
// ScheduleAt — are what the sharded engine builds lockstep windows out
// of; their edge semantics (strict exclusivity, barrier parking, exact
// absolute landing) are load-bearing for cross-shard determinism.

func TestRunBeforeIsExclusive(t *testing.T) {
	k := New(1)
	var fired []time.Duration
	for _, at := range []time.Duration{10, 20, 30} {
		at := at
		k.MustSchedule(at*time.Millisecond, func() { fired = append(fired, at) })
	}
	if n := k.RunBefore(20 * time.Millisecond); n != 1 {
		t.Fatalf("RunBefore(20ms) executed %d events, want 1", n)
	}
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("fired %v, want only the 10ms event", fired)
	}
	// The 20ms event is on the boundary and must still be pending.
	if at, ok := k.NextEventAt(); !ok || at != 20*time.Millisecond {
		t.Fatalf("next event at %v ok=%v, want 20ms pending", at, ok)
	}
	if n := k.RunBefore(31 * time.Millisecond); n != 2 {
		t.Fatalf("second window executed %d events, want 2", n)
	}
}

func TestRunBeforeRunsEventsScheduledInsideWindow(t *testing.T) {
	k := New(1)
	order := []string{}
	k.MustSchedule(time.Millisecond, func() {
		order = append(order, "a")
		// Lands inside the window: must run in the same RunBefore call.
		k.MustSchedule(time.Millisecond, func() { order = append(order, "b") })
		// Lands on the boundary: must not.
		k.MustSchedule(9*time.Millisecond, func() { order = append(order, "c") })
	})
	k.RunBefore(10 * time.Millisecond)
	if got := strings.Join(order, ""); got != "ab" {
		t.Fatalf("ran %q, want \"ab\"", got)
	}
}

func TestAdvanceToParksClockAtBarrier(t *testing.T) {
	k := New(1)
	k.MustSchedule(3*time.Millisecond, func() {})
	k.RunBefore(10 * time.Millisecond)
	if k.Now() != 3*time.Millisecond {
		t.Fatalf("clock at %v after RunBefore, want 3ms", k.Now())
	}
	k.AdvanceTo(10 * time.Millisecond)
	if k.Now() != 10*time.Millisecond {
		t.Fatalf("clock at %v, want parked at the 10ms barrier", k.Now())
	}
	// Moving backwards is a no-op, not a panic.
	k.AdvanceTo(5 * time.Millisecond)
	if k.Now() != 10*time.Millisecond {
		t.Fatalf("AdvanceTo into the past moved the clock to %v", k.Now())
	}
}

func TestAdvanceToPanicsOverPendingEvent(t *testing.T) {
	k := New(1)
	k.MustSchedule(time.Millisecond, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo skipped a pending event without panicking")
		}
	}()
	k.AdvanceTo(time.Second)
}

func TestScheduleAtLandsAtAbsoluteTime(t *testing.T) {
	k := New(1)
	k.MustSchedule(5*time.Millisecond, func() {})
	k.RunBefore(6 * time.Millisecond) // clock now at 5ms
	var at time.Duration
	if _, err := k.ScheduleAt(8*time.Millisecond, func() { at = k.Now() }); err != nil {
		t.Fatal(err)
	}
	k.RunBefore(time.Second)
	if at != 8*time.Millisecond {
		t.Fatalf("event ran at %v, want the absolute 8ms", at)
	}
	// Scheduling before the current clock is an error, not a silent
	// reorder.
	if _, err := k.ScheduleAt(time.Millisecond, func() {}); err == nil {
		t.Fatal("ScheduleAt in the past accepted")
	}
	// Scheduling exactly at the clock is allowed (a frame can end on a
	// barrier).
	ran := false
	if _, err := k.ScheduleAt(k.Now(), func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	k.RunBefore(time.Second)
	if !ran {
		t.Fatal("event at the current instant never ran")
	}
}

func TestNextEventAtIsNonDestructive(t *testing.T) {
	k := New(1)
	if _, ok := k.NextEventAt(); ok {
		t.Fatal("empty kernel reports a pending event")
	}
	k.MustSchedule(7*time.Millisecond, func() {})
	for i := 0; i < 3; i++ {
		if at, ok := k.NextEventAt(); !ok || at != 7*time.Millisecond {
			t.Fatalf("peek %d: at=%v ok=%v, want 7ms", i, at, ok)
		}
	}
	if k.Pending() != 1 {
		t.Fatalf("peeking consumed events: %d pending", k.Pending())
	}
	// A cancelled head is reaped, not reported.
	tm := k.MustSchedule(time.Millisecond, func() {})
	tm.Cancel()
	if at, ok := k.NextEventAt(); !ok || at != 7*time.Millisecond {
		t.Fatalf("peek past cancelled head: at=%v ok=%v, want 7ms", at, ok)
	}
}

func TestNewSizedSchedulingMatchesNew(t *testing.T) {
	trace := func(k *Kernel) []int {
		var got []int
		for i := 0; i < 500; i++ {
			i := i
			k.MustSchedule(time.Duration(k.Rand().Intn(50))*time.Millisecond, func() {
				got = append(got, i)
			})
		}
		k.Run(time.Second)
		return got
	}
	a := trace(New(99))
	b := trace(NewSized(99, 2048))
	if len(a) != len(b) {
		t.Fatalf("executed %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("execution order diverges at %d: %d vs %d (capacity changed scheduling)", i, a[i], b[i])
		}
	}
}

// --- optimistic-engine edge cases (PR 10) ---
// The speculate-and-rollback engine leans harder on these primitives:
// parked tiles are classified by NextEventAt after their pools drain,
// and speculation horizons land exactly on event timestamps.

func TestNextEventAtOnDrainedPool(t *testing.T) {
	k := New(1)
	for i := 1; i <= 4; i++ {
		k.MustSchedule(time.Duration(i)*time.Millisecond, func() {})
	}
	k.RunBefore(time.Second) // drain everything into the free list
	if at, ok := k.NextEventAt(); ok {
		t.Fatalf("drained pool reports a pending event at %v", at)
	}
	if k.Pending() != 0 {
		t.Fatalf("%d events pending after drain", k.Pending())
	}
	// The drained pool must still accept and report new work (recycled
	// free-list entries must not leak stale timestamps).
	k.MustSchedule(2*time.Millisecond, func() {})
	if at, ok := k.NextEventAt(); !ok || at != k.Now()+2*time.Millisecond {
		t.Fatalf("after refill: at=%v ok=%v, want %v", at, ok, k.Now()+2*time.Millisecond)
	}
}

func TestRunBeforeSimultaneousEventsAtLimit(t *testing.T) {
	k := New(1)
	var ran []int
	for i := 0; i < 3; i++ {
		i := i
		k.MustSchedule(10*time.Millisecond, func() { ran = append(ran, i) })
	}
	// All three sit exactly on the window boundary: strictly-before
	// semantics must run none of them.
	if n := k.RunBefore(10 * time.Millisecond); n != 0 {
		t.Fatalf("RunBefore ran %d boundary events, want 0", n)
	}
	if len(ran) != 0 {
		t.Fatalf("boundary events fired early: %v", ran)
	}
	// AdvanceTo exactly onto the simultaneous events is legal (nothing
	// is skipped)...
	k.AdvanceTo(10 * time.Millisecond)
	if k.Now() != 10*time.Millisecond {
		t.Fatalf("clock at %v, want 10ms", k.Now())
	}
	// ...and the next window runs all three in scheduling (FIFO) order.
	if n := k.RunBefore(10*time.Millisecond + 1); n != 3 {
		t.Fatalf("next window ran %d events, want 3", n)
	}
	for i, got := range ran {
		if got != i {
			t.Fatalf("simultaneous events ran out of order: %v", ran)
		}
	}
}

func TestCountingSourceForwardsExactly(t *testing.T) {
	bare := rand.New(rand.NewSource(42))
	wrapped := rand.New(NewCountingSource(rand.NewSource(42)))
	for i := 0; i < 200; i++ {
		switch i % 4 {
		case 0:
			if a, b := bare.Int63(), wrapped.Int63(); a != b {
				t.Fatalf("Int63 diverged at %d: %d vs %d", i, a, b)
			}
		case 1:
			if a, b := bare.Uint64(), wrapped.Uint64(); a != b {
				t.Fatalf("Uint64 diverged at %d: %d vs %d", i, a, b)
			}
		case 2:
			if a, b := bare.Intn(97), wrapped.Intn(97); a != b {
				t.Fatalf("Intn diverged at %d: %d vs %d", i, a, b)
			}
		case 3:
			if a, b := bare.Float64(), wrapped.Float64(); a != b {
				t.Fatalf("Float64 diverged at %d: %v vs %v", i, a, b)
			}
		}
	}
	cs := NewCountingSource(rand.NewSource(1))
	if cs.StateVersion() != 0 {
		t.Fatalf("fresh source at version %d", cs.StateVersion())
	}
	cs.Int63()
	cs.Uint64()
	if cs.StateVersion() != 2 {
		t.Fatalf("2 draws left version at %d", cs.StateVersion())
	}
}
