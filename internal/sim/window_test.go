package sim

import (
	"strings"
	"testing"
	"time"
)

// The window primitives — RunBefore, AdvanceTo, NextEventAt,
// ScheduleAt — are what the sharded engine builds lockstep windows out
// of; their edge semantics (strict exclusivity, barrier parking, exact
// absolute landing) are load-bearing for cross-shard determinism.

func TestRunBeforeIsExclusive(t *testing.T) {
	k := New(1)
	var fired []time.Duration
	for _, at := range []time.Duration{10, 20, 30} {
		at := at
		k.MustSchedule(at*time.Millisecond, func() { fired = append(fired, at) })
	}
	if n := k.RunBefore(20 * time.Millisecond); n != 1 {
		t.Fatalf("RunBefore(20ms) executed %d events, want 1", n)
	}
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("fired %v, want only the 10ms event", fired)
	}
	// The 20ms event is on the boundary and must still be pending.
	if at, ok := k.NextEventAt(); !ok || at != 20*time.Millisecond {
		t.Fatalf("next event at %v ok=%v, want 20ms pending", at, ok)
	}
	if n := k.RunBefore(31 * time.Millisecond); n != 2 {
		t.Fatalf("second window executed %d events, want 2", n)
	}
}

func TestRunBeforeRunsEventsScheduledInsideWindow(t *testing.T) {
	k := New(1)
	order := []string{}
	k.MustSchedule(time.Millisecond, func() {
		order = append(order, "a")
		// Lands inside the window: must run in the same RunBefore call.
		k.MustSchedule(time.Millisecond, func() { order = append(order, "b") })
		// Lands on the boundary: must not.
		k.MustSchedule(9*time.Millisecond, func() { order = append(order, "c") })
	})
	k.RunBefore(10 * time.Millisecond)
	if got := strings.Join(order, ""); got != "ab" {
		t.Fatalf("ran %q, want \"ab\"", got)
	}
}

func TestAdvanceToParksClockAtBarrier(t *testing.T) {
	k := New(1)
	k.MustSchedule(3*time.Millisecond, func() {})
	k.RunBefore(10 * time.Millisecond)
	if k.Now() != 3*time.Millisecond {
		t.Fatalf("clock at %v after RunBefore, want 3ms", k.Now())
	}
	k.AdvanceTo(10 * time.Millisecond)
	if k.Now() != 10*time.Millisecond {
		t.Fatalf("clock at %v, want parked at the 10ms barrier", k.Now())
	}
	// Moving backwards is a no-op, not a panic.
	k.AdvanceTo(5 * time.Millisecond)
	if k.Now() != 10*time.Millisecond {
		t.Fatalf("AdvanceTo into the past moved the clock to %v", k.Now())
	}
}

func TestAdvanceToPanicsOverPendingEvent(t *testing.T) {
	k := New(1)
	k.MustSchedule(time.Millisecond, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo skipped a pending event without panicking")
		}
	}()
	k.AdvanceTo(time.Second)
}

func TestScheduleAtLandsAtAbsoluteTime(t *testing.T) {
	k := New(1)
	k.MustSchedule(5*time.Millisecond, func() {})
	k.RunBefore(6 * time.Millisecond) // clock now at 5ms
	var at time.Duration
	if _, err := k.ScheduleAt(8*time.Millisecond, func() { at = k.Now() }); err != nil {
		t.Fatal(err)
	}
	k.RunBefore(time.Second)
	if at != 8*time.Millisecond {
		t.Fatalf("event ran at %v, want the absolute 8ms", at)
	}
	// Scheduling before the current clock is an error, not a silent
	// reorder.
	if _, err := k.ScheduleAt(time.Millisecond, func() {}); err == nil {
		t.Fatal("ScheduleAt in the past accepted")
	}
	// Scheduling exactly at the clock is allowed (a frame can end on a
	// barrier).
	ran := false
	if _, err := k.ScheduleAt(k.Now(), func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	k.RunBefore(time.Second)
	if !ran {
		t.Fatal("event at the current instant never ran")
	}
}

func TestNextEventAtIsNonDestructive(t *testing.T) {
	k := New(1)
	if _, ok := k.NextEventAt(); ok {
		t.Fatal("empty kernel reports a pending event")
	}
	k.MustSchedule(7*time.Millisecond, func() {})
	for i := 0; i < 3; i++ {
		if at, ok := k.NextEventAt(); !ok || at != 7*time.Millisecond {
			t.Fatalf("peek %d: at=%v ok=%v, want 7ms", i, at, ok)
		}
	}
	if k.Pending() != 1 {
		t.Fatalf("peeking consumed events: %d pending", k.Pending())
	}
	// A cancelled head is reaped, not reported.
	tm := k.MustSchedule(time.Millisecond, func() {})
	tm.Cancel()
	if at, ok := k.NextEventAt(); !ok || at != 7*time.Millisecond {
		t.Fatalf("peek past cancelled head: at=%v ok=%v, want 7ms", at, ok)
	}
}

func TestNewSizedSchedulingMatchesNew(t *testing.T) {
	trace := func(k *Kernel) []int {
		var got []int
		for i := 0; i < 500; i++ {
			i := i
			k.MustSchedule(time.Duration(k.Rand().Intn(50))*time.Millisecond, func() {
				got = append(got, i)
			})
		}
		k.Run(time.Second)
		return got
	}
	a := trace(New(99))
	b := trace(NewSized(99, 2048))
	if len(a) != len(b) {
		t.Fatalf("executed %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("execution order diverges at %d: %d vs %d (capacity changed scheduling)", i, a[i], b[i])
		}
	}
}
