// Package engine is the execution layer between one experiment and the
// simulation substrate. It offers two strategies over the same node,
// radio, and kernel code: the sequential strategy (one kernel drives
// everything, exactly the behavior the golden hashes pin down) and a
// sharded strategy that spatially partitions the deployment into K
// shards — each owning a kernel, a radio shard over the shared channel
// geometry, and its nodes — and advances them in conservative lockstep
// windows.
//
// The window length is the minimum cross-shard interaction latency: the
// airtime of the smallest possible frame. A frame transmitted in one
// window cannot end, and therefore cannot be delivered or finish
// corrupting anyone, before the next barrier; so shards run a window
// completely independently and exchange the boundary-crossing frames
// (radio.Ghost records) at the barrier. Outboxes are merged by
// (start, source, sequence) — a pure function of simulation state —
// never by goroutine arrival order, which is what makes a sharded run a
// deterministic function of (seed, shard count) even under -race.
//
// What sharding approximates (documented in DESIGN.md §4f): carrier
// sense and collisions across a shard boundary take effect at the next
// barrier rather than instantly (at most one window late, the window
// being one minimal frame airtime), and per-delivery random draws come
// from the owning shard's RNG stream rather than the single global one,
// so a sharded run is statistically — not bitwise — equivalent to the
// sequential run of the same seed.
package engine

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"mnp/internal/node"
	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/sim"
)

// Shard is one partition of the deployment: a kernel, a radio shard
// over the shared geometry, and the IDs of the nodes it owns.
type Shard struct {
	Kernel *sim.Kernel
	Medium *radio.Medium
	Owned  []packet.NodeID
}

// Config parameterizes the sharded engine.
type Config struct {
	// Window is the lockstep window length; use ConservativeWindow.
	// It must not exceed the minimum frame airtime or cross-shard
	// frames could be due before the barrier that carries them.
	Window time.Duration
	// Workers selects the execution mode: <= 1 runs the shards inline
	// on the calling goroutine (same results, no goroutines — the right
	// mode on a single-CPU host); anything larger runs one goroutine
	// per shard. 0 picks inline when the process has one CPU.
	Workers int
}

// ConservativeWindow returns the largest safe lockstep window for a
// channel: the airtime of a minimum-size frame, the soonest any
// transmission can complete and so the soonest one shard's frame can
// affect another shard's state.
func ConservativeWindow(geo *radio.Geometry) time.Duration {
	return geo.Airtime(packet.FrameOverhead)
}

type globalEvent struct {
	at  time.Duration
	seq int
	fn  func()
}

// Engine drives K shards in lockstep windows.
type Engine struct {
	shards  []*Shard
	window  time.Duration
	workers int

	barrier time.Duration // time of the last completed barrier
	globals []globalEvent // pending, sorted by (at, seq)
	gseq    int

	obs     node.Observer // replayed global observer, nil when unused
	tap     radio.Tap     // replayed global transmission tap
	buffers []*Buffer

	// replayNow is what Now returns: the current event's original time
	// while replaying buffered observations, the barrier otherwise.
	replayNow time.Duration

	// cmd/done carry the per-window barrier protocol to the shard
	// goroutines; both are nil in inline mode.
	cmd  []chan time.Duration
	done chan struct{}
}

// New builds an engine over the given shards. Shards must own disjoint
// node sets covering the deployment; the caller (experiment.Build)
// constructs them from Partition.
func New(cfg Config, shards []*Shard) (*Engine, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("engine: no shards")
	}
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("engine: window %v must be positive", cfg.Window)
	}
	for i, sh := range shards {
		if sh == nil || sh.Kernel == nil || sh.Medium == nil {
			return nil, fmt.Errorf("engine: shard %d incomplete", i)
		}
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	e := &Engine{
		shards:  shards,
		window:  cfg.Window,
		workers: workers,
		buffers: make([]*Buffer, len(shards)),
	}
	for i := range e.buffers {
		e.buffers[i] = &Buffer{now: shards[i].Kernel.Now}
	}
	return e, nil
}

// Shards returns the engine's shards (read-only; useful to tests and
// fault wiring).
func (e *Engine) Shards() []*Shard { return e.shards }

// Window returns the lockstep window length.
func (e *Engine) Window() time.Duration { return e.window }

// Now is the engine's observation clock: during barrier replay it reads
// the original time of the event being replayed, otherwise the current
// barrier. Wire it wherever a sequential run would use Kernel.Now for
// timestamping (telemetry, invariant checkers, trace logs).
func (e *Engine) Now() time.Duration { return e.replayNow }

// SetObserver installs the global observer fed by barrier replay. Per
// -shard observations are buffered with their original timestamps and
// replayed at each barrier in (time, node, sequence) order, so a
// single-instance observer (a trace log, a telemetry recorder, an
// invariant checker) sees one globally ordered stream exactly as it
// would in a sequential run.
func (e *Engine) SetObserver(obs node.Observer) { e.obs = obs }

// SetTap installs the global transmission tap, replayed like the
// observer stream (invariant checkers consume decoded packets).
func (e *Engine) SetTap(t radio.Tap) { e.tap = t }

// ShardObserver returns the buffering observer for shard i; experiment
// wiring appends it to the shard's observer chain when a global
// observer or tap is installed.
func (e *Engine) ShardObserver(i int) *Buffer { return e.buffers[i] }

// At schedules fn to run at the first barrier not earlier than t, with
// every shard quiesced and advanced to the barrier. Fault plans use it
// for whole-network actions (crashes, reboots, random kills): the
// callback may touch any shard's kernel, medium, or nodes. Quantizing
// to barriers delays an action by less than one window.
func (e *Engine) At(t time.Duration, fn func()) {
	ev := globalEvent{at: t, seq: e.gseq, fn: fn}
	e.gseq++
	i := sort.Search(len(e.globals), func(i int) bool {
		g := e.globals[i]
		return g.at > ev.at || (g.at == ev.at && g.seq > ev.seq)
	})
	e.globals = append(e.globals, globalEvent{})
	copy(e.globals[i+1:], e.globals[i:])
	e.globals[i] = ev
}

// RunUntil advances the simulation window by window until pred returns
// true or simulated time passes limit; it reports whether pred was
// satisfied. pred runs at barriers with all shards quiesced. Completion
// is detected up to one window later than in a sequential run, but
// completion *times* are exact (nodes record them on their own shard
// clocks).
func (e *Engine) RunUntil(pred func() bool, limit time.Duration) bool {
	stop := e.startWorkers()
	defer stop()
	// Observations from before the run (node Start at time zero) are
	// already buffered; replay them so pred and observers start from a
	// consistent view.
	e.replayBuffers()
	if pred() {
		return true
	}
	for e.barrier <= limit {
		e.runGlobals()
		next := e.barrier + e.window
		if next > limit {
			// Final, clamped window: run events at limit exactly, to
			// match the sequential kernel's inclusive limit.
			next = limit + 1
		}
		e.advanceShards(next)
		e.exchange()
		e.barrier = next
		e.replayBuffers()
		if pred() {
			return true
		}
		if !e.skipIdle(limit) {
			return false // every queue drained; nothing can ever happen
		}
	}
	return false
}

// runGlobals executes every pending global event due at or before the
// current barrier, in (time, sequence) order, with every shard clock
// advanced to the barrier so callbacks observe a consistent "now".
func (e *Engine) runGlobals() {
	if len(e.globals) == 0 || e.globals[0].at > e.barrier {
		return
	}
	for _, sh := range e.shards {
		sh.Kernel.AdvanceTo(e.barrier)
	}
	for len(e.globals) > 0 && e.globals[0].at <= e.barrier {
		ev := e.globals[0]
		e.globals = e.globals[1:]
		ev.fn()
	}
}

// advanceShards runs every shard's kernel up to (exclusive) the next
// barrier and leaves its clock parked exactly at it.
func (e *Engine) advanceShards(next time.Duration) {
	if e.cmd == nil {
		for _, sh := range e.shards {
			sh.Kernel.RunBefore(next)
			sh.Kernel.AdvanceTo(next)
		}
		return
	}
	for _, c := range e.cmd {
		c <- next
	}
	for range e.shards {
		<-e.done
	}
}

// exchange moves boundary-crossing frames between shards: every
// shard's outbox is drained, the union is ordered by (start, source,
// sequence), and each ghost is offered to every other shard (the
// medium ignores ghosts inaudible to its nodes). Insertion order is a
// pure function of simulation state, so two runs — or the same run
// with a different worker count — exchange identically.
func (e *Engine) exchange() {
	type routed struct {
		g    radio.Ghost
		from int
	}
	var all []routed
	for i, sh := range e.shards {
		for _, g := range sh.Medium.TakeOutbox() {
			all = append(all, routed{g: g, from: i})
		}
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(a, b int) bool {
		ga, gb := all[a].g, all[b].g
		if ga.Start != gb.Start {
			return ga.Start < gb.Start
		}
		if ga.Src != gb.Src {
			return ga.Src < gb.Src
		}
		return ga.Seq < gb.Seq
	})
	for _, r := range all {
		for j, sh := range e.shards {
			if j == r.from {
				continue
			}
			if err := sh.Medium.InsertGhost(r.g); err != nil {
				panic(fmt.Sprintf("engine: ghost exchange: %v", err))
			}
		}
	}
}

// skipIdle fast-forwards over empty windows: when the earliest pending
// event (any shard's queue, or a global) is more than a window away,
// the intervening barriers are no-ops — no frames can be in flight
// (their finish events would be pending) — so the barrier jumps to the
// window containing that event. Returns false when nothing is pending
// anywhere, i.e. the simulation is over.
func (e *Engine) skipIdle(limit time.Duration) bool {
	earliest := time.Duration(-1)
	for _, sh := range e.shards {
		if at, ok := sh.Kernel.NextEventAt(); ok && (earliest < 0 || at < earliest) {
			earliest = at
		}
	}
	if len(e.globals) > 0 && (earliest < 0 || e.globals[0].at < earliest) {
		earliest = e.globals[0].at
	}
	if earliest < 0 {
		return false
	}
	if gap := earliest - e.barrier; gap > e.window {
		e.barrier += e.window * (gap / e.window)
	}
	return true
}

// replayBuffers merges every shard's buffered observations by
// (time, node, local sequence) and replays them into the global
// observer and tap, substituting each event's original time into the
// engine clock. With no global observer installed the buffers stay
// empty and this is free.
func (e *Engine) replayBuffers() {
	defer func() { e.replayNow = e.barrier }()
	if e.obs == nil && e.tap == nil {
		return
	}
	cursors := make([]int, len(e.buffers))
	for {
		best := -1
		for s, b := range e.buffers {
			if cursors[s] >= len(b.recs) {
				continue
			}
			if best < 0 || b.recs[cursors[s]].less(&e.buffers[best].recs[cursors[best]]) {
				best = s
			}
		}
		if best < 0 {
			break
		}
		rec := &e.buffers[best].recs[cursors[best]]
		cursors[best]++
		e.replayNow = rec.at
		rec.deliver(e.obs, e.tap)
	}
	for _, b := range e.buffers {
		b.recs = b.recs[:0]
	}
}

// --- worker machinery ---

func (e *Engine) startWorkers() (stop func()) {
	if e.workers <= 1 || len(e.shards) == 1 {
		return func() {}
	}
	e.cmd = make([]chan time.Duration, len(e.shards))
	e.done = make(chan struct{}, len(e.shards))
	for i := range e.shards {
		c := make(chan time.Duration)
		e.cmd[i] = c
		go func(sh *Shard) {
			for next := range c {
				sh.Kernel.RunBefore(next)
				sh.Kernel.AdvanceTo(next)
				e.done <- struct{}{}
			}
		}(e.shards[i])
	}
	return func() {
		for _, c := range e.cmd {
			close(c)
		}
		e.cmd, e.done = nil, nil
	}
}
