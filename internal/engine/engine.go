// Package engine is the execution layer between one experiment and the
// simulation substrate. It offers two strategies over the same node,
// radio, and kernel code: the sequential strategy (one kernel drives
// everything, exactly the behavior the golden hashes pin down) and a
// sharded strategy that spatially partitions the deployment into K
// shards — each owning a kernel, a radio shard over the shared channel
// geometry, and its nodes — and advances them in conservative lockstep
// windows.
//
// The window length is the minimum cross-shard interaction latency: the
// airtime of the smallest possible frame. A frame transmitted in one
// window cannot end, and therefore cannot be delivered or finish
// corrupting anyone, before the next barrier; so shards run a window
// completely independently and exchange the boundary-crossing frames
// (radio.Ghost records) at the barrier. Outboxes are merged by
// (start, source, sequence) — a pure function of simulation state —
// never by goroutine arrival order, which is what makes a sharded run a
// deterministic function of (seed, shard count) even under -race.
//
// What sharding approximates (documented in DESIGN.md §4f): carrier
// sense and collisions across a shard boundary take effect at the next
// barrier rather than instantly (at most one window late, the window
// being one minimal frame airtime), and per-delivery random draws come
// from the owning shard's RNG stream rather than the single global one,
// so a sharded run is statistically — not bitwise — equivalent to the
// sequential run of the same seed.
package engine

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"mnp/internal/checkpoint"
	"mnp/internal/node"
	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/sim"
)

// Shard is one partition cell of the deployment — since PR 7 a *tile*:
// a kernel, a radio shard over the shared geometry, and the IDs of the
// nodes it owns. All simulation state lives in the tile; the executors
// that advance tiles each window carry none, which is what lets the
// repartitioner migrate a tile between executors without touching
// results.
type Shard struct {
	Kernel *sim.Kernel
	Medium *radio.Medium
	Owned  []packet.NodeID
	// Bounds, when non-nil, is the bounding box around the owned
	// nodes' positions. The engine uses it to skip offering a ghost
	// frame to a tile entirely out of the sender's radio range — safe
	// because every potential receiver in the tile lies inside the box.
	// Nil disables the prefilter (the ghost is offered everywhere).
	Bounds *Rect

	// Roots are additional checkpoint roots for optimistic execution:
	// every object graph holding mutable per-tile simulation state that
	// is not reachable from Kernel or Medium (the tile's nodes, fault
	// RNGs hidden in closures). Ignored in conservative mode.
	Roots []any

	// Journals are per-tile components that implement their own
	// bounded-journal checkpoint instead of being deep-copied (metrics
	// collectors, per-node EEPROM stores): Begin is called at each
	// speculation boundary, then Commit or Rollback. Ignored in
	// conservative mode.
	Journals []Journaled
}

// Journaled is a component with a bounded-journal checkpoint: Begin
// arms an undo log, Rollback rewinds to the Begin point, Commit keeps
// the changes and discards the log. eeprom.Store and metrics.Collector
// satisfy it structurally.
type Journaled interface {
	Begin()
	Commit()
	Rollback()
}

// Config parameterizes the sharded engine.
type Config struct {
	// Window is the lockstep window length; use ConservativeWindow.
	// It must not exceed the minimum frame airtime or cross-shard
	// frames could be due before the barrier that carries them.
	Window time.Duration
	// Workers selects the execution mode: <= 1 runs the tiles inline
	// on the calling goroutine (same results, no goroutines — the right
	// mode on a single-CPU host); anything larger runs one goroutine
	// per executor. 0 picks inline when the process has one CPU.
	Workers int
	// Shards is the number of logical executors the tiles are assigned
	// to. 0 defaults to one executor per tile (the PR 4 strip engine's
	// shape). Executors are a scheduling concept only: results are
	// independent of the executor count, the tile→executor assignment,
	// and hence of anything the repartitioner does.
	Shards int
	// Repartition, when non-nil, enables the adaptive repartitioner:
	// at the end of every Every-window period the engine compares
	// per-executor loads (tile kernel events + frame deliveries, both
	// deterministic) and re-packs tiles onto executors when the
	// max/mean skew exceeds Threshold. Migration happens only at
	// barriers and moves no simulation state.
	Repartition *Repartition
	// OnLoad, when non-nil, receives a load report at the end of every
	// report period (Repartition.Every windows, or every 32 when the
	// repartitioner is off). Reports include wall-clock barrier wait
	// per executor; the repartitioner itself never reads wall time.
	OnLoad func(LoadReport)
	// Optimistic enables speculative window execution: executors run up
	// to Lookahead windows past the conservative bound, checkpoint at
	// speculation boundaries, and roll back to the last ghost-free
	// barrier when a boundary-crossing frame invalidates the
	// speculation. Results are byte-identical to conservative mode
	// (DESIGN.md §4l). Requires the caller to populate Shard.Roots and
	// Shard.Journals with all per-tile mutable state.
	Optimistic bool
	// Lookahead is the maximum speculation depth in windows; 0 defaults
	// to 8. Values below 2 are rejected (1 is conservative lockstep).
	Lookahead int
}

// Repartition tunes the adaptive tile repartitioner.
type Repartition struct {
	// Every is the decision period in windows; 0 defaults to 32.
	Every int
	// Threshold is the max/mean executor-load ratio above which the
	// engine re-packs tiles; 0 defaults to 1.25. Values at or below 1
	// re-pack whenever any imbalance exists.
	Threshold float64
}

const (
	defaultRepartitionEvery     = 32
	defaultRepartitionThreshold = 1.25
)

// ShardLoad is one executor's share of a load report period.
type ShardLoad struct {
	Shard     int   // executor index
	Tiles     int   // tiles currently assigned to it
	Events    int64 // kernel events executed this period (deterministic)
	Delivered int64 // frames delivered to its nodes this period (deterministic)
	WaitNs    int64 // wall-clock time spent waiting at barriers (diagnostic only)
}

// LoadReport is the per-period load summary handed to Config.OnLoad.
type LoadReport struct {
	Window     int           // windows completed at the end of the period
	Barrier    time.Duration // simulated time of the closing barrier
	Shards     []ShardLoad   // one entry per executor
	Migrations int           // tiles migrated at this barrier
}

// Stats are cumulative engine counters. Every field is deterministic:
// equal for equal (seed, tile grid, executor count, repartitioner
// config), independent of worker count.
type Stats struct {
	Windows        int64 // lockstep windows executed (idle skips excluded)
	GhostsExported int64 // boundary frames drained from tile outboxes
	GhostsOffered  int64 // ghost insertions attempted after bounds routing
	Migrations     int64 // tiles moved between executors
	Repartitions   int64 // barriers at which at least one tile moved

	// Optimistic-mode counters (all zero in conservative mode). These
	// too are deterministic for a fixed (seed, tile grid, lookahead),
	// independent of worker count.
	SpecRounds     int64 // speculation rounds entered
	SpecWindows    int64 // windows entered speculatively
	SpecCommitted  int64 // speculated windows committed
	SpecRolledBack int64 // speculated windows rolled back and replayed
	Rollbacks      int64 // rounds that experienced a rollback
}

// ConservativeWindow returns the largest safe lockstep window for a
// channel: the airtime of a minimum-size frame, the soonest any
// transmission can complete and so the soonest one shard's frame can
// affect another shard's state.
func ConservativeWindow(geo *radio.Geometry) time.Duration {
	return geo.Airtime(packet.FrameOverhead)
}

type globalEvent struct {
	at  time.Duration
	seq int
	fn  func()
}

// Engine drives a set of tiles in lockstep windows, scheduled onto a
// fixed number of logical executors.
type Engine struct {
	shards  []*Shard // the tiles; "shard" kept for API continuity
	window  time.Duration
	workers int

	barrier time.Duration // time of the last completed barrier
	globals []globalEvent // pending, sorted by (at, seq)
	gseq    int

	obs     node.Observer // replayed global observer, nil when unused
	tap     radio.Tap     // replayed global transmission tap
	buffers []*Buffer

	// replayNow is what Now returns: the current event's original time
	// while replaying buffered observations, the barrier otherwise.
	replayNow time.Duration

	// nExec logical executors advance the tiles; asn[tile] is the
	// owning executor. asn is only ever written at barriers (with
	// worker goroutines parked on their command channels), so executor
	// goroutines read it race-free.
	nExec int
	asn   []int

	rep    *Repartition // resolved (defaults filled), nil when off
	onLoad func(LoadReport)
	every  int // report/decision period in windows

	// Per-tile load accumulators for the current period, plus the
	// delivery counter watermark from the previous period.
	tileEvents    []int64
	tileDelivered []int64
	lastDelivered []uint64
	execWaitNs    []int64         // per-executor barrier wait this period
	execElapsed   []time.Duration // scratch: per-executor window wall time
	periodWindows int

	stats Stats

	// cmd/done carry the per-window barrier protocol to the executor
	// goroutines; both are nil in inline mode.
	cmd  []chan execCmd
	done chan execDone

	// Optimistic-mode state (see optimistic.go). Per-tile slices are
	// written only by the tile's owning executor between barriers and
	// read only at barriers, like tileEvents.
	optimistic bool
	lookahead  int
	coolOff    int    // rounds to run conservatively after a wasted round
	onRollback func() // harness hook fired after every rollback

	ckCfg    *checkpoint.Config
	ckCtx    []*checkpoint.Context
	ckRoots  [][]any
	ckSnap   []*checkpoint.Snapshot
	ckParked []bool // tile had no events before the horizon; not checkpointed
	ckBufLen []int
	ckBufSeq []uint64
	specN    []int64 // events executed by the tile in the current round
}

// execOp is the per-round command an executor runs against each of its
// tiles.
type execOp uint8

const (
	opRun       execOp = iota // conservative window: run to the barrier
	opSpeculate               // checkpoint, then run to the horizon
	opRollback                // restore, then replay to the commit barrier
)

type execCmd struct {
	op execOp
	to time.Duration
}

type execDone struct {
	exec    int
	elapsed time.Duration
}

// New builds an engine over the given shards. Shards must own disjoint
// node sets covering the deployment; the caller (experiment.Build)
// constructs them from Partition.
func New(cfg Config, shards []*Shard) (*Engine, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("engine: no shards")
	}
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("engine: window %v must be positive", cfg.Window)
	}
	for i, sh := range shards {
		if sh == nil || sh.Kernel == nil || sh.Medium == nil {
			return nil, fmt.Errorf("engine: shard %d incomplete", i)
		}
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	nExec := cfg.Shards
	if nExec == 0 {
		nExec = len(shards)
	}
	if nExec < 1 || nExec > len(shards) {
		return nil, fmt.Errorf("engine: executor count %d outside [1, %d]", nExec, len(shards))
	}
	e := &Engine{
		shards:        shards,
		window:        cfg.Window,
		workers:       workers,
		buffers:       make([]*Buffer, len(shards)),
		nExec:         nExec,
		asn:           make([]int, len(shards)),
		onLoad:        cfg.OnLoad,
		every:         defaultRepartitionEvery,
		tileEvents:    make([]int64, len(shards)),
		tileDelivered: make([]int64, len(shards)),
		lastDelivered: make([]uint64, len(shards)),
		execWaitNs:    make([]int64, nExec),
		execElapsed:   make([]time.Duration, nExec),
	}
	// Initial assignment: contiguous tile blocks per executor. With one
	// tile per executor (the legacy strip shape) this is the identity.
	for ti := range e.asn {
		e.asn[ti] = ti * nExec / len(shards)
	}
	if cfg.Repartition != nil {
		rep := *cfg.Repartition
		if rep.Every <= 0 {
			rep.Every = defaultRepartitionEvery
		}
		if rep.Threshold == 0 {
			rep.Threshold = defaultRepartitionThreshold
		}
		e.rep = &rep
		e.every = rep.Every
	}
	for i := range e.buffers {
		e.buffers[i] = &Buffer{now: shards[i].Kernel.Now}
	}
	if cfg.Optimistic {
		la := cfg.Lookahead
		if la == 0 {
			la = defaultLookahead
		}
		if la < 2 {
			return nil, fmt.Errorf("engine: lookahead %d must be at least 2 (1 is conservative lockstep)", la)
		}
		e.optimistic = true
		e.lookahead = la
		n := len(shards)
		e.ckCtx = make([]*checkpoint.Context, n)
		e.ckRoots = make([][]any, n)
		e.ckSnap = make([]*checkpoint.Snapshot, n)
		e.ckParked = make([]bool, n)
		e.ckBufLen = make([]int, n)
		e.ckBufSeq = make([]uint64, n)
		e.specN = make([]int64, n)
	} else if cfg.Lookahead != 0 {
		return nil, fmt.Errorf("engine: lookahead set without optimistic mode")
	}
	return e, nil
}

// Stats returns the engine's cumulative counters.
func (e *Engine) Stats() Stats { return e.stats }

// Assignment returns a copy of the current tile→executor assignment.
func (e *Engine) Assignment() []int {
	return append([]int(nil), e.asn...)
}

// Executors returns the number of logical executors.
func (e *Engine) Executors() int { return e.nExec }

// Shards returns the engine's shards (read-only; useful to tests and
// fault wiring).
func (e *Engine) Shards() []*Shard { return e.shards }

// Window returns the lockstep window length.
func (e *Engine) Window() time.Duration { return e.window }

// Now is the engine's observation clock: during barrier replay it reads
// the original time of the event being replayed, otherwise the current
// barrier. Wire it wherever a sequential run would use Kernel.Now for
// timestamping (telemetry, invariant checkers, trace logs).
func (e *Engine) Now() time.Duration { return e.replayNow }

// SetObserver installs the global observer fed by barrier replay. Per
// -shard observations are buffered with their original timestamps and
// replayed at each barrier in (time, node, sequence) order, so a
// single-instance observer (a trace log, a telemetry recorder, an
// invariant checker) sees one globally ordered stream exactly as it
// would in a sequential run.
func (e *Engine) SetObserver(obs node.Observer) { e.obs = obs }

// SetTap installs the global transmission tap, replayed like the
// observer stream (invariant checkers consume decoded packets).
func (e *Engine) SetTap(t radio.Tap) { e.tap = t }

// SetOnRollback installs a hook fired on the engine goroutine after
// every speculation rollback, with all tiles quiesced at the rolled-
// back-to barrier. The harness uses it to rewind cross-tile derived
// state living outside per-tile checkpoints (the network's monotone
// completion cursor).
func (e *Engine) SetOnRollback(fn func()) { e.onRollback = fn }

// ShardObserver returns the buffering observer for shard i; experiment
// wiring appends it to the shard's observer chain when a global
// observer or tap is installed.
func (e *Engine) ShardObserver(i int) *Buffer { return e.buffers[i] }

// At schedules fn to run at the first barrier not earlier than t, with
// every shard quiesced and advanced to the barrier. Fault plans use it
// for whole-network actions (crashes, reboots, random kills): the
// callback may touch any shard's kernel, medium, or nodes. Quantizing
// to barriers delays an action by less than one window.
func (e *Engine) At(t time.Duration, fn func()) {
	ev := globalEvent{at: t, seq: e.gseq, fn: fn}
	e.gseq++
	i := sort.Search(len(e.globals), func(i int) bool {
		g := e.globals[i]
		return g.at > ev.at || (g.at == ev.at && g.seq > ev.seq)
	})
	e.globals = append(e.globals, globalEvent{})
	copy(e.globals[i+1:], e.globals[i:])
	e.globals[i] = ev
}

// RunUntil advances the simulation window by window until pred returns
// true or simulated time passes limit; it reports whether pred was
// satisfied. pred runs at barriers with all shards quiesced. Completion
// is detected up to one window later than in a sequential run, but
// completion *times* are exact (nodes record them on their own shard
// clocks).
func (e *Engine) RunUntil(pred func() bool, limit time.Duration) bool {
	stop := e.startWorkers()
	defer stop()
	// Observations from before the run (node Start at time zero) are
	// already buffered; replay them so pred and observers start from a
	// consistent view.
	e.replayBuffers()
	if pred() {
		return true
	}
	for e.barrier <= limit {
		e.runGlobals()
		var done bool
		if e.optimistic {
			done = e.speculate(pred, limit)
		} else {
			done = e.runWindow(pred, limit)
		}
		if done {
			return true
		}
		if !e.skipIdle(limit) {
			return false // every queue drained; nothing can ever happen
		}
	}
	return false
}

// runWindow executes one conservative lockstep window and reports
// whether pred is satisfied at its barrier.
func (e *Engine) runWindow(pred func() bool, limit time.Duration) bool {
	next := e.barrier + e.window
	if next > limit {
		// Final, clamped window: run events at limit exactly, to
		// match the sequential kernel's inclusive limit.
		next = limit + 1
	}
	e.advanceShards(next)
	e.exchange()
	e.barrier = next
	e.endWindow()
	e.replayBuffers()
	return pred()
}

// runGlobals executes every pending global event due at or before the
// current barrier, in (time, sequence) order, with every shard clock
// advanced to the barrier so callbacks observe a consistent "now".
func (e *Engine) runGlobals() {
	if len(e.globals) == 0 || e.globals[0].at > e.barrier {
		return
	}
	for _, sh := range e.shards {
		sh.Kernel.AdvanceTo(e.barrier)
	}
	for len(e.globals) > 0 && e.globals[0].at <= e.barrier {
		ev := e.globals[0]
		e.globals = e.globals[1:]
		ev.fn()
	}
}

// advanceShards runs every tile's kernel up to (exclusive) the next
// barrier and leaves its clock parked exactly at it, accumulating the
// per-tile event counts the repartitioner reads.
func (e *Engine) advanceShards(next time.Duration) {
	e.runRound(execCmd{op: opRun, to: next})
}

// runRound has every executor run one command against each of its
// tiles, inline or via the worker goroutines, and waits for all of
// them — the barrier the whole lockstep design hangs on.
func (e *Engine) runRound(cmd execCmd) {
	if e.cmd == nil {
		for ti := range e.shards {
			e.execTile(cmd.op, ti, cmd.to)
		}
		return
	}
	for _, c := range e.cmd {
		c <- cmd
	}
	var slowest time.Duration
	for i := 0; i < e.nExec; i++ {
		d := <-e.done
		e.execElapsed[d.exec] = d.elapsed
		if d.elapsed > slowest {
			slowest = d.elapsed
		}
	}
	if e.rep != nil || e.onLoad != nil {
		for x, el := range e.execElapsed {
			e.execWaitNs[x] += int64(slowest - el)
		}
	}
}

// execTile runs one command against one tile, on the goroutine of the
// executor that owns it.
func (e *Engine) execTile(op execOp, ti int, to time.Duration) {
	switch op {
	case opRun:
		sh := e.shards[ti]
		n := sh.Kernel.RunBefore(to)
		sh.Kernel.AdvanceTo(to)
		e.tileEvents[ti] += int64(n)
	case opSpeculate:
		e.specTile(ti, to)
	case opRollback:
		e.rollbackTile(ti, to)
	}
}

// exchange moves boundary-crossing frames between tiles: every tile's
// outbox is drained, the union is ordered by (start, source,
// sequence), and each ghost is offered to every other tile whose
// bounding box lies within the sender's radio range (the medium then
// ignores ghosts inaudible to its nodes). Insertion order is a pure
// function of simulation state, so two runs — or the same run with a
// different worker count or tile→executor assignment — exchange
// identically. The bounds prefilter is exact-safe: Rect.Distance
// lower-bounds the sender's distance to every node in the tile, and an
// insertion it skips would have been a no-op (no audible receivers).
func (e *Engine) exchange() {
	type routed struct {
		g    radio.Ghost
		from int
	}
	var all []routed
	for i, sh := range e.shards {
		for _, g := range sh.Medium.TakeOutbox() {
			all = append(all, routed{g: g, from: i})
		}
	}
	if len(all) == 0 {
		return
	}
	e.stats.GhostsExported += int64(len(all))
	sort.Slice(all, func(a, b int) bool {
		ga, gb := all[a].g, all[b].g
		if ga.Start != gb.Start {
			return ga.Start < gb.Start
		}
		if ga.Src != gb.Src {
			return ga.Src < gb.Src
		}
		return ga.Seq < gb.Seq
	})
	for _, r := range all {
		for j, sh := range e.shards {
			if j == r.from {
				continue
			}
			if sh.Bounds != nil && r.g.RangeFt > 0 &&
				sh.Bounds.Distance(r.g.X, r.g.Y) > r.g.RangeFt {
				continue
			}
			e.stats.GhostsOffered++
			if err := sh.Medium.InsertGhost(r.g); err != nil {
				panic(fmt.Sprintf("engine: ghost exchange: %v", err))
			}
		}
	}
}

// endWindow closes a lockstep window: counts it, and at the end of
// each report period gathers per-executor loads, lets the
// repartitioner re-pack tiles, and emits the load report.
func (e *Engine) endWindow() {
	e.stats.Windows++
	if e.rep == nil && e.onLoad == nil {
		return
	}
	e.periodWindows++
	if e.periodWindows < e.every {
		return
	}
	for ti, sh := range e.shards {
		d := sh.Medium.Deliveries()
		e.tileDelivered[ti] = int64(d - e.lastDelivered[ti])
		e.lastDelivered[ti] = d
	}
	migrated := 0
	if e.rep != nil {
		migrated = e.repartition()
	}
	if e.onLoad != nil {
		loads := make([]ShardLoad, e.nExec)
		for x := range loads {
			loads[x].Shard = x
			loads[x].WaitNs = e.execWaitNs[x]
		}
		for ti := range e.shards {
			l := &loads[e.asn[ti]]
			l.Tiles++
			l.Events += e.tileEvents[ti]
			l.Delivered += e.tileDelivered[ti]
		}
		e.onLoad(LoadReport{
			Window:     int(e.stats.Windows),
			Barrier:    e.barrier,
			Shards:     loads,
			Migrations: migrated,
		})
	}
	for ti := range e.tileEvents {
		e.tileEvents[ti] = 0
	}
	for x := range e.execWaitNs {
		e.execWaitNs[x] = 0
	}
	e.periodWindows = 0
}

// repartition re-packs tiles onto executors when the deterministic
// per-executor load skew (max/mean of kernel events + deliveries this
// period) exceeds the threshold. It runs at a barrier with every
// executor goroutine parked, and only rewrites the tile→executor
// assignment — no kernel, medium, node, or RNG state moves — so it
// cannot affect simulation results. Returns the number of tiles moved.
func (e *Engine) repartition() int {
	if e.nExec < 2 {
		return 0
	}
	tload := make([]int64, len(e.shards))
	for ti := range e.shards {
		tload[ti] = e.tileEvents[ti] + e.tileDelivered[ti]
	}
	newAsn, moved := planAssignment(tload, e.asn, e.nExec, e.rep.Threshold)
	if moved == 0 {
		return 0
	}
	copy(e.asn, newAsn)
	e.stats.Migrations += int64(moved)
	e.stats.Repartitions++
	return moved
}

// planAssignment decides the next tile→executor assignment from
// per-tile loads: if the current assignment's max/mean executor load
// exceeds threshold, tiles are greedily re-packed heaviest-first onto
// the least-loaded executor (LPT), ties keeping the current owner to
// minimize churn, then the lowest executor index. Pure function — the
// core the repartitioner's determinism rests on.
func planAssignment(tload []int64, cur []int, nExec int, threshold float64) ([]int, int) {
	var total int64
	eload := make([]int64, nExec)
	for ti, l := range tload {
		eload[cur[ti]] += l
		total += l
	}
	if total == 0 {
		return cur, 0
	}
	var max int64
	for _, l := range eload {
		if l > max {
			max = l
		}
	}
	mean := float64(total) / float64(nExec)
	if float64(max) <= threshold*mean {
		return cur, 0
	}
	order := make([]int, len(tload))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := order[a], order[b]
		if tload[ta] != tload[tb] {
			return tload[ta] > tload[tb]
		}
		return ta < tb
	})
	sums := make([]int64, nExec)
	next := make([]int, len(tload))
	for _, ti := range order {
		best := 0
		for x := 1; x < nExec; x++ {
			if sums[x] < sums[best] {
				best = x
			} else if sums[x] == sums[best] && x == cur[ti] {
				best = x
			}
		}
		next[ti] = best
		sums[best] += tload[ti]
	}
	moved := 0
	for ti := range next {
		if next[ti] != cur[ti] {
			moved++
		}
	}
	return next, moved
}

// skipIdle fast-forwards over empty windows: when the earliest pending
// event (any shard's queue, or a global) is more than a window away,
// the intervening barriers are no-ops — no frames can be in flight
// (their finish events would be pending) — so the barrier jumps to the
// window containing that event. Returns false when nothing is pending
// anywhere, i.e. the simulation is over.
func (e *Engine) skipIdle(limit time.Duration) bool {
	earliest := time.Duration(-1)
	for _, sh := range e.shards {
		if at, ok := sh.Kernel.NextEventAt(); ok && (earliest < 0 || at < earliest) {
			earliest = at
		}
	}
	if len(e.globals) > 0 && (earliest < 0 || e.globals[0].at < earliest) {
		earliest = e.globals[0].at
	}
	if earliest < 0 {
		return false
	}
	if gap := earliest - e.barrier; gap > e.window {
		e.barrier += e.window * (gap / e.window)
	}
	return true
}

// replayBuffers merges every shard's buffered observations by
// (time, node, local sequence) and replays them into the global
// observer and tap, substituting each event's original time into the
// engine clock. With no global observer installed the buffers stay
// empty and this is free.
func (e *Engine) replayBuffers() {
	defer func() { e.replayNow = e.barrier }()
	if e.obs == nil && e.tap == nil {
		return
	}
	cursors := make([]int, len(e.buffers))
	for {
		best := -1
		for s, b := range e.buffers {
			if cursors[s] >= len(b.recs) {
				continue
			}
			if best < 0 || b.recs[cursors[s]].less(&e.buffers[best].recs[cursors[best]]) {
				best = s
			}
		}
		if best < 0 {
			break
		}
		rec := &e.buffers[best].recs[cursors[best]]
		cursors[best]++
		e.replayNow = rec.at
		rec.deliver(e.obs, e.tap)
	}
	for _, b := range e.buffers {
		b.recs = b.recs[:0]
	}
}

// --- worker machinery ---

// startWorkers spawns one goroutine per logical executor. Each window,
// an executor advances exactly the tiles the current assignment gives
// it; the assignment is only rewritten at barriers while every
// executor is parked on its command channel, so the channel send
// establishes the happens-before edge that makes asn reads race-free.
// Per-tile event counters are written only by the owning executor and
// read only at barriers, for the same reason.
func (e *Engine) startWorkers() (stop func()) {
	if e.workers <= 1 || len(e.shards) == 1 || e.nExec == 1 {
		return func() {}
	}
	e.cmd = make([]chan execCmd, e.nExec)
	e.done = make(chan execDone, e.nExec)
	for x := 0; x < e.nExec; x++ {
		c := make(chan execCmd)
		e.cmd[x] = c
		go func(me int) {
			for cmd := range c {
				start := time.Now()
				for ti := range e.shards {
					if e.asn[ti] != me {
						continue
					}
					e.execTile(cmd.op, ti, cmd.to)
				}
				e.done <- execDone{exec: me, elapsed: time.Since(start)}
			}
		}(x)
	}
	return func() {
		for _, c := range e.cmd {
			close(c)
		}
		e.cmd, e.done = nil, nil
	}
}
