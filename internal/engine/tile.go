package engine

import (
	"fmt"
	"math"
	"sort"

	"mnp/internal/packet"
	"mnp/internal/topology"
)

// Grid is the shape of a 2D tile partition: Rows bands along the Y
// axis, each band cut into Cols tiles along the X axis.
type Grid struct {
	Rows, Cols int
}

// Tiles returns the number of tiles in the grid.
func (g Grid) Tiles() int { return g.Rows * g.Cols }

func (g Grid) String() string { return fmt.Sprintf("%dx%d", g.Rows, g.Cols) }

// Rect is an axis-aligned bounding box in layout coordinates (feet).
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Distance returns the Euclidean distance from (x, y) to the nearest
// point of the rectangle, zero when (x, y) lies inside it. It lower
// -bounds the distance from (x, y) to every point within the rectangle,
// which is what makes it safe as a ghost-routing prefilter.
func (r Rect) Distance(x, y float64) float64 {
	dx := math.Max(math.Max(r.MinX-x, 0), x-r.MaxX)
	dy := math.Max(math.Max(r.MinY-y, 0), y-r.MaxY)
	return math.Hypot(dx, dy)
}

// Contains reports whether (x, y) lies inside the rectangle (borders
// inclusive).
func (r Rect) Contains(x, y float64) bool {
	return x >= r.MinX && x <= r.MaxX && y >= r.MinY && y <= r.MaxY
}

// Tile is one cell of a 2D tile partition: its grid coordinates, the
// IDs of the nodes it owns (ascending), and the tight bounding box
// around their positions.
type Tile struct {
	Row, Col int
	Owned    []packet.NodeID
	Bounds   Rect
}

// TilePartition splits a layout into an R×C grid of population
// -balanced tiles by quantile cuts: nodes are sorted by (Y, X, ID) and
// cut into R bands of near-equal count, then each band is sorted by
// (X, Y, ID) and cut into C tiles of near-equal count. Every tile is
// non-empty (the grid must not out-number the nodes), tiles are
// pairwise disjoint, their union covers the deployment, and the result
// is a pure function of (layout, grid) — it does not depend on worker
// count, shard count, or iteration order. Degenerate 1×N and N×1 grids
// reduce to contiguous strips along one axis.
func TilePartition(layout *topology.Layout, g Grid) ([]Tile, error) {
	if layout == nil {
		return nil, fmt.Errorf("engine: nil layout")
	}
	n := layout.N()
	if g.Rows < 1 || g.Cols < 1 {
		return nil, fmt.Errorf("engine: tile grid %s must be at least 1x1", g)
	}
	if g.Tiles() > n {
		return nil, fmt.Errorf("engine: tile grid %s has %d tiles for %d nodes", g, g.Tiles(), n)
	}
	pts := layout.Points()
	ids := make([]packet.NodeID, n)
	for i := range ids {
		ids[i] = packet.NodeID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		pa, pb := pts[ids[a]], pts[ids[b]]
		if pa.Y != pb.Y {
			return pa.Y < pb.Y
		}
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return ids[a] < ids[b]
	})
	tiles := make([]Tile, 0, g.Tiles())
	bandBase, bandExtra := n/g.Rows, n%g.Rows
	at := 0
	for r := 0; r < g.Rows; r++ {
		size := bandBase
		if r < bandExtra {
			size++
		}
		band := append([]packet.NodeID(nil), ids[at:at+size]...)
		at += size
		sort.Slice(band, func(a, b int) bool {
			pa, pb := pts[band[a]], pts[band[b]]
			if pa.X != pb.X {
				return pa.X < pb.X
			}
			if pa.Y != pb.Y {
				return pa.Y < pb.Y
			}
			return band[a] < band[b]
		})
		// n >= Rows*Cols guarantees every band holds at least Cols
		// nodes, so no tile ends up empty.
		colBase, colExtra := size/g.Cols, size%g.Cols
		bat := 0
		for c := 0; c < g.Cols; c++ {
			cs := colBase
			if c < colExtra {
				cs++
			}
			owned := append([]packet.NodeID(nil), band[bat:bat+cs]...)
			bat += cs
			sort.Slice(owned, func(a, b int) bool { return owned[a] < owned[b] })
			tiles = append(tiles, Tile{Row: r, Col: c, Owned: owned, Bounds: boundsOf(pts, owned)})
		}
	}
	return tiles, nil
}

// BoundsOf returns the tight bounding box around a node set's
// positions. It is the box the engine uses to skip offering ghost
// frames to tiles out of radio range.
func BoundsOf(layout *topology.Layout, owned []packet.NodeID) Rect {
	return boundsOf(layout.Points(), owned)
}

func boundsOf(pts []topology.Point, owned []packet.NodeID) Rect {
	r := Rect{MinX: math.Inf(1), MinY: math.Inf(1), MaxX: math.Inf(-1), MaxY: math.Inf(-1)}
	for _, id := range owned {
		p := pts[id]
		r.MinX = math.Min(r.MinX, p.X)
		r.MinY = math.Min(r.MinY, p.Y)
		r.MaxX = math.Max(r.MaxX, p.X)
		r.MaxY = math.Max(r.MaxY, p.Y)
	}
	return r
}

// AutoGrid picks a tile grid for a deployment from its extent, the
// radio range, and the intended worker count. Tiles are kept at least
// one radio range on a side where the extent allows it — thinner tiles
// buy no extra parallelism, only more boundary ghost traffic — and the
// grid aims for about four tiles per worker so the adaptive
// repartitioner has units to migrate. The result is a pure function of
// its inputs.
func AutoGrid(layout *topology.Layout, rangeFt float64, workers int) Grid {
	n := layout.N()
	if n < 1 {
		return Grid{Rows: 1, Cols: 1}
	}
	pts := layout.Points()
	bounds := Rect{MinX: math.Inf(1), MinY: math.Inf(1), MaxX: math.Inf(-1), MaxY: math.Inf(-1)}
	for _, p := range pts {
		bounds.MinX = math.Min(bounds.MinX, p.X)
		bounds.MinY = math.Min(bounds.MinY, p.Y)
		bounds.MaxX = math.Max(bounds.MaxX, p.X)
		bounds.MaxY = math.Max(bounds.MaxY, p.Y)
	}
	extX, extY := bounds.MaxX-bounds.MinX, bounds.MaxY-bounds.MinY
	if workers < 1 {
		workers = 1
	}
	if rangeFt <= 0 {
		rangeFt = 1
	}
	maxCols := int(extX/rangeFt) + 1
	maxRows := int(extY/rangeFt) + 1
	target := 4 * workers
	rows, cols := 1, 1
	for rows*cols < target {
		growCols := extX/float64(cols) >= extY/float64(rows)
		switch {
		case growCols && cols < maxCols:
			cols++
		case rows < maxRows:
			rows++
		case cols < maxCols:
			cols++
		default:
			// Both axes are down to one radio range per tile; splitting
			// further buys no parallelism, only ghost traffic.
			return clampGridToNodes(Grid{Rows: rows, Cols: cols}, n)
		}
	}
	return clampGridToNodes(Grid{Rows: rows, Cols: cols}, n)
}

// clampGridToNodes shrinks a grid until it has no more tiles than
// nodes, so TilePartition never sees an over-fine grid.
func clampGridToNodes(g Grid, n int) Grid {
	for g.Rows*g.Cols > n {
		if g.Cols >= g.Rows && g.Cols > 1 {
			g.Cols--
		} else if g.Rows > 1 {
			g.Rows--
		} else {
			break
		}
	}
	return g
}

// BoundaryNodes returns, in ascending ID order, every node that has at
// least one neighbor within rangeFt owned by a different tile —
// exactly the nodes whose transmissions the engine must export as
// ghost frames. tileOf maps each node ID to its tile index. The
// neighbor enumeration runs on the sparse spatial index (O(n·degree)),
// never the O(n²) distance matrix.
func BoundaryNodes(layout *topology.Layout, tileOf []int, rangeFt float64) ([]packet.NodeID, error) {
	if layout == nil {
		return nil, fmt.Errorf("engine: nil layout")
	}
	n := layout.N()
	if len(tileOf) != n {
		return nil, fmt.Errorf("engine: tile map covers %d of %d nodes", len(tileOf), n)
	}
	if rangeFt <= 0 {
		return nil, fmt.Errorf("engine: radio range %v must be positive", rangeFt)
	}
	ix, err := topology.NewIndex(layout, rangeFt)
	if err != nil {
		return nil, err
	}
	var out, buf []packet.NodeID
	for i := 0; i < n; i++ {
		id := packet.NodeID(i)
		buf = ix.AppendWithin(id, rangeFt, buf[:0])
		for _, nb := range buf {
			if tileOf[nb] != tileOf[i] {
				out = append(out, id)
				break
			}
		}
	}
	return out, nil
}

// TileOf flattens a tile list into an id→tile-index map, the form
// BoundaryNodes and metrics merging consume.
func TileOf(n int, tiles []Tile) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = -1
	}
	for ti, tl := range tiles {
		for _, id := range tl.Owned {
			m[id] = ti
		}
	}
	return m
}
