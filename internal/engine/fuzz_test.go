package engine

import (
	"testing"

	"mnp/internal/packet"
	"mnp/internal/topology"
)

// FuzzTilePartition drives the tile partitioner with arbitrary point
// sets and grid shapes — duplicates, colinear runs, degenerate 1×N and
// N×1 strips — and asserts the structural invariants always hold:
// exactly-one-tile coverage, non-empty tiles, sorted ownership, tight
// bounds, and a boundary set identical to the brute-force reference.
func FuzzTilePartition(f *testing.F) {
	// Seeds: square spread, colinear run (N×1 and 1×N cuts), duplicate
	// points, single node, over-fine grid (must error).
	f.Add([]byte{0, 0, 0, 200, 200, 0, 200, 200, 100, 100, 50, 150}, uint8(2), uint8(2), uint8(40))
	f.Add([]byte{0, 0, 10, 0, 20, 0, 30, 0, 40, 0, 50, 0}, uint8(1), uint8(6), uint8(15))
	f.Add([]byte{0, 0, 0, 10, 0, 20, 0, 30, 0, 40, 0, 50}, uint8(6), uint8(1), uint8(15))
	f.Add([]byte{5, 5, 5, 5, 5, 5, 7, 5}, uint8(2), uint8(1), uint8(4))
	f.Add([]byte{42, 42}, uint8(1), uint8(1), uint8(10))
	f.Add([]byte{0, 0, 9, 9}, uint8(3), uint8(3), uint8(5))
	f.Fuzz(func(t *testing.T, raw []byte, rowsB, colsB, rangeB uint8) {
		if len(raw) < 2 {
			return
		}
		if len(raw) > 200 {
			raw = raw[:200]
		}
		pts := make([]topology.Point, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			// Quarter-foot resolution exercises non-integer coordinates.
			pts = append(pts, topology.Point{X: float64(raw[i]) / 4, Y: float64(raw[i+1]) / 4})
		}
		layout, err := topology.FromPoints("fuzz", pts)
		if err != nil {
			t.Fatal(err)
		}
		n := layout.N()
		g := Grid{Rows: 1 + int(rowsB)%16, Cols: 1 + int(colsB)%16}
		tiles, err := TilePartition(layout, g)
		if g.Tiles() > n {
			if err == nil {
				t.Fatalf("grid %s over %d nodes accepted", g, n)
			}
			return
		}
		if err != nil {
			t.Fatalf("grid %s over %d nodes rejected: %v", g, n, err)
		}
		if len(tiles) != g.Tiles() {
			t.Fatalf("grid %s: %d tiles", g, len(tiles))
		}
		layoutPts := layout.Points()
		seen := make(map[packet.NodeID]bool)
		for ti, tl := range tiles {
			if len(tl.Owned) == 0 {
				t.Fatalf("grid %s: tile %d empty", g, ti)
			}
			for i, id := range tl.Owned {
				if i > 0 && tl.Owned[i-1] >= id {
					t.Fatalf("tile %d Owned not ascending: %v", ti, tl.Owned)
				}
				if seen[id] {
					t.Fatalf("node %v owned twice", id)
				}
				seen[id] = true
				p := layoutPts[id]
				if !tl.Bounds.Contains(p.X, p.Y) {
					t.Fatalf("node %v outside tile %d bounds", id, ti)
				}
			}
		}
		if len(seen) != n {
			t.Fatalf("tiles cover %d of %d nodes", len(seen), n)
		}
		rangeFt := float64(rangeB)/4 + 0.25 // always positive
		tileOf := TileOf(n, tiles)
		got, err := BoundaryNodes(layout, tileOf, rangeFt)
		if err != nil {
			t.Fatal(err)
		}
		want := boundaryWant(layout, tileOf, rangeFt)
		if len(got) != len(want) {
			t.Fatalf("grid %s range %g: boundary %v, brute force %v", g, rangeFt, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("grid %s range %g: boundary %v, brute force %v", g, rangeFt, got, want)
			}
		}
	})
}
