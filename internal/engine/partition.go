package engine

import (
	"fmt"
	"sort"

	"mnp/internal/packet"
	"mnp/internal/topology"
)

// Partition splits a layout into k spatially contiguous shards of
// near-equal size. Nodes are sorted along the axis of larger extent
// (ties broken by the other axis, then by ID) and cut into k
// consecutive strips, so each shard is a slab of the deployment and
// only nodes near the cuts have cross-shard neighbors. The result is a
// pure function of (layout, k).
func Partition(layout *topology.Layout, k int) ([][]packet.NodeID, error) {
	if layout == nil {
		return nil, fmt.Errorf("engine: nil layout")
	}
	n := layout.N()
	if k < 1 || k > n {
		return nil, fmt.Errorf("engine: shard count %d outside [1, %d]", k, n)
	}
	pts := make([]topology.Point, n)
	var minX, maxX, minY, maxY float64
	for i := 0; i < n; i++ {
		p, err := layout.Pos(packet.NodeID(i))
		if err != nil {
			return nil, err
		}
		pts[i] = p
		if i == 0 || p.X < minX {
			minX = p.X
		}
		if i == 0 || p.X > maxX {
			maxX = p.X
		}
		if i == 0 || p.Y < minY {
			minY = p.Y
		}
		if i == 0 || p.Y > maxY {
			maxY = p.Y
		}
	}
	major := func(p topology.Point) (float64, float64) { return p.X, p.Y }
	if maxY-minY > maxX-minX {
		major = func(p topology.Point) (float64, float64) { return p.Y, p.X }
	}
	ids := make([]packet.NodeID, n)
	for i := range ids {
		ids[i] = packet.NodeID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		ma, sa := major(pts[ids[a]])
		mb, sb := major(pts[ids[b]])
		if ma != mb {
			return ma < mb
		}
		if sa != sb {
			return sa < sb
		}
		return ids[a] < ids[b]
	})
	shards := make([][]packet.NodeID, k)
	base, extra := n/k, n%k
	at := 0
	for s := 0; s < k; s++ {
		size := base
		if s < extra {
			size++
		}
		shards[s] = append([]packet.NodeID(nil), ids[at:at+size]...)
		at += size
	}
	return shards, nil
}
