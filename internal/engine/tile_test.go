package engine

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mnp/internal/packet"
	"mnp/internal/topology"
)

// checkTileInvariants asserts the contract TilePartition promises for
// any (layout, grid): exactly g.Tiles() tiles, every node in exactly
// one tile, no empty tile, Owned ascending, and every owned node's
// position inside the tile's bounds. It returns the id→tile map for
// further checks.
func checkTileInvariants(t *testing.T, layout *topology.Layout, g Grid, tiles []Tile) []int {
	t.Helper()
	if len(tiles) != g.Tiles() {
		t.Fatalf("grid %s: got %d tiles, want %d", g, len(tiles), g.Tiles())
	}
	pts := layout.Points()
	seen := make(map[packet.NodeID]int)
	for ti, tl := range tiles {
		if len(tl.Owned) == 0 {
			t.Fatalf("grid %s: tile %d (%d,%d) is empty", g, ti, tl.Row, tl.Col)
		}
		for i, id := range tl.Owned {
			if i > 0 && tl.Owned[i-1] >= id {
				t.Fatalf("grid %s: tile %d Owned not strictly ascending: %v", g, ti, tl.Owned)
			}
			if prev, dup := seen[id]; dup {
				t.Fatalf("grid %s: node %v in tiles %d and %d", g, id, prev, ti)
			}
			seen[id] = ti
			p := pts[id]
			if !tl.Bounds.Contains(p.X, p.Y) {
				t.Fatalf("grid %s: node %v at (%g,%g) outside tile %d bounds %+v",
					g, id, p.X, p.Y, ti, tl.Bounds)
			}
		}
	}
	if len(seen) != layout.N() {
		t.Fatalf("grid %s: tiles cover %d of %d nodes", g, len(seen), layout.N())
	}
	return TileOf(layout.N(), tiles)
}

// Property: across random layouts and grids, TilePartition covers the
// deployment with disjoint non-empty tiles, and its row bands are
// monotone in Y — the maximum Y of band r never exceeds the minimum Y
// of band r+1, because bands are contiguous cuts of the (Y, X, ID)
// sort.
func TestTilePartitionPropertiesRandom(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(150)
		w := 20 + rng.Float64()*400
		h := 20 + rng.Float64()*400
		layout, err := topology.Random(n, w, h, seed)
		if err != nil {
			t.Fatal(err)
		}
		pts := layout.Points()
		for _, g := range []Grid{{1, 1}, {1, 4}, {4, 1}, {2, 2}, {3, 5}, {4, 4}} {
			if g.Tiles() > n {
				continue
			}
			tiles, err := TilePartition(layout, g)
			if err != nil {
				t.Fatalf("seed %d grid %s: %v", seed, g, err)
			}
			checkTileInvariants(t, layout, g, tiles)
			for r := 1; r < g.Rows; r++ {
				prevMax, curMin := math.Inf(-1), math.Inf(1)
				for c := 0; c < g.Cols; c++ {
					for _, id := range tiles[(r-1)*g.Cols+c].Owned {
						prevMax = math.Max(prevMax, pts[id].Y)
					}
					for _, id := range tiles[r*g.Cols+c].Owned {
						curMin = math.Min(curMin, pts[id].Y)
					}
				}
				if prevMax > curMin {
					t.Fatalf("seed %d grid %s: band %d maxY %g > band %d minY %g",
						seed, g, r-1, prevMax, r, curMin)
				}
			}
		}
	}
}

// Tile sizes are balanced quantile cuts: band populations differ by at
// most one, and within a band so do tile populations.
func TestTilePartitionBalanced(t *testing.T) {
	layout, err := topology.Random(101, 300, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := Grid{Rows: 4, Cols: 3}
	tiles, err := TilePartition(layout, g)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < g.Rows; r++ {
		min, max := layout.N(), 0
		for c := 0; c < g.Cols; c++ {
			sz := len(tiles[r*g.Cols+c].Owned)
			if sz < min {
				min = sz
			}
			if sz > max {
				max = sz
			}
		}
		if max-min > 1 {
			t.Fatalf("band %d tile sizes spread %d..%d, want within 1", r, min, max)
		}
	}
}

// TilePartition is a pure function of (layout, grid): two calls agree
// exactly, tiles, order, bounds and all.
func TestTilePartitionDeterministic(t *testing.T) {
	layout, err := topology.Random(60, 200, 150, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := TilePartition(layout, Grid{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := TilePartition(layout, Grid{3, 4})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical TilePartition calls diverged")
	}
}

// Degenerate grids reduce to strips: a 1×C grid cuts along X only (a
// tile's X-range never overlaps a later tile's), an R×1 grid along Y.
func TestTilePartitionStrips(t *testing.T) {
	layout, err := topology.Random(48, 250, 250, 5)
	if err != nil {
		t.Fatal(err)
	}
	pts := layout.Points()
	cols, err := TilePartition(layout, Grid{1, 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(cols); i++ {
		prevMax, curMin := math.Inf(-1), math.Inf(1)
		for _, id := range cols[i-1].Owned {
			prevMax = math.Max(prevMax, pts[id].X)
		}
		for _, id := range cols[i].Owned {
			curMin = math.Min(curMin, pts[id].X)
		}
		if prevMax > curMin {
			t.Fatalf("1x6 strip %d maxX %g > strip %d minX %g", i-1, prevMax, i, curMin)
		}
	}
	rows, err := TilePartition(layout, Grid{6, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		prevMax, curMin := math.Inf(-1), math.Inf(1)
		for _, id := range rows[i-1].Owned {
			prevMax = math.Max(prevMax, pts[id].Y)
		}
		for _, id := range rows[i].Owned {
			curMin = math.Min(curMin, pts[id].Y)
		}
		if prevMax > curMin {
			t.Fatalf("6x1 strip %d maxY %g > strip %d minY %g", i-1, prevMax, i, curMin)
		}
	}
}

func TestTilePartitionErrors(t *testing.T) {
	layout, err := topology.Grid(3, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TilePartition(nil, Grid{1, 1}); err == nil {
		t.Error("nil layout accepted")
	}
	for _, g := range []Grid{{0, 1}, {1, 0}, {-1, 2}} {
		if _, err := TilePartition(layout, g); err == nil {
			t.Errorf("grid %s accepted", g)
		}
	}
	if _, err := TilePartition(layout, Grid{4, 3}); err == nil {
		t.Error("12 tiles over 9 nodes accepted")
	}
	// One node per tile is the legal extreme.
	tiles, err := TilePartition(layout, Grid{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	for ti, tl := range tiles {
		if len(tl.Owned) != 1 {
			t.Fatalf("tile %d owns %d nodes, want exactly 1", ti, len(tl.Owned))
		}
	}
}

// Rect.Distance must lower-bound the distance from the query point to
// every point inside the rectangle — the property that makes it safe
// as a ghost-routing prefilter — and be zero inside.
func TestRectDistance(t *testing.T) {
	r := Rect{MinX: 10, MinY: 20, MaxX: 40, MaxY: 50}
	cases := []struct {
		x, y, want float64
	}{
		{25, 35, 0},  // interior
		{10, 20, 0},  // corner, inclusive
		{40, 35, 0},  // edge
		{0, 35, 10},  // left of the box
		{25, 60, 10}, // above
		{50, 35, 10}, // right
		{4, 12, 10},  // corner: 6-8-10 triangle
	}
	for _, tc := range cases {
		if got := r.Distance(tc.x, tc.y); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Distance(%g,%g) = %g, want %g", tc.x, tc.y, got, tc.want)
		}
		if (tc.want == 0) != r.Contains(tc.x, tc.y) {
			t.Errorf("Contains(%g,%g) = %v disagrees with distance %g",
				tc.x, tc.y, r.Contains(tc.x, tc.y), tc.want)
		}
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		qx, qy := rng.Float64()*100-25, rng.Float64()*100-25
		px := r.MinX + rng.Float64()*(r.MaxX-r.MinX)
		py := r.MinY + rng.Float64()*(r.MaxY-r.MinY)
		d := r.Distance(qx, qy)
		if actual := math.Hypot(qx-px, qy-py); d > actual+1e-9 {
			t.Fatalf("Distance(%g,%g) = %g exceeds distance %g to interior point (%g,%g)",
				qx, qy, d, actual, px, py)
		}
	}
}

// boundaryWant is the O(n²) brute-force reference: a node is a
// boundary node iff Layout.Within finds any in-range neighbor owned by
// a different tile.
func boundaryWant(layout *topology.Layout, tileOf []int, rangeFt float64) []packet.NodeID {
	var out []packet.NodeID
	for i := 0; i < layout.N(); i++ {
		id := packet.NodeID(i)
		for _, nb := range layout.Within(id, rangeFt) {
			if tileOf[nb] != tileOf[i] {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// Property: BoundaryNodes (sparse index) returns exactly the
// brute-force boundary set — same membership, same ascending order —
// across random layouts, grids, and radio ranges.
func TestBoundaryNodesMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		n := 20 + rng.Intn(120)
		layout, err := topology.Random(n, 30+rng.Float64()*300, 30+rng.Float64()*300, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range []Grid{{1, 2}, {2, 2}, {4, 3}} {
			if g.Tiles() > n {
				continue
			}
			tiles, err := TilePartition(layout, g)
			if err != nil {
				t.Fatal(err)
			}
			tileOf := TileOf(n, tiles)
			for _, rangeFt := range []float64{5, 27, 80, 1000} {
				got, err := BoundaryNodes(layout, tileOf, rangeFt)
				if err != nil {
					t.Fatal(err)
				}
				want := boundaryWant(layout, tileOf, rangeFt)
				if len(got) != len(want) {
					t.Fatalf("seed %d grid %s range %g: got %d boundary nodes %v, want %d %v",
						seed, g, rangeFt, len(got), got, len(want), want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d grid %s range %g: boundary[%d] = %v, want %v",
							seed, g, rangeFt, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestBoundaryNodesSingleTileEmpty(t *testing.T) {
	layout, err := topology.Grid(4, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	tileOf := make([]int, layout.N()) // everyone in tile 0
	got, err := BoundaryNodes(layout, tileOf, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("one tile yielded boundary nodes %v", got)
	}
}

func TestBoundaryNodesErrors(t *testing.T) {
	layout, err := topology.Grid(2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BoundaryNodes(nil, nil, 10); err == nil {
		t.Error("nil layout accepted")
	}
	if _, err := BoundaryNodes(layout, make([]int, 3), 10); err == nil {
		t.Error("short tile map accepted")
	}
	if _, err := BoundaryNodes(layout, make([]int, 4), 0); err == nil {
		t.Error("zero range accepted")
	}
}

// AutoGrid is a pure function of (layout, range, workers): it never
// exceeds the node count, never goes below 1×1, scales the tile count
// with the worker count while the extent allows, and respects the
// one-radio-range-per-tile floor on tile width.
func TestAutoGridProperties(t *testing.T) {
	layout, err := topology.Grid(20, 20, 10) // 400 nodes, 190ft square
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, workers := range []int{1, 2, 4, 8} {
		g := AutoGrid(layout, 15, workers)
		if g != AutoGrid(layout, 15, workers) {
			t.Fatalf("AutoGrid not deterministic for workers=%d", workers)
		}
		if g.Rows < 1 || g.Cols < 1 || g.Tiles() > layout.N() {
			t.Fatalf("workers=%d: grid %s invalid for %d nodes", workers, g, layout.N())
		}
		if g.Tiles() < prev {
			t.Fatalf("workers=%d: tile count %d shrank below %d with fewer workers",
				workers, g.Tiles(), prev)
		}
		prev = g.Tiles()
		if _, err := TilePartition(layout, g); err != nil {
			t.Fatalf("workers=%d: AutoGrid output rejected: %v", workers, err)
		}
	}
	// Even absurd worker counts cannot push tiles below one radio range
	// on a side: 190ft / 100ft range caps each axis at 2.
	if g := AutoGrid(layout, 100, 64); g.Rows > 2 || g.Cols > 2 {
		t.Fatalf("range floor ignored: %s for a 190ft extent at 100ft range", g)
	}
}

func TestAutoGridDegenerate(t *testing.T) {
	one, err := topology.FromPoints("one", []topology.Point{{X: 5, Y: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if g := AutoGrid(one, 10, 8); g != (Grid{1, 1}) {
		t.Fatalf("single node: %s, want 1x1", g)
	}
	// Colinear along X: zero Y extent means rows can never split.
	pts := make([]topology.Point, 40)
	for i := range pts {
		pts[i] = topology.Point{X: float64(i) * 10, Y: 3}
	}
	line, err := topology.FromPoints("line", pts)
	if err != nil {
		t.Fatal(err)
	}
	g := AutoGrid(line, 25, 4)
	if g.Rows != 1 {
		t.Fatalf("colinear-x layout produced %s, want a single row", g)
	}
	if _, err := TilePartition(line, g); err != nil {
		t.Fatalf("AutoGrid output rejected: %v", err)
	}
}

// planAssignment unit tests: the pure LPT core the repartitioner's
// determinism rests on.
func TestPlanAssignment(t *testing.T) {
	t.Run("balanced-no-move", func(t *testing.T) {
		next, moved := planAssignment([]int64{10, 10, 10, 10}, []int{0, 1, 2, 3}, 4, 1.25)
		if moved != 0 || !reflect.DeepEqual(next, []int{0, 1, 2, 3}) {
			t.Fatalf("balanced loads moved %d tiles: %v", moved, next)
		}
	})
	t.Run("idle-no-move", func(t *testing.T) {
		if _, moved := planAssignment([]int64{0, 0, 0}, []int{0, 0, 1}, 2, 1.0); moved != 0 {
			t.Fatalf("all-idle period moved %d tiles", moved)
		}
	})
	t.Run("skew-repacks-lpt", func(t *testing.T) {
		// One executor holds everything; LPT must spread the light tiles.
		next, moved := planAssignment([]int64{10, 1, 1, 1}, []int{0, 0, 0, 0}, 2, 1.25)
		want := []int{0, 1, 1, 1}
		if moved != 3 || !reflect.DeepEqual(next, want) {
			t.Fatalf("got %v (%d moved), want %v (3 moved)", next, moved, want)
		}
	})
	t.Run("tie-keeps-current-owner", func(t *testing.T) {
		// Tiles 0 and 1 carry equal load; tile 0's owner (1) must win the
		// empty-executor tie so only tile 1 migrates.
		next, moved := planAssignment([]int64{4, 4, 0, 0}, []int{1, 1, 0, 0}, 2, 1.0)
		if next[0] != 1 {
			t.Fatalf("tile 0 moved off its owner on a tie: %v", next)
		}
		if moved != 1 || next[1] != 0 {
			t.Fatalf("got %v (%d moved), want tile 1 alone moving to executor 0", next, moved)
		}
	})
	t.Run("threshold-gates", func(t *testing.T) {
		// Both tiles on executor 0: max/mean = 2.0 exactly. At threshold
		// 2.0 the skew is tolerated; at 1.25 the light tile migrates.
		loads, cur := []int64{6, 2}, []int{0, 0}
		if _, moved := planAssignment(loads, cur, 2, 2.0); moved != 0 {
			t.Fatal("threshold 2.0 did not gate a 2.0x skew")
		}
		next, moved := planAssignment(loads, cur, 2, 1.25)
		if moved != 1 || next[1] != 1 {
			t.Fatalf("threshold 1.25: got %v (%d moved), want tile 1 on executor 1", next, moved)
		}
	})
	t.Run("deterministic", func(t *testing.T) {
		loads := []int64{9, 7, 7, 3, 1, 1, 0, 5}
		cur := []int{0, 0, 1, 1, 2, 2, 3, 3}
		a, am := planAssignment(loads, cur, 4, 1.1)
		b, bm := planAssignment(loads, cur, 4, 1.1)
		if am != bm || !reflect.DeepEqual(a, b) {
			t.Fatalf("identical inputs diverged: %v vs %v", a, b)
		}
		// The repack must not be worse than the input's balance.
		imbalance := func(asn []int) float64 {
			sums := make([]int64, 4)
			var total, max int64
			for ti, x := range asn {
				sums[x] += loads[ti]
				total += loads[ti]
			}
			for _, s := range sums {
				if s > max {
					max = s
				}
			}
			return float64(max) * 4 / float64(total)
		}
		if imbalance(a) > imbalance(cur) {
			t.Fatalf("repack worsened imbalance: %g -> %g", imbalance(cur), imbalance(a))
		}
	})
}

func TestTileOf(t *testing.T) {
	tiles := []Tile{
		{Owned: []packet.NodeID{0, 3}},
		{Owned: []packet.NodeID{1}},
	}
	got := TileOf(5, tiles)
	want := []int{0, 1, -1, 0, -1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TileOf = %v, want %v", got, want)
	}
}
