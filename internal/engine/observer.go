package engine

import (
	"time"

	"mnp/internal/node"
	"mnp/internal/packet"
	"mnp/internal/radio"
)

// recKind discriminates buffered observation records.
type recKind uint8

const (
	recNodeEvent recKind = iota
	recRadioState
	recStorageOp
	recPacketSent
)

// obsRecord is one buffered observation, stamped with the shard clock
// at capture and a per-buffer sequence number.
type obsRecord struct {
	at   time.Duration
	seq  uint64
	kind recKind
	id   packet.NodeID

	ev node.Event // recNodeEvent

	on bool // recRadioState

	write           bool // recStorageOp
	seg, pkt, bytes int

	p   packet.Packet // recPacketSent
	air time.Duration
}

// less orders records by (time, node, local sequence). Records for one
// node only ever come from one shard, so the per-buffer sequence fully
// orders same-(time, node) pairs and the merge is total and
// deterministic.
func (r *obsRecord) less(o *obsRecord) bool {
	if r.at != o.at {
		return r.at < o.at
	}
	if r.id != o.id {
		return r.id < o.id
	}
	return r.seq < o.seq
}

// deliver replays the record into the global observer and tap.
func (r *obsRecord) deliver(obs node.Observer, tap radio.Tap) {
	switch r.kind {
	case recNodeEvent:
		if obs != nil {
			obs.NodeEvent(r.id, r.at, r.ev)
		}
	case recRadioState:
		if obs != nil {
			obs.RadioState(r.id, r.at, r.on)
		}
	case recStorageOp:
		if obs != nil {
			obs.StorageOp(r.id, r.write, r.seg, r.pkt, r.bytes)
		}
	case recPacketSent:
		if tap != nil {
			tap(r.id, r.p, r.air)
		}
	}
}

// Buffer captures one shard's observations for barrier replay. It
// implements node.Observer, and PacketSent matches radio.Tap. Packets
// captured by the tap are retained until the next barrier; the harness
// treats packets as immutable after Transmit, so retention is safe.
type Buffer struct {
	now  func() time.Duration
	recs []obsRecord
	seq  uint64
}

var _ node.Observer = (*Buffer)(nil)

func (b *Buffer) push(r obsRecord) {
	r.seq = b.seq
	b.seq++
	b.recs = append(b.recs, r)
}

// mark returns the buffer's position for a later rewind. The optimistic
// engine marks at speculation boundaries so records from rolled-back
// windows are never replayed — observers only ever see committed
// history.
func (b *Buffer) mark() (n int, seq uint64) { return len(b.recs), b.seq }

// rewind truncates the buffer back to a mark, restoring the sequence
// counter so a deterministic replay reproduces identical records.
func (b *Buffer) rewind(n int, seq uint64) {
	b.recs = b.recs[:n]
	b.seq = seq
}

// NodeEvent implements node.Observer.
func (b *Buffer) NodeEvent(id packet.NodeID, at time.Duration, ev node.Event) {
	b.push(obsRecord{at: at, kind: recNodeEvent, id: id, ev: ev})
}

// RadioState implements node.Observer.
func (b *Buffer) RadioState(id packet.NodeID, at time.Duration, on bool) {
	b.push(obsRecord{at: at, kind: recRadioState, id: id, on: on})
}

// StorageOp implements node.Observer. The interface carries no
// timestamp, so the shard clock supplies one for merge ordering.
func (b *Buffer) StorageOp(id packet.NodeID, write bool, seg, pkt, bytes int) {
	b.push(obsRecord{at: b.now(), kind: recStorageOp, id: id, write: write, seg: seg, pkt: pkt, bytes: bytes})
}

// PacketSent matches radio.Tap; wire it with Medium.SetTap.
func (b *Buffer) PacketSent(src packet.NodeID, p packet.Packet, air time.Duration) {
	b.push(obsRecord{at: b.now(), kind: recPacketSent, id: src, p: p, air: air})
}
