package engine

import (
	"testing"
	"time"

	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/sim"
	"mnp/internal/topology"
)

func TestPartitionShapes(t *testing.T) {
	layout, err := topology.Grid(5, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := Partition(layout, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("got %d shards, want 4", len(parts))
	}
	// 15 nodes over 4 shards: sizes 4,4,4,3, disjoint, covering all.
	seen := make(map[packet.NodeID]int)
	for i, p := range parts {
		want := 4
		if i == 3 {
			want = 3
		}
		if len(p) != want {
			t.Fatalf("shard %d has %d nodes, want %d", i, len(p), want)
		}
		for _, id := range p {
			if prev, dup := seen[id]; dup {
				t.Fatalf("node %v in shards %d and %d", id, prev, i)
			}
			seen[id] = i
		}
	}
	if len(seen) != layout.N() {
		t.Fatalf("shards cover %d nodes, want %d", len(seen), layout.N())
	}
	// The 5x3 grid is taller than wide, so strips cut across Y: a
	// shard's nodes must span a Y-range disjoint from later shards'.
	maxY := func(p []packet.NodeID) float64 {
		m := -1.0
		for _, id := range p {
			pt, err := layout.Pos(id)
			if err != nil {
				t.Fatal(err)
			}
			if pt.Y > m {
				m = pt.Y
			}
		}
		return m
	}
	minY := func(p []packet.NodeID) float64 {
		m := 1e18
		for _, id := range p {
			pt, _ := layout.Pos(id)
			if pt.Y < m {
				m = pt.Y
			}
		}
		return m
	}
	for i := 1; i < len(parts); i++ {
		if maxY(parts[i-1]) > minY(parts[i]) {
			t.Fatalf("shards %d and %d overlap along the cut axis", i-1, i)
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	layout, _ := topology.Grid(6, 6, 10)
	a, err := Partition(layout, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Partition(layout, 4)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("shard %d sizes differ", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("shard %d diverges at %d: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	layout, _ := topology.Grid(2, 2, 10)
	if _, err := Partition(nil, 2); err == nil {
		t.Error("nil layout accepted")
	}
	if _, err := Partition(layout, 0); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := Partition(layout, 5); err == nil {
		t.Error("more shards than nodes accepted")
	}
	if parts, err := Partition(layout, 4); err != nil || len(parts) != 4 {
		t.Errorf("one node per shard: parts=%d err=%v", len(parts), err)
	}
}

func TestConservativeWindow(t *testing.T) {
	layout, _ := topology.Grid(2, 2, 10)
	geo, err := radio.NewGeometry(layout, radio.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	w := ConservativeWindow(geo)
	if w <= 0 {
		t.Fatalf("window %v not positive", w)
	}
	if w != geo.Airtime(packet.FrameOverhead) {
		t.Fatalf("window %v is not the minimum frame airtime", w)
	}
	// Conservative: no encodable frame can finish inside one window.
	if full := geo.Airtime(packet.FrameOverhead + 1); full <= w {
		t.Fatalf("a larger frame (%v) finishes within the window (%v)", full, w)
	}
}

func TestEngineNewValidation(t *testing.T) {
	layout, _ := topology.Grid(2, 2, 10)
	geo, _ := radio.NewGeometry(layout, radio.DefaultParams(), 1)
	k := sim.New(1)
	m, err := radio.NewShardMedium(k, geo, []packet.NodeID{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	ok := &Shard{Kernel: k, Medium: m, Owned: []packet.NodeID{0, 1, 2, 3}}
	if _, err := New(Config{Window: time.Millisecond}, nil); err == nil {
		t.Error("no shards accepted")
	}
	if _, err := New(Config{Window: 0}, []*Shard{ok}); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := New(Config{Window: time.Millisecond}, []*Shard{{Kernel: k}}); err == nil {
		t.Error("shard without medium accepted")
	}
	if _, err := New(Config{Window: time.Millisecond}, []*Shard{ok}); err != nil {
		t.Errorf("valid engine rejected: %v", err)
	}
}

// TestEngineSkipsIdleWindows pins the fast-forward: with events tens of
// seconds apart and a ~3ms window, stepping barrier by barrier would
// take thousands of iterations; the engine must jump straight to the
// windows containing work, fire global events at their quantized
// barriers, and report run-over when every queue drains.
func TestEngineSkipsIdleWindows(t *testing.T) {
	layout, _ := topology.Grid(2, 2, 10)
	geo, _ := radio.NewGeometry(layout, radio.DefaultParams(), 1)
	parts, _ := Partition(layout, 2)
	shards := make([]*Shard, len(parts))
	for i, owned := range parts {
		k := sim.New(int64(i + 1))
		m, err := radio.NewShardMedium(k, geo, owned)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = &Shard{Kernel: k, Medium: m, Owned: owned}
	}
	e, err := New(Config{Window: ConservativeWindow(geo), Workers: 1}, shards)
	if err != nil {
		t.Fatal(err)
	}
	var fired []string
	shards[0].Kernel.MustSchedule(10*time.Second, func() { fired = append(fired, "k0@10s") })
	shards[1].Kernel.MustSchedule(30*time.Second, func() { fired = append(fired, "k1@30s") })
	e.At(20*time.Second, func() { fired = append(fired, "global@20s") })
	if e.RunUntil(func() bool { return false }, time.Hour) {
		t.Fatal("pred never true, RunUntil reported success")
	}
	want := []string{"k0@10s", "global@20s", "k1@30s"}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	// Global events quantize to a barrier at or after their nominal
	// time, by less than one window.
	for _, sh := range shards {
		if now := sh.Kernel.Now(); now > time.Hour+e.Window() {
			t.Fatalf("shard clock %v ran past the limit", now)
		}
	}
}

// TestEnginePredStopsAtBarrier verifies RunUntil returns true as soon
// as the predicate holds at a barrier, without running to the limit.
func TestEnginePredStopsAtBarrier(t *testing.T) {
	layout, _ := topology.Grid(2, 2, 10)
	geo, _ := radio.NewGeometry(layout, radio.DefaultParams(), 1)
	parts, _ := Partition(layout, 2)
	shards := make([]*Shard, len(parts))
	for i, owned := range parts {
		k := sim.New(int64(i + 1))
		m, _ := radio.NewShardMedium(k, geo, owned)
		shards[i] = &Shard{Kernel: k, Medium: m, Owned: owned}
	}
	e, _ := New(Config{Window: ConservativeWindow(geo), Workers: 1}, shards)
	done := false
	shards[1].Kernel.MustSchedule(5*time.Second, func() { done = true })
	if !e.RunUntil(func() bool { return done }, time.Hour) {
		t.Fatal("predicate satisfied but RunUntil reported failure")
	}
	for _, sh := range shards {
		if now := sh.Kernel.Now(); now > 5*time.Second+e.Window() {
			t.Fatalf("engine overshot: shard clock at %v", now)
		}
	}
}
