package engine

import (
	"time"

	"mnp/internal/checkpoint"
	"mnp/internal/eeprom"
	"mnp/internal/image"
	"mnp/internal/metrics"
	"mnp/internal/radio"
	"mnp/internal/topology"
)

// Optimistic window execution (DESIGN.md §4l). Conservative lockstep
// pays a full barrier every window even when no ghost frame will ever
// cross a tile boundary. In optimistic mode each round the executors
//
//  1. checkpoint their tiles (copy-on-write snapshots plus the
//     bounded journals of the EEPROM stores and metrics collectors),
//  2. run up to Lookahead windows ahead without exchanging,
//  3. peek every outbox to find the earliest window in which a ghost
//     could actually reach another tile (the same Rect.Distance
//     prefilter the exchange uses, so the check is exact-safe), and
//  4. commit through that window — rolling the speculative suffix
//     back and replaying the committed prefix when it is shorter than
//     the horizon.
//
// Equivalence to conservative lockstep rests on one observation: at
// every intermediate barrier inside a committed prefix, conservative
// mode would have exchanged nothing (every ghost transmitted before
// the commit window is, by construction of the commit horizon,
// unreachable — its insertions would all have been skipped by the
// bounds prefilter). Kernel event order, RNG draws, and sequence
// assignment therefore evolve identically, and a single exchange at
// the commit barrier drains and offers exactly the ghosts the
// per-window exchanges would have. Observer buffers are marked at the
// round's base and rewound on rollback, so telemetry, trace, and
// invariant streams carry committed history only.

// defaultLookahead is the speculation depth when Config.Lookahead is 0.
const defaultLookahead = 8

// ensureCheckpoint lazily builds the checkpoint configuration and
// per-tile contexts on the first speculative round — by then the
// harness has populated Shard.Roots (it builds the network after the
// engine).
func (e *Engine) ensureCheckpoint() {
	if e.ckCfg != nil {
		return
	}
	// Skip types are immutable or separately-journaled state the
	// snapshot walker must not follow: geometry, layouts, and program
	// images never change mid-round; collectors and stores implement
	// Journaled; engine buffers are handled by mark/rewind.
	e.ckCfg = checkpoint.NewConfig(
		(*topology.Layout)(nil),
		(*topology.Index)(nil),
		(*radio.Geometry)(nil),
		(*image.Image)(nil),
		(*Buffer)(nil),
		(*metrics.Collector)(nil),
		(*eeprom.Store)(nil),
	)
	for ti, sh := range e.shards {
		e.ckCtx[ti] = e.ckCfg.NewContext()
		roots := make([]any, 0, 2+len(sh.Roots))
		roots = append(roots, sh.Kernel, sh.Medium)
		roots = append(roots, sh.Roots...)
		e.ckRoots[ti] = roots
	}
}

// speculate runs one optimistic round starting at the current barrier
// and reports whether pred is satisfied at the resulting barrier. The
// depth is clamped so the committed horizon can never cross the run
// limit (the final clamped window stays conservative, matching the
// sequential kernel's inclusive limit) or skip past a pending global
// event (globals must fire at exactly the barrier conservative mode
// would fire them at — this also keeps pred monotone within a round,
// since only globals can un-complete a node).
func (e *Engine) speculate(pred func() bool, limit time.Duration) bool {
	if e.coolOff > 0 {
		e.coolOff--
		return e.runWindow(pred, limit)
	}
	w := e.lookahead
	if rem := int((limit - e.barrier) / e.window); rem < w {
		w = rem
	}
	if len(e.globals) > 0 {
		need := int((e.globals[0].at - e.barrier + e.window - 1) / e.window)
		if need < w {
			w = need
		}
	}
	if w < 2 {
		return e.runWindow(pred, limit)
	}
	e.ensureCheckpoint()
	base := e.barrier
	horizon := base + time.Duration(w)*e.window
	e.stats.SpecRounds++
	e.stats.SpecWindows += int64(w)
	e.runRound(execCmd{op: opSpeculate, to: horizon})

	c := e.commitWindows(base, w)
	rolled := false
	if c < w {
		// A reachable ghost was transmitted in window c: windows c+1..w
		// are invalid. Restore every tile and replay the committed
		// prefix deterministically.
		rolled = true
		e.stats.Rollbacks++
		e.stats.SpecRolledBack += int64(w - c)
		e.runRound(execCmd{op: opRollback, to: base + time.Duration(c)*e.window})
		if e.onRollback != nil {
			e.onRollback()
		}
	}

	if pred() {
		// pred may have flipped at an earlier barrier inside the round;
		// conservative mode would have stopped there, with fewer events
		// executed. Rewind the whole round and force the next c windows
		// to run conservatively — the run then stops exactly where
		// lockstep would.
		if !rolled {
			e.stats.Rollbacks++
		}
		e.stats.SpecRolledBack += int64(c)
		e.runRound(execCmd{op: opRollback, to: base})
		if e.onRollback != nil {
			e.onRollback()
		}
		e.endRound(false)
		e.coolOff = c
		return false
	}

	commit := base + time.Duration(c)*e.window
	for ti, sh := range e.shards {
		sh.Kernel.AdvanceTo(commit) // catches up parked tiles; no-op otherwise
		e.tileEvents[ti] += e.specN[ti]
	}
	e.exchange()
	e.stats.SpecCommitted += int64(c)
	e.barrier = commit
	e.endRound(true)
	for i := 0; i < c; i++ {
		e.endWindow()
	}
	e.replayBuffers()
	if c == 1 {
		// The round committed nothing beyond what one conservative
		// window would have: dense cross-tile traffic. Back off
		// deterministically before speculating again.
		e.coolOff = e.lookahead
	}
	return pred()
}

// commitWindows returns the number of speculated windows that can
// commit: the earliest window, over every tile's pending outbox, in
// which a ghost reachable by some other tile was transmitted. Ghosts
// the bounds prefilter would drop everywhere cannot affect any tile
// and never shorten the commit.
func (e *Engine) commitWindows(base time.Duration, w int) int {
	c := w
	for i, sh := range e.shards {
		if e.ckParked[i] {
			continue
		}
		for _, g := range sh.Medium.Outbox() {
			gw := int((g.Start-base)/e.window) + 1
			if gw >= c {
				continue
			}
			if e.ghostReachable(g, i) {
				c = gw
			}
		}
	}
	return c
}

// ghostReachable reports whether any tile other than the source could
// hear the ghost, using exactly the exchange's bounds prefilter — so
// "unreachable" here means the conservative exchange would have
// skipped every insertion.
func (e *Engine) ghostReachable(g radio.Ghost, from int) bool {
	for j, sh := range e.shards {
		if j == from {
			continue
		}
		if sh.Bounds != nil && g.RangeFt > 0 &&
			sh.Bounds.Distance(g.X, g.Y) > g.RangeFt {
			continue
		}
		return true
	}
	return false
}

// specTile checkpoints tile ti and runs it speculatively to the
// horizon, on the owning executor's goroutine.
func (e *Engine) specTile(ti int, horizon time.Duration) {
	sh := e.shards[ti]
	e.ckBufLen[ti], e.ckBufSeq[ti] = e.buffers[ti].mark()
	if at, ok := sh.Kernel.NextEventAt(); !ok || at >= horizon {
		// Parked: no event can run this round, so there is nothing to
		// checkpoint or roll back; the clock catches up at commit.
		e.ckParked[ti] = true
		e.ckSnap[ti] = nil
		e.specN[ti] = 0
		return
	}
	e.ckParked[ti] = false
	for _, j := range sh.Journals {
		j.Begin()
	}
	e.ckSnap[ti] = checkpoint.Capture(e.ckCtx[ti], e.ckRoots[ti]...)
	n := sh.Kernel.RunBefore(horizon)
	sh.Kernel.AdvanceTo(horizon)
	e.specN[ti] = int64(n)
}

// rollbackTile restores tile ti to the round's base and, when the
// commit barrier lies past the base, replays it forward. The replay is
// deterministic and reproduces the speculation's prefix exactly: no
// ghost was inserted at any barrier inside the round, and conservative
// mode would have inserted none either (every pre-commit ghost is
// unreachable by construction of the commit horizon).
func (e *Engine) rollbackTile(ti int, to time.Duration) {
	if e.ckParked[ti] {
		return
	}
	sh := e.shards[ti]
	e.ckSnap[ti].Restore()
	for _, j := range sh.Journals {
		j.Rollback()
	}
	e.buffers[ti].rewind(e.ckBufLen[ti], e.ckBufSeq[ti])
	e.specN[ti] = 0
	if to <= e.barrier {
		return // full rewind to the round's base
	}
	for _, j := range sh.Journals {
		j.Begin()
	}
	n := sh.Kernel.RunBefore(to)
	sh.Kernel.AdvanceTo(to)
	e.specN[ti] = int64(n)
}

// endRound drops the round's snapshots and settles the journals:
// committed rounds keep their journal state, rolled-back-to-base
// rounds already rewound it (Rollback disarms a journal, so the
// guarded Commit below is a no-op there).
func (e *Engine) endRound(commit bool) {
	for ti, sh := range e.shards {
		if e.ckSnap[ti] != nil {
			e.ckSnap[ti] = nil
			if commit {
				for _, j := range sh.Journals {
					j.Commit()
				}
			}
		}
		e.ckParked[ti] = false
	}
}
