package metrics

import (
	"math"
	"testing"
)

func TestImbalance(t *testing.T) {
	cases := []struct {
		name  string
		loads []int64
		want  float64
	}{
		{"empty", nil, 0},
		// All-zero is perfectly balanced, not pathological: the ratio
		// must stay ≥ 1 wherever it is defined so threshold comparisons
		// (im > 1.5 ⇒ repartition) never fire on an idle period.
		{"idle", []int64{0, 0, 0}, 1},
		{"idle-single", []int64{0}, 1},
		{"balanced", []int64{5, 5, 5, 5}, 1},
		{"single", []int64{7}, 1},
		{"one-does-all", []int64{12, 0, 0, 0}, 4},
		{"mild-skew", []int64{6, 2}, 1.5},
	}
	for _, tc := range cases {
		if got := Imbalance(tc.loads); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: Imbalance(%v) = %g, want %g", tc.name, tc.loads, got, tc.want)
		}
	}
}

func TestSummarizeLoads(t *testing.T) {
	s := SummarizeLoads([][]int64{
		{5, 5},        // imbalance 1
		{0, 0},        // idle: excluded
		{6, 2},        // imbalance 1.5
		{12, 0, 0, 0}, // imbalance 4
	})
	if s.Periods != 3 {
		t.Fatalf("Periods = %d, want 3 (the idle row is excluded)", s.Periods)
	}
	if s.Max != 4 {
		t.Fatalf("Max = %g, want 4", s.Max)
	}
	if want := (1 + 1.5 + 4) / 3; math.Abs(s.Mean-want) > 1e-12 {
		t.Fatalf("Mean = %g, want %g", s.Mean, want)
	}
	if z := SummarizeLoads(nil); z != (LoadSummary{}) {
		t.Fatalf("SummarizeLoads(nil) = %+v, want zero", z)
	}
}
