package metrics

// Load-balance statistics for the tiled engine: the per-executor load
// vectors the engine reports each period are summarized here into the
// max/mean imbalance figures the repartitioner acts on and the
// experiment reports record.

// Imbalance returns the max/mean ratio of a per-shard load vector: 1
// for a perfectly balanced period, k when the busiest executor carries
// k times the mean. An idle (all-zero) vector is perfectly balanced by
// definition and yields 1, not 0 — max/mean is a ratio ≥ 1 whenever it
// is defined, and callers compare it against repartition thresholds
// that an artificial 0 would always pass. Only an empty vector (no
// executors) returns 0.
func Imbalance(loads []int64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var total, max int64
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(len(loads))
	return float64(max) / mean
}

// LoadSummary aggregates per-period imbalance over a whole run.
type LoadSummary struct {
	Periods int     // report periods with any load
	Max     float64 // worst single-period imbalance
	Mean    float64 // mean imbalance across loaded periods
}

// SummarizeLoads folds a run's per-period per-shard load vectors into
// one summary. Idle periods (all-zero vectors) are excluded — an empty
// deployment tail would otherwise dilute the skew a reader cares
// about.
func SummarizeLoads(periods [][]int64) LoadSummary {
	var s LoadSummary
	var sum float64
	for _, loads := range periods {
		var total int64
		for _, l := range loads {
			total += l
		}
		if total == 0 {
			continue // idle or empty: no load to summarize
		}
		im := Imbalance(loads)
		s.Periods++
		sum += im
		if im > s.Max {
			s.Max = im
		}
	}
	if s.Periods > 0 {
		s.Mean = sum / float64(s.Periods)
	}
	return s
}
