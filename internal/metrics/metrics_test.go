package metrics

import (
	"testing"
	"time"

	"mnp/internal/energy"
	"mnp/internal/node"
	"mnp/internal/packet"
	"mnp/internal/topology"
)

func newCollector(t *testing.T) (*Collector, *time.Duration) {
	t.Helper()
	l, err := topology.Grid(2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	now := new(time.Duration)
	c, err := NewCollector(Config{
		Layout:            l,
		Airtime:           func(bytes int) time.Duration { return time.Duration(bytes) * time.Millisecond },
		NeighborhoodRange: 15,
	}, func() time.Duration { return *now })
	if err != nil {
		t.Fatal(err)
	}
	return c, now
}

func TestNewCollectorValidation(t *testing.T) {
	l, _ := topology.Grid(1, 2, 10)
	air := func(int) time.Duration { return time.Millisecond }
	clock := func() time.Duration { return 0 }
	if _, err := NewCollector(Config{Airtime: air}, clock); err == nil {
		t.Error("nil layout accepted")
	}
	if _, err := NewCollector(Config{Layout: l}, clock); err == nil {
		t.Error("nil airtime accepted")
	}
	if _, err := NewCollector(Config{Layout: l, Airtime: air}, nil); err == nil {
		t.Error("nil clock accepted")
	}
}

func TestTrafficCounting(t *testing.T) {
	c, now := newCollector(t)
	*now = time.Second
	c.FrameSent(0, packet.KindAdvertise, 16)
	c.FrameSent(0, packet.KindData, 34)
	c.FrameReceived(1, 0, packet.KindAdvertise, 16)
	c.FrameReceived(1, 0, packet.KindData, 34)
	c.FrameCollided(2, 0, packet.KindData)

	if c.TxCount(0) != 2 || c.RxCount(1) != 2 {
		t.Fatalf("tx=%d rx=%d", c.TxCount(0), c.RxCount(1))
	}
	if c.TxByClass(0, packet.ClassAdvertisement) != 1 || c.TxByClass(0, packet.ClassData) != 1 {
		t.Fatal("class counting wrong")
	}
	if c.RxByClass(1, packet.ClassAdvertisement) != 1 || c.RxByClass(1, packet.ClassData) != 1 {
		t.Fatal("rx class counting wrong")
	}
	if c.RxByClass(1, packet.ClassControl) != 0 {
		t.Fatal("phantom rx class count")
	}
	if c.Collisions(2) != 1 {
		t.Fatal("collision not counted")
	}
	at, ok := c.FirstAdvertisementHeard(1)
	if !ok || at != time.Second {
		t.Fatalf("first adv = %v/%v", at, ok)
	}
	if _, ok := c.FirstAdvertisementHeard(2); ok {
		t.Fatal("node 2 claims to have heard an advertisement")
	}
}

func TestWindowCounts(t *testing.T) {
	c, now := newCollector(t)
	*now = 10 * time.Second
	c.FrameSent(0, packet.KindData, 34)
	c.FrameSent(0, packet.KindData, 34)
	*now = 2*time.Minute + time.Second
	c.FrameSent(0, packet.KindData, 34)
	c.FrameSent(0, packet.KindAdvertise, 16)

	data := c.WindowCounts(packet.ClassData)
	if len(data) != 3 || data[0] != 2 || data[1] != 0 || data[2] != 1 {
		t.Fatalf("data windows = %v", data)
	}
	adv := c.WindowCounts(packet.ClassAdvertisement)
	if adv[2] != 1 {
		t.Fatalf("adv windows = %v", adv)
	}
}

func TestActiveRadioTimeClipping(t *testing.T) {
	c, _ := newCollector(t)
	// On at 1s, off at 3s, on at 5s, never off.
	c.RadioState(0, time.Second, true)
	c.RadioState(0, 3*time.Second, false)
	c.RadioState(0, 5*time.Second, true)

	if got := c.ActiveRadioTime(0, 0, 10*time.Second); got != 7*time.Second {
		t.Fatalf("full window = %v, want 7s", got)
	}
	if got := c.ActiveRadioTime(0, 0, 2*time.Second); got != time.Second {
		t.Fatalf("clipped = %v, want 1s", got)
	}
	if got := c.ActiveRadioTime(0, 2*time.Second, 6*time.Second); got != 2*time.Second {
		t.Fatalf("windowed = %v, want 2s", got)
	}
	if got := c.ActiveRadioTime(1, 0, 10*time.Second); got != 0 {
		t.Fatalf("never-on node = %v", got)
	}
}

func TestLedgerIdleListening(t *testing.T) {
	c, now := newCollector(t)
	c.RadioState(0, 0, true)
	*now = 0
	c.FrameSent(0, packet.KindData, 34)        // 34 ms air
	c.FrameReceived(0, 1, packet.KindData, 34) // 34 ms air
	c.StorageOp(0, true, 1, 0, 22)
	c.StorageOp(0, false, 1, 0, 22)
	l := c.Ledger(0, time.Second)
	if l.TxPackets != 1 || l.RxPackets != 1 {
		t.Fatalf("ledger tx/rx = %d/%d", l.TxPackets, l.RxPackets)
	}
	wantIdle := time.Second - 68*time.Millisecond
	if l.IdleListening != wantIdle {
		t.Fatalf("idle = %v, want %v", l.IdleListening, wantIdle)
	}
	if l.EEPROMWrites != 2 || l.EEPROMReads != 2 {
		t.Fatalf("eeprom = %d/%d units", l.EEPROMWrites, l.EEPROMReads)
	}
	if l.Total() <= 0 {
		t.Fatal("non-positive total charge")
	}
	// Costs default to Table 1.
	if got := l.RadioCharge(); got != 1*energy.Table1.TransmitPacket+1*energy.Table1.ReceivePacket+wantIdle.Seconds()*1000*energy.Table1.IdleListenMs {
		t.Fatalf("radio charge = %v", got)
	}
}

func TestNodeEvents(t *testing.T) {
	c, _ := newCollector(t)
	c.NodeEvent(1, time.Second, node.Event{Kind: node.EventParentSet, Peer: 0, Seg: 1})
	c.NodeEvent(1, 2*time.Second, node.Event{Kind: node.EventGotSegment, Seg: 1})
	c.NodeEvent(1, 2*time.Second, node.Event{Kind: node.EventGotCode})
	c.NodeEvent(1, 3*time.Second, node.Event{Kind: node.EventGotCode}) // duplicate ignored
	c.NodeEvent(2, 4*time.Second, node.Event{Kind: node.EventBecameSender, Seg: 1})
	c.NodeEvent(2, 5*time.Second, node.Event{Kind: node.EventBecameSender, Seg: 2})
	c.NodeEvent(3, 6*time.Second, node.Event{Kind: node.EventBecameSender, Seg: 1})

	at, ok := c.GotCodeAt(1)
	if !ok || at != 2*time.Second {
		t.Fatalf("GotCodeAt = %v/%v", at, ok)
	}
	if _, ok := c.GotCodeAt(0); ok {
		t.Fatal("node 0 completed spuriously")
	}
	st, ok := c.SegmentTime(1, 1)
	if !ok || st != 2*time.Second {
		t.Fatalf("SegmentTime = %v/%v", st, ok)
	}
	p, ok := c.Parent(1)
	if !ok || p != 0 {
		t.Fatalf("Parent = %v/%v", p, ok)
	}
	order := c.SenderOrder()
	if len(order) != 2 || order[0] != 2 || order[1] != 3 {
		t.Fatalf("SenderOrder = %v", order)
	}
	if got := len(c.SenderEvents()); got != 3 {
		t.Fatalf("SenderEvents = %d", got)
	}
}

func TestCompletionSeries(t *testing.T) {
	c, _ := newCollector(t)
	c.NodeEvent(0, 1*time.Second, node.Event{Kind: node.EventGotCode})
	c.NodeEvent(2, 3*time.Second, node.Event{Kind: node.EventGotCode})
	c.NodeEvent(1, 2*time.Second, node.Event{Kind: node.EventGotCode})
	times := c.CompletionTimes()
	if len(times) != 3 || times[0] != time.Second || times[2] != 3*time.Second {
		t.Fatalf("CompletionTimes = %v", times)
	}
	if got := c.CompletedFractionAt(2 * time.Second); got != 0.5 {
		t.Fatalf("fraction at 2s = %v, want 0.5", got)
	}
	if got := c.CompletedFractionAt(10 * time.Second); got != 0.75 {
		t.Fatalf("fraction at 10s = %v, want 0.75", got)
	}
}

func TestConcurrencyViolations(t *testing.T) {
	c, now := newCollector(t)
	// Node 0 and node 1 are 10 ft apart (inside the 15 ft
	// neighborhood); node 3 is 14.1 ft diagonal from 0.
	*now = 0
	c.FrameSent(0, packet.KindData, 34) // occupies 34 ms
	*now = 10 * time.Millisecond
	c.FrameSent(1, packet.KindData, 34) // overlap with node 0 → violation
	if c.ConcurrencyViolations() != 1 {
		t.Fatalf("violations = %d, want 1", c.ConcurrencyViolations())
	}
	// After both frames end, a new sender sees no overlap.
	*now = 200 * time.Millisecond
	c.FrameSent(3, packet.KindData, 34)
	if c.ConcurrencyViolations() != 1 {
		t.Fatalf("violations = %d after quiet period", c.ConcurrencyViolations())
	}
	// Control frames never count.
	*now = 210 * time.Millisecond
	c.FrameSent(0, packet.KindAdvertise, 16)
	if c.ConcurrencyViolations() != 1 {
		t.Fatalf("advertisement counted as data violation")
	}
}

func TestMeanActiveRadioTimes(t *testing.T) {
	c, now := newCollector(t)
	for i := 0; i < 4; i++ {
		c.RadioState(packet.NodeID(i), 0, true)
	}
	// Node 1 heard its first advertisement at 4s.
	*now = 4 * time.Second
	c.FrameReceived(1, 0, packet.KindAdvertise, 16)
	until := 10 * time.Second
	if got := c.MeanActiveRadioTime(until); got != 10*time.Second {
		t.Fatalf("mean ART = %v", got)
	}
	// After-first-adv: node 1 contributes 6s, others 10s each.
	want := (10*3 + 6) * time.Second / 4
	if got := c.MeanActiveRadioTimeAfterFirstAdv(until); got != want {
		t.Fatalf("mean ART after adv = %v, want %v", got, want)
	}
}

// A node that never sleeps has one radio interval, opened at boot and
// never closed. Run-end accounting must close it at the horizon — the
// still-open active time may not be lost, in any report that
// integrates radio time.
func TestActiveRadioTimeNeverSleeps(t *testing.T) {
	c, _ := newCollector(t)
	c.RadioState(0, 0, true) // on at boot, never off
	until := 42 * time.Minute
	if got := c.ActiveRadioTime(0, 0, until); got != until {
		t.Fatalf("never-sleeping node ART = %v, want %v", got, until)
	}
	// The open interval is closed at the horizon, not dropped, even when
	// a measurement window starts mid-interval.
	if got := c.ActiveRadioTime(0, 10*time.Minute, until); got != 32*time.Minute {
		t.Fatalf("windowed ART = %v, want 32m", got)
	}
	// Ledger idle time sees the full interval too.
	l := c.Ledger(0, until)
	if l.IdleListening != until {
		t.Fatalf("ledger idle = %v, want %v", l.IdleListening, until)
	}
	// And the telemetry snapshot: all of the node's time is radio-on,
	// none is sleep.
	s := c.Snapshot(until)
	wantOn := until // only node 0 ever turned its radio on
	if s.RadioOnTotal != wantOn {
		t.Fatalf("snapshot radio-on = %v, want %v", s.RadioOnTotal, wantOn)
	}
	if s.SleepTotal != time.Duration(s.Nodes)*until-wantOn {
		t.Fatalf("snapshot sleep = %v", s.SleepTotal)
	}
}

func TestSnapshotAggregates(t *testing.T) {
	c, now := newCollector(t)
	*now = 0
	c.RadioState(0, 0, true)
	c.RadioState(0, time.Second, false)
	c.FrameSent(0, packet.KindData, 34)
	c.FrameSent(0, packet.KindAdvertise, 16)
	c.FrameReceived(1, 0, packet.KindData, 34)
	c.FrameCollided(2, 0, packet.KindData)
	c.StorageOp(1, true, 1, 0, 22)
	c.StorageOp(1, false, 1, 0, 22)
	c.NodeEvent(1, time.Second, node.Event{Kind: node.EventGotSegment, Seg: 1})
	c.NodeEvent(1, 2*time.Second, node.Event{Kind: node.EventGotCode})
	c.NodeEvent(2, 2*time.Second, node.Event{Kind: node.EventBecameSender, Seg: 1})

	s := c.Snapshot(10 * time.Second)
	if s.Nodes != 4 || s.Completed != 1 {
		t.Fatalf("nodes/completed = %d/%d", s.Nodes, s.Completed)
	}
	if s.Tx != 2 || s.Rx != 1 || s.Collisions != 1 {
		t.Fatalf("tx/rx/coll = %d/%d/%d", s.Tx, s.Rx, s.Collisions)
	}
	if s.TxByClass[packet.ClassData] != 1 || s.TxByClass[packet.ClassAdvertisement] != 1 {
		t.Fatalf("tx by class = %v", s.TxByClass)
	}
	if s.EEPROMWriteBytes != 22 || s.EEPROMReadBytes != 22 {
		t.Fatalf("eeprom bytes = %d/%d", s.EEPROMWriteBytes, s.EEPROMReadBytes)
	}
	if s.SenderEvents != 1 {
		t.Fatalf("sender events = %d", s.SenderEvents)
	}
	if s.SegmentCompletions[1] != 1 {
		t.Fatalf("segment completions = %v", s.SegmentCompletions)
	}
	if s.RadioOnTotal != time.Second {
		t.Fatalf("radio on = %v", s.RadioOnTotal)
	}
	if s.SleepTotal != 4*10*time.Second-time.Second {
		t.Fatalf("sleep = %v", s.SleepTotal)
	}
}
