// Package metrics collects the quantities the paper's evaluation
// reports: completion time, per-node active radio time (with and
// without the initial idle-listening period), transmission/reception
// distributions by message class, per-minute traffic timelines,
// parent–child relationships, sender order, energy ledgers built from
// the Table 1 costs, and same-neighborhood sender-concurrency
// violations.
//
// A Collector plugs into the simulation as both the radio traffic sink
// and the node observer.
package metrics

import (
	"fmt"
	"sort"
	"time"

	"mnp/internal/energy"
	"mnp/internal/node"
	"mnp/internal/packet"
	"mnp/internal/topology"
)

// Config parameterizes a collector.
type Config struct {
	// Layout is required for location-based reports.
	Layout *topology.Layout
	// Airtime converts a frame size to channel occupancy (use
	// Medium.Airtime).
	Airtime func(bytes int) time.Duration
	// Costs is the energy cost table; Table1 if zero.
	Costs energy.Costs
	// NeighborhoodRange (feet) defines "nearby" for the concurrent-
	// sender check; 0 disables the check.
	NeighborhoodRange float64
}

type radioInterval struct {
	at time.Duration
	on bool
}

// numClasses sizes the per-class counters: packet.Class values are the
// small dense enum 1..4, so fixed arrays replace per-node maps on the
// per-frame accounting path.
const numClasses = int(packet.ClassData) + 1

type nodeStats struct {
	tx, rx, collided int
	txByClass        [numClasses]int
	rxByClass        [numClasses]int
	txAir            time.Duration
	rxAir            time.Duration
	radio            []radioInterval
	firstAdvHeard    time.Duration
	sawAdv           bool
	eepromReadBytes  int
	eepromWriteBytes int
	decodeOps        int
	gotCodeAt        time.Duration
	completed        bool
	parent           packet.NodeID
	hasParent        bool
	parentAtDone     packet.NodeID
	hasParentAtDone  bool
	segTimes         map[int]time.Duration
}

// SenderEvent records a node becoming a sender.
type SenderEvent struct {
	At   time.Duration
	Node packet.NodeID
	Seg  int
}

// Collector accumulates observations. It is not safe for concurrent
// use (the DES is single-threaded).
type Collector struct {
	cfg   Config
	nodes []nodeStats
	// windows counts transmissions by class per minute of simulated
	// time, as a dense series grown on demand (simulated time is
	// monotone, so the row for the current minute is always the last).
	windows [][numClasses]int
	senders []SenderEvent

	now func() time.Duration

	// Concurrent-sender tracking.
	activeData []senderWindow
	violations int

	// journal, when armed by Begin, records first-touch undo state so
	// Rollback can rewind the collector (see journal.go).
	journal *journal
}

type senderWindow struct {
	id    packet.NodeID
	until time.Duration
}

// NewCollector builds a collector for the given layout.
func NewCollector(cfg Config, now func() time.Duration) (*Collector, error) {
	if cfg.Layout == nil || cfg.Airtime == nil || now == nil {
		return nil, fmt.Errorf("metrics: layout, airtime, and clock are required")
	}
	if cfg.Costs == (energy.Costs{}) {
		cfg.Costs = energy.Table1
	}
	c := &Collector{
		cfg:   cfg,
		nodes: make([]nodeStats, cfg.Layout.N()),
		now:   now,
	}
	for i := range c.nodes {
		c.nodes[i].segTimes = make(map[int]time.Duration)
	}
	return c, nil
}

var _ node.Observer = (*Collector)(nil)

// --- radio.TrafficSink ---

// FrameSent implements radio.TrafficSink.
func (c *Collector) FrameSent(src packet.NodeID, kind packet.Kind, bytes int) {
	minute := int(c.now() / time.Minute)
	if j := c.journal; j != nil && j.active {
		j.touch(c, src)
		j.touchWindow(c, minute)
	}
	st := &c.nodes[src]
	st.tx++
	class := packet.ClassOf(kind)
	st.txByClass[class]++
	air := c.cfg.Airtime(bytes)
	st.txAir += air
	for minute >= len(c.windows) {
		c.windows = append(c.windows, [numClasses]int{})
	}
	c.windows[minute][class]++

	if c.cfg.NeighborhoodRange > 0 && class == packet.ClassData {
		now := c.now()
		live := c.activeData[:0]
		for _, sw := range c.activeData {
			if sw.until > now {
				live = append(live, sw)
			}
		}
		c.activeData = live
		for _, sw := range c.activeData {
			if d, err := c.cfg.Layout.Distance(src, sw.id); err == nil && d <= c.cfg.NeighborhoodRange {
				c.violations++
			}
		}
		c.activeData = append(c.activeData, senderWindow{id: src, until: now + air})
	}
}

// FrameReceived implements radio.TrafficSink.
func (c *Collector) FrameReceived(dst, src packet.NodeID, kind packet.Kind, bytes int) {
	if j := c.journal; j != nil && j.active {
		j.touch(c, dst)
	}
	st := &c.nodes[dst]
	st.rx++
	st.rxByClass[packet.ClassOf(kind)]++
	st.rxAir += c.cfg.Airtime(bytes)
	if !st.sawAdv && packet.ClassOf(kind) == packet.ClassAdvertisement {
		st.sawAdv = true
		st.firstAdvHeard = c.now()
	}
}

// FrameCollided implements radio.TrafficSink.
func (c *Collector) FrameCollided(dst, src packet.NodeID, kind packet.Kind) {
	if j := c.journal; j != nil && j.active {
		j.touch(c, dst)
	}
	c.nodes[dst].collided++
}

// --- node.Observer ---

// NodeEvent implements node.Observer.
func (c *Collector) NodeEvent(id packet.NodeID, at time.Duration, ev node.Event) {
	if j := c.journal; j != nil && j.active {
		j.touch(c, id)
	}
	st := &c.nodes[id]
	switch ev.Kind {
	case node.EventGotCode:
		if !st.completed {
			st.completed = true
			st.gotCodeAt = at
			if st.hasParent {
				st.parentAtDone = st.parent
				st.hasParentAtDone = true
			}
		}
	case node.EventParentSet:
		st.parent = ev.Peer
		st.hasParent = true
	case node.EventBecameSender:
		c.senders = append(c.senders, SenderEvent{At: at, Node: id, Seg: ev.Seg})
	case node.EventGotSegment:
		if _, ok := st.segTimes[ev.Seg]; !ok {
			if j := c.journal; j != nil && j.active {
				j.noteSegAdd(id, ev.Seg)
			}
			st.segTimes[ev.Seg] = at
		}
	case node.EventDecodeOps:
		st.decodeOps += ev.Ops
	}
}

// RadioState implements node.Observer.
func (c *Collector) RadioState(id packet.NodeID, at time.Duration, on bool) {
	if j := c.journal; j != nil && j.active {
		j.touch(c, id)
	}
	c.nodes[id].radio = append(c.nodes[id].radio, radioInterval{at: at, on: on})
}

// StorageOp implements node.Observer.
func (c *Collector) StorageOp(id packet.NodeID, write bool, seg, pkt, bytes int) {
	if j := c.journal; j != nil && j.active {
		j.touch(c, id)
	}
	if write {
		c.nodes[id].eepromWriteBytes += bytes
		return
	}
	c.nodes[id].eepromReadBytes += bytes
}

// MergeShards combines per-shard collectors into one collector
// equivalent to what a single collector would have recorded, the same
// way RunSeeds merges per-seed results: by data, deterministically,
// never by goroutine arrival order. Every per-node statistic is written
// only by the shard owning that node (FrameSent keys on the source,
// FrameReceived/FrameCollided on the destination, node observations on
// the node itself), so per-node rows are taken verbatim from the owner
// named by ownerOf; the per-minute traffic windows are summed; sender
// events are merged by (At, Node); and concurrency violations are
// summed (each shard checks its own senders — cross-shard concurrent
// senders are a documented approximation of the sharded engine).
func MergeShards(parts []*Collector, ownerOf []int) (*Collector, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("metrics: no collectors to merge")
	}
	n := len(parts[0].nodes)
	if len(ownerOf) != n {
		return nil, fmt.Errorf("metrics: owner map covers %d of %d nodes", len(ownerOf), n)
	}
	out := &Collector{
		cfg:   parts[0].cfg,
		nodes: make([]nodeStats, n),
		now:   parts[0].now,
	}
	for i := 0; i < n; i++ {
		o := ownerOf[i]
		if o < 0 || o >= len(parts) {
			return nil, fmt.Errorf("metrics: node %d owned by unknown shard %d", i, o)
		}
		out.nodes[i] = parts[o].nodes[i]
	}
	for _, p := range parts {
		if len(p.nodes) != n {
			return nil, fmt.Errorf("metrics: collector sizes differ (%d vs %d)", len(p.nodes), n)
		}
		for m := range p.windows {
			for m >= len(out.windows) {
				out.windows = append(out.windows, [numClasses]int{})
			}
			for c := 0; c < numClasses; c++ {
				out.windows[m][c] += p.windows[m][c]
			}
		}
		out.violations += p.violations
	}
	// Each shard's sender log is already time-ordered; a k-way merge by
	// (At, Node) yields one global, deterministic order.
	cursors := make([]int, len(parts))
	for {
		best := -1
		for s, p := range parts {
			if cursors[s] >= len(p.senders) {
				continue
			}
			ev := p.senders[cursors[s]]
			if best < 0 {
				best = s
				continue
			}
			b := parts[best].senders[cursors[best]]
			if ev.At < b.At || (ev.At == b.At && ev.Node < b.Node) {
				best = s
			}
		}
		if best < 0 {
			break
		}
		out.senders = append(out.senders, parts[best].senders[cursors[best]])
		cursors[best]++
	}
	return out, nil
}

// --- reports ---

// ActiveRadioTime returns how long node id's radio was on during
// [from, until). The paper's headline metric uses from = 0; Figure 9's
// variant uses from = the time the node heard its first advertisement,
// removing the initial idle-listening period.
func (c *Collector) ActiveRadioTime(id packet.NodeID, from, until time.Duration) time.Duration {
	st := &c.nodes[id]
	var total time.Duration
	on := false
	var onSince time.Duration
	for _, iv := range st.radio {
		if iv.at > until {
			break
		}
		if iv.on && !on {
			on = true
			onSince = iv.at
		} else if !iv.on && on {
			on = false
			total += overlap(onSince, iv.at, from, until)
		}
	}
	if on {
		total += overlap(onSince, until, from, until)
	}
	return total
}

func overlap(aLo, aHi, bLo, bHi time.Duration) time.Duration {
	lo := aLo
	if bLo > lo {
		lo = bLo
	}
	hi := aHi
	if bHi < hi {
		hi = bHi
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// FirstAdvertisementHeard returns when node id first heard an
// advertisement-class message, and whether it ever did.
func (c *Collector) FirstAdvertisementHeard(id packet.NodeID) (time.Duration, bool) {
	st := &c.nodes[id]
	return st.firstAdvHeard, st.sawAdv
}

// Ledger builds node id's energy ledger for activity in [0, until):
// transmissions, receptions, idle listening (radio-on time not spent
// transmitting or receiving), and EEPROM traffic.
func (c *Collector) Ledger(id packet.NodeID, until time.Duration) *energy.Ledger {
	st := &c.nodes[id]
	l := energy.NewLedger(c.cfg.Costs)
	l.AddTx(st.tx)
	l.AddRx(st.rx)
	idle := c.ActiveRadioTime(id, 0, until) - st.txAir - st.rxAir
	l.AddIdle(idle)
	l.AddEEPROMWrite(st.eepromWriteBytes)
	l.AddEEPROMRead(st.eepromReadBytes)
	l.AddDecode(st.decodeOps)
	return l
}

// TxCount returns transmissions by node id (all classes, or one).
func (c *Collector) TxCount(id packet.NodeID) int { return c.nodes[id].tx }

// RxCount returns receptions by node id.
func (c *Collector) RxCount(id packet.NodeID) int { return c.nodes[id].rx }

// TxByClass returns node id's transmissions of one class.
func (c *Collector) TxByClass(id packet.NodeID, class packet.Class) int {
	if int(class) >= numClasses {
		return 0
	}
	return c.nodes[id].txByClass[class]
}

// RxByClass returns node id's receptions of one class.
func (c *Collector) RxByClass(id packet.NodeID, class packet.Class) int {
	if int(class) >= numClasses {
		return 0
	}
	return c.nodes[id].rxByClass[class]
}

// Collisions returns frames lost to collisions at node id.
func (c *Collector) Collisions(id packet.NodeID) int { return c.nodes[id].collided }

// GotCodeAt returns node id's completion time and whether it completed.
func (c *Collector) GotCodeAt(id packet.NodeID) (time.Duration, bool) {
	st := &c.nodes[id]
	return st.gotCodeAt, st.completed
}

// SegmentTime returns when node id completed segment seg.
func (c *Collector) SegmentTime(id packet.NodeID, seg int) (time.Duration, bool) {
	d, ok := c.nodes[id].segTimes[seg]
	return d, ok
}

// Parent returns the parent node id had when it completed (the arrow
// drawn in the paper's Figures 5–7).
func (c *Collector) Parent(id packet.NodeID) (packet.NodeID, bool) {
	st := &c.nodes[id]
	if st.hasParentAtDone {
		return st.parentAtDone, true
	}
	return st.parent, st.hasParent
}

// SenderOrder returns the distinct nodes in the order they first
// became senders (the numbering in Figures 5–7).
func (c *Collector) SenderOrder() []packet.NodeID {
	seen := make(map[packet.NodeID]bool, len(c.senders))
	var order []packet.NodeID
	for _, ev := range c.senders {
		if !seen[ev.Node] {
			seen[ev.Node] = true
			order = append(order, ev.Node)
		}
	}
	return order
}

// SenderEvents returns every became-sender event in time order.
func (c *Collector) SenderEvents() []SenderEvent {
	out := make([]SenderEvent, len(c.senders))
	copy(out, c.senders)
	return out
}

// ConcurrencyViolations returns how many data transmissions started
// while another data transmission was in flight within
// NeighborhoodRange of the new sender.
func (c *Collector) ConcurrencyViolations() int { return c.violations }

// WindowCounts returns the per-minute transmission counts for a class,
// as a dense series from minute 0 through the last active minute.
func (c *Collector) WindowCounts(class packet.Class) []int {
	out := make([]int, len(c.windows))
	if int(class) >= numClasses {
		return out
	}
	for m := range c.windows {
		out[m] = c.windows[m][class]
	}
	return out
}

// CompletionTimes returns every completed node's completion time in
// ascending order.
func (c *Collector) CompletionTimes() []time.Duration {
	var out []time.Duration
	for i := range c.nodes {
		if c.nodes[i].completed {
			out = append(out, c.nodes[i].gotCodeAt)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CompletedFractionAt returns the fraction of nodes holding the full
// program at time t (the propagation-progress curve of Figure 13).
func (c *Collector) CompletedFractionAt(t time.Duration) float64 {
	done := 0
	for i := range c.nodes {
		if c.nodes[i].completed && c.nodes[i].gotCodeAt <= t {
			done++
		}
	}
	return float64(done) / float64(len(c.nodes))
}

// Snapshot is the aggregate view of a run the telemetry layer exports:
// everything is summed over nodes, and durations are integrated over
// [0, until).
type Snapshot struct {
	// Nodes is the fleet size; Completed counts nodes holding the full
	// program.
	Nodes, Completed int
	// Tx, Rx, and Collisions are whole-network frame totals.
	Tx, Rx, Collisions int
	// TxByClass and RxByClass break the totals down by accounting class.
	TxByClass, RxByClass map[packet.Class]int
	// EEPROMReadBytes and EEPROMWriteBytes are whole-network flash traffic.
	EEPROMReadBytes, EEPROMWriteBytes int
	// DecodeOps counts GF(256) row operations spent decoding coded
	// frames (zero for the uncoded protocols).
	DecodeOps int
	// SenderEvents counts became-sender transitions (won competitions).
	SenderEvents int
	// ConcurrencyViolations counts same-neighborhood concurrent data sends.
	ConcurrencyViolations int
	// RadioOnTotal is radio-on time summed over nodes; SleepTotal is its
	// complement against Nodes × until.
	RadioOnTotal, SleepTotal time.Duration
	// SegmentCompletions maps segment ID to how many nodes completed it.
	SegmentCompletions map[int]int
}

// Snapshot aggregates the collector's per-node state over [0, until).
func (c *Collector) Snapshot(until time.Duration) Snapshot {
	s := Snapshot{
		Nodes:                 len(c.nodes),
		TxByClass:             make(map[packet.Class]int, numClasses),
		RxByClass:             make(map[packet.Class]int, numClasses),
		SenderEvents:          len(c.senders),
		ConcurrencyViolations: c.violations,
		SegmentCompletions:    make(map[int]int),
	}
	for i := range c.nodes {
		st := &c.nodes[i]
		if st.completed {
			s.Completed++
		}
		s.Tx += st.tx
		s.Rx += st.rx
		s.Collisions += st.collided
		for class := 1; class < numClasses; class++ {
			s.TxByClass[packet.Class(class)] += st.txByClass[class]
			s.RxByClass[packet.Class(class)] += st.rxByClass[class]
		}
		s.EEPROMReadBytes += st.eepromReadBytes
		s.EEPROMWriteBytes += st.eepromWriteBytes
		s.DecodeOps += st.decodeOps
		s.RadioOnTotal += c.ActiveRadioTime(packet.NodeID(i), 0, until)
		for seg := range st.segTimes {
			s.SegmentCompletions[seg]++
		}
	}
	s.SleepTotal = time.Duration(len(c.nodes))*until - s.RadioOnTotal
	return s
}

// MeanActiveRadioTime averages ActiveRadioTime over all nodes.
func (c *Collector) MeanActiveRadioTime(until time.Duration) time.Duration {
	if len(c.nodes) == 0 {
		return 0
	}
	var sum time.Duration
	for i := range c.nodes {
		sum += c.ActiveRadioTime(packet.NodeID(i), 0, until)
	}
	return sum / time.Duration(len(c.nodes))
}

// MeanActiveRadioTimeAfterFirstAdv averages the Figure 9 variant:
// radio-on time counted only after the node heard its first
// advertisement.
func (c *Collector) MeanActiveRadioTimeAfterFirstAdv(until time.Duration) time.Duration {
	if len(c.nodes) == 0 {
		return 0
	}
	var sum time.Duration
	for i := range c.nodes {
		id := packet.NodeID(i)
		from, ok := c.FirstAdvertisementHeard(id)
		if !ok {
			from = 0
		}
		sum += c.ActiveRadioTime(id, from, until)
	}
	return sum / time.Duration(len(c.nodes))
}
