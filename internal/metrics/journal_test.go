package metrics

import (
	"testing"
	"time"

	"mnp/internal/node"
	"mnp/internal/packet"
)

// replay drives a fixed observation sequence against c at the times the
// clock pointer dictates.
func replay(c *Collector, now *time.Duration) {
	*now = 30 * time.Second
	c.FrameSent(0, packet.KindAdvertise, 16)
	c.FrameReceived(1, 0, packet.KindAdvertise, 16)
	c.RadioState(1, *now, true)
	*now = 70 * time.Second // crosses into minute 1
	c.FrameSent(1, packet.KindData, 34)
	c.FrameSent(2, packet.KindData, 34) // concurrent data sender → violation
	c.FrameCollided(3, 1, packet.KindData)
	c.NodeEvent(1, *now, node.Event{Kind: node.EventBecameSender, Seg: 1})
	c.NodeEvent(1, *now, node.Event{Kind: node.EventGotSegment, Seg: 1})
	c.NodeEvent(1, *now, node.Event{Kind: node.EventGotCode})
	c.StorageOp(1, true, 1, 0, 23)
}

// digest captures everything the reports read, so rollback equivalence
// can be asserted structurally.
type mDigest struct {
	tx, rx, coll, viol, senders int
	windows0, windows1          int
	radioOn                     time.Duration
	completed                   bool
	seg1                        time.Duration
	seg1ok                      bool
	writeBytes                  int
}

func digestOf(c *Collector) mDigest {
	d := mDigest{
		tx:      c.TxCount(0) + c.TxCount(1) + c.TxCount(2),
		rx:      c.RxCount(1),
		coll:    c.Collisions(3),
		viol:    c.ConcurrencyViolations(),
		senders: len(c.SenderEvents()),
		radioOn: c.ActiveRadioTime(1, 0, 2*time.Minute),
	}
	w := c.WindowCounts(packet.ClassData)
	if len(w) > 0 {
		d.windows0 = w[0]
	}
	if len(w) > 1 {
		d.windows1 = w[1]
	}
	_, d.completed = c.GotCodeAt(1)
	d.seg1, d.seg1ok = c.SegmentTime(1, 1)
	snap := c.Snapshot(2 * time.Minute)
	d.writeBytes = snap.EEPROMWriteBytes
	return d
}

func TestJournalRollbackRestoresEverything(t *testing.T) {
	c, now := newCollector(t)

	// Committed prefix: one full replay.
	replay(c, now)
	before := digestOf(c)

	// Speculative suffix, rolled back.
	c.Begin()
	*now = 90 * time.Second
	replay(c, now)
	c.Rollback()

	if got := digestOf(c); got != before {
		t.Fatalf("rollback digest mismatch:\n got %+v\nwant %+v", got, before)
	}

	// Replaying the same suffix after rollback must land where a
	// commit of the same observations would.
	c.Begin()
	*now = 90 * time.Second
	replay(c, now)
	c.Commit()
	after := digestOf(c)

	c2, now2 := newCollector(t)
	replay(c2, now2)
	*now2 = 90 * time.Second
	replay(c2, now2)
	if want := digestOf(c2); after != want {
		t.Fatalf("replay-after-rollback mismatch:\n got %+v\nwant %+v", after, want)
	}
}

func TestJournalSegTimesInsertUndone(t *testing.T) {
	c, now := newCollector(t)
	*now = time.Second
	c.Begin()
	c.NodeEvent(2, *now, node.Event{Kind: node.EventGotSegment, Seg: 5})
	if _, ok := c.SegmentTime(2, 5); !ok {
		t.Fatal("insert not visible during speculation")
	}
	c.Rollback()
	if _, ok := c.SegmentTime(2, 5); ok {
		t.Fatal("segTimes insert survived rollback")
	}
}

func TestJournalWindowRowRestored(t *testing.T) {
	c, now := newCollector(t)
	*now = 10 * time.Second
	c.FrameSent(0, packet.KindData, 34) // minute 0 exists pre-Begin

	c.Begin()
	c.FrameSent(0, packet.KindData, 34) // bumps pre-existing row
	*now = 70 * time.Second
	c.FrameSent(0, packet.KindData, 34) // appends minute-1 row
	c.Rollback()

	w := c.WindowCounts(packet.ClassData)
	if len(w) != 1 || w[0] != 1 {
		t.Fatalf("windows not restored: %v", w)
	}
}

func TestJournalCommitKeepsObservations(t *testing.T) {
	c, now := newCollector(t)
	c.Begin()
	*now = time.Second
	c.FrameSent(0, packet.KindData, 34)
	c.Commit()
	if c.TxCount(0) != 1 {
		t.Fatal("committed observation lost")
	}
	c.Rollback() // no Begin: must be a no-op
	if c.TxCount(0) != 1 {
		t.Fatal("rollback without Begin rewound committed state")
	}
}
