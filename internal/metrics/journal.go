package metrics

import (
	"mnp/internal/packet"
)

// journal is the collector's bounded undo log for optimistic execution.
// Deep-copying a Collector per speculation round would be O(run
// history) — the radio intervals, sender log, and traffic windows all
// grow with simulated time — so instead the collector journals
// first-touch copies of what a round actually dirties: the few node
// rows that saw traffic, the traffic-window rows bumped in place, and
// length watermarks for the append-only logs.
//
// The per-node copy is a plain value copy of nodeStats, which is sound
// because of how the mutators use its reference fields: radio is
// append-only (the saved shorter header hides appends, and re-appends
// overwrite any stale backing), and segTimes is insert-only (the saved
// copy shares the map, so inserts are undone individually via segAdds).
type journal struct {
	active bool

	marked []bool // per-node dirty flag, sized len(c.nodes)
	dirty  []packet.NodeID
	saved  []nodeStats // parallel to dirty: value at first touch

	segAdds []segAdd // segTimes keys inserted this epoch

	windowsLen int
	winSaves   []winSave // pre-existing window rows bumped in place

	sendersLen int

	activeData []senderWindow // deep copy: the live slice is compacted in place
	violations int
}

type segAdd struct {
	id  packet.NodeID
	seg int
}

type winSave struct {
	idx int
	row [numClasses]int
}

// Begin arms the undo journal; a later Rollback rewinds the collector
// to this point. Unjournaled collectors pay one nil check per
// observation.
func (c *Collector) Begin() {
	if c.journal == nil {
		c.journal = &journal{marked: make([]bool, len(c.nodes))}
	}
	j := c.journal
	j.active = true
	j.dirty = j.dirty[:0]
	j.saved = j.saved[:0]
	j.segAdds = j.segAdds[:0]
	j.winSaves = j.winSaves[:0]
	j.windowsLen = len(c.windows)
	j.sendersLen = len(c.senders)
	j.activeData = append(j.activeData[:0], c.activeData...)
	j.violations = c.violations
}

// Commit discards the undo log, keeping observations since Begin.
func (c *Collector) Commit() {
	j := c.journal
	if j == nil || !j.active {
		return
	}
	c.clearJournal(j)
}

// Rollback rewinds the collector to the last Begin.
func (c *Collector) Rollback() {
	j := c.journal
	if j == nil || !j.active {
		return
	}
	for i, id := range j.dirty {
		c.nodes[id] = j.saved[i]
	}
	// The saved rows share segTimes maps with the live rows, so inserted
	// keys survive the row copy and are removed individually.
	for _, a := range j.segAdds {
		delete(c.nodes[a.id].segTimes, a.seg)
	}
	c.windows = c.windows[:j.windowsLen]
	for _, w := range j.winSaves {
		c.windows[w.idx] = w.row
	}
	c.senders = c.senders[:j.sendersLen]
	c.activeData = append(c.activeData[:0], j.activeData...)
	c.violations = j.violations
	c.clearJournal(j)
}

func (c *Collector) clearJournal(j *journal) {
	for _, id := range j.dirty {
		j.marked[id] = false
	}
	j.dirty = j.dirty[:0]
	j.saved = j.saved[:0]
	j.segAdds = j.segAdds[:0]
	j.winSaves = j.winSaves[:0]
	j.active = false
}

// touch saves node id's row once per epoch, before its first mutation.
func (j *journal) touch(c *Collector, id packet.NodeID) {
	if j.marked[id] {
		return
	}
	j.marked[id] = true
	j.dirty = append(j.dirty, id)
	j.saved = append(j.saved, c.nodes[id])
}

// touchWindow saves a pre-existing traffic-window row before an
// in-place bump; rows appended after Begin are handled by the length
// watermark. Simulated time is monotone within an epoch, so at most a
// couple of rows ever land here — the linear dedup scan is fine.
func (j *journal) touchWindow(c *Collector, minute int) {
	if minute >= j.windowsLen {
		return
	}
	for i := range j.winSaves {
		if j.winSaves[i].idx == minute {
			return
		}
	}
	j.winSaves = append(j.winSaves, winSave{idx: minute, row: c.windows[minute]})
}

// noteSegAdd records an insert into a node's segTimes map so Rollback
// can delete it; the caller only inserts when the key is absent.
func (j *journal) noteSegAdd(id packet.NodeID, seg int) {
	j.segAdds = append(j.segAdds, segAdd{id: id, seg: seg})
}
