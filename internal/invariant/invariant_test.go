package invariant

import (
	"strings"
	"testing"
	"time"

	"mnp/internal/node"
	"mnp/internal/packet"
)

// clock is a settable time source.
type clock struct{ at time.Duration }

func (c *clock) now() time.Duration { return c.at }

func newChecker(t *testing.T, mut func(*Config)) (*Checker, *clock) {
	t.Helper()
	clk := &clock{}
	cfg := Config{Now: clk.now}
	if mut != nil {
		mut(&cfg)
	}
	chk, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return chk, clk
}

func firstRule(t *testing.T, chk *Checker, want string) Violation {
	t.Helper()
	vs := chk.Violations()
	if len(vs) == 0 {
		t.Fatalf("no violations recorded, want %q", want)
	}
	if vs[0].Rule != want {
		t.Fatalf("first violation rule = %q, want %q\n%v", vs[0].Rule, want, vs[0])
	}
	return vs[0]
}

func TestNewRequiresClock(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil clock")
	}
}

func TestCleanObservationsPass(t *testing.T) {
	chk, clk := newChecker(t, nil)
	chk.NodeEvent(1, 0, node.Event{Kind: node.EventStateChange, State: "idle"})
	chk.StorageOp(1, true, 1, 0, 22)
	chk.StorageOp(1, true, 1, 1, 22)
	chk.StorageOp(1, false, 1, 0, 22) // reads never violate
	clk.at = time.Second
	chk.NodeEvent(1, clk.at, node.Event{Kind: node.EventGotSegment, Seg: 1})
	chk.PacketSent(1, &packet.Advertise{Src: 1, ProgramID: 1, ProgramSegments: 1, SegID: 1, SegNominal: 2, TotalPackets: 2}, time.Millisecond)
	if err := chk.Err(); err != nil {
		t.Fatalf("clean run reported: %v", err)
	}
	chk.Check(t) // must not fail the test
}

func TestWriteOnceViolation(t *testing.T) {
	chk, clk := newChecker(t, nil)
	chk.StorageOp(3, true, 2, 7, 22)
	clk.at = 5 * time.Second
	chk.StorageOp(3, true, 2, 7, 22)
	v := firstRule(t, chk, "write-once-eeprom")
	if v.Node != 3 || v.At != 5*time.Second {
		t.Fatalf("violation = %+v", v)
	}
	if !strings.Contains(v.Detail, "(seg 2, pkt 7)") {
		t.Fatalf("detail %q does not name the slot", v.Detail)
	}
	// The error must carry a trace excerpt of the offending node.
	msg := chk.Err().Error()
	if !strings.Contains(msg, "trace excerpt") || !strings.Contains(msg, "eeprom write s2/p7") {
		t.Fatalf("error lacks trace excerpt:\n%s", msg)
	}
}

func TestEraseResetsWriteOnceEpoch(t *testing.T) {
	chk, _ := newChecker(t, nil)
	chk.StorageOp(1, true, 1, 0, 22)
	chk.NodeEvent(1, 0, node.Event{Kind: node.EventStoreErased})
	chk.StorageOp(1, true, 1, 0, 22) // new program epoch: legal
	if err := chk.Err(); err != nil {
		t.Fatalf("post-erase rewrite flagged: %v", err)
	}
}

func TestInOrderSegmentViolation(t *testing.T) {
	chk, _ := newChecker(t, nil)
	chk.NodeEvent(4, 0, node.Event{Kind: node.EventGotSegment, Seg: 1})
	chk.NodeEvent(4, 0, node.Event{Kind: node.EventGotSegment, Seg: 3}) // skipped 2
	v := firstRule(t, chk, "in-order-segments")
	if !strings.Contains(v.Detail, "segment 3 after segment 1") {
		t.Fatalf("detail = %q", v.Detail)
	}
}

func TestEraseResetsSegmentOrder(t *testing.T) {
	chk, _ := newChecker(t, nil)
	chk.NodeEvent(4, 0, node.Event{Kind: node.EventGotSegment, Seg: 1})
	chk.NodeEvent(4, 0, node.Event{Kind: node.EventGotSegment, Seg: 2})
	chk.NodeEvent(4, 0, node.Event{Kind: node.EventStoreErased})
	chk.NodeEvent(4, 0, node.Event{Kind: node.EventGotSegment, Seg: 1})
	if err := chk.Err(); err != nil {
		t.Fatalf("post-erase segment restart flagged: %v", err)
	}
}

func TestAdvertiseSoundnessViolation(t *testing.T) {
	chk, _ := newChecker(t, nil)
	// Node 2 holds only 1 of segment 1's 3 packets but advertises it.
	chk.StorageOp(2, true, 1, 0, 22)
	chk.PacketSent(2, &packet.Advertise{Src: 2, ProgramID: 1, ProgramSegments: 1, SegID: 1, SegNominal: 3, TotalPackets: 3}, time.Millisecond)
	v := firstRule(t, chk, "advertise-soundness")
	if !strings.Contains(v.Detail, "holds 1/3 packets of segment 1") {
		t.Fatalf("detail = %q", v.Detail)
	}
}

func TestAdvertiseSoundnessShortFinalSegment(t *testing.T) {
	chk, _ := newChecker(t, nil)
	// 5 packets at nominal 3: segment 1 holds 3, segment 2 holds 2.
	for pkt := 0; pkt < 3; pkt++ {
		chk.StorageOp(6, true, 1, pkt, 22)
	}
	chk.StorageOp(6, true, 2, 0, 22)
	chk.StorageOp(6, true, 2, 1, 22)
	chk.PacketSent(6, &packet.Advertise{Src: 6, ProgramID: 1, ProgramSegments: 2, SegID: 2, SegNominal: 3, TotalPackets: 5}, time.Millisecond)
	if err := chk.Err(); err != nil {
		t.Fatalf("full short final segment flagged: %v", err)
	}
}

func TestTransmitInSleepViolation(t *testing.T) {
	chk, clk := newChecker(t, nil)
	chk.NodeEvent(5, 0, node.Event{Kind: node.EventStateChange, State: "sleep"})
	clk.at = time.Minute
	chk.PacketSent(5, &packet.Data{Src: 5, ProgramID: 1, SegID: 1, PacketID: 0}, time.Millisecond)
	firstRule(t, chk, "no-transmit-in-sleep")
}

func TestRadioOnInSleepViolation(t *testing.T) {
	chk, clk := newChecker(t, nil)
	chk.NodeEvent(5, 0, node.Event{Kind: node.EventStateChange, State: "sleep"})
	chk.RadioState(5, time.Second, true)
	// Still asleep at a strictly later instant: the power-up stands.
	clk.at = 2 * time.Second
	chk.RadioState(5, 2*time.Second, false)
	firstRule(t, chk, "sleep-radio-off")
}

func TestWakeupSameInstantIsLegal(t *testing.T) {
	chk, clk := newChecker(t, nil)
	chk.NodeEvent(5, 0, node.Event{Kind: node.EventStateChange, State: "sleep"})
	// Waking emits radio-on then the state change at the same instant.
	clk.at = time.Minute
	chk.RadioState(5, time.Minute, true)
	chk.NodeEvent(5, time.Minute, node.Event{Kind: node.EventStateChange, State: "download"})
	clk.at = 2 * time.Minute
	chk.RadioState(5, 2*time.Minute, false)
	if err := chk.Err(); err != nil {
		t.Fatalf("legal wakeup flagged: %v", err)
	}
}

func TestRadioOnInSleepAllowedByConfig(t *testing.T) {
	chk, clk := newChecker(t, func(c *Config) { c.AllowRadioOnInSleep = true })
	chk.NodeEvent(5, 0, node.Event{Kind: node.EventStateChange, State: "sleep"})
	chk.RadioState(5, time.Second, true)
	clk.at = 2 * time.Second
	chk.RadioState(5, 2*time.Second, false)
	if err := chk.Err(); err != nil {
		t.Fatalf("NoSleep ablation flagged: %v", err)
	}
}

func TestSenderExclusivityBudget(t *testing.T) {
	chk, clk := newChecker(t, func(c *Config) {
		c.Neighbor = func(a, b packet.NodeID) bool { return true }
		c.Airtime = func(bytes int) time.Duration { return time.Second }
		c.SenderOverlapBudget = 2
	})
	data := func(src packet.NodeID) *packet.Data {
		return &packet.Data{Src: src, ProgramID: 1, SegID: 1, PacketID: 0}
	}
	chk.PacketSent(1, data(1), time.Second)
	chk.PacketSent(2, data(2), time.Second) // overlap 1
	chk.PacketSent(3, data(3), time.Second) // overlaps 2 and 3
	if got := chk.Overlaps(); got != 3 {
		t.Fatalf("Overlaps = %d, want 3", got)
	}
	firstRule(t, chk, "single-sender-per-neighborhood")
	// Windows expire: a later lone sender adds no overlap.
	clk.at = time.Hour
	before := chk.Overlaps()
	chk.PacketSent(4, data(4), time.Second)
	if chk.Overlaps() != before {
		t.Fatalf("expired windows still counted")
	}
}

func TestSenderExclusivityIgnoresControlFrames(t *testing.T) {
	chk, _ := newChecker(t, func(c *Config) {
		c.Neighbor = func(a, b packet.NodeID) bool { return true }
		c.Airtime = func(bytes int) time.Duration { return time.Second }
		c.SenderOverlapBudget = 1
	})
	adv := &packet.Advertise{ProgramID: 1, ProgramSegments: 1, SegID: 0, SegNominal: 1, TotalPackets: 1}
	// SegID 0 advertisements carry no held-segment claim; many
	// concurrent ones are normal protocol behavior.
	adv0 := *adv
	adv0.Src = 1
	adv1 := *adv
	adv1.Src = 2
	chk.PacketSent(1, &adv0, time.Second)
	chk.PacketSent(2, &adv1, time.Second)
	if got := chk.Overlaps(); got != 0 {
		t.Fatalf("control frames counted as data overlaps: %d", got)
	}
}

func TestRebootClearsRAMStateOnly(t *testing.T) {
	chk, clk := newChecker(t, nil)
	chk.StorageOp(7, true, 1, 0, 22)
	chk.NodeEvent(7, 0, node.Event{Kind: node.EventStateChange, State: "sleep"})
	clk.at = time.Second
	chk.NodeEvent(7, time.Second, node.Event{Kind: node.EventRebooted})
	// Fresh instance transmits immediately: not a sleep violation,
	// sleep state died with RAM.
	chk.PacketSent(7, &packet.DownloadRequest{Src: 7, DestID: 0}, time.Millisecond)
	if err := chk.Err(); err != nil {
		t.Fatalf("post-reboot transmit flagged: %v", err)
	}
	// But EEPROM state survives the reboot: rewriting is still caught.
	chk.StorageOp(7, true, 1, 0, 22)
	firstRule(t, chk, "write-once-eeprom")
}

func TestOnViolationFiresImmediately(t *testing.T) {
	var seen []Violation
	chk, _ := newChecker(t, func(c *Config) {
		c.OnViolation = func(v Violation) { seen = append(seen, v) }
	})
	chk.StorageOp(1, true, 1, 0, 22)
	chk.StorageOp(1, true, 1, 0, 22)
	if len(seen) != 1 || seen[0].Rule != "write-once-eeprom" {
		t.Fatalf("OnViolation saw %+v", seen)
	}
}

func TestErrSummarizesFurtherViolations(t *testing.T) {
	chk, _ := newChecker(t, nil)
	chk.StorageOp(1, true, 1, 0, 22)
	chk.StorageOp(1, true, 1, 0, 22)
	chk.StorageOp(1, true, 1, 0, 22)
	err := chk.Err()
	if err == nil || !strings.Contains(err.Error(), "+1 further violation") {
		t.Fatalf("Err = %v", err)
	}
}

func TestGossipBeaconSoundness(t *testing.T) {
	chk, _ := newChecker(t, nil)
	// Node 5 holds all 3 packets of segment 1 and 1 of segment 2, and
	// beacons exactly that: legal.
	for pkt := 0; pkt < 3; pkt++ {
		chk.StorageOp(5, true, 1, pkt, 22)
	}
	chk.StorageOp(5, true, 2, 0, 22)
	chk.PacketSent(5, &packet.GossipAdv{Src: 5, ProgramID: 1, Segments: 2,
		SegPackets: 3, TotalPackets: 5, PayloadLen: 22, Tail: 22,
		CompleteSegs: 1, Have: 1}, time.Millisecond)
	if err := chk.Err(); err != nil {
		t.Fatalf("sound beacon flagged: %v", err)
	}
	// Claiming 2 packets of segment 2 while holding 1 is the churn bug
	// this rule exists for (a reboot or handoff resuming optimistic
	// state the flash never held).
	chk.PacketSent(5, &packet.GossipAdv{Src: 5, ProgramID: 1, Segments: 2,
		SegPackets: 3, TotalPackets: 5, PayloadLen: 22, Tail: 22,
		CompleteSegs: 1, Have: 2}, time.Millisecond)
	v := firstRule(t, chk, "advertisement-soundness-under-churn")
	if !strings.Contains(v.Detail, "claims 2 packets of segment 2 but holds 1") {
		t.Fatalf("detail = %q", v.Detail)
	}
}

func TestGossipBeaconSoundnessCompleteSegs(t *testing.T) {
	chk, _ := newChecker(t, nil)
	// Node 7 holds 2 of segment 1's 3 packets but beacons it complete.
	chk.StorageOp(7, true, 1, 0, 22)
	chk.StorageOp(7, true, 1, 1, 22)
	chk.PacketSent(7, &packet.GossipAdv{Src: 7, ProgramID: 1, Segments: 2,
		SegPackets: 3, TotalPackets: 5, PayloadLen: 22, Tail: 22,
		CompleteSegs: 1}, time.Millisecond)
	v := firstRule(t, chk, "advertisement-soundness-under-churn")
	if !strings.Contains(v.Detail, "holds 2/3 packets of segment 1") {
		t.Fatalf("detail = %q", v.Detail)
	}
}

func TestGossipBeaconSurvivesReboot(t *testing.T) {
	chk, _ := newChecker(t, nil)
	// EEPROM-backed claims stay sound across a reboot: the write log is
	// not RAM state, so the resumed node's beacon still checks out.
	for pkt := 0; pkt < 3; pkt++ {
		chk.StorageOp(8, true, 1, pkt, 22)
	}
	chk.NodeEvent(8, time.Second, node.Event{Kind: node.EventRebooted})
	chk.PacketSent(8, &packet.GossipAdv{Src: 8, ProgramID: 1, Segments: 2,
		SegPackets: 3, TotalPackets: 5, PayloadLen: 22, Tail: 22,
		CompleteSegs: 1}, time.Millisecond)
	if err := chk.Err(); err != nil {
		t.Fatalf("post-reboot beacon flagged: %v", err)
	}
	// But beaconing past the image is degenerate regardless of writes.
	chk.PacketSent(8, &packet.GossipAdv{Src: 8, ProgramID: 1, Segments: 2,
		SegPackets: 3, TotalPackets: 5, PayloadLen: 22, Tail: 22,
		CompleteSegs: 3}, time.Millisecond)
	v := firstRule(t, chk, "advertisement-soundness-under-churn")
	if !strings.Contains(v.Detail, "claims 3 complete segments of a 2-segment image") {
		t.Fatalf("detail = %q", v.Detail)
	}
}
