// Package invariant validates the paper's protocol invariants online,
// while a simulation executes, instead of post-hoc at verification
// time. A Checker plugs into the harness as a node.Observer (and,
// through radio.Medium.SetTap, as a frame tap) and watches five
// properties MNP's correctness argument rests on:
//
//  1. Write-once EEPROM: each (segment, packet) slot is written at
//     most once per program epoch ("we guarantee that each packet in a
//     segment is written to EEPROM only once"). An epoch ends when the
//     node erases its store for a new program version.
//  2. In-order segments: a node completes segments strictly in order
//     (RvdSegID advances by exactly one), so the received-segment ID
//     it would advertise is monotone within a program version.
//  3. Advertisement soundness: a node never advertises a segment it
//     does not fully hold in EEPROM.
//  4. Sleep discipline: a node in the sleep state never transmits,
//     and (unless the ablation keeps radios powered) its radio is
//     provably off strictly inside the sleep window.
//  5. Sender exclusivity: at most one active data sender per radio
//     neighborhood, within a small tolerance the paper itself concedes
//     to time-varying links.
//  6. Rank monotonicity (coded dissemination): the (complete segments,
//     decode rank) pair a node advertises never decreases within a
//     program epoch — Gaussian elimination only accumulates. A reboot
//     resets the RAM-resident rank but not the EEPROM-backed segment
//     count.
//  7. Segment-image integrity (opt-in via SetImageCheck): every
//     completed segment's stored payloads are byte-identical to the
//     source image.
//
// The checker keeps its own bounded trace ring; every violation
// carries an excerpt of the offending node's recent history so a
// failing chaos test points at the exact event sequence.
package invariant

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"mnp/internal/node"
	"mnp/internal/packet"
	"mnp/internal/trace"
)

// Config parameterizes a Checker. Now is required; everything else is
// optional and disables the corresponding check when absent.
type Config struct {
	// Now supplies timestamps (use Kernel.Now).
	Now func() time.Duration
	// Neighbor reports whether two nodes share a radio neighborhood;
	// nil disables the sender-exclusivity check.
	Neighbor func(a, b packet.NodeID) bool
	// Airtime converts a frame size to channel occupancy (use
	// Medium.Airtime); required for sender exclusivity.
	Airtime func(bytes int) time.Duration
	// SenderOverlapBudget tolerates this many same-neighborhood
	// concurrent data transmissions before the run is a violation. The
	// paper reports near-perfect but not perfect exclusion under
	// time-varying links; 0 means use DefaultSenderOverlapBudget.
	SenderOverlapBudget int
	// AllowRadioOnInSleep skips the radio-off-in-sleep check (for the
	// NoSleep ablation, which parks in the sleep state with the radio
	// powered).
	AllowRadioOnInSleep bool
	// TraceCap bounds the internal trace ring (default 16384 entries).
	TraceCap int
	// OnViolation, when set, fires on every violation as it is
	// detected (e.g. to t.Fatalf immediately). Violations are recorded
	// either way.
	OnViolation func(Violation)
}

// DefaultSenderOverlapBudget is the tolerated number of concurrent
// same-neighborhood data sends per run, matching the slack the paper's
// testbed data shows.
const DefaultSenderOverlapBudget = 25

// Violation is one detected invariant breach.
type Violation struct {
	At      time.Duration
	Node    packet.NodeID
	Rule    string
	Detail  string
	Excerpt []string // recent trace entries for the offending node
}

// Error formats the violation with its trace excerpt.
func (v Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invariant %q violated at %v by node %v: %s", v.Rule, v.At, v.Node, v.Detail)
	if len(v.Excerpt) > 0 {
		b.WriteString("\n  trace excerpt:")
		for _, line := range v.Excerpt {
			b.WriteString("\n    ")
			b.WriteString(line)
		}
	}
	return b.String()
}

// nodeState is the checker's model of one node.
type nodeState struct {
	epoch   int
	writes  map[int]int // slot key (seg<<16 | pkt) -> successful writes this epoch
	perSeg  map[int]int // segment -> distinct slots written this epoch
	lastSeg int         // last in-order completed segment this epoch
	state   string      // protocol state from EventStateChange ("" = unknown)
	asleep  bool
	sleepAt time.Duration
	// pendingRadioOn records a radio power-up observed while the node
	// was in the sleep state. Waking turns the radio on before the
	// state-change event lands, so the power-up is only a violation if
	// the node is still asleep at a strictly later instant.
	pendingRadioOn   bool
	pendingRadioOnAt time.Duration
	// rlncSegs/rlncRank track the last advertised coded-dissemination
	// progress for the rank-monotonicity check.
	rlncSegs int
	rlncRank int
}

// senderWindow is one in-flight data transmission.
type senderWindow struct {
	id    packet.NodeID
	until time.Duration
}

// Checker validates invariants as observations arrive. It is not safe
// for concurrent use; in the DES all observations arrive on one
// goroutine.
type Checker struct {
	cfg        Config
	log        *trace.Log
	nodes      map[packet.NodeID]*nodeState
	violations []Violation

	activeData []senderWindow
	overlaps   int
	overBudget bool

	// Segment-image integrity hooks (nil = check disabled); see
	// SetImageCheck.
	imgExpected func(seg, pkt int) ([]byte, bool)
	imgStored   func(id packet.NodeID, seg, pkt int) []byte
}

// New builds a checker. Wire it as (part of) the node observer and,
// for the advertisement/sleep-transmit/sender checks, install
// PacketSent as the medium's tap.
func New(cfg Config) (*Checker, error) {
	if cfg.Now == nil {
		return nil, fmt.Errorf("invariant: Now clock is required")
	}
	if cfg.SenderOverlapBudget == 0 {
		cfg.SenderOverlapBudget = DefaultSenderOverlapBudget
	}
	if cfg.TraceCap == 0 {
		cfg.TraceCap = 16384
	}
	log, err := trace.NewLog(cfg.Now, trace.WithCap(cfg.TraceCap))
	if err != nil {
		return nil, err
	}
	return &Checker{cfg: cfg, log: log, nodes: make(map[packet.NodeID]*nodeState)}, nil
}

var _ node.Observer = (*Checker)(nil)

func (c *Checker) state(id packet.NodeID) *nodeState {
	st, ok := c.nodes[id]
	if !ok {
		st = &nodeState{writes: make(map[int]int), perSeg: make(map[int]int)}
		c.nodes[id] = st
	}
	return st
}

const excerptLen = 12

func (c *Checker) excerpt(id packet.NodeID) []string {
	entries := c.log.NodeEntries(id)
	if len(entries) > excerptLen {
		entries = entries[len(entries)-excerptLen:]
	}
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.String())
	}
	return out
}

func (c *Checker) violate(id packet.NodeID, rule, format string, args ...any) {
	v := Violation{
		At:      c.cfg.Now(),
		Node:    id,
		Rule:    rule,
		Detail:  fmt.Sprintf(format, args...),
		Excerpt: c.excerpt(id),
	}
	c.violations = append(c.violations, v)
	if c.cfg.OnViolation != nil {
		c.cfg.OnViolation(v)
	}
}

// resolvePendingRadio decides the fate of a radio power-up seen during
// sleep: legitimate if the node left the sleep state at the very same
// instant, a violation once a strictly later observation finds it
// still asleep.
func (c *Checker) resolvePendingRadio(id packet.NodeID, st *nodeState, now time.Duration) {
	if !st.pendingRadioOn {
		return
	}
	if !st.asleep {
		st.pendingRadioOn = false
		return
	}
	if now > st.pendingRadioOnAt {
		st.pendingRadioOn = false
		c.violate(id, "sleep-radio-off",
			"radio powered on at %v while in the sleep state entered at %v",
			st.pendingRadioOnAt, st.sleepAt)
	}
}

// NodeEvent implements node.Observer.
func (c *Checker) NodeEvent(id packet.NodeID, at time.Duration, ev node.Event) {
	c.log.NodeEvent(id, at, ev)
	st := c.state(id)
	switch ev.Kind {
	case node.EventStateChange:
		st.state = ev.State
		wasAsleep := st.asleep
		st.asleep = ev.State == "sleep"
		if st.asleep && !wasAsleep {
			st.sleepAt = at
		}
		c.resolvePendingRadio(id, st, at)
	case node.EventGotSegment:
		c.resolvePendingRadio(id, st, at)
		if ev.Seg != st.lastSeg+1 {
			c.violate(id, "in-order-segments",
				"completed segment %d after segment %d (must advance by exactly one)",
				ev.Seg, st.lastSeg)
		}
		if ev.Seg > st.lastSeg {
			st.lastSeg = ev.Seg
		}
		c.checkSegmentImage(id, ev.Seg)
	case node.EventStoreErased:
		// New program epoch: write-once, segment order, and coded
		// progress restart.
		st.epoch++
		st.writes = make(map[int]int)
		st.perSeg = make(map[int]int)
		st.lastSeg = 0
		st.rlncSegs = 0
		st.rlncRank = 0
	case node.EventRebooted:
		// RAM state is gone; the protocol state is unknown until the
		// fresh instance reports one. EEPROM-derived state persists —
		// including completed segments — but the decode rank was RAM.
		st.state = ""
		st.asleep = false
		st.pendingRadioOn = false
		st.rlncRank = 0
	}
}

// RadioState implements node.Observer.
func (c *Checker) RadioState(id packet.NodeID, at time.Duration, on bool) {
	c.log.RadioState(id, at, on)
	st := c.state(id)
	c.resolvePendingRadio(id, st, at)
	if on && st.asleep && !c.cfg.AllowRadioOnInSleep {
		st.pendingRadioOn = true
		st.pendingRadioOnAt = at
	}
}

// StorageOp implements node.Observer.
func (c *Checker) StorageOp(id packet.NodeID, write bool, seg, pkt, bytes int) {
	c.log.StorageOp(id, write, seg, pkt, bytes)
	if !write {
		return
	}
	st := c.state(id)
	key := seg<<16 | pkt
	st.writes[key]++
	if st.writes[key] == 1 {
		st.perSeg[seg]++
	} else {
		c.violate(id, "write-once-eeprom",
			"EEPROM slot (seg %d, pkt %d) written %d times in program epoch %d",
			seg, pkt, st.writes[key], st.epoch)
	}
}

// PacketSent is the radio tap: it observes every transmitted frame in
// decoded form. Install with Medium.SetTap(checker.PacketSent).
func (c *Checker) PacketSent(src packet.NodeID, p packet.Packet, air time.Duration) {
	st := c.state(src)
	now := c.cfg.Now()
	c.resolvePendingRadio(src, st, now)
	if st.asleep {
		c.violate(src, "no-transmit-in-sleep",
			"transmitted a %v frame while in the sleep state entered at %v",
			p.Kind(), st.sleepAt)
	}
	if adv, ok := p.(*packet.Advertise); ok {
		c.checkAdvertise(src, st, adv)
	}
	if adv, ok := p.(*packet.RlncAdv); ok {
		c.checkRlncAdv(src, st, adv)
	}
	if adv, ok := p.(*packet.GossipAdv); ok {
		c.checkGossipAdv(src, st, adv)
	}
	if c.cfg.Neighbor != nil && c.cfg.Airtime != nil &&
		packet.ClassOf(p.Kind()) == packet.ClassData {
		c.checkSenderExclusive(src, now, air)
	}
}

// checkAdvertise validates that the advertiser fully holds every
// segment up to the one it advertises, using the geometry carried by
// the advertisement itself and the writes the checker has seen land in
// the node's EEPROM this epoch.
func (c *Checker) checkAdvertise(src packet.NodeID, st *nodeState, adv *packet.Advertise) {
	segID := int(adv.SegID)
	nominal := int(adv.SegNominal)
	total := int(adv.TotalPackets)
	if segID <= 0 || nominal <= 0 || total <= 0 {
		c.violate(src, "advertise-soundness",
			"advertisement with degenerate geometry (seg %d, nominal %d, total %d)",
			segID, nominal, total)
		return
	}
	for s := 1; s <= segID; s++ {
		want := total - (s-1)*nominal
		if want > nominal {
			want = nominal
		}
		if want <= 0 || st.perSeg[s] < want {
			c.violate(src, "advertise-soundness",
				"advertised segment %d of program %d but holds %d/%d packets of segment %d",
				segID, adv.ProgramID, st.perSeg[s], want, s)
			return
		}
	}
}

// checkRlncAdv validates coded-dissemination progress: the advertised
// (complete segments, rank) pair is lexicographically non-decreasing
// within a program epoch, and every advertised-complete segment is
// fully held in EEPROM (the coded analogue of advertise-soundness).
func (c *Checker) checkRlncAdv(src packet.NodeID, st *nodeState, adv *packet.RlncAdv) {
	segs, rank := int(adv.CompleteSegs), int(adv.Rank)
	if segs < st.rlncSegs || (segs == st.rlncSegs && rank < st.rlncRank) {
		c.violate(src, "rlnc-rank-monotone",
			"advertised (segments %d, rank %d) after (segments %d, rank %d) in program epoch %d",
			segs, rank, st.rlncSegs, st.rlncRank, st.epoch)
	}
	if segs > st.rlncSegs {
		st.rlncSegs, st.rlncRank = segs, rank
	} else if segs == st.rlncSegs && rank > st.rlncRank {
		st.rlncRank = rank
	}
	nominal, total := int(adv.SegPackets), int(adv.TotalPackets)
	if nominal <= 0 || total <= 0 {
		return // a bootstrap advertisement carries no geometry to check
	}
	for s := 1; s <= segs; s++ {
		want := total - (s-1)*nominal
		if want > nominal {
			want = nominal
		}
		if want <= 0 || st.perSeg[s] < want {
			c.violate(src, "advertise-soundness",
				"advertised %d complete coded segments of program %d but holds %d/%d packets of segment %d",
				segs, adv.ProgramID, st.perSeg[s], want, s)
			return
		}
	}
}

// checkGossipAdv validates gossip beacons against the EEPROM writes the
// checker has observed — the rule that keeps blind-push gossip honest
// under churn. A beacon claiming CompleteSegs complete segments plus
// Have packets of the next one must be fully backed by stored slots,
// across crashes, reboots, and dissolving neighborhoods: the checker's
// write log models EEPROM, so it persists through reboots exactly like
// the state the beacon summarizes, and any node that resumes beaconing
// more than its flash holds is caught on the first frame.
func (c *Checker) checkGossipAdv(src packet.NodeID, st *nodeState, adv *packet.GossipAdv) {
	const rule = "advertisement-soundness-under-churn"
	segs, nominal, total := int(adv.CompleteSegs), int(adv.SegPackets), int(adv.TotalPackets)
	if adv.Segments == 0 || nominal <= 0 || total <= 0 {
		c.violate(src, rule,
			"beacon with degenerate geometry (segments %d, nominal %d, total %d)",
			adv.Segments, nominal, total)
		return
	}
	if segs > int(adv.Segments) {
		c.violate(src, rule,
			"beacon claims %d complete segments of a %d-segment image",
			segs, adv.Segments)
		return
	}
	for s := 1; s <= segs; s++ {
		want := total - (s-1)*nominal
		if want > nominal {
			want = nominal
		}
		if want <= 0 || st.perSeg[s] < want {
			c.violate(src, rule,
				"beacon claims %d complete segments of program %d but holds %d/%d packets of segment %d",
				segs, adv.ProgramID, st.perSeg[s], want, s)
			return
		}
	}
	if have := int(adv.Have); have > 0 {
		if segs >= int(adv.Segments) {
			c.violate(src, rule,
				"beacon claims %d packets past a complete %d-segment image",
				have, segs)
			return
		}
		if st.perSeg[segs+1] < have {
			c.violate(src, rule,
				"beacon claims %d packets of segment %d but holds %d",
				have, segs+1, st.perSeg[segs+1])
		}
	}
}

func (c *Checker) checkSenderExclusive(src packet.NodeID, now time.Duration, air time.Duration) {
	live := c.activeData[:0]
	for _, w := range c.activeData {
		if w.until > now {
			live = append(live, w)
		}
	}
	c.activeData = live
	for _, w := range c.activeData {
		if w.id != src && c.cfg.Neighbor(src, w.id) {
			c.overlaps++
			if c.overlaps > c.cfg.SenderOverlapBudget && !c.overBudget {
				c.overBudget = true
				c.violate(src, "single-sender-per-neighborhood",
					"%d same-neighborhood concurrent data sends exceed the budget of %d (latest overlaps node %v)",
					c.overlaps, c.cfg.SenderOverlapBudget, w.id)
			}
		}
	}
	c.activeData = append(c.activeData, senderWindow{id: src, until: now + air})
}

// SetImageCheck arms the segment-image-integrity rule: on every
// EventGotSegment the completed segment's stored payloads are compared
// byte-for-byte against the source image. expected returns the source
// payload of (seg, pkt) and false past the segment's end; stored
// returns the node's EEPROM payload for the slot. The rule only
// applies to protocols whose EEPROM slots mirror image (seg, pkt)
// geometry — Deluge's pages do not, so the experiment layer leaves it
// unarmed there.
func (c *Checker) SetImageCheck(
	expected func(seg, pkt int) ([]byte, bool),
	stored func(id packet.NodeID, seg, pkt int) []byte,
) {
	c.imgExpected, c.imgStored = expected, stored
}

// checkSegmentImage verifies a freshly completed segment against the
// source image. A nil stored payload is skipped, not failed: in
// sharded runs observer replay happens at barriers, so a racing
// new-epoch erase can empty a slot between the completion event and
// this read.
func (c *Checker) checkSegmentImage(id packet.NodeID, seg int) {
	if c.imgExpected == nil || c.imgStored == nil {
		return
	}
	for pkt := 0; ; pkt++ {
		want, ok := c.imgExpected(seg, pkt)
		if !ok {
			return
		}
		got := c.imgStored(id, seg, pkt)
		if got == nil {
			continue
		}
		if !bytes.Equal(got, want) {
			c.violate(id, "segment-image-integrity",
				"segment %d packet %d differs from the source image (%d bytes stored, %d expected)",
				seg, pkt, len(got), len(want))
			return
		}
	}
}

// Overlaps returns the count of same-neighborhood concurrent data
// transmissions observed (compare with the configured budget).
func (c *Checker) Overlaps() int { return c.overlaps }

// Violations returns every recorded violation in detection order.
func (c *Checker) Violations() []Violation {
	out := make([]Violation, len(c.violations))
	copy(out, c.violations)
	return out
}

// Err returns the first violation as an error, or nil if every
// invariant held.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	v := c.violations[0]
	if n := len(c.violations); n > 1 {
		return fmt.Errorf("%s\n  (+%d further violations)", v.Error(), n-1)
	}
	return fmt.Errorf("%s", v.Error())
}

// TB is the subset of *testing.T the test helpers need.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
}

// Check fails the test on the first recorded violation. Call it after
// the run completes; use Config.OnViolation for fail-fast behavior.
func (c *Checker) Check(t TB) {
	t.Helper()
	if err := c.Err(); err != nil {
		t.Fatalf("%v", err)
	}
}
