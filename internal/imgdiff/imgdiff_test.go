package imgdiff

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// mutate applies a few point edits, insertions and deletions to data.
func mutate(rng *rand.Rand, data []byte, edits int) []byte {
	out := append([]byte(nil), data...)
	for i := 0; i < edits && len(out) > 1; i++ {
		switch rng.Intn(3) {
		case 0: // flip a run of bytes
			at := rng.Intn(len(out))
			n := rng.Intn(16) + 1
			for j := at; j < at+n && j < len(out); j++ {
				out[j] ^= byte(rng.Intn(255) + 1)
			}
		case 1: // insert
			at := rng.Intn(len(out))
			ins := randBytes(rng, rng.Intn(24)+1)
			out = append(out[:at], append(ins, out[at:]...)...)
		default: // delete
			at := rng.Intn(len(out))
			n := rng.Intn(24) + 1
			if at+n > len(out) {
				n = len(out) - at
			}
			out = append(out[:at], out[at+n:]...)
		}
	}
	if len(out) == 0 {
		out = []byte{1}
	}
	return out
}

func TestDiffValidation(t *testing.T) {
	if _, err := Diff([]byte{1}, nil, 0); err == nil {
		t.Error("empty new image accepted")
	}
	if _, err := Diff([]byte{1}, []byte{1}, 2); err == nil {
		t.Error("tiny block size accepted")
	}
	if _, err := Diff([]byte{1}, []byte{1}, 1<<13); err == nil {
		t.Error("huge block size accepted")
	}
}

func TestIdenticalImagesProduceTinyPatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	old := randBytes(rng, 8192)
	patch, err := Diff(old, old, DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Apply(old, patch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, old) {
		t.Fatal("identity patch does not reproduce the image")
	}
	st, err := Inspect(patch)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ratio() > 0.02 {
		t.Fatalf("identity patch ratio %.3f, want < 2%%", st.Ratio())
	}
	if st.LiteralBytes != 0 {
		t.Fatalf("identity patch carries %d literal bytes", st.LiteralBytes)
	}
}

func TestSmallEditSmallPatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	old := randBytes(rng, 16384)
	newData := append([]byte(nil), old...)
	copy(newData[5000:], []byte("PATCHED CONSTANT"))
	patch, err := Diff(old, newData, DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Apply(old, patch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newData) {
		t.Fatal("patched image mismatch")
	}
	st, _ := Inspect(patch)
	if st.Ratio() > 0.05 {
		t.Fatalf("single-edit patch ratio %.3f, want < 5%%", st.Ratio())
	}
}

func TestUnrelatedImagesStillRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	old := randBytes(rng, 4096)
	newData := randBytes(rng, 5000)
	patch, err := Diff(old, newData, DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Apply(old, patch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newData) {
		t.Fatal("unrelated-image patch mismatch")
	}
	st, _ := Inspect(patch)
	if st.Ratio() < 1.0 {
		t.Logf("note: unrelated patch ratio %.3f (chance matches)", st.Ratio())
	}
}

func TestApplyRejectsCorruptPatches(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	old := randBytes(rng, 2048)
	newData := mutate(rng, old, 5)
	patch, err := Diff(old, newData, DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(old, patch[:5]); err == nil {
		t.Error("truncated patch accepted")
	}
	bad := append([]byte(nil), patch...)
	bad[0] = 'X'
	if _, err := Apply(old, bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte(nil), patch...)
	bad[2] = 9
	if _, err := Apply(old, bad); err == nil {
		t.Error("bad version accepted")
	}
	// Wrong base image size.
	if _, err := Apply(old[:100], patch); err == nil {
		t.Error("wrong base accepted")
	}
	// Drop the end opcode.
	if _, err := Apply(old, patch[:len(patch)-1]); err == nil {
		t.Error("endless patch accepted")
	}
	// Fuzz the body: must error or produce exactly newData-sized output.
	for i := 0; i < 300; i++ {
		f := append([]byte(nil), patch...)
		f[13+rng.Intn(len(f)-13)] ^= byte(rng.Intn(255) + 1)
		got, err := Apply(old, f)
		if err == nil && len(got) != len(newData) {
			t.Fatal("corrupt patch produced wrong-size image without error")
		}
	}
}

func TestInspect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	old := randBytes(rng, 4096)
	newData := mutate(rng, old, 3)
	patch, err := Diff(old, newData, 64)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Inspect(patch)
	if err != nil {
		t.Fatal(err)
	}
	if st.BlockSize != 64 || st.OldSize != 4096 || st.NewSize != len(newData) || st.PatchSize != len(patch) {
		t.Fatalf("stats = %+v", st)
	}
	if st.CopiedBytes+st.LiteralBytes < st.NewSize {
		t.Fatalf("stats do not cover the image: %+v", st)
	}
	if _, err := Inspect([]byte{1, 2}); err == nil {
		t.Error("Inspect accepted junk")
	}
	if (Stats{}).Ratio() != 0 {
		t.Error("zero stats ratio != 0")
	}
}

// Property: Diff/Apply round-trips for random bases and random
// mutations at various block sizes.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, sizeRaw uint16, editsRaw, bsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(sizeRaw)%8000 + 1
		old := randBytes(rng, size)
		newData := mutate(rng, old, int(editsRaw)%20)
		blockSize := []int{8, 16, 32, 64, 128}[int(bsRaw)%5]
		patch, err := Diff(old, newData, blockSize)
		if err != nil {
			return false
		}
		got, err := Apply(old, patch)
		if err != nil {
			return false
		}
		return bytes.Equal(got, newData)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: patches of lightly-edited images are much smaller than the
// image itself.
func TestQuickSmallEditsCompressWell(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		old := randBytes(rng, 16384)
		newData := append([]byte(nil), old...)
		// Three 8-byte edits.
		for i := 0; i < 3; i++ {
			at := rng.Intn(len(newData) - 8)
			rng.Read(newData[at : at+8])
		}
		patch, err := Diff(old, newData, DefaultBlockSize)
		if err != nil {
			return false
		}
		st, err := Inspect(patch)
		if err != nil {
			return false
		}
		return st.Ratio() < 0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDiff16K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	old := randBytes(rng, 16384)
	newData := mutate(rng, old, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Diff(old, newData, DefaultBlockSize); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApply16K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	old := randBytes(rng, 16384)
	newData := mutate(rng, old, 10)
	patch, err := Diff(old, newData, DefaultBlockSize)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Apply(old, patch); err != nil {
			b.Fatal(err)
		}
	}
}
