// Package imgdiff provides block-level binary diffs between program
// images. The paper positions MNP as complementary to difference-based
// reprogramming (Reijers & Langendoen): instead of the full new image,
// the network disseminates a small patch that each mote applies to the
// version it already runs. A patch produced here is ordinary data —
// packetize it with the image package and push it with MNP.
//
// The format is a compact opcode stream over fixed-size blocks of the
// old image:
//
//	header:  magic "MD" | version 1 | blockSize u16 | oldSize u32 | newSize u32
//	opcodes: opCopy 0x01 | firstBlock u32 | blockCount u16
//	         opData 0x02 | length u16 | raw bytes
//	         opEnd  0x03
package imgdiff

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

const (
	magic0  = 'M'
	magic1  = 'D'
	version = 1

	opCopy = 0x01
	opData = 0x02
	opEnd  = 0x03

	// DefaultBlockSize balances patch granularity against the hash
	// table size on typical mote images.
	DefaultBlockSize = 32

	maxBlockSize = 1 << 12
	maxDataRun   = 1<<16 - 1
	maxCopyRun   = 1<<16 - 1
)

// Diff computes a patch transforming old into new, matching on
// blockSize-aligned blocks of old (DefaultBlockSize when 0).
func Diff(oldData, newData []byte, blockSize int) ([]byte, error) {
	if blockSize == 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize < 4 || blockSize > maxBlockSize {
		return nil, fmt.Errorf("imgdiff: block size %d out of range [4, %d]", blockSize, maxBlockSize)
	}
	if len(newData) == 0 {
		return nil, fmt.Errorf("imgdiff: empty new image")
	}

	// Index the old image's blocks by content.
	index := make(map[string]int)
	for i := 0; i+blockSize <= len(oldData); i += blockSize {
		key := string(oldData[i : i+blockSize])
		if _, ok := index[key]; !ok {
			index[key] = i / blockSize
		}
	}

	out := make([]byte, 0, len(newData)/4+16)
	out = append(out, magic0, magic1, version)
	out = binary.BigEndian.AppendUint16(out, uint16(blockSize))
	out = binary.BigEndian.AppendUint32(out, uint32(len(oldData)))
	out = binary.BigEndian.AppendUint32(out, uint32(len(newData)))

	var literal []byte
	flushLiteral := func() {
		for len(literal) > 0 {
			n := len(literal)
			if n > maxDataRun {
				n = maxDataRun
			}
			out = append(out, opData)
			out = binary.BigEndian.AppendUint16(out, uint16(n))
			out = append(out, literal[:n]...)
			literal = literal[n:]
		}
	}

	pos := 0
	for pos < len(newData) {
		if pos+blockSize <= len(newData) {
			if blockIdx, ok := index[string(newData[pos:pos+blockSize])]; ok {
				// Extend the run over consecutive old blocks.
				run := 1
				for run < maxCopyRun &&
					pos+(run+1)*blockSize <= len(newData) &&
					(blockIdx+run+1)*blockSize <= len(oldData) &&
					bytes.Equal(
						newData[pos+run*blockSize:pos+(run+1)*blockSize],
						oldData[(blockIdx+run)*blockSize:(blockIdx+run+1)*blockSize]) {
					run++
				}
				flushLiteral()
				out = append(out, opCopy)
				out = binary.BigEndian.AppendUint32(out, uint32(blockIdx))
				out = binary.BigEndian.AppendUint16(out, uint16(run))
				pos += run * blockSize
				continue
			}
		}
		literal = append(literal, newData[pos])
		pos++
	}
	flushLiteral()
	out = append(out, opEnd)
	return out, nil
}

// Apply reconstructs the new image from the old image and a patch.
func Apply(oldData, patch []byte) ([]byte, error) {
	const headerLen = 13
	if len(patch) < headerLen+1 {
		return nil, fmt.Errorf("imgdiff: patch too short (%d bytes)", len(patch))
	}
	if patch[0] != magic0 || patch[1] != magic1 {
		return nil, fmt.Errorf("imgdiff: bad magic")
	}
	if patch[2] != version {
		return nil, fmt.Errorf("imgdiff: unsupported version %d", patch[2])
	}
	blockSize := int(binary.BigEndian.Uint16(patch[3:]))
	if blockSize < 4 || blockSize > maxBlockSize {
		return nil, fmt.Errorf("imgdiff: bad block size %d", blockSize)
	}
	oldSize := int(binary.BigEndian.Uint32(patch[5:]))
	newSize := int(binary.BigEndian.Uint32(patch[9:]))
	if oldSize != len(oldData) {
		return nil, fmt.Errorf("imgdiff: patch made for a %d-byte base, have %d bytes", oldSize, len(oldData))
	}

	out := make([]byte, 0, newSize)
	pos := headerLen
	for {
		if pos >= len(patch) {
			return nil, fmt.Errorf("imgdiff: truncated patch (no end opcode)")
		}
		op := patch[pos]
		pos++
		switch op {
		case opCopy:
			if pos+6 > len(patch) {
				return nil, fmt.Errorf("imgdiff: truncated copy opcode")
			}
			first := int(binary.BigEndian.Uint32(patch[pos:]))
			count := int(binary.BigEndian.Uint16(patch[pos+4:]))
			pos += 6
			lo := first * blockSize
			hi := (first + count) * blockSize
			if count == 0 || hi > len(oldData) || lo < 0 {
				return nil, fmt.Errorf("imgdiff: copy [%d, %d) outside the base image", lo, hi)
			}
			out = append(out, oldData[lo:hi]...)
		case opData:
			if pos+2 > len(patch) {
				return nil, fmt.Errorf("imgdiff: truncated data opcode")
			}
			n := int(binary.BigEndian.Uint16(patch[pos:]))
			pos += 2
			if n == 0 || pos+n > len(patch) {
				return nil, fmt.Errorf("imgdiff: bad data run of %d bytes", n)
			}
			out = append(out, patch[pos:pos+n]...)
			pos += n
		case opEnd:
			if len(out) != newSize {
				return nil, fmt.Errorf("imgdiff: reconstructed %d bytes, header says %d", len(out), newSize)
			}
			return out, nil
		default:
			return nil, fmt.Errorf("imgdiff: unknown opcode %#02x", op)
		}
	}
}

// Stats summarizes a patch's composition.
type Stats struct {
	BlockSize    int
	OldSize      int
	NewSize      int
	PatchSize    int
	CopyOps      int
	CopiedBytes  int
	DataOps      int
	LiteralBytes int
}

// Ratio returns patch size as a fraction of the new image size.
func (s Stats) Ratio() float64 {
	if s.NewSize == 0 {
		return 0
	}
	return float64(s.PatchSize) / float64(s.NewSize)
}

// Inspect parses a patch and reports its composition.
func Inspect(patch []byte) (Stats, error) {
	const headerLen = 13
	if len(patch) < headerLen+1 || patch[0] != magic0 || patch[1] != magic1 {
		return Stats{}, fmt.Errorf("imgdiff: not a patch")
	}
	s := Stats{
		BlockSize: int(binary.BigEndian.Uint16(patch[3:])),
		OldSize:   int(binary.BigEndian.Uint32(patch[5:])),
		NewSize:   int(binary.BigEndian.Uint32(patch[9:])),
		PatchSize: len(patch),
	}
	pos := headerLen
	for pos < len(patch) {
		op := patch[pos]
		pos++
		switch op {
		case opCopy:
			if pos+6 > len(patch) {
				return Stats{}, fmt.Errorf("imgdiff: truncated copy opcode")
			}
			count := int(binary.BigEndian.Uint16(patch[pos+4:]))
			s.CopyOps++
			s.CopiedBytes += count * s.BlockSize
			pos += 6
		case opData:
			if pos+2 > len(patch) {
				return Stats{}, fmt.Errorf("imgdiff: truncated data opcode")
			}
			n := int(binary.BigEndian.Uint16(patch[pos:]))
			s.DataOps++
			s.LiteralBytes += n
			pos += 2 + n
		case opEnd:
			return s, nil
		default:
			return Stats{}, fmt.Errorf("imgdiff: unknown opcode %#02x", op)
		}
	}
	return Stats{}, fmt.Errorf("imgdiff: truncated patch")
}
