// Package gossip implements a GCP-style gossip code-propagation
// protocol (Busnel et al., "GCP: gossip-based code propagation for
// large-scale mobile wireless sensor networks"): every node
// periodically beacons how far its stored image extends, and any node
// that overhears a beacon lagging its own state pushes the missing
// segment's packets — no sender election, no request round trips, no
// per-neighbor state that a topology change could strand. That makes
// the exchange memoryless in exactly the way a mobile network needs:
// when a neighborhood dissolves and reforms, the next beacon pair
// re-establishes who serves whom from scratch.
//
// The push follows the rumor-mongering pattern: hearing a lagging
// beacon "infects" a holder, which keeps sweeping the needed segment's
// packets round-robin (paced by the density estimate shared with rlnc,
// so ten co-located servers aggregate to roughly one frame per
// interval); the infection "dies" when no lagging beacon has refreshed
// it for DemandTTL — GCP's infect-and-die counter expressed in time.
// Segments pipeline strictly in order and every EEPROM slot is written
// once, so the MNP storage invariants hold unchanged; against MNP the
// protocol trades a broadcast premium (duplicates from blind pushes)
// for having no coordination state to lose under churn.
package gossip

import (
	"fmt"
	"time"

	"mnp/internal/image"
	"mnp/internal/node"
	"mnp/internal/packet"
)

// Timer IDs.
const (
	timerAdvertise node.TimerID = iota + 1
	timerData
)

// Config tunes the protocol.
type Config struct {
	// Base marks the (single) source; Image is required there.
	Base  bool
	Image *image.Image
	// AdvInterval is the base beacon period; each beacon adds a uniform
	// delay in [0, AdvJitter) to desynchronize neighbors.
	AdvInterval time.Duration
	AdvJitter   time.Duration
	// DataInterval paces the push sweep while an infection is live.
	DataInterval time.Duration
	// DemandTTL is how long one lagging beacon keeps this node pushing
	// — the infect-and-die horizon.
	DemandTTL time.Duration
}

// DefaultConfig returns the parameters used by the experiments.
func DefaultConfig() Config {
	return Config{
		AdvInterval:  2 * time.Second,
		AdvJitter:    500 * time.Millisecond,
		DataInterval: 30 * time.Millisecond,
		DemandTTL:    5 * time.Second,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.AdvInterval == 0 {
		c.AdvInterval = d.AdvInterval
	}
	if c.AdvJitter == 0 {
		c.AdvJitter = d.AdvJitter
	}
	if c.DataInterval == 0 {
		c.DataInterval = d.DataInterval
	}
	if c.DemandTTL == 0 {
		c.DemandTTL = d.DemandTTL
	}
	return c
}

// Gossip is one node's protocol instance.
type Gossip struct {
	cfg Config
	rt  node.Runtime

	// Image geometry, RAM-resident: the base takes it from the image,
	// everyone else learns it from the first beacon heard (and
	// re-learns it the same way after a reboot).
	known      bool
	programID  uint8
	segments   int
	nominal    int // packets per full segment
	total      int // packets in the whole image
	payloadLen int // bytes per data payload
	tail       int // bytes in the image's final packet

	completeSegs int    // segments fully stored
	got          []bool // receipt map of segment completeSegs+1
	have         int    // packets stored of segment completeSegs+1

	// Sender side: the infection. demandSeg is the lowest segment a
	// lagging neighbor needs, cursor the round-robin position of the
	// sweep (started at a random offset so concurrent servers
	// interleave instead of duplicating each other's packets).
	demandSeg   int // 0 = not infected
	demandUntil time.Duration
	cursor      int

	// peers caches the last beacon heard per neighbor, feeding the
	// server-density estimate that scales the push pace.
	peers map[packet.NodeID]peerInfo
}

type peerInfo struct {
	seen time.Duration
	segs int
}

var _ node.Protocol = (*Gossip)(nil)

// New returns a Gossip instance.
func New(cfg Config) *Gossip {
	return &Gossip{cfg: cfg.withDefaults()}
}

// Init implements node.Protocol.
func (g *Gossip) Init(rt node.Runtime) {
	g.rt = rt
	rt.RadioOn() // beacon exchange needs everyone listening
	if !g.cfg.Base {
		return // geometry arrives with the first beacon
	}
	im := g.cfg.Image
	if im == nil {
		panic("gossip: base station requires an image")
	}
	g.known = true
	g.programID = im.ProgramID()
	g.segments = im.Segments()
	g.nominal = im.SegmentPackets()
	g.total = im.TotalPackets()
	g.payloadLen = im.PayloadSize()
	g.tail = im.Size() - (g.total-1)*g.payloadLen
	for seq := 0; seq < g.total; seq++ {
		seg, pkt := seq/g.nominal+1, seq%g.nominal
		if rt.HasPacket(seg, pkt) {
			continue // rebooted base: EEPROM survived
		}
		payload, _ := im.FlatPayload(seq)
		if err := rt.Store(seg, pkt, payload); err != nil {
			panic(fmt.Sprintf("gossip: preloading base image: %v", err))
		}
	}
	g.completeSegs = g.segments
	rt.Complete()
	g.scheduleAdv()
}

// packetsIn returns the packet count of a segment.
func (g *Gossip) packetsIn(seg int) int {
	if seg == g.segments {
		return g.total - (g.segments-1)*g.nominal
	}
	return g.nominal
}

// OnTimer implements node.Protocol.
func (g *Gossip) OnTimer(id node.TimerID) {
	switch id {
	case timerAdvertise:
		g.advTick()
	case timerData:
		g.dataTick()
	}
}

// OnPacket implements node.Protocol.
func (g *Gossip) OnPacket(p packet.Packet, from packet.NodeID) {
	switch pkt := p.(type) {
	case *packet.GossipAdv:
		g.onAdv(pkt)
	case *packet.GossipData:
		g.onData(pkt)
	}
}

// --- beacons / infection ---

func (g *Gossip) scheduleAdv() {
	d := g.cfg.AdvInterval + time.Duration(g.rt.Rand().Int63n(int64(g.cfg.AdvJitter)))
	g.rt.SetTimer(timerAdvertise, d)
}

func (g *Gossip) advTick() {
	if !g.known {
		return
	}
	_ = g.rt.Send(&packet.GossipAdv{
		Src:          g.rt.ID(),
		ProgramID:    g.programID,
		Segments:     uint8(g.segments),
		SegPackets:   uint8(g.nominal),
		TotalPackets: uint16(g.total),
		PayloadLen:   uint8(g.payloadLen),
		Tail:         uint8(g.tail),
		CompleteSegs: uint8(g.completeSegs),
		Have:         uint8(g.have),
	})
	g.scheduleAdv()
}

// learn adopts the image geometry from the first beacon heard and
// recovers state that survived in EEPROM across a reboot: complete
// segments, plus the partial receipt map of the segment in progress
// (unlike rlnc, gossip stores each packet on reception, so partial
// segments persist too).
func (g *Gossip) learn(a *packet.GossipAdv) {
	if a.Segments == 0 || a.SegPackets == 0 || a.TotalPackets == 0 || a.PayloadLen == 0 {
		return
	}
	g.known = true
	g.programID = a.ProgramID
	g.segments = int(a.Segments)
	g.nominal = int(a.SegPackets)
	g.total = int(a.TotalPackets)
	g.payloadLen = int(a.PayloadLen)
	g.tail = int(a.Tail)
	for s := 1; s <= g.segments; s++ {
		full := true
		for i, k := 0, g.packetsIn(s); i < k; i++ {
			if !g.rt.HasPacket(s, i) {
				full = false
				break
			}
		}
		if !full {
			break
		}
		g.completeSegs = s
	}
	if g.completeSegs < g.segments {
		next := g.completeSegs + 1
		g.got = make([]bool, g.packetsIn(next))
		g.have = 0
		for i := range g.got {
			if g.rt.HasPacket(next, i) {
				g.got[i] = true
				g.have++
			}
		}
	} else {
		g.rt.Complete()
	}
	g.scheduleAdv()
}

// serverCount estimates how many nodes (self included) currently hold
// segment seg in this neighborhood, from recently heard beacons. Stale
// entries are pruned as a side effect.
func (g *Gossip) serverCount(seg int) int {
	horizon := 2 * (g.cfg.AdvInterval + g.cfg.AdvJitter)
	now := g.rt.Now()
	n := 1
	for id, p := range g.peers {
		if now-p.seen > horizon {
			delete(g.peers, id)
			continue
		}
		if p.segs >= seg {
			n++
		}
	}
	return n
}

// dataPace is the inter-frame spacing while pushing: the base interval
// scaled by the number of co-located servers, plus jitter so equal
// estimates do not lockstep.
func (g *Gossip) dataPace() time.Duration {
	servers := g.serverCount(g.demandSeg)
	base := time.Duration(servers) * g.cfg.DataInterval
	return base + time.Duration(g.rt.Rand().Int63n(int64(g.cfg.DataInterval)))
}

func (g *Gossip) onAdv(a *packet.GossipAdv) {
	if !g.known {
		g.learn(a)
	}
	if !g.known || a.ProgramID != g.programID {
		return
	}
	if g.peers == nil {
		g.peers = make(map[packet.NodeID]peerInfo)
	}
	g.peers[a.Src] = peerInfo{seen: g.rt.Now(), segs: int(a.CompleteSegs)}
	if int(a.CompleteSegs) >= g.completeSegs {
		return // the neighbor is not behind us; nothing to push
	}
	// Infection: the neighbor's next segment is one we hold. Lower
	// segments preempt (the slowest neighbor pipelines first); beacons
	// needing a higher segment do not refresh the TTL, so a mixed
	// neighborhood cannot pin a server on its slowest segment forever.
	need := int(a.CompleteSegs) + 1
	until := g.rt.Now() + g.cfg.DemandTTL
	switch {
	case g.demandSeg == 0 || need < g.demandSeg:
		g.demandSeg = need
		g.demandUntil = until
		g.cursor = int(g.rt.Rand().Int63n(int64(g.packetsIn(need))))
	case need == g.demandSeg && until > g.demandUntil:
		g.demandUntil = until
	}
	if !g.rt.TimerPending(timerData) {
		g.rt.SetTimer(timerData, time.Duration(g.rt.Rand().Int63n(int64(4*g.cfg.DataInterval))))
	}
}

// --- push side ---

func (g *Gossip) dataTick() {
	if g.demandSeg == 0 || g.demandSeg > g.completeSegs || g.rt.Now() >= g.demandUntil {
		g.demandSeg = 0 // the infection died
		return
	}
	g.pushNext(g.demandSeg)
	g.rt.SetTimer(timerData, g.dataPace())
}

// pushNext broadcasts the sweep's next packet of seg.
func (g *Gossip) pushNext(seg int) {
	k := g.packetsIn(seg)
	if g.cursor >= k {
		g.cursor = 0
	}
	payload := g.rt.Load(seg, g.cursor)
	if payload == nil {
		return // only complete segments are served
	}
	_ = g.rt.Send(&packet.GossipData{
		Src:       g.rt.ID(),
		ProgramID: g.programID,
		Seg:       uint8(seg),
		Pkt:       uint8(g.cursor + 1),
		Payload:   payload,
	})
	g.cursor++
}

// --- receive side ---

func (g *Gossip) onData(d *packet.GossipData) {
	if !g.known || d.ProgramID != g.programID {
		return // geometry arrives with beacons
	}
	seg := int(d.Seg)
	if seg <= g.completeSegs {
		// Someone else is pushing a segment we already hold; if we are
		// pushing it too, back off to thin duplicate coverage.
		if seg == g.demandSeg && g.rt.TimerPending(timerData) {
			d := g.dataPace() + time.Duration(g.rt.Rand().Int63n(int64(2*g.cfg.DataInterval)))
			g.rt.SetTimer(timerData, d)
		}
		return
	}
	if seg != g.completeSegs+1 {
		return // segments pipeline strictly in order
	}
	i := int(d.Pkt) - 1
	k := g.packetsIn(seg)
	if i < 0 || i >= k {
		return
	}
	if g.got == nil {
		g.got = make([]bool, k)
	}
	if g.got[i] || g.rt.HasPacket(seg, i) {
		return // duplicate rumor
	}
	if err := g.rt.Store(seg, i, d.Payload); err != nil {
		return // flash fault: the sweep will bring the packet again
	}
	g.got[i] = true
	g.have++
	if g.have == k {
		g.completeSegment(seg)
	}
}

// completeSegment advances the pipeline after the last packet of the
// in-progress segment is stored.
func (g *Gossip) completeSegment(seg int) {
	g.completeSegs = seg
	g.got = nil
	g.have = 0
	g.rt.Event(node.Event{Kind: node.EventGotSegment, Seg: seg})
	if g.completeSegs == g.segments {
		g.rt.Complete()
	}
	// Beacon the new state promptly so the next hop's pipeline starts
	// without waiting out a full beacon period.
	g.rt.SetTimer(timerAdvertise, time.Duration(g.rt.Rand().Int63n(int64(g.cfg.AdvJitter))))
}
