package gossip

import (
	"mnp/internal/node"
	"mnp/internal/protoreg"
)

// ApplyOptions overlays declarative option strings onto a Gossip
// configuration; unknown keys or malformed values are errors.
func ApplyOptions(cfg *Config, options map[string]string) error {
	o := protoreg.NewOpts(options)
	o.Duration("adv_interval", &cfg.AdvInterval)
	o.Duration("adv_jitter", &cfg.AdvJitter)
	o.Duration("data_interval", &cfg.DataInterval)
	o.Duration("demand_ttl", &cfg.DemandTTL)
	return o.Err()
}

func init() {
	protoreg.Register("gossip", func(b protoreg.Build) (node.Protocol, error) {
		cfg := DefaultConfig()
		if b.Base {
			cfg.Base = true
			cfg.Image = b.Image
		}
		if err := ApplyOptions(&cfg, b.Options); err != nil {
			return nil, err
		}
		return New(cfg), nil
	})
}
