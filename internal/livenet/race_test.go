package livenet

import (
	"sync"
	"testing"
	"time"

	"mnp/internal/image"
	"mnp/internal/topology"
)

// TestHubLossModelRace is the regression test for the hub-level RNG:
// the loss model used to share one generator across every delivery,
// which is exactly the kind of state a goroutine-per-mote runtime can
// corrupt. The per-edge generators are owned by the hub goroutine, so
// a busy multihop fleet plus aggressive concurrent polling of the
// network's public surface must come up clean under -race. (Run with
// `go test -race ./internal/livenet/`; without -race it still
// exercises the same paths.)
func TestHubLossModelRace(t *testing.T) {
	img, err := image.Random(1, 1, 4, image.WithSegmentPackets(16), image.WithPayloadSize(8))
	if err != nil {
		t.Fatal(err)
	}
	l, err := topology.Line(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	// A real (lossy) channel, so linkSucceeds rolls its generators on
	// every delivery instead of short-circuiting.
	n, err := New(Config{Layout: l, Radio: cleanRadio(), TimeScale: 400, Seed: 99}, mnpFactory(t, img))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()

	// Hammer the concurrent-safe read-side API from several goroutines
	// while the fleet disseminates: this is what a monitoring loop does
	// in production, and what trips the detector if any hub state is
	// unsynchronized. (EEPROM stores are deliberately excluded — they
	// are documented as post-Stop only.)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					n.CompletedCount()
				}
			}
		}()
	}
	ok := n.WaitAllComplete(30 * time.Second)
	close(done)
	wg.Wait()
	if !ok {
		t.Fatalf("dissemination incomplete under polling load: %d/%d",
			n.CompletedCount(), l.N())
	}
	data, err := img.Reassemble(func(seg, pkt int) []byte { return n.Store(4).Read(seg, pkt) })
	if err != nil {
		t.Fatal(err)
	}
	if !img.Verify(data) {
		t.Fatal("image mismatch at the far end of the line")
	}
}

// TestEdgeRandDistinctStreams checks the seeding: distinct directed
// edges get distinct generators (including the two directions of the
// same link), and the same edge always returns the same generator.
func TestEdgeRandDistinctStreams(t *testing.T) {
	l, err := topology.Line(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	img, err := image.Random(1, 1, 1, image.WithSegmentPackets(16), image.WithPayloadSize(8))
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Layout: l, Radio: cleanRadio(), Seed: 7}, mnpFactory(t, img))
	if err != nil {
		t.Fatal(err)
	}
	// The generators are hub-owned; park the hub before touching them.
	n.Stop()
	ab := n.edgeRand(0, 1)
	ba := n.edgeRand(1, 0)
	ac := n.edgeRand(0, 2)
	if ab == ba || ab == ac || ba == ac {
		t.Fatal("edges share a generator")
	}
	if again := n.edgeRand(0, 1); again != ab {
		t.Fatal("same edge returned a different generator")
	}
	// Streams should actually diverge, not just be distinct objects.
	same := true
	for i := 0; i < 8; i++ {
		if ab.Int63() != ba.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("forward and reverse edges produce identical streams")
	}
}
