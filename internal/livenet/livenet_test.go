package livenet

import (
	"testing"
	"time"

	"mnp/internal/core"
	"mnp/internal/deluge"
	"mnp/internal/image"
	"mnp/internal/node"
	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/topology"
)

func cleanRadio() radio.Params {
	p := radio.DefaultParams()
	p.BERFloor = 1e-9
	p.BERCeil = 1e-8
	p.AsymSigma = 0
	return p
}

func mnpFactory(t *testing.T, img *image.Image) func(id packet.NodeID) node.Protocol {
	t.Helper()
	return func(id packet.NodeID) node.Protocol {
		cfg := core.DefaultConfig()
		if id == 0 {
			cfg.Base = true
			cfg.Image = img
		}
		return core.New(cfg)
	}
}

func TestNewValidation(t *testing.T) {
	l, _ := topology.Line(2, 10)
	f := func(packet.NodeID) node.Protocol { return core.New(core.DefaultConfig()) }
	if _, err := New(Config{Radio: cleanRadio()}, f); err == nil {
		t.Error("nil layout accepted")
	}
	if _, err := New(Config{Layout: l, Radio: cleanRadio()}, nil); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := New(Config{Layout: l, Radio: cleanRadio(), TimeScale: 0.5}, f); err == nil {
		t.Error("sub-1 time scale accepted")
	}
	if _, err := New(Config{Layout: l, Radio: cleanRadio(), Power: 4242}, f); err == nil {
		t.Error("unknown power accepted")
	}
}

func TestLiveDisseminationTwoNodes(t *testing.T) {
	img, err := image.Random(1, 1, 3, image.WithSegmentPackets(16), image.WithPayloadSize(8))
	if err != nil {
		t.Fatal(err)
	}
	l, err := topology.Line(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Layout: l, Radio: cleanRadio(), TimeScale: 400, Seed: 1}, mnpFactory(t, img))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	if !n.WaitAllComplete(20 * time.Second) {
		t.Fatalf("live dissemination incomplete: %d/2", n.CompletedCount())
	}
	data, err := img.Reassemble(func(seg, pkt int) []byte { return n.Store(1).Read(seg, pkt) })
	if err != nil {
		t.Fatal(err)
	}
	if !img.Verify(data) {
		t.Fatal("image mismatch over live runtime")
	}
}

func TestLiveDisseminationMultihop(t *testing.T) {
	img, err := image.Random(1, 1, 5, image.WithSegmentPackets(16), image.WithPayloadSize(8))
	if err != nil {
		t.Fatal(err)
	}
	// 1×4 line at 20 ft spacing: multihop at PowerSim range.
	l, err := topology.Line(4, 20)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Layout: l, Radio: cleanRadio(), TimeScale: 400, Seed: 2}, mnpFactory(t, img))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	if !n.WaitAllComplete(40 * time.Second) {
		t.Fatalf("live multihop incomplete: %d/4", n.CompletedCount())
	}
	for i := 1; i < 4; i++ {
		data, err := img.Reassemble(func(seg, pkt int) []byte { return n.Store(packet.NodeID(i)).Read(seg, pkt) })
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if !img.Verify(data) {
			t.Fatalf("node %d image mismatch", i)
		}
		if n.Store(packet.NodeID(i)).MaxWriteCount() > 1 {
			t.Fatalf("node %d rewrote EEPROM", i)
		}
	}
}

func TestLiveDelugeDissemination(t *testing.T) {
	// The live runtime is protocol-agnostic: the Deluge baseline runs
	// on goroutines too.
	raw := make([]byte, 96*8) // 96 packets of 8 bytes = 2 pages of 48
	for i := range raw {
		raw[i] = byte(i * 13)
	}
	img, err := image.New(1, raw, image.WithPayloadSize(8))
	if err != nil {
		t.Fatal(err)
	}
	l, err := topology.Line(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Layout: l, Radio: cleanRadio(), TimeScale: 400, Seed: 6}, func(id packet.NodeID) node.Protocol {
		cfg := deluge.DefaultConfig()
		if id == 0 {
			cfg.Base = true
			cfg.Image = img
		}
		return deluge.New(cfg)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	if !n.WaitAllComplete(30 * time.Second) {
		t.Fatalf("live Deluge incomplete: %d/3", n.CompletedCount())
	}
}

func TestBatteryAssignment(t *testing.T) {
	img, err := image.Random(1, 1, 8, image.WithSegmentPackets(8), image.WithPayloadSize(8))
	if err != nil {
		t.Fatal(err)
	}
	l, err := topology.Line(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{
		Layout: l, Radio: cleanRadio(), TimeScale: 400, Seed: 7,
		Battery: func(id packet.NodeID) float64 {
			if id == 1 {
				return 0.2
			}
			return 1.0
		},
	}, mnpFactory(t, img))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	if got := n.nodes[1].Battery(); got != 0.2 {
		t.Fatalf("battery = %v", got)
	}
}

func TestLiveRuntimeSurface(t *testing.T) {
	img, err := image.Random(1, 1, 8, image.WithSegmentPackets(8), image.WithPayloadSize(8))
	if err != nil {
		t.Fatal(err)
	}
	l, err := topology.Line(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Layout: l, Radio: cleanRadio(), TimeScale: 400, Seed: 8}, mnpFactory(t, img))
	if err != nil {
		t.Fatal(err)
	}
	// Stop the goroutines first: the runtime surface below is owned by
	// the node loop while it runs.
	n.WaitAllComplete(10 * time.Second)
	n.Stop()
	ln := n.nodes[1]
	if ln.ID() != 1 {
		t.Fatal("ID wrong")
	}
	if ln.Now() < 0 {
		t.Fatal("negative Now")
	}
	ln.SetTxPower(radio.PowerFull)
	if ln.TxPower() != radio.PowerFull {
		t.Fatal("power not kept")
	}
	ln.Event(node.Event{Kind: node.EventGotSegment}) // no-op must not panic
	// Storage surface: out-of-band writes are observable through the
	// same runtime view. (The protocol goroutine also writes here, but
	// a disjoint segment avoids interference.)
	if ln.HasPacket(200, 0) {
		t.Fatal("phantom packet")
	}
	if err := ln.Store(200, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if !ln.HasPacket(200, 0) || ln.Load(200, 0) == nil {
		t.Fatal("store surface broken")
	}
	// Send with the radio off errors; IsRadioOn reflects state.
	offNode := &liveNode{id: 9, net: n}
	if offNode.IsRadioOn() {
		t.Fatal("fresh node radio on")
	}
	if err := offNode.Send(&packet.StartSignal{Src: 9, ProgramID: 1}); err == nil {
		t.Fatal("radio-off send accepted")
	}
	if !ln.TimerPending(0) && ln.TimerPending(0) {
		t.Fatal("unreachable")
	}
}

func TestStopIsIdempotentAndTerminates(t *testing.T) {
	img, err := image.Random(1, 1, 7, image.WithSegmentPackets(8), image.WithPayloadSize(8))
	if err != nil {
		t.Fatal(err)
	}
	l, err := topology.Grid(2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Layout: l, Radio: cleanRadio(), TimeScale: 400, Seed: 3}, mnpFactory(t, img))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	n.Stop()
	n.Stop() // second call must not panic or hang
}

// timerProto is a minimal protocol that marks itself complete when a
// fixed virtual-time timer fires — enough to observe time compression
// without a full dissemination.
type timerProto struct {
	rt      node.Runtime
	virtual time.Duration
}

func (p *timerProto) Init(rt node.Runtime) {
	p.rt = rt
	rt.RadioOn()
	rt.SetTimer(1, p.virtual)
}
func (p *timerProto) OnPacket(packet.Packet, packet.NodeID) {}
func (p *timerProto) OnTimer(id node.TimerID) {
	if id == 1 {
		p.rt.Complete()
	}
}

// TestNonDefaultTimeScale pins the two contracts of a non-default
// TimeScale: a zero value falls back to 200, and an explicit value
// compresses wall time, so a 30-second virtual timer at scale 600
// fires in ~50 ms instead of 30 s.
func TestNonDefaultTimeScale(t *testing.T) {
	l, err := topology.Line(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(packet.NodeID) node.Protocol {
		return &timerProto{virtual: 30 * time.Second}
	}

	n, err := New(Config{Layout: l, Radio: cleanRadio()}, factory)
	if err != nil {
		t.Fatal(err)
	}
	if n.cfg.TimeScale != 200 {
		n.Stop()
		t.Fatalf("default TimeScale = %v, want 200", n.cfg.TimeScale)
	}
	n.Stop()

	n, err = New(Config{Layout: l, Radio: cleanRadio(), TimeScale: 600}, factory)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	begin := time.Now()
	// Generous bound against a loaded CI box, but far below the 30 s
	// an uncompressed timer would take.
	if !n.WaitAllComplete(10 * time.Second) {
		t.Fatalf("virtual timers did not fire: %d/2 complete", n.CompletedCount())
	}
	if wall := time.Since(begin); wall >= 30*time.Second {
		t.Fatalf("completion took %v wall time; TimeScale not applied", wall)
	}
	// Virtual clocks must have advanced at least to the timer deadline.
	for _, ln := range n.nodes {
		if now := ln.Now(); now < 30*time.Second {
			t.Fatalf("node %v virtual clock = %v, want >= 30s", ln.id, now)
		}
	}
}
