// Package livenet executes the same protocol state machines the
// discrete-event simulator runs, but on real concurrency: one goroutine
// per mote, an in-memory broadcast hub, wall-clock timers, and a time
// scale that compresses simulated seconds into real milliseconds.
//
// The hub serializes the "air", so livenet models loss (the same
// distance-based link model as the radio package) but not collisions;
// it exists to prove the protocol logic is runtime-agnostic and to
// exercise it under true parallelism, not to reproduce the paper's
// channel numbers — the calibrated experiments all run on the DES.
package livenet

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mnp/internal/eeprom"
	"mnp/internal/node"
	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/topology"
)

// Config parameterizes a live network.
type Config struct {
	// Layout places the motes.
	Layout *topology.Layout
	// Radio supplies ranges and the loss model.
	Radio radio.Params
	// TimeScale compresses time: a simulated duration d takes d /
	// TimeScale of wall time. 200 by default.
	TimeScale float64
	// Power is the transmit power level for every node.
	Power int
	// Seed drives the loss model.
	Seed int64
	// Battery assigns initial battery fractions (default 1.0).
	Battery func(id packet.NodeID) float64
}

type event struct {
	pkt  packet.Packet
	from packet.NodeID
	// timer fields
	isTimer bool
	timerID node.TimerID
	gen     uint64
}

type transmission struct {
	from  packet.NodeID
	pkt   packet.Packet
	power int
}

// Network is a running fleet of goroutine-backed motes.
type Network struct {
	cfg    Config
	nodes  []*liveNode
	hub    chan transmission
	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
	start  time.Time
	// edgeRNG holds one loss-model generator per directed link,
	// allocated lazily. It is owned exclusively by the hub goroutine
	// (deliver → linkSucceeds), so it needs no lock — and because each
	// edge has its own stream, the loss sequence a given link sees does
	// not depend on how transmissions from unrelated links interleave.
	edgeRNG map[[2]packet.NodeID]*rand.Rand
}

// New builds a live network; protocols start immediately.
func New(cfg Config, factory func(id packet.NodeID) node.Protocol) (*Network, error) {
	if cfg.Layout == nil || factory == nil {
		return nil, fmt.Errorf("livenet: layout and factory are required")
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 200
	}
	if cfg.TimeScale < 1 {
		return nil, fmt.Errorf("livenet: time scale %v must be >= 1", cfg.TimeScale)
	}
	if cfg.Power == 0 {
		cfg.Power = radio.PowerSim
	}
	if _, ok := cfg.Radio.TxRangeFeet[cfg.Power]; !ok {
		return nil, fmt.Errorf("livenet: no range for power %d", cfg.Power)
	}
	n := &Network{
		cfg:     cfg,
		hub:     make(chan transmission, 1024),
		stop:    make(chan struct{}),
		start:   time.Now(),
		edgeRNG: make(map[[2]packet.NodeID]*rand.Rand),
	}
	for i := 0; i < cfg.Layout.N(); i++ {
		id := packet.NodeID(i)
		store, err := eeprom.New(eeprom.DefaultCapacity)
		if err != nil {
			return nil, err
		}
		battery := 1.0
		if cfg.Battery != nil {
			battery = cfg.Battery(id)
		}
		ln := &liveNode{
			id:      id,
			net:     n,
			proto:   factory(id),
			events:  make(chan event, 256),
			store:   store,
			rng:     rand.New(rand.NewSource(cfg.Seed ^ int64(id)<<20)),
			timers:  make(map[node.TimerID]*liveTimer),
			txPower: cfg.Power,
			battery: battery,
		}
		n.nodes = append(n.nodes, ln)
	}
	n.wg.Add(1)
	go n.runHub()
	for _, ln := range n.nodes {
		n.wg.Add(1)
		go ln.run()
	}
	return n, nil
}

// Stop terminates every goroutine and waits for them to exit.
func (n *Network) Stop() {
	if n.closed.Swap(true) {
		return
	}
	close(n.stop)
	n.wg.Wait()
}

// CompletedCount returns how many nodes hold the full program.
func (n *Network) CompletedCount() int {
	c := 0
	for _, ln := range n.nodes {
		if ln.completed.Load() {
			c++
		}
	}
	return c
}

// WaitAllComplete blocks until every node completes or the wall-clock
// timeout elapses.
func (n *Network) WaitAllComplete(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if n.CompletedCount() == len(n.nodes) {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return n.CompletedCount() == len(n.nodes)
}

// Store returns node id's EEPROM for verification after Stop.
func (n *Network) Store(id packet.NodeID) *eeprom.Store {
	return n.nodes[id].store
}

// runHub is the shared medium: it applies the link model and fans each
// transmission out to in-range, radio-on receivers.
func (n *Network) runHub() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stop:
			return
		case tx := <-n.hub:
			n.deliver(tx)
		}
	}
}

func (n *Network) deliver(tx transmission) {
	rangeFt := n.cfg.Radio.TxRangeFeet[tx.power]
	srcPos, err := n.cfg.Layout.Pos(tx.from)
	if err != nil {
		return
	}
	frame := packet.Encode(tx.pkt)
	for _, ln := range n.nodes {
		if ln.id == tx.from || !ln.radioOn.Load() {
			continue
		}
		pos, _ := n.cfg.Layout.Pos(ln.id)
		dist := srcPos.Distance(pos)
		if dist > rangeFt {
			continue
		}
		if !n.linkSucceeds(tx.from, ln.id, dist, rangeFt, len(frame)) {
			continue
		}
		decoded, err := packet.Decode(frame)
		if err != nil {
			continue
		}
		select {
		case ln.events <- event{pkt: decoded, from: tx.from}:
		default:
			// Receiver overloaded: the frame is lost, as on a real
			// radio whose buffers are full.
		}
	}
}

// linkSucceeds rolls the loss model for one directed link. Hub
// goroutine only — the per-edge generators are unsynchronized.
func (n *Network) linkSucceeds(from, to packet.NodeID, dist, rangeFt float64, bytes int) bool {
	frac := dist / rangeFt
	p := n.cfg.Radio
	ber := p.BERFloor * math.Exp(math.Log(p.BERCeil/p.BERFloor)*frac*frac)
	success := math.Pow(1-ber, float64(bytes*8))
	return n.edgeRand(from, to).Float64() < success
}

// edgeRand returns the directed link's generator, seeding it on first
// use from the run seed and both endpoints so every edge gets a
// distinct, reproducible stream.
func (n *Network) edgeRand(from, to packet.NodeID) *rand.Rand {
	key := [2]packet.NodeID{from, to}
	if r, ok := n.edgeRNG[key]; ok {
		return r
	}
	seed := n.cfg.Seed
	seed ^= (int64(from) + 1) * 0x5851F42D4C957F2D
	seed ^= (int64(to) + 1) * 0x2545F4914F6CDD1D
	r := rand.New(rand.NewSource(seed))
	n.edgeRNG[key] = r
	return r
}

type liveTimer struct {
	gen   uint64
	timer *time.Timer
}

// liveNode implements node.Runtime over a goroutine event loop.
type liveNode struct {
	id     packet.NodeID
	net    *Network
	proto  node.Protocol
	events chan event
	store  *eeprom.Store
	rng    *rand.Rand

	timers   map[node.TimerID]*liveTimer
	timerGen uint64

	radioOn   atomic.Bool
	completed atomic.Bool
	txPower   int
	battery   float64
}

var _ node.Runtime = (*liveNode)(nil)

func (ln *liveNode) run() {
	defer ln.net.wg.Done()
	ln.proto.Init(ln)
	for {
		select {
		case <-ln.net.stop:
			return
		case ev := <-ln.events:
			if ev.isTimer {
				cur, ok := ln.timers[ev.timerID]
				if !ok || cur.gen != ev.gen {
					continue // cancelled or replaced
				}
				delete(ln.timers, ev.timerID)
				ln.proto.OnTimer(ev.timerID)
				continue
			}
			if ln.radioOn.Load() {
				ln.proto.OnPacket(ev.pkt, ev.from)
			}
		}
	}
}

// ID implements node.Runtime.
func (ln *liveNode) ID() packet.NodeID { return ln.id }

// Now implements node.Runtime, returning scaled virtual time.
func (ln *liveNode) Now() time.Duration {
	return time.Duration(float64(time.Since(ln.net.start)) * ln.net.cfg.TimeScale)
}

// Rand implements node.Runtime.
func (ln *liveNode) Rand() *rand.Rand { return ln.rng }

// Send implements node.Runtime: hand the frame to the hub.
func (ln *liveNode) Send(p packet.Packet) error {
	if !ln.radioOn.Load() {
		return fmt.Errorf("livenet node %v: radio off", ln.id)
	}
	select {
	case ln.net.hub <- transmission{from: ln.id, pkt: p, power: ln.txPower}:
		return nil
	default:
		return fmt.Errorf("livenet node %v: medium congested", ln.id)
	}
}

// SetTimer implements node.Runtime.
func (ln *liveNode) SetTimer(id node.TimerID, d time.Duration) {
	ln.CancelTimer(id)
	ln.timerGen++
	gen := ln.timerGen
	real := time.Duration(float64(d) / ln.net.cfg.TimeScale)
	if real < 50*time.Microsecond {
		real = 50 * time.Microsecond
	}
	lt := &liveTimer{gen: gen}
	lt.timer = time.AfterFunc(real, func() {
		select {
		case ln.events <- event{isTimer: true, timerID: id, gen: gen}:
		case <-ln.net.stop:
		}
	})
	ln.timers[id] = lt
}

// CancelTimer implements node.Runtime.
func (ln *liveNode) CancelTimer(id node.TimerID) {
	if lt, ok := ln.timers[id]; ok {
		lt.timer.Stop()
		delete(ln.timers, id)
	}
}

// TimerPending implements node.Runtime.
func (ln *liveNode) TimerPending(id node.TimerID) bool {
	_, ok := ln.timers[id]
	return ok
}

// RadioOn implements node.Runtime.
func (ln *liveNode) RadioOn() { ln.radioOn.Store(true) }

// RadioOff implements node.Runtime.
func (ln *liveNode) RadioOff() { ln.radioOn.Store(false) }

// IsRadioOn implements node.Runtime.
func (ln *liveNode) IsRadioOn() bool { return ln.radioOn.Load() }

// SetTxPower implements node.Runtime.
func (ln *liveNode) SetTxPower(level int) { ln.txPower = level }

// TxPower implements node.Runtime.
func (ln *liveNode) TxPower() int { return ln.txPower }

// Store implements node.Runtime.
func (ln *liveNode) Store(seg, pkt int, payload []byte) error {
	return ln.store.Write(seg, pkt, payload)
}

// Load implements node.Runtime.
func (ln *liveNode) Load(seg, pkt int) []byte { return ln.store.Read(seg, pkt) }

// HasPacket implements node.Runtime.
func (ln *liveNode) HasPacket(seg, pkt int) bool { return ln.store.Has(seg, pkt) }

// EraseStore implements node.Runtime.
func (ln *liveNode) EraseStore() { ln.store.Erase() }

// Complete implements node.Runtime.
func (ln *liveNode) Complete() { ln.completed.Store(true) }

// Battery implements node.Runtime.
func (ln *liveNode) Battery() float64 { return ln.battery }

// Event implements node.Runtime.
func (ln *liveNode) Event(node.Event) {}
