package trickle

import (
	"math/rand"
	"testing"
	"time"
)

type harness struct {
	tr        *Trickle
	fireDelay time.Duration
	endDelay  time.Duration
	sent      int
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{}
	tr, err := New(cfg, Hooks{
		Rand:     rand.New(rand.NewSource(1)),
		SetFire:  func(d time.Duration) { h.fireDelay = d },
		SetEnd:   func(d time.Duration) { h.endDelay = d },
		Transmit: func() { h.sent++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	h.tr = tr
	return h
}

func TestNewValidation(t *testing.T) {
	hooks := Hooks{
		Rand:     rand.New(rand.NewSource(1)),
		SetFire:  func(time.Duration) {},
		SetEnd:   func(time.Duration) {},
		Transmit: func() {},
	}
	if _, err := New(Config{K: 0, TauMin: time.Second, TauMax: time.Minute}, hooks); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := New(Config{K: 1, TauMin: 0, TauMax: time.Minute}, hooks); err == nil {
		t.Error("TauMin=0 accepted")
	}
	if _, err := New(Config{K: 1, TauMin: time.Minute, TauMax: time.Second}, hooks); err == nil {
		t.Error("TauMax < TauMin accepted")
	}
	bad := hooks
	bad.Transmit = nil
	if _, err := New(DefaultConfig(), bad); err == nil {
		t.Error("missing hook accepted")
	}
}

func TestStartSchedulesWithinBounds(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	h.tr.Start()
	if h.tr.Tau() != DefaultConfig().TauMin {
		t.Fatalf("tau = %v", h.tr.Tau())
	}
	if h.fireDelay < h.tr.Tau()/2 || h.fireDelay > h.tr.Tau() {
		t.Fatalf("fire delay %v outside [τ/2, τ]", h.fireDelay)
	}
	if h.endDelay != h.tr.Tau() {
		t.Fatalf("end delay %v != τ", h.endDelay)
	}
}

func TestFireTransmitsWhenQuiet(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	h.tr.Start()
	h.tr.Fire()
	if h.sent != 1 {
		t.Fatalf("sent = %d", h.sent)
	}
	// Double fire in one interval is ignored.
	h.tr.Fire()
	if h.sent != 1 {
		t.Fatalf("double-fired: sent = %d", h.sent)
	}
}

func TestSuppressionAtK(t *testing.T) {
	cfg := DefaultConfig()
	cfg.K = 2
	h := newHarness(t, cfg)
	h.tr.Start()
	h.tr.Hear()
	h.tr.Fire()
	if h.sent != 1 {
		t.Fatal("suppressed below K")
	}
	h.tr.IntervalEnd()
	h.tr.Hear()
	h.tr.Hear()
	if h.tr.Heard() != 2 {
		t.Fatalf("Heard = %d", h.tr.Heard())
	}
	h.tr.Fire()
	if h.sent != 1 {
		t.Fatal("transmitted at K consistent messages")
	}
}

func TestIntervalDoublingAndCap(t *testing.T) {
	cfg := Config{K: 1, TauMin: time.Second, TauMax: 8 * time.Second}
	h := newHarness(t, cfg)
	h.tr.Start()
	want := []time.Duration{2, 4, 8, 8, 8}
	for i, w := range want {
		h.tr.IntervalEnd()
		if h.tr.Tau() != w*time.Second {
			t.Fatalf("after %d ends: tau = %v, want %vs", i+1, h.tr.Tau(), w)
		}
	}
}

func TestResetShrinksToMin(t *testing.T) {
	cfg := Config{K: 1, TauMin: time.Second, TauMax: 8 * time.Second}
	h := newHarness(t, cfg)
	h.tr.Start()
	h.tr.IntervalEnd()
	h.tr.IntervalEnd()
	if h.tr.Tau() != 4*time.Second {
		t.Fatalf("setup: tau = %v", h.tr.Tau())
	}
	h.tr.Hear()
	h.tr.Reset()
	if h.tr.Tau() != time.Second {
		t.Fatalf("tau after reset = %v", h.tr.Tau())
	}
	if h.tr.Heard() != 0 {
		t.Fatal("heard count survived reset")
	}
	// Reset at TauMin is a no-op (no interval restart storm).
	before := h.fireDelay
	h.tr.Hear()
	h.tr.Reset()
	if h.tr.Heard() != 1 {
		t.Fatal("no-op reset cleared state")
	}
	_ = before
}

func TestHeardClearsEachInterval(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	h.tr.Start()
	h.tr.Hear()
	h.tr.IntervalEnd()
	if h.tr.Heard() != 0 {
		t.Fatal("heard count not cleared at interval end")
	}
	h.tr.Fire()
	if h.sent != 1 {
		t.Fatal("suppression leaked across intervals")
	}
}
