// Package trickle implements the Trickle algorithm (Levis et al.):
// polite-gossip timers with suppression and adaptive intervals. The
// Deluge baseline uses it to pace advertisements.
//
// Each interval τ ∈ [TauMin, TauMax]: pick a fire point t uniform in
// [τ/2, τ); count consistent messages heard; at t transmit only if the
// count is below the redundancy constant K; at τ double the interval
// and restart. An inconsistency resets τ to TauMin.
package trickle

import (
	"fmt"
	"math/rand"
	"time"
)

// Config parameterizes a Trickle instance.
type Config struct {
	// K is the redundancy constant: hearing K or more consistent
	// messages in an interval suppresses our own transmission.
	K int
	// TauMin and TauMax bound the interval.
	TauMin, TauMax time.Duration
}

// DefaultConfig matches Deluge's maintenance parameters (k=1,
// τ ∈ [500 ms, 64 s]).
func DefaultConfig() Config {
	return Config{K: 1, TauMin: 500 * time.Millisecond, TauMax: 64 * time.Second}
}

// Hooks connect a Trickle instance to its owner's runtime.
type Hooks struct {
	// Rand supplies deterministic randomness.
	Rand *rand.Rand
	// SetFire schedules the fire callback after d (replacing any
	// pending one).
	SetFire func(d time.Duration)
	// SetEnd schedules the interval-end callback after d (replacing
	// any pending one).
	SetEnd func(d time.Duration)
	// Transmit is called when the timer fires unsuppressed.
	Transmit func()
}

// Trickle is a single timer instance. Drive it by calling Fire and
// IntervalEnd from the owner's two timer callbacks.
type Trickle struct {
	cfg   Config
	hooks Hooks
	tau   time.Duration
	heard int
	fired bool
}

// New validates the configuration and returns a stopped instance;
// call Start to begin the first interval.
func New(cfg Config, hooks Hooks) (*Trickle, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("trickle: K must be positive, got %d", cfg.K)
	}
	if cfg.TauMin <= 0 || cfg.TauMax < cfg.TauMin {
		return nil, fmt.Errorf("trickle: bad interval bounds [%v, %v]", cfg.TauMin, cfg.TauMax)
	}
	if hooks.Rand == nil || hooks.SetFire == nil || hooks.SetEnd == nil || hooks.Transmit == nil {
		return nil, fmt.Errorf("trickle: all hooks are required")
	}
	return &Trickle{cfg: cfg, hooks: hooks}, nil
}

// Start begins the first interval at TauMin.
func (t *Trickle) Start() {
	t.tau = t.cfg.TauMin
	t.beginInterval()
}

// Tau returns the current interval length (for tests and metrics).
func (t *Trickle) Tau() time.Duration { return t.tau }

// Heard returns the consistent-message count in the current interval.
func (t *Trickle) Heard() int { return t.heard }

// Hear records a consistent message, contributing to suppression.
func (t *Trickle) Hear() { t.heard++ }

// Reset reacts to an inconsistency: shrink τ to TauMin and restart,
// unless already there (per the Trickle rules, resetting an
// already-minimal interval would cause a broadcast storm).
func (t *Trickle) Reset() {
	if t.tau == t.cfg.TauMin {
		return
	}
	t.tau = t.cfg.TauMin
	t.beginInterval()
}

// Fire is the owner's fire-timer callback: transmit unless suppressed.
func (t *Trickle) Fire() {
	if t.fired {
		return
	}
	t.fired = true
	if t.heard < t.cfg.K {
		t.hooks.Transmit()
	}
}

// IntervalEnd is the owner's end-timer callback: double τ and restart.
func (t *Trickle) IntervalEnd() {
	t.tau *= 2
	if t.tau > t.cfg.TauMax {
		t.tau = t.cfg.TauMax
	}
	t.beginInterval()
}

func (t *Trickle) beginInterval() {
	t.heard = 0
	t.fired = false
	half := t.tau / 2
	fire := half + time.Duration(t.hooks.Rand.Int63n(int64(half)+1))
	t.hooks.SetFire(fire)
	t.hooks.SetEnd(t.tau)
}
