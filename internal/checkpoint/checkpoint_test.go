package checkpoint

import (
	"math/rand"
	"testing"
)

// widget exercises the kinds the walker must handle: unexported
// scalars, nested pointers, slices of structs, maps, funcs, and
// interfaces.
type widget struct {
	n       int
	name    string
	child   *widget
	scores  []int
	tags    map[string]int
	hook    func() int
	obs     any
	skipped *widget `checkpoint:"skip"`
}

func newWidget() *widget {
	w := &widget{
		n:      1,
		name:   "root",
		child:  &widget{n: 2, name: "child"},
		scores: []int{1, 2, 3},
		tags:   map[string]int{"a": 1},
	}
	w.hook = func() int { return w.n }
	w.skipped = &widget{n: 99}
	return w
}

func TestRestoreRewindsScalarsSlicesMaps(t *testing.T) {
	w := newWidget()
	ctx := NewConfig().NewContext()
	snap := Capture(ctx, w)

	w.n = 100
	w.name = "mutated"
	w.child.n = 200
	w.scores[0] = 42
	w.scores = append(w.scores, 4)
	w.tags["a"] = 9
	w.tags["b"] = 2
	delete(w.tags, "a")
	w.tags["a"] = 7

	snap.Restore()
	if w.n != 1 || w.name != "root" || w.child.n != 2 {
		t.Fatalf("scalars not restored: %+v child %+v", w, w.child)
	}
	if len(w.scores) != 3 || w.scores[0] != 1 {
		t.Fatalf("slice not restored: %v", w.scores)
	}
	if len(w.tags) != 1 || w.tags["a"] != 1 {
		t.Fatalf("map not restored: %v", w.tags)
	}
}

func TestRestorePreservesPointerIdentity(t *testing.T) {
	w := newWidget()
	child := w.child
	ctx := NewConfig().NewContext()
	snap := Capture(ctx, w)
	w.child = &widget{n: 55}
	snap.Restore()
	if w.child != child {
		t.Fatal("child pointer replaced instead of restored in place")
	}
	if got := w.hook(); got != 1 {
		t.Fatalf("closure sees n=%d after restore, want 1", got)
	}
}

func TestSkippedFieldLeftAlone(t *testing.T) {
	w := newWidget()
	ctx := NewConfig().NewContext()
	snap := Capture(ctx, w)
	w.skipped.n = 123 // referent not walked
	other := &widget{n: 7}
	w.skipped = other // pointer word not copied either
	snap.Restore()
	if w.skipped != other || w.skipped.n != 7 {
		t.Fatalf("skip-tagged field was restored: %+v", w.skipped)
	}
}

func TestSkipTypeNotFollowed(t *testing.T) {
	type holder struct {
		w *widget
	}
	h := &holder{w: &widget{n: 1}}
	cfg := NewConfig((*widget)(nil))
	snap := Capture(cfg.NewContext(), h)
	h.w.n = 42
	snap.Restore()
	if h.w.n != 42 {
		t.Fatal("skip-typed target was restored")
	}
}

func TestAliasedPointersCapturedOnce(t *testing.T) {
	shared := &widget{n: 5}
	a := &widget{child: shared}
	b := &widget{child: shared}
	snap := Capture(NewConfig().NewContext(), a, b)
	shared.n = 50
	snap.Restore()
	if shared.n != 5 {
		t.Fatal("shared target not restored")
	}
}

func TestInterfaceTargetsWalked(t *testing.T) {
	inner := &widget{n: 3}
	w := &widget{obs: inner}
	snap := Capture(NewConfig().NewContext(), w)
	inner.n = 33
	w.obs = "replaced"
	snap.Restore()
	if inner.n != 3 {
		t.Fatal("interface target not restored")
	}
	if w.obs != any(inner) {
		t.Fatal("interface word not restored")
	}
}

func TestSliceOfInterfacesWalked(t *testing.T) {
	type chain struct {
		links []any
	}
	a, b := &widget{n: 1}, &widget{n: 2}
	c := &chain{links: []any{a, b}}
	snap := Capture(NewConfig().NewContext(), c)
	a.n, b.n = 10, 20
	snap.Restore()
	if a.n != 1 || b.n != 2 {
		t.Fatalf("interface slice targets not restored: %d %d", a.n, b.n)
	}
}

func TestDoubleRestore(t *testing.T) {
	w := newWidget()
	snap := Capture(NewConfig().NewContext(), w)
	w.n = 10
	snap.Restore()
	w.n = 20
	w.scores[1] = 99
	snap.Restore()
	if w.n != 1 || w.scores[1] != 2 {
		t.Fatalf("second restore failed: n=%d scores=%v", w.n, w.scores)
	}
}

func TestRandRestoreReplaysDraws(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rng.Int63() // advance off the seed state
	snap := Capture(NewConfig().NewContext(), rng)
	want := make([]int64, 8)
	for i := range want {
		want[i] = rng.Int63()
	}
	snap.Restore()
	for i := range want {
		if got := rng.Int63(); got != want[i] {
			t.Fatalf("draw %d: got %d want %d — RNG state not restored", i, got, want[i])
		}
	}
}

// countingSource mirrors sim.CountingSource: a Versioned wrapper whose
// draw counter stamps the internal state.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (c *countingSource) Int63() int64         { c.n++; return c.src.Int63() }
func (c *countingSource) Uint64() uint64       { c.n++; return c.src.Uint64() }
func (c *countingSource) Seed(seed int64)      { c.n++; c.src.Seed(seed) }
func (c *countingSource) StateVersion() uint64 { return c.n }

func TestVersionedCacheReuseAndRestore(t *testing.T) {
	cs := &countingSource{src: rand.NewSource(7).(rand.Source64)}
	rng := rand.New(cs)
	ctx := NewConfig().NewContext()

	snap := Capture(ctx, rng)
	want := make([]int64, 4)
	for i := range want {
		want[i] = rng.Int63()
	}
	snap.Restore()
	for i := range want {
		if got := rng.Int63(); got != want[i] {
			t.Fatalf("draw %d after restore: got %d want %d", i, got, want[i])
		}
	}

	// Unchanged since the last capture: the cache entry must be reused
	// (same entry pointer) and a restore must be a no-op.
	snap2 := Capture(ctx, rng)
	if len(snap2.cached) != 1 {
		t.Fatalf("expected 1 cached ref, got %d", len(snap2.cached))
	}
	ver := cs.StateVersion()
	snap2.Restore()
	if cs.StateVersion() != ver {
		t.Fatal("no-draw restore changed the version")
	}
	seq := rng.Int63()
	snap2.Restore()
	if got := rng.Int63(); got != seq {
		t.Fatalf("cached restore diverged: got %d want %d", got, seq)
	}
}

func TestMapValuesWithPointersWalked(t *testing.T) {
	type book struct {
		pages map[string]*widget
	}
	w := &widget{n: 1}
	b := &book{pages: map[string]*widget{"w": w}}
	snap := Capture(NewConfig().NewContext(), b)
	w.n = 11
	b.pages["x"] = &widget{n: 2}
	snap.Restore()
	if w.n != 1 {
		t.Fatal("map value target not restored")
	}
	if len(b.pages) != 1 || b.pages["w"] != w {
		t.Fatalf("map entries not restored: %v", b.pages)
	}
}

func TestSliceHeaderReallocRestored(t *testing.T) {
	type box struct {
		xs []int
	}
	b := &box{xs: make([]int, 2, 2)}
	b.xs[0], b.xs[1] = 1, 2
	snap := Capture(NewConfig().NewContext(), b)
	b.xs = append(b.xs, 3) // realloc
	b.xs[0] = 100
	snap.Restore()
	if len(b.xs) != 2 || b.xs[0] != 1 || b.xs[1] != 2 {
		t.Fatalf("realloc'd slice not restored: %v", b.xs)
	}
}
