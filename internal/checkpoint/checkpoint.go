// Package checkpoint implements deep snapshot and restore-in-place of
// live object graphs, the state-capture half of the engine's optimistic
// window execution (DESIGN.md §4l).
//
// Capture walks the graph from a set of root pointers and records, per
// reachable object, a typed shadow copy of its memory: pointer targets
// become regions (restored word for word at the original address),
// slice contents are copied and restored into the original backing
// array, and maps are copied entry by entry and rebuilt on restore.
// Restore writes every copy back *in place*, so pointer identity is
// preserved: event pointers held by timer handles, closures bound to
// node objects, and free-list entries all remain valid across a
// rollback — which is what lets the simulation resume from a restored
// checkpoint as if the speculated windows never ran.
//
// The walker is deliberately conservative about what it treats as
// state:
//
//   - Funcs, channels, and strings are opaque words: the pointer is
//     restored by the enclosing region copy, the referent is never
//     followed. Closures must therefore not capture mutable locals that
//     outlive an event (the simulation's closures capture only objects
//     the walker reaches by other paths).
//   - Non-pointer values boxed in interfaces are immutable in Go, so
//     only the reference types *inside* them are followed.
//   - Pointer types named in the Config are never followed: shared
//     read-mostly structures (geometry, layouts, images) and state with
//     its own cheaper checkpoint mechanism (journaled stores) are
//     excluded there, as are struct fields tagged `checkpoint:"skip"`,
//     which are neither copied nor restored (left alone entirely).
//
// Objects implementing Versioned get a copy-on-advance fast path: the
// Context caches their deep copy keyed by StateVersion and reuses it
// while the version is unchanged, so a checkpoint costs O(state that
// actually advanced) — the property that makes per-round checkpoints of
// hundreds of mostly-sleeping node RNGs affordable.
//
// The walk itself is driven by per-type plans built once and cached for
// the life of the process: each plan precomputes the kind dispatch, the
// list of reference-bearing struct fields (with their child plans), the
// element and key plans of containers, the Versioned check, and the
// `checkpoint:"skip"` mask. The hot path therefore never touches
// reflect.Type metadata — no per-visit field decoding, interface
// satisfaction checks, or type-keyed map hashing — which is what keeps
// a per-round capture of a few hundred nodes in the microsecond-to-
// millisecond range rather than tens of milliseconds.
package checkpoint

import (
	"fmt"
	"reflect"
	"sync"
	"time"
	"unsafe"
)

// Versioned marks state whose mutation is countable: StateVersion
// returns a stamp that changes whenever the object's state may have
// changed (a draw counter on an RNG source, for example). The Context
// caches the deep copy of a Versioned object and reuses it while the
// stamp holds still. A Versioned object must be reachable from the
// roots only through itself: the cache owns the object's subgraph, so a
// second path into it would capture a stale view.
type Versioned interface {
	StateVersion() uint64
}

// Config names the pointer types a walker never follows. It is
// immutable after construction and safe to share between Contexts.
type Config struct {
	skip map[*plan]bool
}

// NewConfig builds a Config from typed nil pointers naming the types to
// skip, e.g. NewConfig((*topology.Layout)(nil)). *time.Location is
// always skipped: time.Time values would otherwise drag the shared zone
// database into every snapshot.
func NewConfig(skipPtrs ...any) *Config {
	cfg := &Config{skip: map[*plan]bool{
		planFor(reflect.TypeOf((*time.Location)(nil))): true,
	}}
	for _, p := range skipPtrs {
		t := reflect.TypeOf(p)
		if t == nil || t.Kind() != reflect.Pointer {
			panic(fmt.Sprintf("checkpoint: skip entry %T is not a pointer type", p))
		}
		cfg.skip[planFor(t)] = true
	}
	return cfg
}

// Context carries the cross-snapshot state of one checkpoint domain:
// the config and the Versioned-object cache. A Context must not be
// used from two goroutines at once; give each isolated domain (each
// engine tile) its own.
type Context struct {
	cfg   *Config
	cache map[cacheKey]*versionedEntry
}

// cacheKey identifies one captured object: its address plus the plan of
// its type. Plans are canonical per type, so the pointer stands in for
// the reflect.Type without paying interface hashing on every lookup.
type cacheKey struct {
	ptr unsafe.Pointer
	pl  *plan
}

// NewContext returns an empty Context over the Config.
func (c *Config) NewContext() *Context {
	return &Context{cfg: c, cache: make(map[cacheKey]*versionedEntry)}
}

// region is one pointer target: pl.typ bytes at addr, restored from shadow.
type region struct {
	pl     *plan
	addr   unsafe.Pointer
	shadow reflect.Value // addressable copy of the captured value
}

// sliceSeg is the captured content of one backing array; live is a
// detached header over the original array, snap the element copies.
type sliceSeg struct {
	live reflect.Value
	snap reflect.Value
}

// mapSeg is one captured map: live is a detached reference to the map
// object, keys/vals the captured entries rebuilt on restore.
type mapSeg struct {
	live reflect.Value
	keys []reflect.Value
	vals []reflect.Value
}

type versionedEntry struct {
	version uint64
	sub     *Snapshot
}

type cachedRef struct {
	obj Versioned
	ent *versionedEntry
}

// Snapshot is one captured checkpoint. Restore may be called any
// number of times (a rollback can itself be rolled back further); the
// shadows are never mutated after Capture.
type Snapshot struct {
	ctx     *Context
	regions []region
	slices  []sliceSeg
	maps    []mapSeg
	cached  []cachedRef

	// walk-time memos, dropped when Capture returns
	seen     map[cacheKey]struct{}
	seenSeg  map[cacheKey]int // slice backing array -> captured len
	seenMaps map[cacheKey]struct{}
}

// Capture deep-copies the object graph reachable from the given roots,
// each of which must be a non-nil pointer. The graph must be quiescent
// (no concurrent mutation) for the duration of the call.
func Capture(ctx *Context, roots ...any) *Snapshot {
	s := &Snapshot{
		ctx:      ctx,
		seen:     make(map[cacheKey]struct{}, 256),
		seenSeg:  make(map[cacheKey]int, 64),
		seenMaps: make(map[cacheKey]struct{}, 8),
	}
	for _, r := range roots {
		if r == nil {
			continue
		}
		v := reflect.ValueOf(r)
		if v.Kind() != reflect.Pointer {
			panic(fmt.Sprintf("checkpoint: root %T is not a pointer", r))
		}
		if v.IsNil() {
			continue
		}
		s.capturePtr(v, planFor(v.Type()))
	}
	s.seen, s.seenSeg, s.seenMaps = nil, nil, nil
	return s
}

// Restore writes every captured copy back to its original location.
func (s *Snapshot) Restore() {
	for i := range s.regions {
		r := &s.regions[i]
		copyRegion(reflect.NewAt(r.pl.typ, r.addr).Elem(), r.shadow, r.pl)
	}
	for i := range s.slices {
		reflect.Copy(s.slices[i].live, s.slices[i].snap)
	}
	for i := range s.maps {
		m := &s.maps[i]
		m.live.Clear()
		for j := range m.keys {
			m.live.SetMapIndex(m.keys[j], m.vals[j])
		}
	}
	for i := range s.cached {
		c := &s.cached[i]
		if c.obj.StateVersion() != c.ent.version {
			c.ent.sub.Restore()
		}
	}
}

var versionedType = reflect.TypeOf((*Versioned)(nil)).Elem()

// capturePtr records the target of p (a non-nil pointer Value with plan
// pl) and walks into it, once per (address, pointee type).
func (s *Snapshot) capturePtr(p reflect.Value, pl *plan) {
	if s.ctx.cfg.skip[pl] {
		return
	}
	ptr := unsafe.Pointer(p.Pointer())
	key := cacheKey{ptr, pl.elem}
	if _, ok := s.seen[key]; ok {
		return
	}
	s.seen[key] = struct{}{}
	if pl.versioned {
		s.captureVersioned(p, ptr, pl.elem)
		return
	}
	s.captureRegion(reflect.NewAt(pl.elem.typ, ptr).Elem(), ptr, pl.elem)
}

// captureVersioned serves a Versioned target from the Context cache
// when its version is unchanged, else re-captures its subgraph and
// refreshes the cache.
func (s *Snapshot) captureVersioned(p reflect.Value, ptr unsafe.Pointer, epl *plan) {
	v := p.Interface().(Versioned)
	key := cacheKey{ptr, epl}
	if ent, ok := s.ctx.cache[key]; ok && ent.version == v.StateVersion() {
		s.cached = append(s.cached, cachedRef{obj: v, ent: ent})
		return
	}
	sub := &Snapshot{ctx: s.ctx, seen: s.seen, seenSeg: s.seenSeg, seenMaps: s.seenMaps}
	sub.captureRegion(reflect.NewAt(epl.typ, ptr).Elem(), ptr, epl)
	sub.seen, sub.seenSeg, sub.seenMaps = nil, nil, nil
	ent := &versionedEntry{version: v.StateVersion(), sub: sub}
	s.ctx.cache[key] = ent
	s.cached = append(s.cached, cachedRef{obj: v, ent: ent})
}

// captureRegion shadows the value at addr and walks its reference
// fields. live must be the addressable view of the target; pl its plan.
func (s *Snapshot) captureRegion(live reflect.Value, addr unsafe.Pointer, pl *plan) {
	shadow := reflect.New(pl.typ).Elem()
	copyRegion(shadow, live, pl)
	s.regions = append(s.regions, region{pl: pl, addr: addr, shadow: shadow})
	if pl.hasRefs {
		s.walk(live, pl)
	}
}

// copyRegion copies src into dst, skipping `checkpoint:"skip"` fields.
func copyRegion(dst, src reflect.Value, pl *plan) {
	if pl.skip == nil {
		dst.Set(src)
		return
	}
	for i := range pl.skip {
		if pl.skip[i] {
			continue
		}
		fieldView(dst, i).Set(fieldView(src, i))
	}
}

// fieldView returns field i of an addressable struct value as a
// settable Value, bypassing the read-only flag on unexported fields.
func fieldView(v reflect.Value, i int) reflect.Value {
	f := v.Field(i)
	if f.CanSet() {
		return f
	}
	return reflect.NewAt(f.Type(), unsafe.Pointer(f.UnsafeAddr())).Elem()
}

// walk recurses into the reference types inside v, whose plan is pl. v
// is never read-only; it is addressable except for detached copies,
// which are re-detached before struct field access.
func (s *Snapshot) walk(v reflect.Value, pl *plan) {
	switch v.Kind() {
	case reflect.Pointer:
		if !v.IsNil() {
			s.capturePtr(v, pl)
		}
	case reflect.Interface:
		if v.IsNil() {
			return
		}
		e := v.Elem()
		epl := planFor(e.Type())
		switch e.Kind() {
		case reflect.Pointer:
			if !e.IsNil() {
				s.capturePtr(e, epl)
			}
		case reflect.Map:
			s.captureMap(e, epl)
		case reflect.Slice:
			s.captureSlice(e, epl)
		default:
			// A non-pointer value boxed in an interface is immutable;
			// only references inside it are live state.
			if epl.hasRefs {
				s.walk(detach(e), epl)
			}
		}
	case reflect.Struct:
		if len(pl.refFields) == 0 {
			return
		}
		if !v.CanAddr() {
			v = detach(v)
		}
		for _, f := range pl.refFields {
			s.walk(fieldView(v, f.i), f.pl)
		}
	case reflect.Array:
		if !pl.elem.hasRefs {
			return
		}
		if !v.CanAddr() {
			v = detach(v)
		}
		for i := 0; i < v.Len(); i++ {
			s.walk(v.Index(i), pl.elem)
		}
	case reflect.Slice:
		s.captureSlice(v, pl)
	case reflect.Map:
		s.captureMap(v, pl)
	}
}

// captureSlice records the [0, len) contents of v's backing array and
// walks the elements. The enclosing region copy restores the header;
// this segment restores the content.
func (s *Snapshot) captureSlice(v reflect.Value, pl *plan) {
	if v.IsNil() {
		return
	}
	n := v.Len()
	if n == 0 {
		return
	}
	key := cacheKey{unsafe.Pointer(v.Pointer()), pl}
	if prev, ok := s.seenSeg[key]; ok && prev >= n {
		return
	}
	s.seenSeg[key] = n
	snap := reflect.MakeSlice(pl.typ, n, n)
	reflect.Copy(snap, v)
	s.slices = append(s.slices, sliceSeg{live: v.Slice(0, n), snap: snap})
	if pl.elem.hasRefs {
		for i := 0; i < n; i++ {
			s.walk(v.Index(i), pl.elem)
		}
	}
}

// captureMap records v's entries; restore clears the live map and
// reinserts them (entries added during speculation vanish, removed or
// overwritten ones return).
func (s *Snapshot) captureMap(v reflect.Value, pl *plan) {
	if v.IsNil() {
		return
	}
	key := cacheKey{unsafe.Pointer(v.Pointer()), pl}
	if _, ok := s.seenMaps[key]; ok {
		return
	}
	s.seenMaps[key] = struct{}{}
	seg := mapSeg{live: detach(v)}
	kRefs := pl.key.hasRefs
	vRefs := pl.elem.hasRefs
	iter := v.MapRange()
	for iter.Next() {
		k := detach(iter.Key())
		val := detach(iter.Value())
		seg.keys = append(seg.keys, k)
		seg.vals = append(seg.vals, val)
		if kRefs {
			s.walk(k, pl.key)
		}
		if vRefs {
			s.walk(val, pl.elem)
		}
	}
	s.maps = append(s.maps, seg)
}

// detach copies v into a fresh addressable Value, so later reads see
// the captured words rather than whatever the original location holds
// by then.
func detach(v reflect.Value) reflect.Value {
	d := reflect.New(v.Type()).Elem()
	d.Set(v)
	return d
}

// --- type plans ---

// plan caches everything the walker needs to know about one type:
// whether it transitively contains reference kinds worth walking, which
// struct fields are tagged `checkpoint:"skip"`, the reference-bearing
// struct fields with their child plans, the element/key plans of
// containers and pointers, and (for pointer types) whether the type
// implements Versioned. One canonical plan exists per type, so plan
// pointers double as type identities in memo keys.
type plan struct {
	typ       reflect.Type
	hasRefs   bool
	versioned bool   // pointer types: implements Versioned
	skip      []bool // struct types: nil when no field is tagged
	refFields []refField
	elem      *plan // pointer/slice/array elem, map value
	key       *plan // map key
}

// refField is one struct field the walker must recurse into.
type refField struct {
	i  int
	pl *plan
}

// rtypePtr extracts the *rtype word from a reflect.Type interface, a
// stable per-type identity cheaper to hash than the interface itself.
func rtypePtr(t reflect.Type) unsafe.Pointer {
	return (*[2]unsafe.Pointer)(unsafe.Pointer(&t))[1]
}

var (
	plans    sync.Map // unsafe.Pointer (*rtype) -> *plan, complete plans only
	plansMu  sync.Mutex
	building = map[unsafe.Pointer]*plan{} // under plansMu: plans mid-construction
)

// planFor returns the canonical plan for t, building it (and every plan
// it references) on first use. Partially-built plans live in `building`
// until the whole type graph is complete, so readers of the sync.Map
// only ever observe finished plans.
func planFor(t reflect.Type) *plan {
	if p, ok := plans.Load(rtypePtr(t)); ok {
		return p.(*plan)
	}
	plansMu.Lock()
	defer plansMu.Unlock()
	p := buildPlan(t)
	for tp, bp := range building {
		plans.Store(tp, bp)
		delete(building, tp)
	}
	return p
}

// buildPlan constructs the plan for t recursively; plansMu must be
// held. Cycles (Node -> *Node) terminate through the `building` memo.
func buildPlan(t reflect.Type) *plan {
	tp := rtypePtr(t)
	if p, ok := plans.Load(tp); ok {
		return p.(*plan)
	}
	if p, ok := building[tp]; ok {
		return p
	}
	p := &plan{typ: t, hasRefs: hasRefs(t)}
	building[tp] = p
	switch t.Kind() {
	case reflect.Pointer:
		p.versioned = t.Implements(versionedType)
		p.elem = buildPlan(t.Elem())
	case reflect.Slice, reflect.Array:
		p.elem = buildPlan(t.Elem())
	case reflect.Map:
		p.key = buildPlan(t.Key())
		p.elem = buildPlan(t.Elem())
	case reflect.Struct:
		n := t.NumField()
		for i := 0; i < n; i++ {
			f := t.Field(i)
			if f.Tag.Get("checkpoint") == "skip" {
				if p.skip == nil {
					p.skip = make([]bool, n)
				}
				p.skip[i] = true
				continue
			}
			fp := buildPlan(f.Type)
			if fp.hasRefs {
				p.refFields = append(p.refFields, refField{i: i, pl: fp})
			}
		}
	}
	return p
}

// hasRefs reports whether t transitively contains pointers, slices,
// maps, or interfaces — the kinds whose referents hold live state.
// Funcs, channels, strings, and unsafe.Pointers are opaque words.
func hasRefs(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Pointer, reflect.Slice, reflect.Map, reflect.Interface:
		return true
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if hasRefs(t.Field(i).Type) {
				return true
			}
		}
		return false
	case reflect.Array:
		return hasRefs(t.Elem())
	default:
		return false
	}
}
