package trace

import (
	"strings"
	"testing"
	"time"

	"mnp/internal/node"
	"mnp/internal/packet"
)

func fixedClock(d time.Duration) func() time.Duration {
	return func() time.Duration { return d }
}

func TestNewLogValidation(t *testing.T) {
	if _, err := NewLog(nil); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := NewLog(fixedClock(0), WithCap(0)); err == nil {
		t.Error("zero cap accepted")
	}
}

func TestRecordAndRender(t *testing.T) {
	l, err := NewLog(fixedClock(3 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	l.NodeEvent(1, time.Second, node.Event{Kind: node.EventStateChange, State: "advertise"})
	l.NodeEvent(1, 2*time.Second, node.Event{Kind: node.EventParentSet, Peer: 0, Seg: 1})
	l.NodeEvent(1, 2*time.Second, node.Event{Kind: node.EventGotSegment, Seg: 1})
	l.NodeEvent(1, 2*time.Second, node.Event{Kind: node.EventGotCode})
	l.NodeEvent(1, 2*time.Second, node.Event{Kind: node.EventBecameSender, Seg: 1})
	l.NodeEvent(1, 2*time.Second, node.Event{Kind: node.EventRebooted})
	l.NodeEvent(1, 2*time.Second, node.Event{Kind: node.EventKind(99)})
	l.RadioState(2, time.Second, true)
	l.RadioState(2, 2*time.Second, false)
	l.StorageOp(2, true, 1, 0, 22)
	l.StorageOp(2, false, 1, 0, 22)

	if l.Len() != 11 {
		t.Fatalf("Len = %d", l.Len())
	}
	var sb strings.Builder
	if err := l.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"state -> advertise", "parent = n0", "got segment 1",
		"got full program", "became sender", "rebooted", "event 99",
		"radio on", "radio off", "eeprom write s1/p0 22B", "eeprom read s1/p0 22B",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q in:\n%s", want, out)
		}
	}
}

func TestRingEviction(t *testing.T) {
	l, err := NewLog(fixedClock(0), WithCap(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.NodeEvent(packet.NodeID(i), time.Duration(i), node.Event{Kind: node.EventGotCode})
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	if l.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", l.Dropped())
	}
	got := l.Entries()
	want := []packet.NodeID{2, 3, 4}
	for i := range want {
		if got[i].Node != want[i] {
			t.Fatalf("entries = %v, want nodes %v", got, want)
		}
	}
	var sb strings.Builder
	if err := l.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2 earlier entries dropped") {
		t.Error("dump does not mention dropped entries")
	}
}

func TestNodeFilter(t *testing.T) {
	l, err := NewLog(fixedClock(0), WithNodeFilter(func(id packet.NodeID) bool { return id == 7 }))
	if err != nil {
		t.Fatal(err)
	}
	l.RadioState(7, 0, true)
	l.RadioState(8, 0, true)
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (filtered)", l.Len())
	}
	if got := l.NodeEntries(7); len(got) != 1 {
		t.Fatalf("NodeEntries(7) = %d", len(got))
	}
	if got := l.NodeEntries(8); len(got) != 0 {
		t.Fatalf("NodeEntries(8) = %d", len(got))
	}
}

func TestMultiObserverFansOut(t *testing.T) {
	a, _ := NewLog(fixedClock(0))
	b, _ := NewLog(fixedClock(0))
	multi := node.MultiObserver{a, b}
	multi.NodeEvent(1, 0, node.Event{Kind: node.EventGotCode})
	multi.RadioState(1, 0, true)
	multi.StorageOp(1, true, 1, 0, 8)
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("fan-out lens = %d, %d", a.Len(), b.Len())
	}
}

// TestRingWrapMultipleLaps drives the ring several full laps past its
// capacity and checks the dump invariants the CLI relies on: Entries
// is chronological, exactly cap entries survive, they are the newest
// cap observations, and Dropped accounts for every eviction.
func TestRingWrapMultipleLaps(t *testing.T) {
	const cap, total = 7, 7*3 + 2
	l, err := NewLog(fixedClock(0), WithCap(cap))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		l.NodeEvent(packet.NodeID(i), time.Duration(i)*time.Second, node.Event{Kind: node.EventGotSegment, Seg: i})
	}
	if l.Len() != cap {
		t.Fatalf("Len = %d, want %d", l.Len(), cap)
	}
	if l.Dropped() != total-cap {
		t.Fatalf("Dropped = %d, want %d", l.Dropped(), total-cap)
	}
	got := l.Entries()
	if len(got) != cap {
		t.Fatalf("Entries returned %d, want %d", len(got), cap)
	}
	for i, e := range got {
		wantSeg := total - cap + i
		if e.Event.Seg != wantSeg || e.At != time.Duration(wantSeg)*time.Second {
			t.Fatalf("entry %d = seg %d at %v, want seg %d", i, e.Event.Seg, e.At, wantSeg)
		}
		if i > 0 && got[i].At <= got[i-1].At {
			t.Fatalf("entries out of chronological order at %d: %v <= %v", i, got[i].At, got[i-1].At)
		}
	}
	var sb strings.Builder
	if err := l.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != cap+1 { // entries + dropped note
		t.Fatalf("dump has %d lines, want %d", len(lines), cap+1)
	}
	if want := "16 earlier entries dropped"; !strings.Contains(lines[cap], want) {
		t.Errorf("dropped note = %q, want %q", lines[cap], want)
	}
}

// TestRingWrapExactBoundary fills the ring to exactly its capacity —
// the edge between append mode and overwrite mode — then one past it.
func TestRingWrapExactBoundary(t *testing.T) {
	l, err := NewLog(fixedClock(0), WithCap(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		l.RadioState(packet.NodeID(i), time.Duration(i), i%2 == 0)
	}
	if l.Dropped() != 0 {
		t.Fatalf("Dropped = %d before overflow, want 0", l.Dropped())
	}
	if got := l.Entries(); got[0].Node != 0 || got[3].Node != 3 {
		t.Fatalf("full-but-not-wrapped entries misordered: %v", got)
	}
	l.RadioState(4, 4, true)
	if l.Dropped() != 1 {
		t.Fatalf("Dropped = %d after one overflow, want 1", l.Dropped())
	}
	got := l.Entries()
	want := []packet.NodeID{1, 2, 3, 4}
	for i := range want {
		if got[i].Node != want[i] {
			t.Fatalf("entries after boundary wrap = %v, want nodes %v", got, want)
		}
	}
}

// TestNodeEntriesAfterWrap checks the per-node view stays ordered and
// complete across evictions.
func TestNodeEntriesAfterWrap(t *testing.T) {
	l, err := NewLog(fixedClock(0), WithCap(6))
	if err != nil {
		t.Fatal(err)
	}
	// Interleave two nodes for 12 observations; the ring keeps the
	// last 6 (three per node).
	for i := 0; i < 12; i++ {
		l.StorageOp(packet.NodeID(i%2), true, 0, i, 22)
	}
	for _, id := range []packet.NodeID{0, 1} {
		got := l.NodeEntries(id)
		if len(got) != 3 {
			t.Fatalf("node %v retained %d entries, want 3", id, len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i].Pkt <= got[i-1].Pkt {
				t.Fatalf("node %v entries out of order: %v", id, got)
			}
		}
		if got[2].Pkt < 10 {
			t.Fatalf("node %v kept stale entry %d, want the newest", id, got[2].Pkt)
		}
	}
}
