package trace

import (
	"strings"
	"testing"
	"time"

	"mnp/internal/node"
	"mnp/internal/packet"
)

func fixedClock(d time.Duration) func() time.Duration {
	return func() time.Duration { return d }
}

func TestNewLogValidation(t *testing.T) {
	if _, err := NewLog(nil); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := NewLog(fixedClock(0), WithCap(0)); err == nil {
		t.Error("zero cap accepted")
	}
}

func TestRecordAndRender(t *testing.T) {
	l, err := NewLog(fixedClock(3 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	l.NodeEvent(1, time.Second, node.Event{Kind: node.EventStateChange, State: "advertise"})
	l.NodeEvent(1, 2*time.Second, node.Event{Kind: node.EventParentSet, Peer: 0, Seg: 1})
	l.NodeEvent(1, 2*time.Second, node.Event{Kind: node.EventGotSegment, Seg: 1})
	l.NodeEvent(1, 2*time.Second, node.Event{Kind: node.EventGotCode})
	l.NodeEvent(1, 2*time.Second, node.Event{Kind: node.EventBecameSender, Seg: 1})
	l.NodeEvent(1, 2*time.Second, node.Event{Kind: node.EventRebooted})
	l.NodeEvent(1, 2*time.Second, node.Event{Kind: node.EventKind(99)})
	l.RadioState(2, time.Second, true)
	l.RadioState(2, 2*time.Second, false)
	l.StorageOp(2, true, 1, 0, 22)
	l.StorageOp(2, false, 1, 0, 22)

	if l.Len() != 11 {
		t.Fatalf("Len = %d", l.Len())
	}
	var sb strings.Builder
	if err := l.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"state -> advertise", "parent = n0", "got segment 1",
		"got full program", "became sender", "rebooted", "event 99",
		"radio on", "radio off", "eeprom write s1/p0 22B", "eeprom read s1/p0 22B",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q in:\n%s", want, out)
		}
	}
}

func TestRingEviction(t *testing.T) {
	l, err := NewLog(fixedClock(0), WithCap(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.NodeEvent(packet.NodeID(i), time.Duration(i), node.Event{Kind: node.EventGotCode})
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	if l.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", l.Dropped())
	}
	got := l.Entries()
	want := []packet.NodeID{2, 3, 4}
	for i := range want {
		if got[i].Node != want[i] {
			t.Fatalf("entries = %v, want nodes %v", got, want)
		}
	}
	var sb strings.Builder
	if err := l.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2 earlier entries dropped") {
		t.Error("dump does not mention dropped entries")
	}
}

func TestNodeFilter(t *testing.T) {
	l, err := NewLog(fixedClock(0), WithNodeFilter(func(id packet.NodeID) bool { return id == 7 }))
	if err != nil {
		t.Fatal(err)
	}
	l.RadioState(7, 0, true)
	l.RadioState(8, 0, true)
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (filtered)", l.Len())
	}
	if got := l.NodeEntries(7); len(got) != 1 {
		t.Fatalf("NodeEntries(7) = %d", len(got))
	}
	if got := l.NodeEntries(8); len(got) != 0 {
		t.Fatalf("NodeEntries(8) = %d", len(got))
	}
}

func TestMultiObserverFansOut(t *testing.T) {
	a, _ := NewLog(fixedClock(0))
	b, _ := NewLog(fixedClock(0))
	multi := node.MultiObserver{a, b}
	multi.NodeEvent(1, 0, node.Event{Kind: node.EventGotCode})
	multi.RadioState(1, 0, true)
	multi.StorageOp(1, true, 1, 0, 8)
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("fan-out lens = %d, %d", a.Len(), b.Len())
	}
}
