// Package trace records a per-run event log — protocol state changes,
// radio transitions, storage operations — as an implementation of
// node.Observer. It is the debugging companion to the metrics
// collector: metrics aggregates, trace remembers the sequence.
//
// The log is bounded: once Cap entries have been recorded, the oldest
// are dropped (a ring), so long simulations cannot exhaust memory.
package trace

import (
	"fmt"
	"io"
	"time"

	"mnp/internal/node"
	"mnp/internal/packet"
)

// Kind classifies trace entries.
type Kind int

// Entry kinds.
const (
	KindEvent Kind = iota + 1
	KindRadio
	KindStorage
)

// Entry is one recorded observation.
type Entry struct {
	At    time.Duration
	Node  packet.NodeID
	Kind  Kind
	Event node.Event // KindEvent
	On    bool       // KindRadio
	Write bool       // KindStorage
	Seg   int        // KindStorage: EEPROM slot segment
	Pkt   int        // KindStorage: EEPROM slot packet
	Bytes int        // KindStorage
}

// String renders the entry for logs.
func (e Entry) String() string {
	prefix := fmt.Sprintf("%12s %v", e.At.Round(time.Millisecond), e.Node)
	switch e.Kind {
	case KindRadio:
		state := "off"
		if e.On {
			state = "on"
		}
		return fmt.Sprintf("%s radio %s", prefix, state)
	case KindStorage:
		op := "read"
		if e.Write {
			op = "write"
		}
		return fmt.Sprintf("%s eeprom %s s%d/p%d %dB", prefix, op, e.Seg, e.Pkt, e.Bytes)
	default:
		switch e.Event.Kind {
		case node.EventStateChange:
			return fmt.Sprintf("%s state -> %s", prefix, e.Event.State)
		case node.EventParentSet:
			return fmt.Sprintf("%s parent = %v (segment %d)", prefix, e.Event.Peer, e.Event.Seg)
		case node.EventGotSegment:
			return fmt.Sprintf("%s got segment %d", prefix, e.Event.Seg)
		case node.EventGotCode:
			return fmt.Sprintf("%s got full program", prefix)
		case node.EventBecameSender:
			return fmt.Sprintf("%s became sender (segment %d)", prefix, e.Event.Seg)
		case node.EventRebooted:
			return fmt.Sprintf("%s rebooted", prefix)
		case node.EventStoreErased:
			return fmt.Sprintf("%s eeprom erased", prefix)
		case node.EventDecodeOps:
			return fmt.Sprintf("%s decoded %d row ops (segment %d)", prefix, e.Event.Ops, e.Event.Seg)
		default:
			return fmt.Sprintf("%s event %d", prefix, e.Event.Kind)
		}
	}
}

// Log is a bounded event recorder. It is not safe for concurrent use;
// in the DES all observations arrive on one goroutine.
type Log struct {
	cap     int
	entries []Entry
	start   int
	dropped int
	now     func() time.Duration
	filter  func(packet.NodeID) bool
}

// Option customizes a Log.
type Option func(*Log)

// WithCap bounds the number of retained entries (default 65536).
func WithCap(n int) Option {
	return func(l *Log) { l.cap = n }
}

// WithNodeFilter records only nodes for which keep returns true.
func WithNodeFilter(keep func(packet.NodeID) bool) Option {
	return func(l *Log) { l.filter = keep }
}

// NewLog builds a recorder; now supplies timestamps (use Kernel.Now).
func NewLog(now func() time.Duration, opts ...Option) (*Log, error) {
	if now == nil {
		return nil, fmt.Errorf("trace: clock is required")
	}
	l := &Log{cap: 65536, now: now}
	for _, o := range opts {
		o(l)
	}
	if l.cap <= 0 {
		return nil, fmt.Errorf("trace: cap %d must be positive", l.cap)
	}
	return l, nil
}

var _ node.Observer = (*Log)(nil)

// NodeEvent implements node.Observer.
func (l *Log) NodeEvent(id packet.NodeID, at time.Duration, ev node.Event) {
	l.add(Entry{At: at, Node: id, Kind: KindEvent, Event: ev})
}

// RadioState implements node.Observer.
func (l *Log) RadioState(id packet.NodeID, at time.Duration, on bool) {
	l.add(Entry{At: at, Node: id, Kind: KindRadio, On: on})
}

// StorageOp implements node.Observer.
func (l *Log) StorageOp(id packet.NodeID, write bool, seg, pkt, bytes int) {
	l.add(Entry{At: l.now(), Node: id, Kind: KindStorage, Write: write, Seg: seg, Pkt: pkt, Bytes: bytes})
}

func (l *Log) add(e Entry) {
	if l.filter != nil && !l.filter(e.Node) {
		return
	}
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, e)
		return
	}
	l.entries[l.start] = e
	l.start = (l.start + 1) % l.cap
	l.dropped++
}

// Len returns the number of retained entries.
func (l *Log) Len() int { return len(l.entries) }

// Dropped returns how many entries were evicted by the ring.
func (l *Log) Dropped() int { return l.dropped }

// Entries returns the retained entries in arrival order.
func (l *Log) Entries() []Entry {
	out := make([]Entry, 0, len(l.entries))
	out = append(out, l.entries[l.start:]...)
	out = append(out, l.entries[:l.start]...)
	return out
}

// NodeEntries returns the retained entries for one node, in order.
func (l *Log) NodeEntries(id packet.NodeID) []Entry {
	var out []Entry
	for _, e := range l.Entries() {
		if e.Node == id {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes every retained entry to w, one per line.
func (l *Log) Dump(w io.Writer) error {
	for _, e := range l.Entries() {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	if l.dropped > 0 {
		if _, err := fmt.Fprintf(w, "(%d earlier entries dropped)\n", l.dropped); err != nil {
			return err
		}
	}
	return nil
}
