package scenario

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzScenarioParse drives arbitrary bytes through the TOML/JSON
// front end. Properties: Parse never panics, and any document that
// parses must round-trip through the canonical encoder to an
// identical value and a byte-stable encoding. (Documents naming a
// points file are skipped from the re-parse check only if the file
// genuinely resolves — the fuzzer has no filesystem.)
func FuzzScenarioParse(f *testing.F) {
	f.Add([]byte(fullDoc))
	f.Add([]byte("version = 1\n[topology]\nkind = \"grid\"\nrows = 2\ncols = 2\n"))
	f.Add([]byte(`{"version": 1, "topology": {"kind": "line", "n": 3}}`))
	f.Add([]byte("version = 1\n[topology]\nkind = \"points\"\npoints = [[0,0],[1,1]]\n"))
	f.Add([]byte("version = 1\nfaults = \"crash:1@2s\"\n[topology]\nkind = \"grid\"\nrows = 2\ncols = 2\n[run]\nseeds = [1,\n 2]\n"))
	f.Add([]byte("version = 1\n[topology]\nkind = \"grid\"\nrows = 2\ncols = 2\n[mobility]\nkind = \"waypoint\"\nspeed_min = 1\nspeed_max = 3\npause = \"5s\"\nevery = \"2s\"\nseed = 3\n"))
	f.Add([]byte("key = \"unclosed"))
	f.Add([]byte("[[a]]\n[[a]]\nx = 1\n[a.b]\ny = 2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(data)
		if err != nil {
			return
		}
		enc1 := sc.EncodeTOML()
		again, err := Parse(enc1)
		if err != nil {
			t.Fatalf("canonical encoding failed to re-parse: %v\ninput: %q\nencoding:\n%s", err, data, enc1)
		}
		if !reflect.DeepEqual(sc, again) {
			t.Fatalf("round trip changed the document\nfirst:  %+v\nsecond: %+v", sc, again)
		}
		if enc2 := again.EncodeTOML(); !bytes.Equal(enc1, enc2) {
			t.Fatalf("encoding is not a fixed point:\n%s\n---\n%s", enc1, enc2)
		}
	})
}
