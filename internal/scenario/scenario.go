// Package scenario is the declarative configuration layer: a
// versioned TOML/JSON document that describes one simulated deployment
// — topology, radio model, protocol choice and tuning, battery rules,
// fault plan, invariants, telemetry, sharding, seeds — and compiles
// into an experiment.Setup. Where experiment.Setup carries Go closures
// (MNP, Battery), a Scenario carries serializable rules, so every
// sweep in the evaluation is reproducible from a checked-in artifact
// rather than a hand-wired main function. internal/campaign expands
// matrices of scenarios into run sets.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"mnp/internal/core"
	"mnp/internal/experiment"
	"mnp/internal/faults"
	"mnp/internal/invariant"
	"mnp/internal/packet"
	"mnp/internal/protoreg"
	"mnp/internal/radio"
	"mnp/internal/topology"
)

// Version is the scenario schema version this package reads and
// writes.
const Version = 1

// Scenario is one deployment described declaratively. The zero value
// of every optional field means "package default", so a minimal
// document is just a version, a name, and a topology.
type Scenario struct {
	// Version is the schema version; must be 1.
	Version int `json:"version"`
	// Name labels reports and campaign cells.
	Name string `json:"name,omitempty"`
	// Faults is a fault plan in the internal/faults spec grammar
	// (e.g. "crash:5@20s; eeprom:*:0.01"); empty means no faults.
	Faults string `json:"faults,omitempty"`

	Topology Topology  `json:"topology"`
	Radio    *Radio    `json:"radio,omitempty"`
	Mobility *Mobility `json:"mobility,omitempty"`
	Protocol Protocol  `json:"protocol,omitempty"`
	Run      Run       `json:"run,omitempty"`
	Battery  *Battery  `json:"battery,omitempty"`

	Invariants *Invariants `json:"invariants,omitempty"`
	Telemetry  *Telemetry  `json:"telemetry,omitempty"`
}

// Topology places the motes.
type Topology struct {
	// Kind is grid, line, random, points, or file.
	Kind string `json:"kind"`
	// Grid/line shape.
	Rows    int     `json:"rows,omitempty"`
	Cols    int     `json:"cols,omitempty"`
	Spacing float64 `json:"spacing,omitempty"`
	// Random placement: N motes in a Width×Height field. Radius > 0
	// demands a connected placement (topology.ConnectedRandom) at that
	// radio radius; Attempts bounds the retries (default 64). Seed
	// defaults to the run seed.
	N        int     `json:"n,omitempty"`
	Width    float64 `json:"width,omitempty"`
	Height   float64 `json:"height,omitempty"`
	Radius   float64 `json:"radius,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Attempts int     `json:"attempts,omitempty"`
	// Points lists explicit [x, y] positions (kind = points); File
	// names a JSON file holding the same list (kind = file).
	Points [][]float64 `json:"points,omitempty"`
	File   string      `json:"file,omitempty"`
}

// Radio overrides parts of the default Mica-2 channel model. Pointer
// fields distinguish "unset" from a deliberate zero.
type Radio struct {
	BitRateBps   int      `json:"bit_rate_bps,omitempty"`
	BERFloor     *float64 `json:"ber_floor,omitempty"`
	BERCeil      *float64 `json:"ber_ceil,omitempty"`
	AsymSigma    *float64 `json:"asym_sigma,omitempty"`
	CaptureRatio *float64 `json:"capture_ratio,omitempty"`
	// RangeFeet overrides or extends the power-level → range table;
	// keys are decimal power levels ("20", "255").
	RangeFeet map[string]float64 `json:"range_feet,omitempty"`
}

// Mobility puts the fleet in motion: a seeded model updates node
// positions every Every of simulated time, quantized to engine barriers
// on sharded runs. Omitting the section keeps the deployment static and
// the compiled setup byte-identical to earlier releases.
type Mobility struct {
	// Kind is waypoint (random-waypoint walk), trace (recorded
	// playback from File), or static (an explicit no-motion point for
	// campaign axes).
	Kind string `json:"kind"`
	// Waypoint parameters: uniform speeds in [SpeedMin, SpeedMax] ft/s,
	// a pause at each destination, and the roaming field anchored at
	// the layout's bounding-box origin (zero width/height = the
	// layout's own extent).
	SpeedMin float64  `json:"speed_min,omitempty"`
	SpeedMax float64  `json:"speed_max,omitempty"`
	Pause    Duration `json:"pause,omitempty"`
	Width    float64  `json:"width,omitempty"`
	Height   float64  `json:"height,omitempty"`
	// Every is the position-update step (default 10s).
	Every Duration `json:"every,omitempty"`
	// Seed drives the trajectories; zero defers to the run seed, so a
	// seed sweep explores distinct walks deterministically.
	Seed int64 `json:"seed,omitempty"`
	// File names a JSON trace ([[seconds, id, x, y], ...]) for kind =
	// trace.
	File string `json:"file,omitempty"`
}

// Protocol selects and tunes the dissemination protocol.
type Protocol struct {
	// Name is a protoreg registration: mnp (default), deluge, moap,
	// xnp.
	Name string `json:"name,omitempty"`
	// Options are protocol-specific knobs applied to every node; see
	// each protocol package's register.go for the key set. Values may
	// be strings, numbers, or booleans.
	Options map[string]any `json:"options,omitempty"`
	// Tune rules override Options on a node subset — the declarative
	// replacement for experiment.Setup.MNP. Rules apply in order; later
	// rules win. MNP only.
	Tune []TuneRule `json:"tune,omitempty"`
}

// TuneRule applies protocol options to the nodes a selector matches.
type TuneRule struct {
	// Nodes selects targets: "*", "7", "3-9", or a comma list of
	// those.
	Nodes   string         `json:"nodes"`
	Options map[string]any `json:"options"`
}

// Run sets the execution parameters.
type Run struct {
	// Seed drives the single run; Seeds, when non-empty, is the sweep
	// list (campaigns and -seeds fan-outs iterate it; single runs use
	// Seed or the first entry).
	Seed  int64   `json:"seed,omitempty"`
	Seeds []int64 `json:"seeds,omitempty"`
	// ImagePackets sizes the disseminated program.
	ImagePackets int `json:"image_packets,omitempty"`
	// Power is a TinyOS level (20) or a symbolic name: weak,
	// indoor-low, indoor-high, sim, outdoor-low, full.
	Power PowerLevel `json:"power,omitempty"`
	// Base places the base station.
	Base int `json:"base,omitempty"`
	// Limit bounds simulated time (e.g. "8h"); default 12h.
	Limit Duration `json:"limit,omitempty"`
	// Shards and Workers configure the lockstep engine.
	Shards  int `json:"shards,omitempty"`
	Workers int `json:"workers,omitempty"`
	// TileRows/TileCols select a 2D tile grid for the engine (both or
	// neither); Repartition enables the adaptive tile repartitioner,
	// tuned by RepartitionEvery (windows per decision) and
	// RepartitionThreshold (max/mean skew trigger). See DESIGN.md §4i.
	TileRows             int     `json:"tile_rows,omitempty"`
	TileCols             int     `json:"tile_cols,omitempty"`
	Repartition          bool    `json:"repartition,omitempty"`
	RepartitionEvery     int     `json:"repartition_every,omitempty"`
	RepartitionThreshold float64 `json:"repartition_threshold,omitempty"`
	// Optimistic switches the engine to optimistic window execution
	// (speculate up to Lookahead windows, roll back on late ghosts);
	// results stay byte-identical to lockstep. See DESIGN.md §4l.
	Optimistic bool `json:"optimistic,omitempty"`
	Lookahead  int  `json:"lookahead,omitempty"`
}

// Battery assigns initial battery fractions declaratively — the
// serializable replacement for experiment.Setup.Battery.
type Battery struct {
	// Default is the fleet-wide fraction (1.0 when zero).
	Default float64 `json:"default,omitempty"`
	// Rules override Default on node subsets; later rules win.
	Rules []BatteryRule `json:"rules,omitempty"`
}

// BatteryRule sets the battery level for the nodes a selector matches.
type BatteryRule struct {
	Nodes string  `json:"nodes"`
	Level float64 `json:"level"`
}

// Invariants attaches the online protocol-invariant checker.
type Invariants struct {
	Enabled             bool `json:"enabled"`
	AllowRadioOnInSleep bool `json:"allow_radio_on_in_sleep,omitempty"`
	SenderOverlapBudget int  `json:"sender_overlap_budget,omitempty"`
}

// Telemetry directs the runner to stream the run as NDJSON + counters
// into Dir. The scenario layer only carries the directive; wiring the
// recorder (which needs the run clock) is the runner's job.
type Telemetry struct {
	Dir      string `json:"dir,omitempty"`
	Progress bool   `json:"progress,omitempty"`
}

// Duration is a time.Duration that (un)marshals as a Go duration
// string ("90s", "8h").
type Duration time.Duration

// UnmarshalJSON accepts "8h"-style strings.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("duration must be a string like \"90s\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// MarshalJSON emits the duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// PowerLevel is a TinyOS power level that also accepts symbolic names.
type PowerLevel int

var powerNames = map[string]int{
	"weak":        radio.PowerWeak,
	"indoor-low":  radio.PowerIndoorLow,
	"indoor-high": radio.PowerIndoorHigh,
	"sim":         radio.PowerSim,
	"outdoor-low": radio.PowerOutdoorLow,
	"full":        radio.PowerFull,
}

// UnmarshalJSON accepts a level number or a symbolic name.
func (p *PowerLevel) UnmarshalJSON(b []byte) error {
	var n int
	if err := json.Unmarshal(b, &n); err == nil {
		*p = PowerLevel(n)
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("power must be a level or a name: %s", b)
	}
	n, ok := powerNames[strings.ToLower(s)]
	if !ok {
		names := make([]string, 0, len(powerNames))
		for k := range powerNames {
			names = append(names, k)
		}
		sort.Strings(names)
		return fmt.Errorf("unknown power name %q (have %s)", s, strings.Join(names, ", "))
	}
	*p = PowerLevel(n)
	return nil
}

// MarshalJSON emits the numeric level — the canonical form.
func (p PowerLevel) MarshalJSON() ([]byte, error) {
	return json.Marshal(int(p))
}

// Parse reads a scenario document from TOML (default) or JSON (first
// byte '{') and validates it.
func Parse(data []byte) (*Scenario, error) {
	generic, err := parseDocument(data)
	if err != nil {
		return nil, err
	}
	var sc Scenario
	if err := decodeStrict(generic, &sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	sc.normalizeEmpty()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// normalizeEmpty collapses explicitly-empty maps and arrays to nil, so
// a document that spells out an empty table ("[protocol.options]" with
// no keys) decodes to the same value as one that omits it. The
// canonical encoder skips empty collections, so without this the
// parse → encode → parse round trip would not be a fixed point.
func (s *Scenario) normalizeEmpty() {
	if len(s.Topology.Points) == 0 {
		s.Topology.Points = nil
	}
	if s.Radio != nil && len(s.Radio.RangeFeet) == 0 {
		s.Radio.RangeFeet = nil
	}
	if len(s.Protocol.Options) == 0 {
		s.Protocol.Options = nil
	}
	if len(s.Protocol.Tune) == 0 {
		s.Protocol.Tune = nil
	}
	for i := range s.Protocol.Tune {
		if len(s.Protocol.Tune[i].Options) == 0 {
			s.Protocol.Tune[i].Options = nil
		}
	}
	if len(s.Run.Seeds) == 0 {
		s.Run.Seeds = nil
	}
	if s.Battery != nil && len(s.Battery.Rules) == 0 {
		s.Battery.Rules = nil
	}
}

// ParseFile reads and parses path.
func ParseFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// ParseDocument exposes the TOML/JSON front end to sibling config
// layers (internal/campaign reuses it for plan files): it produces the
// generic nested-map form both formats share, without interpreting it
// as a Scenario.
func ParseDocument(data []byte) (map[string]any, error) {
	return parseDocument(data)
}

// DecodeStrict decodes a generic document into dst, rejecting unknown
// fields — the same typo-hostile decoding Parse applies to scenarios.
func DecodeStrict(generic map[string]any, dst any) error {
	return decodeStrict(generic, dst)
}

// parseDocument produces the generic map either format shares.
func parseDocument(data []byte) (map[string]any, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '{' {
		var m map[string]any
		dec := json.NewDecoder(bytes.NewReader(trimmed))
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("scenario: JSON: %w", err)
		}
		return m, nil
	}
	m, err := parseTOML(string(data))
	if err != nil {
		return nil, fmt.Errorf("scenario: TOML: %w", err)
	}
	return m, nil
}

// decodeStrict round-trips the generic map through JSON into the typed
// document, rejecting unknown fields — a typo in a scenario file must
// be an error, not a silently ignored knob.
func decodeStrict(generic map[string]any, dst any) error {
	buf, err := json.Marshal(generic)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

// Validate checks everything checkable without building: version,
// topology shape, protocol and option validity, selectors, the fault
// grammar, and power levels.
func (s *Scenario) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("scenario %s: version %d is not supported (want %d)", s.Name, s.Version, Version)
	}
	n, err := s.Topology.nodeCount()
	if err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	proto := s.Protocol.Name
	if proto == "" {
		proto = "mnp"
	}
	if _, ok := protoreg.Lookup(proto); !ok {
		return fmt.Errorf("scenario %s: unknown protocol %q (have %s)",
			s.Name, proto, strings.Join(protoreg.Names(), ", "))
	}
	opts, err := optionStrings(s.Protocol.Options)
	if err != nil {
		return fmt.Errorf("scenario %s: protocol options: %w", s.Name, err)
	}
	if err := protoreg.ValidateOptions(proto, opts); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if len(s.Protocol.Tune) > 0 && !strings.EqualFold(proto, "mnp") {
		return fmt.Errorf("scenario %s: tune rules require protocol mnp, not %s", s.Name, proto)
	}
	for i, rule := range s.Protocol.Tune {
		if _, err := parseNodeSet(rule.Nodes, n); err != nil {
			return fmt.Errorf("scenario %s: tune rule %d: %w", s.Name, i, err)
		}
		ropts, err := optionStrings(rule.Options)
		if err != nil {
			return fmt.Errorf("scenario %s: tune rule %d: %w", s.Name, i, err)
		}
		var scratch core.Config
		if err := core.ApplyOptions(&scratch, ropts); err != nil {
			return fmt.Errorf("scenario %s: tune rule %d: %w", s.Name, i, err)
		}
	}
	if s.Battery != nil {
		if s.Battery.Default < 0 || s.Battery.Default > 1 {
			return fmt.Errorf("scenario %s: battery default %g outside [0, 1]", s.Name, s.Battery.Default)
		}
		for i, rule := range s.Battery.Rules {
			if _, err := parseNodeSet(rule.Nodes, n); err != nil {
				return fmt.Errorf("scenario %s: battery rule %d: %w", s.Name, i, err)
			}
			if rule.Level < 0 || rule.Level > 1 {
				return fmt.Errorf("scenario %s: battery rule %d level %g outside [0, 1]", s.Name, i, rule.Level)
			}
		}
	}
	if err := s.Mobility.validate(n); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if s.Faults != "" {
		if _, err := faults.ParseSpec(s.Faults); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	if s.Run.ImagePackets < 0 {
		return fmt.Errorf("scenario %s: image_packets %d is negative", s.Name, s.Run.ImagePackets)
	}
	if s.Run.Base < 0 || s.Run.Base >= n {
		return fmt.Errorf("scenario %s: base %d outside the %d-node layout", s.Name, s.Run.Base, n)
	}
	if p := int(s.Run.Power); p != 0 {
		if _, err := s.compileRadio().RangeForPower(p); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	return nil
}

// RangeForPower reports whether the parameter set knows the power
// level. (Medium.RangeFor needs a built medium; validation only needs
// the table.)
func (p paramsView) RangeForPower(power int) (float64, error) {
	ft, ok := p.TxRangeFeet[power]
	if !ok {
		return 0, fmt.Errorf("no radio range configured for power level %d", power)
	}
	return ft, nil
}

type paramsView struct{ radio.Params }

func (s *Scenario) compileRadio() paramsView {
	rp := radio.DefaultParams()
	if r := s.Radio; r != nil {
		if r.BitRateBps != 0 {
			rp.BitRateBps = r.BitRateBps
		}
		if r.BERFloor != nil {
			rp.BERFloor = *r.BERFloor
		}
		if r.BERCeil != nil {
			rp.BERCeil = *r.BERCeil
		}
		if r.AsymSigma != nil {
			rp.AsymSigma = *r.AsymSigma
		}
		if r.CaptureRatio != nil {
			rp.CaptureRatio = *r.CaptureRatio
		}
		if len(r.RangeFeet) > 0 {
			table := make(map[int]float64, len(rp.TxRangeFeet)+len(r.RangeFeet))
			for k, v := range rp.TxRangeFeet {
				table[k] = v
			}
			for k, v := range r.RangeFeet {
				level, err := strconv.Atoi(k)
				if err != nil {
					continue // Validate rejects this before Compile runs
				}
				table[level] = v
			}
			rp.TxRangeFeet = table
		}
	}
	return paramsView{rp}
}

// nodeCount derives the fleet size without building the layout (file
// topologies read the file).
func (t *Topology) nodeCount() (int, error) {
	switch t.Kind {
	case "grid":
		if t.Rows <= 0 || t.Cols <= 0 {
			return 0, fmt.Errorf("topology: grid %dx%d must be positive", t.Rows, t.Cols)
		}
		return t.Rows * t.Cols, nil
	case "line":
		if t.N <= 0 {
			return 0, fmt.Errorf("topology: line needs n > 0")
		}
		return t.N, nil
	case "random":
		if t.N <= 0 {
			return 0, fmt.Errorf("topology: random needs n > 0")
		}
		return t.N, nil
	case "points":
		if len(t.Points) == 0 {
			return 0, fmt.Errorf("topology: points list is empty")
		}
		return len(t.Points), nil
	case "file":
		pts, err := t.loadPointsFile()
		if err != nil {
			return 0, err
		}
		return len(pts), nil
	case "":
		return 0, fmt.Errorf("topology: kind is required (grid, line, random, points, file)")
	default:
		return 0, fmt.Errorf("topology: unknown kind %q", t.Kind)
	}
}

func (t *Topology) loadPointsFile() ([][]float64, error) {
	if !strings.HasSuffix(t.File, ".json") {
		return nil, fmt.Errorf("topology: points file %q must end in .json", t.File)
	}
	data, err := os.ReadFile(t.File)
	if err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	var pts [][]float64
	if err := json.Unmarshal(data, &pts); err != nil {
		return nil, fmt.Errorf("topology: %s: %w", t.File, err)
	}
	return pts, nil
}

// Build constructs the layout. The runSeed parameterizes random
// placements that leave Seed zero, so a seed sweep over a random
// topology explores distinct placements deterministically.
func (t *Topology) Build(runSeed int64) (*topology.Layout, error) {
	switch t.Kind {
	case "grid":
		spacing := t.Spacing
		if spacing == 0 {
			spacing = 10
		}
		return topology.Grid(t.Rows, t.Cols, spacing)
	case "line":
		spacing := t.Spacing
		if spacing == 0 {
			spacing = 10
		}
		return topology.Line(t.N, spacing)
	case "random":
		seed := t.Seed
		if seed == 0 {
			seed = runSeed
		}
		if t.Radius > 0 {
			attempts := t.Attempts
			if attempts == 0 {
				attempts = 64
			}
			return topology.ConnectedRandom(t.N, t.Width, t.Height, t.Radius, seed, attempts)
		}
		return topology.Random(t.N, t.Width, t.Height, seed)
	case "points":
		return pointsLayout("points", t.Points)
	case "file":
		pts, err := t.loadPointsFile()
		if err != nil {
			return nil, err
		}
		return pointsLayout(t.File, pts)
	default:
		return nil, fmt.Errorf("topology: unknown kind %q", t.Kind)
	}
}

func pointsLayout(name string, raw [][]float64) (*topology.Layout, error) {
	pts := make([]topology.Point, len(raw))
	for i, xy := range raw {
		if len(xy) != 2 {
			return nil, fmt.Errorf("topology: point %d has %d coordinates, want [x, y]", i, len(xy))
		}
		pts[i] = topology.Point{X: xy[0], Y: xy[1]}
	}
	return topology.FromPoints(name, pts)
}

// Label names the topology for campaign cell keys without requiring a
// seed (random placements are labeled by shape, not instance). Grids
// and lines with an explicit non-default spacing carry it in the label
// so a density sweep (same shape, different spacing) yields distinct
// cell keys; the default spacing keeps the short historical form.
func (t *Topology) Label() string {
	switch t.Kind {
	case "grid":
		if t.Spacing != 0 && t.Spacing != 10 {
			return fmt.Sprintf("grid-%dx%d-sp%g", t.Rows, t.Cols, t.Spacing)
		}
		return fmt.Sprintf("grid-%dx%d", t.Rows, t.Cols)
	case "line":
		if t.Spacing != 0 && t.Spacing != 10 {
			return fmt.Sprintf("line-%d-sp%g", t.N, t.Spacing)
		}
		return fmt.Sprintf("line-%d", t.N)
	case "random":
		return fmt.Sprintf("random-%d", t.N)
	case "points":
		return fmt.Sprintf("points-%d", len(t.Points))
	case "file":
		base := t.File
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		return strings.TrimSuffix(base, ".json")
	default:
		return t.Kind
	}
}

// validate checks a mobility section against a fleet of n nodes; nil
// (no section) is the static deployment and always valid.
func (m *Mobility) validate(n int) error {
	if m == nil {
		return nil
	}
	if m.Every < 0 {
		return fmt.Errorf("mobility: step %v is negative", time.Duration(m.Every))
	}
	switch m.Kind {
	case "waypoint":
		if m.File != "" {
			return fmt.Errorf("mobility: file is only for kind trace")
		}
		if m.SpeedMin <= 0 || m.SpeedMax < m.SpeedMin {
			return fmt.Errorf("mobility: speeds [%g, %g] ft/s invalid (need 0 < min <= max)", m.SpeedMin, m.SpeedMax)
		}
		if m.Pause < 0 {
			return fmt.Errorf("mobility: pause %v is negative", time.Duration(m.Pause))
		}
		if m.Width < 0 || m.Height < 0 {
			return fmt.Errorf("mobility: field %gx%g ft invalid", m.Width, m.Height)
		}
	case "trace":
		if m.File == "" {
			return fmt.Errorf("mobility: kind trace requires a file")
		}
		data, err := os.ReadFile(m.File)
		if err != nil {
			return fmt.Errorf("mobility: %w", err)
		}
		if _, err := topology.ParseTrace(data, n); err != nil {
			return fmt.Errorf("mobility: %s: %w", m.File, err)
		}
	case "static":
		if m.SpeedMin != 0 || m.SpeedMax != 0 || m.Pause != 0 || m.Width != 0 || m.Height != 0 || m.File != "" {
			return fmt.Errorf("mobility: kind static takes no parameters")
		}
	case "":
		return fmt.Errorf("mobility: kind is required (waypoint, trace, static)")
	default:
		return fmt.Errorf("mobility: unknown kind %q", m.Kind)
	}
	return nil
}

// build constructs the model over the final layout. Static sections
// return a nil model (the factory is never installed for them).
func (m *Mobility) build(l *topology.Layout, runSeed int64) (topology.Mobility, error) {
	switch m.Kind {
	case "waypoint":
		seed := m.Seed
		if seed == 0 {
			seed = runSeed
		}
		return topology.NewWaypoint(l, topology.WaypointConfig{
			SpeedMin: m.SpeedMin, SpeedMax: m.SpeedMax,
			Pause: time.Duration(m.Pause),
			Width: m.Width, Height: m.Height,
			Seed: seed,
		})
	case "trace":
		data, err := os.ReadFile(m.File)
		if err != nil {
			return nil, fmt.Errorf("mobility: %w", err)
		}
		return topology.ParseTrace(data, l.N())
	default:
		return nil, fmt.Errorf("mobility: unknown kind %q", m.Kind)
	}
}

// Label names the mobility point for campaign cell keys.
func (m *Mobility) Label() string {
	switch m.Kind {
	case "waypoint":
		return fmt.Sprintf("wp%g-%g", m.SpeedMin, m.SpeedMax)
	case "trace":
		base := m.File
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		return "trace-" + strings.TrimSuffix(base, ".json")
	default:
		return m.Kind
	}
}

// Compile lowers the document into an executable experiment.Setup.
// Declarative battery and tune rules become the Setup's closure
// fields; everything else maps directly. Telemetry is NOT wired here —
// the recorder needs the run clock, which exists only after Build —
// so runners handle the Telemetry directive themselves.
func (s *Scenario) Compile() (experiment.Setup, error) {
	if err := s.Validate(); err != nil {
		return experiment.Setup{}, err
	}
	setup := experiment.Setup{
		Name:         s.Name,
		ImagePackets: s.Run.ImagePackets,
		Seed:         s.Run.Seed,
		BaseID:       packet.NodeID(s.Run.Base),
		Power:        int(s.Run.Power),
		Limit:        time.Duration(s.Run.Limit),
		Shards:       s.Run.Shards,
		Workers:      s.Run.Workers,

		TileRows:             s.Run.TileRows,
		TileCols:             s.Run.TileCols,
		Repartition:          s.Run.Repartition,
		RepartitionEvery:     s.Run.RepartitionEvery,
		RepartitionThreshold: s.Run.RepartitionThreshold,
		Optimistic:           s.Run.Optimistic,
		Lookahead:            s.Run.Lookahead,
	}
	if setup.Name == "" {
		setup.Name = "scenario"
	}

	// Topology: grids stay native (rows/cols/spacing) so compiled
	// setups are field-for-field identical to hand-written ones; other
	// kinds become explicit layouts.
	if s.Topology.Kind == "grid" {
		setup.Rows, setup.Cols, setup.Spacing = s.Topology.Rows, s.Topology.Cols, s.Topology.Spacing
	} else {
		layout, err := s.Topology.Build(s.Run.Seed)
		if err != nil {
			return experiment.Setup{}, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		setup.Layout = layout
	}

	if s.Radio != nil {
		rp := s.compileRadio().Params
		setup.Radio = &rp
	}

	if m := s.Mobility; m != nil && m.Kind != "static" {
		mob := *m // value copy; the closure outlives the document
		setup.Mobility = mob.build
		setup.MobilityEvery = time.Duration(m.Every)
	}

	proto := s.Protocol.Name
	if proto == "" {
		proto = "mnp"
	}
	kind, ok := experiment.ProtocolByName(proto)
	if !ok {
		return experiment.Setup{}, fmt.Errorf("scenario %s: unknown protocol %q", s.Name, proto)
	}
	setup.Protocol = kind
	if len(s.Protocol.Options) > 0 {
		opts, err := optionStrings(s.Protocol.Options)
		if err != nil {
			return experiment.Setup{}, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		setup.ProtocolOptions = opts
	}
	if len(s.Protocol.Tune) > 0 {
		tune, err := s.compileTune()
		if err != nil {
			return experiment.Setup{}, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		setup.MNP = tune
	}

	if s.Battery != nil {
		battery, err := s.compileBattery()
		if err != nil {
			return experiment.Setup{}, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		setup.Battery = battery
	}

	if s.Faults != "" {
		plan, err := faults.ParseSpec(s.Faults)
		if err != nil {
			return experiment.Setup{}, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		setup.Faults = plan
	}

	if s.Invariants != nil && s.Invariants.Enabled {
		setup.Invariants = &invariant.Config{
			AllowRadioOnInSleep: s.Invariants.AllowRadioOnInSleep,
			SenderOverlapBudget: s.Invariants.SenderOverlapBudget,
		}
	}
	return setup, nil
}

// compileTune lowers tune rules into the typed MNP hook. Selector and
// option validity were established by Validate, so the closure applies
// rules unconditionally.
func (s *Scenario) compileTune() (func(packet.NodeID, *core.Config), error) {
	n, err := s.Topology.nodeCount()
	if err != nil {
		return nil, err
	}
	type compiled struct {
		match func(packet.NodeID) bool
		opts  map[string]string
	}
	rules := make([]compiled, 0, len(s.Protocol.Tune))
	for i, rule := range s.Protocol.Tune {
		match, err := parseNodeSet(rule.Nodes, n)
		if err != nil {
			return nil, fmt.Errorf("tune rule %d: %w", i, err)
		}
		opts, err := optionStrings(rule.Options)
		if err != nil {
			return nil, fmt.Errorf("tune rule %d: %w", i, err)
		}
		rules = append(rules, compiled{match, opts})
	}
	return func(id packet.NodeID, cfg *core.Config) {
		for _, r := range rules {
			if r.match(id) {
				// Validate dry-ran every rule; an error here is
				// impossible by construction.
				if err := core.ApplyOptions(cfg, r.opts); err != nil {
					panic(fmt.Sprintf("scenario: tune rule: %v", err))
				}
			}
		}
	}, nil
}

// compileBattery lowers battery rules into the battery closure.
func (s *Scenario) compileBattery() (func(packet.NodeID) float64, error) {
	n, err := s.Topology.nodeCount()
	if err != nil {
		return nil, err
	}
	def := s.Battery.Default
	if def == 0 {
		def = 1.0
	}
	type compiled struct {
		match func(packet.NodeID) bool
		level float64
	}
	rules := make([]compiled, 0, len(s.Battery.Rules))
	for i, rule := range s.Battery.Rules {
		match, err := parseNodeSet(rule.Nodes, n)
		if err != nil {
			return nil, fmt.Errorf("battery rule %d: %w", i, err)
		}
		rules = append(rules, compiled{match, rule.Level})
	}
	return func(id packet.NodeID) float64 {
		level := def
		for _, r := range rules {
			if r.match(id) {
				level = r.level
			}
		}
		return level
	}, nil
}

// SeedList returns the seeds a sweep over this scenario covers: Seeds
// when set, else the single Seed.
func (s *Scenario) SeedList() []int64 {
	if len(s.Run.Seeds) > 0 {
		return s.Run.Seeds
	}
	return []int64{s.Run.Seed}
}

// optionStrings flattens a decoded option map (whose values may be
// TOML/JSON strings, numbers, or booleans) into the string-keyed form
// the registry consumes.
func optionStrings(m map[string]any) (map[string]string, error) {
	if len(m) == 0 {
		return nil, nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		switch t := v.(type) {
		case string:
			out[k] = t
		case bool:
			out[k] = strconv.FormatBool(t)
		case int64:
			out[k] = strconv.FormatInt(t, 10)
		case float64:
			// JSON numbers arrive as float64; render integers plainly.
			if t == float64(int64(t)) {
				out[k] = strconv.FormatInt(int64(t), 10)
			} else {
				out[k] = strconv.FormatFloat(t, 'g', -1, 64)
			}
		default:
			return nil, fmt.Errorf("option %s has unsupported type %T", k, v)
		}
	}
	return out, nil
}

// parseNodeSet compiles a node selector — "*", "7", "3-9", or a comma
// list — into a membership predicate over a fleet of n nodes.
func parseNodeSet(sel string, n int) (func(packet.NodeID) bool, error) {
	sel = strings.TrimSpace(sel)
	if sel == "" {
		return nil, fmt.Errorf("empty node selector")
	}
	if sel == "*" {
		return func(packet.NodeID) bool { return true }, nil
	}
	member := map[packet.NodeID]bool{}
	for _, part := range strings.Split(sel, ",") {
		part = strings.TrimSpace(part)
		lo, hi, found := strings.Cut(part, "-")
		a, err := strconv.Atoi(strings.TrimSpace(lo))
		if err != nil {
			return nil, fmt.Errorf("bad node selector %q", part)
		}
		b := a
		if found {
			if b, err = strconv.Atoi(strings.TrimSpace(hi)); err != nil {
				return nil, fmt.Errorf("bad node selector %q", part)
			}
		}
		if a < 0 || b < a || b >= n {
			return nil, fmt.Errorf("node selector %q outside the %d-node fleet", part, n)
		}
		for id := a; id <= b; id++ {
			member[packet.NodeID(id)] = true
		}
	}
	return func(id packet.NodeID) bool { return member[id] }, nil
}
