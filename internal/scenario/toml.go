package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// parseTOML parses the TOML subset scenario and campaign files use
// into nested map[string]any — the same generic shape encoding/json
// produces — so one typed decoder serves both formats.
//
// Supported: comments, [tables], [[arrays of tables]], dotted and
// quoted keys, basic and literal strings, integers (with _
// separators), floats, booleans, and (possibly multiline) arrays of
// any supported value. Deliberately absent: inline tables, multiline
// strings, dates — scenario documents do not need them, and a small
// grammar keeps the fuzz surface honest.
func parseTOML(src string) (map[string]any, error) {
	root := map[string]any{}
	cur := root
	lines := strings.Split(src, "\n")
	for ln := 0; ln < len(lines); ln++ {
		line := strings.TrimSpace(stripComment(lines[ln]))
		if line == "" {
			continue
		}
		lineNo := ln + 1
		switch {
		case strings.HasPrefix(line, "[["):
			if !strings.HasSuffix(line, "]]") {
				return nil, fmt.Errorf("line %d: malformed table array header %q", lineNo, line)
			}
			path, err := parseKeyPath(strings.TrimSuffix(strings.TrimPrefix(line, "[["), "]]"))
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			parent, err := descend(root, path[:len(path)-1])
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			last := path[len(path)-1]
			entry := map[string]any{}
			switch existing := parent[last].(type) {
			case nil:
				parent[last] = []any{entry}
			case []any:
				parent[last] = append(existing, entry)
			default:
				return nil, fmt.Errorf("line %d: key %q is not a table array", lineNo, strings.Join(path, "."))
			}
			cur = entry
		case strings.HasPrefix(line, "["):
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("line %d: malformed table header %q", lineNo, line)
			}
			path, err := parseKeyPath(strings.TrimSuffix(strings.TrimPrefix(line, "["), "]"))
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			tbl, err := descend(root, path)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			cur = tbl
		default:
			eq := indexUnquoted(line, '=')
			if eq < 0 {
				return nil, fmt.Errorf("line %d: expected key = value, got %q", lineNo, line)
			}
			path, err := parseKeyPath(line[:eq])
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			raw := strings.TrimSpace(line[eq+1:])
			// Arrays may span lines: keep consuming until brackets
			// balance outside strings.
			for bracketDepth(raw) > 0 && ln+1 < len(lines) {
				ln++
				raw += "\n" + strings.TrimSpace(stripComment(lines[ln]))
			}
			val, err := parseValue(raw)
			if err != nil {
				return nil, fmt.Errorf("line %d: key %s: %w", lineNo, strings.Join(path, "."), err)
			}
			tbl := cur
			if len(path) > 1 {
				tbl, err = descend(cur, path[:len(path)-1])
				if err != nil {
					return nil, fmt.Errorf("line %d: %w", lineNo, err)
				}
			}
			last := path[len(path)-1]
			if _, dup := tbl[last]; dup {
				return nil, fmt.Errorf("line %d: duplicate key %q", lineNo, strings.Join(path, "."))
			}
			tbl[last] = val
		}
	}
	return root, nil
}

// descend walks (creating as needed) nested tables along path. For a
// path ending at an array of tables, it descends into the last entry —
// the TOML rule for [x.y] headers after [[x]].
func descend(root map[string]any, path []string) (map[string]any, error) {
	cur := root
	for _, key := range path {
		switch next := cur[key].(type) {
		case nil:
			tbl := map[string]any{}
			cur[key] = tbl
			cur = tbl
		case map[string]any:
			cur = next
		case []any:
			if len(next) == 0 {
				return nil, fmt.Errorf("key %q is an empty table array", key)
			}
			tbl, ok := next[len(next)-1].(map[string]any)
			if !ok {
				return nil, fmt.Errorf("key %q is not a table", key)
			}
			cur = tbl
		default:
			return nil, fmt.Errorf("key %q is a value, not a table", key)
		}
	}
	return cur, nil
}

// parseKeyPath splits a possibly dotted, possibly quoted key.
func parseKeyPath(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("empty key")
	}
	var path []string
	for len(s) > 0 {
		s = strings.TrimSpace(s)
		if strings.HasPrefix(s, `"`) {
			val, rest, err := scanBasicString(s)
			if err != nil {
				return nil, err
			}
			path = append(path, val)
			s = strings.TrimSpace(rest)
			if s == "" {
				return path, nil
			}
			if !strings.HasPrefix(s, ".") {
				return nil, fmt.Errorf("unexpected %q after quoted key", s)
			}
			s = s[1:]
			continue
		}
		part := s
		if i := strings.IndexByte(s, '.'); i >= 0 {
			part, s = s[:i], s[i+1:]
		} else {
			s = ""
		}
		part = strings.TrimSpace(part)
		if !isBareKey(part) {
			return nil, fmt.Errorf("invalid key %q", part)
		}
		path = append(path, part)
	}
	return path, nil
}

func isBareKey(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// parseValue parses one TOML value (the full remaining text must be
// consumed).
func parseValue(s string) (any, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("missing value")
	}
	switch {
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	case s[0] == '"':
		val, rest, err := scanBasicString(s)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, fmt.Errorf("trailing garbage %q after string", rest)
		}
		return val, nil
	case s[0] == '\'':
		end := strings.IndexByte(s[1:], '\'')
		if end < 0 {
			return nil, fmt.Errorf("unterminated literal string")
		}
		if strings.TrimSpace(s[end+2:]) != "" {
			return nil, fmt.Errorf("trailing garbage after string")
		}
		return s[1 : end+1], nil
	case s[0] == '[':
		return parseArray(s)
	default:
		plain := strings.ReplaceAll(s, "_", "")
		if n, err := strconv.ParseInt(plain, 10, 64); err == nil {
			return n, nil
		}
		if f, err := strconv.ParseFloat(plain, 64); err == nil {
			return f, nil
		}
		return nil, fmt.Errorf("unparseable value %q", s)
	}
}

// parseArray parses a bracketed array of values, splitting elements at
// top-level commas.
func parseArray(s string) (any, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") || bracketDepth(s) != 0 {
		return nil, fmt.Errorf("malformed array %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	out := []any{}
	if inner == "" {
		return out, nil
	}
	depth, start, inStr, inLit := 0, 0, false, false
	emit := func(end int) error {
		elem := strings.TrimSpace(inner[start:end])
		if elem == "" {
			return fmt.Errorf("empty array element in %q", s)
		}
		v, err := parseValue(elem)
		if err != nil {
			return err
		}
		out = append(out, v)
		return nil
	}
	for i := 0; i < len(inner); i++ {
		c := inner[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case inLit:
			if c == '\'' {
				inLit = false
			}
		case c == '"':
			inStr = true
		case c == '\'':
			inLit = true
		case c == '[':
			depth++
		case c == ']':
			depth--
		case c == ',' && depth == 0:
			if err := emit(i); err != nil {
				return nil, err
			}
			start = i + 1
		}
	}
	if strings.TrimSpace(inner[start:]) != "" {
		if err := emit(len(inner)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// scanBasicString scans a leading double-quoted string, returning its
// unescaped value and the remainder.
func scanBasicString(s string) (val, rest string, err error) {
	if len(s) < 2 || s[0] != '"' {
		return "", "", fmt.Errorf("not a string: %q", s)
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch c {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape in %q", s)
			}
			switch s[i] {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			default:
				return "", "", fmt.Errorf("unsupported escape \\%c", s[i])
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated string %q", s)
}

// indexUnquoted returns the index of the first c outside quoted
// strings, or -1.
func indexUnquoted(s string, c byte) int {
	inStr, inLit := false, false
	for i := 0; i < len(s); i++ {
		switch ch := s[i]; {
		case inStr:
			if ch == '\\' {
				i++
			} else if ch == '"' {
				inStr = false
			}
		case inLit:
			if ch == '\'' {
				inLit = false
			}
		case ch == '"':
			inStr = true
		case ch == '\'':
			inLit = true
		case ch == c:
			return i
		}
	}
	return -1
}

// stripComment removes a trailing # comment, respecting strings.
func stripComment(line string) string {
	inStr, inLit := false, false
	for i := 0; i < len(line); i++ {
		switch c := line[i]; {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case inLit:
			if c == '\'' {
				inLit = false
			}
		case c == '"':
			inStr = true
		case c == '\'':
			inLit = true
		case c == '#':
			return line[:i]
		}
	}
	return line
}

// bracketDepth counts unbalanced [ outside strings — used to join
// multiline arrays.
func bracketDepth(s string) int {
	depth, inStr, inLit := 0, false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case inLit:
			if c == '\'' {
				inLit = false
			}
		case c == '"':
			inStr = true
		case c == '\'':
			inLit = true
		case c == '[':
			depth++
		case c == ']':
			depth--
		}
	}
	return depth
}
