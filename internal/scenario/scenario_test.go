package scenario

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"mnp/internal/core"
	"mnp/internal/experiment"
	"mnp/internal/packet"
	"mnp/internal/radio"
)

const fullDoc = `
# A kitchen-sink scenario exercising every section.
version = 1
name = "full"
faults = "crash:5@20s; eeprom:*:0.01"

[topology]
kind = "grid"
rows = 6
cols = 6
spacing = 12.5

[radio]
ber_floor = 0.0002
asym_sigma = 0.25
[radio.range_feet]
20 = 30

[mobility]
kind = "waypoint"
speed_min = 1.5
speed_max = 4
pause = "20s"
every = "5s"

[protocol]
name = "mnp"
[protocol.options]
no_sleep = true
advertise_count = 3
data_interval = "45ms"

[[protocol.tune]]
nodes = "6-11"
[protocol.tune.options]
sleep_factor = 2.0

[run]
seed = 7
seeds = [7, 11, 13]
image_packets = 128
power = "sim"
limit = "6h"
shards = 2
workers = 1
tile_rows = 2
tile_cols = 3
repartition = true
repartition_every = 8
repartition_threshold = 1.5

[battery]
default = 0.9
[[battery.rules]]
nodes = "0,3-4"
level = 0.2

[invariants]
enabled = true
sender_overlap_budget = 10

[telemetry]
dir = "out/"
progress = true
`

func TestParseFullDocument(t *testing.T) {
	sc, err := Parse([]byte(fullDoc))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "full" || sc.Version != 1 {
		t.Fatalf("name=%q version=%d", sc.Name, sc.Version)
	}
	if sc.Topology.Kind != "grid" || sc.Topology.Rows != 6 || sc.Topology.Spacing != 12.5 {
		t.Fatalf("topology = %+v", sc.Topology)
	}
	if sc.Radio == nil || *sc.Radio.BERFloor != 0.0002 || sc.Radio.RangeFeet["20"] != 30 {
		t.Fatalf("radio = %+v", sc.Radio)
	}
	if m := sc.Mobility; m == nil || m.Kind != "waypoint" || m.SpeedMin != 1.5 || m.SpeedMax != 4 ||
		time.Duration(m.Pause) != 20*time.Second || time.Duration(m.Every) != 5*time.Second {
		t.Fatalf("mobility = %+v", sc.Mobility)
	}
	if got := sc.Protocol.Options["advertise_count"]; got != float64(3) {
		t.Fatalf("advertise_count = %v (%T)", got, got)
	}
	if len(sc.Protocol.Tune) != 1 || sc.Protocol.Tune[0].Nodes != "6-11" {
		t.Fatalf("tune = %+v", sc.Protocol.Tune)
	}
	if int(sc.Run.Power) != radio.PowerSim {
		t.Fatalf("power = %d, want %d", sc.Run.Power, radio.PowerSim)
	}
	if time.Duration(sc.Run.Limit) != 6*time.Hour {
		t.Fatalf("limit = %v", sc.Run.Limit)
	}
	if !reflect.DeepEqual(sc.SeedList(), []int64{7, 11, 13}) {
		t.Fatalf("seeds = %v", sc.SeedList())
	}
	if sc.Run.TileRows != 2 || sc.Run.TileCols != 3 || !sc.Run.Repartition ||
		sc.Run.RepartitionEvery != 8 || sc.Run.RepartitionThreshold != 1.5 {
		t.Fatalf("tile knobs = %+v", sc.Run)
	}
	if sc.Battery == nil || len(sc.Battery.Rules) != 1 {
		t.Fatalf("battery = %+v", sc.Battery)
	}
	if sc.Invariants == nil || !sc.Invariants.Enabled || sc.Invariants.SenderOverlapBudget != 10 {
		t.Fatalf("invariants = %+v", sc.Invariants)
	}
	if sc.Telemetry == nil || sc.Telemetry.Dir != "out/" || !sc.Telemetry.Progress {
		t.Fatalf("telemetry = %+v", sc.Telemetry)
	}
}

// TestRoundTripStable pins the serialization fixed point: parsing a
// document, encoding it, and re-parsing must reproduce the identical
// typed value AND identical canonical bytes.
func TestRoundTripStable(t *testing.T) {
	docs := map[string]string{
		"full": fullDoc,
		"minimal": `
version = 1
name = "min"
[topology]
kind = "line"
n = 5
`,
		"random-topology": `
version = 1
name = "rand"
[topology]
kind = "random"
n = 20
width = 120
height = 90
radius = 30
[run]
seed = 3
`,
		"points": `
version = 1
name = "pts"
[topology]
kind = "points"
points = [[0, 0], [10.5, 0], [0, 21]]
[protocol]
name = "deluge"
`,
		"mobile-gossip": `
version = 1
name = "mob"
[topology]
kind = "grid"
rows = 4
cols = 4
[mobility]
kind = "waypoint"
speed_min = 2
speed_max = 6
pause = "30s"
width = 100
height = 80
every = "2s"
seed = 11
[protocol]
name = "gossip"
`,
		"mobility-static-point": `
version = 1
name = "stat"
[topology]
kind = "grid"
rows = 3
cols = 3
[mobility]
kind = "static"
`,
		// A [run] section whose only content is the repartition flag:
		// the encoder's run-section predicate must not drop it.
		"repartition-only": `
version = 1
name = "rep"
[topology]
kind = "grid"
rows = 4
cols = 4
[run]
repartition = true
`,
	}
	for name, doc := range docs {
		t.Run(name, func(t *testing.T) {
			s1, err := Parse([]byte(doc))
			if err != nil {
				t.Fatal(err)
			}
			enc1 := s1.EncodeTOML()
			s2, err := Parse(enc1)
			if err != nil {
				t.Fatalf("re-parsing canonical encoding: %v\n%s", err, enc1)
			}
			if !reflect.DeepEqual(s1, s2) {
				t.Fatalf("round-trip changed the document:\nfirst:  %+v\nsecond: %+v", s1, s2)
			}
			enc2 := s2.EncodeTOML()
			if !bytes.Equal(enc1, enc2) {
				t.Fatalf("canonical encoding is not a fixed point:\n%s\n---\n%s", enc1, enc2)
			}
			// Compile must succeed both times.
			if _, err := s1.Compile(); err != nil {
				t.Fatal(err)
			}
			if _, err := s2.Compile(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestParseJSON(t *testing.T) {
	doc := `{
  "version": 1,
  "name": "json",
  "topology": {"kind": "grid", "rows": 3, "cols": 5},
  "run": {"seed": 42, "image_packets": 64, "limit": "2h"},
  "protocol": {"name": "xnp"}
}`
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	setup, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if setup.Protocol != experiment.ProtocolXNP || setup.Rows != 3 || setup.Cols != 5 {
		t.Fatalf("setup = %+v", setup)
	}
	if setup.Limit != 2*time.Hour {
		t.Fatalf("limit = %v", setup.Limit)
	}
	// JSON and its canonical TOML encoding parse identically.
	again, err := Parse(sc.EncodeTOML())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, again) {
		t.Fatal("JSON → TOML round trip changed the document")
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"bad-version", "version = 2\n[topology]\nkind = \"grid\"\nrows = 2\ncols = 2\n", "version 2"},
		{"no-topology", "version = 1\n", "kind is required"},
		{"unknown-key", "version = 1\nbanana = true\n[topology]\nkind = \"grid\"\nrows = 2\ncols = 2\n", "banana"},
		{"unknown-protocol", "version = 1\n[topology]\nkind = \"grid\"\nrows = 2\ncols = 2\n[protocol]\nname = \"gcp\"\n", "unknown protocol"},
		{"bad-option", "version = 1\n[topology]\nkind = \"grid\"\nrows = 2\ncols = 2\n[protocol]\nname = \"mnp\"\n[protocol.options]\nwarp = 9\n", "unknown option"},
		{"bad-faults", "version = 1\nfaults = \"explode:*\"\n[topology]\nkind = \"grid\"\nrows = 2\ncols = 2\n", "unknown fault kind"},
		{"bad-selector", "version = 1\n[topology]\nkind = \"grid\"\nrows = 2\ncols = 2\n[battery]\n[[battery.rules]]\nnodes = \"0-99\"\nlevel = 0.5\n", "outside the 4-node fleet"},
		{"bad-battery", "version = 1\n[topology]\nkind = \"grid\"\nrows = 2\ncols = 2\n[battery]\n[[battery.rules]]\nnodes = \"*\"\nlevel = 1.5\n", "outside [0, 1]"},
		{"bad-power", "version = 1\n[topology]\nkind = \"grid\"\nrows = 2\ncols = 2\n[run]\npower = 99\n", "power level 99"},
		{"bad-base", "version = 1\n[topology]\nkind = \"grid\"\nrows = 2\ncols = 2\n[run]\nbase = 9\n", "base 9"},
		{"tune-non-mnp", "version = 1\n[topology]\nkind = \"grid\"\nrows = 2\ncols = 2\n[protocol]\nname = \"deluge\"\n[[protocol.tune]]\nnodes = \"*\"\n[protocol.tune.options]\nno_sleep = true\n", "tune rules require protocol mnp"},
		{"mobility-no-kind", "version = 1\n[topology]\nkind = \"grid\"\nrows = 2\ncols = 2\n[mobility]\nspeed_min = 1\nspeed_max = 2\n", "kind is required"},
		{"mobility-bad-kind", "version = 1\n[topology]\nkind = \"grid\"\nrows = 2\ncols = 2\n[mobility]\nkind = \"brownian\"\n", "unknown kind"},
		{"mobility-bad-speeds", "version = 1\n[topology]\nkind = \"grid\"\nrows = 2\ncols = 2\n[mobility]\nkind = \"waypoint\"\nspeed_min = 3\nspeed_max = 1\n", "speeds"},
		{"mobility-trace-no-file", "version = 1\n[topology]\nkind = \"grid\"\nrows = 2\ncols = 2\n[mobility]\nkind = \"trace\"\n", "requires a file"},
		{"mobility-static-params", "version = 1\n[topology]\nkind = \"grid\"\nrows = 2\ncols = 2\n[mobility]\nkind = \"static\"\nspeed_min = 1\n", "no parameters"},
		{"mobility-unknown-key", "version = 1\n[topology]\nkind = \"grid\"\nrows = 2\ncols = 2\n[mobility]\nkind = \"waypoint\"\nspeed_min = 1\nspeed_max = 2\nvelocity = 9\n", "velocity"},
		{"toml-syntax", "version = \n", "missing value"},
		{"dup-key", "version = 1\nversion = 1\n", "duplicate key"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.doc))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("Parse = %v, want substring %q", err, c.wantErr)
			}
		})
	}
}

// TestCompileClosures verifies the declarative battery and tune rules
// lower into closures with the documented semantics (later rules win,
// defaults apply elsewhere).
func TestCompileClosures(t *testing.T) {
	sc, err := Parse([]byte(fullDoc))
	if err != nil {
		t.Fatal(err)
	}
	setup, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}

	if setup.Battery == nil {
		t.Fatal("battery rules did not compile")
	}
	for id, want := range map[packet.NodeID]float64{0: 0.2, 3: 0.2, 4: 0.2, 1: 0.9, 35: 0.9} {
		if got := setup.Battery(id); got != want {
			t.Errorf("battery(%v) = %g, want %g", id, got, want)
		}
	}

	if setup.MNP == nil {
		t.Fatal("tune rules did not compile")
	}
	in := core.DefaultConfig()
	setup.MNP(8, &in)
	if in.SleepFactor != 2.0 {
		t.Errorf("tune rule on node 8: sleep factor %g, want 2", in.SleepFactor)
	}
	out := core.DefaultConfig()
	setup.MNP(20, &out)
	if out.SleepFactor != core.DefaultConfig().SleepFactor {
		t.Errorf("tune rule leaked onto node 20: sleep factor %g", out.SleepFactor)
	}

	if setup.ProtocolOptions["no_sleep"] != "true" || setup.ProtocolOptions["advertise_count"] != "3" {
		t.Errorf("protocol options = %v", setup.ProtocolOptions)
	}
	if setup.Shards != 2 || setup.Workers != 1 || setup.Seed != 7 {
		t.Errorf("run params = shards %d workers %d seed %d", setup.Shards, setup.Workers, setup.Seed)
	}
	if setup.TileRows != 2 || setup.TileCols != 3 || !setup.Repartition ||
		setup.RepartitionEvery != 8 || setup.RepartitionThreshold != 1.5 {
		t.Errorf("tile knobs lost in compilation: %+v", setup)
	}
	if setup.Radio == nil || setup.Radio.TxRangeFeet[radio.PowerSim] != 30 {
		t.Errorf("radio overlay missing: %+v", setup.Radio)
	}
	if setup.Faults == nil || len(setup.Faults.Events) != 2 {
		t.Errorf("faults = %+v", setup.Faults)
	}
	if setup.Invariants == nil || setup.Invariants.SenderOverlapBudget != 10 {
		t.Errorf("invariants = %+v", setup.Invariants)
	}
}

func TestTopologyBuild(t *testing.T) {
	rand := Topology{Kind: "random", N: 12, Width: 80, Height: 80}
	l1, err := rand.Build(5)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := rand.Build(5)
	if err != nil {
		t.Fatal(err)
	}
	if l1.N() != 12 {
		t.Fatalf("N = %d", l1.N())
	}
	// Same run seed → same placement; different seed → different.
	d1, _ := l1.Distance(0, 1)
	d2, _ := l2.Distance(0, 1)
	if d1 != d2 {
		t.Fatal("random topology is not deterministic in the run seed")
	}
	l3, err := rand.Build(6)
	if err != nil {
		t.Fatal(err)
	}
	if d3, _ := l3.Distance(0, 1); d3 == d1 {
		t.Fatal("distinct run seeds produced identical placements (suspicious)")
	}
	// An explicit topology seed pins the placement across run seeds.
	pinned := Topology{Kind: "random", N: 12, Width: 80, Height: 80, Seed: 9}
	p1, _ := pinned.Build(5)
	p2, _ := pinned.Build(6)
	pd1, _ := p1.Distance(0, 1)
	pd2, _ := p2.Distance(0, 1)
	if pd1 != pd2 {
		t.Fatal("pinned topology seed did not pin the placement")
	}
}

// TestCompiledGridMatchesHandWritten pins the structural claim behind
// the golden-hash guarantee: a scenario-compiled grid Setup is
// field-for-field what a hand-written one would be, with no hidden
// Layout or option divergence.
func TestCompiledGridMatchesHandWritten(t *testing.T) {
	doc := `
version = 1
name = "chaos-golden"
faults = "reboot:15@30s+10s; eeprom:*:0.02"
[topology]
kind = "grid"
rows = 4
cols = 4
[run]
seed = 42
image_packets = 128
limit = "6h"
[invariants]
enabled = true
`
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	setup, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if setup.Layout != nil {
		t.Fatal("grid scenario compiled to an explicit Layout; must stay native rows/cols")
	}
	if setup.Rows != 4 || setup.Cols != 4 || setup.Seed != 42 || setup.ImagePackets != 128 {
		t.Fatalf("setup = %+v", setup)
	}
	if setup.Limit != 6*time.Hour {
		t.Fatalf("limit = %v", setup.Limit)
	}
	if setup.Radio != nil || setup.ProtocolOptions != nil || setup.MNP != nil || setup.Battery != nil {
		t.Fatal("defaults must compile to nil overrides (golden-hash byte identity)")
	}
	if setup.Shards != 0 {
		t.Fatalf("shards = %d, want 0 (package default)", setup.Shards)
	}
}

// TestMobilityTrace exercises the trace-playback kind end to end at the
// document layer: the file is read and validated at Validate time and
// again when the compiled factory builds the model.
func TestMobilityTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "walk.json")
	trace := `[[2, 0, 5.5, 0], [4, 3, 0, 9], [2, 1, 1, 1]]`
	if err := os.WriteFile(path, []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := fmt.Sprintf(`
version = 1
[topology]
kind = "grid"
rows = 2
cols = 2
[mobility]
kind = "trace"
file = %q
every = "1s"
`, path)
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := sc.Mobility.Label(); got != "trace-walk" {
		t.Fatalf("Label() = %q, want trace-walk", got)
	}
	setup, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if setup.Mobility == nil || setup.MobilityEvery != time.Second {
		t.Fatalf("trace mobility did not compile: every = %v", setup.MobilityEvery)
	}
	layout, err := sc.Topology.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	model, err := setup.Mobility(layout, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mv := model.Moves(2 * time.Second); len(mv) != 2 {
		t.Fatalf("trace at 2s moved %d nodes, want 2", len(mv))
	}
	if mv := model.Moves(4 * time.Second); len(mv) != 1 || mv[0].ID != 3 {
		t.Fatalf("trace at 4s = %+v, want node 3", mv)
	}
	// A trace addressing a node past the layout must fail validation.
	bad := strings.Replace(doc, "rows = 2", "rows = 1", 1)
	if _, err := Parse([]byte(bad)); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("Parse() = %v, want node-out-of-range error", err)
	}
}

// TestCompiledMobileScenarioRuns drives a [mobility] waypoint document
// through Compile into a full simulation: the run must complete with
// byte-identical images while the geometry demonstrably absorbed moves.
func TestCompiledMobileScenarioRuns(t *testing.T) {
	doc := `
version = 1
name = "mobile-e2e"
[topology]
kind = "grid"
rows = 4
cols = 4
[mobility]
kind = "waypoint"
speed_min = 1
speed_max = 3
pause = "10s"
every = "2s"
[protocol]
name = "gossip"
[run]
seed = 42
image_packets = 32
limit = "4h"
`
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	setup, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiment.Run(setup)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("incomplete: %d/%d", res.Network.CompletedCount(), res.Layout.N())
	}
	if err := res.VerifyImages(); err != nil {
		t.Fatal(err)
	}
	if res.Medium.Geometry().Moves() == 0 {
		t.Fatal("compiled mobile scenario never moved a node")
	}
}
