package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// EncodeTOML renders the scenario as canonical TOML: fixed section
// order, sorted option keys, numeric power levels, duration strings.
// Parse(EncodeTOML(s)) reproduces s exactly, and re-encoding that
// parse yields identical bytes — the stability property the
// round-trip tests pin.
func (s *Scenario) EncodeTOML() []byte {
	var b strings.Builder
	e := encoder{&b}
	e.kv("version", int64(s.Version))
	if s.Name != "" {
		e.kv("name", s.Name)
	}
	if s.Faults != "" {
		e.kv("faults", s.Faults)
	}

	e.section("topology")
	t := &s.Topology
	e.kv("kind", t.Kind)
	e.optInt("rows", t.Rows)
	e.optInt("cols", t.Cols)
	e.optFloat("spacing", t.Spacing)
	e.optInt("n", t.N)
	e.optFloat("width", t.Width)
	e.optFloat("height", t.Height)
	e.optFloat("radius", t.Radius)
	if t.Seed != 0 {
		e.kv("seed", t.Seed)
	}
	e.optInt("attempts", t.Attempts)
	if len(t.Points) > 0 {
		e.points("points", t.Points)
	}
	if t.File != "" {
		e.kv("file", t.File)
	}

	if r := s.Radio; r != nil {
		e.section("radio")
		e.optInt("bit_rate_bps", r.BitRateBps)
		e.optFloatPtr("ber_floor", r.BERFloor)
		e.optFloatPtr("ber_ceil", r.BERCeil)
		e.optFloatPtr("asym_sigma", r.AsymSigma)
		e.optFloatPtr("capture_ratio", r.CaptureRatio)
		if len(r.RangeFeet) > 0 {
			e.section("radio.range_feet")
			keys := make([]string, 0, len(r.RangeFeet))
			for k := range r.RangeFeet {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				e.kv(k, r.RangeFeet[k])
			}
		}
	}

	if m := s.Mobility; m != nil {
		e.section("mobility")
		e.kv("kind", m.Kind)
		e.optFloat("speed_min", m.SpeedMin)
		e.optFloat("speed_max", m.SpeedMax)
		if m.Pause != 0 {
			e.kv("pause", time.Duration(m.Pause).String())
		}
		e.optFloat("width", m.Width)
		e.optFloat("height", m.Height)
		if m.Every != 0 {
			e.kv("every", time.Duration(m.Every).String())
		}
		if m.Seed != 0 {
			e.kv("seed", m.Seed)
		}
		if m.File != "" {
			e.kv("file", m.File)
		}
	}

	p := &s.Protocol
	if p.Name != "" || len(p.Options) > 0 || len(p.Tune) > 0 {
		e.section("protocol")
		if p.Name != "" {
			e.kv("name", p.Name)
		}
		if len(p.Options) > 0 {
			e.section("protocol.options")
			e.optionMap(p.Options)
		}
		for _, rule := range p.Tune {
			e.arraySection("protocol.tune")
			e.kv("nodes", rule.Nodes)
			if len(rule.Options) > 0 {
				e.section("protocol.tune.options")
				e.optionMap(rule.Options)
			}
		}
	}

	r := &s.Run
	hasRun := r.Seed != 0 || len(r.Seeds) > 0 || r.ImagePackets != 0 || r.Power != 0 ||
		r.Base != 0 || r.Limit != 0 || r.Shards != 0 || r.Workers != 0 ||
		r.TileRows != 0 || r.TileCols != 0 || r.Repartition ||
		r.RepartitionEvery != 0 || r.RepartitionThreshold != 0 ||
		r.Optimistic || r.Lookahead != 0
	if hasRun {
		e.section("run")
		if r.Seed != 0 {
			e.kv("seed", r.Seed)
		}
		if len(r.Seeds) > 0 {
			e.seedList("seeds", r.Seeds)
		}
		e.optInt("image_packets", r.ImagePackets)
		e.optInt("power", int(r.Power))
		e.optInt("base", r.Base)
		if r.Limit != 0 {
			e.kv("limit", time.Duration(r.Limit).String())
		}
		e.optInt("shards", r.Shards)
		e.optInt("workers", r.Workers)
		e.optInt("tile_rows", r.TileRows)
		e.optInt("tile_cols", r.TileCols)
		if r.Repartition {
			e.kv("repartition", true)
		}
		e.optInt("repartition_every", r.RepartitionEvery)
		e.optFloat("repartition_threshold", r.RepartitionThreshold)
		if r.Optimistic {
			e.kv("optimistic", true)
		}
		e.optInt("lookahead", r.Lookahead)
	}

	if bat := s.Battery; bat != nil {
		e.section("battery")
		e.optFloat("default", bat.Default)
		for _, rule := range bat.Rules {
			e.arraySection("battery.rules")
			e.kv("nodes", rule.Nodes)
			e.kv("level", rule.Level)
		}
	}

	if inv := s.Invariants; inv != nil {
		e.section("invariants")
		e.kv("enabled", inv.Enabled)
		if inv.AllowRadioOnInSleep {
			e.kv("allow_radio_on_in_sleep", true)
		}
		e.optInt("sender_overlap_budget", inv.SenderOverlapBudget)
	}

	if tel := s.Telemetry; tel != nil {
		e.section("telemetry")
		if tel.Dir != "" {
			e.kv("dir", tel.Dir)
		}
		if tel.Progress {
			e.kv("progress", true)
		}
	}

	return []byte(b.String())
}

type encoder struct{ b *strings.Builder }

func (e encoder) section(name string) {
	fmt.Fprintf(e.b, "\n[%s]\n", name)
}

func (e encoder) arraySection(name string) {
	fmt.Fprintf(e.b, "\n[[%s]]\n", name)
}

func (e encoder) kv(key string, v any) {
	fmt.Fprintf(e.b, "%s = %s\n", key, formatValue(v))
}

func (e encoder) optInt(key string, v int) {
	if v != 0 {
		e.kv(key, int64(v))
	}
}

func (e encoder) optFloat(key string, v float64) {
	if v != 0 {
		e.kv(key, v)
	}
}

func (e encoder) optFloatPtr(key string, v *float64) {
	if v != nil {
		e.kv(key, *v)
	}
}

func (e encoder) optionMap(m map[string]any) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.kv(k, m[k])
	}
}

func (e encoder) seedList(key string, seeds []int64) {
	parts := make([]string, len(seeds))
	for i, s := range seeds {
		parts[i] = strconv.FormatInt(s, 10)
	}
	fmt.Fprintf(e.b, "%s = [%s]\n", key, strings.Join(parts, ", "))
}

func (e encoder) points(key string, pts [][]float64) {
	parts := make([]string, len(pts))
	for i, xy := range pts {
		coords := make([]string, len(xy))
		for j, c := range xy {
			coords[j] = formatFloat(c)
		}
		parts[i] = "[" + strings.Join(coords, ", ") + "]"
	}
	fmt.Fprintf(e.b, "%s = [%s]\n", key, strings.Join(parts, ", "))
}

func formatValue(v any) string {
	switch t := v.(type) {
	case string:
		return strconv.Quote(t)
	case bool:
		return strconv.FormatBool(t)
	case int64:
		return strconv.FormatInt(t, 10)
	case int:
		return strconv.Itoa(t)
	case float64:
		return formatFloat(t)
	default:
		return strconv.Quote(fmt.Sprint(t))
	}
}

// formatFloat renders integral floats with no exponent or decimal
// point, so a value that parsed as an int re-encodes as one — the
// parse → encode → parse fixed point the round-trip tests require.
func formatFloat(f float64) string {
	if f == float64(int64(f)) && f >= -1e15 && f <= 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
