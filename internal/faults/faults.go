// Package faults turns failure scenarios into declarative,
// seed-deterministic plans. A Plan is a list of timed events — node
// crashes, crash+reboot cycles, link degradation, network partitions,
// EEPROM write errors — that Apply schedules onto the simulation
// kernel before the run starts. Because the plan's randomness comes
// from a dedicated RNG derived from the run seed, a faulted run is as
// reproducible as a clean one: same seed, same failures, same result.
//
// Semantics mirror the hardware the paper targets:
//
//   - Crash: the mote dies permanently (battery removed). The radio is
//     destroyed and the node never returns.
//   - Crash+reboot: power blip. RAM — protocol state, timers, pending
//     queue — is lost; EEPROM contents survive, exactly the property
//     MNP's reboot recovery depends on.
//   - Link faults: extra delivery loss layered on top of the channel
//     model. Carrier sensing is unaffected: a partitioned node still
//     hears energy, it just cannot decode, which is the conservative
//     model for interference-induced partitions.
//   - EEPROM write errors: the flash driver reports a failed page
//     program; the write does not happen and the protocol must retry.
package faults

import (
	"fmt"
	"math/rand"
	"time"

	"mnp/internal/node"
	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/sim"
)

// Kind discriminates fault events.
type Kind int

// Fault kinds.
const (
	// KindCrash kills a node permanently at At.
	KindCrash Kind = iota + 1
	// KindReboot crashes a node at At and restarts it (fresh RAM,
	// surviving EEPROM) after Downtime.
	KindReboot
	// KindPartition drops every frame crossing the boundary between
	// Group and the rest of the network during [At, Until).
	KindPartition
	// KindDegrade adds Drop delivery loss on Src->Dst (and Dst->Src if
	// Bidirectional) during [At, Until).
	KindDegrade
	// KindEEPROM makes EEPROM writes fail with probability Drop on the
	// targeted nodes during [At, Until) (Until zero = forever).
	KindEEPROM
	// KindRandomCrashes kills Count random live non-base nodes at
	// evenly spaced instants across [At, Until].
	KindRandomCrashes
)

// Wildcard targets every non-base node in node-valued fields that
// accept it (KindEEPROM), and any node at all in KindDegrade endpoints
// — degrade:*->* is the idiom for uniform network-wide loss.
const Wildcard = packet.NodeID(0xFFFF)

// Event is one scheduled fault.
type Event struct {
	Kind          Kind
	Node          packet.NodeID // Crash, Reboot, EEPROM (or Wildcard)
	At            time.Duration
	Until         time.Duration // Partition, Degrade, EEPROM, RandomCrashes
	Downtime      time.Duration // Reboot: time between crash and restart
	Group         []packet.NodeID
	Src, Dst      packet.NodeID // Degrade
	Bidirectional bool          // Degrade
	Drop          float64       // Degrade, EEPROM: probability in (0, 1]
	Count         int           // RandomCrashes
}

// Plan is an ordered fault schedule.
type Plan struct {
	Events []Event
}

// Crash returns a plan event that permanently kills id at t.
func Crash(id packet.NodeID, t time.Duration) Event {
	return Event{Kind: KindCrash, Node: id, At: t}
}

// CrashReboot returns a power-blip event: id crashes at t and comes
// back, RAM wiped but EEPROM intact, after down.
func CrashReboot(id packet.NodeID, t, down time.Duration) Event {
	return Event{Kind: KindReboot, Node: id, At: t, Downtime: down}
}

// Partition isolates group from the rest of the network during
// [from, to): frames crossing the boundary are dropped in both
// directions.
func Partition(group []packet.NodeID, from, to time.Duration) Event {
	return Event{Kind: KindPartition, Group: group, At: from, Until: to}
}

// DegradeLink adds drop delivery loss on src->dst during [from, to);
// bidi extends it to dst->src. Either endpoint may be Wildcard:
// DegradeLink(Wildcard, Wildcard, ...) imposes uniform loss on every
// link, the knob loss-sweep campaigns turn.
func DegradeLink(src, dst packet.NodeID, bidi bool, from, to time.Duration, drop float64) Event {
	return Event{Kind: KindDegrade, Src: src, Dst: dst, Bidirectional: bidi, At: from, Until: to, Drop: drop}
}

// degradeMatch builds the per-frame drop function of one degrade
// event, shared by the sequential and sharded appliers. Wildcard
// endpoints match any node.
func degradeMatch(ev Event) func(src, dst packet.NodeID) float64 {
	end := func(want, got packet.NodeID) bool { return want == Wildcard || want == got }
	return func(src, dst packet.NodeID) float64 {
		if (end(ev.Src, src) && end(ev.Dst, dst)) ||
			(ev.Bidirectional && end(ev.Dst, src) && end(ev.Src, dst)) {
			return ev.Drop
		}
		return 0
	}
}

// EEPROMErrors makes EEPROM writes on id (or every non-base node if id
// is Wildcard) fail with probability p during [from, to); to zero
// means for the whole run.
func EEPROMErrors(id packet.NodeID, p float64, from, to time.Duration) Event {
	return Event{Kind: KindEEPROM, Node: id, Drop: p, At: from, Until: to}
}

// RandomCrashes kills count random live non-base nodes at evenly
// spaced times across [from, to]. Victims are drawn from the plan's
// seeded RNG at fire time, so the same seed always kills the same
// nodes.
func RandomCrashes(count int, from, to time.Duration) Event {
	return Event{Kind: KindRandomCrashes, Count: count, At: from, Until: to}
}

// Env is what Apply needs from the harness.
type Env struct {
	Kernel  *sim.Kernel
	Network *node.Network
	Medium  *radio.Medium
	// Seed derives the plan's private RNG; use the run seed so faulted
	// runs replay exactly.
	Seed int64
	// Base is exempt from Wildcard targeting and random crashes.
	Base packet.NodeID
}

// linkRule is one active time-windowed delivery-loss rule.
type linkRule struct {
	from, to time.Duration // [from, to), to zero = forever
	match    func(src, dst packet.NodeID) float64
}

// Validate checks the plan for malformed events.
func (p *Plan) Validate() error {
	for i, ev := range p.Events {
		switch ev.Kind {
		case KindCrash:
		case KindReboot:
			if ev.Downtime <= 0 {
				return fmt.Errorf("faults: event %d: reboot downtime %v must be positive", i, ev.Downtime)
			}
		case KindPartition:
			if len(ev.Group) == 0 {
				return fmt.Errorf("faults: event %d: partition group is empty", i)
			}
			if ev.Until <= ev.At {
				return fmt.Errorf("faults: event %d: partition window [%v, %v) is empty", i, ev.At, ev.Until)
			}
		case KindDegrade:
			if ev.Drop <= 0 || ev.Drop > 1 {
				return fmt.Errorf("faults: event %d: drop %v must be in (0, 1]", i, ev.Drop)
			}
			if ev.Until <= ev.At {
				return fmt.Errorf("faults: event %d: degrade window [%v, %v) is empty", i, ev.At, ev.Until)
			}
		case KindEEPROM:
			if ev.Drop <= 0 || ev.Drop > 1 {
				return fmt.Errorf("faults: event %d: eeprom error rate %v must be in (0, 1]", i, ev.Drop)
			}
		case KindRandomCrashes:
			if ev.Count <= 0 {
				return fmt.Errorf("faults: event %d: random crash count %d must be positive", i, ev.Count)
			}
			if ev.Until < ev.At {
				return fmt.Errorf("faults: event %d: window [%v, %v] is inverted", i, ev.At, ev.Until)
			}
		default:
			return fmt.Errorf("faults: event %d: unknown kind %d", i, ev.Kind)
		}
	}
	return nil
}

// Apply schedules every event in the plan onto env's kernel. Call it
// after the network is built and before the run starts. The composite
// link-fault hook is installed once; overlapping rules take the
// maximum drop.
func (p *Plan) Apply(env Env) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if env.Kernel == nil || env.Network == nil || env.Medium == nil {
		return fmt.Errorf("faults: env needs kernel, network, and medium")
	}
	// Private RNG: decoupled from the kernel RNG so installing a plan
	// never perturbs the protocol's random draws.
	rng := rand.New(rand.NewSource(env.Seed<<16 ^ 0xFA17))

	var rules []linkRule
	for _, ev := range p.Events {
		ev := ev
		switch ev.Kind {
		case KindCrash:
			if int(ev.Node) >= len(env.Network.Nodes) {
				return fmt.Errorf("faults: crash target %v does not exist", ev.Node)
			}
			env.Kernel.MustSchedule(ev.At, func() {
				env.Network.Nodes[ev.Node].Kill()
			})
		case KindReboot:
			if int(ev.Node) >= len(env.Network.Nodes) {
				return fmt.Errorf("faults: reboot target %v does not exist", ev.Node)
			}
			env.Kernel.MustSchedule(ev.At, func() {
				env.Network.Nodes[ev.Node].Crash()
			})
			env.Kernel.MustSchedule(ev.At+ev.Downtime, func() {
				if err := env.Network.Restart(ev.Node); err != nil {
					panic(fmt.Sprintf("faults: restart %v: %v", ev.Node, err))
				}
			})
		case KindPartition:
			inside := make(map[packet.NodeID]bool, len(ev.Group))
			for _, id := range ev.Group {
				inside[id] = true
			}
			rules = append(rules, linkRule{
				from: ev.At, to: ev.Until,
				match: func(src, dst packet.NodeID) float64 {
					if inside[src] != inside[dst] {
						return 1
					}
					return 0
				},
			})
		case KindDegrade:
			rules = append(rules, linkRule{
				from: ev.At, to: ev.Until,
				match: degradeMatch(ev),
			})
		case KindEEPROM:
			if err := p.applyEEPROM(env, ev, rng); err != nil {
				return err
			}
		case KindRandomCrashes:
			p.applyRandomCrashes(env, ev, rng)
		}
	}
	if len(rules) > 0 {
		kernel := env.Kernel
		env.Medium.SetLinkFault(func(src, dst packet.NodeID) float64 {
			now := kernel.Now()
			drop := 0.0
			for _, r := range rules {
				if now < r.from || (r.to > 0 && now >= r.to) {
					continue
				}
				if d := r.match(src, dst); d > drop {
					drop = d
				}
			}
			return drop
		})
	}
	return nil
}

// ShardedEnv is what ApplySharded needs from the sharded engine
// harness. Whole-network actions go through At (executed at window
// barriers with every shard quiesced); per-link and per-node hooks
// install on each shard against that shard's clock.
type ShardedEnv struct {
	// At schedules fn at the first window barrier not earlier than t
	// (wire it to engine.At). Actions quantize to barriers, i.e. fire
	// at most one window — one minimal frame airtime — late.
	At      func(t time.Duration, fn func())
	Network *node.Network
	// Mediums are the per-shard radio mediums.
	Mediums []*radio.Medium
	// Clocks are the matching per-shard kernel clocks.
	Clocks []func() time.Duration
	// ShardOf maps a node to the shard that owns it.
	ShardOf func(packet.NodeID) int
	// Seed derives the plan's private RNG, as in Env.
	Seed int64
	// Base is exempt from Wildcard targeting and random crashes.
	Base packet.NodeID
	// OnRNG, when set, receives each per-node EEPROM-fault RNG as it is
	// created. The optimistic engine registers these as checkpoint
	// roots: the RNGs live only inside write-fault closures, where the
	// snapshot walker cannot reach them, yet their draw sequence is
	// simulation state that must rewind with everything else.
	OnRNG func(id packet.NodeID, rng *rand.Rand)
}

// ApplySharded schedules the plan onto a sharded run. Semantics match
// Apply with two deliberate deviations, both deterministic for a fixed
// (seed, shard count): whole-network events (crashes, reboots, random
// kills) fire at the first window barrier at or after their nominal
// time, and EEPROM write faults draw from per-node RNGs derived from
// (seed, node) instead of one shared plan RNG, so the draw sequence
// cannot depend on cross-shard write interleaving.
func (p *Plan) ApplySharded(env ShardedEnv) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if env.At == nil || env.Network == nil || len(env.Mediums) == 0 ||
		len(env.Clocks) != len(env.Mediums) || env.ShardOf == nil {
		return fmt.Errorf("faults: sharded env needs scheduler, network, and per-shard mediums with clocks")
	}
	rng := rand.New(rand.NewSource(env.Seed<<16 ^ 0xFA17))

	var rules []linkRule
	for _, ev := range p.Events {
		ev := ev
		switch ev.Kind {
		case KindCrash:
			if int(ev.Node) >= len(env.Network.Nodes) {
				return fmt.Errorf("faults: crash target %v does not exist", ev.Node)
			}
			env.At(ev.At, func() {
				env.Network.Nodes[ev.Node].Kill()
			})
		case KindReboot:
			if int(ev.Node) >= len(env.Network.Nodes) {
				return fmt.Errorf("faults: reboot target %v does not exist", ev.Node)
			}
			env.At(ev.At, func() {
				env.Network.Nodes[ev.Node].Crash()
			})
			env.At(ev.At+ev.Downtime, func() {
				if err := env.Network.Restart(ev.Node); err != nil {
					panic(fmt.Sprintf("faults: restart %v: %v", ev.Node, err))
				}
			})
		case KindPartition:
			inside := make(map[packet.NodeID]bool, len(ev.Group))
			for _, id := range ev.Group {
				inside[id] = true
			}
			rules = append(rules, linkRule{
				from: ev.At, to: ev.Until,
				match: func(src, dst packet.NodeID) float64 {
					if inside[src] != inside[dst] {
						return 1
					}
					return 0
				},
			})
		case KindDegrade:
			rules = append(rules, linkRule{
				from: ev.At, to: ev.Until,
				match: degradeMatch(ev),
			})
		case KindEEPROM:
			if err := p.applyEEPROMSharded(env, ev); err != nil {
				return err
			}
		case KindRandomCrashes:
			p.applyRandomCrashesSharded(env, ev, rng)
		}
	}
	if len(rules) > 0 {
		// Every shard applies the same rule set against its own clock;
		// shard clocks agree to within one window, and rule windows are
		// orders of magnitude longer.
		for i, m := range env.Mediums {
			now := env.Clocks[i]
			m.SetLinkFault(func(src, dst packet.NodeID) float64 {
				t := now()
				drop := 0.0
				for _, r := range rules {
					if t < r.from || (r.to > 0 && t >= r.to) {
						continue
					}
					if d := r.match(src, dst); d > drop {
						drop = d
					}
				}
				return drop
			})
		}
	}
	return nil
}

func (p *Plan) applyEEPROMSharded(env ShardedEnv, ev Event) error {
	var targets []packet.NodeID
	if ev.Node == Wildcard {
		for i := range env.Network.Nodes {
			if id := packet.NodeID(i); id != env.Base {
				targets = append(targets, id)
			}
		}
	} else {
		if int(ev.Node) >= len(env.Network.Nodes) {
			return fmt.Errorf("faults: eeprom target %v does not exist", ev.Node)
		}
		targets = []packet.NodeID{ev.Node}
	}
	for _, id := range targets {
		n := env.Network.Nodes[id]
		now := env.Clocks[env.ShardOf(id)]
		// A per-node RNG keyed on (seed, node) keeps the fault draw
		// sequence independent of how writes interleave across shards.
		// The counting wrapper forwards draws unchanged (same sequence)
		// while stamping the state for O(1) idle checkpoints.
		rng := rand.New(sim.NewCountingSource(rand.NewSource(env.Seed<<16 ^ 0xFA17 ^ int64(id)*0x9E3779B9)))
		if env.OnRNG != nil {
			env.OnRNG(id, rng)
		}
		ev := ev
		n.EEPROM().SetWriteFault(func(seg, pkt int) error {
			t := now()
			if t < ev.At || (ev.Until > 0 && t >= ev.Until) {
				return nil
			}
			if ev.Drop >= 1 || rng.Float64() < ev.Drop {
				return fmt.Errorf("eeprom: injected write fault at slot (%d,%d)", seg, pkt)
			}
			return nil
		})
	}
	return nil
}

func (p *Plan) applyRandomCrashesSharded(env ShardedEnv, ev Event, rng *rand.Rand) {
	span := ev.Until - ev.At
	for i := 0; i < ev.Count; i++ {
		at := ev.At
		if ev.Count > 1 {
			at += span * time.Duration(i) / time.Duration(ev.Count-1)
		}
		env.At(at, func() {
			var candidates []packet.NodeID
			for i, n := range env.Network.Nodes {
				if id := packet.NodeID(i); id != env.Base && !n.Dead() {
					candidates = append(candidates, id)
				}
			}
			if len(candidates) == 0 {
				return
			}
			victim := candidates[rng.Intn(len(candidates))]
			env.Network.Nodes[victim].Kill()
		})
	}
}

func (p *Plan) applyEEPROM(env Env, ev Event, rng *rand.Rand) error {
	var targets []packet.NodeID
	if ev.Node == Wildcard {
		for i := range env.Network.Nodes {
			if id := packet.NodeID(i); id != env.Base {
				targets = append(targets, id)
			}
		}
	} else {
		if int(ev.Node) >= len(env.Network.Nodes) {
			return fmt.Errorf("faults: eeprom target %v does not exist", ev.Node)
		}
		targets = []packet.NodeID{ev.Node}
	}
	kernel := env.Kernel
	for _, id := range targets {
		n := env.Network.Nodes[id]
		ev := ev
		n.EEPROM().SetWriteFault(func(seg, pkt int) error {
			now := kernel.Now()
			if now < ev.At || (ev.Until > 0 && now >= ev.Until) {
				return nil
			}
			if ev.Drop >= 1 || rng.Float64() < ev.Drop {
				return fmt.Errorf("eeprom: injected write fault at slot (%d,%d)", seg, pkt)
			}
			return nil
		})
	}
	return nil
}

func (p *Plan) applyRandomCrashes(env Env, ev Event, rng *rand.Rand) {
	span := ev.Until - ev.At
	for i := 0; i < ev.Count; i++ {
		at := ev.At
		if ev.Count > 1 {
			at += span * time.Duration(i) / time.Duration(ev.Count-1)
		}
		env.Kernel.MustSchedule(at, func() {
			var candidates []packet.NodeID
			for i, n := range env.Network.Nodes {
				if id := packet.NodeID(i); id != env.Base && !n.Dead() {
					candidates = append(candidates, id)
				}
			}
			if len(candidates) == 0 {
				return
			}
			victim := candidates[rng.Intn(len(candidates))]
			env.Network.Nodes[victim].Kill()
		})
	}
}

// String returns the fault-kind label used in plan summaries and
// telemetry records.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindReboot:
		return "reboot"
	case KindPartition:
		return "partition"
	case KindDegrade:
		return "degrade"
	case KindEEPROM:
		return "eeprom-errors"
	case KindRandomCrashes:
		return "randkill"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Describe renders one event for logs and telemetry streams.
func (ev Event) Describe() string {
	switch ev.Kind {
	case KindCrash:
		return fmt.Sprintf("crash %v @%v", ev.Node, ev.At)
	case KindReboot:
		return fmt.Sprintf("reboot %v @%v (down %v)", ev.Node, ev.At, ev.Downtime)
	case KindPartition:
		return fmt.Sprintf("partition %d nodes [%v, %v)", len(ev.Group), ev.At, ev.Until)
	case KindDegrade:
		arrow := "->"
		if ev.Bidirectional {
			arrow = "<->"
		}
		end := func(id packet.NodeID) string {
			if id == Wildcard {
				return "*"
			}
			return fmt.Sprintf("%v", id)
		}
		return fmt.Sprintf("degrade %s%s%s %.0f%% [%v, %v)", end(ev.Src), arrow, end(ev.Dst), ev.Drop*100, ev.At, ev.Until)
	case KindEEPROM:
		who := fmt.Sprintf("%v", ev.Node)
		if ev.Node == Wildcard {
			who = "*"
		}
		win := ""
		if ev.Until > 0 || ev.At > 0 {
			win = fmt.Sprintf(" [%v, %v)", ev.At, ev.Until)
		}
		return fmt.Sprintf("eeprom-errors %s %.1f%%%s", who, ev.Drop*100, win)
	case KindRandomCrashes:
		return fmt.Sprintf("randkill %d [%v, %v]", ev.Count, ev.At, ev.Until)
	default:
		return fmt.Sprintf("fault(%d)", int(ev.Kind))
	}
}

// String summarizes the plan for logs.
func (p *Plan) String() string {
	if len(p.Events) == 0 {
		return "faults: none"
	}
	s := "faults: " + p.Events[0].Describe()
	for _, ev := range p.Events[1:] {
		s += "; " + ev.Describe()
	}
	return s
}
