package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"mnp/internal/packet"
)

// ParseSpec parses a compact fault-plan string, for CLI use. Events
// are semicolon-separated:
//
//	crash:5@20s                  kill node 5 at t=20s
//	reboot:7@30s+10s             crash node 7 at 30s, restart at 40s
//	partition:0-31@60s-120s      isolate nodes 0..31 from the rest
//	degrade:5->7@10s-50s:0.8     drop 80% of 5->7 deliveries
//	degrade:5<->7@10s-50s:0.8    same, both directions
//	degrade:*->*@0s-2h:0.3       30% loss on every link (uniform-loss sweeps)
//	degrade:5->*@10s-50s:0.8     every link out of node 5
//	eeprom:*:0.01                1% write-error rate, all non-base nodes
//	eeprom:9:0.05@20s-80s        5% on node 9, windowed
//	randkill:6@20s-145s          6 random crashes spread over the window
func ParseSpec(spec string) (*Plan, error) {
	plan := &Plan{}
	for _, raw := range strings.Split(spec, ";") {
		item := strings.TrimSpace(raw)
		if item == "" {
			continue
		}
		ev, err := parseEvent(item)
		if err != nil {
			return nil, fmt.Errorf("faults: %q: %w", item, err)
		}
		plan.Events = append(plan.Events, ev)
	}
	if len(plan.Events) == 0 {
		return nil, fmt.Errorf("faults: spec %q has no events", spec)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

func parseEvent(item string) (Event, error) {
	kind, rest, ok := strings.Cut(item, ":")
	if !ok {
		return Event{}, fmt.Errorf("missing ':' after kind")
	}
	switch kind {
	case "crash":
		node, at, ok := strings.Cut(rest, "@")
		if !ok {
			return Event{}, fmt.Errorf("want crash:NODE@TIME")
		}
		id, err := parseNode(node)
		if err != nil {
			return Event{}, err
		}
		t, err := time.ParseDuration(at)
		if err != nil {
			return Event{}, err
		}
		return Crash(id, t), nil
	case "reboot":
		node, when, ok := strings.Cut(rest, "@")
		if !ok {
			return Event{}, fmt.Errorf("want reboot:NODE@TIME+DOWNTIME")
		}
		id, err := parseNode(node)
		if err != nil {
			return Event{}, err
		}
		at, down, ok := strings.Cut(when, "+")
		if !ok {
			return Event{}, fmt.Errorf("want reboot:NODE@TIME+DOWNTIME")
		}
		t, err := time.ParseDuration(at)
		if err != nil {
			return Event{}, err
		}
		d, err := time.ParseDuration(down)
		if err != nil {
			return Event{}, err
		}
		return CrashReboot(id, t, d), nil
	case "partition":
		nodes, window, ok := strings.Cut(rest, "@")
		if !ok {
			return Event{}, fmt.Errorf("want partition:LO-HI@FROM-TO")
		}
		lo, hi, err := parseRange(nodes)
		if err != nil {
			return Event{}, err
		}
		from, to, err := parseWindow(window)
		if err != nil {
			return Event{}, err
		}
		group := make([]packet.NodeID, 0, hi-lo+1)
		for id := lo; id <= hi; id++ {
			group = append(group, packet.NodeID(id))
		}
		return Partition(group, from, to), nil
	case "degrade":
		link, tail, ok := strings.Cut(rest, "@")
		if !ok {
			return Event{}, fmt.Errorf("want degrade:SRC->DST@FROM-TO:DROP")
		}
		window, drop, ok := strings.Cut(tail, ":")
		if !ok {
			return Event{}, fmt.Errorf("want degrade:SRC->DST@FROM-TO:DROP")
		}
		bidi := strings.Contains(link, "<->")
		sep := "->"
		if bidi {
			sep = "<->"
		}
		src, dst, ok := strings.Cut(link, sep)
		if !ok {
			return Event{}, fmt.Errorf("want SRC->DST or SRC<->DST")
		}
		s, err := parseNodeOrWildcard(src)
		if err != nil {
			return Event{}, err
		}
		d, err := parseNodeOrWildcard(dst)
		if err != nil {
			return Event{}, err
		}
		from, to, err := parseWindow(window)
		if err != nil {
			return Event{}, err
		}
		p, err := strconv.ParseFloat(drop, 64)
		if err != nil {
			return Event{}, err
		}
		return DegradeLink(s, d, bidi, from, to, p), nil
	case "eeprom":
		node, tail, ok := strings.Cut(rest, ":")
		if !ok {
			return Event{}, fmt.Errorf("want eeprom:NODE:RATE[@FROM-TO]")
		}
		var id packet.NodeID
		if node == "*" {
			id = Wildcard
		} else {
			var err error
			if id, err = parseNode(node); err != nil {
				return Event{}, err
			}
		}
		rate := tail
		var from, to time.Duration
		if r, window, windowed := strings.Cut(tail, "@"); windowed {
			rate = r
			var err error
			if from, to, err = parseWindow(window); err != nil {
				return Event{}, err
			}
		}
		p, err := strconv.ParseFloat(rate, 64)
		if err != nil {
			return Event{}, err
		}
		return EEPROMErrors(id, p, from, to), nil
	case "randkill":
		count, window, ok := strings.Cut(rest, "@")
		if !ok {
			return Event{}, fmt.Errorf("want randkill:COUNT@FROM-TO")
		}
		n, err := strconv.Atoi(count)
		if err != nil {
			return Event{}, err
		}
		from, to, err := parseWindow(window)
		if err != nil {
			return Event{}, err
		}
		return RandomCrashes(n, from, to), nil
	default:
		return Event{}, fmt.Errorf("unknown fault kind %q", kind)
	}
}

func parseNodeOrWildcard(s string) (packet.NodeID, error) {
	if strings.TrimSpace(s) == "*" {
		return Wildcard, nil
	}
	return parseNode(s)
}

func parseNode(s string) (packet.NodeID, error) {
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || n < 0 || n >= int(Wildcard) {
		return 0, fmt.Errorf("bad node ID %q", s)
	}
	return packet.NodeID(n), nil
}

func parseRange(s string) (lo, hi int, err error) {
	a, b, ok := strings.Cut(s, "-")
	if !ok {
		return 0, 0, fmt.Errorf("want LO-HI node range, got %q", s)
	}
	if lo, err = strconv.Atoi(a); err != nil {
		return 0, 0, fmt.Errorf("bad range start %q", a)
	}
	if hi, err = strconv.Atoi(b); err != nil {
		return 0, 0, fmt.Errorf("bad range end %q", b)
	}
	if lo < 0 || hi < lo {
		return 0, 0, fmt.Errorf("bad node range %d-%d", lo, hi)
	}
	return lo, hi, nil
}

func parseWindow(s string) (from, to time.Duration, err error) {
	a, b, ok := strings.Cut(s, "-")
	if !ok {
		return 0, 0, fmt.Errorf("want FROM-TO time window, got %q", s)
	}
	if from, err = time.ParseDuration(a); err != nil {
		return 0, 0, err
	}
	if to, err = time.ParseDuration(b); err != nil {
		return 0, 0, err
	}
	return from, to, nil
}
