package faults

import (
	"strings"
	"testing"
	"time"

	"mnp/internal/packet"
)

func TestParseSpecGrammar(t *testing.T) {
	plan, err := ParseSpec("crash:5@20s; reboot:7@30s+10s; partition:0-3@60s-120s; " +
		"degrade:5->7@10s-50s:0.8; degrade:1<->2@0s-5s:0.5; eeprom:*:0.01; " +
		"eeprom:9:0.05@20s-80s; randkill:6@20s-145s")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Events) != 8 {
		t.Fatalf("parsed %d events, want 8", len(plan.Events))
	}
	want := []Event{
		Crash(5, 20*time.Second),
		CrashReboot(7, 30*time.Second, 10*time.Second),
		Partition([]packet.NodeID{0, 1, 2, 3}, 60*time.Second, 120*time.Second),
		DegradeLink(5, 7, false, 10*time.Second, 50*time.Second, 0.8),
		DegradeLink(1, 2, true, 0, 5*time.Second, 0.5),
		EEPROMErrors(Wildcard, 0.01, 0, 0),
		EEPROMErrors(9, 0.05, 20*time.Second, 80*time.Second),
		RandomCrashes(6, 20*time.Second, 145*time.Second),
	}
	for i, w := range want {
		got := plan.Events[i]
		if got.Kind != w.Kind || got.Node != w.Node || got.At != w.At ||
			got.Until != w.Until || got.Downtime != w.Downtime ||
			got.Src != w.Src || got.Dst != w.Dst ||
			got.Bidirectional != w.Bidirectional ||
			got.Drop != w.Drop || got.Count != w.Count {
			t.Errorf("event %d = %+v, want %+v", i, got, w)
		}
		if w.Kind == KindPartition && len(got.Group) != len(w.Group) {
			t.Errorf("event %d group = %v, want %v", i, got.Group, w.Group)
		}
	}
}

// Wildcard degrade endpoints: grammar, matcher semantics, and log
// rendering.
func TestDegradeWildcard(t *testing.T) {
	plan, err := ParseSpec("degrade:*->*@0s-2h:0.3; degrade:5->*@10s-50s:0.8; degrade:*<->7@10s-50s:0.4")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		DegradeLink(Wildcard, Wildcard, false, 0, 2*time.Hour, 0.3),
		DegradeLink(5, Wildcard, false, 10*time.Second, 50*time.Second, 0.8),
		DegradeLink(Wildcard, 7, true, 10*time.Second, 50*time.Second, 0.4),
	}
	for i, w := range want {
		got := plan.Events[i]
		if got.Src != w.Src || got.Dst != w.Dst || got.Bidirectional != w.Bidirectional || got.Drop != w.Drop {
			t.Errorf("event %d = %+v, want %+v", i, got, w)
		}
	}

	all := degradeMatch(want[0])
	for _, link := range [][2]packet.NodeID{{0, 1}, {9, 3}, {7, 5}} {
		if d := all(link[0], link[1]); d != 0.3 {
			t.Errorf("*->* match(%v, %v) = %v, want 0.3", link[0], link[1], d)
		}
	}
	out := degradeMatch(want[1])
	if d := out(5, 9); d != 0.8 {
		t.Errorf("5->* match(5, 9) = %v, want 0.8", d)
	}
	if d := out(9, 5); d != 0 {
		t.Errorf("5->* match(9, 5) = %v, want 0 (unidirectional)", d)
	}
	into := degradeMatch(want[2])
	if d := into(3, 7); d != 0.4 {
		t.Errorf("*<->7 match(3, 7) = %v, want 0.4", d)
	}
	if d := into(7, 3); d != 0.4 {
		t.Errorf("*<->7 match(7, 3) = %v, want 0.4 (bidirectional)", d)
	}
	if d := into(3, 4); d != 0 {
		t.Errorf("*<->7 match(3, 4) = %v, want 0", d)
	}

	if s := want[0].Describe(); !strings.Contains(s, "degrade *->* 30%") {
		t.Errorf("Describe() = %q, want wildcard rendering", s)
	}
}

func TestParseSpecRejectsMalformed(t *testing.T) {
	for _, spec := range []string{
		"",
		"  ;  ",
		"crash:5",                 // no time
		"crash:x@20s",             // bad node
		"reboot:7@30s",            // no downtime
		"partition:0-3@60s",       // no window end
		"partition:3-0@1s-2s",     // inverted range
		"degrade:5->7@10s-50s",    // no drop
		"degrade:5->7@10s-50s:0",  // drop out of range
		"degrade:5->7@10s-50s:2",  // drop out of range
		"degrade:5->7@50s-10s:.5", // inverted window
		"eeprom:*",                // no rate
		"eeprom:*:1.5",            // rate out of range
		"randkill:0@1s-2s",        // zero count
		"randkill:six@1s-2s",      // bad count
		"teleport:5@20s",          // unknown kind
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted a malformed spec", spec)
		}
	}
}

func TestValidateCatchesBadEvents(t *testing.T) {
	for _, tc := range []struct {
		name string
		ev   Event
	}{
		{"reboot-no-downtime", Event{Kind: KindReboot, Node: 1, At: time.Second}},
		{"partition-empty-group", Event{Kind: KindPartition, At: 0, Until: time.Second}},
		{"partition-empty-window", Partition([]packet.NodeID{1}, time.Second, time.Second)},
		{"degrade-zero-drop", Event{Kind: KindDegrade, Src: 1, Dst: 2, Until: time.Second}},
		{"eeprom-over-one", Event{Kind: KindEEPROM, Node: 1, Drop: 1.5}},
		{"randkill-inverted", Event{Kind: KindRandomCrashes, Count: 1, At: time.Second, Until: 0}},
		{"unknown-kind", Event{Kind: Kind(99)}},
	} {
		plan := &Plan{Events: []Event{tc.ev}}
		if err := plan.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.ev)
		}
	}
}

func TestApplyRejectsIncompleteEnv(t *testing.T) {
	plan := &Plan{Events: []Event{Crash(1, time.Second)}}
	if err := plan.Apply(Env{}); err == nil {
		t.Fatal("Apply accepted an empty env")
	}
}

func TestPlanString(t *testing.T) {
	empty := &Plan{}
	if got := empty.String(); got != "faults: none" {
		t.Fatalf("empty plan String = %q", got)
	}
	plan := &Plan{Events: []Event{
		Crash(5, 20*time.Second),
		CrashReboot(7, 30*time.Second, 10*time.Second),
		Partition([]packet.NodeID{0, 1}, time.Minute, 2*time.Minute),
		DegradeLink(1, 2, true, 0, 5*time.Second, 0.5),
		EEPROMErrors(Wildcard, 0.01, 0, 0),
		RandomCrashes(3, 0, time.Minute),
	}}
	s := plan.String()
	for _, want := range []string{
		"crash n5 @20s", "reboot n7 @30s (down 10s)", "partition 2 nodes",
		"degrade n1<->n2 50%", "eeprom-errors * 1.0%", "randkill 3",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
}
