package radio

import (
	"testing"

	"mnp/internal/packet"
	"mnp/internal/sim"
	"mnp/internal/topology"
)

// Property (the issue's acceptance bar for the sparse rewrite): across
// random layouts, every configured power level, AND every geometry
// seed, the spatial-index link rows — neighbor membership, order,
// audibility, and per-link BER — are exactly equal to a brute-force
// O(n²) reference computed from the dense distance matrix. The seed
// axis matters because link noise is hashed per (seed, src, dst): a
// row that accidentally swapped src/dst or reused a cached distance
// would still pass at one seed by luck.
func TestSparseGeometryMatchesBruteForceAcrossSeeds(t *testing.T) {
	params := DefaultParams()
	for _, seed := range []int64{1, 7, 42, 1 << 40} {
		layout, err := topology.Random(50+int(seed%37), 90, 140, seed)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMedium(sim.New(seed), layout, params, seed)
		if err != nil {
			t.Fatal(err)
		}
		dist := layout.DistanceMatrix()
		n := layout.N()
		for power, rangeFt := range params.TxRangeFeet {
			for id := 0; id < n; id++ {
				src := packet.NodeID(id)
				want := layout.Within(src, rangeFt)
				row, err := m.linkRowFor(power, src)
				if err != nil {
					t.Fatal(err)
				}
				if len(row.full) != len(want) {
					t.Fatalf("seed %d power %d node %d: sparse %d audible, brute force %d",
						seed, power, id, len(row.full), len(want))
				}
				for i, nb := range want {
					if row.full[i] != nb {
						t.Fatalf("seed %d power %d node %d: audible[%d] = %v, want %v",
							seed, power, id, i, row.full[i], nb)
					}
					fresh := m.geo.linkBER(src, nb, dist[id*n+int(nb)], rangeFt)
					if row.ber[i] != fresh {
						t.Fatalf("seed %d power %d link %d->%v: sparse BER %g, brute force %g",
							seed, power, id, nb, row.ber[i], fresh)
					}
				}
				if row.rangeFt != rangeFt {
					t.Fatalf("seed %d power %d node %d: rangeFt %g, want %g",
						seed, power, id, row.rangeFt, rangeFt)
				}
			}
		}
	}
}

// The sparse geometry's footprint must be O(n): each node costs the
// point (16 B) plus two int32 index entries, nowhere near the O(n²)
// matrix and per-power tables it replaced.
func TestGeometryFootprintLinear(t *testing.T) {
	for _, n := range []int{100, 400} {
		layout, err := topology.Random(n, 200, 200, 9)
		if err != nil {
			t.Fatal(err)
		}
		geo, err := NewGeometry(layout, DefaultParams(), 9)
		if err != nil {
			t.Fatal(err)
		}
		fp := geo.Footprint()
		// Points + ids + cellStart; the cell budget caps cellStart at
		// maxCellsFactor*n+17 entries.
		limit := uint64(n)*16 + uint64(n)*4 + uint64(4*n+17)*4
		if fp == 0 || fp > limit {
			t.Fatalf("n=%d footprint %d bytes, want (0, %d]", n, fp, limit)
		}
		dense := uint64(n) * uint64(n) * 8
		if n >= 400 && fp >= dense {
			t.Fatalf("n=%d sparse footprint %d not below dense matrix %d", n, fp, dense)
		}
	}
}
