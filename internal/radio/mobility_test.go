package radio

import (
	"slices"
	"testing"

	"mnp/internal/packet"
	"mnp/internal/sim"
	"mnp/internal/topology"
)

// The staleness regression: once a node moves, no lookup may serve the
// link row built before the move — not for the mover's own transmit
// row, and not for any source whose audible set the move changed.
func TestLinkRowNeverStaleAfterMove(t *testing.T) {
	// A line at 12 ft spacing with the 27 ft PowerSim range: node 0
	// hears 1 and 2.
	layout, err := topology.Line(6, 12)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMedium(sim.New(1), layout, DefaultParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	geo := m.Geometry()

	before, err := m.Neighbors(0, PowerSim)
	if err != nil {
		t.Fatal(err)
	}
	if want := []packet.NodeID{1, 2}; !slices.Equal(before, want) {
		t.Fatalf("static neighbors of 0 = %v, want %v", before, want)
	}
	// Warm every source row so each following check exercises the
	// hit-then-invalidate path, not a cold miss.
	for id := 0; id < layout.N(); id++ {
		if _, err := m.Neighbors(packet.NodeID(id), PowerSim); err != nil {
			t.Fatal(err)
		}
	}

	// Move node 2 out of everyone's range.
	geo.MoveNode(2, topology.Point{X: 500, Y: 500})

	after, err := m.Neighbors(0, PowerSim)
	if err != nil {
		t.Fatal(err)
	}
	if want := []packet.NodeID{1}; !slices.Equal(after, want) {
		t.Fatalf("neighbors of 0 after the move = %v, want %v (stale row served)", after, want)
	}
	// The mover's own row must also rebuild: from (500, 500) it hears
	// nobody.
	moved, err := m.Neighbors(2, PowerSim)
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != 0 {
		t.Fatalf("neighbors of the moved node = %v, want none", moved)
	}
	_, _, invalidations, _ := m.CacheStats()
	if invalidations < 2 {
		t.Fatalf("CacheStats invalidations = %d, want >= 2 (row of 0 and row of 2)", invalidations)
	}

	// Move it back: the freshly rebuilt rows are stale again and the
	// original audible set must reappear.
	home, _ := layout.Pos(1)
	geo.MoveNode(2, topology.Point{X: home.X + 12, Y: home.Y})
	restored, err := m.Neighbors(0, PowerSim)
	if err != nil {
		t.Fatal(err)
	}
	if want := []packet.NodeID{1, 2}; !slices.Equal(restored, want) {
		t.Fatalf("neighbors of 0 after moving back = %v, want %v", restored, want)
	}
}

// A move far outside every cached row's coverage leaves those rows
// valid: invalidation is scoped by the per-cell stamps, not global.
func TestLinkRowInvalidationIsScoped(t *testing.T) {
	layout, err := topology.Grid(2, 20, 10) // 2x20 grid, 190 ft across
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMedium(sim.New(1), layout, DefaultParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the row of node 0 (left edge), then move the far-right
	// corner node slightly.
	if _, err := m.Neighbors(0, PowerSim); err != nil {
		t.Fatal(err)
	}
	far := packet.NodeID(layout.N() - 1)
	p, _ := layout.Pos(far)
	m.Geometry().MoveNode(far, topology.Point{X: p.X + 3, Y: p.Y})
	if _, err := m.Neighbors(0, PowerSim); err != nil {
		t.Fatal(err)
	}
	hits, _, invalidations, _ := m.CacheStats()
	if invalidations != 0 {
		t.Fatalf("far move invalidated %d rows, want 0", invalidations)
	}
	if hits != 1 {
		t.Fatalf("hits = %d, want 1 (second lookup of node 0 served from cache)", hits)
	}
}

// Static mediums never consult the stamp machinery: the geometry
// allocates no epoch state until the first move and the counters stay
// untouched — the guarantee behind "golden hashes stay byte-identical
// with mobility absent".
func TestNoMovesNoInvalidation(t *testing.T) {
	layout, err := topology.Grid(4, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMedium(sim.New(1), layout, DefaultParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		for id := 0; id < layout.N(); id++ {
			if _, err := m.Neighbors(packet.NodeID(id), PowerSim); err != nil {
				t.Fatal(err)
			}
		}
	}
	_, _, invalidations, _ := m.CacheStats()
	if invalidations != 0 {
		t.Fatalf("static run recorded %d invalidations", invalidations)
	}
	if m.Geometry().Moves() != 0 {
		t.Fatalf("static geometry reports %d moves", m.Geometry().Moves())
	}
}
