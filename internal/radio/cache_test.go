package radio

import (
	"testing"
	"time"

	"mnp/internal/packet"
	"mnp/internal/sim"
	"mnp/internal/topology"
)

// cacheLayouts builds the layout shapes the experiments use: a grid, a
// line, and a random placement.
func cacheLayouts(t *testing.T) []*topology.Layout {
	t.Helper()
	grid, err := topology.Grid(6, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	line, err := topology.Line(25, 12)
	if err != nil {
		t.Fatal(err)
	}
	random, err := topology.Random(60, 100, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	return []*topology.Layout{grid, line, random}
}

// Property: for every layout shape and every configured power level,
// the sparse per-source link rows agree exactly — membership, order,
// and BER values — with a brute-force O(n²) reference built from the
// dense distance matrix.
func TestCachedNeighborsMatchBruteForce(t *testing.T) {
	params := DefaultParams()
	for _, layout := range cacheLayouts(t) {
		m, err := NewMedium(sim.New(1), layout, params, 7)
		if err != nil {
			t.Fatal(err)
		}
		dist := layout.DistanceMatrix()
		for power, rangeFt := range params.TxRangeFeet {
			for id := 0; id < layout.N(); id++ {
				want := layout.Within(packet.NodeID(id), rangeFt)
				got, err := m.Neighbors(packet.NodeID(id), power)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s power %d node %d: sparse %d neighbors, brute force %d",
						layout.Name(), power, id, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s power %d node %d: neighbor[%d] = %v, want %v",
							layout.Name(), power, id, i, got[i], want[i])
					}
				}
				// The BER row must match a fresh evaluation against the
				// dense matrix distance.
				row, err := m.linkRowFor(power, packet.NodeID(id))
				if err != nil {
					t.Fatal(err)
				}
				for i, nb := range want {
					fresh := m.geo.linkBER(packet.NodeID(id), nb, dist[id*layout.N()+int(nb)], rangeFt)
					if row.ber[i] != fresh {
						t.Fatalf("%s power %d link %d->%v: sparse BER %g, fresh %g",
							layout.Name(), power, id, nb, row.ber[i], fresh)
					}
				}
			}
		}
	}
}

// A bounded cache must evict down to its cap, and a rebuilt row must be
// identical to the evicted one — cache state is a pure speed/memory
// trade-off.
func TestLinkCacheEvictionIsInvisible(t *testing.T) {
	layout, err := topology.Grid(5, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.LinkCacheSources = 3
	m, err := NewMedium(sim.New(1), layout, p, 7)
	if err != nil {
		t.Fatal(err)
	}
	first := make(map[packet.NodeID][]packet.NodeID)
	firstBER := make(map[packet.NodeID][]float64)
	for id := 0; id < layout.N(); id++ {
		row, err := m.linkRowFor(PowerSim, packet.NodeID(id))
		if err != nil {
			t.Fatal(err)
		}
		first[packet.NodeID(id)] = row.full
		firstBER[packet.NodeID(id)] = row.ber
		if _, _, _, entries := m.CacheStats(); entries > 3 {
			t.Fatalf("cache holds %d rows, cap 3", entries)
		}
	}
	// Every early row has been evicted by now; rebuilding must
	// reproduce it exactly.
	for id := 0; id < layout.N(); id++ {
		row, err := m.linkRowFor(PowerSim, packet.NodeID(id))
		if err != nil {
			t.Fatal(err)
		}
		want, wantBER := first[packet.NodeID(id)], firstBER[packet.NodeID(id)]
		if len(row.full) != len(want) {
			t.Fatalf("node %d: rebuilt row has %d neighbors, want %d", id, len(row.full), len(want))
		}
		for i := range want {
			if row.full[i] != want[i] || row.ber[i] != wantBER[i] {
				t.Fatalf("node %d: rebuilt row differs at %d", id, i)
			}
		}
	}
	hits, misses, _, _ := m.CacheStats()
	if misses <= uint64(layout.N()) {
		t.Fatalf("expected rebuild misses, got %d misses / %d hits", misses, hits)
	}
}

// CacheHitRate is 0 before the first lookup (not NaN), and tracks
// hits/(hits+misses) afterwards.
func TestCacheHitRateDefinedBeforeFirstLookup(t *testing.T) {
	layout, err := topology.Grid(2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMedium(sim.New(1), layout, DefaultParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if r := m.CacheHitRate(); r != 0 {
		t.Fatalf("pristine medium: CacheHitRate() = %v, want 0", r)
	}
	if _, err := m.linkRowFor(PowerSim, 0); err != nil { // miss
		t.Fatal(err)
	}
	if r := m.CacheHitRate(); r != 0 {
		t.Fatalf("after one miss: CacheHitRate() = %v, want 0", r)
	}
	if _, err := m.linkRowFor(PowerSim, 0); err != nil { // hit
		t.Fatal(err)
	}
	if r := m.CacheHitRate(); r != 0.5 {
		t.Fatalf("after 1 hit / 1 miss: CacheHitRate() = %v, want 0.5", r)
	}
	hits, misses, _, _ := m.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("CacheStats() = %d hits, %d misses; want 1, 1", hits, misses)
	}
}

// Neighbors for an out-of-range node stays (nil, nil), matching the
// pre-cache behavior.
func TestNeighborsOutOfRangeNode(t *testing.T) {
	layout, err := topology.Grid(2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMedium(sim.New(1), layout, DefaultParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Neighbors(packet.NodeID(99), PowerSim)
	if err != nil || got != nil {
		t.Fatalf("Neighbors(out-of-range) = %v, %v; want nil, nil", got, err)
	}
	if _, err := m.Neighbors(0, 9999); err == nil {
		t.Fatal("unconfigured power level accepted")
	}
}

// The returned neighbor slice is a copy: mutating it must not corrupt
// the cache.
func TestNeighborsReturnsCopy(t *testing.T) {
	layout, err := topology.Grid(3, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMedium(sim.New(1), layout, DefaultParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	first, err := m.Neighbors(4, PowerSim)
	if err != nil || len(first) == 0 {
		t.Fatalf("Neighbors = %v, %v", first, err)
	}
	first[0] = 0xAAAA
	second, err := m.Neighbors(4, PowerSim)
	if err != nil {
		t.Fatal(err)
	}
	if second[0] == 0xAAAA {
		t.Fatal("mutating the returned slice corrupted the cache")
	}
}

// Transmissions are recycled through the free list without perturbing
// delivery: back-to-back frames on a quiet channel all arrive.
func TestTransmissionPoolReuse(t *testing.T) {
	layout, err := topology.Grid(1, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	n := newTestNet(t, layout, cleanParams())
	n.allOn()
	for i := 0; i < 50; i++ {
		if _, err := n.m.Transmit(0, adv(0), PowerSim); err != nil {
			t.Fatal(err)
		}
		n.k.Run(time.Hour)
	}
	if len(n.rxs) != 50 {
		t.Fatalf("received %d frames, want 50", len(n.rxs))
	}
	if got := len(n.m.freeTx); got != 1 {
		t.Fatalf("free list holds %d transmissions, want 1 recycled", got)
	}
}
