package radio

import (
	"testing"
	"time"

	"mnp/internal/packet"
	"mnp/internal/sim"
	"mnp/internal/topology"
)

// cacheLayouts builds the layout shapes the experiments use: a grid, a
// line, and a random placement.
func cacheLayouts(t *testing.T) []*topology.Layout {
	t.Helper()
	grid, err := topology.Grid(6, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	line, err := topology.Line(25, 12)
	if err != nil {
		t.Fatal(err)
	}
	random, err := topology.Random(60, 100, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	return []*topology.Layout{grid, line, random}
}

// Property: for every layout shape and every configured power level,
// the medium's cached neighbor lists and audibility bit sets agree
// exactly with a brute-force topology.Within query.
func TestCachedNeighborsMatchBruteForce(t *testing.T) {
	params := DefaultParams()
	for _, layout := range cacheLayouts(t) {
		m, err := NewMedium(sim.New(1), layout, params, 7)
		if err != nil {
			t.Fatal(err)
		}
		for power, rangeFt := range params.TxRangeFeet {
			tab, err := m.geo.table(power)
			if err != nil {
				t.Fatal(err)
			}
			for id := 0; id < layout.N(); id++ {
				want := layout.Within(packet.NodeID(id), rangeFt)
				got, err := m.Neighbors(packet.NodeID(id), power)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s power %d node %d: cached %d neighbors, brute force %d",
						layout.Name(), power, id, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s power %d node %d: neighbor[%d] = %v, want %v",
							layout.Name(), power, id, i, got[i], want[i])
					}
				}
				// The bit set must encode exactly the same membership.
				set := tab.sets[id]
				if set.Count() != len(want) {
					t.Fatalf("%s power %d node %d: set has %d members, want %d",
						layout.Name(), power, id, set.Count(), len(want))
				}
				inWant := make(map[packet.NodeID]bool, len(want))
				for _, w := range want {
					inWant[w] = true
				}
				for other := 0; other < layout.N(); other++ {
					if set.Contains(other) != inWant[packet.NodeID(other)] {
						t.Fatalf("%s power %d node %d: set.Contains(%d) = %v, want %v",
							layout.Name(), power, id, other, set.Contains(other), inWant[packet.NodeID(other)])
					}
				}
				// And the cached BER row must match a fresh evaluation.
				dist := layout.DistanceMatrix()
				for i, nb := range want {
					fresh := m.geo.linkBER(packet.NodeID(id), nb, dist[id*layout.N()+int(nb)], rangeFt)
					if tab.ber[id][i] != fresh {
						t.Fatalf("%s power %d link %d->%v: cached BER %g, fresh %g",
							layout.Name(), power, id, nb, tab.ber[id][i], fresh)
					}
				}
			}
		}
	}
}

// Neighbors for an out-of-range node stays (nil, nil), matching the
// pre-cache behavior.
func TestNeighborsOutOfRangeNode(t *testing.T) {
	layout, err := topology.Grid(2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMedium(sim.New(1), layout, DefaultParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Neighbors(packet.NodeID(99), PowerSim)
	if err != nil || got != nil {
		t.Fatalf("Neighbors(out-of-range) = %v, %v; want nil, nil", got, err)
	}
	if _, err := m.Neighbors(0, 9999); err == nil {
		t.Fatal("unconfigured power level accepted")
	}
}

// The returned neighbor slice is a copy: mutating it must not corrupt
// the cache.
func TestNeighborsReturnsCopy(t *testing.T) {
	layout, err := topology.Grid(3, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMedium(sim.New(1), layout, DefaultParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	first, err := m.Neighbors(4, PowerSim)
	if err != nil || len(first) == 0 {
		t.Fatalf("Neighbors = %v, %v", first, err)
	}
	first[0] = 0xAAAA
	second, err := m.Neighbors(4, PowerSim)
	if err != nil {
		t.Fatal(err)
	}
	if second[0] == 0xAAAA {
		t.Fatal("mutating the returned slice corrupted the cache")
	}
}

// Transmissions are recycled through the free list without perturbing
// delivery: back-to-back frames on a quiet channel all arrive.
func TestTransmissionPoolReuse(t *testing.T) {
	layout, err := topology.Grid(1, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	n := newTestNet(t, layout, cleanParams())
	n.allOn()
	for i := 0; i < 50; i++ {
		if _, err := n.m.Transmit(0, adv(0), PowerSim); err != nil {
			t.Fatal(err)
		}
		n.k.Run(time.Hour)
	}
	if len(n.rxs) != 50 {
		t.Fatalf("received %d frames, want 50", len(n.rxs))
	}
	if got := len(n.m.freeTx); got != 1 {
		t.Fatalf("free list holds %d transmissions, want 1 recycled", got)
	}
}
