package radio

import (
	"testing"
	"time"

	"mnp/internal/packet"
	"mnp/internal/sim"
	"mnp/internal/topology"
)

// TestShardGhostCarriesRouting pins the ghost metadata the tiled
// engine's bounds prefilter consumes: a boundary transmission exports
// exactly one ghost stamped with the transmitter's position and range,
// and replaying it into the peer shard delivers to that shard's owned
// nodes. Ownership here is deliberately tile-shaped (a diagonal split,
// not a contiguous strip): shard A owns {0, 3}, shard B owns {1, 2}.
func TestShardGhostCarriesRouting(t *testing.T) {
	layout, err := topology.Grid(2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.New(1)
	geo, err := NewGeometry(layout, cleanParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	ownA := []packet.NodeID{0, 3}
	ownB := []packet.NodeID{1, 2}
	mA, err := NewShardMedium(k, geo, ownA)
	if err != nil {
		t.Fatal(err)
	}
	mB, err := NewShardMedium(k, geo, ownB)
	if err != nil {
		t.Fatal(err)
	}
	rx := map[packet.NodeID]int{}
	register := func(m *Medium, owned []packet.NodeID) {
		for _, id := range owned {
			id := id
			if err := m.Register(id, func(packet.Packet, RxMeta) { rx[id]++ }); err != nil {
				t.Fatal(err)
			}
			m.SetRadio(id, true)
		}
	}
	register(mA, ownA)
	register(mB, ownB)

	air, err := mA.Transmit(0, adv(0), PowerSim)
	if err != nil {
		t.Fatal(err)
	}
	ghosts := mA.TakeOutbox()
	if len(ghosts) != 1 {
		t.Fatalf("got %d ghosts, want 1 (nodes 1 and 2 are in range and owned elsewhere)", len(ghosts))
	}
	g := ghosts[0]
	pos, err := layout.Pos(0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Src != 0 || g.X != pos.X || g.Y != pos.Y {
		t.Fatalf("ghost routing fields src=%v at (%g,%g), want node 0 at (%g,%g)",
			g.Src, g.X, g.Y, pos.X, pos.Y)
	}
	wantRange, err := geo.RangeFor(PowerSim)
	if err != nil {
		t.Fatal(err)
	}
	if g.RangeFt != wantRange {
		t.Fatalf("ghost RangeFt = %g, want the power-%d range %g", g.RangeFt, PowerSim, wantRange)
	}
	if g.Start != 0 || g.End != air || len(g.Frame) == 0 {
		t.Fatalf("ghost occupancy [%v,%v) frame %d bytes, want [0,%v) and a non-empty frame",
			g.Start, g.End, len(g.Frame), air)
	}
	if len(mA.TakeOutbox()) != 0 {
		t.Fatal("TakeOutbox did not drain the outbox")
	}

	// The ghost replays into B but must be rejected where its source
	// lives.
	if err := mB.InsertGhost(g); err != nil {
		t.Fatal(err)
	}
	if err := mA.InsertGhost(g); err == nil {
		t.Fatal("shard A accepted a ghost from its own node")
	}

	k.Run(time.Second)
	if rx[3] != 1 || mA.Deliveries() != 1 {
		t.Fatalf("shard A: node 3 rx=%d deliveries=%d, want 1 local delivery", rx[3], mA.Deliveries())
	}
	if rx[1] != 1 || rx[2] != 1 || mB.Deliveries() != 2 {
		t.Fatalf("shard B: rx[1]=%d rx[2]=%d deliveries=%d, want the ghost delivered to both",
			rx[1], rx[2], mB.Deliveries())
	}
}

// TestDeliveriesCountsOnlySuccess: the delivery counter the
// repartitioner reads must track successful receptions, not attempts —
// an out-of-range transmission moves nothing.
func TestDeliveriesCountsOnlySuccess(t *testing.T) {
	layout, err := topology.Line(2, 100) // 100 ft apart, PowerSim range 27 ft
	if err != nil {
		t.Fatal(err)
	}
	n := newTestNet(t, layout, cleanParams())
	n.allOn()
	if _, err := n.m.Transmit(0, adv(0), PowerSim); err != nil {
		t.Fatal(err)
	}
	n.k.Run(time.Second)
	if got := n.m.Deliveries(); got != 0 {
		t.Fatalf("Deliveries() = %d after an out-of-range transmission, want 0", got)
	}
	close, err := topology.Line(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	n2 := newTestNet(t, close, cleanParams())
	n2.allOn()
	if _, err := n2.m.Transmit(0, adv(0), PowerSim); err != nil {
		t.Fatal(err)
	}
	n2.k.Run(time.Second)
	if got := n2.m.Deliveries(); got != 1 {
		t.Fatalf("Deliveries() = %d after an in-range transmission, want 1", got)
	}
}
