package radio

import (
	"testing"
	"time"

	"mnp/internal/packet"
	"mnp/internal/sim"
	"mnp/internal/topology"
)

// cleanParams is a channel with essentially perfect in-range links, so
// tests exercise topology/collision logic without random loss.
func cleanParams() Params {
	p := DefaultParams()
	p.BERFloor = 1e-12
	p.BERCeil = 1e-11
	p.AsymSigma = 0
	return p
}

type rxRecord struct {
	at   packet.NodeID
	pkt  packet.Packet
	meta RxMeta
}

type testNet struct {
	k   *sim.Kernel
	m   *Medium
	rxs []rxRecord
}

func newTestNet(t *testing.T, layout *topology.Layout, p Params) *testNet {
	t.Helper()
	k := sim.New(1)
	m, err := NewMedium(k, layout, p, 7)
	if err != nil {
		t.Fatal(err)
	}
	n := &testNet{k: k, m: m}
	for i := 0; i < layout.N(); i++ {
		id := packet.NodeID(i)
		err := m.Register(id, func(pkt packet.Packet, meta RxMeta) {
			n.rxs = append(n.rxs, rxRecord{at: id, pkt: pkt, meta: meta})
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func (n *testNet) allOn() {
	for i := 0; i < len(n.m.nodes); i++ {
		n.m.SetRadio(packet.NodeID(i), true)
	}
}

func adv(src packet.NodeID) *packet.Advertise {
	return &packet.Advertise{Src: src, ProgramID: 1, ProgramSegments: 1, SegID: 1, SegNominal: 8, TotalPackets: 8}
}

func TestNewMediumValidation(t *testing.T) {
	k := sim.New(1)
	l, _ := topology.Line(2, 10)
	if _, err := NewMedium(nil, l, DefaultParams(), 1); err == nil {
		t.Error("nil kernel accepted")
	}
	if _, err := NewMedium(k, nil, DefaultParams(), 1); err == nil {
		t.Error("nil layout accepted")
	}
	p := DefaultParams()
	p.BitRateBps = 0
	if _, err := NewMedium(k, l, p, 1); err == nil {
		t.Error("zero bit rate accepted")
	}
	p = DefaultParams()
	p.BERCeil = p.BERFloor
	if _, err := NewMedium(k, l, p, 1); err == nil {
		t.Error("BERCeil <= BERFloor accepted")
	}
}

func TestAirtimeMatchesBitrate(t *testing.T) {
	l, _ := topology.Line(2, 10)
	n := newTestNet(t, l, cleanParams())
	// 34 bytes at 19.2 kbps ≈ 14.17 ms.
	got := n.m.Airtime(34)
	bits := float64(34 * 8)
	want := time.Duration(bits / 19200 * float64(time.Second))
	if got != want {
		t.Fatalf("Airtime(34) = %v, want %v", got, want)
	}
}

func TestBasicDelivery(t *testing.T) {
	l, _ := topology.Line(2, 10)
	n := newTestNet(t, l, cleanParams())
	n.allOn()
	air, err := n.m.Transmit(0, adv(0), PowerSim)
	if err != nil {
		t.Fatal(err)
	}
	if air <= 0 {
		t.Fatalf("airtime = %v", air)
	}
	n.k.Run(time.Second)
	if len(n.rxs) != 1 {
		t.Fatalf("got %d receptions, want 1", len(n.rxs))
	}
	r := n.rxs[0]
	if r.at != 1 || r.meta.From != 0 {
		t.Fatalf("delivered to %v from %v", r.at, r.meta.From)
	}
	got, ok := r.pkt.(*packet.Advertise)
	if !ok || got.Src != 0 || got.SegID != 1 {
		t.Fatalf("wrong packet delivered: %#v", r.pkt)
	}
}

func TestOutOfRangeNotDelivered(t *testing.T) {
	l, _ := topology.Line(2, 100) // 100 ft apart, PowerSim range 27 ft
	n := newTestNet(t, l, cleanParams())
	n.allOn()
	if _, err := n.m.Transmit(0, adv(0), PowerSim); err != nil {
		t.Fatal(err)
	}
	n.k.Run(time.Second)
	if len(n.rxs) != 0 {
		t.Fatalf("out-of-range delivery: %v", n.rxs)
	}
}

func TestHigherPowerExtendsRange(t *testing.T) {
	l, _ := topology.Line(2, 60) // beyond PowerSim (27ft), within PowerFull (70ft)
	n := newTestNet(t, l, cleanParams())
	n.allOn()
	if _, err := n.m.Transmit(0, adv(0), PowerFull); err != nil {
		t.Fatal(err)
	}
	n.k.Run(time.Second)
	if len(n.rxs) != 1 {
		t.Fatalf("full-power delivery failed: %d receptions", len(n.rxs))
	}
}

func TestTransmitPreconditions(t *testing.T) {
	l, _ := topology.Line(2, 10)
	n := newTestNet(t, l, cleanParams())
	if _, err := n.m.Transmit(0, adv(0), PowerSim); err == nil {
		t.Fatal("transmit with radio off accepted")
	}
	n.allOn()
	if _, err := n.m.Transmit(0, adv(0), 99); err == nil {
		t.Fatal("unknown power level accepted")
	}
	if _, err := n.m.Transmit(0, adv(0), PowerSim); err != nil {
		t.Fatal(err)
	}
	if _, err := n.m.Transmit(0, adv(0), PowerSim); err == nil {
		t.Fatal("overlapping transmit by same node accepted")
	}
	n.k.Run(time.Second)
	if _, err := n.m.Transmit(0, adv(0), PowerSim); err != nil {
		t.Fatalf("transmit after airtime rejected: %v", err)
	}
	n.m.Destroy(1)
	if _, err := n.m.Transmit(1, adv(1), PowerSim); err == nil {
		t.Fatal("destroyed node transmitted")
	}
	if !n.m.Destroyed(1) {
		t.Fatal("Destroyed not reported")
	}
}

func TestReceiverRadioOffDropsFrame(t *testing.T) {
	l, _ := topology.Line(2, 10)
	n := newTestNet(t, l, cleanParams())
	n.m.SetRadio(0, true)
	if _, err := n.m.Transmit(0, adv(0), PowerSim); err != nil {
		t.Fatal(err)
	}
	n.k.Run(time.Second)
	if len(n.rxs) != 0 {
		t.Fatal("radio-off receiver got the frame")
	}
}

func TestRadioOnMidFrameDropsFrame(t *testing.T) {
	l, _ := topology.Line(2, 10)
	n := newTestNet(t, l, cleanParams())
	n.m.SetRadio(0, true)
	if _, err := n.m.Transmit(0, adv(0), PowerSim); err != nil {
		t.Fatal(err)
	}
	// Receiver wakes 1 ms into the ~13 ms frame: missed the preamble.
	n.k.MustSchedule(time.Millisecond, func() { n.m.SetRadio(1, true) })
	n.k.Run(time.Second)
	if len(n.rxs) != 0 {
		t.Fatal("mid-frame wakeup still received")
	}
}

func TestRadioOffMidFrameDropsFrame(t *testing.T) {
	l, _ := topology.Line(2, 10)
	n := newTestNet(t, l, cleanParams())
	n.allOn()
	if _, err := n.m.Transmit(0, adv(0), PowerSim); err != nil {
		t.Fatal(err)
	}
	n.k.MustSchedule(time.Millisecond, func() { n.m.SetRadio(1, false) })
	n.k.Run(time.Second)
	if len(n.rxs) != 0 {
		t.Fatal("receiver that slept mid-frame still received")
	}
}

func TestCollisionCorruptsBothFrames(t *testing.T) {
	// Nodes 0 and 2 flank node 1; all within range of each other.
	l, _ := topology.Line(3, 10)
	n := newTestNet(t, l, cleanParams())
	n.allOn()
	collisions := &countingSink{}
	n.m.SetSink(collisions)
	if _, err := n.m.Transmit(0, adv(0), PowerSim); err != nil {
		t.Fatal(err)
	}
	// Node 2 starts 2 ms later, overlapping node 0's frame.
	n.k.MustSchedule(2*time.Millisecond, func() {
		if _, err := n.m.Transmit(2, adv(2), PowerSim); err != nil {
			t.Error(err)
		}
	})
	n.k.Run(time.Second)
	for _, r := range n.rxs {
		if r.at == 1 {
			t.Fatalf("node 1 received %v despite collision", r.pkt.Kind())
		}
	}
	if collisions.collided == 0 {
		t.Fatal("no collisions recorded")
	}
}

func TestCaptureEffect(t *testing.T) {
	// Receiver at one end: node 1 at 5 ft (strong), node 2 at 20 ft
	// (weak). With capture at ratio 0.5, the strong frame survives the
	// overlap; the weak one is lost.
	p := cleanParams()
	p.CaptureRatio = 0.5
	l, _ := topology.Line(3, 0.1) // placeholder; use explicit positions via grid
	_ = l
	layout, _ := topology.Grid(1, 5, 5) // nodes at 0,5,10,15,20 ft
	n := newTestNet(t, layout, p)
	n.allOn()
	// Receiver = node 0; strong sender = node 1 (5 ft); weak = node 4 (20 ft).
	if _, err := n.m.Transmit(1, adv(1), PowerSim); err != nil {
		t.Fatal(err)
	}
	n.k.MustSchedule(time.Millisecond, func() {
		if _, err := n.m.Transmit(4, adv(4), PowerSim); err != nil {
			t.Error(err)
		}
	})
	n.k.Run(time.Second)
	gotStrong, gotWeak := false, false
	for _, r := range n.rxs {
		if r.at == 0 && r.meta.From == 1 {
			gotStrong = true
		}
		if r.at == 0 && r.meta.From == 4 {
			gotWeak = true
		}
	}
	if !gotStrong {
		t.Fatal("strong frame did not capture the receiver")
	}
	if gotWeak {
		t.Fatal("weak overlapping frame survived")
	}
}

func TestNoCaptureWhenComparable(t *testing.T) {
	// Equidistant transmitters: capture cannot break the tie; both lost.
	p := cleanParams()
	p.CaptureRatio = 0.5
	layout, _ := topology.Grid(1, 3, 10) // receiver 1 centered
	n := newTestNet(t, layout, p)
	n.allOn()
	if _, err := n.m.Transmit(0, adv(0), PowerSim); err != nil {
		t.Fatal(err)
	}
	n.k.MustSchedule(time.Millisecond, func() {
		if _, err := n.m.Transmit(2, adv(2), PowerSim); err != nil {
			t.Error(err)
		}
	})
	n.k.Run(time.Second)
	for _, r := range n.rxs {
		if r.at == 1 {
			t.Fatalf("comparable-power collision delivered a frame from %v", r.meta.From)
		}
	}
}

func TestHiddenTerminal(t *testing.T) {
	// 0 —25ft— 1 —25ft— 2 with 27 ft range: 0 and 2 cannot hear each
	// other (50 ft apart) but both reach 1. Simultaneous transmissions
	// collide at 1; carrier sense at 2 sees an idle channel while 0 is
	// transmitting.
	l, _ := topology.Line(3, 25)
	n := newTestNet(t, l, cleanParams())
	n.allOn()
	if _, err := n.m.Transmit(0, adv(0), PowerSim); err != nil {
		t.Fatal(err)
	}
	if n.m.Busy(2) {
		t.Fatal("node 2 hears node 0 from 50 ft at 27 ft range")
	}
	if !n.m.Busy(1) {
		t.Fatal("node 1 does not hear node 0")
	}
	if _, err := n.m.Transmit(2, adv(2), PowerSim); err != nil {
		t.Fatal(err)
	}
	n.k.Run(time.Second)
	for _, r := range n.rxs {
		if r.at == 1 {
			t.Fatal("middle node survived the hidden-terminal collision")
		}
	}
}

func TestHalfDuplexTransmitterCannotReceive(t *testing.T) {
	l, _ := topology.Line(2, 10)
	n := newTestNet(t, l, cleanParams())
	n.allOn()
	if _, err := n.m.Transmit(0, adv(0), PowerSim); err != nil {
		t.Fatal(err)
	}
	n.k.MustSchedule(time.Millisecond, func() {
		if _, err := n.m.Transmit(1, adv(1), PowerSim); err != nil {
			t.Error(err)
		}
	})
	n.k.Run(time.Second)
	// Node 1 transmitted during node 0's frame, so it receives nothing;
	// node 0 likewise.
	if len(n.rxs) != 0 {
		t.Fatalf("half-duplex violated: %v receptions", len(n.rxs))
	}
}

func TestBusyAndTransmitting(t *testing.T) {
	l, _ := topology.Line(2, 10)
	n := newTestNet(t, l, cleanParams())
	n.allOn()
	if n.m.Busy(1) || n.m.Transmitting(0) {
		t.Fatal("idle channel reported busy")
	}
	if _, err := n.m.Transmit(0, adv(0), PowerSim); err != nil {
		t.Fatal(err)
	}
	if !n.m.Busy(1) {
		t.Fatal("in-range node does not sense carrier")
	}
	if !n.m.Busy(0) {
		t.Fatal("transmitter does not sense own carrier")
	}
	if !n.m.Transmitting(0) {
		t.Fatal("Transmitting(0) = false mid-frame")
	}
	n.k.Run(time.Second)
	if n.m.Busy(1) || n.m.Transmitting(0) {
		t.Fatal("channel busy after frame ended")
	}
}

func TestNeighbors(t *testing.T) {
	l, _ := topology.Grid(3, 3, 10)
	n := newTestNet(t, l, cleanParams())
	got, err := n.m.Neighbors(4, PowerSim) // 27 ft: all 8 within 14.2 ft... all in 3x3
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("center neighbors = %d, want 8", len(got))
	}
	if _, err := n.m.Neighbors(4, 1234); err == nil {
		t.Fatal("unknown power accepted")
	}
}

func TestLinkBERMonotonicInDistance(t *testing.T) {
	l, _ := topology.Line(2, 10)
	n := newTestNet(t, l, cleanParams())
	prev := -1.0
	for d := 0.0; d <= 27; d += 3 {
		ber := n.m.geo.linkBER(0, 1, d, 27)
		if ber < prev {
			t.Fatalf("BER decreased with distance at %g ft", d)
		}
		prev = ber
	}
	if got := n.m.geo.linkBER(0, 1, 30, 27); got != 1 {
		t.Fatalf("beyond-range BER = %g, want 1", got)
	}
}

func TestLinkNoiseDeterministicAndAsymmetric(t *testing.T) {
	a := linkNoise(7, 1, 2, 0.3)
	b := linkNoise(7, 1, 2, 0.3)
	if a != b {
		t.Fatal("link noise not deterministic")
	}
	if a < 0.25 || a > 4 {
		t.Fatalf("link noise %g outside clamp", a)
	}
	// Asymmetry: at least some links must differ between directions.
	diff := 0
	for i := 0; i < 50; i++ {
		x := linkNoise(7, packet.NodeID(i), packet.NodeID(i+1), 0.3)
		y := linkNoise(7, packet.NodeID(i+1), packet.NodeID(i), 0.3)
		if x != y {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("all links symmetric")
	}
}

func TestLossyLinkDropsSomeFrames(t *testing.T) {
	// At ~90% of range the per-frame loss must be substantial.
	p := DefaultParams()
	p.AsymSigma = 0
	l, _ := topology.Line(2, 24) // 24/27 = 0.89 of range
	n := newTestNet(t, l, p)
	n.allOn()
	sent, got := 200, 0
	var fire func(i int)
	fire = func(i int) {
		if i == sent {
			return
		}
		if _, err := n.m.Transmit(0, adv(0), PowerSim); err != nil {
			t.Error(err)
			return
		}
		n.k.MustSchedule(20*time.Millisecond, func() { fire(i + 1) })
	}
	fire(0)
	n.k.Run(time.Minute)
	got = len(n.rxs)
	if got == 0 {
		t.Fatal("edge-of-range link delivered nothing at all")
	}
	if got == sent {
		t.Fatal("edge-of-range link was lossless")
	}
}

type countingSink struct {
	sent, received, collided int
}

func (s *countingSink) FrameSent(packet.NodeID, packet.Kind, int) { s.sent++ }
func (s *countingSink) FrameReceived(packet.NodeID, packet.NodeID, packet.Kind, int) {
	s.received++
}
func (s *countingSink) FrameCollided(packet.NodeID, packet.NodeID, packet.Kind) { s.collided++ }

func TestSinkCountsTraffic(t *testing.T) {
	l, _ := topology.Grid(1, 3, 10)
	n := newTestNet(t, l, cleanParams())
	n.allOn()
	s := &countingSink{}
	n.m.SetSink(s)
	if _, err := n.m.Transmit(0, adv(0), PowerSim); err != nil {
		t.Fatal(err)
	}
	n.k.Run(time.Second)
	if s.sent != 1 {
		t.Fatalf("sent = %d", s.sent)
	}
	if s.received != 2 { // both other nodes in range
		t.Fatalf("received = %d, want 2", s.received)
	}
	n.m.SetSink(nil) // resets to NopSink without panicking
	if _, err := n.m.Transmit(0, adv(0), PowerSim); err != nil {
		t.Fatal(err)
	}
	n.k.Run(time.Second)
}

func TestRegisterOutOfRange(t *testing.T) {
	l, _ := topology.Line(2, 10)
	n := newTestNet(t, l, cleanParams())
	if err := n.m.Register(99, nil); err == nil {
		t.Fatal("out-of-range register accepted")
	}
}

func TestSetRadioIdempotentAndDestroySticky(t *testing.T) {
	l, _ := topology.Line(2, 10)
	n := newTestNet(t, l, cleanParams())
	n.m.SetRadio(0, true)
	n.m.SetRadio(0, true)
	if !n.m.RadioOn(0) {
		t.Fatal("radio not on")
	}
	n.m.Destroy(0)
	n.m.SetRadio(0, true)
	if n.m.RadioOn(0) {
		t.Fatal("destroyed node's radio turned on")
	}
}
