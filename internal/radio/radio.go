// Package radio models the wireless channel the way TOSSIM does: the
// network is a directed graph whose edges carry independent bit-error
// probabilities (hence asymmetric links), layered with a Mica-2 CC1000
// timing model (19.2 kbps), CSMA carrier sensing, and collision
// semantics under which overlapping audible frames corrupt each other
// at a receiver. The hidden-terminal problem — two transmitters out of
// each other's carrier-sense range colliding at a node between them —
// falls out of the model rather than being special-cased.
package radio

import (
	"fmt"
	"math"
	"time"

	"mnp/internal/packet"
	"mnp/internal/sim"
	"mnp/internal/topology"
)

// Params configures the channel model.
type Params struct {
	// BitRateBps is the radio bit rate; 19200 for the Mica-2 CC1000.
	BitRateBps int
	// TxRangeFeet maps a TinyOS power level to its communication (and
	// carrier-sense) range in feet. Levels used by the experiments:
	// indoor 3 and 4, outdoor 50 and 255 (full), simulation 20.
	TxRangeFeet map[int]float64
	// BERFloor is the bit-error rate of a perfect (zero-distance) link.
	BERFloor float64
	// BERCeil is the bit-error rate at exactly the communication range.
	BERCeil float64
	// AsymSigma is the standard deviation of the per-directed-link
	// lognormal noise factor applied to the BER, producing the
	// asymmetric links TOSSIM's empirical model exhibits. Zero disables
	// link noise.
	AsymSigma float64
	// CaptureRatio enables the capture effect: when two frames overlap
	// at a receiver and one transmitter is at most CaptureRatio times
	// the distance of the other, the nearer (stronger) frame survives
	// instead of both being lost. Zero disables capture (every overlap
	// corrupts both frames, the conservative default).
	CaptureRatio float64
}

// DefaultParams returns the Mica-2 model used by the experiments.
func DefaultParams() Params {
	return Params{
		BitRateBps: 19200,
		TxRangeFeet: map[int]float64{
			PowerWeak:       15,
			PowerIndoorLow:  32,
			PowerIndoorHigh: 55,
			PowerSim:        27,
			PowerOutdoorLow: 35,
			PowerFull:       70,
		},
		BERFloor:  1e-4,
		BERCeil:   2e-2,
		AsymSigma: 0.3,
	}
}

// Power levels referenced by the paper's experiments. TinyOS exposes
// 1..255; the paper uses "the lowest power levels (3 and 4)" indoors,
// "power level 50 and default power level (255)" outdoors, and we add a
// mid level for the 20×20 TOSSIM-style simulations.
const (
	PowerWeak       = 1 // battery-aware advertisements from drained nodes
	PowerIndoorLow  = 3
	PowerIndoorHigh = 4
	PowerSim        = 20
	PowerOutdoorLow = 50
	PowerFull       = 255
)

// RxMeta describes a successful reception.
type RxMeta struct {
	From  packet.NodeID
	Bytes int
	At    time.Duration
}

// FrameHandler consumes a decoded frame at a node.
type FrameHandler func(p packet.Packet, meta RxMeta)

// TrafficSink observes channel activity for metrics. Implementations
// must not re-enter the medium.
type TrafficSink interface {
	// FrameSent fires once per transmission at its start.
	FrameSent(src packet.NodeID, kind packet.Kind, bytes int)
	// FrameReceived fires per successful reception.
	FrameReceived(dst, src packet.NodeID, kind packet.Kind, bytes int)
	// FrameCollided fires per receiver that lost a frame to collision.
	FrameCollided(dst, src packet.NodeID, kind packet.Kind)
}

// NopSink discards all traffic events.
type NopSink struct{}

// FrameSent implements TrafficSink.
func (NopSink) FrameSent(packet.NodeID, packet.Kind, int) {}

// FrameReceived implements TrafficSink.
func (NopSink) FrameReceived(packet.NodeID, packet.NodeID, packet.Kind, int) {}

// FrameCollided implements TrafficSink.
func (NopSink) FrameCollided(packet.NodeID, packet.NodeID, packet.Kind) {}

var _ TrafficSink = NopSink{}

type nodeState struct {
	handler   FrameHandler
	on        bool
	onSince   time.Duration
	txStart   time.Duration
	txEnd     time.Duration
	everTx    bool
	destroyed bool
}

type transmission struct {
	src       packet.NodeID
	pkt       packet.Packet
	kind      packet.Kind
	bytes     int
	start     time.Duration
	end       time.Duration
	audible   []packet.NodeID
	corrupted map[packet.NodeID]bool
}

// Medium is the shared wireless channel. It is driven entirely by the
// simulation kernel and is not safe for concurrent use.
type Medium struct {
	kernel *sim.Kernel
	layout *topology.Layout
	params Params
	seed   int64
	nodes  []nodeState
	active []*transmission
	sink   TrafficSink
}

// NewMedium builds a channel over layout. seed drives the per-link
// asymmetry noise (independent of the kernel's RNG so that link quality
// is a stable property of the deployment).
func NewMedium(k *sim.Kernel, layout *topology.Layout, p Params, seed int64) (*Medium, error) {
	if k == nil || layout == nil {
		return nil, fmt.Errorf("radio: nil kernel or layout")
	}
	if p.BitRateBps <= 0 {
		return nil, fmt.Errorf("radio: bit rate %d must be positive", p.BitRateBps)
	}
	if p.BERFloor < 0 || p.BERCeil <= p.BERFloor || p.BERCeil >= 1 {
		return nil, fmt.Errorf("radio: BER bounds [%g, %g] invalid", p.BERFloor, p.BERCeil)
	}
	return &Medium{
		kernel: k,
		layout: layout,
		params: p,
		seed:   seed,
		nodes:  make([]nodeState, layout.N()),
		sink:   NopSink{},
	}, nil
}

// SetSink installs the traffic observer.
func (m *Medium) SetSink(s TrafficSink) {
	if s == nil {
		m.sink = NopSink{}
		return
	}
	m.sink = s
}

// Register installs the frame handler for node id. Radios start off.
func (m *Medium) Register(id packet.NodeID, h FrameHandler) error {
	if int(id) >= len(m.nodes) {
		return fmt.Errorf("radio: node %v out of range", id)
	}
	m.nodes[id].handler = h
	return nil
}

// SetRadio switches node id's radio on or off. Turning the radio off
// aborts any in-progress reception (the frame is simply not delivered).
func (m *Medium) SetRadio(id packet.NodeID, on bool) {
	st := &m.nodes[id]
	if st.destroyed || st.on == on {
		return
	}
	st.on = on
	if on {
		st.onSince = m.kernel.Now()
	}
}

// RadioOn reports whether node id's radio is on.
func (m *Medium) RadioOn(id packet.NodeID) bool { return m.nodes[id].on }

// Destroy removes node id from the network permanently (failure
// injection: "the sender dies as it is sending packets").
func (m *Medium) Destroy(id packet.NodeID) {
	st := &m.nodes[id]
	st.on = false
	st.destroyed = true
}

// Destroyed reports whether the node has been destroyed.
func (m *Medium) Destroyed(id packet.NodeID) bool { return m.nodes[id].destroyed }

// Airtime returns how long a frame of the given size occupies the
// channel.
func (m *Medium) Airtime(bytes int) time.Duration {
	bits := bytes * 8
	return time.Duration(float64(bits) / float64(m.params.BitRateBps) * float64(time.Second))
}

// RangeFor returns the communication range for a power level.
func (m *Medium) RangeFor(power int) (float64, error) {
	r, ok := m.params.TxRangeFeet[power]
	if !ok {
		return 0, fmt.Errorf("radio: no range configured for power level %d", power)
	}
	return r, nil
}

// Busy reports whether node id's carrier sense detects an ongoing
// transmission. A node hears a transmission if it is within the
// transmitter's range.
func (m *Medium) Busy(id packet.NodeID) bool {
	now := m.kernel.Now()
	for _, t := range m.active {
		if t.end <= now {
			continue
		}
		if t.src == id {
			return true
		}
		if t.isAudible(id) {
			return true
		}
	}
	return false
}

// Transmitting reports whether node id is mid-transmission.
func (m *Medium) Transmitting(id packet.NodeID) bool {
	st := &m.nodes[id]
	return st.everTx && st.txEnd > m.kernel.Now()
}

// Neighbors returns the nodes within the transmission range of id at
// the given power level.
func (m *Medium) Neighbors(id packet.NodeID, power int) ([]packet.NodeID, error) {
	r, err := m.RangeFor(power)
	if err != nil {
		return nil, err
	}
	return m.layout.Within(id, r), nil
}

// Transmit broadcasts pkt from src at the given power level and
// returns the frame's airtime. The caller must keep the radio on for
// the duration. Transmission fails if the radio is off, the node is
// destroyed, or a previous transmission is still in the air.
func (m *Medium) Transmit(src packet.NodeID, pkt packet.Packet, power int) (time.Duration, error) {
	st := &m.nodes[src]
	if st.destroyed {
		return 0, fmt.Errorf("radio: node %v is destroyed", src)
	}
	if !st.on {
		return 0, fmt.Errorf("radio: node %v radio is off", src)
	}
	now := m.kernel.Now()
	if st.everTx && st.txEnd > now {
		return 0, fmt.Errorf("radio: node %v already transmitting", src)
	}
	rng, err := m.RangeFor(power)
	if err != nil {
		return 0, err
	}
	frame := packet.Encode(pkt)
	air := m.Airtime(len(frame))
	t := &transmission{
		src:       src,
		pkt:       pkt,
		kind:      pkt.Kind(),
		bytes:     len(frame),
		start:     now,
		end:       now + air,
		corrupted: make(map[packet.NodeID]bool),
	}
	pos, err := m.layout.Pos(src)
	if err != nil {
		return 0, err
	}
	for i := range m.nodes {
		id := packet.NodeID(i)
		if id == src {
			continue
		}
		q, _ := m.layout.Pos(id)
		if pos.Distance(q) <= rng {
			t.audible = append(t.audible, id)
		}
	}
	// Overlapping audible frames corrupt each other at the common
	// receivers (this includes the hidden-terminal case), unless the
	// capture effect lets the markedly stronger frame survive.
	for _, u := range m.active {
		if u.end <= now {
			continue
		}
		for _, r := range t.audible {
			if !u.isAudible(r) {
				continue
			}
			if m.params.CaptureRatio > 0 {
				rPos, _ := m.layout.Pos(r)
				tPos, _ := m.layout.Pos(t.src)
				uPos, _ := m.layout.Pos(u.src)
				dt := rPos.Distance(tPos)
				du := rPos.Distance(uPos)
				if dt <= m.params.CaptureRatio*du {
					u.corrupted[r] = true // t captures the receiver
					continue
				}
				if du <= m.params.CaptureRatio*dt {
					t.corrupted[r] = true // u holds the receiver
					continue
				}
			}
			t.corrupted[r] = true
			u.corrupted[r] = true
		}
		// A frame arriving at an active transmitter is lost there, and
		// the new frame is garbled at the other transmitter too.
		if u.isAudible(src) {
			u.corrupted[src] = true
		}
		if t.isAudible(u.src) {
			t.corrupted[u.src] = true
		}
	}

	st.txStart = now
	st.txEnd = t.end
	st.everTx = true
	m.active = append(m.active, t)
	m.sink.FrameSent(src, t.kind, t.bytes)
	m.kernel.MustSchedule(air, func() { m.finish(t, rng) })
	return air, nil
}

func (m *Medium) finish(t *transmission, txRange float64) {
	// Drop t from the active list.
	for i, u := range m.active {
		if u == t {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	srcPos, err := m.layout.Pos(t.src)
	if err != nil {
		return
	}
	for _, r := range t.audible {
		st := &m.nodes[r]
		if st.destroyed || !st.on || st.onSince > t.start {
			continue // radio off for part of the frame
		}
		if st.everTx && st.txEnd > t.start && st.txStart < t.end {
			continue // half-duplex: was transmitting during the frame
		}
		if t.corrupted[r] {
			m.sink.FrameCollided(r, t.src, t.kind)
			continue
		}
		rPos, _ := m.layout.Pos(r)
		p := m.linkSuccessProb(t.src, r, srcPos.Distance(rPos), txRange, t.bytes)
		if m.kernel.Rand().Float64() >= p {
			continue // channel bit errors
		}
		decoded, err := packet.Decode(packet.Encode(t.pkt))
		if err != nil {
			continue
		}
		m.sink.FrameReceived(r, t.src, t.kind, t.bytes)
		if st.handler != nil {
			st.handler(decoded, RxMeta{From: t.src, Bytes: t.bytes, At: m.kernel.Now()})
		}
	}
}

// linkSuccessProb returns the probability that a frame of the given
// size crosses the directed link src→dst without bit errors.
func (m *Medium) linkSuccessProb(src, dst packet.NodeID, dist, txRange float64, bytes int) float64 {
	ber := m.linkBER(src, dst, dist, txRange)
	return math.Pow(1-ber, float64(bytes*8))
}

// linkBER computes the directed link's bit-error rate: a floor near
// the transmitter rising exponentially to BERCeil at the communication
// range, times a stable per-directed-link lognormal factor.
func (m *Medium) linkBER(src, dst packet.NodeID, dist, txRange float64) float64 {
	frac := dist / txRange
	if frac > 1 {
		return 1
	}
	base := m.params.BERFloor * math.Exp(math.Log(m.params.BERCeil/m.params.BERFloor)*frac*frac)
	if m.params.AsymSigma > 0 {
		base *= linkNoise(m.seed, src, dst, m.params.AsymSigma)
	}
	if base > 1 {
		base = 1
	}
	return base
}

// linkNoise returns a deterministic lognormal factor for the directed
// link (src, dst), independent of event ordering.
func linkNoise(seed int64, src, dst packet.NodeID, sigma float64) float64 {
	h := splitmix64(uint64(seed) ^ uint64(src)<<32 ^ uint64(dst)<<16 ^ 0x9E3779B97F4A7C15)
	// Two uniforms via Box–Muller for one standard normal draw.
	u1 := float64(h>>11) / float64(1<<53)
	h2 := splitmix64(h)
	u2 := float64(h2>>11) / float64(1<<53)
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	f := math.Exp(sigma * z)
	// Clamp so no link becomes absurdly good or bad.
	if f < 0.25 {
		f = 0.25
	}
	if f > 4 {
		f = 4
	}
	return f
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (t *transmission) isAudible(id packet.NodeID) bool {
	for _, a := range t.audible {
		if a == id {
			return true
		}
	}
	return false
}
