// Package radio models the wireless channel the way TOSSIM does: the
// network is a directed graph whose edges carry independent bit-error
// probabilities (hence asymmetric links), layered with a Mica-2 CC1000
// timing model (19.2 kbps), CSMA carrier sensing, and collision
// semantics under which overlapping audible frames corrupt each other
// at a receiver. The hidden-terminal problem — two transmitters out of
// each other's carrier-sense range colliding at a node between them —
// falls out of the model rather than being special-cased.
//
// Geometry and transmit ranges are immutable for a run, but unlike the
// dense TOSSIM tables the channel never materializes an N×N matrix:
// node positions go into a uniform grid hash (cell edge = the maximum
// radio range), and the audible neighbor list plus directed link BERs
// for one (power, source) pair are built on first transmission and kept
// in a bounded per-medium LRU cache. Everything is derived from pure
// functions of (layout, params, seed) — in particular the per-link
// asymmetry noise is a hash of (seed, src, dst), never of construction
// order — so the sparse channel is byte-identical to the dense one it
// replaced while memory and startup scale with the number of in-range
// links instead of N². The per-frame hot path does no per-frame
// allocation: transmissions are recycled through a free list, collision
// marking works on pooled bit sets indexed by audible-list position,
// and frames decode through a per-medium reuse cache.
package radio

import (
	"fmt"
	"math"
	"slices"
	"time"

	"mnp/internal/bitvec"
	"mnp/internal/packet"
	"mnp/internal/sim"
	"mnp/internal/topology"
)

// Params configures the channel model.
type Params struct {
	// BitRateBps is the radio bit rate; 19200 for the Mica-2 CC1000.
	BitRateBps int
	// TxRangeFeet maps a TinyOS power level to its communication (and
	// carrier-sense) range in feet. Levels used by the experiments:
	// indoor 3 and 4, outdoor 50 and 255 (full), simulation 20.
	TxRangeFeet map[int]float64
	// BERFloor is the bit-error rate of a perfect (zero-distance) link.
	BERFloor float64
	// BERCeil is the bit-error rate at exactly the communication range.
	BERCeil float64
	// AsymSigma is the standard deviation of the per-directed-link
	// lognormal noise factor applied to the BER, producing the
	// asymmetric links TOSSIM's empirical model exhibits. Zero disables
	// link noise.
	AsymSigma float64
	// CaptureRatio enables the capture effect: when two frames overlap
	// at a receiver and one transmitter is at most CaptureRatio times
	// the distance of the other, the nearer (stronger) frame survives
	// instead of both being lost. Zero disables capture (every overlap
	// corrupts both frames, the conservative default).
	CaptureRatio float64
	// LinkCacheSources bounds how many (power, source) link rows each
	// medium keeps cached; once full, the least recently transmitting
	// source's row is recomputed on its next frame. Zero selects the
	// default. Purely a memory/speed trade-off — cache hits and misses
	// produce identical behavior.
	LinkCacheSources int
}

// defaultLinkCacheSources caps the per-medium link cache when Params
// leaves LinkCacheSources zero. At a typical degree of tens of
// neighbors this is a few tens of megabytes — small next to the node
// state of a deployment large enough to fill it.
const defaultLinkCacheSources = 1 << 16

// DefaultParams returns the Mica-2 model used by the experiments.
func DefaultParams() Params {
	return Params{
		BitRateBps: 19200,
		TxRangeFeet: map[int]float64{
			PowerWeak:       15,
			PowerIndoorLow:  32,
			PowerIndoorHigh: 55,
			PowerSim:        27,
			PowerOutdoorLow: 35,
			PowerFull:       70,
		},
		BERFloor:  1e-4,
		BERCeil:   2e-2,
		AsymSigma: 0.3,
	}
}

// Power levels referenced by the paper's experiments. TinyOS exposes
// 1..255; the paper uses "the lowest power levels (3 and 4)" indoors,
// "power level 50 and default power level (255)" outdoors, and we add a
// mid level for the 20×20 TOSSIM-style simulations.
const (
	PowerWeak       = 1 // battery-aware advertisements from drained nodes
	PowerIndoorLow  = 3
	PowerIndoorHigh = 4
	PowerSim        = 20
	PowerOutdoorLow = 50
	PowerFull       = 255
)

// RxMeta describes a successful reception.
type RxMeta struct {
	From  packet.NodeID
	Bytes int
	At    time.Duration
}

// FrameHandler consumes a decoded frame at a node.
type FrameHandler func(p packet.Packet, meta RxMeta)

// TrafficSink observes channel activity for metrics. Implementations
// must not re-enter the medium.
type TrafficSink interface {
	// FrameSent fires once per transmission at its start.
	FrameSent(src packet.NodeID, kind packet.Kind, bytes int)
	// FrameReceived fires per successful reception.
	FrameReceived(dst, src packet.NodeID, kind packet.Kind, bytes int)
	// FrameCollided fires per receiver that lost a frame to collision.
	FrameCollided(dst, src packet.NodeID, kind packet.Kind)
}

// NopSink discards all traffic events.
type NopSink struct{}

// FrameSent implements TrafficSink.
func (NopSink) FrameSent(packet.NodeID, packet.Kind, int) {}

// FrameReceived implements TrafficSink.
func (NopSink) FrameReceived(packet.NodeID, packet.NodeID, packet.Kind, int) {}

// FrameCollided implements TrafficSink.
func (NopSink) FrameCollided(packet.NodeID, packet.NodeID, packet.Kind) {}

var _ TrafficSink = NopSink{}

type nodeState struct {
	handler   FrameHandler
	on        bool
	onSince   time.Duration
	txStart   time.Duration
	txEnd     time.Duration
	everTx    bool
	destroyed bool
}

// transmission is one frame in the air. full, ber, and deliver are
// borrowed read-only from the medium's link cache; frame and corrupted
// are owned and recycled with the transmission through the free list.
// corrupted is indexed by POSITION in full, not by node ID, so its
// capacity follows the transmitter's degree instead of the network
// size.
type transmission struct {
	src   packet.NodeID
	kind  packet.Kind
	bytes int
	start time.Duration
	end   time.Duration
	frame []byte
	// full lists every audible receiver in ascending ID order; ber is
	// aligned with it.
	full []packet.NodeID
	ber  []float64
	// deliver indexes into full the receivers this medium owns and so
	// delivers to; nil means all of them (the unsharded case).
	deliver []int32
	// rangeFt is the transmit range of this frame's power level, for
	// the O(1) disjointness prefilter in collide.
	rangeFt   float64
	corrupted *bitvec.Set
	// finishFn is the end-of-frame callback, bound once per pooled
	// transmission so scheduling it never allocates a closure.
	finishFn func()
}

// posOf returns id's position in the full audible list, or -1.
func (t *transmission) posOf(id packet.NodeID) int {
	if i, ok := slices.BinarySearch(t.full, id); ok {
		return i
	}
	return -1
}

func (t *transmission) isAudible(id packet.NodeID) bool { return t.posOf(id) >= 0 }

// deliverLen returns how many receivers this medium delivers to.
func (t *transmission) deliverLen() int {
	if t.deliver == nil {
		return len(t.full)
	}
	return len(t.deliver)
}

// deliverPos maps a delivery slot to its position in full.
func (t *transmission) deliverPos(i int) int {
	if t.deliver == nil {
		return i
	}
	return int(t.deliver[i])
}

// Geometry is the shared part of a channel: node positions, the
// spatial index over them, and the model parameters. For a static
// layout it depends only on (layout, params, seed), never on event
// order, so the sharded engine builds one Geometry and shares it
// read-only across every shard's Medium; the mutable per-source link
// cache lives in each Medium. Mobility mutates positions through
// MoveNode, which is only ever called at engine barriers (all shard
// workers parked), so the read paths stay safe for concurrent use and
// every position update is stamped for the link caches to detect.
type Geometry struct {
	layout *topology.Layout
	params Params
	seed   int64
	n      int
	pts    []topology.Point // layout's backing points, written only by MoveNode
	index  *topology.Index  // grid hash, cell edge = max radio range

	// moveStamp is a global monotone counter of position updates;
	// cellEpoch[c] records the stamp of the last move whose old or new
	// position fell in grid cell c. Nil until the first MoveNode, so
	// static runs pay nothing and draw no extra randomness.
	moveStamp uint64
	cellEpoch []uint64
}

// NewGeometry validates the channel model and builds the spatial index
// (O(N), unlike the O(N²) distance matrix it replaced). seed drives the
// per-link asymmetry noise.
func NewGeometry(layout *topology.Layout, p Params, seed int64) (*Geometry, error) {
	if layout == nil {
		return nil, fmt.Errorf("radio: nil layout")
	}
	if p.BitRateBps <= 0 {
		return nil, fmt.Errorf("radio: bit rate %d must be positive", p.BitRateBps)
	}
	if p.BERFloor < 0 || p.BERCeil <= p.BERFloor || p.BERCeil >= 1 {
		return nil, fmt.Errorf("radio: BER bounds [%g, %g] invalid", p.BERFloor, p.BERCeil)
	}
	cell := 0.0
	for _, r := range p.TxRangeFeet {
		if r > cell {
			cell = r
		}
	}
	if cell <= 0 {
		cell = 1 // no transmit ranges configured: nothing will query
	}
	index, err := topology.NewIndex(layout, cell)
	if err != nil {
		return nil, fmt.Errorf("radio: %w", err)
	}
	return &Geometry{
		layout: layout,
		params: p,
		seed:   seed,
		n:      layout.N(),
		pts:    layout.Points(),
		index:  index,
	}, nil
}

// Airtime returns how long a frame of the given size occupies the
// channel.
func (g *Geometry) Airtime(bytes int) time.Duration {
	bits := bytes * 8
	return time.Duration(float64(bits) / float64(g.params.BitRateBps) * float64(time.Second))
}

// RangeFor returns the communication range for a power level.
func (g *Geometry) RangeFor(power int) (float64, error) {
	r, ok := g.params.TxRangeFeet[power]
	if !ok {
		return 0, fmt.Errorf("radio: no range configured for power level %d", power)
	}
	return r, nil
}

// Footprint returns the resident bytes of the geometry: the position
// slice plus the spatial index. With the dense tables gone this is the
// whole per-run channel cost outside the per-medium link cache, and it
// scales linearly with N.
func (g *Geometry) Footprint() uint64 {
	return uint64(len(g.pts))*16 + g.index.Footprint()
}

// computeLinks materializes the audible neighbor list and directed link
// BERs for one (power, src) pair: exactly the row the dense per-power
// table used to hold, built from the spatial index in O(degree). Pure
// and safe for concurrent use; results depend only on (layout, params,
// seed).
func (g *Geometry) computeLinks(power int, src packet.NodeID) ([]packet.NodeID, []float64, error) {
	rng, err := g.RangeFor(power)
	if err != nil {
		return nil, nil, err
	}
	ids := g.index.AppendWithin(src, rng, nil)
	if len(ids) == 0 {
		return nil, nil, nil
	}
	ber := make([]float64, len(ids))
	p := g.pts[src]
	for i, dst := range ids {
		ber[i] = g.linkBER(src, dst, p.Distance(g.pts[dst]), rng)
	}
	return ids, ber, nil
}

// distance returns the exact link distance between two nodes — the same
// float the dense distance matrix held, since Hypot is symmetric.
func (g *Geometry) distance(a, b packet.NodeID) float64 {
	return g.pts[a].Distance(g.pts[b])
}

// MoveNode updates node id's position, keeping the spatial index exact
// and stamping the grid cells the move touches so every Medium's
// link-row cache can detect rows whose source or audible set changed.
// Mobility is the only caller and runs strictly at engine barriers
// (shard workers parked), which is what makes a mutation of the shared
// Geometry safe.
func (g *Geometry) MoveNode(id packet.NodeID, to topology.Point) {
	if g.cellEpoch == nil {
		cols, rows := g.index.Cells()
		g.cellEpoch = make([]uint64, cols*rows)
	}
	from := g.index.CellIndex(g.pts[id])
	g.index.Move(id, to) // writes through the shared point slice
	g.moveStamp++
	g.cellEpoch[from] = g.moveStamp
	if c := g.index.CellIndex(to); c != from {
		g.cellEpoch[c] = g.moveStamp
	}
	g.layout.InvalidateDistanceCache()
}

// Moves returns how many MoveNode calls the geometry has absorbed.
func (g *Geometry) Moves() uint64 { return g.moveStamp }

// regionStamp returns the newest move stamp among the grid cells
// covering the disc of the given radius around src's current position —
// exactly the cell set a link-row build for (src, radius) reads. A
// cached row is fresh iff this value still equals the stamp recorded at
// build time: stamps are issued from one monotone counter, so any later
// move of the source (its new cell is inside the current disc) or of an
// audible-set member (its old or new cell overlaps the disc) makes the
// region's maximum strictly newer. Zero when no move ever touched the
// region.
func (g *Geometry) regionStamp(src packet.NodeID, radius float64) uint64 {
	if g.cellEpoch == nil {
		return 0
	}
	cols, _ := g.index.Cells()
	cx0, cy0, cx1, cy1 := g.index.CellRect(g.pts[src], radius)
	var newest uint64
	for cy := cy0; cy <= cy1; cy++ {
		base := cy * cols
		for cx := cx0; cx <= cx1; cx++ {
			if s := g.cellEpoch[base+cx]; s > newest {
				newest = s
			}
		}
	}
	return newest
}

// linkKey identifies one cached link row.
type linkKey struct {
	power int
	src   packet.NodeID
}

// linkRow is the materialized channel state for one (power, source)
// pair: the full audible list with aligned BERs, plus this medium's
// delivery view of it. Rows are immutable once built; eviction just
// drops the cache's reference, so in-flight transmissions still
// borrowing the slices stay valid.
type linkRow struct {
	key     linkKey
	full    []packet.NodeID
	ber     []float64
	rangeFt float64
	// deliver indexes the receivers this medium owns; nil = all
	// (unsharded).
	deliver []int32
	// boundary marks that some audible receiver is owned by another
	// shard, so frames from this source must be exported as ghosts.
	boundary bool
	// stamp is the geometry's regionStamp over the row's coverage disc
	// at build time; a mismatch on lookup means the source or its
	// audible set moved and the row must be rebuilt.
	stamp uint64

	prev, next *linkRow // LRU list, most recent at head
}

// Medium is the shared wireless channel. It is driven entirely by the
// simulation kernel and is not safe for concurrent use. In a sharded
// run each shard has its own Medium over a shared Geometry; a Medium
// then owns a subset of the nodes and exchanges boundary-crossing
// frames with its peers as Ghost records.
type Medium struct {
	kernel *sim.Kernel
	geo    *Geometry
	nodes  []nodeState
	active []*transmission
	sink   TrafficSink

	n      int
	freeTx []*transmission

	// links is the bounded LRU cache of per-(power, src) rows. Each
	// medium has its own, so shards never contend on a shared table.
	// The cache fields carry checkpoint:"skip": rows are pure caches of
	// geometry (stamp-validated on every lookup), so a speculation
	// rollback leaves them alone — restoring the LRU list head/tail
	// words while the map kept newer entries would corrupt the list.
	links                  map[linkKey]*linkRow `checkpoint:"skip"`
	lruHead                *linkRow             `checkpoint:"skip"`
	lruTail                *linkRow             `checkpoint:"skip"`
	lruCap                 int
	cacheInvalidations     uint64
	cacheHits, cacheMisses uint64

	// dec reuses one decoded message per kind across frame deliveries;
	// handlers treat incoming packets as read-only and copy at the
	// storage boundary, so reuse is invisible to them. Skipped by
	// checkpoints: decode results are pure functions of frame bytes.
	dec packet.DecodeCache `checkpoint:"skip"`

	// owned flags the nodes this Medium simulates; nil (the sequential
	// case) means all of them. Handlers, radio state, and deliveries
	// exist only for owned nodes.
	owned     []bool
	outbox    []Ghost
	ghostSeq  uint64
	delivered uint64 // cumulative successful frame deliveries

	// tap, when set, observes every transmitted frame in decoded form
	// (invariant checkers need packet contents, which TrafficSink
	// deliberately omits). Nil costs nothing.
	tap Tap
	// linkFault, when set, returns an extra drop probability for the
	// directed link (src, dst), applied per frame at delivery time.
	// Fault injection installs it; nil (the default) costs nothing and
	// draws no randomness, keeping fault-free runs byte-identical.
	linkFault func(src, dst packet.NodeID) float64
}

// Ghost is a boundary-crossing transmission exported by one shard and
// replayed into the others at a window barrier: enough to reproduce the
// frame's exact occupancy of the channel ([Start, End)), its collision
// footprint, and its delivery, without the transmitter itself.
type Ghost struct {
	Src   packet.NodeID
	Kind  packet.Kind
	Power int
	Start time.Duration
	End   time.Duration
	// Seq is the transmit order within the source shard; the engine
	// merges outboxes by (Start, Src, Seq) so the exchange is a pure
	// function of simulation state, never of goroutine arrival order.
	Seq   uint64
	Frame []byte
	// X, Y, RangeFt are the transmitter's position and transmit range,
	// exported so the engine can skip offering the ghost to tiles whose
	// bounding box lies entirely beyond the range (such an insertion
	// would be a no-op: no receiver there could hear the frame).
	X, Y    float64
	RangeFt float64
}

// Tap observes a successfully started transmission: the decoded packet
// and its airtime. Implementations must not re-enter the medium.
type Tap func(src packet.NodeID, p packet.Packet, air time.Duration)

// SetTap installs the transmission tap (nil to remove).
func (m *Medium) SetTap(t Tap) { m.tap = t }

// SetLinkFault installs a per-directed-link extra drop probability,
// consulted once per (frame, receiver) after the channel's own
// bit-error draw: 0 delivers normally, 1 drops deterministically,
// in-between drops with that probability using the kernel RNG. Used by
// fault plans to model degraded links and partitions.
func (m *Medium) SetLinkFault(f func(src, dst packet.NodeID) float64) { m.linkFault = f }

// NewMedium builds a channel over layout. seed drives the per-link
// asymmetry noise (independent of the kernel's RNG so that link quality
// is a stable property of the deployment).
func NewMedium(k *sim.Kernel, layout *topology.Layout, p Params, seed int64) (*Medium, error) {
	geo, err := NewGeometry(layout, p, seed)
	if err != nil {
		return nil, err
	}
	return NewShardMedium(k, geo, nil)
}

// NewShardMedium builds one shard's channel over a shared Geometry.
// owned lists the node IDs this shard simulates; nil means all of them
// (exactly NewMedium). Frames transmitted by owned nodes that reach
// nodes owned elsewhere accumulate in the outbox for the engine to
// exchange at window barriers.
func NewShardMedium(k *sim.Kernel, geo *Geometry, owned []packet.NodeID) (*Medium, error) {
	if k == nil || geo == nil {
		return nil, fmt.Errorf("radio: nil kernel or geometry")
	}
	m := &Medium{
		kernel: k,
		geo:    geo,
		nodes:  make([]nodeState, geo.n),
		sink:   NopSink{},
		n:      geo.n,
		links:  make(map[linkKey]*linkRow),
		lruCap: geo.params.LinkCacheSources,
	}
	if m.lruCap <= 0 {
		m.lruCap = defaultLinkCacheSources
	}
	if owned != nil {
		m.owned = make([]bool, geo.n)
		for _, id := range owned {
			if int(id) >= geo.n {
				return nil, fmt.Errorf("radio: owned node %v outside the %d-node layout", id, geo.n)
			}
			m.owned[id] = true
		}
	}
	return m, nil
}

// Geometry returns the shared channel geometry (mutable only through
// MoveNode, at barriers).
func (m *Medium) Geometry() *Geometry { return m.geo }

// CacheStats reports link-cache hits, misses, mobility invalidations,
// and resident rows since the medium was built — a diagnostic for
// sizing LinkCacheSources and for seeing how hard mobility churns the
// cache. An invalidation is a cached row discarded because its source
// or audible set moved; the rebuild that follows is counted as a miss,
// so hits+misses still totals the lookups.
func (m *Medium) CacheStats() (hits, misses, invalidations uint64, entries int) {
	return m.cacheHits, m.cacheMisses, m.cacheInvalidations, len(m.links)
}

// CacheHitRate returns the link-cache hit fraction in [0, 1]. Before
// the first lookup the rate is defined as 0 — not the NaN that raw
// hits/(hits+misses) produces, which poisons any aggregate it touches.
func (m *Medium) CacheHitRate() float64 {
	total := m.cacheHits + m.cacheMisses
	if total == 0 {
		return 0
	}
	return float64(m.cacheHits) / float64(total)
}

// linkRowFor returns the cached link row for (power, src), building it
// from the geometry on a miss and evicting the least recently used row
// beyond the cache bound. Cache state never affects behavior: a rebuilt
// row is identical to the evicted one. Under mobility a cached row is
// revalidated against the geometry's per-cell move stamps, so a row
// whose source or audible set moved is never served stale — it is
// dropped (counted as an invalidation) and rebuilt like a miss. The
// old row object is left intact: in-flight transmissions still
// borrowing its slices keep the channel state they started with.
func (m *Medium) linkRowFor(power int, src packet.NodeID) (*linkRow, error) {
	key := linkKey{power: power, src: src}
	if row, ok := m.links[key]; ok {
		if m.geo.regionStamp(src, row.rangeFt) == row.stamp {
			m.cacheHits++
			m.lruMoveFront(row)
			return row, nil
		}
		m.cacheInvalidations++
		m.lruUnlink(row)
		delete(m.links, key)
	}
	full, ber, err := m.geo.computeLinks(power, src)
	if err != nil {
		return nil, err
	}
	m.cacheMisses++
	rangeFt, _ := m.geo.RangeFor(power) // computeLinks already validated power
	row := &linkRow{key: key, full: full, ber: ber, rangeFt: rangeFt,
		stamp: m.geo.regionStamp(src, rangeFt)}
	if m.owned != nil {
		row.deliver = make([]int32, 0, len(full))
		for i, dst := range full {
			if m.owned[dst] {
				row.deliver = append(row.deliver, int32(i))
			} else {
				row.boundary = true
			}
		}
	}
	m.links[key] = row
	m.lruPushFront(row)
	for len(m.links) > m.lruCap {
		evict := m.lruTail
		m.lruUnlink(evict)
		delete(m.links, evict.key)
	}
	return row, nil
}

func (m *Medium) lruPushFront(row *linkRow) {
	row.prev, row.next = nil, m.lruHead
	if m.lruHead != nil {
		m.lruHead.prev = row
	}
	m.lruHead = row
	if m.lruTail == nil {
		m.lruTail = row
	}
}

func (m *Medium) lruUnlink(row *linkRow) {
	if row.prev != nil {
		row.prev.next = row.next
	} else {
		m.lruHead = row.next
	}
	if row.next != nil {
		row.next.prev = row.prev
	} else {
		m.lruTail = row.prev
	}
	row.prev, row.next = nil, nil
}

func (m *Medium) lruMoveFront(row *linkRow) {
	if m.lruHead == row {
		return
	}
	m.lruUnlink(row)
	m.lruPushFront(row)
}

// SetSink installs the traffic observer.
func (m *Medium) SetSink(s TrafficSink) {
	if s == nil {
		m.sink = NopSink{}
		return
	}
	m.sink = s
}

// Register installs the frame handler for node id. Radios start off.
func (m *Medium) Register(id packet.NodeID, h FrameHandler) error {
	if int(id) >= len(m.nodes) {
		return fmt.Errorf("radio: node %v out of range", id)
	}
	m.nodes[id].handler = h
	return nil
}

// SetRadio switches node id's radio on or off. Turning the radio off
// aborts any in-progress reception (the frame is simply not delivered).
func (m *Medium) SetRadio(id packet.NodeID, on bool) {
	st := &m.nodes[id]
	if st.destroyed || st.on == on {
		return
	}
	st.on = on
	if on {
		st.onSince = m.kernel.Now()
	}
}

// RadioOn reports whether node id's radio is on.
func (m *Medium) RadioOn(id packet.NodeID) bool { return m.nodes[id].on }

// Destroy removes node id from the network permanently (failure
// injection: "the sender dies as it is sending packets").
func (m *Medium) Destroy(id packet.NodeID) {
	st := &m.nodes[id]
	st.on = false
	st.destroyed = true
}

// Destroyed reports whether the node has been destroyed.
func (m *Medium) Destroyed(id packet.NodeID) bool { return m.nodes[id].destroyed }

// Airtime returns how long a frame of the given size occupies the
// channel.
func (m *Medium) Airtime(bytes int) time.Duration { return m.geo.Airtime(bytes) }

// RangeFor returns the communication range for a power level.
func (m *Medium) RangeFor(power int) (float64, error) { return m.geo.RangeFor(power) }

// Owns reports whether this Medium simulates node id. A sequential
// medium owns every node.
func (m *Medium) Owns(id packet.NodeID) bool {
	return int(id) < m.n && (m.owned == nil || m.owned[id])
}

// Busy reports whether node id's carrier sense detects an ongoing
// transmission. A node hears a transmission if it is within the
// transmitter's range.
func (m *Medium) Busy(id packet.NodeID) bool {
	now := m.kernel.Now()
	for _, t := range m.active {
		if t.end <= now {
			continue
		}
		if t.src == id {
			return true
		}
		if t.isAudible(id) {
			return true
		}
	}
	return false
}

// Transmitting reports whether node id is mid-transmission.
func (m *Medium) Transmitting(id packet.NodeID) bool {
	st := &m.nodes[id]
	return st.everTx && st.txEnd > m.kernel.Now()
}

// Neighbors returns the nodes within the transmission range of id at
// the given power level. The returned slice is the caller's to keep.
func (m *Medium) Neighbors(id packet.NodeID, power int) ([]packet.NodeID, error) {
	if _, err := m.geo.RangeFor(power); err != nil {
		return nil, err
	}
	if int(id) >= m.n {
		return nil, nil
	}
	row, err := m.linkRowFor(power, id)
	if err != nil {
		return nil, err
	}
	if len(row.full) == 0 {
		return nil, nil
	}
	return append([]packet.NodeID(nil), row.full...), nil
}

// newTransmission takes a transmission from the free list, or grows the
// pool. The caller assigns the borrowed row references and sizes the
// collision set.
func (m *Medium) newTransmission() *transmission {
	if n := len(m.freeTx); n > 0 {
		t := m.freeTx[n-1]
		m.freeTx[n-1] = nil
		m.freeTx = m.freeTx[:n-1]
		return t
	}
	t := &transmission{corrupted: &bitvec.Set{}}
	t.finishFn = func() { m.finish(t) }
	return t
}

// recycle returns a finished transmission to the free list, dropping
// the borrowed row references. The collision set is re-dimensioned (and
// thereby cleared) at next use.
func (m *Medium) recycle(t *transmission) {
	t.full, t.ber, t.deliver = nil, nil, nil
	m.freeTx = append(m.freeTx, t)
}

// markMutualCorruption merges the overlap of two frames into both
// collision sets: every receiver audible to both transmitters loses
// both frames. A single merge-walk of the two sorted audible lists
// replaces the dense word-wise set intersection.
func markMutualCorruption(t, u *transmission) {
	i, j := 0, 0
	for i < len(t.full) && j < len(u.full) {
		a, b := t.full[i], u.full[j]
		switch {
		case a == b:
			t.corrupted.Add(i)
			u.corrupted.Add(j)
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}
}

// collide applies the collision semantics between a new transmission t
// and an active one u: mutual corruption at common receivers (or the
// capture rule), plus frame loss at the transmitters themselves.
func (m *Medium) collide(t, u *transmission) {
	// Transmitters farther apart than the sum of their ranges share no
	// audible receiver and cannot hear each other: every marking below
	// would be a no-op, so skip the list walks entirely. At scale this
	// makes concurrent far-apart transmissions O(1) to reconcile.
	if m.geo.distance(t.src, u.src) > t.rangeFt+u.rangeFt {
		return
	}
	if m.geo.params.CaptureRatio > 0 {
		m.resolveWithCapture(t, u)
	} else {
		markMutualCorruption(t, u)
	}
	// A frame arriving at an active transmitter is lost there, and the
	// new frame is garbled at the other transmitter too.
	if ui := u.posOf(t.src); ui >= 0 {
		u.corrupted.Add(ui)
	}
	if ti := t.posOf(u.src); ti >= 0 {
		t.corrupted.Add(ti)
	}
}

// Transmit broadcasts pkt from src at the given power level and
// returns the frame's airtime. The caller must keep the radio on for
// the duration. Transmission fails if the radio is off, the node is
// destroyed, or a previous transmission is still in the air.
func (m *Medium) Transmit(src packet.NodeID, pkt packet.Packet, power int) (time.Duration, error) {
	st := &m.nodes[src]
	if st.destroyed {
		return 0, fmt.Errorf("radio: node %v is destroyed", src)
	}
	if !st.on {
		return 0, fmt.Errorf("radio: node %v radio is off", src)
	}
	now := m.kernel.Now()
	if st.everTx && st.txEnd > now {
		return 0, fmt.Errorf("radio: node %v already transmitting", src)
	}
	row, err := m.linkRowFor(power, src)
	if err != nil {
		return 0, err
	}
	t := m.newTransmission()
	t.frame = packet.AppendEncode(t.frame[:0], pkt)
	air := m.Airtime(len(t.frame))
	t.src = src
	t.kind = pkt.Kind()
	t.bytes = len(t.frame)
	t.start = now
	t.end = now + air
	// Deliveries stay within the shard (row.deliver); nodes owned
	// elsewhere hear this frame as a ghost after the next window
	// barrier. The full audible list is kept either way so collision
	// footprints and Busy cover the whole neighborhood.
	t.full = row.full
	t.ber = row.ber
	t.deliver = row.deliver
	t.rangeFt = row.rangeFt
	t.corrupted.ResetCap(len(row.full))
	// Overlapping audible frames corrupt each other at the common
	// receivers (this includes the hidden-terminal case), unless the
	// capture effect lets the markedly stronger frame survive.
	for _, u := range m.active {
		if u.end <= now {
			continue
		}
		m.collide(t, u)
	}

	st.txStart = now
	st.txEnd = t.end
	st.everTx = true
	m.active = append(m.active, t)
	m.sink.FrameSent(src, t.kind, t.bytes)
	if m.tap != nil {
		m.tap(src, pkt, air)
	}
	if row.boundary {
		p := m.geo.pts[src]
		m.outbox = append(m.outbox, Ghost{
			Src:     src,
			Kind:    t.kind,
			Power:   power,
			Start:   now,
			End:     t.end,
			Seq:     m.ghostSeq,
			Frame:   append([]byte(nil), t.frame...),
			X:       p.X,
			Y:       p.Y,
			RangeFt: row.rangeFt,
		})
		m.ghostSeq++
	}
	m.kernel.MustSchedule(air, t.finishFn)
	return air, nil
}

// TakeOutbox drains and returns the boundary frames transmitted since
// the last call, in transmit order. The engine calls it at each window
// barrier.
func (m *Medium) TakeOutbox() []Ghost {
	out := m.outbox
	m.outbox = nil
	return out
}

// Outbox returns the pending boundary-crossing frames without draining
// them. The optimistic engine peeks every tile's outbox after a
// speculation round to find the earliest window in which a reachable
// ghost was transmitted — the commit horizon — before any exchange
// happens.
func (m *Medium) Outbox() []Ghost { return m.outbox }

// InsertGhost replays a boundary frame from another shard into this
// shard's channel: it occupies the air over [Start, End) for carrier
// sensing, corrupts and is corrupted by overlapping frames exactly as a
// local transmission would, and delivers to this shard's audible nodes
// at its end-of-frame instant. The transmitter-side effects (FrameSent,
// the tap, the half-duplex bookkeeping) already happened on the owning
// shard and are not repeated. The conservative window bound guarantees
// End is not in the past at insertion time.
func (m *Medium) InsertGhost(g Ghost) error {
	if m.owned == nil {
		return fmt.Errorf("radio: ghost insertion on an unsharded medium")
	}
	if int(g.Src) >= m.n || m.owned[g.Src] {
		return fmt.Errorf("radio: ghost source %v is owned by this shard", g.Src)
	}
	row, err := m.linkRowFor(g.Power, g.Src)
	if err != nil {
		return err
	}
	if len(row.deliver) == 0 {
		return nil // inaudible here: no receiver and no carrier to sense
	}
	t := m.newTransmission()
	t.frame = append(t.frame[:0], g.Frame...)
	t.src = g.Src
	t.kind = g.Kind
	t.bytes = len(t.frame)
	t.start = g.Start
	t.end = g.End
	t.full = row.full
	t.ber = row.ber
	t.deliver = row.deliver
	t.rangeFt = row.rangeFt
	t.corrupted.ResetCap(len(row.full))
	// Unlike Transmit (whose frames always start "now"), a ghost starts
	// in the previous window, so overlap is a general interval test.
	for _, u := range m.active {
		if u.end <= t.start || u.start >= t.end {
			continue
		}
		m.collide(t, u)
	}
	m.active = append(m.active, t)
	if _, err := m.kernel.ScheduleAt(t.end, t.finishFn); err != nil {
		return fmt.Errorf("radio: ghost from %v: %w", g.Src, err)
	}
	return nil
}

// resolveWithCapture applies the per-receiver capture rule between a
// new transmission t and an active one u, walking t's delivery view
// (all audible receivers when unsharded) exactly as the dense model
// did.
func (m *Medium) resolveWithCapture(t, u *transmission) {
	for di, nd := 0, t.deliverLen(); di < nd; di++ {
		fi := t.deliverPos(di)
		r := t.full[fi]
		ui := u.posOf(r)
		if ui < 0 {
			continue
		}
		dt := m.geo.distance(r, t.src)
		du := m.geo.distance(r, u.src)
		if dt <= m.geo.params.CaptureRatio*du {
			u.corrupted.Add(ui) // t captures the receiver
			continue
		}
		if du <= m.geo.params.CaptureRatio*dt {
			t.corrupted.Add(fi) // u holds the receiver
			continue
		}
		t.corrupted.Add(fi)
		u.corrupted.Add(ui)
	}
}

func (m *Medium) finish(t *transmission) {
	// Drop t from the active list.
	for i, u := range m.active {
		if u == t {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	// The frame is decoded at most once per delivery pass, through the
	// medium's reuse cache, and the decoded message shared by every
	// receiver. Handlers treat incoming packets as read-only and every
	// retained byte slice (payloads, bit vectors) is copied at the
	// storage boundary, so sharing and reuse are indistinguishable from
	// the per-receiver decode they replaced.
	var decoded packet.Packet
	for di, nd := 0, t.deliverLen(); di < nd; di++ {
		fi := t.deliverPos(di)
		r := t.full[fi]
		st := &m.nodes[r]
		if st.destroyed || !st.on || st.onSince > t.start {
			continue // radio off for part of the frame
		}
		if st.everTx && st.txEnd > t.start && st.txStart < t.end {
			continue // half-duplex: was transmitting during the frame
		}
		if t.corrupted.Contains(fi) {
			m.sink.FrameCollided(r, t.src, t.kind)
			continue
		}
		p := math.Pow(1-t.ber[fi], float64(t.bytes*8))
		if m.kernel.Rand().Float64() >= p {
			continue // channel bit errors
		}
		if m.linkFault != nil {
			if drop := m.linkFault(t.src, r); drop > 0 &&
				(drop >= 1 || m.kernel.Rand().Float64() < drop) {
				continue // injected link fault
			}
		}
		if decoded == nil {
			var err error
			decoded, err = m.dec.Decode(t.frame)
			if err != nil {
				// The frame was produced by Encode at transmit time;
				// failing to decode it is an invariant violation, not a
				// channel condition — surface it instead of silently
				// dropping every delivery.
				panic(fmt.Sprintf("radio: frame from node %v undecodable at finish: %v", t.src, err))
			}
		}
		m.delivered++
		m.sink.FrameReceived(r, t.src, t.kind, t.bytes)
		if st.handler != nil {
			st.handler(decoded, RxMeta{From: t.src, Bytes: t.bytes, At: m.kernel.Now()})
		}
	}
	m.recycle(t)
}

// Deliveries returns the cumulative count of successful frame
// deliveries to this medium's nodes. It is a pure function of
// simulation state (every term in the delivery decision is), which is
// what lets the engine's repartitioner use per-window delivery deltas
// as a load signal without breaking determinism.
func (m *Medium) Deliveries() uint64 { return m.delivered }

// linkBER computes the directed link's bit-error rate: a floor near
// the transmitter rising exponentially to BERCeil at the communication
// range, times a stable per-directed-link lognormal factor. It depends
// only on immutable run state, so sparse and dense construction orders
// produce identical values.
func (g *Geometry) linkBER(src, dst packet.NodeID, dist, txRange float64) float64 {
	frac := dist / txRange
	if frac > 1 {
		return 1
	}
	base := g.params.BERFloor * math.Exp(math.Log(g.params.BERCeil/g.params.BERFloor)*frac*frac)
	if g.params.AsymSigma > 0 {
		base *= linkNoise(g.seed, src, dst, g.params.AsymSigma)
	}
	if base > 1 {
		base = 1
	}
	return base
}

// linkNoise returns a deterministic lognormal factor for the directed
// link (src, dst), independent of event ordering.
func linkNoise(seed int64, src, dst packet.NodeID, sigma float64) float64 {
	h := splitmix64(uint64(seed) ^ uint64(src)<<32 ^ uint64(dst)<<16 ^ 0x9E3779B97F4A7C15)
	// Two uniforms via Box–Muller for one standard normal draw.
	u1 := float64(h>>11) / float64(1<<53)
	h2 := splitmix64(h)
	u2 := float64(h2>>11) / float64(1<<53)
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	f := math.Exp(sigma * z)
	// Clamp so no link becomes absurdly good or bad.
	if f < 0.25 {
		f = 0.25
	}
	if f > 4 {
		f = 4
	}
	return f
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
