// Package stats provides the small set of descriptive statistics the
// experiment reports need: means, spreads, percentiles, and simple
// linear regression (used to check Figure 10's completion-time
// linearity).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// MinMax returns the extremes of xs. It errors on an empty slice or
// any NaN element rather than returning an undefined value.
func MinMax(xs []float64) (minV, maxV float64, err error) {
	if len(xs) == 0 {
		return 0, 0, fmt.Errorf("stats: MinMax of empty slice")
	}
	minV, maxV = xs[0], xs[0]
	for _, x := range xs {
		if math.IsNaN(x) {
			return 0, 0, fmt.Errorf("stats: MinMax input contains NaN")
		}
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	return minV, maxV, nil
}

// Percentile returns the p-th percentile (0..100) of xs using
// nearest-rank. Defined results for every valid input: a singleton
// slice yields its only element for any p, p=0 yields the minimum,
// p=100 the maximum. Empty input, p outside [0, 100], or a NaN element
// return an error — never a NaN result and never a panic.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: Percentile of empty slice")
	}
	if math.IsNaN(p) || p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0, 100]", p)
	}
	for _, x := range xs {
		if math.IsNaN(x) {
			return 0, fmt.Errorf("stats: Percentile input contains NaN")
		}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0], nil
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	return sorted[rank-1], nil
}

// Line is a fitted y = Intercept + Slope*x with its goodness of fit.
type Line struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit computes an ordinary-least-squares fit of ys against xs.
// It returns an error when fewer than two points are given, the slices
// disagree in length, all xs are identical, or any coordinate is
// non-finite — so a successful fit never carries NaN or Inf.
func LinearFit(xs, ys []float64) (Line, error) {
	if len(xs) != len(ys) {
		return Line{}, fmt.Errorf("stats: %d xs vs %d ys", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return Line{}, fmt.Errorf("stats: need at least 2 points, got %d", len(xs))
	}
	for i := range xs {
		if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) || math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
			return Line{}, fmt.Errorf("stats: non-finite point (%v, %v) at index %d", xs[i], ys[i], i)
		}
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Line{}, fmt.Errorf("stats: degenerate fit (all xs equal)")
	}
	slope := sxy / sxx
	line := Line{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		line.R2 = 1 // ys constant and perfectly predicted
		return line, nil
	}
	ssRes := 0.0
	for i := range xs {
		r := ys[i] - (line.Intercept + line.Slope*xs[i])
		ssRes += r * r
	}
	line.R2 = 1 - ssRes/syy
	return line, nil
}
