package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !close(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Errorf("Mean = %v", Mean([]float64{1, 2, 3, 4}))
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev of singleton != 0")
	}
	if !close(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2) {
		t.Errorf("StdDev = %v", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Error("MinMax(nil) did not panic")
		}
	}()
	MinMax(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct{ p, want float64 }{
		{0, 1}, {10, 1}, {50, 5}, {90, 9}, {100, 10},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); got != tt.want {
			t.Errorf("P%v = %v, want %v", tt.p, got, tt.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Percentile(101) did not panic")
		}
	}()
	Percentile(xs, 101)
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Percentile of empty did not panic")
		}
	}()
	Percentile(nil, 50)
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 3 + 2x
	line, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !close(line.Slope, 2) || !close(line.Intercept, 3) || !close(line.R2, 1) {
		t.Fatalf("fit = %+v", line)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate xs accepted")
	}
}

func TestLinearFitConstantY(t *testing.T) {
	line, err := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !close(line.Slope, 0) || !close(line.Intercept, 4) || line.R2 != 1 {
		t.Fatalf("fit = %+v", line)
	}
}

// Property: for noisy-but-linear data, the fit recovers slope and
// intercept to within the noise scale, and R2 stays high.
func TestQuickLinearFitRecovery(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		slope := rng.Float64()*20 - 10
		intercept := rng.Float64()*20 - 10
		xs := make([]float64, 50)
		ys := make([]float64, 50)
		for i := range xs {
			xs[i] = float64(i)
			ys[i] = intercept + slope*xs[i] + (rng.Float64()-0.5)*0.01
		}
		line, err := LinearFit(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(line.Slope-slope) < 0.01 &&
			math.Abs(line.Intercept-intercept) < 0.1 &&
			(line.R2 > 0.999 || math.Abs(slope) < 0.01)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, rng.Intn(40)+1)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		lo, hi := MinMax(xs)
		prev := lo
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev || v < lo || v > hi {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
