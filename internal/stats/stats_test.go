package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !close(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Errorf("Mean = %v", Mean([]float64{1, 2, 3, 4}))
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev of singleton != 0")
	}
	if !close(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2) {
		t.Errorf("StdDev = %v", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
}

func TestMinMax(t *testing.T) {
	tests := []struct {
		name     string
		xs       []float64
		min, max float64
		wantErr  bool
	}{
		{name: "mixed", xs: []float64{3, -1, 7, 2}, min: -1, max: 7},
		{name: "singleton", xs: []float64{4}, min: 4, max: 4},
		{name: "empty", xs: nil, wantErr: true},
		{name: "nan", xs: []float64{1, math.NaN()}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			lo, hi, err := MinMax(tt.xs)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("MinMax(%v) succeeded, want error", tt.xs)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if lo != tt.min || hi != tt.max {
				t.Errorf("MinMax = %v, %v, want %v, %v", lo, hi, tt.min, tt.max)
			}
		})
	}
}

func TestPercentile(t *testing.T) {
	ten := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct {
		name    string
		xs      []float64
		p       float64
		want    float64
		wantErr bool
	}{
		{name: "p0 is min", xs: ten, p: 0, want: 1},
		{name: "p10", xs: ten, p: 10, want: 1},
		{name: "median", xs: ten, p: 50, want: 5},
		{name: "p90", xs: ten, p: 90, want: 9},
		{name: "p100 is max", xs: ten, p: 100, want: 10},
		{name: "singleton p0", xs: []float64{7}, p: 0, want: 7},
		{name: "singleton p50", xs: []float64{7}, p: 50, want: 7},
		{name: "singleton p100", xs: []float64{7}, p: 100, want: 7},
		{name: "unsorted input", xs: []float64{9, 1, 5}, p: 50, want: 5},
		{name: "empty", xs: nil, p: 50, wantErr: true},
		{name: "p below range", xs: ten, p: -1, wantErr: true},
		{name: "p above range", xs: ten, p: 101, wantErr: true},
		{name: "p NaN", xs: ten, p: math.NaN(), wantErr: true},
		{name: "NaN element", xs: []float64{1, math.NaN()}, p: 50, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Percentile(tt.xs, tt.p)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("Percentile(%v, %v) = %v, want error", tt.xs, tt.p, got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if math.IsNaN(got) {
				t.Fatalf("Percentile(%v, %v) = NaN", tt.xs, tt.p)
			}
			if got != tt.want {
				t.Errorf("P%v = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 3 + 2x
	line, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !close(line.Slope, 2) || !close(line.Intercept, 3) || !close(line.R2, 1) {
		t.Fatalf("fit = %+v", line)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	tests := []struct {
		name   string
		xs, ys []float64
	}{
		{name: "single point", xs: []float64{1}, ys: []float64{1}},
		{name: "empty", xs: nil, ys: nil},
		{name: "length mismatch", xs: []float64{1, 2}, ys: []float64{1}},
		{name: "all xs equal", xs: []float64{2, 2, 2}, ys: []float64{1, 2, 3}},
		{name: "NaN x", xs: []float64{1, math.NaN()}, ys: []float64{1, 2}},
		{name: "NaN y", xs: []float64{1, 2}, ys: []float64{math.NaN(), 2}},
		{name: "Inf x", xs: []float64{1, math.Inf(1)}, ys: []float64{1, 2}},
		{name: "Inf y", xs: []float64{1, 2}, ys: []float64{1, math.Inf(-1)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			line, err := LinearFit(tt.xs, tt.ys)
			if err == nil {
				t.Fatalf("LinearFit(%v, %v) = %+v, want error", tt.xs, tt.ys, line)
			}
			if math.IsNaN(line.Slope) || math.IsNaN(line.Intercept) || math.IsNaN(line.R2) {
				t.Fatalf("error path leaked NaN: %+v", line)
			}
		})
	}
}

func TestLinearFitConstantY(t *testing.T) {
	line, err := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !close(line.Slope, 0) || !close(line.Intercept, 4) || line.R2 != 1 {
		t.Fatalf("fit = %+v", line)
	}
}

// Property: for noisy-but-linear data, the fit recovers slope and
// intercept to within the noise scale, and R2 stays high.
func TestQuickLinearFitRecovery(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		slope := rng.Float64()*20 - 10
		intercept := rng.Float64()*20 - 10
		xs := make([]float64, 50)
		ys := make([]float64, 50)
		for i := range xs {
			xs[i] = float64(i)
			ys[i] = intercept + slope*xs[i] + (rng.Float64()-0.5)*0.01
		}
		line, err := LinearFit(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(line.Slope-slope) < 0.01 &&
			math.Abs(line.Intercept-intercept) < 0.1 &&
			(line.R2 > 0.999 || math.Abs(slope) < 0.01)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p, bounded by min/max, and
// never error or produce NaN on finite input.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, rng.Intn(40)+1)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		lo, hi, err := MinMax(xs)
		if err != nil {
			return false
		}
		prev := lo
		for p := 0.0; p <= 100; p += 5 {
			v, err := Percentile(xs, p)
			if err != nil || math.IsNaN(v) || v < prev || v < lo || v > hi {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
