package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mnp/internal/packet"
)

// renderDurationGrid draws a per-node duration value in grid layout,
// in seconds.
func renderDurationGrid(res *Result, title string, value func(id packet.NodeID) time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (seconds, %dx%d grid, base at top-left):\n", title, res.Layout.Rows(), res.Layout.Cols())
	for r := 0; r < res.Layout.Rows(); r++ {
		for c := 0; c < res.Layout.Cols(); c++ {
			id := packet.NodeID(r*res.Layout.Cols() + c)
			fmt.Fprintf(&b, "%6.0f", value(id).Seconds())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// renderIntGrid draws a per-node integer value in grid layout.
func renderIntGrid(res *Result, title string, value func(id packet.NodeID) int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%dx%d grid, base at top-left):\n", title, res.Layout.Rows(), res.Layout.Cols())
	for r := 0; r < res.Layout.Rows(); r++ {
		for c := 0; c < res.Layout.Cols(); c++ {
			id := packet.NodeID(r*res.Layout.Cols() + c)
			fmt.Fprintf(&b, "%6d", value(id))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// renderParentMap reports, per node, the parent it downloaded from —
// the arrows of Figures 5–7 — plus the order nodes became senders.
func renderParentMap(res *Result) string {
	var b strings.Builder
	b.WriteString("parent map (node <- parent):\n")
	for i := 0; i < res.Layout.N(); i++ {
		id := packet.NodeID(i)
		r, c, _ := res.Layout.GridCoord(id)
		parent, ok := res.Collector.Parent(id)
		if !ok {
			if id == 0 {
				fmt.Fprintf(&b, "  (%d,%d) base station\n", r, c)
			} else {
				fmt.Fprintf(&b, "  (%d,%d) no parent recorded\n", r, c)
			}
			continue
		}
		pr, pc, _ := res.Layout.GridCoord(parent)
		fmt.Fprintf(&b, "  (%d,%d) <- (%d,%d)\n", r, c, pr, pc)
	}
	order := res.Collector.SenderOrder()
	b.WriteString("sender order:")
	for i, id := range order {
		r, c, _ := res.Layout.GridCoord(id)
		fmt.Fprintf(&b, " %d:(%d,%d)", i+1, r, c)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "senders: %d of %d nodes; concurrent same-neighborhood data senders: %d\n",
		len(order), res.Layout.N(), res.Collector.ConcurrencyViolations())
	return b.String()
}

// renderRingSummary averages a per-node duration by hop distance from
// the base-station corner.
func renderRingSummary(res *Result, title string, value func(id packet.NodeID) time.Duration) string {
	sums := make(map[int]time.Duration)
	counts := make(map[int]int)
	for i := 0; i < res.Layout.N(); i++ {
		id := packet.NodeID(i)
		hop, err := res.Layout.HopDistanceFromCorner(id)
		if err != nil {
			continue
		}
		sums[hop] += value(id)
		counts[hop]++
	}
	rings := make([]int, 0, len(sums))
	for h := range sums {
		rings = append(rings, h)
	}
	sort.Ints(rings)
	var b strings.Builder
	fmt.Fprintf(&b, "%s by distance from base:\n", title)
	for _, h := range rings {
		mean := sums[h] / time.Duration(counts[h])
		fmt.Fprintf(&b, "  ring %2d (%2d nodes): %6.0f s\n", h, counts[h], mean.Seconds())
	}
	return b.String()
}

// runSummary is the header line every experiment report starts with.
func runSummary(res *Result) string {
	return fmt.Sprintf("%s: %s, %d nodes, program %d packets (%.1f KB), protocol %s, power %d\n"+
		"completed=%v completion=%s\n",
		res.Setup.Name, res.Layout.Name(), res.Layout.N(),
		res.Image.TotalPackets(), float64(res.Image.Size())/1024,
		res.Setup.Protocol, res.Setup.Power,
		res.Completed, fmtDur(res.CompletionTime))
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Second).String()
}
