package experiment

import (
	"strings"
	"testing"
	"time"

	"mnp/internal/image"
	"mnp/internal/invariant"
	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/topology"
)

func TestAllSpecsRegistered(t *testing.T) {
	specs := AllSpecs()
	want := []string{"T1", "F5", "F6", "F7", "F8", "F9", "F10", "F11", "F12", "F13", "EDEL", "A1", "A2", "A3", "A4", "A5", "A6"}
	if len(specs) != len(want) {
		t.Fatalf("got %d specs, want %d", len(specs), len(want))
	}
	seen := map[string]bool{}
	for i, s := range specs {
		if s.ID != want[i] {
			t.Errorf("spec %d = %s, want %s", i, s.ID, want[i])
		}
		if seen[s.ID] {
			t.Errorf("duplicate spec %s", s.ID)
		}
		seen[s.ID] = true
		if s.Title == "" || s.Run == nil {
			t.Errorf("spec %s incomplete", s.ID)
		}
	}
	if _, ok := ByID("f5"); !ok {
		t.Error("ByID not case-insensitive")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID found a nonexistent spec")
	}
}

func TestTable1Report(t *testing.T) {
	s, _ := ByID("T1")
	out, err := s.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Transmitting a packet", "20.000", "Idle listening", "83.333"} {
		if !strings.Contains(out, want) {
			t.Errorf("T1 report missing %q", want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Setup{Name: "bad", Rows: 0, Cols: 5}); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := Run(Setup{Name: "bad-power", Rows: 2, Cols: 2, Power: 9999}); err == nil {
		t.Error("unknown power accepted")
	}
}

func TestRunDefaults(t *testing.T) {
	s := Setup{Rows: 1, Cols: 2}.withDefaults()
	if s.Spacing != 10 || s.ImagePackets != image.DefaultSegmentPackets ||
		s.Protocol != ProtocolMNP || s.Power != radio.PowerSim || s.Limit != 12*time.Hour {
		t.Fatalf("defaults wrong: %+v", s)
	}
}

func TestProtocolStrings(t *testing.T) {
	for _, p := range []ProtocolKind{ProtocolMNP, ProtocolDeluge, ProtocolMOAP, ProtocolXNP, ProtocolKind(9)} {
		if p.String() == "" {
			t.Errorf("empty name for protocol %d", p)
		}
	}
}

func TestSmallRunCompletesAndVerifies(t *testing.T) {
	res, err := Run(Setup{Name: "small", Rows: 3, Cols: 3, ImagePackets: 64, Seed: 5, Limit: time.Hour,
		Invariants: &invariant.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("incomplete: %d/%d", res.Network.CompletedCount(), len(res.Network.Nodes))
	}
	if err := res.VerifyImages(); err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
	if res.CompletionTime <= 0 {
		t.Fatal("nonpositive completion time")
	}
}

func TestPowerChangesSenderCount(t *testing.T) {
	// The Figure 5 observation: lowering the power level makes more
	// nodes become senders, each with a smaller follower set.
	run := func(power int) int {
		res, err := Run(Setup{
			Name: "f5-shape", Rows: 3, Cols: 5, Spacing: 15,
			ImagePackets: testbedPackets, Power: power, Seed: 42,
			Limit: 4 * time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("power %d incomplete", power)
		}
		if v := res.Collector.ConcurrencyViolations(); v > 2 {
			t.Fatalf("power %d: %d concurrent same-neighborhood senders", power, v)
		}
		return len(res.Collector.SenderOrder())
	}
	high := run(radio.PowerIndoorHigh)
	low := run(radio.PowerIndoorLow)
	if low <= high {
		t.Fatalf("senders: low power %d, high power %d — want more senders at low power", low, high)
	}
}

func TestSendersFarFromBasePreferred(t *testing.T) {
	// The Figure 6 observation: nodes away from the base station are
	// more likely to become senders, having more uncovered neighbors.
	res, err := Run(Setup{
		Name: "f6-shape", Rows: 5, Cols: 5, Spacing: 15,
		ImagePackets: testbedPackets, Power: radio.PowerFull, Seed: 7,
		Limit: 4 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("incomplete")
	}
	order := res.Collector.SenderOrder()
	far := 0
	for _, id := range order {
		if id == 0 {
			continue
		}
		hop, err := res.Layout.HopDistanceFromCorner(id)
		if err != nil {
			t.Fatal(err)
		}
		if hop >= 2 {
			far++
		}
	}
	if len(order) > 1 && far == 0 {
		t.Fatalf("no far-from-base senders among %v", order)
	}
}

func TestDelugeComparisonShape(t *testing.T) {
	// Small-scale version of EDEL: Deluge's ART equals its completion
	// time; MNP's ART is lower than Deluge's ART.
	type outcome struct {
		completion, art time.Duration
	}
	run := func(p ProtocolKind) outcome {
		res, err := Run(Setup{
			Name: "edel-shape", Rows: 6, Cols: 6,
			ImagePackets: 2 * image.DefaultSegmentPackets,
			Protocol:     p, Seed: 11, Limit: 6 * time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("%v incomplete", p)
		}
		return outcome{
			completion: res.CompletionTime,
			art:        res.Collector.MeanActiveRadioTime(res.CompletionTime),
		}
	}
	mnp := run(ProtocolMNP)
	del := run(ProtocolDeluge)
	if diff := del.completion - del.art; diff < 0 || diff > del.completion/100 {
		t.Fatalf("Deluge ART %v != completion %v", del.art, del.completion)
	}
	if mnp.art >= del.art {
		t.Fatalf("MNP ART %v not below Deluge ART %v", mnp.art, del.art)
	}
}

func TestXNPRunOnGridLeavesFarNodesIncomplete(t *testing.T) {
	res, err := Run(Setup{
		Name: "xnp-limit", Rows: 1, Cols: 5, Spacing: 20,
		ImagePackets: 64, Protocol: ProtocolXNP, Seed: 3,
		Limit: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("XNP covered a multihop line — single-hop limitation lost")
	}
	if !res.Network.Node(1).Completed() {
		t.Fatal("in-range node incomplete")
	}
}

func TestMOAPRunCompletes(t *testing.T) {
	res, err := Run(Setup{
		Name: "moap-small", Rows: 2, Cols: 3,
		ImagePackets: 64, Protocol: ProtocolMOAP, Seed: 4,
		Limit: 6 * time.Hour, Invariants: &invariant.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("MOAP incomplete: %d/%d", res.Network.CompletedCount(), len(res.Network.Nodes))
	}
	if err := res.VerifyImages(); err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCustomLayoutOverridesGrid(t *testing.T) {
	layout, err := topology.ConnectedRandom(10, 50, 50, 27, 8, 25)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Setup{
		Name: "custom-layout", Layout: layout, ImagePackets: 64,
		Seed: 9, Limit: 4 * time.Hour, Invariants: &invariant.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Layout != layout {
		t.Fatal("layout override ignored")
	}
	if !res.Completed {
		t.Fatalf("random-layout run incomplete: %d/%d", res.Network.CompletedCount(), layout.N())
	}
	if err := res.VerifyImages(); err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBaseIDValidation(t *testing.T) {
	if _, err := Run(Setup{Name: "bad-base", Rows: 2, Cols: 2, BaseID: 99, ImagePackets: 8}); err == nil {
		t.Fatal("out-of-layout base accepted")
	}
}

func TestBatterySetupFlows(t *testing.T) {
	res, err := Run(Setup{
		Name: "battery", Rows: 1, Cols: 2, ImagePackets: 16, Seed: 6,
		Battery: func(id packet.NodeID) float64 {
			if id == 1 {
				return 0.5
			}
			return 1.0
		},
		Limit: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Network.Node(1).Battery(); got != 0.5 {
		t.Fatalf("battery = %v", got)
	}
}
