package experiment

import (
	"testing"
	"time"

	"mnp/internal/invariant"
	"mnp/internal/packet"
)

// gossipInvariants returns the checker config for gossip runs: like
// rlnc, the protocol has no sender-selection phase — any holder that
// hears a lagging beacon pushes, paced by density — so the MNP
// single-sender budget does not apply. Write-once EEPROM, in-order
// segments, segment-image integrity, and the beacon-soundness rule
// are enforced in full.
func gossipInvariants() *invariant.Config {
	return &invariant.Config{SenderOverlapBudget: 1 << 30}
}

// Clean-channel gossip dissemination on a small static grid: every
// node must converge to a byte-identical image under the full checker.
func TestGossipCompletesAndVerifies(t *testing.T) {
	res, err := Run(Setup{
		Name: "gossip-clean", Rows: 4, Cols: 4, ImagePackets: 128, Seed: 42,
		Protocol: ProtocolGossip, Invariants: gossipInvariants(), Limit: 6 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("incomplete: %d/%d", res.Network.CompletedCount(), res.Layout.N())
	}
	if err := res.VerifyImages(); err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Two runs of the same seeded setup are identical in completion time
// and traffic: gossip draws only from the seeded runtime RNG.
func TestGossipDeterministic(t *testing.T) {
	run := func() (time.Duration, int) {
		res, err := Run(Setup{
			Name: "gossip-det", Rows: 3, Cols: 3, ImagePackets: 64, Seed: 7,
			Protocol: ProtocolGossip, Limit: 6 * time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("incomplete")
		}
		tx := 0
		for id := 0; id < res.Layout.N(); id++ {
			tx += res.Collector.TxCount(packet.NodeID(id))
		}
		return res.CompletionTime, tx
	}
	t1, tx1 := run()
	t2, tx2 := run()
	if t1 != t2 || tx1 != tx2 {
		t.Fatalf("non-deterministic: (%v, %d tx) vs (%v, %d tx)", t1, tx1, t2, tx2)
	}
}
