package experiment

import (
	"fmt"
	"testing"
	"time"

	"mnp/internal/image"
	"mnp/internal/packet"
	"mnp/internal/radio"
)

// TestSoakInvariantsAcrossSeeds sweeps seeds, topologies and protocol
// variants, asserting the reproduction's core invariants on every run:
// full coverage, byte-identical images, EEPROM write-once, and (for
// MNP) no concurrent same-neighborhood data senders. Skipped in
// -short mode.
func TestSoakInvariantsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("soak sweep skipped in -short mode")
	}
	type variant struct {
		name  string
		setup func(seed int64) Setup
	}
	variants := []variant{
		{"mnp-grid", func(seed int64) Setup {
			return Setup{Rows: 5, Cols: 5, ImagePackets: 2 * image.DefaultSegmentPackets, Seed: seed}
		}},
		{"mnp-line", func(seed int64) Setup {
			return Setup{Rows: 1, Cols: 7, Spacing: 18, ImagePackets: image.DefaultSegmentPackets, Seed: seed}
		}},
		{"mnp-lowpower", func(seed int64) Setup {
			return Setup{Rows: 3, Cols: 4, Spacing: 15, ImagePackets: 100, Power: radio.PowerIndoorLow, Seed: seed}
		}},
		{"deluge-grid", func(seed int64) Setup {
			return Setup{Rows: 4, Cols: 4, ImagePackets: 96, Protocol: ProtocolDeluge, Seed: seed}
		}},
		{"moap-grid", func(seed int64) Setup {
			return Setup{Rows: 3, Cols: 3, ImagePackets: 64, Protocol: ProtocolMOAP, Seed: seed}
		}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for seed := int64(100); seed < 105; seed++ {
				s := v.setup(seed)
				s.Name = fmt.Sprintf("soak-%s-%d", v.name, seed)
				s.Limit = 12 * time.Hour
				res, err := Run(s)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !res.Completed {
					t.Fatalf("seed %d: incomplete (%d/%d)", seed,
						res.Network.CompletedCount(), res.Layout.N())
				}
				if err := res.VerifyImages(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if s.Protocol == 0 || s.Protocol == ProtocolMNP {
					if viol := res.Collector.ConcurrencyViolations(); viol > 2 {
						t.Fatalf("seed %d: %d concurrent same-neighborhood senders", seed, viol)
					}
					// Every node must have seen an advertisement before
					// completing (sanity of the metrics pipeline).
					for i := 0; i < res.Layout.N(); i++ {
						id := packet.NodeID(i)
						if id == s.BaseID {
							continue
						}
						if _, ok := res.Collector.FirstAdvertisementHeard(id); !ok {
							t.Fatalf("seed %d: node %v completed without hearing an advertisement", seed, id)
						}
					}
				}
			}
		})
	}
}
