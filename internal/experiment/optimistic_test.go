package experiment

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"mnp/internal/faults"
	"mnp/internal/invariant"
)

// TestOptimisticValidate covers the optimism knobs: the speculation
// depth must be non-negative and at least 2 (1 is conservative
// lockstep), it requires optimistic mode, and optimistic mode requires
// the tiled engine (the sequential path has no windows to skip).
func TestOptimisticValidate(t *testing.T) {
	valid := Setup{Name: "v", Rows: 4, Cols: 4, Spacing: 10, Shards: 2, TileRows: 2, TileCols: 2}
	cases := []struct {
		name    string
		mutate  func(*Setup)
		wantErr string
	}{
		{"optimistic-ok", func(s *Setup) { s.Optimistic = true }, ""},
		{"lookahead-ok", func(s *Setup) { s.Optimistic = true; s.Lookahead = 4 }, ""},
		{"negative-lookahead", func(s *Setup) { s.Optimistic = true; s.Lookahead = -3 }, "negative"},
		{"lookahead-one", func(s *Setup) { s.Optimistic = true; s.Lookahead = 1 }, "conservative lockstep"},
		{"lookahead-without-optimistic", func(s *Setup) { s.Lookahead = 4 }, "optimistic execution is off"},
		{"optimistic-sequential", func(s *Setup) {
			s.Optimistic = true
			s.Shards, s.TileRows, s.TileCols = 1, 0, 0
		}, "requires the tiled engine"},
		{"optimistic-auto-grid", func(s *Setup) {
			s.Optimistic = true
			s.Shards, s.TileRows, s.TileCols = 1, 0, 0
			s.TileAuto = true
		}, ""},
		{"optimistic-strips", func(s *Setup) {
			s.Optimistic = true
			s.TileRows, s.TileCols = 0, 0
		}, ""},
		{"optimistic-with-repartition", func(s *Setup) {
			s.Optimistic = true
			s.Repartition = true
			s.RepartitionEvery, s.RepartitionThreshold = 8, 1.5
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := valid
			tc.mutate(&s)
			err := s.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestOptimisticEquivalence is the headline property of optimistic
// execution: for a fixed (seed, tile grid) the digest is byte-identical
// with speculation on and off, across lookahead depths and worker
// counts — and the speculation must actually engage (rounds > 0) and
// roll back somewhere in the matrix, or the equivalence is vacuous.
func TestOptimisticEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation matrix in -short mode")
	}
	var totalRollbacks, totalCommitted int64
	for _, grid := range []struct{ rows, cols int }{{2, 2}, {4, 4}} {
		for _, seed := range []int64{42, 7} {
			base := Setup{
				Name: fmt.Sprintf("opt-base-%dx%d-s%d", grid.rows, grid.cols, seed),
				Rows: 6, Cols: 6, ImagePackets: 32, Seed: seed,
				Limit:    3 * time.Hour,
				TileRows: grid.rows, TileCols: grid.cols,
				Shards: 4, Workers: 1,
			}
			want, _ := tiledDigest(t, base)
			for _, la := range []int{2, 8} {
				for _, workers := range []int{1, 4} {
					s := base
					s.Name = fmt.Sprintf("opt-%dx%d-s%d-la%d-w%d", grid.rows, grid.cols, seed, la, workers)
					s.Optimistic = true
					s.Lookahead = la
					s.Workers = workers
					dig, res := tiledDigest(t, s)
					if dig != want {
						t.Fatalf("grid %dx%d seed %d lookahead %d workers %d: digest %s, want %s — speculation leaked into results",
							grid.rows, grid.cols, seed, la, workers, dig, want)
					}
					st := res.Engine.Stats()
					if st.SpecRounds == 0 {
						t.Fatalf("grid %dx%d seed %d lookahead %d: optimistic run never speculated", grid.rows, grid.cols, seed, la)
					}
					if st.SpecCommitted+st.SpecRolledBack != st.SpecWindows {
						t.Fatalf("speculation ledger out of balance: %d committed + %d rolled back != %d speculated",
							st.SpecCommitted, st.SpecRolledBack, st.SpecWindows)
					}
					totalRollbacks += st.Rollbacks
					totalCommitted += st.SpecCommitted
				}
			}
		}
	}
	if totalRollbacks == 0 {
		t.Fatal("no cell of the matrix rolled back a single window; the ghost check never fired")
	}
	if totalCommitted == 0 {
		t.Fatal("no cell of the matrix committed a speculated window")
	}
	t.Logf("matrix clean; %d windows committed speculatively, %d rollbacks", totalCommitted, totalRollbacks)
}

// TestOptimisticChaosEquivalence drives speculation through the chaos
// stack — node deaths, reboots, a partition window, flaky EEPROM — with
// the invariant checker attached. Fault RNG draws, journaled EEPROM
// mutations, and restart bookkeeping must all rewind exactly.
func TestOptimisticChaosEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos simulation in -short mode")
	}
	mk := func(optimistic bool) Setup {
		name := "opt-chaos-off"
		if optimistic {
			name = "opt-chaos-on"
		}
		return Setup{
			Name: name,
			Rows: 6, Cols: 6, ImagePackets: 32, Seed: 42,
			Limit:    4 * time.Hour,
			TileRows: 2, TileCols: 2,
			Shards: 4, Workers: 2,
			Faults: &faults.Plan{Events: []faults.Event{
				faults.Crash(29, 20*time.Minute),
				faults.CrashReboot(7, 10*time.Minute, 8*time.Minute),
				faults.EEPROMErrors(11, 0.2, 5*time.Minute, 45*time.Minute),
			}},
			Invariants: &invariant.Config{},
			Optimistic: optimistic,
		}
	}
	want, _ := tiledDigest(t, mk(false))
	got, res := tiledDigest(t, mk(true))
	if got != want {
		t.Fatalf("chaos digest with speculation %s, want %s", got, want)
	}
	if st := res.Engine.Stats(); st.SpecRounds == 0 {
		t.Fatal("chaos run never speculated")
	}
}

// TestOptimisticCounters checks the speculation and link-cache counters
// surface through the run's telemetry registry (satellite of the
// optimistic-engine PR: expvar/Prometheus export rides Counters).
func TestOptimisticCounters(t *testing.T) {
	s := Setup{
		Name: "opt-counters",
		Rows: 4, Cols: 4, ImagePackets: 8, Seed: 5,
		Limit:    2 * time.Hour,
		TileRows: 2, TileCols: 2,
		Shards: 2, Workers: 1,
		Optimistic: true, Lookahead: 4,
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters()
	st := res.Engine.Stats()
	for name, want := range map[string]int64{
		"engine_spec_rounds_total":         st.SpecRounds,
		"engine_windows_speculated_total":  st.SpecWindows,
		"engine_windows_committed_total":   st.SpecCommitted,
		"engine_windows_rolled_back_total": st.SpecRolledBack,
		"engine_rollbacks_total":           st.Rollbacks,
	} {
		if got := c.Get(name); got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	if st.SpecRounds == 0 {
		t.Error("run never speculated")
	}
	hits := c.Get("radio_link_cache_hits_total")
	misses := c.Get("radio_link_cache_misses_total")
	if hits+misses == 0 {
		t.Error("link-cache counters absent: no lookups recorded across shard mediums")
	}
	if _, ok := c.Snapshot()["radio_link_cache_invalidations_total"]; !ok {
		t.Error("invalidation counter missing")
	}
}

// TestOptimisticDefaults checks the package-default plumbing mnpexp's
// flags use.
func TestOptimisticDefaults(t *testing.T) {
	defer SetDefaultOptimistic(false, 0)
	SetDefaultOptimistic(true, 4)
	s := Setup{Name: "d", Rows: 4, Cols: 4, ImagePackets: 8, Seed: 1, TileRows: 2, TileCols: 2, Shards: 2}
	s = s.withDefaults()
	if !s.Optimistic || s.Lookahead != 4 {
		t.Fatalf("withDefaults: optimistic=%v lookahead=%d, want true/4", s.Optimistic, s.Lookahead)
	}
	SetDefaultOptimistic(false, 0)
	s2 := Setup{Name: "d2", Rows: 4, Cols: 4, ImagePackets: 8, Seed: 1}.withDefaults()
	if s2.Optimistic || s2.Lookahead != 0 {
		t.Fatalf("withDefaults after reset: optimistic=%v lookahead=%d, want false/0", s2.Optimistic, s2.Lookahead)
	}
}
