package experiment

import (
	"testing"
	"time"

	"mnp/internal/faults"
	"mnp/internal/invariant"
	"mnp/internal/packet"
)

// The chaos suite runs dissemination under declarative fault plans with
// the protocol-invariant checker attached. Every scenario demands the
// paper's reliability requirement from the survivors — byte-identical
// images — and that no invariant (write-once EEPROM, in-order
// segments, advertisement soundness, sleep discipline, sender
// exclusivity) broke along the way.

// runChaos executes a faulted setup and applies the common acceptance
// checks: survivors complete, images verify, invariants held.
func runChaos(t *testing.T, s Setup) *Result {
	t.Helper()
	if s.Invariants == nil {
		s.Invariants = &invariant.Config{}
	}
	if s.Limit == 0 {
		s.Limit = 6 * time.Hour
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("%s: survivors incomplete: %d/%d", s.Name,
			res.Network.CompletedCount(), res.Layout.N())
	}
	if err := res.VerifyImages(); err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	if err := res.VerifyInvariants(); err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	return res
}

// TestChaosCrashDuringForward kills an interior node — positioned to be
// a forwarder between the base's corner and the far side — while the
// wave is mid-flight. The grid stays connected; everyone else must
// still converge.
func TestChaosCrashDuringForward(t *testing.T) {
	res := runChaos(t, Setup{
		Name: "chaos-crash-forward", Rows: 5, Cols: 5, ImagePackets: 128, Seed: 42,
		Faults: &faults.Plan{Events: []faults.Event{
			faults.Crash(6, 40*time.Second),
			faults.Crash(12, 70*time.Second),
		}},
	})
	dead := 0
	for _, n := range res.Network.Nodes {
		if n.Dead() {
			dead++
		}
	}
	if dead != 2 {
		t.Fatalf("dead = %d, want the 2 crashed forwarders", dead)
	}
}

// TestChaosRebootMidSegment power-cycles a node while it is receiving:
// RAM state (protocol position, timers) is lost, EEPROM survives. The
// node must recover from its flash contents and finish without ever
// rewriting a slot — the exact property MNP's reboot path promises.
func TestChaosRebootMidSegment(t *testing.T) {
	const victim = packet.NodeID(15)
	res, err := Build(Setup{
		Name: "chaos-reboot", Rows: 4, Cols: 4, ImagePackets: 128, Seed: 42,
		Faults: &faults.Plan{Events: []faults.Event{
			faults.CrashReboot(victim, 30*time.Second, 10*time.Second),
		}},
		Invariants: &invariant.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Probe the victim's flash an instant before the power blip to
	// prove the reboot lands mid-segment, not after completion.
	slotsAtCrash := -1
	res.Kernel.MustSchedule(30*time.Second-time.Millisecond, func() {
		slotsAtCrash = res.Network.Node(victim).EEPROM().Slots()
	})
	res.Network.Start()
	if !res.Network.RunUntilComplete(6 * time.Hour) {
		t.Fatalf("incomplete: %d/%d", res.Network.CompletedCount(), res.Layout.N())
	}
	if slotsAtCrash <= 0 || slotsAtCrash >= res.Setup.ImagePackets {
		t.Fatalf("victim held %d/%d packets at crash time; reboot was not mid-segment",
			slotsAtCrash, res.Setup.ImagePackets)
	}
	n := res.Network.Node(victim)
	if n.Dead() || !n.Completed() {
		t.Fatalf("rebooted node dead=%v completed=%v", n.Dead(), n.Completed())
	}
	if w := n.EEPROM().MaxWriteCount(); w != 1 {
		t.Fatalf("rebooted node max EEPROM writes = %d, want 1", w)
	}
	if err := res.VerifyImages(); err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosPartitionThenHeal cuts the far half of the grid off during
// the early wave, then heals the partition; dissemination must resume
// and cover the once-isolated half.
func TestChaosPartitionThenHeal(t *testing.T) {
	cut := []packet.NodeID{8, 9, 10, 11, 12, 13, 14, 15}
	res := runChaos(t, Setup{
		Name: "chaos-partition", Rows: 4, Cols: 4, ImagePackets: 128, Seed: 42,
		Faults: &faults.Plan{Events: []faults.Event{
			faults.Partition(cut, 30*time.Second, 90*time.Second),
		}},
	})
	if res.CompletionTime <= 90*time.Second {
		t.Fatalf("completed at %v, inside the partition window", res.CompletionTime)
	}
}

// TestChaosFlakyEEPROM makes every non-base flash fail 5% of page
// programs. The protocol's retry path (the missing-packet bitmap plus
// the download watchdog) must absorb the faults without ever
// double-writing a slot.
func TestChaosFlakyEEPROM(t *testing.T) {
	res := runChaos(t, Setup{
		Name: "chaos-eeprom", Rows: 4, Cols: 4, ImagePackets: 128, Seed: 42,
		Faults: &faults.Plan{Events: []faults.Event{
			faults.EEPROMErrors(faults.Wildcard, 0.05, 0, 0),
		}},
	})
	injected := 0
	for _, n := range res.Network.Nodes {
		injected += n.EEPROM().FaultCount()
		if w := n.EEPROM().MaxWriteCount(); w > 1 {
			t.Fatalf("node %v rewrote EEPROM under write faults (max %d)", n.ID(), w)
		}
	}
	if injected == 0 {
		t.Fatal("no EEPROM faults were injected")
	}
	t.Logf("absorbed %d injected EEPROM write faults", injected)
}

// TestChaosCombined layers a reboot, a degraded link, and windowed
// EEPROM faults in one run — the kitchen-sink scenario.
func TestChaosCombined(t *testing.T) {
	runChaos(t, Setup{
		Name: "chaos-combined", Rows: 4, Cols: 4, ImagePackets: 128, Seed: 7,
		Faults: &faults.Plan{Events: []faults.Event{
			faults.CrashReboot(9, 45*time.Second, 15*time.Second),
			faults.DegradeLink(1, 2, true, 20*time.Second, 120*time.Second, 0.6),
			faults.EEPROMErrors(6, 0.1, 0, 2*time.Minute),
		}},
	})
}

// TestChaosSpecRoundTrip drives the same reboot scenario through the
// CLI spec grammar, confirming the string form is equivalent to the
// programmatic plan.
func TestChaosSpecRoundTrip(t *testing.T) {
	plan, err := faults.ParseSpec("reboot:5@30s+10s")
	if err != nil {
		t.Fatal(err)
	}
	res := runChaos(t, Setup{
		Name: "chaos-spec", Rows: 4, Cols: 4, ImagePackets: 128, Seed: 42,
		Faults: plan,
	})
	if n := res.Network.Node(5); !n.Completed() {
		t.Fatal("rebooted node incomplete")
	}
}
