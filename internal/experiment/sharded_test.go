package experiment

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"mnp/internal/faults"
	"mnp/internal/invariant"
	"mnp/internal/packet"
)

// TestSetupValidate exercises the deployment validation Build applies
// before constructing anything: malformed grids, shard counts outside
// [1, n], and negative sizes must all fail with descriptive errors.
func TestSetupValidate(t *testing.T) {
	valid := Setup{Name: "v", Rows: 2, Cols: 2, Spacing: 10, Shards: 1}
	cases := []struct {
		name    string
		mutate  func(*Setup)
		wantErr string // substring; empty means valid
	}{
		{"valid", func(s *Setup) {}, ""},
		{"zero-rows", func(s *Setup) { s.Rows = 0 }, "rows and cols"},
		{"negative-cols", func(s *Setup) { s.Cols = -3 }, "rows and cols"},
		{"zero-spacing", func(s *Setup) { s.Spacing = 0 }, "spacing"},
		{"negative-spacing", func(s *Setup) { s.Spacing = -1 }, "spacing"},
		{"zero-shards", func(s *Setup) { s.Shards = 0 }, "at least 1"},
		{"negative-shards", func(s *Setup) { s.Shards = -2 }, "at least 1"},
		{"too-many-shards", func(s *Setup) { s.Shards = 5 }, "exceed"},
		{"negative-image", func(s *Setup) { s.ImagePackets = -1 }, "negative"},
		{"negative-limit", func(s *Setup) { s.Limit = -time.Second }, "negative"},
		{"unknown-protocol", func(s *Setup) { s.Protocol = ProtocolKind(42) }, "unknown protocol kind 42"},
		{"negative-protocol", func(s *Setup) { s.Protocol = ProtocolKind(-1) }, "unknown protocol kind"},
		{"known-protocol", func(s *Setup) { s.Protocol = ProtocolDeluge }, ""},
		{"bad-option-value", func(s *Setup) {
			s.Protocol = ProtocolMNP
			s.ProtocolOptions = map[string]string{"advertise_count": "many"}
		}, "advertise_count"},
		{"unknown-option-key", func(s *Setup) {
			s.ProtocolOptions = map[string]string{"warp_speed": "9"}
		}, "unknown option warp_speed"},
		{"good-options", func(s *Setup) {
			s.Protocol = ProtocolXNP
			s.ProtocolOptions = map[string]string{"query_interval": "3s"}
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := valid
			tc.mutate(&s)
			err := s.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
	// Build surfaces the same errors (after defaults, so zero spacing is
	// filled in, but a bad shard count is not).
	if _, err := Build(Setup{Name: "b", Rows: 2, Cols: 2, Shards: 9}); err == nil {
		t.Fatal("Build accepted 9 shards on a 4-node grid")
	}
}

// TestShardedEquivalence is the cross-strategy property test: for
// several seeds and topologies, the sharded engine must reach the same
// protocol verdicts as the sequential kernel — every node completes,
// images verify byte-for-byte, no invariant breaks — with aggregate
// traffic and completion time in the same regime. Bitwise equality is
// not expected (per-shard RNG streams and barrier-delayed cross-shard
// carrier sense are documented approximations); verdict equality is.
func TestShardedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("12 full simulations in -short mode")
	}
	topos := []struct {
		name       string
		rows, cols int
	}{
		{"grid-4x4", 4, 4},
		{"grid-8x8", 8, 8},
	}
	for _, topo := range topos {
		for _, seed := range []int64{42, 7, 99} {
			base := Setup{
				Name: "equiv", Rows: topo.rows, Cols: topo.cols,
				ImagePackets: 64, Seed: seed, Limit: 4 * time.Hour,
				Invariants: &invariant.Config{},
			}
			seq := base
			seq.Shards = 1
			sh := base
			sh.Shards, sh.Workers = 4, 1
			rs, err := Run(seq)
			if err != nil {
				t.Fatalf("%s seed %d sequential: %v", topo.name, seed, err)
			}
			rp, err := Run(sh)
			if err != nil {
				t.Fatalf("%s seed %d sharded: %v", topo.name, seed, err)
			}
			if rs.Completed != rp.Completed {
				t.Fatalf("%s seed %d: completed %v sequential vs %v sharded",
					topo.name, seed, rs.Completed, rp.Completed)
			}
			if err := rp.VerifyImages(); err != nil {
				t.Fatalf("%s seed %d sharded images: %v", topo.name, seed, err)
			}
			if errS, errP := rs.VerifyInvariants(), rp.VerifyInvariants(); (errS == nil) != (errP == nil) {
				t.Fatalf("%s seed %d: invariant verdicts diverge: sequential %v, sharded %v",
					topo.name, seed, errS, errP)
			}
			ss := rs.Collector.Snapshot(rs.CompletionTime)
			sp := rp.Collector.Snapshot(rp.CompletionTime)
			if ss.Completed != sp.Completed {
				t.Fatalf("%s seed %d: %d nodes completed sequential vs %d sharded",
					topo.name, seed, ss.Completed, sp.Completed)
			}
			// Traffic totals are fat-tailed — a retransmission storm can
			// triple one run's tx without changing the outcome (sequential
			// seeds differ from each other by ~2x on this grid) — so the
			// regime bound is deliberately loose; the sharp checks are the
			// verdicts above and the protocol floors below.
			within := func(metric string, factor, a, b int) {
				if a > factor*b || b > factor*a {
					t.Fatalf("%s seed %d: %s diverged beyond %dx: sequential %d, sharded %d",
						topo.name, seed, metric, factor, a, b)
				}
			}
			within("tx", 4, ss.Tx, sp.Tx)
			within("rx", 4, ss.Rx, sp.Rx)
			within("sender elections", 2, ss.SenderEvents, sp.SenderEvents)
			if a, b := rs.CompletionTime, rp.CompletionTime; a > 2*b || b > 2*a {
				t.Fatalf("%s seed %d: completion diverged beyond 2x: %v vs %v",
					topo.name, seed, a, b)
			}
			// Every non-base node must have heard the whole image over the
			// air in both modes; missing cross-shard deliveries would show
			// up here before anywhere else.
			floor := (rs.Layout.N() - 1) * 64
			if got := sp.RxByClass[packet.ClassData]; got < floor {
				t.Fatalf("%s seed %d: sharded data rx %d below the %d delivery floor",
					topo.name, seed, got, floor)
			}
			t.Logf("%s seed %d: sequential %v tx=%d, sharded %v tx=%d",
				topo.name, seed, rs.CompletionTime, ss.Tx, rp.CompletionTime, sp.Tx)
		}
	}
}

// TestShardedDeterminism pins the sharded engine's reproducibility: the
// same (seed, shards) pair must give identical results run to run, and
// the worker count — inline vs one goroutine per shard — must not leak
// into simulation state.
func TestShardedDeterminism(t *testing.T) {
	run := func(workers int) (time.Duration, interface{}) {
		res, err := Run(Setup{
			Name: "det", Rows: 6, Cols: 6, ImagePackets: 64, Seed: 42,
			Shards: 3, Workers: workers, Limit: 4 * time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("incomplete")
		}
		return res.CompletionTime, res.Collector.Snapshot(res.CompletionTime)
	}
	t1, s1 := run(1)
	t2, s2 := run(1)
	if t1 != t2 || !reflect.DeepEqual(s1, s2) {
		t.Fatalf("two identical sharded runs diverged: %v vs %v", t1, t2)
	}
	t3, s3 := run(4)
	if t1 != t3 || !reflect.DeepEqual(s1, s3) {
		t.Fatalf("worker count changed the simulation: inline %v, parallel %v", t1, t3)
	}
}

// TestShardedChaosPartitionHeal reruns the partition+heal chaos
// scenario through the sharded engine with the invariant observer
// attached: the radio-level fault window must quantize onto lockstep
// barriers without breaking recovery, and the replayed observation
// stream must satisfy the checker exactly as the sequential one does.
// The cut starts at 10s — before any far-half node holds a complete
// segment in this timeline — so the isolated half cannot finish until
// the heal, and completion after 90s proves the partition actually
// blocked cross-shard ghost frames.
func TestShardedChaosPartitionHeal(t *testing.T) {
	cut := []packet.NodeID{8, 9, 10, 11, 12, 13, 14, 15}
	res := runChaos(t, Setup{
		Name: "chaos-partition-sharded", Rows: 4, Cols: 4, ImagePackets: 128, Seed: 42,
		Shards: 4, Workers: 1,
		Faults: &faults.Plan{Events: []faults.Event{
			faults.Partition(cut, 10*time.Second, 90*time.Second),
		}},
	})
	if res.Engine == nil {
		t.Fatal("run did not go through the sharded engine")
	}
	if res.CompletionTime <= 90*time.Second {
		t.Fatalf("completed at %v, inside the partition window", res.CompletionTime)
	}
}
