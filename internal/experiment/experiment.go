// Package experiment assembles full simulated deployments — topology,
// channel, protocol fleet, metrics — and reproduces the paper's
// evaluation artifacts: each table and figure has a Spec that runs the
// corresponding workload and renders the same rows or series the paper
// reports.
package experiment

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"time"

	// The protocol packages register themselves with protoreg from
	// init; the experiment layer builds them only through the registry.
	// core is imported by name for the typed MNP tuning hook.
	_ "mnp/internal/deluge"
	_ "mnp/internal/gossip"
	_ "mnp/internal/moap"
	_ "mnp/internal/rlnc"
	_ "mnp/internal/xnp"

	"mnp/internal/core"
	"mnp/internal/engine"
	"mnp/internal/faults"
	"mnp/internal/image"
	"mnp/internal/invariant"
	"mnp/internal/metrics"
	"mnp/internal/node"
	"mnp/internal/packet"
	"mnp/internal/protoreg"
	"mnp/internal/radio"
	"mnp/internal/sim"
	"mnp/internal/telemetry"
	"mnp/internal/topology"
)

// ProtocolKind selects the dissemination protocol under test.
type ProtocolKind int

// Protocols available to experiments.
const (
	ProtocolMNP ProtocolKind = iota + 1
	ProtocolDeluge
	ProtocolMOAP
	ProtocolXNP
	ProtocolRLNC
	ProtocolGossip
)

// String returns the protocol name.
func (p ProtocolKind) String() string {
	switch p {
	case ProtocolMNP:
		return "MNP"
	case ProtocolDeluge:
		return "Deluge"
	case ProtocolMOAP:
		return "MOAP"
	case ProtocolXNP:
		return "XNP"
	case ProtocolRLNC:
		return "RLNC"
	case ProtocolGossip:
		return "Gossip"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// RegistryName maps the kind to its protoreg registration ("mnp",
// "deluge", "moap", "xnp"); unknown kinds return "".
func (p ProtocolKind) RegistryName() string {
	switch p {
	case ProtocolMNP:
		return "mnp"
	case ProtocolDeluge:
		return "deluge"
	case ProtocolMOAP:
		return "moap"
	case ProtocolXNP:
		return "xnp"
	case ProtocolRLNC:
		return "rlnc"
	case ProtocolGossip:
		return "gossip"
	default:
		return ""
	}
}

// ProtocolByName resolves a registry name (case-insensitive) to its
// kind — the inverse of RegistryName, used by scenario files and CLIs.
func ProtocolByName(name string) (ProtocolKind, bool) {
	for _, p := range []ProtocolKind{ProtocolMNP, ProtocolDeluge, ProtocolMOAP, ProtocolXNP, ProtocolRLNC, ProtocolGossip} {
		if strings.EqualFold(name, p.RegistryName()) {
			return p, true
		}
	}
	return 0, false
}

// Setup describes one simulated deployment.
type Setup struct {
	// Name labels reports.
	Name string
	// Rows and Cols define the grid; Spacing is in feet.
	Rows, Cols int
	Spacing    float64
	// Layout, when non-nil, overrides the grid entirely (e.g. a random
	// placement from topology.ConnectedRandom).
	Layout *topology.Layout
	// ImagePackets is the program size in 22-byte packets (e.g. 100
	// for the testbed experiments, 640 for 5 segments). The image is
	// segmented into 128-packet segments.
	ImagePackets int
	// ImageData, when non-nil, disseminates exactly these bytes
	// instead of a random image of ImagePackets packets (e.g. an
	// imgdiff patch).
	ImageData []byte
	// Protocol selects the dissemination protocol (default MNP).
	Protocol ProtocolKind
	// ProtocolOptions are declarative, protocol-specific knobs applied
	// to every node after the package defaults (keys are defined by
	// each protocol's register.go — e.g. "no_sleep", "data_interval"
	// for MNP). They are the serializable face of the tuning closures:
	// scenario files compile into this map. Nil keeps the defaults,
	// byte-identical to earlier releases.
	ProtocolOptions map[string]string
	// BaseID places the base station (default node 0, a grid corner).
	// The paper's scaling argument puts it at the center of a 4x
	// larger network.
	BaseID packet.NodeID
	// Power is the TinyOS transmit power level (default PowerSim).
	Power int
	// Seed drives every random choice in the run.
	Seed int64
	// Radio overrides the channel model when non-nil.
	Radio *radio.Params
	// MNP tweaks the core protocol configuration (MNP runs only).
	MNP func(id packet.NodeID, c *core.Config)
	// Battery assigns initial battery fractions (default 1.0).
	Battery func(id packet.NodeID) float64
	// Limit bounds the simulated time (default 12 h).
	Limit time.Duration
	// Observer, when non-nil, receives node observations alongside the
	// metrics collector (e.g. a trace.Log).
	Observer node.Observer
	// Faults, when non-nil, is a fault plan scheduled onto the kernel
	// before the run starts (crashes, reboots, partitions, EEPROM
	// errors). Plans are seeded from Seed and fully reproducible.
	Faults *faults.Plan
	// Mobility, when non-nil, builds the run's mobility model over the
	// final layout (after grid construction); nil keeps the deployment
	// static and every existing golden hash byte-identical. The factory
	// receives the run seed so scenario files can defer seeding. Moves
	// are applied at MobilityEvery boundaries — on the sharded path that
	// means engine barriers, with workers parked, so tiled results stay
	// a pure function of (Seed, tile grid).
	Mobility func(l *topology.Layout, seed int64) (topology.Mobility, error)
	// MobilityEvery is the position-update quantum (default 10s when
	// Mobility is set). Finer steps cost more cache invalidations;
	// coarser ones make motion visibly stepwise to the protocols.
	MobilityEvery time.Duration
	// Invariants, when non-nil, attaches an online protocol-invariant
	// checker to the run. Build fills the clock, neighborhood, and
	// airtime hooks; set fields like AllowRadioOnInSleep or
	// SenderOverlapBudget here. Use &invariant.Config{} for defaults.
	Invariants *invariant.Config
	// Telemetry, when non-nil, streams the run as NDJSON: a meta record,
	// the fault plan, every observation, every invariant violation, and
	// a final counters summary. Nil (the default) leaves the run
	// byte-identical to an uninstrumented one.
	Telemetry *telemetry.Recorder
	// Shards splits the deployment into that many spatially contiguous
	// shards run in conservative lockstep by internal/engine. 0 (the
	// default) takes the package default (SetDefaultShards); 1 runs the
	// classic single-kernel path, byte-identical to earlier releases.
	// Sharded runs are deterministic functions of (Seed, Shards) but
	// not bitwise identical to sequential ones — see DESIGN.md §4f.
	Shards int
	// Workers bounds the sharded engine's parallelism: <= 1 advances
	// shards inline on the calling goroutine (identical results, no
	// goroutines), anything larger runs one goroutine per executor, and
	// 0 picks a mode from the host CPU count. Ignored on the sequential
	// path.
	Workers int
	// TileRows and TileCols partition the deployment into a 2D tile
	// grid run by the lockstep engine, with Shards logical executors
	// (default 1) advancing the tiles. Results are a pure function of
	// (Seed, tile grid) — independent of Shards, Workers, and the
	// repartitioner. Both zero (the default) keeps the legacy layout:
	// Shards contiguous strips, one per executor. A 1×1 grid runs the
	// classic sequential path, byte-identical to earlier releases.
	TileRows, TileCols int
	// TileAuto sizes the tile grid automatically from the deployment
	// extent, the radio range, and the worker count (engine.AutoGrid).
	// Mutually exclusive with TileRows/TileCols.
	TileAuto bool
	// Repartition enables the engine's adaptive repartitioner:
	// executor loads are compared every RepartitionEvery windows
	// (default 32) and whole tiles migrate between executors when the
	// max/mean load skew exceeds RepartitionThreshold (default 1.25).
	// Migration is quantized to barriers and moves no simulation
	// state, so it never affects results. Ignored (with a validated
	// no-op) on the sequential path.
	Repartition          bool
	RepartitionEvery     int
	RepartitionThreshold float64
	// Optimistic switches the engine to optimistic window execution:
	// executors speculate up to Lookahead windows past each barrier,
	// checkpoint at speculation boundaries, and roll back and replay
	// when a late cross-tile ghost invalidates the horizon. Results
	// stay a pure function of (Seed, tile grid) — byte-identical to
	// conservative lockstep. Requires the engine path (Shards > 1 or a
	// multi-tile grid); the sequential path has no windows to skip.
	Optimistic bool
	// Lookahead is the speculation depth in windows (default 8; 1 is
	// conservative lockstep, so the minimum is 2). Only meaningful with
	// Optimistic.
	Lookahead int
}

// defaultShards is what Setups that leave Shards zero get; mnpexp's
// -shards flag reaches the predefined spec Setups through it.
var defaultShards = 1

// SetDefaultShards sets the shard count for Setups that do not choose
// one. n < 1 resets to the sequential default. Not safe to call
// concurrently with Build.
func SetDefaultShards(n int) {
	if n < 1 {
		n = 1
	}
	defaultShards = n
}

// Package defaults for tiling and repartitioning, reached by mnpexp's
// -tiles/-repartition flags the same way -shards reaches defaultShards.
var (
	defaultTileRows, defaultTileCols int
	defaultTileAuto                  bool
	defaultRepartition               bool
)

// SetDefaultTiles sets the tile grid for Setups that do not choose one:
// rows×cols when both are positive, automatic sizing when either is
// negative, none (the legacy strip layout) when both are zero. Not safe
// to call concurrently with Build.
func SetDefaultTiles(rows, cols int) {
	if rows < 0 || cols < 0 {
		defaultTileRows, defaultTileCols, defaultTileAuto = 0, 0, true
		return
	}
	defaultTileRows, defaultTileCols, defaultTileAuto = rows, cols, false
}

// SetDefaultRepartition toggles the adaptive repartitioner for Setups
// that do not choose. Not safe to call concurrently with Build.
func SetDefaultRepartition(on bool) { defaultRepartition = on }

// Optimism defaults, reached by mnpexp's -optimistic/-lookahead flags.
var (
	defaultOptimistic bool
	defaultLookahead  int
)

// SetDefaultOptimistic toggles optimistic window execution for Setups
// that do not choose, with the given speculation depth (0 keeps the
// engine's default). Not safe to call concurrently with Build.
func SetDefaultOptimistic(on bool, lookahead int) {
	defaultOptimistic = on
	if lookahead < 0 {
		lookahead = 0
	}
	defaultLookahead = lookahead
}

// ParseTileSpec parses a CLI tile-grid argument: "" (no tiling),
// "auto" (size the grid from the deployment and worker count), or
// "RxC" (e.g. "4x4"). Shared by the mnpsim and mnpexp flags.
func ParseTileSpec(spec string) (rows, cols int, auto bool, err error) {
	spec = strings.TrimSpace(strings.ToLower(spec))
	if spec == "" {
		return 0, 0, false, nil
	}
	if spec == "auto" {
		return 0, 0, true, nil
	}
	r, c, ok := strings.Cut(spec, "x")
	if ok {
		rows, err = strconv.Atoi(strings.TrimSpace(r))
		if err == nil {
			cols, err = strconv.Atoi(strings.TrimSpace(c))
		}
		if err == nil && rows > 0 && cols > 0 {
			return rows, cols, false, nil
		}
	}
	return 0, 0, false, fmt.Errorf(`tile grid %q: want "RxC" (e.g. 4x4) or "auto"`, spec)
}

func (s Setup) withDefaults() Setup {
	if s.Spacing == 0 {
		s.Spacing = 10
	}
	if s.ImagePackets == 0 {
		s.ImagePackets = image.DefaultSegmentPackets
	}
	if s.Protocol == 0 {
		s.Protocol = ProtocolMNP
	}
	if s.Power == 0 {
		s.Power = radio.PowerSim
	}
	if s.Limit == 0 {
		s.Limit = 12 * time.Hour
	}
	if s.Shards == 0 {
		s.Shards = defaultShards
	}
	if s.Mobility != nil && s.MobilityEvery == 0 {
		s.MobilityEvery = 10 * time.Second
	}
	if s.TileRows == 0 && s.TileCols == 0 && !s.TileAuto {
		if defaultTileAuto {
			s.TileAuto = true
		} else if defaultTileRows > 0 && defaultTileCols > 0 {
			s.TileRows, s.TileCols = defaultTileRows, defaultTileCols
		}
	}
	if !s.Repartition && defaultRepartition {
		s.Repartition = true
	}
	if !s.Optimistic && defaultOptimistic {
		s.Optimistic = true
	}
	if s.Optimistic && s.Lookahead == 0 {
		s.Lookahead = defaultLookahead
	}
	return s
}

// Validate rejects malformed deployment descriptions with descriptive
// errors before Build constructs anything. Build calls it (after
// applying defaults); call it directly to vet user input early.
func (s Setup) Validate() error {
	n := 0
	if s.Layout != nil {
		n = s.Layout.N()
	} else {
		if s.Rows <= 0 || s.Cols <= 0 {
			return fmt.Errorf("experiment %s: grid %dx%d is invalid: rows and cols must be positive", s.Name, s.Rows, s.Cols)
		}
		if s.Spacing <= 0 {
			return fmt.Errorf("experiment %s: spacing %g ft must be positive", s.Name, s.Spacing)
		}
		n = s.Rows * s.Cols
	}
	if n == 0 {
		return fmt.Errorf("experiment %s: layout has no nodes", s.Name)
	}
	if s.Shards < 1 {
		return fmt.Errorf("experiment %s: shard count %d must be at least 1", s.Name, s.Shards)
	}
	if s.Shards > n {
		return fmt.Errorf("experiment %s: %d shards exceed the %d-node deployment", s.Name, s.Shards, n)
	}
	if s.TileRows < 0 || s.TileCols < 0 {
		return fmt.Errorf("experiment %s: tile grid %dx%d is invalid: rows and cols must be non-negative", s.Name, s.TileRows, s.TileCols)
	}
	if (s.TileRows > 0) != (s.TileCols > 0) {
		return fmt.Errorf("experiment %s: tile grid %dx%d is invalid: set both rows and cols (or neither)", s.Name, s.TileRows, s.TileCols)
	}
	if tiles := s.TileRows * s.TileCols; tiles > 0 {
		if s.TileAuto {
			return fmt.Errorf("experiment %s: tile grid %dx%d and automatic tiling are mutually exclusive", s.Name, s.TileRows, s.TileCols)
		}
		if tiles > n {
			return fmt.Errorf("experiment %s: %dx%d tile grid has %d tiles for the %d-node deployment", s.Name, s.TileRows, s.TileCols, tiles, n)
		}
		if s.Shards > tiles {
			return fmt.Errorf("experiment %s: %d executors exceed the %d-tile grid", s.Name, s.Shards, tiles)
		}
	}
	if s.RepartitionEvery < 0 {
		return fmt.Errorf("experiment %s: repartition period %d windows is negative", s.Name, s.RepartitionEvery)
	}
	if s.RepartitionThreshold != 0 && s.RepartitionThreshold < 1 {
		return fmt.Errorf("experiment %s: repartition threshold %g must be at least 1 (or 0 for the default)", s.Name, s.RepartitionThreshold)
	}
	if (s.RepartitionEvery != 0 || s.RepartitionThreshold != 0) && !s.Repartition {
		return fmt.Errorf("experiment %s: repartition tuning set but repartitioning is off", s.Name)
	}
	if s.Lookahead < 0 {
		return fmt.Errorf("experiment %s: lookahead %d windows is negative", s.Name, s.Lookahead)
	}
	if s.Lookahead == 1 {
		return fmt.Errorf("experiment %s: lookahead 1 is conservative lockstep; use at least 2 (or 0 for the default)", s.Name)
	}
	if s.Lookahead > 0 && !s.Optimistic {
		return fmt.Errorf("experiment %s: lookahead set but optimistic execution is off", s.Name)
	}
	if s.Optimistic && !(s.Shards > 1 || s.TileRows*s.TileCols > 1 || s.TileAuto) {
		return fmt.Errorf("experiment %s: optimistic execution requires the tiled engine (shards > 1 or a tile grid)", s.Name)
	}
	if s.ImagePackets < 0 {
		return fmt.Errorf("experiment %s: image size %d packets is negative", s.Name, s.ImagePackets)
	}
	if s.MobilityEvery < 0 {
		return fmt.Errorf("experiment %s: mobility step %v is negative", s.Name, s.MobilityEvery)
	}
	if s.MobilityEvery > 0 && s.Mobility == nil {
		return fmt.Errorf("experiment %s: mobility step set but no mobility model", s.Name)
	}
	if s.Limit < 0 {
		return fmt.Errorf("experiment %s: time limit %v is negative", s.Name, s.Limit)
	}
	// Protocol 0 is "unset" (Build defaults it to MNP); anything else
	// must map to a registered protocol rather than falling through to
	// a default branch at build time.
	if s.Protocol != 0 {
		name := s.Protocol.RegistryName()
		if name == "" {
			return fmt.Errorf("experiment %s: unknown protocol kind %d (valid: %s)",
				s.Name, int(s.Protocol), strings.Join(protoreg.Names(), ", "))
		}
		if _, ok := protoreg.Lookup(name); !ok {
			return fmt.Errorf("experiment %s: protocol %q is not registered", s.Name, name)
		}
	}
	if len(s.ProtocolOptions) > 0 {
		name := s.Protocol.RegistryName()
		if name == "" {
			name = ProtocolMNP.RegistryName()
		}
		if err := protoreg.ValidateOptions(name, s.ProtocolOptions); err != nil {
			return fmt.Errorf("experiment %s: %w", s.Name, err)
		}
	}
	return nil
}

// Result is a completed run plus everything needed to render reports.
type Result struct {
	Setup     Setup
	Layout    *topology.Layout
	Medium    *radio.Medium
	Network   *node.Network
	Collector *metrics.Collector
	Image     *image.Image
	Kernel    *sim.Kernel

	// Engine drives a sharded run (Setup.Shards > 1 or a multi-tile
	// grid); nil on the sequential path. Kernel and Medium are nil when
	// Engine is set — no single pair exists — and Collector holds the
	// deterministic cross-shard merge, available once the run finishes.
	Engine *engine.Engine
	// TileGrid is the tile partition the engine ran over (1×Shards for
	// legacy strips); zero on the sequential path.
	TileGrid engine.Grid
	// Loads collects the engine's per-period load reports (one entry
	// per report period, each with per-executor event/delivery/wait
	// figures and the tiles migrated at that barrier). Empty on the
	// sequential path.
	Loads []engine.LoadReport
	// Now is the run's observation clock: Kernel.Now sequentially, the
	// engine's replay-aware clock when sharded. Bind lazily-clocked
	// observers (trace logs, telemetry recorders) to it.
	Now func() time.Duration

	// Invariants is the attached checker, nil unless Setup.Invariants
	// was set.
	Invariants *invariant.Checker

	// Completed reports whether every node finished within Limit.
	Completed bool
	// CompletionTime is the instant the last node completed.
	CompletionTime time.Duration

	// Per-shard state merged by RunToCompletion.
	shardCollectors []*metrics.Collector
	shardOf         []int
}

// Run executes the deployment until full coverage or the time limit.
func Run(s Setup) (*Result, error) {
	res, err := Build(s)
	if err != nil {
		return nil, err
	}
	res.RunToCompletion()
	res.FinishTelemetry()
	return res, nil
}

// RunToCompletion starts every node, drives the simulation (whichever
// engine Build selected) until full coverage or the time limit, and
// finalizes the result's merged collector. Callers needing to schedule
// instrumentation between Build and the run use it in place of driving
// res.Kernel by hand; sequential results can still be driven manually.
func (r *Result) RunToCompletion() {
	r.Network.Start()
	if r.Engine != nil {
		r.Completed = r.Engine.RunUntil(r.Network.AllCompleted, r.Setup.Limit)
	} else {
		r.Completed = r.Network.RunUntilComplete(r.Setup.Limit)
	}
	r.CompletionTime = r.Network.CompletionTime()
	r.finalizeShards()
}

// finalizeShards merges per-shard collectors into Result.Collector
// deterministically (per-node rows from the owning shard, summed
// timelines, (time, node)-merged sender logs). A no-op sequentially.
func (r *Result) finalizeShards() {
	if r.Engine == nil || r.Collector != nil {
		return
	}
	merged, err := metrics.MergeShards(r.shardCollectors, r.shardOf)
	if err != nil {
		// The collectors and owner map were built together in Build;
		// a mismatch is a harness bug, not a runtime condition.
		panic(fmt.Sprintf("experiment %s: merging shard collectors: %v", r.Setup.Name, err))
	}
	r.Collector = merged
}

// Counters builds the run's final counter registry: the metrics
// snapshot up to completion (or the limit), plus the engine's
// window/ghost/migration totals on sharded runs. The telemetry
// summary record and the CLIs' counters.prom dumps both come from
// here, so the two surfaces always agree.
func (r *Result) Counters() *telemetry.Counters {
	until := r.CompletionTime
	if !r.Completed {
		until = r.Setup.Limit
	}
	c := telemetry.CountersFromSnapshot(r.Collector.Snapshot(until))
	if r.Engine != nil {
		st := r.Engine.Stats()
		c.Set("engine_windows_total", st.Windows)
		c.Set("engine_ghosts_exported_total", st.GhostsExported)
		c.Set("engine_ghosts_offered_total", st.GhostsOffered)
		c.Set("engine_tile_migrations_total", st.Migrations)
		c.Set("engine_repartitions_total", st.Repartitions)
		if r.Setup.Optimistic {
			c.Set("engine_spec_rounds_total", st.SpecRounds)
			c.Set("engine_windows_speculated_total", st.SpecWindows)
			c.Set("engine_windows_committed_total", st.SpecCommitted)
			c.Set("engine_windows_rolled_back_total", st.SpecRolledBack)
			c.Set("engine_rollbacks_total", st.Rollbacks)
		}
	}
	var hits, misses, invalidations uint64
	if r.Engine != nil {
		for _, sh := range r.Engine.Shards() {
			h, m, inv, _ := sh.Medium.CacheStats()
			hits, misses, invalidations = hits+h, misses+m, invalidations+inv
		}
	} else if r.Medium != nil {
		hits, misses, invalidations, _ = r.Medium.CacheStats()
	}
	c.Set("radio_link_cache_hits_total", int64(hits))
	c.Set("radio_link_cache_misses_total", int64(misses))
	c.Set("radio_link_cache_invalidations_total", int64(invalidations))
	return c
}

// FinishTelemetry emits the final counters summary to the attached
// telemetry recorder. Run calls it automatically; callers driving the
// kernel themselves (after Build) call it once the run is over.
func (r *Result) FinishTelemetry() {
	if r.Setup.Telemetry == nil {
		return
	}
	r.Setup.Telemetry.Summary(r.Counters().Snapshot())
}

// Build constructs the deployment without starting the protocols, so
// callers can schedule fault injection or custom instrumentation first;
// follow with res.Network.Start() and drive res.Kernel directly.
func Build(s Setup) (*Result, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	raw := s.ImageData
	if raw == nil {
		raw = make([]byte, s.ImagePackets*image.DefaultPayloadSize)
		fill := sim.New(s.Seed + 77)
		fill.Rand().Read(raw)
	}
	img, err := image.New(1, raw)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	layout := s.Layout
	if layout == nil {
		var err error
		layout, err = topology.Grid(s.Rows, s.Cols, s.Spacing)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
		}
	}
	if int(s.BaseID) >= layout.N() {
		return nil, fmt.Errorf("experiment %s: base %v outside the %d-node layout", s.Name, s.BaseID, layout.N())
	}
	// The engine path serves legacy strip sharding (Shards > 1) and any
	// multi-tile grid. A 1×1 grid is the whole deployment in one cell:
	// it routes to the sequential path below, byte-identical to every
	// pre-tiling golden hash.
	if s.Shards > 1 || s.TileRows*s.TileCols > 1 || s.TileAuto {
		return buildSharded(s, img, layout)
	}
	// Events scale with nodes (a few timers and an in-flight frame
	// each); sizing the heap up front keeps 10k-node runs from
	// re-growing it mid-run. Capacity never affects event order.
	kernel := sim.NewSized(s.Seed, 4*layout.N())
	rp := radio.DefaultParams()
	if s.Radio != nil {
		rp = *s.Radio
	}
	medium, err := radio.NewMedium(kernel, layout, rp, s.Seed+1)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	rangeFt, err := medium.RangeFor(s.Power)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	collector, err := metrics.NewCollector(metrics.Config{
		Layout:            layout,
		Airtime:           medium.Airtime,
		NeighborhoodRange: rangeFt,
	}, kernel.Now)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	medium.SetSink(collector)

	factory := s.protocolFactory(img)
	var checker *invariant.Checker
	var obs node.Observer = collector
	observers := node.MultiObserver{collector}
	if s.Observer != nil {
		observers = append(observers, s.Observer)
	}
	if s.Telemetry != nil {
		// The stream opens with the run's identity, then the full fault
		// plan — emitted up front so a reader of a truncated stream still
		// knows what was going to be injected.
		s.Telemetry.Meta(s.Name, s.Seed, layout.N(), img.TotalPackets(), s.Protocol.String())
		if s.Faults != nil {
			for _, ev := range s.Faults.Events {
				s.Telemetry.Fault(ev.At, ev.Kind.String(), ev.Describe())
			}
		}
		observers = append(observers, s.Telemetry)
	}
	if s.Invariants != nil {
		icfg := *s.Invariants
		icfg.Now = kernel.Now
		icfg.Airtime = medium.Airtime
		icfg.Neighbor = func(a, b packet.NodeID) bool {
			d, err := layout.Distance(a, b)
			return err == nil && d <= rangeFt
		}
		if s.Telemetry != nil {
			rec, prev := s.Telemetry, icfg.OnViolation
			icfg.OnViolation = func(v invariant.Violation) {
				rec.Violation(v.At, v.Node, v.Rule, v.Detail)
				if prev != nil {
					prev(v)
				}
			}
		}
		checker, err = invariant.New(icfg)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
		}
		observers = append(observers, checker)
		medium.SetTap(checker.PacketSent)
	}
	if len(observers) > 1 {
		obs = observers
	}
	nw, err := node.NewNetwork(kernel, medium, layout, factory, obs)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	if s.Faults != nil {
		err := s.Faults.Apply(faults.Env{
			Kernel:  kernel,
			Network: nw,
			Medium:  medium,
			Seed:    s.Seed,
			Base:    s.BaseID,
		})
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
		}
	}
	if s.Mobility != nil {
		model, err := s.Mobility(layout, s.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
		}
		// A self-re-arming kernel event applies position updates at
		// every nominal instant k×MobilityEvery. The model is stepped
		// with the nominal time, so trajectories are independent of
		// everything but (seed, step) — the sharded path below feeds
		// the same instants through engine barriers.
		geo := medium.Geometry()
		var step func(nominal time.Duration)
		step = func(nominal time.Duration) {
			for _, mv := range model.Moves(nominal) {
				geo.MoveNode(mv.ID, mv.To)
			}
			if next := nominal + s.MobilityEvery; next <= s.Limit {
				kernel.MustSchedule(s.MobilityEvery, func() { step(next) })
			}
		}
		kernel.MustSchedule(s.MobilityEvery, func() { step(s.MobilityEvery) })
	}
	armImageCheck(checker, s.Protocol, img, nw)
	return &Result{
		Setup:     s,
		Layout:    layout,
		Medium:    medium,
		Network:   nw,
		Collector: collector,
		Image:     img,
		Kernel:    kernel,
		Now:       kernel.Now,

		Invariants: checker,
	}, nil
}

// armImageCheck installs the segment-image-integrity invariant on a
// checker: stored payloads of every completed segment must match the
// source image byte-for-byte. Deluge is excluded — its EEPROM slots
// follow page geometry, not the image's (seg, pkt) layout. The stored
// hook reads the node's EEPROM directly (not through the runtime), so
// checking stays observation-only: no StorageOp events, no energy
// charge, no behavior perturbation.
func armImageCheck(checker *invariant.Checker, proto ProtocolKind, img *image.Image, nw *node.Network) {
	if checker == nil || proto == ProtocolDeluge {
		return
	}
	checker.SetImageCheck(
		func(seg, pkt int) ([]byte, bool) {
			p, err := img.Payload(seg, pkt)
			return p, err == nil
		},
		func(id packet.NodeID, seg, pkt int) []byte {
			n := nw.Node(id)
			if n == nil {
				return nil
			}
			return n.EEPROM().Read(seg, pkt)
		},
	)
}

// protocolFactory builds the per-node protocol factory shared by the
// sequential and sharded paths by resolving the configured protocol in
// the registry (each protocol package registers itself from init).
// Validate has already vetted the kind and the option map, so the
// builder cannot fail per node.
func (s Setup) protocolFactory(img *image.Image) node.Factory {
	name := s.Protocol.RegistryName()
	builder, ok := protoreg.Lookup(name)
	if !ok {
		// Unreachable after Validate; a nil factory would be a silent
		// misconfiguration, so fail loudly.
		panic(fmt.Sprintf("experiment %s: protocol %q not registered", s.Name, name))
	}
	var tune any
	if s.MNP != nil {
		tune = s.MNP
	}
	return func(id packet.NodeID) (node.Protocol, node.Config) {
		ncfg := node.Config{TxPower: s.Power}
		if s.Battery != nil {
			ncfg.Battery = s.Battery(id)
		}
		p, err := builder(protoreg.Build{
			ID:      id,
			Base:    id == s.BaseID,
			Image:   img,
			Options: s.ProtocolOptions,
			Tune:    tune,
		})
		if err != nil {
			panic(fmt.Sprintf("experiment %s: building %s for node %v: %v", s.Name, name, id, err))
		}
		return p, ncfg
	}
}

// buildSharded assembles an engine-driven deployment: the layout is
// partitioned into tiles (an explicit or automatic 2D grid, or the
// legacy contiguous strips when only Shards is set), each tile gets a
// kernel, a radio shard over the shared channel geometry, and a
// collector, nodes are pinned to the tile owning them, and
// single-instance observers (trace logs, telemetry, the invariant
// checker) are fed through the engine's deterministic barrier replay.
// Logical executors advance the tiles; on the legacy path there is one
// tile per executor, reproducing the PR 4 strip engine exactly.
func buildSharded(s Setup, img *image.Image, layout *topology.Layout) (*Result, error) {
	rp := radio.DefaultParams()
	if s.Radio != nil {
		rp = *s.Radio
	}
	geo, err := radio.NewGeometry(layout, rp, s.Seed+1)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	rangeFt, err := geo.RangeFor(s.Power)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	var tiles []engine.Tile
	var grid engine.Grid
	executors := s.Shards
	switch {
	case s.TileRows > 0:
		grid = engine.Grid{Rows: s.TileRows, Cols: s.TileCols}
		tiles, err = engine.TilePartition(layout, grid)
	case s.TileAuto:
		workersHint := s.Workers
		if workersHint <= 0 {
			workersHint = runtime.NumCPU()
		}
		grid = engine.AutoGrid(layout, rangeFt, workersHint)
		tiles, err = engine.TilePartition(layout, grid)
	default:
		// Legacy strips: K tiles, one per executor, with the exact
		// partition, ordering, and seeds of the pre-tiling engine.
		grid = engine.Grid{Rows: 1, Cols: s.Shards}
		var parts [][]packet.NodeID
		parts, err = engine.Partition(layout, s.Shards)
		if err == nil {
			tiles = make([]engine.Tile, len(parts))
			for i, owned := range parts {
				tiles[i] = engine.Tile{Row: 0, Col: i, Owned: owned, Bounds: engine.BoundsOf(layout, owned)}
			}
		}
	}
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	if executors < 1 {
		executors = 1
	}
	if executors > len(tiles) {
		executors = len(tiles)
	}
	shardOf := make([]int, layout.N())
	shards := make([]*engine.Shard, len(tiles))
	collectors := make([]*metrics.Collector, len(tiles))
	for i, tile := range tiles {
		owned := tile.Owned
		for _, id := range owned {
			shardOf[id] = i
		}
		// Distinct RNG streams per tile; the stride keeps tile seeds
		// clear of the seed+1 (link noise) and seed+77 (image fill)
		// derivations. Seeds depend on the tile index only — never on
		// executors or workers — so results are a pure function of
		// (Seed, tile grid).
		kernel := sim.NewSized(s.Seed+0x5EED*int64(i+1), 4*len(owned)+64)
		medium, err := radio.NewShardMedium(kernel, geo, owned)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
		}
		collector, err := metrics.NewCollector(metrics.Config{
			Layout:            layout,
			Airtime:           geo.Airtime,
			NeighborhoodRange: rangeFt,
		}, kernel.Now)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
		}
		medium.SetSink(collector)
		collectors[i] = collector
		bounds := tile.Bounds
		shards[i] = &engine.Shard{Kernel: kernel, Medium: medium, Owned: owned, Bounds: &bounds}
	}
	var rep *engine.Repartition
	if s.Repartition {
		rep = &engine.Repartition{Every: s.RepartitionEvery, Threshold: s.RepartitionThreshold}
	}
	res := &Result{}
	onLoad := func(lr engine.LoadReport) {
		res.Loads = append(res.Loads, lr)
		if s.Telemetry != nil {
			for _, sl := range lr.Shards {
				s.Telemetry.Load(lr.Barrier, lr.Window, sl.Shard, sl.Tiles, sl.Events, sl.Delivered, sl.WaitNs, lr.Migrations)
			}
		}
	}
	eng, err := engine.New(engine.Config{
		Window:      engine.ConservativeWindow(geo),
		Workers:     s.Workers,
		Shards:      executors,
		Repartition: rep,
		OnLoad:      onLoad,
		Optimistic:  s.Optimistic,
		Lookahead:   s.Lookahead,
	}, shards)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}

	// Single-instance observers see the merged stream via barrier
	// replay, in the same relative order the sequential path wires
	// them: user observer, telemetry, invariant checker.
	var checker *invariant.Checker
	var globalObs node.MultiObserver
	if s.Observer != nil {
		globalObs = append(globalObs, s.Observer)
	}
	if s.Telemetry != nil {
		s.Telemetry.SetClock(eng.Now)
		s.Telemetry.Meta(s.Name, s.Seed, layout.N(), img.TotalPackets(), s.Protocol.String())
		if s.Faults != nil {
			for _, ev := range s.Faults.Events {
				s.Telemetry.Fault(ev.At, ev.Kind.String(), ev.Describe())
			}
		}
		globalObs = append(globalObs, s.Telemetry)
	}
	if s.Invariants != nil {
		icfg := *s.Invariants
		icfg.Now = eng.Now
		icfg.Airtime = geo.Airtime
		icfg.Neighbor = func(a, b packet.NodeID) bool {
			d, err := layout.Distance(a, b)
			return err == nil && d <= rangeFt
		}
		if s.Telemetry != nil {
			rec, prev := s.Telemetry, icfg.OnViolation
			icfg.OnViolation = func(v invariant.Violation) {
				rec.Violation(v.At, v.Node, v.Rule, v.Detail)
				if prev != nil {
					prev(v)
				}
			}
		}
		checker, err = invariant.New(icfg)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
		}
		globalObs = append(globalObs, checker)
		eng.SetTap(checker.PacketSent)
		for i, sh := range shards {
			sh.Medium.SetTap(eng.ShardObserver(i).PacketSent)
		}
	}
	buffering := len(globalObs) > 0 || checker != nil
	if len(globalObs) == 1 {
		eng.SetObserver(globalObs[0])
	} else if len(globalObs) > 1 {
		eng.SetObserver(globalObs)
	}

	place := func(id packet.NodeID) (*sim.Kernel, *radio.Medium, node.Observer) {
		sh := shards[shardOf[id]]
		var obs node.Observer = collectors[shardOf[id]]
		if buffering {
			obs = node.MultiObserver{obs, eng.ShardObserver(shardOf[id])}
		}
		return sh.Kernel, sh.Medium, obs
	}
	nw, err := node.NewPartitionedNetwork(layout, s.protocolFactory(img), place)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	if s.Faults != nil {
		clocks := make([]func() time.Duration, len(shards))
		mediums := make([]*radio.Medium, len(shards))
		for i, sh := range shards {
			clocks[i] = sh.Kernel.Now
			mediums[i] = sh.Medium
		}
		env := faults.ShardedEnv{
			At:      eng.At,
			Network: nw,
			Mediums: mediums,
			Clocks:  clocks,
			ShardOf: func(id packet.NodeID) int { return shardOf[id] },
			Seed:    s.Seed,
			Base:    s.BaseID,
		}
		if s.Optimistic {
			// Per-node fault RNGs live in event closures the checkpoint
			// walker cannot reach from any root; register each with its
			// owning tile so speculative draws rewind with the tile.
			env.OnRNG = func(id packet.NodeID, rng *rand.Rand) {
				sh := shards[shardOf[id]]
				sh.Roots = append(sh.Roots, rng)
			}
		}
		if err := s.Faults.ApplySharded(env); err != nil {
			return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
		}
	}
	if s.Optimistic {
		// Checkpoint roots and journals per tile: the snapshot walker
		// covers the kernel, the medium, and every owned node (battery,
		// timers, protocol state, RNG cursor); the EEPROM stores and the
		// tile collector carry their own bounded journals. Completion
		// progress tracked outside the tiles is rewound on rollback.
		for i, sh := range shards {
			sh.Journals = append(sh.Journals, collectors[i])
		}
		for _, n := range nw.Nodes {
			sh := shards[shardOf[n.ID()]]
			sh.Roots = append(sh.Roots, n)
			sh.Journals = append(sh.Journals, n.EEPROM())
		}
		eng.SetOnRollback(nw.RewindCompletion)
	}
	if s.Mobility != nil {
		model, merr := s.Mobility(layout, s.Seed)
		if merr != nil {
			return nil, fmt.Errorf("experiment %s: %w", s.Name, merr)
		}
		// Position updates ride the engine's global-event queue, so they
		// land at barriers with every worker parked — the only point a
		// mutation of the shared Geometry is safe. The model is stepped
		// with the nominal instant k×MobilityEvery (not the barrier
		// time), and ConservativeWindow is grid-independent, so tiled
		// runs stay a pure function of (Seed, tile grid) under mobility.
		// Each shard's ghost-filter bounds are refreshed from the moved
		// layout before the next window opens.
		var arm func(nominal time.Duration)
		arm = func(nominal time.Duration) {
			eng.At(nominal, func() {
				moved := model.Moves(nominal)
				for _, mv := range moved {
					geo.MoveNode(mv.ID, mv.To)
				}
				if len(moved) > 0 {
					for _, sh := range shards {
						*sh.Bounds = engine.BoundsOf(layout, sh.Owned)
					}
				}
				if next := nominal + s.MobilityEvery; next <= s.Limit {
					arm(next)
				}
			})
		}
		arm(s.MobilityEvery)
	}
	armImageCheck(checker, s.Protocol, img, nw)
	res.Setup = s
	res.Layout = layout
	res.Network = nw
	res.Image = img
	res.Engine = eng
	res.Now = eng.Now
	res.TileGrid = grid
	res.Invariants = checker
	res.shardCollectors = collectors
	res.shardOf = shardOf
	return res, nil
}

// LoadMatrix flattens the run's engine load reports into one
// per-period per-executor vector of deterministic load (kernel events
// + frame deliveries), the shape metrics.SummarizeLoads consumes.
func (r *Result) LoadMatrix() [][]int64 {
	out := make([][]int64, 0, len(r.Loads))
	for _, lr := range r.Loads {
		row := make([]int64, len(lr.Shards))
		for i, sl := range lr.Shards {
			row[i] = sl.Events + sl.Delivered
		}
		out = append(out, row)
	}
	return out
}

// VerifyInvariants returns the checker's first recorded violation, or
// nil when no checker was attached or every invariant held.
func (r *Result) VerifyInvariants() error {
	if r.Invariants == nil {
		return nil
	}
	return r.Invariants.Err()
}

// VerifyImages checks the reliability requirement on every node and
// returns an error naming the first violation. Only MNP-geometry
// protocols (MNP, XNP, MOAP, RLNC, which all use 128-packet segment
// slots) are verified packet-by-packet; Deluge uses page-numbered
// slots and is verified by completion plus write-once.
func (r *Result) VerifyImages() error {
	for _, n := range r.Network.Nodes {
		if n.Dead() {
			continue
		}
		if !n.Completed() {
			return fmt.Errorf("node %v incomplete", n.ID())
		}
		if w := n.EEPROM().MaxWriteCount(); w > 1 {
			return fmt.Errorf("node %v rewrote EEPROM (max %d writes)", n.ID(), w)
		}
		if r.Setup.Protocol == ProtocolDeluge {
			continue
		}
		data, err := r.Image.Reassemble(func(seg, pkt int) []byte {
			return n.EEPROM().Read(seg, pkt)
		})
		if err != nil {
			return fmt.Errorf("node %v: %w", n.ID(), err)
		}
		if !r.Image.Verify(data) {
			return fmt.Errorf("node %v: image mismatch", n.ID())
		}
	}
	return nil
}
