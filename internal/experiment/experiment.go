// Package experiment assembles full simulated deployments — topology,
// channel, protocol fleet, metrics — and reproduces the paper's
// evaluation artifacts: each table and figure has a Spec that runs the
// corresponding workload and renders the same rows or series the paper
// reports.
package experiment

import (
	"fmt"
	"time"

	"mnp/internal/core"
	"mnp/internal/deluge"
	"mnp/internal/faults"
	"mnp/internal/image"
	"mnp/internal/invariant"
	"mnp/internal/metrics"
	"mnp/internal/moap"
	"mnp/internal/node"
	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/sim"
	"mnp/internal/telemetry"
	"mnp/internal/topology"
	"mnp/internal/xnp"
)

// ProtocolKind selects the dissemination protocol under test.
type ProtocolKind int

// Protocols available to experiments.
const (
	ProtocolMNP ProtocolKind = iota + 1
	ProtocolDeluge
	ProtocolMOAP
	ProtocolXNP
)

// String returns the protocol name.
func (p ProtocolKind) String() string {
	switch p {
	case ProtocolMNP:
		return "MNP"
	case ProtocolDeluge:
		return "Deluge"
	case ProtocolMOAP:
		return "MOAP"
	case ProtocolXNP:
		return "XNP"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Setup describes one simulated deployment.
type Setup struct {
	// Name labels reports.
	Name string
	// Rows and Cols define the grid; Spacing is in feet.
	Rows, Cols int
	Spacing    float64
	// Layout, when non-nil, overrides the grid entirely (e.g. a random
	// placement from topology.ConnectedRandom).
	Layout *topology.Layout
	// ImagePackets is the program size in 22-byte packets (e.g. 100
	// for the testbed experiments, 640 for 5 segments). The image is
	// segmented into 128-packet segments.
	ImagePackets int
	// ImageData, when non-nil, disseminates exactly these bytes
	// instead of a random image of ImagePackets packets (e.g. an
	// imgdiff patch).
	ImageData []byte
	// Protocol selects the dissemination protocol (default MNP).
	Protocol ProtocolKind
	// BaseID places the base station (default node 0, a grid corner).
	// The paper's scaling argument puts it at the center of a 4x
	// larger network.
	BaseID packet.NodeID
	// Power is the TinyOS transmit power level (default PowerSim).
	Power int
	// Seed drives every random choice in the run.
	Seed int64
	// Radio overrides the channel model when non-nil.
	Radio *radio.Params
	// MNP tweaks the core protocol configuration (MNP runs only).
	MNP func(id packet.NodeID, c *core.Config)
	// Battery assigns initial battery fractions (default 1.0).
	Battery func(id packet.NodeID) float64
	// Limit bounds the simulated time (default 12 h).
	Limit time.Duration
	// Observer, when non-nil, receives node observations alongside the
	// metrics collector (e.g. a trace.Log).
	Observer node.Observer
	// Faults, when non-nil, is a fault plan scheduled onto the kernel
	// before the run starts (crashes, reboots, partitions, EEPROM
	// errors). Plans are seeded from Seed and fully reproducible.
	Faults *faults.Plan
	// Invariants, when non-nil, attaches an online protocol-invariant
	// checker to the run. Build fills the clock, neighborhood, and
	// airtime hooks; set fields like AllowRadioOnInSleep or
	// SenderOverlapBudget here. Use &invariant.Config{} for defaults.
	Invariants *invariant.Config
	// Telemetry, when non-nil, streams the run as NDJSON: a meta record,
	// the fault plan, every observation, every invariant violation, and
	// a final counters summary. Nil (the default) leaves the run
	// byte-identical to an uninstrumented one.
	Telemetry *telemetry.Recorder
}

func (s Setup) withDefaults() Setup {
	if s.Spacing == 0 {
		s.Spacing = 10
	}
	if s.ImagePackets == 0 {
		s.ImagePackets = image.DefaultSegmentPackets
	}
	if s.Protocol == 0 {
		s.Protocol = ProtocolMNP
	}
	if s.Power == 0 {
		s.Power = radio.PowerSim
	}
	if s.Limit == 0 {
		s.Limit = 12 * time.Hour
	}
	return s
}

// Result is a completed run plus everything needed to render reports.
type Result struct {
	Setup     Setup
	Layout    *topology.Layout
	Medium    *radio.Medium
	Network   *node.Network
	Collector *metrics.Collector
	Image     *image.Image
	Kernel    *sim.Kernel

	// Invariants is the attached checker, nil unless Setup.Invariants
	// was set.
	Invariants *invariant.Checker

	// Completed reports whether every node finished within Limit.
	Completed bool
	// CompletionTime is the instant the last node completed.
	CompletionTime time.Duration
}

// Run executes the deployment until full coverage or the time limit.
func Run(s Setup) (*Result, error) {
	res, err := Build(s)
	if err != nil {
		return nil, err
	}
	res.Network.Start()
	res.Completed = res.Network.RunUntilComplete(res.Setup.Limit)
	res.CompletionTime = res.Network.CompletionTime()
	res.FinishTelemetry()
	return res, nil
}

// FinishTelemetry emits the final counters summary to the attached
// telemetry recorder. Run calls it automatically; callers driving the
// kernel themselves (after Build) call it once the run is over.
func (r *Result) FinishTelemetry() {
	if r.Setup.Telemetry == nil {
		return
	}
	until := r.CompletionTime
	if !r.Completed {
		until = r.Setup.Limit
	}
	r.Setup.Telemetry.Summary(telemetry.CountersFromSnapshot(r.Collector.Snapshot(until)).Snapshot())
}

// Build constructs the deployment without starting the protocols, so
// callers can schedule fault injection or custom instrumentation first;
// follow with res.Network.Start() and drive res.Kernel directly.
func Build(s Setup) (*Result, error) {
	s = s.withDefaults()
	raw := s.ImageData
	if raw == nil {
		raw = make([]byte, s.ImagePackets*image.DefaultPayloadSize)
		fill := sim.New(s.Seed + 77)
		fill.Rand().Read(raw)
	}
	img, err := image.New(1, raw)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	layout := s.Layout
	if layout == nil {
		var err error
		layout, err = topology.Grid(s.Rows, s.Cols, s.Spacing)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
		}
	}
	kernel := sim.New(s.Seed)
	rp := radio.DefaultParams()
	if s.Radio != nil {
		rp = *s.Radio
	}
	medium, err := radio.NewMedium(kernel, layout, rp, s.Seed+1)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	rangeFt, err := medium.RangeFor(s.Power)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	collector, err := metrics.NewCollector(metrics.Config{
		Layout:            layout,
		Airtime:           medium.Airtime,
		NeighborhoodRange: rangeFt,
	}, kernel.Now)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	medium.SetSink(collector)

	if int(s.BaseID) >= layout.N() {
		return nil, fmt.Errorf("experiment %s: base %v outside the %d-node layout", s.Name, s.BaseID, layout.N())
	}
	factory := func(id packet.NodeID) (node.Protocol, node.Config) {
		ncfg := node.Config{TxPower: s.Power}
		if s.Battery != nil {
			ncfg.Battery = s.Battery(id)
		}
		base := id == s.BaseID
		switch s.Protocol {
		case ProtocolDeluge:
			cfg := deluge.DefaultConfig()
			if base {
				cfg.Base = true
				cfg.Image = img
			}
			return deluge.New(cfg), ncfg
		case ProtocolMOAP:
			cfg := moap.DefaultConfig()
			if base {
				cfg.Base = true
				cfg.Image = img
			}
			return moap.New(cfg), ncfg
		case ProtocolXNP:
			cfg := xnp.DefaultConfig()
			if base {
				cfg.Base = true
				cfg.Image = img
			}
			return xnp.New(cfg), ncfg
		default:
			cfg := core.DefaultConfig()
			if base {
				cfg.Base = true
				cfg.Image = img
			}
			if s.MNP != nil {
				s.MNP(id, &cfg)
			}
			return core.New(cfg), ncfg
		}
	}
	var checker *invariant.Checker
	var obs node.Observer = collector
	observers := node.MultiObserver{collector}
	if s.Observer != nil {
		observers = append(observers, s.Observer)
	}
	if s.Telemetry != nil {
		// The stream opens with the run's identity, then the full fault
		// plan — emitted up front so a reader of a truncated stream still
		// knows what was going to be injected.
		s.Telemetry.Meta(s.Name, s.Seed, layout.N(), img.TotalPackets(), s.Protocol.String())
		if s.Faults != nil {
			for _, ev := range s.Faults.Events {
				s.Telemetry.Fault(ev.At, ev.Kind.String(), ev.Describe())
			}
		}
		observers = append(observers, s.Telemetry)
	}
	if s.Invariants != nil {
		icfg := *s.Invariants
		icfg.Now = kernel.Now
		icfg.Airtime = medium.Airtime
		icfg.Neighbor = func(a, b packet.NodeID) bool {
			d, err := layout.Distance(a, b)
			return err == nil && d <= rangeFt
		}
		if s.Telemetry != nil {
			rec, prev := s.Telemetry, icfg.OnViolation
			icfg.OnViolation = func(v invariant.Violation) {
				rec.Violation(v.At, v.Node, v.Rule, v.Detail)
				if prev != nil {
					prev(v)
				}
			}
		}
		checker, err = invariant.New(icfg)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
		}
		observers = append(observers, checker)
		medium.SetTap(checker.PacketSent)
	}
	if len(observers) > 1 {
		obs = observers
	}
	nw, err := node.NewNetwork(kernel, medium, layout, factory, obs)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	if s.Faults != nil {
		err := s.Faults.Apply(faults.Env{
			Kernel:  kernel,
			Network: nw,
			Medium:  medium,
			Seed:    s.Seed,
			Base:    s.BaseID,
		})
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
		}
	}
	return &Result{
		Setup:     s,
		Layout:    layout,
		Medium:    medium,
		Network:   nw,
		Collector: collector,
		Image:     img,
		Kernel:    kernel,

		Invariants: checker,
	}, nil
}

// VerifyInvariants returns the checker's first recorded violation, or
// nil when no checker was attached or every invariant held.
func (r *Result) VerifyInvariants() error {
	if r.Invariants == nil {
		return nil
	}
	return r.Invariants.Err()
}

// VerifyImages checks the reliability requirement on every node and
// returns an error naming the first violation. Only MNP-geometry
// protocols (MNP, XNP, MOAP, which all use 128-packet segment slots)
// are verified packet-by-packet; Deluge uses page-numbered slots and
// is verified by completion plus write-once.
func (r *Result) VerifyImages() error {
	for _, n := range r.Network.Nodes {
		if n.Dead() {
			continue
		}
		if !n.Completed() {
			return fmt.Errorf("node %v incomplete", n.ID())
		}
		if w := n.EEPROM().MaxWriteCount(); w > 1 {
			return fmt.Errorf("node %v rewrote EEPROM (max %d writes)", n.ID(), w)
		}
		if r.Setup.Protocol == ProtocolDeluge {
			continue
		}
		data, err := r.Image.Reassemble(func(seg, pkt int) []byte {
			return n.EEPROM().Read(seg, pkt)
		})
		if err != nil {
			return fmt.Errorf("node %v: %w", n.ID(), err)
		}
		if !r.Image.Verify(data) {
			return fmt.Errorf("node %v: image mismatch", n.ID())
		}
	}
	return nil
}
