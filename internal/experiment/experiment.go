// Package experiment assembles full simulated deployments — topology,
// channel, protocol fleet, metrics — and reproduces the paper's
// evaluation artifacts: each table and figure has a Spec that runs the
// corresponding workload and renders the same rows or series the paper
// reports.
package experiment

import (
	"fmt"
	"strings"
	"time"

	// The protocol packages register themselves with protoreg from
	// init; the experiment layer builds them only through the registry.
	// core is imported by name for the typed MNP tuning hook.
	_ "mnp/internal/deluge"
	_ "mnp/internal/moap"
	_ "mnp/internal/xnp"

	"mnp/internal/core"
	"mnp/internal/engine"
	"mnp/internal/faults"
	"mnp/internal/image"
	"mnp/internal/invariant"
	"mnp/internal/metrics"
	"mnp/internal/node"
	"mnp/internal/packet"
	"mnp/internal/protoreg"
	"mnp/internal/radio"
	"mnp/internal/sim"
	"mnp/internal/telemetry"
	"mnp/internal/topology"
)

// ProtocolKind selects the dissemination protocol under test.
type ProtocolKind int

// Protocols available to experiments.
const (
	ProtocolMNP ProtocolKind = iota + 1
	ProtocolDeluge
	ProtocolMOAP
	ProtocolXNP
)

// String returns the protocol name.
func (p ProtocolKind) String() string {
	switch p {
	case ProtocolMNP:
		return "MNP"
	case ProtocolDeluge:
		return "Deluge"
	case ProtocolMOAP:
		return "MOAP"
	case ProtocolXNP:
		return "XNP"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// RegistryName maps the kind to its protoreg registration ("mnp",
// "deluge", "moap", "xnp"); unknown kinds return "".
func (p ProtocolKind) RegistryName() string {
	switch p {
	case ProtocolMNP:
		return "mnp"
	case ProtocolDeluge:
		return "deluge"
	case ProtocolMOAP:
		return "moap"
	case ProtocolXNP:
		return "xnp"
	default:
		return ""
	}
}

// ProtocolByName resolves a registry name (case-insensitive) to its
// kind — the inverse of RegistryName, used by scenario files and CLIs.
func ProtocolByName(name string) (ProtocolKind, bool) {
	for _, p := range []ProtocolKind{ProtocolMNP, ProtocolDeluge, ProtocolMOAP, ProtocolXNP} {
		if strings.EqualFold(name, p.RegistryName()) {
			return p, true
		}
	}
	return 0, false
}

// Setup describes one simulated deployment.
type Setup struct {
	// Name labels reports.
	Name string
	// Rows and Cols define the grid; Spacing is in feet.
	Rows, Cols int
	Spacing    float64
	// Layout, when non-nil, overrides the grid entirely (e.g. a random
	// placement from topology.ConnectedRandom).
	Layout *topology.Layout
	// ImagePackets is the program size in 22-byte packets (e.g. 100
	// for the testbed experiments, 640 for 5 segments). The image is
	// segmented into 128-packet segments.
	ImagePackets int
	// ImageData, when non-nil, disseminates exactly these bytes
	// instead of a random image of ImagePackets packets (e.g. an
	// imgdiff patch).
	ImageData []byte
	// Protocol selects the dissemination protocol (default MNP).
	Protocol ProtocolKind
	// ProtocolOptions are declarative, protocol-specific knobs applied
	// to every node after the package defaults (keys are defined by
	// each protocol's register.go — e.g. "no_sleep", "data_interval"
	// for MNP). They are the serializable face of the tuning closures:
	// scenario files compile into this map. Nil keeps the defaults,
	// byte-identical to earlier releases.
	ProtocolOptions map[string]string
	// BaseID places the base station (default node 0, a grid corner).
	// The paper's scaling argument puts it at the center of a 4x
	// larger network.
	BaseID packet.NodeID
	// Power is the TinyOS transmit power level (default PowerSim).
	Power int
	// Seed drives every random choice in the run.
	Seed int64
	// Radio overrides the channel model when non-nil.
	Radio *radio.Params
	// MNP tweaks the core protocol configuration (MNP runs only).
	MNP func(id packet.NodeID, c *core.Config)
	// Battery assigns initial battery fractions (default 1.0).
	Battery func(id packet.NodeID) float64
	// Limit bounds the simulated time (default 12 h).
	Limit time.Duration
	// Observer, when non-nil, receives node observations alongside the
	// metrics collector (e.g. a trace.Log).
	Observer node.Observer
	// Faults, when non-nil, is a fault plan scheduled onto the kernel
	// before the run starts (crashes, reboots, partitions, EEPROM
	// errors). Plans are seeded from Seed and fully reproducible.
	Faults *faults.Plan
	// Invariants, when non-nil, attaches an online protocol-invariant
	// checker to the run. Build fills the clock, neighborhood, and
	// airtime hooks; set fields like AllowRadioOnInSleep or
	// SenderOverlapBudget here. Use &invariant.Config{} for defaults.
	Invariants *invariant.Config
	// Telemetry, when non-nil, streams the run as NDJSON: a meta record,
	// the fault plan, every observation, every invariant violation, and
	// a final counters summary. Nil (the default) leaves the run
	// byte-identical to an uninstrumented one.
	Telemetry *telemetry.Recorder
	// Shards splits the deployment into that many spatially contiguous
	// shards run in conservative lockstep by internal/engine. 0 (the
	// default) takes the package default (SetDefaultShards); 1 runs the
	// classic single-kernel path, byte-identical to earlier releases.
	// Sharded runs are deterministic functions of (Seed, Shards) but
	// not bitwise identical to sequential ones — see DESIGN.md §4f.
	Shards int
	// Workers bounds the sharded engine's parallelism: <= 1 advances
	// shards inline on the calling goroutine (identical results, no
	// goroutines), anything larger runs one goroutine per shard, and 0
	// picks a mode from the host CPU count. Ignored when Shards <= 1.
	Workers int
}

// defaultShards is what Setups that leave Shards zero get; mnpexp's
// -shards flag reaches the predefined spec Setups through it.
var defaultShards = 1

// SetDefaultShards sets the shard count for Setups that do not choose
// one. n < 1 resets to the sequential default. Not safe to call
// concurrently with Build.
func SetDefaultShards(n int) {
	if n < 1 {
		n = 1
	}
	defaultShards = n
}

func (s Setup) withDefaults() Setup {
	if s.Spacing == 0 {
		s.Spacing = 10
	}
	if s.ImagePackets == 0 {
		s.ImagePackets = image.DefaultSegmentPackets
	}
	if s.Protocol == 0 {
		s.Protocol = ProtocolMNP
	}
	if s.Power == 0 {
		s.Power = radio.PowerSim
	}
	if s.Limit == 0 {
		s.Limit = 12 * time.Hour
	}
	if s.Shards == 0 {
		s.Shards = defaultShards
	}
	return s
}

// Validate rejects malformed deployment descriptions with descriptive
// errors before Build constructs anything. Build calls it (after
// applying defaults); call it directly to vet user input early.
func (s Setup) Validate() error {
	n := 0
	if s.Layout != nil {
		n = s.Layout.N()
	} else {
		if s.Rows <= 0 || s.Cols <= 0 {
			return fmt.Errorf("experiment %s: grid %dx%d is invalid: rows and cols must be positive", s.Name, s.Rows, s.Cols)
		}
		if s.Spacing <= 0 {
			return fmt.Errorf("experiment %s: spacing %g ft must be positive", s.Name, s.Spacing)
		}
		n = s.Rows * s.Cols
	}
	if n == 0 {
		return fmt.Errorf("experiment %s: layout has no nodes", s.Name)
	}
	if s.Shards < 1 {
		return fmt.Errorf("experiment %s: shard count %d must be at least 1", s.Name, s.Shards)
	}
	if s.Shards > n {
		return fmt.Errorf("experiment %s: %d shards exceed the %d-node deployment", s.Name, s.Shards, n)
	}
	if s.ImagePackets < 0 {
		return fmt.Errorf("experiment %s: image size %d packets is negative", s.Name, s.ImagePackets)
	}
	if s.Limit < 0 {
		return fmt.Errorf("experiment %s: time limit %v is negative", s.Name, s.Limit)
	}
	// Protocol 0 is "unset" (Build defaults it to MNP); anything else
	// must map to a registered protocol rather than falling through to
	// a default branch at build time.
	if s.Protocol != 0 {
		name := s.Protocol.RegistryName()
		if name == "" {
			return fmt.Errorf("experiment %s: unknown protocol kind %d (valid: %s)",
				s.Name, int(s.Protocol), strings.Join(protoreg.Names(), ", "))
		}
		if _, ok := protoreg.Lookup(name); !ok {
			return fmt.Errorf("experiment %s: protocol %q is not registered", s.Name, name)
		}
	}
	if len(s.ProtocolOptions) > 0 {
		name := s.Protocol.RegistryName()
		if name == "" {
			name = ProtocolMNP.RegistryName()
		}
		if err := protoreg.ValidateOptions(name, s.ProtocolOptions); err != nil {
			return fmt.Errorf("experiment %s: %w", s.Name, err)
		}
	}
	return nil
}

// Result is a completed run plus everything needed to render reports.
type Result struct {
	Setup     Setup
	Layout    *topology.Layout
	Medium    *radio.Medium
	Network   *node.Network
	Collector *metrics.Collector
	Image     *image.Image
	Kernel    *sim.Kernel

	// Engine drives a sharded run (Setup.Shards > 1); nil on the
	// sequential path. Kernel and Medium are nil when Engine is set —
	// no single pair exists — and Collector holds the deterministic
	// cross-shard merge, available once the run finishes.
	Engine *engine.Engine
	// Now is the run's observation clock: Kernel.Now sequentially, the
	// engine's replay-aware clock when sharded. Bind lazily-clocked
	// observers (trace logs, telemetry recorders) to it.
	Now func() time.Duration

	// Invariants is the attached checker, nil unless Setup.Invariants
	// was set.
	Invariants *invariant.Checker

	// Completed reports whether every node finished within Limit.
	Completed bool
	// CompletionTime is the instant the last node completed.
	CompletionTime time.Duration

	// Per-shard state merged by RunToCompletion.
	shardCollectors []*metrics.Collector
	shardOf         []int
}

// Run executes the deployment until full coverage or the time limit.
func Run(s Setup) (*Result, error) {
	res, err := Build(s)
	if err != nil {
		return nil, err
	}
	res.RunToCompletion()
	res.FinishTelemetry()
	return res, nil
}

// RunToCompletion starts every node, drives the simulation (whichever
// engine Build selected) until full coverage or the time limit, and
// finalizes the result's merged collector. Callers needing to schedule
// instrumentation between Build and the run use it in place of driving
// res.Kernel by hand; sequential results can still be driven manually.
func (r *Result) RunToCompletion() {
	r.Network.Start()
	if r.Engine != nil {
		r.Completed = r.Engine.RunUntil(r.Network.AllCompleted, r.Setup.Limit)
	} else {
		r.Completed = r.Network.RunUntilComplete(r.Setup.Limit)
	}
	r.CompletionTime = r.Network.CompletionTime()
	r.finalizeShards()
}

// finalizeShards merges per-shard collectors into Result.Collector
// deterministically (per-node rows from the owning shard, summed
// timelines, (time, node)-merged sender logs). A no-op sequentially.
func (r *Result) finalizeShards() {
	if r.Engine == nil || r.Collector != nil {
		return
	}
	merged, err := metrics.MergeShards(r.shardCollectors, r.shardOf)
	if err != nil {
		// The collectors and owner map were built together in Build;
		// a mismatch is a harness bug, not a runtime condition.
		panic(fmt.Sprintf("experiment %s: merging shard collectors: %v", r.Setup.Name, err))
	}
	r.Collector = merged
}

// FinishTelemetry emits the final counters summary to the attached
// telemetry recorder. Run calls it automatically; callers driving the
// kernel themselves (after Build) call it once the run is over.
func (r *Result) FinishTelemetry() {
	if r.Setup.Telemetry == nil {
		return
	}
	until := r.CompletionTime
	if !r.Completed {
		until = r.Setup.Limit
	}
	r.Setup.Telemetry.Summary(telemetry.CountersFromSnapshot(r.Collector.Snapshot(until)).Snapshot())
}

// Build constructs the deployment without starting the protocols, so
// callers can schedule fault injection or custom instrumentation first;
// follow with res.Network.Start() and drive res.Kernel directly.
func Build(s Setup) (*Result, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	raw := s.ImageData
	if raw == nil {
		raw = make([]byte, s.ImagePackets*image.DefaultPayloadSize)
		fill := sim.New(s.Seed + 77)
		fill.Rand().Read(raw)
	}
	img, err := image.New(1, raw)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	layout := s.Layout
	if layout == nil {
		var err error
		layout, err = topology.Grid(s.Rows, s.Cols, s.Spacing)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
		}
	}
	if int(s.BaseID) >= layout.N() {
		return nil, fmt.Errorf("experiment %s: base %v outside the %d-node layout", s.Name, s.BaseID, layout.N())
	}
	if s.Shards > 1 {
		return buildSharded(s, img, layout)
	}
	// Events scale with nodes (a few timers and an in-flight frame
	// each); sizing the heap up front keeps 10k-node runs from
	// re-growing it mid-run. Capacity never affects event order.
	kernel := sim.NewSized(s.Seed, 4*layout.N())
	rp := radio.DefaultParams()
	if s.Radio != nil {
		rp = *s.Radio
	}
	medium, err := radio.NewMedium(kernel, layout, rp, s.Seed+1)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	rangeFt, err := medium.RangeFor(s.Power)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	collector, err := metrics.NewCollector(metrics.Config{
		Layout:            layout,
		Airtime:           medium.Airtime,
		NeighborhoodRange: rangeFt,
	}, kernel.Now)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	medium.SetSink(collector)

	factory := s.protocolFactory(img)
	var checker *invariant.Checker
	var obs node.Observer = collector
	observers := node.MultiObserver{collector}
	if s.Observer != nil {
		observers = append(observers, s.Observer)
	}
	if s.Telemetry != nil {
		// The stream opens with the run's identity, then the full fault
		// plan — emitted up front so a reader of a truncated stream still
		// knows what was going to be injected.
		s.Telemetry.Meta(s.Name, s.Seed, layout.N(), img.TotalPackets(), s.Protocol.String())
		if s.Faults != nil {
			for _, ev := range s.Faults.Events {
				s.Telemetry.Fault(ev.At, ev.Kind.String(), ev.Describe())
			}
		}
		observers = append(observers, s.Telemetry)
	}
	if s.Invariants != nil {
		icfg := *s.Invariants
		icfg.Now = kernel.Now
		icfg.Airtime = medium.Airtime
		icfg.Neighbor = func(a, b packet.NodeID) bool {
			d, err := layout.Distance(a, b)
			return err == nil && d <= rangeFt
		}
		if s.Telemetry != nil {
			rec, prev := s.Telemetry, icfg.OnViolation
			icfg.OnViolation = func(v invariant.Violation) {
				rec.Violation(v.At, v.Node, v.Rule, v.Detail)
				if prev != nil {
					prev(v)
				}
			}
		}
		checker, err = invariant.New(icfg)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
		}
		observers = append(observers, checker)
		medium.SetTap(checker.PacketSent)
	}
	if len(observers) > 1 {
		obs = observers
	}
	nw, err := node.NewNetwork(kernel, medium, layout, factory, obs)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	if s.Faults != nil {
		err := s.Faults.Apply(faults.Env{
			Kernel:  kernel,
			Network: nw,
			Medium:  medium,
			Seed:    s.Seed,
			Base:    s.BaseID,
		})
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
		}
	}
	return &Result{
		Setup:     s,
		Layout:    layout,
		Medium:    medium,
		Network:   nw,
		Collector: collector,
		Image:     img,
		Kernel:    kernel,
		Now:       kernel.Now,

		Invariants: checker,
	}, nil
}

// protocolFactory builds the per-node protocol factory shared by the
// sequential and sharded paths by resolving the configured protocol in
// the registry (each protocol package registers itself from init).
// Validate has already vetted the kind and the option map, so the
// builder cannot fail per node.
func (s Setup) protocolFactory(img *image.Image) node.Factory {
	name := s.Protocol.RegistryName()
	builder, ok := protoreg.Lookup(name)
	if !ok {
		// Unreachable after Validate; a nil factory would be a silent
		// misconfiguration, so fail loudly.
		panic(fmt.Sprintf("experiment %s: protocol %q not registered", s.Name, name))
	}
	var tune any
	if s.MNP != nil {
		tune = s.MNP
	}
	return func(id packet.NodeID) (node.Protocol, node.Config) {
		ncfg := node.Config{TxPower: s.Power}
		if s.Battery != nil {
			ncfg.Battery = s.Battery(id)
		}
		p, err := builder(protoreg.Build{
			ID:      id,
			Base:    id == s.BaseID,
			Image:   img,
			Options: s.ProtocolOptions,
			Tune:    tune,
		})
		if err != nil {
			panic(fmt.Sprintf("experiment %s: building %s for node %v: %v", s.Name, name, id, err))
		}
		return p, ncfg
	}
}

// buildSharded assembles the K-shard deployment: one kernel, radio
// shard, and collector per partition over a shared channel geometry,
// nodes pinned to the shard owning them, and single-instance observers
// (trace logs, telemetry, the invariant checker) fed through the
// engine's deterministic barrier replay.
func buildSharded(s Setup, img *image.Image, layout *topology.Layout) (*Result, error) {
	rp := radio.DefaultParams()
	if s.Radio != nil {
		rp = *s.Radio
	}
	geo, err := radio.NewGeometry(layout, rp, s.Seed+1)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	rangeFt, err := geo.RangeFor(s.Power)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	parts, err := engine.Partition(layout, s.Shards)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	shardOf := make([]int, layout.N())
	shards := make([]*engine.Shard, len(parts))
	collectors := make([]*metrics.Collector, len(parts))
	for i, owned := range parts {
		for _, id := range owned {
			shardOf[id] = i
		}
		// Distinct RNG streams per shard; the stride keeps shard seeds
		// clear of the seed+1 (link noise) and seed+77 (image fill)
		// derivations.
		kernel := sim.NewSized(s.Seed+0x5EED*int64(i+1), 4*len(owned)+64)
		medium, err := radio.NewShardMedium(kernel, geo, owned)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
		}
		collector, err := metrics.NewCollector(metrics.Config{
			Layout:            layout,
			Airtime:           geo.Airtime,
			NeighborhoodRange: rangeFt,
		}, kernel.Now)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
		}
		medium.SetSink(collector)
		collectors[i] = collector
		shards[i] = &engine.Shard{Kernel: kernel, Medium: medium, Owned: owned}
	}
	eng, err := engine.New(engine.Config{
		Window:  engine.ConservativeWindow(geo),
		Workers: s.Workers,
	}, shards)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}

	// Single-instance observers see the merged stream via barrier
	// replay, in the same relative order the sequential path wires
	// them: user observer, telemetry, invariant checker.
	var checker *invariant.Checker
	var globalObs node.MultiObserver
	if s.Observer != nil {
		globalObs = append(globalObs, s.Observer)
	}
	if s.Telemetry != nil {
		s.Telemetry.SetClock(eng.Now)
		s.Telemetry.Meta(s.Name, s.Seed, layout.N(), img.TotalPackets(), s.Protocol.String())
		if s.Faults != nil {
			for _, ev := range s.Faults.Events {
				s.Telemetry.Fault(ev.At, ev.Kind.String(), ev.Describe())
			}
		}
		globalObs = append(globalObs, s.Telemetry)
	}
	if s.Invariants != nil {
		icfg := *s.Invariants
		icfg.Now = eng.Now
		icfg.Airtime = geo.Airtime
		icfg.Neighbor = func(a, b packet.NodeID) bool {
			d, err := layout.Distance(a, b)
			return err == nil && d <= rangeFt
		}
		if s.Telemetry != nil {
			rec, prev := s.Telemetry, icfg.OnViolation
			icfg.OnViolation = func(v invariant.Violation) {
				rec.Violation(v.At, v.Node, v.Rule, v.Detail)
				if prev != nil {
					prev(v)
				}
			}
		}
		checker, err = invariant.New(icfg)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
		}
		globalObs = append(globalObs, checker)
		eng.SetTap(checker.PacketSent)
		for i, sh := range shards {
			sh.Medium.SetTap(eng.ShardObserver(i).PacketSent)
		}
	}
	buffering := len(globalObs) > 0 || checker != nil
	if len(globalObs) == 1 {
		eng.SetObserver(globalObs[0])
	} else if len(globalObs) > 1 {
		eng.SetObserver(globalObs)
	}

	place := func(id packet.NodeID) (*sim.Kernel, *radio.Medium, node.Observer) {
		sh := shards[shardOf[id]]
		var obs node.Observer = collectors[shardOf[id]]
		if buffering {
			obs = node.MultiObserver{obs, eng.ShardObserver(shardOf[id])}
		}
		return sh.Kernel, sh.Medium, obs
	}
	nw, err := node.NewPartitionedNetwork(layout, s.protocolFactory(img), place)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	if s.Faults != nil {
		clocks := make([]func() time.Duration, len(shards))
		mediums := make([]*radio.Medium, len(shards))
		for i, sh := range shards {
			clocks[i] = sh.Kernel.Now
			mediums[i] = sh.Medium
		}
		err := s.Faults.ApplySharded(faults.ShardedEnv{
			At:      eng.At,
			Network: nw,
			Mediums: mediums,
			Clocks:  clocks,
			ShardOf: func(id packet.NodeID) int { return shardOf[id] },
			Seed:    s.Seed,
			Base:    s.BaseID,
		})
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
		}
	}
	return &Result{
		Setup:   s,
		Layout:  layout,
		Network: nw,
		Image:   img,
		Engine:  eng,
		Now:     eng.Now,

		Invariants: checker,

		shardCollectors: collectors,
		shardOf:         shardOf,
	}, nil
}

// VerifyInvariants returns the checker's first recorded violation, or
// nil when no checker was attached or every invariant held.
func (r *Result) VerifyInvariants() error {
	if r.Invariants == nil {
		return nil
	}
	return r.Invariants.Err()
}

// VerifyImages checks the reliability requirement on every node and
// returns an error naming the first violation. Only MNP-geometry
// protocols (MNP, XNP, MOAP, which all use 128-packet segment slots)
// are verified packet-by-packet; Deluge uses page-numbered slots and
// is verified by completion plus write-once.
func (r *Result) VerifyImages() error {
	for _, n := range r.Network.Nodes {
		if n.Dead() {
			continue
		}
		if !n.Completed() {
			return fmt.Errorf("node %v incomplete", n.ID())
		}
		if w := n.EEPROM().MaxWriteCount(); w > 1 {
			return fmt.Errorf("node %v rewrote EEPROM (max %d writes)", n.ID(), w)
		}
		if r.Setup.Protocol == ProtocolDeluge {
			continue
		}
		data, err := r.Image.Reassemble(func(seg, pkt int) []byte {
			return n.EEPROM().Read(seg, pkt)
		})
		if err != nil {
			return fmt.Errorf("node %v: %w", n.ID(), err)
		}
		if !r.Image.Verify(data) {
			return fmt.Errorf("node %v: image mismatch", n.ID())
		}
	}
	return nil
}
