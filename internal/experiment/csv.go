package experiment

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"mnp/internal/image"
	"mnp/internal/packet"
)

// WriteCSVs regenerates the paper's series figures and writes their
// raw data as CSV files into dir (created if needed), for plotting:
//
//	f8_art.csv       node,row,col,art_s,art_no_idle_s   (Figures 8–9)
//	f10_sweep.csv    segments,kb,completion_s,art_s,art_no_idle_s
//	f11_traffic.csv  node,row,col,tx,rx                 (Figure 11)
//	f12_timeline.csv minute,advertisements,requests,data
//	f13_progress.csv t_s,fraction_complete
//
// It returns the paths written.
func WriteCSVs(dir string, seed int64) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	add := func(name string, header []string, rows [][]string) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		w := csv.NewWriter(f)
		if err := w.Write(header); err != nil {
			f.Close()
			return err
		}
		if err := w.WriteAll(rows); err != nil {
			f.Close()
			return err
		}
		w.Flush()
		if err := w.Error(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		written = append(written, path)
		return nil
	}

	// Figures 8, 9 and 11 come from one 5-segment 20x20 run.
	res, err := sim20x20("csv 20x20", seed, 5)
	if err != nil {
		return nil, err
	}
	ct := res.CompletionTime
	var artRows, trafficRows [][]string
	for i := 0; i < res.Layout.N(); i++ {
		id := packet.NodeID(i)
		r, c, _ := res.Layout.GridCoord(id)
		from, ok := res.Collector.FirstAdvertisementHeard(id)
		if !ok {
			from = 0
		}
		artRows = append(artRows, []string{
			strconv.Itoa(i), strconv.Itoa(r), strconv.Itoa(c),
			fmt.Sprintf("%.1f", res.Collector.ActiveRadioTime(id, 0, ct).Seconds()),
			fmt.Sprintf("%.1f", res.Collector.ActiveRadioTime(id, from, ct).Seconds()),
		})
		trafficRows = append(trafficRows, []string{
			strconv.Itoa(i), strconv.Itoa(r), strconv.Itoa(c),
			strconv.Itoa(res.Collector.TxCount(id)),
			strconv.Itoa(res.Collector.RxCount(id)),
		})
	}
	if err := add("f8_art.csv", []string{"node", "row", "col", "art_s", "art_no_idle_s"}, artRows); err != nil {
		return nil, err
	}
	if err := add("f11_traffic.csv", []string{"node", "row", "col", "tx", "rx"}, trafficRows); err != nil {
		return nil, err
	}

	adv := res.Collector.WindowCounts(packet.ClassAdvertisement)
	req := res.Collector.WindowCounts(packet.ClassRequest)
	data := res.Collector.WindowCounts(packet.ClassData)
	var timelineRows [][]string
	for m := 0; m < len(data); m++ {
		a, r := 0, 0
		if m < len(adv) {
			a = adv[m]
		}
		if m < len(req) {
			r = req[m]
		}
		timelineRows = append(timelineRows, []string{
			strconv.Itoa(m), strconv.Itoa(a), strconv.Itoa(r), strconv.Itoa(data[m]),
		})
	}
	if err := add("f12_timeline.csv", []string{"minute", "advertisements", "requests", "data"}, timelineRows); err != nil {
		return nil, err
	}

	// Figure 10: the program-size sweep.
	var sweepRows [][]string
	for segs := 1; segs <= 10; segs++ {
		r, err := sim20x20(fmt.Sprintf("csv F10 %d", segs), seed+int64(segs), segs)
		if err != nil {
			return nil, err
		}
		rct := r.CompletionTime
		sweepRows = append(sweepRows, []string{
			strconv.Itoa(segs),
			fmt.Sprintf("%.1f", float64(segs*image.SegmentBytes)/1024),
			fmt.Sprintf("%.1f", rct.Seconds()),
			fmt.Sprintf("%.1f", r.Collector.MeanActiveRadioTime(rct).Seconds()),
			fmt.Sprintf("%.1f", r.Collector.MeanActiveRadioTimeAfterFirstAdv(rct).Seconds()),
		})
	}
	if err := add("f10_sweep.csv", []string{"segments", "kb", "completion_s", "art_s", "art_no_idle_s"}, sweepRows); err != nil {
		return nil, err
	}

	// Figure 13: the propagation-progress curve of a single segment.
	res13, err := sim20x20("csv F13", seed, 1)
	if err != nil {
		return nil, err
	}
	ct13 := res13.CompletionTime
	var progressRows [][]string
	for pct := 0; pct <= 100; pct += 5 {
		t := ct13 * time.Duration(pct) / 100
		progressRows = append(progressRows, []string{
			fmt.Sprintf("%.1f", t.Seconds()),
			fmt.Sprintf("%.4f", res13.Collector.CompletedFractionAt(t)),
		})
	}
	if err := add("f13_progress.csv", []string{"t_s", "fraction_complete"}, progressRows); err != nil {
		return nil, err
	}
	return written, nil
}
