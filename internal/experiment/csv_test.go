package experiment

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestWriteCSVs regenerates the series figures as CSV and checks their
// structure. This runs the 20x20 workloads, so it is skipped in -short
// mode.
func TestWriteCSVs(t *testing.T) {
	if testing.Short() {
		t.Skip("CSV regeneration skipped in -short mode")
	}
	dir := t.TempDir()
	paths, err := WriteCSVs(dir, 42)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct {
		cols int
		rows int // minimum data rows
	}{
		"f8_art.csv":       {cols: 5, rows: 400},
		"f11_traffic.csv":  {cols: 5, rows: 400},
		"f12_timeline.csv": {cols: 4, rows: 5},
		"f10_sweep.csv":    {cols: 5, rows: 10},
		"f13_progress.csv": {cols: 2, rows: 21},
	}
	if len(paths) != len(want) {
		t.Fatalf("wrote %d files, want %d", len(paths), len(want))
	}
	for name, shape := range want {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		records, err := csv.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(records) < shape.rows+1 {
			t.Fatalf("%s: %d rows, want >= %d", name, len(records)-1, shape.rows)
		}
		for i, rec := range records {
			if len(rec) != shape.cols {
				t.Fatalf("%s row %d: %d columns, want %d", name, i, len(rec), shape.cols)
			}
		}
		// Data cells of the first row parse as numbers.
		for _, cell := range records[1] {
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				t.Fatalf("%s: non-numeric cell %q", name, cell)
			}
		}
	}
	// The progress curve ends at 1.0.
	f, _ := os.Open(filepath.Join(dir, "f13_progress.csv"))
	records, _ := csv.NewReader(f).ReadAll()
	f.Close()
	last := records[len(records)-1]
	if last[1] != "1.0000" {
		t.Fatalf("progress curve ends at %s, want 1.0000", last[1])
	}
}
