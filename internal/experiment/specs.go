package experiment

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"mnp/internal/core"
	"mnp/internal/energy"
	"mnp/internal/image"
	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/stats"
)

// Spec reproduces one of the paper's tables or figures.
type Spec struct {
	// ID is the experiment identifier from DESIGN.md (T1, F5…F13,
	// EDEL, A1…A4).
	ID string
	// Title describes the paper artifact.
	Title string
	// Run executes the workload and renders the report.
	Run func(seed int64) (string, error)
}

// AllSpecs returns every experiment in paper order.
func AllSpecs() []Spec {
	return []Spec{
		{ID: "T1", Title: "Table 1: power required by various Mica operations", Run: runT1},
		{ID: "F5", Title: "Figure 5: indoor 3x5 grid, power levels 3 and 4", Run: runF5},
		{ID: "F6", Title: "Figure 6: outdoor 5x5 grid, full and low power", Run: runF6},
		{ID: "F7", Title: "Figure 7: outdoor 2x10 grid, full and low power", Run: runF7},
		{ID: "F8", Title: "Figure 8: active radio time in a 20x20 network", Run: runF8},
		{ID: "F9", Title: "Figure 9: active radio time without initial idle listening", Run: runF9},
		{ID: "F10", Title: "Figure 10: completion time and ART vs program size", Run: runF10},
		{ID: "F11", Title: "Figure 11: transmission and reception distributions", Run: runF11},
		{ID: "F12", Title: "Figure 12: message types per one-minute window", Run: runF12},
		{ID: "F13", Title: "Figure 13: code propagation progress", Run: runF13},
		{ID: "EDEL", Title: "Section 5: MNP vs Deluge comparison", Run: runEDEL},
		{ID: "A1", Title: "Ablation: sender selection disabled", Run: runA1},
		{ID: "A2", Title: "Ablation: sleeping disabled", Run: runA2},
		{ID: "A3", Title: "Ablation: query/update repair phase", Run: runA3},
		{ID: "A4", Title: "Extension (section 6): battery-aware sender selection", Run: runA4},
		{ID: "A5", Title: "Extension (section 4.2): S-MAC-style idle duty cycle", Run: runA5},
		{ID: "A6", Title: "Scaling claim (section 6): 4x network with central base", Run: runA6},
	}
}

// ByID finds a spec by its identifier.
func ByID(id string) (Spec, bool) {
	for _, s := range AllSpecs() {
		if strings.EqualFold(s.ID, id) {
			return s, true
		}
	}
	return Spec{}, false
}

// --- Table 1 ---

func runT1(int64) (string, error) {
	c := energy.Table1
	var b strings.Builder
	b.WriteString("Table 1: power required by various Mica operations (nAh)\n")
	fmt.Fprintf(&b, "  %-34s %8.3f\n", "Transmitting a packet", c.TransmitPacket)
	fmt.Fprintf(&b, "  %-34s %8.3f\n", "Receiving a packet", c.ReceivePacket)
	fmt.Fprintf(&b, "  %-34s %8.3f\n", "Idle listening for 1 millisecond", c.IdleListenMs)
	fmt.Fprintf(&b, "  %-34s %8.3f\n", "EEPROM Read 16 Data bytes", c.EEPROMRead16B)
	fmt.Fprintf(&b, "  %-34s %8.3f\n", "EEPROM Write 16 Data bytes", c.EEPROMWrite16B)
	idlePerSec := c.IdleListenMs * 1000
	fmt.Fprintf(&b, "  (1 s of idle listening = %.0f nAh = %.0f packet transmissions)\n",
		idlePerSec, idlePerSec/c.TransmitPacket)
	return b.String(), nil
}

// --- Figures 5–7: testbed sender-selection experiments ---

// testbedPackets is the testbed program size: 100 packets (2.2 KB).
const testbedPackets = 100

func runTestbed(name string, rows, cols int, powers []int, seed int64) (string, error) {
	var b strings.Builder
	for _, power := range powers {
		res, err := Run(Setup{
			Name:         fmt.Sprintf("%s power %d", name, power),
			Rows:         rows,
			Cols:         cols,
			Spacing:      15,
			ImagePackets: testbedPackets,
			Power:        power,
			Seed:         seed,
			Limit:        4 * time.Hour,
		})
		if err != nil {
			return "", err
		}
		if err := res.VerifyImages(); err != nil {
			return "", fmt.Errorf("%s: %w", res.Setup.Name, err)
		}
		b.WriteString(runSummary(res))
		b.WriteString(renderParentMap(res))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func runF5(seed int64) (string, error) {
	return runTestbed("F5 indoor 3x5", 3, 5,
		[]int{radio.PowerIndoorHigh, radio.PowerIndoorLow}, seed)
}

func runF6(seed int64) (string, error) {
	return runTestbed("F6 outdoor 5x5", 5, 5,
		[]int{radio.PowerFull, radio.PowerOutdoorLow}, seed)
}

func runF7(seed int64) (string, error) {
	return runTestbed("F7 outdoor 2x10", 2, 10,
		[]int{radio.PowerFull, radio.PowerOutdoorLow}, seed)
}

// --- Figures 8–12: the 20x20 simulation ---

// sim20x20 runs the paper's main simulated workload: a 20×20 grid at
// 10 ft spacing disseminating 5 segments (640 packets, 14.1 KB).
func sim20x20(name string, seed int64, segments int) (*Result, error) {
	res, err := Run(Setup{
		Name:         name,
		Rows:         20,
		Cols:         20,
		Spacing:      10,
		ImagePackets: segments * image.DefaultSegmentPackets,
		Seed:         seed,
		Limit:        12 * time.Hour,
	})
	if err != nil {
		return nil, err
	}
	if !res.Completed {
		return nil, fmt.Errorf("%s: dissemination incomplete (%d/%d)",
			name, res.Network.CompletedCount(), len(res.Network.Nodes))
	}
	return res, nil
}

func runF8(seed int64) (string, error) {
	res, err := sim20x20("F8 20x20 ART", seed, 5)
	if err != nil {
		return "", err
	}
	ct := res.CompletionTime
	art := func(id packet.NodeID) time.Duration {
		return res.Collector.ActiveRadioTime(id, 0, ct)
	}
	var b strings.Builder
	b.WriteString(runSummary(res))
	fmt.Fprintf(&b, "average active radio time: %s (%.0f%% of completion time)\n",
		fmtDur(res.Collector.MeanActiveRadioTime(ct)),
		100*res.Collector.MeanActiveRadioTime(ct).Seconds()/ct.Seconds())
	b.WriteString(renderRingSummary(res, "active radio time", art))
	b.WriteString(renderDurationGrid(res, "active radio time by location", art))
	return b.String(), nil
}

func runF9(seed int64) (string, error) {
	res, err := sim20x20("F9 20x20 ART w/o initial idle", seed, 5)
	if err != nil {
		return "", err
	}
	ct := res.CompletionTime
	art := func(id packet.NodeID) time.Duration {
		from, ok := res.Collector.FirstAdvertisementHeard(id)
		if !ok {
			from = 0
		}
		return res.Collector.ActiveRadioTime(id, from, ct)
	}
	var b strings.Builder
	b.WriteString(runSummary(res))
	fmt.Fprintf(&b, "average active radio time without initial idle listening: %s\n",
		fmtDur(res.Collector.MeanActiveRadioTimeAfterFirstAdv(ct)))
	b.WriteString(renderRingSummary(res, "ART without initial idle", art))
	// The paper's point: this distribution is much flatter than Fig 8.
	minV, maxV := time.Duration(math.MaxInt64), time.Duration(0)
	for i := 0; i < res.Layout.N(); i++ {
		v := art(packet.NodeID(i))
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	fmt.Fprintf(&b, "spread: min %s, max %s (max/min %.1fx)\n", fmtDur(minV), fmtDur(maxV),
		maxV.Seconds()/math.Max(minV.Seconds(), 1))
	return b.String(), nil
}

func runF10(seed int64) (string, error) {
	var b strings.Builder
	b.WriteString("F10: 20x20 grid, program size 1..10 segments\n")
	b.WriteString("segments    KB   completion        ART   ART w/o initial idle\n")
	var xs, ys []float64
	for segs := 1; segs <= 10; segs++ {
		res, err := sim20x20(fmt.Sprintf("F10 %d segments", segs), seed+int64(segs), segs)
		if err != nil {
			return "", err
		}
		ct := res.CompletionTime
		fmt.Fprintf(&b, "%8d %5.1f %12s %10s %10s\n",
			segs, float64(res.Image.Size())/1024,
			fmtDur(ct),
			fmtDur(res.Collector.MeanActiveRadioTime(ct)),
			fmtDur(res.Collector.MeanActiveRadioTimeAfterFirstAdv(ct)))
		xs = append(xs, float64(segs))
		ys = append(ys, ct.Seconds())
	}
	// Linearity check the paper highlights: completion time grows
	// linearly with program size.
	line, err := stats.LinearFit(xs, ys)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "linear fit: completion = %s + %s/segment (R^2 = %.4f)\n",
		fmtDur(time.Duration(line.Intercept*float64(time.Second))),
		fmtDur(time.Duration(line.Slope*float64(time.Second))), line.R2)
	return b.String(), nil
}

func runF11(seed int64) (string, error) {
	res, err := sim20x20("F11 20x20 tx/rx distribution", seed, 5)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(runSummary(res))
	totalTx, totalRx, maxTx := 0, 0, 0
	var maxTxNode packet.NodeID
	for i := 0; i < res.Layout.N(); i++ {
		id := packet.NodeID(i)
		tx := res.Collector.TxCount(id)
		totalTx += tx
		totalRx += res.Collector.RxCount(id)
		if tx > maxTx {
			maxTx, maxTxNode = tx, id
		}
	}
	fmt.Fprintf(&b, "messages sent: total %d, mean %.0f per node, max %d at %v (base station is n0)\n",
		totalTx, float64(totalTx)/float64(res.Layout.N()), maxTx, maxTxNode)
	fmt.Fprintf(&b, "messages received: total %d, mean %.0f per node\n",
		totalRx, float64(totalRx)/float64(res.Layout.N()))
	// Center vs corner reception (the paper: center nodes receive many
	// more messages, having more neighbors).
	center := packet.NodeID(10*res.Layout.Cols() + 10)
	corner := packet.NodeID(res.Layout.N() - 1)
	fmt.Fprintf(&b, "receptions: center node %v = %d, far corner %v = %d\n",
		center, res.Collector.RxCount(center), corner, res.Collector.RxCount(corner))
	b.WriteString(renderIntGrid(res, "transmissions", res.Collector.TxCount))
	b.WriteString(renderIntGrid(res, "receptions", res.Collector.RxCount))
	return b.String(), nil
}

func runF12(seed int64) (string, error) {
	res, err := sim20x20("F12 20x20 message timeline", seed, 5)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(runSummary(res))
	adv := res.Collector.WindowCounts(packet.ClassAdvertisement)
	req := res.Collector.WindowCounts(packet.ClassRequest)
	data := res.Collector.WindowCounts(packet.ClassData)
	b.WriteString("minute  advertisements  requests  data\n")
	n := len(data)
	for m := 0; m < n; m++ {
		a, r := 0, 0
		if m < len(adv) {
			a = adv[m]
		}
		if m < len(req) {
			r = req[m]
		}
		fmt.Fprintf(&b, "%6d %15d %9d %5d\n", m, a, r, data[m])
	}
	// The paper's observation: the data rate stays nearly constant
	// through the dissemination (a smooth pipeline).
	if n > 4 {
		mid := data[1 : n-1]
		sort.Ints(append([]int(nil), mid...))
		minD, maxD := mid[0], mid[0]
		sum := 0
		for _, v := range mid {
			if v < minD {
				minD = v
			}
			if v > maxD {
				maxD = v
			}
			sum += v
		}
		fmt.Fprintf(&b, "data msgs/minute during dissemination: mean %.0f, min %d, max %d\n",
			float64(sum)/float64(len(mid)), minD, maxD)
	}
	return b.String(), nil
}

func runF13(seed int64) (string, error) {
	res, err := sim20x20("F13 propagation progress", seed, 1)
	if err != nil {
		return "", err
	}
	ct := res.CompletionTime
	var b strings.Builder
	b.WriteString(runSummary(res))
	b.WriteString("fraction of nodes holding the segment over time:\n")
	for _, pct := range []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		t := ct * time.Duration(pct) / 100
		fmt.Fprintf(&b, "  %3d%% of time (%8s): %5.1f%% of nodes\n",
			pct, fmtDur(t), 100*res.Collector.CompletedFractionAt(t))
	}
	// Diagonal-vs-edge propagation: in Deluge, hidden-terminal
	// collisions make the diagonal significantly slower than the edge;
	// MNP's sender selection removes the effect.
	var diagSum, edgeSum time.Duration
	samples := 0
	for k := 4; k <= 12; k += 2 {
		diag := packet.NodeID(k*res.Layout.Cols() + k)
		edgeDist := int(math.Round(float64(k) * math.Sqrt2))
		if edgeDist >= res.Layout.Cols() {
			edgeDist = res.Layout.Cols() - 1
		}
		edge := packet.NodeID(edgeDist)
		dt, ok1 := res.Collector.GotCodeAt(diag)
		et, ok2 := res.Collector.GotCodeAt(edge)
		if !ok1 || !ok2 {
			continue
		}
		diagSum += dt
		edgeSum += et
		samples++
	}
	if samples > 0 {
		ratio := diagSum.Seconds() / edgeSum.Seconds()
		fmt.Fprintf(&b, "MNP diagonal/edge arrival-time ratio at equal distance: %.2f (1.0 = uniform wavefront)\n", ratio)
	}
	// The contrast the paper draws with [6]: in a *dense* network,
	// Deluge's hidden-terminal collisions slow the diagonal relative
	// to the edge; MNP's sender selection removes the effect. Densify
	// the grid (4 ft spacing, ~130 neighbors per node) to expose it.
	b.WriteString("dense-network contrast (20x20 at 4 ft spacing, mean of 5 runs):\n")
	for _, proto := range []ProtocolKind{ProtocolMNP, ProtocolDeluge} {
		sum, n := 0.0, 0
		for trial := int64(0); trial < 5; trial++ {
			r, ok, err := diagEdgeRatio(proto, 4, seed+trial*31)
			if err != nil {
				return "", err
			}
			if ok {
				sum += r
				n++
			}
		}
		if n == 0 {
			fmt.Fprintf(&b, "  %-7v did not complete\n", proto)
			continue
		}
		fmt.Fprintf(&b, "  %-7v diagonal/edge arrival-time ratio: %.2f (%d runs)\n", proto, sum/float64(n), n)
	}
	return b.String(), nil
}

// diagEdgeRatio runs a single-segment dissemination and compares code
// arrival times at diagonal nodes against edge nodes at equal
// Euclidean distance from the base corner.
func diagEdgeRatio(proto ProtocolKind, spacing float64, seed int64) (float64, bool, error) {
	res, err := Run(Setup{
		Name: fmt.Sprintf("F13 contrast %v", proto), Rows: 20, Cols: 20,
		Spacing:      spacing,
		ImagePackets: image.DefaultSegmentPackets,
		Protocol:     proto, Seed: seed, Limit: 12 * time.Hour,
	})
	if err != nil {
		return 0, false, err
	}
	if !res.Completed {
		return 0, false, nil
	}
	var diagSum, edgeSum time.Duration
	samples := 0
	for k := 4; k <= 12; k += 2 {
		diag := packet.NodeID(k*res.Layout.Cols() + k)
		edgeDist := int(math.Round(float64(k) * math.Sqrt2))
		if edgeDist >= res.Layout.Cols() {
			edgeDist = res.Layout.Cols() - 1
		}
		edge := packet.NodeID(edgeDist)
		dt, ok1 := res.Collector.GotCodeAt(diag)
		et, ok2 := res.Collector.GotCodeAt(edge)
		if !ok1 || !ok2 {
			continue
		}
		diagSum += dt
		edgeSum += et
		samples++
	}
	if samples == 0 || edgeSum == 0 {
		return 0, false, nil
	}
	return diagSum.Seconds() / edgeSum.Seconds(), true, nil
}

// --- Section 5: Deluge comparison ---

func runEDEL(seed int64) (string, error) {
	var b strings.Builder
	b.WriteString("MNP vs Deluge: 20x20 grid, 5 segments (14.1 KB)\n")
	b.WriteString("protocol  completion   mean ART   ART w/o initial idle   msgs sent\n")
	for _, proto := range []ProtocolKind{ProtocolMNP, ProtocolDeluge} {
		res, err := Run(Setup{
			Name: fmt.Sprintf("EDEL %s", proto),
			Rows: 20, Cols: 20,
			ImagePackets: 5 * image.DefaultSegmentPackets,
			Protocol:     proto,
			Seed:         seed,
			Limit:        12 * time.Hour,
		})
		if err != nil {
			return "", err
		}
		if !res.Completed {
			return "", fmt.Errorf("%s incomplete", proto)
		}
		ct := res.CompletionTime
		totalTx := 0
		for i := 0; i < res.Layout.N(); i++ {
			totalTx += res.Collector.TxCount(packet.NodeID(i))
		}
		fmt.Fprintf(&b, "%-9s %10s %10s %20s %11d\n", proto,
			fmtDur(ct),
			fmtDur(res.Collector.MeanActiveRadioTime(ct)),
			fmtDur(res.Collector.MeanActiveRadioTimeAfterFirstAdv(ct)),
			totalTx)
	}
	b.WriteString("(Deluge keeps its radio on for the whole run: its idle listening time equals\n" +
		" the completion time; MNP trades moderately longer completion for far less\n" +
		" active radio time, the dominant energy cost)\n")
	return b.String(), nil
}

// --- Ablations ---

func runA1(seed int64) (string, error) {
	var b strings.Builder
	b.WriteString("A1: sender selection on vs off (10x10, 2 segments)\n")
	b.WriteString("variant            completion  concurrent-senders  collisions\n")
	for _, off := range []bool{false, true} {
		res, err := Run(Setup{
			Name: fmt.Sprintf("A1 selection-off=%v", off),
			Rows: 10, Cols: 10,
			ImagePackets: 2 * image.DefaultSegmentPackets,
			Seed:         seed,
			Limit:        12 * time.Hour,
			MNP: func(_ packet.NodeID, c *core.Config) {
				c.NoSenderSelection = off
			},
		})
		if err != nil {
			return "", err
		}
		collisions := 0
		for i := 0; i < res.Layout.N(); i++ {
			collisions += res.Collector.Collisions(packet.NodeID(i))
		}
		name := "with selection"
		if off {
			name = "without selection"
		}
		fmt.Fprintf(&b, "%-18s %11s %19d %11d\n", name, fmtDur(res.CompletionTime),
			res.Collector.ConcurrencyViolations(), collisions)
	}
	return b.String(), nil
}

func runA2(seed int64) (string, error) {
	var b strings.Builder
	b.WriteString("A2: sleeping on vs off (10x10, 2 segments)\n")
	b.WriteString("variant        completion   mean ART   ART/completion\n")
	for _, off := range []bool{false, true} {
		res, err := Run(Setup{
			Name: fmt.Sprintf("A2 nosleep=%v", off),
			Rows: 10, Cols: 10,
			ImagePackets: 2 * image.DefaultSegmentPackets,
			Seed:         seed,
			Limit:        12 * time.Hour,
			MNP: func(_ packet.NodeID, c *core.Config) {
				c.NoSleep = off
			},
		})
		if err != nil {
			return "", err
		}
		ct := res.CompletionTime
		art := res.Collector.MeanActiveRadioTime(ct)
		name := "with sleep"
		if off {
			name = "without sleep"
		}
		fmt.Fprintf(&b, "%-14s %10s %10s %13.0f%%\n", name, fmtDur(ct), fmtDur(art),
			100*art.Seconds()/ct.Seconds())
	}
	return b.String(), nil
}

func runA3(seed int64) (string, error) {
	lossy := radio.DefaultParams()
	lossy.BERFloor = 5e-4
	lossy.BERCeil = 3e-2
	var b strings.Builder
	b.WriteString("A3: query/update repair on vs off (lossy 6x6, 1 segment)\n")
	b.WriteString("variant         completion   data msgs sent\n")
	for _, off := range []bool{false, true} {
		res, err := Run(Setup{
			Name: fmt.Sprintf("A3 repair-off=%v", off),
			Rows: 6, Cols: 6,
			ImagePackets: image.DefaultSegmentPackets,
			Seed:         seed,
			Radio:        &lossy,
			Limit:        12 * time.Hour,
			MNP: func(_ packet.NodeID, c *core.Config) {
				c.QueryUpdate = !off
			},
		})
		if err != nil {
			return "", err
		}
		dataTx := 0
		for i := 0; i < res.Layout.N(); i++ {
			dataTx += res.Collector.TxByClass(packet.NodeID(i), packet.ClassData)
		}
		name := "with repair"
		if off {
			name = "without repair"
		}
		fmt.Fprintf(&b, "%-15s %10s %16d\n", name, fmtDur(res.CompletionTime), dataTx)
	}
	return b.String(), nil
}

func runA4(seed int64) (string, error) {
	var b strings.Builder
	b.WriteString("A4: battery-aware sender selection (8x8 at 12 ft, 2 segments; odd nodes at 10% battery)\n")
	b.WriteString("variant          low-batt elections  healthy elections  low-batt data tx  healthy data tx\n")
	// Average over a few seeds: single runs of a 64-node grid are noisy.
	const trials = 3
	for _, aware := range []bool{false, true} {
		var lowElect, highElect, lowData, highData int
		for trial := 0; trial < trials; trial++ {
			res, err := Run(Setup{
				Name: fmt.Sprintf("A4 aware=%v trial %d", aware, trial),
				Rows: 8, Cols: 8,
				Spacing:      12,
				ImagePackets: 2 * image.DefaultSegmentPackets,
				Seed:         seed + int64(trial)*101,
				Limit:        12 * time.Hour,
				Battery: func(id packet.NodeID) float64 {
					if id%2 == 1 {
						return 0.1
					}
					return 1.0
				},
				MNP: func(_ packet.NodeID, c *core.Config) {
					c.BatteryAware = aware
					c.LowPower = radio.PowerWeak
				},
			})
			if err != nil {
				return "", err
			}
			for _, ev := range res.Collector.SenderEvents() {
				if ev.Node%2 == 1 {
					lowElect++
				} else {
					highElect++
				}
			}
			for i := 0; i < res.Layout.N(); i++ {
				id := packet.NodeID(i)
				d := res.Collector.TxByClass(id, packet.ClassData)
				if id%2 == 1 {
					lowData += d
				} else {
					highData += d
				}
			}
		}
		name := "power uniform"
		if aware {
			name = "battery-aware"
		}
		fmt.Fprintf(&b, "%-16s %19d %18d %17d %16d\n", name, lowElect, highElect, lowData, highData)
	}
	b.WriteString("(battery-aware advertising shifts forwarding duty toward healthy nodes)\n")
	return b.String(), nil
}

func runA5(seed int64) (string, error) {
	// The paper (§4.2): "we can use a protocol such as S-MAC or SS-TDMA
	// … a node could sleep for most of the time before the propagation
	// wave arrives." Here the idle state duty-cycles 25% until first
	// contact; Figure 9 predicted the achievable saving.
	var b strings.Builder
	b.WriteString("A5: S-MAC-style idle duty cycle before first contact (20x20, 5 segments)\n")
	b.WriteString("variant            completion   mean ART   ART/completion\n")
	for _, duty := range []bool{false, true} {
		res, err := Run(Setup{
			Name: fmt.Sprintf("A5 duty=%v", duty),
			Rows: 20, Cols: 20,
			ImagePackets: 5 * image.DefaultSegmentPackets,
			Seed:         seed,
			Limit:        12 * time.Hour,
			MNP: func(_ packet.NodeID, c *core.Config) {
				c.IdleDutyCycle = duty
				c.IdleOnPeriod = 500 * time.Millisecond
				c.IdleOffPeriod = 1500 * time.Millisecond
			},
		})
		if err != nil {
			return "", err
		}
		if !res.Completed {
			return "", fmt.Errorf("A5 duty=%v incomplete", duty)
		}
		ct := res.CompletionTime
		art := res.Collector.MeanActiveRadioTime(ct)
		name := "always listening"
		if duty {
			name = "25% idle duty"
		}
		fmt.Fprintf(&b, "%-18s %10s %10s %13.0f%%\n", name, fmtDur(ct), fmtDur(art),
			100*art.Seconds()/ct.Seconds())
	}
	b.WriteString("(duty-cycling the pre-contact idle state recovers much of the Figure 9 saving)\n")
	return b.String(), nil
}

func runA6(seed int64) (string, error) {
	// §6: "in our experiments and simulation, we kept the base station
	// at the corner. Hence, we expect that this algorithm can be easily
	// extended to the case where the network size is 4 times larger
	// (twice the length and breadth) and the base station is in the
	// center."
	var b strings.Builder
	b.WriteString("A6: scaling — 20x20 corner base vs 40x40 (4x nodes) central base, 2 segments\n")
	b.WriteString("deployment            nodes  completion   mean ART\n")
	type variant struct {
		name       string
		rows, cols int
		base       packet.NodeID
	}
	variants := []variant{
		{name: "20x20, corner base", rows: 20, cols: 20, base: 0},
		{name: "40x40, center base", rows: 40, cols: 40, base: packet.NodeID(20*40 + 20)},
	}
	var completions []time.Duration
	for _, v := range variants {
		res, err := Run(Setup{
			Name: v.name, Rows: v.rows, Cols: v.cols,
			ImagePackets: 2 * image.DefaultSegmentPackets,
			BaseID:       v.base,
			Seed:         seed,
			Limit:        12 * time.Hour,
		})
		if err != nil {
			return "", err
		}
		if !res.Completed {
			return "", fmt.Errorf("A6 %s incomplete (%d/%d)", v.name,
				res.Network.CompletedCount(), res.Layout.N())
		}
		ct := res.CompletionTime
		fmt.Fprintf(&b, "%-21s %5d %11s %10s\n", v.name, res.Layout.N(),
			fmtDur(ct), fmtDur(res.Collector.MeanActiveRadioTime(ct)))
		completions = append(completions, ct)
	}
	fmt.Fprintf(&b, "completion ratio (4x network / baseline): %.2f — the paper predicts ~1\n",
		completions[1].Seconds()/completions[0].Seconds())
	return b.String(), nil
}
