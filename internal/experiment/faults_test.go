package experiment

import (
	"testing"
	"time"

	"mnp/internal/packet"
)

// TestRandomNodeDeathsDuringDissemination kills a series of random
// non-base nodes while the wave is in flight. The dense 8x8 grid stays
// connected, so the paper's coverage requirement applies to the
// survivors — all of them must still complete with byte-identical
// images.
func TestRandomNodeDeathsDuringDissemination(t *testing.T) {
	res2, err := Build(Setup{
		Name: "faults2", Rows: 8, Cols: 8, ImagePackets: 128, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := res2.Kernel.Rand()
	killed := make(map[packet.NodeID]bool)
	for i := 0; i < 6; i++ {
		at := time.Duration(20+i*25) * time.Second
		res2.Kernel.MustSchedule(at, func() {
			// Pick a live non-base victim.
			for tries := 0; tries < 20; tries++ {
				id := packet.NodeID(1 + rng.Intn(res2.Layout.N()-1))
				if !killed[id] {
					killed[id] = true
					res2.Network.Node(id).Kill()
					return
				}
			}
		})
	}
	res2.Network.Start()
	if !res2.Network.RunUntilComplete(6 * time.Hour) {
		t.Fatalf("survivors incomplete: %d/%d live",
			res2.Network.CompletedCount(), res2.Layout.N()-len(killed))
	}
	if len(killed) == 0 {
		t.Fatal("no nodes were killed")
	}
	for _, n := range res2.Network.Nodes {
		if n.Dead() {
			continue
		}
		data, err := res2.Image.Reassemble(func(seg, pkt int) []byte {
			return n.EEPROM().Read(seg, pkt)
		})
		if err != nil {
			t.Fatalf("survivor %v: %v", n.ID(), err)
		}
		if !res2.Image.Verify(data) {
			t.Fatalf("survivor %v image mismatch", n.ID())
		}
	}
}

// TestBaseStationDiesAfterSeeding kills the base once a third of the
// network has the code; the remaining sources must finish coverage.
func TestBaseStationDiesAfterSeeding(t *testing.T) {
	res, err := Build(Setup{
		Name: "base-death", Rows: 5, Cols: 5, ImagePackets: 128, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Network.Start()
	baseKilled := false
	done := res.Kernel.RunUntil(func() bool {
		if !baseKilled && res.Network.CompletedCount() >= res.Layout.N()/3 {
			baseKilled = true
			res.Network.Node(0).Kill()
		}
		return res.Network.AllCompleted()
	}, 6*time.Hour)
	if !baseKilled {
		t.Fatal("base was never killed")
	}
	if !done {
		t.Fatalf("coverage incomplete after base death: %d/%d",
			res.Network.CompletedCount(), res.Layout.N())
	}
}

// TestKilledMidTransferSenderRecovers kills whichever node first
// becomes a non-base sender, mid-stream; its children must fail over
// to other sources.
func TestKilledMidTransferSenderRecovers(t *testing.T) {
	res, err := Build(Setup{
		Name: "sender-death", Rows: 4, Cols: 4, Spacing: 15, ImagePackets: 256, Seed: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Network.Start()
	var victim packet.NodeID
	victimKilled := false
	done := res.Kernel.RunUntil(func() bool {
		if !victimKilled {
			for _, ev := range res.Collector.SenderEvents() {
				if ev.Node != 0 {
					victim = ev.Node
					victimKilled = true
					// Let it stream briefly, then kill it mid-transfer.
					res.Kernel.MustSchedule(500*time.Millisecond, func() {
						res.Network.Node(victim).Kill()
					})
					break
				}
			}
		}
		return res.Network.AllCompleted()
	}, 6*time.Hour)
	if !victimKilled {
		t.Skip("no non-base sender emerged")
	}
	if !done {
		t.Fatalf("network did not recover from sender %v's death: %d/%d",
			victim, res.Network.CompletedCount(), res.Layout.N())
	}
}
