package experiment

import (
	"testing"
	"time"

	"mnp/internal/faults"
	"mnp/internal/invariant"
	"mnp/internal/packet"
)

// TestRandomNodeDeathsDuringDissemination kills a series of random
// non-base nodes while the wave is in flight, using a declarative
// fault plan (victims are drawn from the plan's seeded RNG, so the
// same seed always kills the same nodes). The dense 8x8 grid stays
// connected, so the paper's coverage requirement applies to the
// survivors — all of them must still complete with byte-identical
// images, and no protocol invariant may break along the way.
func TestRandomNodeDeathsDuringDissemination(t *testing.T) {
	res, err := Run(Setup{
		Name: "faults2", Rows: 8, Cols: 8, ImagePackets: 128, Seed: 22,
		Limit: 6 * time.Hour,
		Faults: &faults.Plan{Events: []faults.Event{
			faults.RandomCrashes(6, 20*time.Second, 145*time.Second),
		}},
		Invariants: &invariant.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	killed := 0
	for _, n := range res.Network.Nodes {
		if n.Dead() {
			killed++
		}
	}
	if killed != 6 {
		t.Fatalf("killed %d nodes, want 6", killed)
	}
	if !res.Completed {
		t.Fatalf("survivors incomplete: %d/%d live",
			res.Network.CompletedCount(), res.Layout.N()-killed)
	}
	if err := res.VerifyImages(); err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBaseStationDiesAfterSeeding kills the base once a third of the
// network has the code; the remaining sources must finish coverage.
func TestBaseStationDiesAfterSeeding(t *testing.T) {
	res, err := Build(Setup{
		Name: "base-death", Rows: 5, Cols: 5, ImagePackets: 128, Seed: 23,
		Invariants: &invariant.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Network.Start()
	baseKilled := false
	done := res.Kernel.RunUntil(func() bool {
		if !baseKilled && res.Network.CompletedCount() >= res.Layout.N()/3 {
			baseKilled = true
			res.Network.Node(0).Kill()
		}
		return res.Network.AllCompleted()
	}, 6*time.Hour)
	if !baseKilled {
		t.Fatal("base was never killed")
	}
	if !done {
		t.Fatalf("coverage incomplete after base death: %d/%d",
			res.Network.CompletedCount(), res.Layout.N())
	}
	if err := res.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestKilledMidTransferSenderRecovers kills whichever node first
// becomes a non-base sender, mid-stream; its children must fail over
// to other sources.
func TestKilledMidTransferSenderRecovers(t *testing.T) {
	res, err := Build(Setup{
		Name: "sender-death", Rows: 4, Cols: 4, Spacing: 15, ImagePackets: 256, Seed: 24,
		Invariants: &invariant.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Network.Start()
	var victim packet.NodeID
	victimKilled := false
	done := res.Kernel.RunUntil(func() bool {
		if !victimKilled {
			for _, ev := range res.Collector.SenderEvents() {
				if ev.Node != 0 {
					victim = ev.Node
					victimKilled = true
					// Let it stream briefly, then kill it mid-transfer.
					res.Kernel.MustSchedule(500*time.Millisecond, func() {
						res.Network.Node(victim).Kill()
					})
					break
				}
			}
		}
		return res.Network.AllCompleted()
	}, 6*time.Hour)
	if !victimKilled {
		t.Skip("no non-base sender emerged")
	}
	if !done {
		t.Fatalf("network did not recover from sender %v's death: %d/%d",
			victim, res.Network.CompletedCount(), res.Layout.N())
	}
	if err := res.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}
