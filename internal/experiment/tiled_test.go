package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"
	"time"

	"mnp/internal/engine"
	"mnp/internal/faults"
	"mnp/internal/invariant"
	"mnp/internal/metrics"
	"mnp/internal/node"
	"mnp/internal/packet"
)

// tiledDigest runs a setup and folds the complete observable outcome —
// completion verdict and time, aggregate traffic, and every node's
// (completed, time, slots) row — into one hash, the same shape the
// root goldenSharded test pins. Two runs with equal digests reached
// byte-identical simulation states.
func tiledDigest(t *testing.T, s Setup) (string, *Result) {
	t.Helper()
	res, err := Run(s)
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	if !res.Completed {
		t.Fatalf("%s: incomplete: %d/%d", s.Name, res.Network.CompletedCount(), res.Layout.N())
	}
	if res.Invariants != nil {
		if err := res.VerifyInvariants(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
	snap := res.Collector.Snapshot(res.CompletionTime)
	var b strings.Builder
	fmt.Fprintf(&b, "completed=%v at=%v tx=%d rx=%d collisions=%d senders=%d\n",
		res.Completed, res.CompletionTime, snap.Tx, snap.Rx, snap.Collisions, snap.SenderEvents)
	for _, n := range res.Network.Nodes {
		fmt.Fprintf(&b, "%v completed=%v at=%v slots=%d\n",
			n.ID(), n.Completed(), n.CompletedAt(), n.EEPROM().Slots())
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:]), res
}

// TestTiledEquivalenceMatrix is the headline determinism property of
// the tiled engine: for a fixed (seed, tile grid), the simulation
// outcome is byte-identical across every worker count, every executor
// count, and with the adaptive repartitioner off or on — scheduling is
// pure mechanism, never policy that leaks into results. The 1×1 grid
// routes down the sequential path and so also proves the tile plumbing
// adds nothing to a plain run.
func TestTiledEquivalenceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("72-cell simulation matrix in -short mode")
	}
	grids := []engine.Grid{{Rows: 1, Cols: 1}, {Rows: 2, Cols: 2}, {Rows: 4, Cols: 2}, {Rows: 4, Cols: 4}}
	var totalMigrations int64
	for _, g := range grids {
		for _, seed := range []int64{42, 7, 99} {
			want := ""
			for _, workers := range []int{1, 2, 4} {
				for _, repart := range []bool{false, true} {
					s := Setup{
						Name: fmt.Sprintf("tiled-matrix-%s-s%d-w%d-r%v", g, seed, workers, repart),
						Rows: 6, Cols: 6, ImagePackets: 32, Seed: seed,
						Limit:    3 * time.Hour,
						TileRows: g.Rows, TileCols: g.Cols,
						Shards: 4, Workers: workers,
					}
					if g.Tiles() == 1 {
						s.Shards = 1
					}
					if repart {
						s.Repartition = true
						s.RepartitionEvery = 4
						s.RepartitionThreshold = 1.1
					}
					dig, res := tiledDigest(t, s)
					if want == "" {
						want = dig
					} else if dig != want {
						t.Fatalf("grid %s seed %d workers %d repart %v: digest %s, want %s — results are not a pure function of (seed, grid)",
							g, seed, workers, repart, dig, want)
					}
					if g.Tiles() == 1 {
						if res.Engine != nil {
							t.Fatalf("1x1 grid did not take the sequential path")
						}
						continue
					}
					if res.Engine == nil {
						t.Fatalf("grid %s run skipped the engine", g)
					}
					if res.TileGrid != g {
						t.Fatalf("ran grid %s, asked for %s", res.TileGrid, g)
					}
					st := res.Engine.Stats()
					if repart {
						totalMigrations += st.Migrations
					} else if st.Migrations != 0 {
						t.Fatalf("grid %s: %d migrations with the repartitioner off", g, st.Migrations)
					}
				}
			}
			// Executor count is a scheduling knob too: re-run one cell of
			// each multi-tile grid with 2 executors instead of 4.
			if g.Tiles() > 1 {
				s := Setup{
					Name: fmt.Sprintf("tiled-matrix-%s-s%d-x2", g, seed),
					Rows: 6, Cols: 6, ImagePackets: 32, Seed: seed,
					Limit:    3 * time.Hour,
					TileRows: g.Rows, TileCols: g.Cols,
					Shards: 2, Workers: 2,
					Repartition: true, RepartitionEvery: 4, RepartitionThreshold: 1.1,
				}
				if dig, _ := tiledDigest(t, s); dig != want {
					t.Fatalf("grid %s seed %d: 2-executor digest %s, want %s — executor count leaked into results",
						g, seed, dig, want)
				}
				// Optimistic execution is scheduling too: speculation with
				// rollback must land on the same digest as lockstep.
				s.Name = fmt.Sprintf("tiled-matrix-%s-s%d-opt", g, seed)
				s.Repartition, s.RepartitionEvery, s.RepartitionThreshold = false, 0, 0
				s.Optimistic = true
				dig, res := tiledDigest(t, s)
				if dig != want {
					t.Fatalf("grid %s seed %d: optimistic digest %s, want %s — speculation leaked into results",
						g, seed, dig, want)
				}
				if res.Engine.Stats().SpecRounds == 0 {
					t.Fatalf("grid %s seed %d: optimistic cell never speculated", g, seed)
				}
			}
		}
	}
	// The equivalence above would be vacuous if the repartitioner never
	// fired; the aggressive (every=4, threshold=1.1) tuning must have
	// actually migrated tiles somewhere in the matrix.
	if totalMigrations == 0 {
		t.Fatal("no cell of the matrix migrated a single tile; the repartitioner never engaged")
	}
	t.Logf("matrix clean; repartitioning cells moved %d tiles in total", totalMigrations)
}

// TestTiledValidate covers the tile-specific validation Build applies:
// grid shape, exclusivity with auto-sizing, tile budget, executor
// bounds, and repartitioner tuning.
func TestTiledValidate(t *testing.T) {
	valid := Setup{Name: "v", Rows: 4, Cols: 4, Spacing: 10, Shards: 2, TileRows: 2, TileCols: 2}
	cases := []struct {
		name    string
		mutate  func(*Setup)
		wantErr string
	}{
		{"valid-tiles", func(s *Setup) {}, ""},
		{"negative-rows", func(s *Setup) { s.TileRows = -1 }, "non-negative"},
		{"one-sided-grid", func(s *Setup) { s.TileCols = 0 }, "both rows and cols"},
		{"grid-and-auto", func(s *Setup) { s.TileAuto = true }, "mutually exclusive"},
		{"too-many-tiles", func(s *Setup) { s.TileRows, s.TileCols = 5, 5 }, "tiles"},
		{"shards-exceed-tiles", func(s *Setup) { s.Shards = 5 }, "exceed"},
		{"negative-period", func(s *Setup) { s.Repartition = true; s.RepartitionEvery = -1 }, "negative"},
		{"sub-one-threshold", func(s *Setup) { s.Repartition = true; s.RepartitionThreshold = 0.5 }, "at least 1"},
		{"tuning-without-repartition", func(s *Setup) { s.RepartitionEvery = 8 }, "repartition"},
		{"repartition-ok", func(s *Setup) {
			s.Repartition = true
			s.RepartitionEvery, s.RepartitionThreshold = 8, 1.5
		}, ""},
		{"auto-ok", func(s *Setup) { s.TileRows, s.TileCols = 0, 0; s.TileAuto = true }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := valid
			tc.mutate(&s)
			err := s.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestTiledChaosPartitionHeal ports the partition+heal chaos scenario
// to 2D tile grids: the fault window must quantize onto barriers, the
// isolated half must stall until the heal, and every invariant must
// hold through the replayed observation stream — exactly as on strips.
func TestTiledChaosPartitionHeal(t *testing.T) {
	cut := []packet.NodeID{8, 9, 10, 11, 12, 13, 14, 15}
	for _, g := range []engine.Grid{{Rows: 2, Cols: 2}, {Rows: 4, Cols: 4}} {
		t.Run(g.String(), func(t *testing.T) {
			res := runChaos(t, Setup{
				Name: "chaos-partition-tiled-" + g.String(),
				Rows: 4, Cols: 4, ImagePackets: 128, Seed: 42,
				TileRows: g.Rows, TileCols: g.Cols, Shards: 4, Workers: 1,
				Faults: &faults.Plan{Events: []faults.Event{
					faults.Partition(cut, 10*time.Second, 90*time.Second),
				}},
			})
			if res.Engine == nil || res.TileGrid != g {
				t.Fatalf("run did not go through the %s tile engine", g)
			}
			if res.CompletionTime <= 90*time.Second {
				t.Fatalf("completed at %v, inside the partition window", res.CompletionTime)
			}
		})
	}
}

// TestTiledChaosCrashDuringForward kills two mid-grid forwarders with
// the deployment split into 2×2 tiles; the survivors must converge and
// the dead stay exactly the crashed pair.
func TestTiledChaosCrashDuringForward(t *testing.T) {
	res := runChaos(t, Setup{
		Name: "chaos-crash-tiled", Rows: 5, Cols: 5, ImagePackets: 128, Seed: 42,
		TileRows: 2, TileCols: 2, Shards: 4, Workers: 1,
		Faults: &faults.Plan{Events: []faults.Event{
			faults.Crash(6, 40*time.Second),
			faults.Crash(12, 70*time.Second),
		}},
	})
	if res.Engine == nil {
		t.Fatal("run did not go through the tile engine")
	}
	dead := 0
	for _, n := range res.Network.Nodes {
		if n.Dead() {
			dead++
		}
	}
	if dead != 2 {
		t.Fatalf("dead = %d, want the 2 crashed forwarders", dead)
	}
}

// TestTiledRepartitionDuringFaults proves migration is invisible to
// the simulation even while a fault window is reshaping the load: the
// same faulted run with the repartitioner off and on must produce
// identical digests and identical ghost-exchange totals — no boundary
// frame dropped or duplicated across a migration barrier — while the
// on-run demonstrably moves tiles.
func TestTiledRepartitionDuringFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("two full faulted simulations in -short mode")
	}
	base := Setup{
		Name: "tiled-repart-faults", Rows: 5, Cols: 5, ImagePackets: 64, Seed: 42,
		Limit:    4 * time.Hour,
		TileRows: 4, TileCols: 4, Shards: 4, Workers: 2,
		Invariants: &invariant.Config{},
		Faults: &faults.Plan{Events: []faults.Event{
			faults.Partition([]packet.NodeID{15, 16, 17, 18, 19, 20, 21, 22, 23, 24},
				10*time.Second, 90*time.Second),
		}},
	}
	off := base
	off.Name += "-off"
	on := base
	on.Name += "-on"
	on.Repartition, on.RepartitionEvery, on.RepartitionThreshold = true, 4, 1.1
	digOff, resOff := tiledDigest(t, off)
	digOn, resOn := tiledDigest(t, on)
	if digOff != digOn {
		t.Fatalf("repartitioning changed a faulted run: %s vs %s", digOff, digOn)
	}
	stOff, stOn := resOff.Engine.Stats(), resOn.Engine.Stats()
	if stOff.GhostsExported != stOn.GhostsExported {
		t.Fatalf("ghost totals diverged: %d exported without repartitioning, %d with — a boundary frame was dropped or duplicated",
			stOff.GhostsExported, stOn.GhostsExported)
	}
	if stOff.Migrations != 0 {
		t.Fatalf("%d migrations with the repartitioner off", stOff.Migrations)
	}
	if stOn.Migrations == 0 {
		t.Fatal("the fault window never triggered a migration; the test is vacuous")
	}
	if resOn.CompletionTime <= 90*time.Second {
		t.Fatalf("completed at %v, inside the partition window", resOn.CompletionTime)
	}
	t.Logf("digests equal across %d migrations (%d repartition barriers, %d ghosts)",
		stOn.Migrations, stOn.Repartitions, stOn.GhostsExported)
}

// orderObserver asserts the replayed global observation stream is
// totally ordered by (time, node): timestamps never run backwards, and
// within one timestamp node IDs never decrease. Storage operations
// carry no timestamp and are skipped.
type orderObserver struct {
	t      *testing.T
	lastAt time.Duration
	lastID packet.NodeID
	events int
}

func (o *orderObserver) check(id packet.NodeID, at time.Duration) {
	o.events++
	if at < o.lastAt {
		o.t.Errorf("observer replay ran backwards: %v after %v", at, o.lastAt)
	} else if at == o.lastAt && id < o.lastID {
		o.t.Errorf("observer replay at %v visited node %v after %v", at, id, o.lastID)
	}
	o.lastAt, o.lastID = at, id
}

func (o *orderObserver) NodeEvent(id packet.NodeID, at time.Duration, ev node.Event) {
	o.check(id, at)
}
func (o *orderObserver) RadioState(id packet.NodeID, at time.Duration, on bool) {
	o.check(id, at)
}
func (o *orderObserver) StorageOp(packet.NodeID, bool, int, int, int) {}

// TestTiledObserverReplayOrder is the ordering regression test for
// barrier replay under migration: with parallel workers, an aggressive
// repartitioner, and a mid-run crash, a single global observer must
// still see one stream sorted by (time, node) — migrating a tile to
// another executor must not reorder or tear its buffered observations.
func TestTiledObserverReplayOrder(t *testing.T) {
	obs := &orderObserver{t: t}
	res, err := Run(Setup{
		Name: "tiled-replay-order", Rows: 6, Cols: 6, ImagePackets: 32, Seed: 7,
		Limit:    3 * time.Hour,
		TileRows: 4, TileCols: 4, Shards: 4, Workers: 4,
		Repartition: true, RepartitionEvery: 4, RepartitionThreshold: 1.1,
		Observer: obs,
		Faults: &faults.Plan{Events: []faults.Event{
			faults.Crash(14, 50*time.Second),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("incomplete: %d/%d", res.Network.CompletedCount(), res.Layout.N())
	}
	if obs.events == 0 {
		t.Fatal("global observer saw no events")
	}
	if st := res.Engine.Stats(); st.Migrations == 0 {
		t.Fatal("no tile migrated; the ordering claim was not exercised under migration")
	} else {
		t.Logf("stream of %d observations stayed ordered across %d migrations",
			obs.events, st.Migrations)
	}
}

// TestTiledWavefrontSkew records the load-balance story behind the
// tile design: a dissemination wavefront sweeping outward from the
// base keeps strip partitions badly skewed (the strip holding the
// front does all the work), while 2D tiles plus the adaptive
// repartitioner spread the front across executors. Loads are
// deterministic (kernel events + deliveries), so the comparison is a
// stable regression check, and the logged numbers feed README /
// EXPERIMENTS.md.
func TestTiledWavefrontSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("two full 8x8 simulations in -short mode")
	}
	run := func(s Setup) metrics.LoadSummary {
		s.Rows, s.Cols, s.ImagePackets, s.Seed = 8, 8, 64, 42
		s.Limit = 4 * time.Hour
		res, err := Run(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !res.Completed {
			t.Fatalf("%s: incomplete", s.Name)
		}
		sum := metrics.SummarizeLoads(res.LoadMatrix())
		if sum.Periods == 0 {
			t.Fatalf("%s: no load reports collected", s.Name)
		}
		return sum
	}
	strips := run(Setup{Name: "skew-strips", Shards: 4, Workers: 1})
	tiled := run(Setup{
		Name: "skew-tiled", TileRows: 4, TileCols: 4, Shards: 4, Workers: 1,
		Repartition: true, RepartitionEvery: 8, RepartitionThreshold: 1.1,
	})
	t.Logf("wavefront skew (max/mean executor load): strips mean=%.2f worst=%.2f over %d periods; 4x4 tiles+repartition mean=%.2f worst=%.2f over %d periods",
		strips.Mean, strips.Max, strips.Periods, tiled.Mean, tiled.Max, tiled.Periods)
	if tiled.Mean >= strips.Mean {
		t.Fatalf("tiles+repartitioning did not reduce mean imbalance: %.3f vs strips %.3f",
			tiled.Mean, strips.Mean)
	}
}

// TestTiledAutoGridRuns exercises the auto-sized grid end to end: the
// run must pick a non-trivial grid, complete, and report it.
func TestTiledAutoGridRuns(t *testing.T) {
	res, err := Run(Setup{
		Name: "tiled-auto", Rows: 6, Cols: 6, ImagePackets: 24, Seed: 42,
		TileAuto: true, Shards: 2, Workers: 2, Limit: 3 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if res.Engine == nil || res.TileGrid.Tiles() < 2 {
		t.Fatalf("auto tiling produced grid %s without an engine run", res.TileGrid)
	}
}
