package experiment

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"mnp/internal/engine"
	"mnp/internal/faults"
	"mnp/internal/topology"
)

// waypoint returns a Setup.Mobility factory for a random-waypoint model
// over the layout's own extent. The factory defers seeding to the run,
// so two setups differing only in Seed get independent trajectories.
func waypoint(speedMin, speedMax float64, pause time.Duration) func(*topology.Layout, int64) (topology.Mobility, error) {
	return func(l *topology.Layout, seed int64) (topology.Mobility, error) {
		return topology.NewWaypoint(l, topology.WaypointConfig{
			SpeedMin: speedMin, SpeedMax: speedMax, Pause: pause, Seed: seed,
		})
	}
}

// geometryOf digs out the shared channel geometry of a finished run on
// either path.
func geometryOf(res *Result) interface{ Moves() uint64 } {
	if res.Medium != nil {
		return res.Medium.Geometry()
	}
	return res.Engine.Shards()[0].Medium.Geometry()
}

// TestMobilityValidate covers the mobility-specific Setup validation.
func TestMobilityValidate(t *testing.T) {
	base := Setup{Name: "m", Rows: 4, Cols: 4, Spacing: 10, Shards: 1}
	withModel := base
	withModel.Mobility = waypoint(1, 2, 0)
	cases := []struct {
		name    string
		s       Setup
		mutate  func(*Setup)
		wantErr string
	}{
		{"model-without-step-defaults", withModel, func(s *Setup) {}, ""},
		{"explicit-step", withModel, func(s *Setup) { s.MobilityEvery = 2 * time.Second }, ""},
		{"negative-step", withModel, func(s *Setup) { s.MobilityEvery = -time.Second }, "negative"},
		{"step-without-model", base, func(s *Setup) { s.MobilityEvery = time.Second }, "no mobility model"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.s.withDefaults()
			tc.mutate(&s)
			err := s.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
	// The default step only applies when a model is set.
	if s := base.withDefaults(); s.MobilityEvery != 0 {
		t.Fatalf("static setup defaulted MobilityEvery to %v", s.MobilityEvery)
	}
	if s := withModel.withDefaults(); s.MobilityEvery != 10*time.Second {
		t.Fatalf("mobile setup defaulted MobilityEvery to %v, want 10s", s.MobilityEvery)
	}
}

// TestMobilityEquivalenceMatrix extends the tiled engine's headline
// determinism property to time-varying topologies: with a waypoint
// model driving position updates through engine barriers, the outcome
// for a fixed (seed, tile grid) must stay byte-identical across worker
// counts and with the repartitioner off or on. The 1×1 grid routes the
// same mobile setup down the sequential path.
func TestMobilityEquivalenceMatrix(t *testing.T) {
	grids := []engine.Grid{{Rows: 1, Cols: 1}, {Rows: 2, Cols: 2}}
	for _, g := range grids {
		want := ""
		for _, workers := range []int{1, 2, 4} {
			for _, repart := range []bool{false, true} {
				if g.Tiles() == 1 && (workers > 1 || repart) {
					continue // no scheduling knobs on the sequential path
				}
				s := Setup{
					Name: fmt.Sprintf("mobile-matrix-%s-w%d-r%v", g, workers, repart),
					Rows: 6, Cols: 6, ImagePackets: 32, Seed: 42,
					Protocol: ProtocolGossip, Limit: 3 * time.Hour,
					Mobility: waypoint(1, 3, 5*time.Second), MobilityEvery: 2 * time.Second,
					TileRows: g.Rows, TileCols: g.Cols,
					Shards: 4, Workers: workers,
				}
				if g.Tiles() == 1 {
					s.Shards = 1
				}
				if repart {
					s.Repartition = true
					s.RepartitionEvery = 4
					s.RepartitionThreshold = 1.1
				}
				dig, res := tiledDigest(t, s)
				if want == "" {
					want = dig
				} else if dig != want {
					t.Fatalf("grid %s workers %d repart %v: digest %s, want %s — mobility broke (seed, grid) purity",
						g, workers, repart, dig, want)
				}
				if moves := geometryOf(res).Moves(); moves == 0 {
					t.Fatalf("grid %s: no node ever moved; the matrix is vacuous", g)
				}
			}
		}
		// Optimistic cell: speculation clamps to the next global event,
		// so the 2-second mobility cadence exercises the depth clamp hard;
		// the digest must still match lockstep exactly.
		if g.Tiles() > 1 {
			s := Setup{
				Name: fmt.Sprintf("mobile-matrix-%s-opt", g),
				Rows: 6, Cols: 6, ImagePackets: 32, Seed: 42,
				Protocol: ProtocolGossip, Limit: 3 * time.Hour,
				Mobility: waypoint(1, 3, 5*time.Second), MobilityEvery: 2 * time.Second,
				TileRows: g.Rows, TileCols: g.Cols,
				Shards: 4, Workers: 2,
				Optimistic: true,
			}
			if dig, _ := tiledDigest(t, s); dig != want {
				t.Fatalf("grid %s: optimistic mobile digest %s, want %s — speculation broke (seed, grid) purity",
					g, dig, want)
			}
		}
	}
}

// TestMobilityStaticIsUnchanged pins the zero-cost property the whole
// tentpole rests on: a Setup without a mobility model compiles to the
// exact simulation it always did — no mobility event on the kernel, no
// move absorbed by the geometry. (The byte-level claim is enforced by
// the root golden tests; this is the fast structural check.)
func TestMobilityStaticIsUnchanged(t *testing.T) {
	res, err := Run(Setup{
		Name: "static", Rows: 3, Cols: 3, ImagePackets: 16, Seed: 42,
		Limit: 2 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if moves := geometryOf(res).Moves(); moves != 0 {
		t.Fatalf("static run absorbed %d moves", moves)
	}
	if _, _, inval, _ := res.Medium.CacheStats(); inval != 0 {
		t.Fatalf("static run invalidated %d link rows", inval)
	}
}

// TestMobilityChurnChaos is the satellite chaos scenario: gossip
// dissemination with every node on a random-waypoint walk while a
// forwarder crash-reboots and every link degrades for a window — churn
// in topology, membership, and channel at once. The run must still
// converge to byte-identical images with the full invariant suite
// (including advertisement-soundness-under-churn) holding, and the
// motion must demonstrably churn the link cache.
func TestMobilityChurnChaos(t *testing.T) {
	res, err := Run(Setup{
		Name: "mobile-churn", Rows: 4, Cols: 4, ImagePackets: 128, Seed: 42,
		Protocol: ProtocolGossip, Limit: 6 * time.Hour,
		Mobility: waypoint(1, 3, 10*time.Second), MobilityEvery: 2 * time.Second,
		Invariants: gossipInvariants(),
		Faults: &faults.Plan{Events: []faults.Event{
			faults.CrashReboot(10, 40*time.Second, 10*time.Second),
			faults.DegradeLink(faults.Wildcard, faults.Wildcard, false, 60*time.Second, 120*time.Second, 0.3),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("incomplete: %d/%d", res.Network.CompletedCount(), res.Layout.N())
	}
	if err := res.VerifyImages(); err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
	if moves := geometryOf(res).Moves(); moves == 0 {
		t.Fatal("no node ever moved")
	}
	if _, _, inval, _ := res.Medium.CacheStats(); inval == 0 {
		t.Fatal("mobility never invalidated a link row; the cache test is vacuous")
	}
}
