package experiment

import (
	"testing"
	"time"

	"mnp/internal/faults"
	"mnp/internal/invariant"
	"mnp/internal/packet"
)

// rlncInvariants returns the checker config for RLNC runs: the rateless
// protocol deliberately has no sender-selection phase, so the MNP
// single-sender-per-neighborhood budget does not apply — concurrent
// coded senders are the design, paced by density instead of elections.
// The remaining invariants (write-once EEPROM, in-order segments,
// rank monotonicity, segment-image integrity) are enforced in full.
func rlncInvariants() *invariant.Config {
	return &invariant.Config{SenderOverlapBudget: 1 << 30}
}

// TestRLNCCompletesAndVerifies: clean-channel dissemination on a small
// grid, with the online checker armed. Byte-identical images are
// checked twice — by the segment-image-integrity invariant as each
// EventGotSegment fires, and by VerifyImages at the end.
func TestRLNCCompletesAndVerifies(t *testing.T) {
	res, err := Run(Setup{
		Name: "rlnc-clean", Rows: 4, Cols: 4, ImagePackets: 128, Seed: 42,
		Protocol: ProtocolRLNC, Invariants: rlncInvariants(), Limit: 6 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("incomplete: %d/%d", res.Network.CompletedCount(), res.Layout.N())
	}
	if err := res.VerifyImages(); err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
	// Decoding is not free: the energy model must have charged row
	// operations on every non-base node.
	until := res.CompletionTime
	for id := 1; id < res.Layout.N(); id++ {
		l := res.Collector.Ledger(packet.NodeID(id), until)
		if l.DecodeRowOps == 0 || l.DecodeCharge() <= 0 {
			t.Fatalf("node %d decoded a program with zero charged row ops", id)
		}
	}
	if l := res.Collector.Ledger(0, until); l.DecodeRowOps != 0 {
		t.Fatalf("base charged %d decode ops; it never decodes", l.DecodeRowOps)
	}
}

// TestRLNCChaos drives the full gauntlet at once: a mid-transfer power
// blip (RAM lost, EEPROM kept), flaky flash on every non-base node,
// and 30% uniform loss on every link via the wildcard degrade — the
// regime rateless coding exists for. Survivors must converge to
// byte-identical images without ever rewriting an EEPROM slot.
func TestRLNCChaos(t *testing.T) {
	const victim = packet.NodeID(10)
	res, err := Run(Setup{
		Name: "rlnc-chaos", Rows: 4, Cols: 4, ImagePackets: 128, Seed: 42,
		Protocol: ProtocolRLNC, Invariants: rlncInvariants(), Limit: 6 * time.Hour,
		Faults: &faults.Plan{Events: []faults.Event{
			faults.CrashReboot(victim, 40*time.Second, 10*time.Second),
			faults.EEPROMErrors(faults.Wildcard, 0.05, 0, 0),
			faults.DegradeLink(faults.Wildcard, faults.Wildcard, false, 0, 6*time.Hour, 0.3),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("incomplete: %d/%d", res.Network.CompletedCount(), res.Layout.N())
	}
	if err := res.VerifyImages(); err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
	n := res.Network.Node(victim)
	if n.Dead() || !n.Completed() {
		t.Fatalf("rebooted node dead=%v completed=%v", n.Dead(), n.Completed())
	}
	if w := n.EEPROM().MaxWriteCount(); w != 1 {
		t.Fatalf("rebooted node max EEPROM writes = %d, want 1 (write-once)", w)
	}
}

// TestRLNCDeterministic: two runs of the same setup are identical in
// completion time and traffic — the protocol draws only from the
// seeded runtime RNG and the seed-keyed coefficient streams.
func TestRLNCDeterministic(t *testing.T) {
	run := func() (time.Duration, int) {
		res, err := Run(Setup{
			Name: "rlnc-det", Rows: 3, Cols: 3, ImagePackets: 64, Seed: 7,
			Protocol: ProtocolRLNC, Limit: 6 * time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("incomplete")
		}
		tx := 0
		for id := 0; id < res.Layout.N(); id++ {
			tx += res.Collector.TxCount(packet.NodeID(id))
		}
		return res.CompletionTime, tx
	}
	t1, tx1 := run()
	t2, tx2 := run()
	if t1 != t2 || tx1 != tx2 {
		t.Fatalf("non-deterministic: (%v, %d tx) vs (%v, %d tx)", t1, tx1, t2, tx2)
	}
}
