package experiment

import (
	"strings"
	"testing"
)

// TestAllSpecsProduceReports runs every paper experiment end to end and
// sanity-checks its report. This is the same work `cmd/mnpexp all` and
// the benchmark suite do, so it takes a couple of CPU minutes; skip it
// in -short runs.
func TestAllSpecsProduceReports(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	keyContent := map[string][]string{
		"T1":   {"Transmitting a packet", "83.333"},
		"F5":   {"sender order", "parent map"},
		"F6":   {"sender order", "power 50"},
		"F7":   {"grid-2x10", "sender order"},
		"F8":   {"average active radio time", "ring 19"},
		"F9":   {"without initial idle", "spread"},
		"F10":  {"segments", "linear fit", "R^2"},
		"F11":  {"messages sent", "receptions"},
		"F12":  {"data msgs/minute"},
		"F13":  {"fraction of nodes", "diagonal/edge"},
		"EDEL": {"MNP", "Deluge", "msgs sent"},
		"A1":   {"with selection", "without selection"},
		"A2":   {"with sleep", "without sleep"},
		"A3":   {"with repair", "without repair"},
		"A4":   {"power uniform", "battery-aware"},
		"A5":   {"always listening", "idle duty"},
		"A6":   {"corner base", "center base", "completion ratio"},
	}
	for _, spec := range AllSpecs() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			out, err := spec.Run(42)
			if err != nil {
				t.Fatalf("%s: %v", spec.ID, err)
			}
			for _, want := range keyContent[spec.ID] {
				if !strings.Contains(out, want) {
					t.Errorf("%s report missing %q", spec.ID, want)
				}
			}
		})
	}
}
