// Package nodetest provides a fake node.Runtime for protocol unit and
// robustness tests: sends are captured, timers are held in a queue the
// test fires manually, and storage is backed by a real EEPROM model.
package nodetest

import (
	"math/rand"
	"sort"
	"time"

	"mnp/internal/eeprom"
	"mnp/internal/node"
	"mnp/internal/packet"
)

// Runtime is a controllable node.Runtime for tests.
type Runtime struct {
	NodeID   packet.NodeID
	Clock    time.Duration
	RNG      *rand.Rand
	Sent     []packet.Packet
	Powers   []int
	Radio    bool
	Power    int
	EEPROM   *eeprom.Store
	Done     bool
	BattFrac float64
	Events   []node.Event

	timers map[node.TimerID]time.Duration
	proto  node.Protocol
}

// New builds a fake runtime for the given node ID.
func New(id packet.NodeID) *Runtime {
	store, err := eeprom.New(eeprom.DefaultCapacity)
	if err != nil {
		panic(err)
	}
	return &Runtime{
		NodeID:   id,
		RNG:      rand.New(rand.NewSource(int64(id) + 1)),
		Power:    255,
		EEPROM:   store,
		BattFrac: 1.0,
		timers:   make(map[node.TimerID]time.Duration),
	}
}

// Attach wires a protocol so FireNext can dispatch timers, and runs
// its Init.
func (r *Runtime) Attach(p node.Protocol) {
	r.proto = p
	p.Init(r)
}

var _ node.Runtime = (*Runtime)(nil)

// ID implements node.Runtime.
func (r *Runtime) ID() packet.NodeID { return r.NodeID }

// Now implements node.Runtime.
func (r *Runtime) Now() time.Duration { return r.Clock }

// Rand implements node.Runtime.
func (r *Runtime) Rand() *rand.Rand { return r.RNG }

// Send implements node.Runtime, capturing the packet.
func (r *Runtime) Send(p packet.Packet) error {
	r.Sent = append(r.Sent, p)
	r.Powers = append(r.Powers, r.Power)
	return nil
}

// SetTimer implements node.Runtime.
func (r *Runtime) SetTimer(id node.TimerID, d time.Duration) {
	r.timers[id] = r.Clock + d
}

// CancelTimer implements node.Runtime.
func (r *Runtime) CancelTimer(id node.TimerID) { delete(r.timers, id) }

// TimerPending implements node.Runtime.
func (r *Runtime) TimerPending(id node.TimerID) bool {
	_, ok := r.timers[id]
	return ok
}

// PendingTimers returns the pending timer IDs, soonest first.
func (r *Runtime) PendingTimers() []node.TimerID {
	ids := make([]node.TimerID, 0, len(r.timers))
	for id := range r.timers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if r.timers[ids[i]] != r.timers[ids[j]] {
			return r.timers[ids[i]] < r.timers[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}

// FireNext advances the clock to the soonest timer and dispatches it.
// It reports whether a timer fired.
func (r *Runtime) FireNext() bool {
	ids := r.PendingTimers()
	if len(ids) == 0 || r.proto == nil {
		return false
	}
	id := ids[0]
	at := r.timers[id]
	if at > r.Clock {
		r.Clock = at
	}
	delete(r.timers, id)
	r.proto.OnTimer(id)
	return true
}

// Fire dispatches one specific pending timer (if set).
func (r *Runtime) Fire(id node.TimerID) bool {
	if _, ok := r.timers[id]; !ok || r.proto == nil {
		return false
	}
	delete(r.timers, id)
	r.proto.OnTimer(id)
	return true
}

// Deliver hands a packet to the protocol as if received.
func (r *Runtime) Deliver(p packet.Packet, from packet.NodeID) {
	if r.proto != nil {
		r.proto.OnPacket(p, from)
	}
}

// RadioOn implements node.Runtime.
func (r *Runtime) RadioOn() { r.Radio = true }

// RadioOff implements node.Runtime.
func (r *Runtime) RadioOff() { r.Radio = false }

// IsRadioOn implements node.Runtime.
func (r *Runtime) IsRadioOn() bool { return r.Radio }

// SetTxPower implements node.Runtime.
func (r *Runtime) SetTxPower(level int) { r.Power = level }

// TxPower implements node.Runtime.
func (r *Runtime) TxPower() int { return r.Power }

// Store implements node.Runtime.
func (r *Runtime) Store(seg, pkt int, payload []byte) error {
	return r.EEPROM.Write(seg, pkt, payload)
}

// Load implements node.Runtime.
func (r *Runtime) Load(seg, pkt int) []byte { return r.EEPROM.Read(seg, pkt) }

// HasPacket implements node.Runtime.
func (r *Runtime) HasPacket(seg, pkt int) bool { return r.EEPROM.Has(seg, pkt) }

// EraseStore implements node.Runtime.
func (r *Runtime) EraseStore() { r.EEPROM.Erase() }

// Complete implements node.Runtime.
func (r *Runtime) Complete() { r.Done = true }

// Battery implements node.Runtime.
func (r *Runtime) Battery() float64 { return r.BattFrac }

// Event implements node.Runtime.
func (r *Runtime) Event(ev node.Event) { r.Events = append(r.Events, ev) }
