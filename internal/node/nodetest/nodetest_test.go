package nodetest

import (
	"math/rand"
	"testing"
	"time"

	"mnp/internal/node"
	"mnp/internal/packet"
)

// recorder is a minimal protocol that logs what the runtime feeds it.
type recorder struct {
	rt      node.Runtime
	inits   int
	timers  []node.TimerID
	packets []packet.Packet
	froms   []packet.NodeID
}

func (r *recorder) Init(rt node.Runtime) { r.rt = rt; r.inits++ }
func (r *recorder) OnTimer(id node.TimerID) {
	r.timers = append(r.timers, id)
}
func (r *recorder) OnPacket(p packet.Packet, from packet.NodeID) {
	r.packets = append(r.packets, p)
	r.froms = append(r.froms, from)
}

func TestAttachRunsInit(t *testing.T) {
	rt := New(3)
	rec := &recorder{}
	rt.Attach(rec)
	if rec.inits != 1 {
		t.Fatalf("Init ran %d times", rec.inits)
	}
	if rec.rt.ID() != 3 {
		t.Fatalf("runtime ID = %v", rec.rt.ID())
	}
}

func TestSendCapturesPacketsAndPower(t *testing.T) {
	rt := New(1)
	rt.SetTxPower(7)
	if err := rt.Send(&packet.Query{Src: 1, ProgramID: 1, SegID: 1}); err != nil {
		t.Fatal(err)
	}
	rt.SetTxPower(200)
	if err := rt.Send(&packet.StartSignal{Src: 1, ProgramID: 1}); err != nil {
		t.Fatal(err)
	}
	if len(rt.Sent) != 2 || rt.Sent[0].Kind() != packet.KindQuery {
		t.Fatalf("Sent = %v", rt.Sent)
	}
	if rt.Powers[0] != 7 || rt.Powers[1] != 200 {
		t.Fatalf("Powers = %v, want the power at each send", rt.Powers)
	}
}

func TestTimersFireSoonestFirstAndAdvanceClock(t *testing.T) {
	rt := New(1)
	rec := &recorder{}
	rt.Attach(rec)
	rt.SetTimer(node.TimerID(2), 30*time.Second)
	rt.SetTimer(node.TimerID(1), 10*time.Second)
	rt.SetTimer(node.TimerID(3), 20*time.Second)
	if got := rt.PendingTimers(); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 2 {
		t.Fatalf("PendingTimers = %v", got)
	}
	if !rt.TimerPending(2) {
		t.Fatal("TimerPending(2) = false")
	}
	rt.CancelTimer(node.TimerID(3))
	for rt.FireNext() {
	}
	if len(rec.timers) != 2 || rec.timers[0] != 1 || rec.timers[1] != 2 {
		t.Fatalf("fired %v, want [1 2]", rec.timers)
	}
	if rt.Clock != 30*time.Second {
		t.Fatalf("clock = %v, want 30s", rt.Clock)
	}
}

func TestFireDispatchesSpecificTimer(t *testing.T) {
	rt := New(1)
	rec := &recorder{}
	rt.Attach(rec)
	rt.SetTimer(node.TimerID(5), time.Second)
	if !rt.Fire(node.TimerID(5)) {
		t.Fatal("Fire(5) = false")
	}
	if rt.Fire(node.TimerID(5)) {
		t.Fatal("Fire(5) fired twice")
	}
	if len(rec.timers) != 1 || rec.timers[0] != 5 {
		t.Fatalf("fired %v", rec.timers)
	}
}

func TestDeliverRoutesToProtocol(t *testing.T) {
	rt := New(1)
	rec := &recorder{}
	rt.Attach(rec)
	rt.Deliver(&packet.Query{Src: 9, ProgramID: 1, SegID: 1}, 9)
	if len(rec.packets) != 1 || rec.froms[0] != 9 {
		t.Fatalf("delivered %v from %v", rec.packets, rec.froms)
	}
	// No protocol attached: Deliver and FireNext are harmless no-ops.
	bare := New(2)
	bare.Deliver(&packet.Query{}, 0)
	bare.SetTimer(1, time.Second)
	if bare.FireNext() {
		t.Fatal("FireNext fired with no protocol attached")
	}
}

func TestStorageBackedByRealEEPROM(t *testing.T) {
	rt := New(1)
	payload := []byte{1, 2, 3}
	if err := rt.Store(1, 0, payload); err != nil {
		t.Fatal(err)
	}
	if !rt.HasPacket(1, 0) || rt.HasPacket(1, 1) {
		t.Fatal("HasPacket wrong")
	}
	if got := rt.Load(1, 0); len(got) != 3 || got[0] != 1 {
		t.Fatalf("Load = %v", got)
	}
	rt.EraseStore()
	if rt.HasPacket(1, 0) {
		t.Fatal("erase did not clear the slot")
	}
}

func TestRuntimeStateAccessors(t *testing.T) {
	rt := New(4)
	if rt.IsRadioOn() {
		t.Fatal("radio initially on")
	}
	rt.RadioOn()
	if !rt.IsRadioOn() {
		t.Fatal("RadioOn did not stick")
	}
	rt.RadioOff()
	if rt.IsRadioOn() {
		t.Fatal("RadioOff did not stick")
	}
	rt.Complete()
	if !rt.Done {
		t.Fatal("Complete did not set Done")
	}
	if rt.Battery() != 1.0 {
		t.Fatalf("Battery = %v", rt.Battery())
	}
	rt.Event(node.Event{Kind: node.EventStateChange, State: "idle"})
	if len(rt.Events) != 1 {
		t.Fatalf("Events = %v", rt.Events)
	}
	if rt.Rand() == nil || rt.Now() != 0 {
		t.Fatal("Rand/Now accessors broken")
	}
}

func TestRandomPacketCoversAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := map[packet.Kind]bool{}
	for i := 0; i < 5000; i++ {
		seen[RandomPacket(rng).Kind()] = true
	}
	// 18 generator arms produce 18 distinct kinds.
	if len(seen) != 18 {
		t.Fatalf("RandomPacket produced %d kinds, want 18", len(seen))
	}
}

// FuzzRuntimeOps drives the fake runtime itself with a byte-coded op
// stream: whatever the interleaving of timers, storage, radio, and
// clock jumps, the runtime's bookkeeping must stay consistent (clock
// monotone under FireNext, PendingTimers sorted soonest-first,
// storage read-back intact).
func FuzzRuntimeOps(f *testing.F) {
	f.Add([]byte{0, 1, 10, 2, 1, 3, 4, 5})
	f.Add([]byte{1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		rt := New(1)
		rec := &recorder{}
		rt.Attach(rec)
		for len(ops) >= 2 {
			op, arg := ops[0], ops[1]
			ops = ops[2:]
			switch op % 6 {
			case 0:
				rt.SetTimer(node.TimerID(arg%8), time.Duration(arg)*time.Millisecond)
			case 1:
				rt.CancelTimer(node.TimerID(arg % 8))
			case 2:
				before := rt.Clock
				rt.FireNext()
				if rt.Clock < before {
					t.Fatal("FireNext moved the clock backwards")
				}
			case 3:
				seg, pkt := int(arg%4)+1, int(arg/4)
				payload := []byte{arg}
				if err := rt.Store(seg, pkt, payload); err == nil {
					got := rt.Load(seg, pkt)
					if len(got) != 1 || got[0] != arg {
						t.Fatalf("Load(%d,%d) = %v after storing %d", seg, pkt, got, arg)
					}
				}
			case 4:
				rt.Clock += time.Duration(arg) * time.Millisecond
			case 5:
				rt.Deliver(&packet.Query{Src: packet.NodeID(arg), ProgramID: 1, SegID: 1}, packet.NodeID(arg))
			}
			pending := rt.PendingTimers()
			for i := 1; i < len(pending); i++ {
				a, b := rt.timers[pending[i-1]], rt.timers[pending[i]]
				if a > b {
					t.Fatalf("PendingTimers out of order: %v", pending)
				}
			}
		}
	})
}
