package nodetest

import (
	"math/rand"
	"time"

	"mnp/internal/bitvec"
	"mnp/internal/packet"
)

// RandomPacket generates an arbitrary — possibly adversarial — protocol
// message: field values span the full encodable range, bit vectors may
// disagree with their declared sizes, and payloads vary from empty to
// oversized. Robustness tests feed these straight into OnPacket.
func RandomPacket(rng *rand.Rand) packet.Packet {
	src := packet.NodeID(rng.Intn(1 << 16))
	dst := packet.NodeID(rng.Intn(1 << 16))
	prog := uint8(rng.Intn(4))
	seg := uint8(rng.Intn(256))
	pkts := uint8(rng.Intn(256))
	payload := make([]byte, rng.Intn(40))
	rng.Read(payload)

	switch rng.Intn(18) {
	case 0:
		return &packet.Advertise{
			Src: src, ProgramID: prog, ProgramSegments: uint8(rng.Intn(256)),
			SegID: seg, SegNominal: pkts, TotalPackets: uint16(rng.Intn(1 << 16)),
			ReqCtr: uint8(rng.Intn(256)),
		}
	case 1:
		return &packet.DownloadRequest{
			Src: src, DestID: dst, ProgramID: prog, SegID: seg,
			SegPackets: pkts, EchoReqCtr: uint8(rng.Intn(256)),
			Missing: randomVector(rng),
		}
	case 2:
		return &packet.StartDownload{Src: src, ProgramID: prog, SegID: seg, SegPackets: pkts}
	case 3:
		return &packet.Data{Src: src, ProgramID: prog, SegID: seg, PacketID: uint8(rng.Intn(256)), Payload: payload}
	case 4:
		return &packet.EndDownload{Src: src, ProgramID: prog, SegID: seg}
	case 5:
		return &packet.Query{Src: src, ProgramID: prog, SegID: seg}
	case 6:
		return &packet.RepairRequest{Src: src, DestID: dst, ProgramID: prog, SegID: seg, PacketID: uint8(rng.Intn(256))}
	case 7:
		return &packet.StartSignal{Src: src, ProgramID: prog}
	case 8:
		return &packet.DelugeAdv{
			Src: src, ProgramID: prog, Version: uint8(rng.Intn(4)),
			NumPages: uint8(rng.Intn(256)), HavePages: uint8(rng.Intn(256)),
			PagePackets: pkts, TotalPackets: uint16(rng.Intn(1 << 16)),
		}
	case 9:
		return &packet.DelugeReq{
			Src: src, DestID: dst, ProgramID: prog, Page: seg,
			PagePackets: pkts, Missing: randomVector(rng),
		}
	case 10:
		return &packet.DelugeData{Src: src, ProgramID: prog, Page: seg, PacketID: uint8(rng.Intn(256)), Payload: payload}
	case 11:
		return &packet.MoapPublish{Src: src, ProgramID: prog, Version: 1, Total: uint16(rng.Intn(1 << 12))}
	case 12:
		return &packet.MoapSubscribe{Src: src, DestID: dst, ProgramID: prog}
	case 13:
		return &packet.MoapData{Src: src, ProgramID: prog, Seq: uint16(rng.Intn(1 << 12)), Total: uint16(rng.Intn(1 << 12)), Payload: payload}
	case 14:
		return &packet.MoapNak{Src: src, DestID: dst, ProgramID: prog, Seq: uint16(rng.Intn(1 << 12))}
	case 15:
		return &packet.XnpData{Src: src, ProgramID: prog, Seq: uint16(rng.Intn(1 << 12)), Total: uint16(rng.Intn(1 << 12)), Payload: payload}
	case 16:
		return &packet.XnpQueryStatus{Src: src, ProgramID: prog}
	default:
		return &packet.XnpStatus{Src: src, DestID: dst, ProgramID: prog, Seq: uint16(rng.Intn(1 << 16))}
	}
}

// randomVector returns nil, or a bit vector whose length may not match
// any declared packet count.
func randomVector(rng *rand.Rand) *bitvec.Vector {
	if rng.Intn(3) == 0 {
		return nil
	}
	n := rng.Intn(bitvec.MaxBits) + 1
	v := bitvec.MustNew(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

// Fuzz drives the attached protocol with steps random events: packet
// deliveries, timer firings, and clock jumps. The protocol must not
// panic; any panic propagates to the calling test.
func (r *Runtime) Fuzz(rng *rand.Rand, steps int) {
	for i := 0; i < steps; i++ {
		switch rng.Intn(4) {
		case 0, 1:
			r.Deliver(RandomPacket(rng), packet.NodeID(rng.Intn(64)))
		case 2:
			r.FireNext()
		default:
			r.Clock += time.Duration(rng.Intn(1000)) * time.Millisecond
			// Fire a random pending timer rather than the soonest.
			ids := r.PendingTimers()
			if len(ids) > 0 {
				r.Fire(ids[rng.Intn(len(ids))])
			}
		}
	}
}
