package node

import (
	"testing"
	"time"

	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/sim"
	"mnp/internal/topology"
)

// echoProto records everything delivered to it and exposes its runtime.
type echoProto struct {
	rt      Runtime
	packets []packet.Packet
	froms   []packet.NodeID
	timers  []TimerID
}

func (p *echoProto) Init(rt Runtime) { p.rt = rt }
func (p *echoProto) OnPacket(pk packet.Packet, f packet.NodeID) {
	// A delivered packet is only valid during the callback — the radio
	// reuses decoded messages — so retain an independent copy via a
	// wire round-trip.
	cp, err := packet.Decode(packet.Encode(pk))
	if err != nil {
		panic(err)
	}
	p.packets = append(p.packets, cp)
	p.froms = append(p.froms, f)
}
func (p *echoProto) OnTimer(id TimerID) { p.timers = append(p.timers, id) }

type recordingObserver struct {
	events  []Event
	radioOn []bool
	writes  int
	reads   int
}

func (o *recordingObserver) NodeEvent(_ packet.NodeID, _ time.Duration, ev Event) {
	o.events = append(o.events, ev)
}
func (o *recordingObserver) RadioState(_ packet.NodeID, _ time.Duration, on bool) {
	o.radioOn = append(o.radioOn, on)
}
func (o *recordingObserver) StorageOp(_ packet.NodeID, write bool, _, _, _ int) {
	if write {
		o.writes++
	} else {
		o.reads++
	}
}

func cleanRadio() radio.Params {
	p := radio.DefaultParams()
	p.BERFloor = 1e-12
	p.BERCeil = 1e-11
	p.AsymSigma = 0
	return p
}

type rig struct {
	k      *sim.Kernel
	m      *radio.Medium
	nodes  []*Node
	protos []*echoProto
	obs    *recordingObserver
}

func newRig(t *testing.T, count int, spacing float64) *rig {
	t.Helper()
	k := sim.New(1)
	l, err := topology.Line(count, spacing)
	if err != nil {
		t.Fatal(err)
	}
	m, err := radio.NewMedium(k, l, cleanRadio(), 3)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{k: k, m: m, obs: &recordingObserver{}}
	for i := 0; i < count; i++ {
		p := &echoProto{}
		n, err := New(packet.NodeID(i), k, m, p, Config{TxPower: radio.PowerSim}, r.obs)
		if err != nil {
			t.Fatal(err)
		}
		n.Start()
		r.nodes = append(r.nodes, n)
		r.protos = append(r.protos, p)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	k := sim.New(1)
	l, _ := topology.Line(2, 10)
	m, _ := radio.NewMedium(k, l, cleanRadio(), 1)
	if _, err := New(0, nil, m, &echoProto{}, Config{}, nil); err == nil {
		t.Error("nil kernel accepted")
	}
	if _, err := New(0, k, nil, &echoProto{}, Config{}, nil); err == nil {
		t.Error("nil medium accepted")
	}
	if _, err := New(0, k, m, nil, Config{}, nil); err == nil {
		t.Error("nil protocol accepted")
	}
	if _, err := New(99, k, m, &echoProto{}, Config{}, nil); err == nil {
		t.Error("out-of-layout id accepted")
	}
}

func TestSendDeliversToNeighbor(t *testing.T) {
	r := newRig(t, 2, 10)
	r.nodes[0].RadioOn()
	r.nodes[1].RadioOn()
	if err := r.nodes[0].Send(&packet.Query{Src: 0, ProgramID: 1, SegID: 1}); err != nil {
		t.Fatal(err)
	}
	r.k.Run(time.Second)
	if len(r.protos[1].packets) != 1 {
		t.Fatalf("neighbor got %d packets, want 1", len(r.protos[1].packets))
	}
	if r.protos[1].froms[0] != 0 {
		t.Fatalf("from = %v", r.protos[1].froms[0])
	}
}

func TestQueueDrainsInOrder(t *testing.T) {
	r := newRig(t, 2, 10)
	r.nodes[0].RadioOn()
	r.nodes[1].RadioOn()
	for i := 0; i < 5; i++ {
		err := r.nodes[0].Send(&packet.Data{Src: 0, ProgramID: 1, SegID: 1, PacketID: uint8(i), Payload: []byte{1}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if r.nodes[0].QueueLen() != 5 {
		t.Fatalf("QueueLen = %d", r.nodes[0].QueueLen())
	}
	r.k.Run(time.Minute)
	if got := len(r.protos[1].packets); got != 5 {
		t.Fatalf("delivered %d, want 5", got)
	}
	for i, p := range r.protos[1].packets {
		d := p.(*packet.Data)
		if int(d.PacketID) != i {
			t.Fatalf("out of order: got packet %d at position %d", d.PacketID, i)
		}
	}
	if r.nodes[0].QueueLen() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestQueueCapEnforced(t *testing.T) {
	r := newRig(t, 2, 10)
	r.nodes[0].RadioOn()
	var err error
	for i := 0; i < DefaultQueueCap+1; i++ {
		err = r.nodes[0].Send(&packet.Query{Src: 0, ProgramID: 1, SegID: 1})
	}
	if err == nil {
		t.Fatal("queue overfill accepted")
	}
}

func TestRadioOffPausesQueueAndOnResumes(t *testing.T) {
	r := newRig(t, 2, 10)
	r.nodes[1].RadioOn()
	// Radio off: Send queues but nothing flows.
	if err := r.nodes[0].Send(&packet.Query{Src: 0, ProgramID: 1, SegID: 1}); err != nil {
		t.Fatal(err)
	}
	r.k.Run(time.Second)
	if len(r.protos[1].packets) != 0 {
		t.Fatal("frame escaped a radio-off node")
	}
	// Radio on resumes the queued frame.
	r.nodes[0].RadioOn()
	r.k.Run(2 * time.Second)
	if len(r.protos[1].packets) != 1 {
		t.Fatalf("queued frame not sent after RadioOn: %d", len(r.protos[1].packets))
	}
}

func TestTimersFireReplaceAndCancel(t *testing.T) {
	r := newRig(t, 1, 10)
	rt := r.nodes[0]
	rt.SetTimer(1, 10*time.Millisecond)
	rt.SetTimer(2, 20*time.Millisecond)
	rt.SetTimer(1, 50*time.Millisecond) // replaces the first
	rt.SetTimer(3, 5*time.Millisecond)
	rt.CancelTimer(3)
	if rt.TimerPending(3) {
		t.Fatal("cancelled timer pending")
	}
	if !rt.TimerPending(1) || !rt.TimerPending(2) {
		t.Fatal("timers not pending")
	}
	r.k.Run(time.Second)
	got := r.protos[0].timers
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("timer firings = %v, want [2 1]", got)
	}
	if rt.TimerPending(1) {
		t.Fatal("fired timer still pending")
	}
}

func TestKillSilencesNode(t *testing.T) {
	r := newRig(t, 2, 10)
	r.nodes[0].RadioOn()
	r.nodes[1].RadioOn()
	r.nodes[0].SetTimer(1, 10*time.Millisecond)
	r.nodes[0].Kill()
	if !r.nodes[0].Dead() {
		t.Fatal("Dead = false")
	}
	if err := r.nodes[0].Send(&packet.Query{Src: 0, ProgramID: 1, SegID: 1}); err == nil {
		t.Fatal("dead node accepted Send")
	}
	r.nodes[0].SetTimer(2, time.Millisecond)
	r.k.Run(time.Second)
	if len(r.protos[0].timers) != 0 {
		t.Fatal("dead node's timer fired")
	}
	// Dead node receives nothing.
	if err := r.nodes[1].Send(&packet.Query{Src: 1, ProgramID: 1, SegID: 1}); err != nil {
		t.Fatal(err)
	}
	r.k.Run(2 * time.Second)
	if len(r.protos[0].packets) != 0 {
		t.Fatal("dead node received a packet")
	}
	// RadioOn after death is ignored.
	r.nodes[0].RadioOn()
	if r.nodes[0].IsRadioOn() {
		t.Fatal("dead node's radio turned on")
	}
}

func TestStorageRoundTripAndObserver(t *testing.T) {
	r := newRig(t, 1, 10)
	n := r.nodes[0]
	if n.HasPacket(1, 0) {
		t.Fatal("fresh store has packet")
	}
	if err := n.Store(1, 0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if !n.HasPacket(1, 0) {
		t.Fatal("stored packet missing")
	}
	if got := n.Load(1, 0); len(got) != 3 {
		t.Fatalf("Load = %v", got)
	}
	if n.Load(5, 5) != nil {
		t.Fatal("empty slot loaded data")
	}
	if r.obs.writes != 1 || r.obs.reads != 1 {
		t.Fatalf("observer counts: writes=%d reads=%d", r.obs.writes, r.obs.reads)
	}
	n.EraseStore()
	if n.HasPacket(1, 0) {
		t.Fatal("erase did not clear store")
	}
}

func TestCompleteOnceAndEvents(t *testing.T) {
	r := newRig(t, 1, 10)
	n := r.nodes[0]
	n.Complete()
	at := n.CompletedAt()
	n.Complete() // idempotent
	if !n.Completed() || n.CompletedAt() != at {
		t.Fatal("Complete not idempotent")
	}
	n.Event(Event{Kind: EventBecameSender, Seg: 2})
	found := 0
	for _, ev := range r.obs.events {
		switch ev.Kind {
		case EventGotCode:
			found++
		case EventBecameSender:
			if ev.Seg == 2 {
				found++
			}
		}
	}
	if found != 2 {
		t.Fatalf("observer missing events: %v", r.obs.events)
	}
}

func TestTxPowerAndBattery(t *testing.T) {
	r := newRig(t, 1, 10)
	n := r.nodes[0]
	if n.TxPower() != radio.PowerSim {
		t.Fatalf("TxPower = %d", n.TxPower())
	}
	n.SetTxPower(radio.PowerFull)
	if n.TxPower() != radio.PowerFull {
		t.Fatal("SetTxPower ignored")
	}
	if n.Battery() != 1.0 {
		t.Fatalf("Battery = %v", n.Battery())
	}
	n.SetBattery(0.3)
	if n.Battery() != 0.3 {
		t.Fatal("SetBattery ignored")
	}
}

func TestRadioStateObserved(t *testing.T) {
	r := newRig(t, 1, 10)
	n := r.nodes[0]
	n.RadioOn()
	n.RadioOn() // idempotent: only one observation
	n.RadioOff()
	n.RadioOff()
	want := []bool{true, false}
	if len(r.obs.radioOn) != len(want) {
		t.Fatalf("radio transitions = %v", r.obs.radioOn)
	}
	for i := range want {
		if r.obs.radioOn[i] != want[i] {
			t.Fatalf("radio transitions = %v", r.obs.radioOn)
		}
	}
}

func TestCSMADefersOnBusyChannel(t *testing.T) {
	// Two in-range nodes each queue 5 frames to a common receiver over
	// a clean channel. Carrier sense must interleave them with few or
	// no collisions: nearly all 10 frames arrive.
	r := newRig(t, 3, 10)
	for _, n := range r.nodes {
		n.RadioOn()
	}
	for i := 0; i < 5; i++ {
		if err := r.nodes[0].Send(&packet.Data{Src: 0, ProgramID: 1, SegID: 1, PacketID: uint8(i), Payload: []byte{0}}); err != nil {
			t.Fatal(err)
		}
		if err := r.nodes[2].Send(&packet.Data{Src: 2, ProgramID: 1, SegID: 1, PacketID: uint8(i), Payload: []byte{2}}); err != nil {
			t.Fatal(err)
		}
	}
	r.k.Run(time.Minute)
	got := len(r.protos[1].packets)
	if got < 8 {
		t.Fatalf("middle node received %d/10 frames; CSMA not deferring", got)
	}
}

func TestNetworkLifecycle(t *testing.T) {
	k := sim.New(1)
	l, err := topology.Line(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	m, err := radio.NewMedium(k, l, cleanRadio(), 1)
	if err != nil {
		t.Fatal(err)
	}
	protos := map[packet.NodeID]*echoProto{}
	nw, err := NewNetwork(k, m, l, func(id packet.NodeID) (Protocol, Config) {
		p := &echoProto{}
		protos[id] = p
		return p, Config{TxPower: radio.PowerSim}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	for id, p := range protos {
		if p.rt == nil {
			t.Fatalf("node %v not initialized", id)
		}
	}
	if nw.CompletedCount() != 0 || nw.AllCompleted() {
		t.Fatal("fresh network reports completion")
	}
	nw.Node(0).Complete()
	nw.Node(1).Complete()
	nw.Node(2).Kill() // dead nodes don't block coverage
	if !nw.AllCompleted() {
		t.Fatal("AllCompleted false with all live nodes done")
	}
	if nw.CompletedCount() != 2 {
		t.Fatalf("CompletedCount = %d", nw.CompletedCount())
	}
	if nw.CompletionTime() != nw.Node(1).CompletedAt() && nw.CompletionTime() != nw.Node(0).CompletedAt() {
		t.Fatal("CompletionTime not max of completions")
	}
	if !nw.RunUntilComplete(time.Second) {
		t.Fatal("RunUntilComplete false when already complete")
	}
	if _, err := NewNetwork(k, m, l, nil, nil); err == nil {
		t.Fatal("nil factory accepted")
	}
}
