package node

import (
	"fmt"
	"time"

	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/sim"
	"mnp/internal/topology"
)

// Network assembles one node per layout position and runs them against
// a shared medium.
type Network struct {
	Kernel *sim.Kernel
	Medium *radio.Medium
	Layout *topology.Layout
	Nodes  []*Node

	// factory is kept so crashed nodes can be rebooted with a fresh
	// protocol instance (Restart).
	factory Factory

	// satisfiedCursor counts the leading nodes known to be dead or
	// completed. Both conditions are monotone for a run, so AllCompleted
	// only ever rechecks the first node that wasn't — RunUntilComplete
	// evaluates the predicate after every event, and a full O(N) scan
	// there dominated large-grid runs.
	satisfiedCursor int
}

// Factory produces the protocol instance and harness config for node
// id. The base station typically gets a source-role protocol.
type Factory func(id packet.NodeID) (Protocol, Config)

// NewNetwork builds all nodes. Protocols are not started until Start.
func NewNetwork(k *sim.Kernel, m *radio.Medium, layout *topology.Layout, f Factory, obs Observer) (*Network, error) {
	place := func(packet.NodeID) (*sim.Kernel, *radio.Medium, Observer) { return k, m, obs }
	nw, err := NewPartitionedNetwork(layout, f, place)
	if err != nil {
		return nil, err
	}
	nw.Kernel, nw.Medium = k, m
	return nw, nil
}

// NewPartitionedNetwork builds all nodes, asking place for each node's
// runtime — its kernel, its medium (possibly a shard of the channel),
// and its observer. The sharded engine uses it to pin every node to the
// shard that owns it; the Network value itself stays a global facade
// (Restart, AllCompleted, CompletionTime span all shards), with Kernel
// and Medium left nil because no single pair drives the whole run.
func NewPartitionedNetwork(layout *topology.Layout, f Factory, place func(packet.NodeID) (*sim.Kernel, *radio.Medium, Observer)) (*Network, error) {
	if f == nil {
		return nil, fmt.Errorf("node: nil factory")
	}
	if place == nil {
		return nil, fmt.Errorf("node: nil placement")
	}
	nw := &Network{Layout: layout, factory: f}
	for i := 0; i < layout.N(); i++ {
		id := packet.NodeID(i)
		proto, cfg := f(id)
		k, m, obs := place(id)
		n, err := New(id, k, m, proto, cfg, obs)
		if err != nil {
			return nil, fmt.Errorf("node %v: %w", id, err)
		}
		nw.Nodes = append(nw.Nodes, n)
	}
	return nw, nil
}

// Start initializes every node's protocol in ID order.
func (nw *Network) Start() {
	for _, n := range nw.Nodes {
		n.Start()
	}
}

// Node returns the node with the given ID.
func (nw *Network) Node(id packet.NodeID) *Node { return nw.Nodes[id] }

// Restart reboots a crashed node: the factory builds it a fresh
// protocol instance (RAM state is lost in the crash) while its EEPROM
// survives. The node's original harness config is kept.
func (nw *Network) Restart(id packet.NodeID) error {
	proto, _ := nw.factory(id)
	if err := nw.Nodes[id].Restart(proto); err != nil {
		return err
	}
	// The node may now be live-but-incomplete again; rewind the
	// monotone completion cursor so AllCompleted rechecks it.
	if int(id) < nw.satisfiedCursor {
		nw.satisfiedCursor = int(id)
	}
	return nil
}

// CompletedCount returns how many nodes hold the full program.
func (nw *Network) CompletedCount() int {
	c := 0
	for _, n := range nw.Nodes {
		if n.Completed() {
			c++
		}
	}
	return c
}

// AllCompleted reports whether every live node holds the full program
// (dead nodes are excluded: the paper requires coverage of the
// connected network).
func (nw *Network) AllCompleted() bool {
	for nw.satisfiedCursor < len(nw.Nodes) {
		n := nw.Nodes[nw.satisfiedCursor]
		if !n.Dead() && !n.Completed() {
			return false
		}
		nw.satisfiedCursor++
	}
	return true
}

// RewindCompletion resets AllCompleted's monotone cursor. The
// optimistic engine calls it after a speculation rollback: the cursor
// lives outside per-tile checkpoints, so progress it recorded against
// since-rolled-back node state must be forgotten and rescanned.
func (nw *Network) RewindCompletion() { nw.satisfiedCursor = 0 }

// RunUntilComplete drives the simulation until every live node
// completes or limit passes; it reports whether full coverage was
// reached.
func (nw *Network) RunUntilComplete(limit time.Duration) bool {
	return nw.Kernel.RunUntil(nw.AllCompleted, limit)
}

// CompletionTime returns the time the last node completed — the
// paper's "completion time" metric. It is only meaningful when
// AllCompleted is true.
func (nw *Network) CompletionTime() time.Duration {
	var maxT time.Duration
	for _, n := range nw.Nodes {
		if n.Completed() && n.CompletedAt() > maxT {
			maxT = n.CompletedAt()
		}
	}
	return maxT
}
