package node

import (
	"fmt"
	"math/rand"
	"time"

	"mnp/internal/packet"
)

// SegSpace is the per-subprotocol segment namespace width used by
// Demux: segment IDs are at most 255, so slot (sub i, segment s) maps
// to EEPROM segment i*SegSpace + s without collisions.
const SegSpace = 256

// Classifier routes a received packet to one of a Demux's
// subprotocols; return a sub index, or -1 to drop the packet. This is
// how the paper's §6 multi-program scenario ("send different types of
// data to several disjoint or non-disjoint subsets of the network") is
// realized: unsubscribed programs classify to -1.
type Classifier func(p packet.Packet) int

// Demux runs several protocol instances on one mote, sharing its
// radio, MAC, and EEPROM: packets are routed by the classifier, timers
// are namespaced per instance, storage is partitioned into segment
// spaces, and the node reports Complete only when every instance has.
type Demux struct {
	classify Classifier
	subs     []Protocol
	rts      []*subRuntime
	rt       Runtime
}

var _ Protocol = (*Demux)(nil)

// NewDemux builds a demultiplexer over the given subprotocols.
func NewDemux(classify Classifier, subs ...Protocol) (*Demux, error) {
	if classify == nil {
		return nil, fmt.Errorf("node: nil classifier")
	}
	if len(subs) == 0 {
		return nil, fmt.Errorf("node: demux needs at least one subprotocol")
	}
	for i, s := range subs {
		if s == nil {
			return nil, fmt.Errorf("node: nil subprotocol %d", i)
		}
	}
	return &Demux{classify: classify, subs: subs}, nil
}

// Init implements Protocol.
func (d *Demux) Init(rt Runtime) {
	d.rt = rt
	d.rts = make([]*subRuntime, len(d.subs))
	for i := range d.subs {
		d.rts[i] = &subRuntime{demux: d, idx: i}
	}
	// Initialize after all runtimes exist: a subprotocol may touch the
	// radio during Init, which consults the whole want-list.
	for i, s := range d.subs {
		s.Init(d.rts[i])
	}
}

// OnPacket implements Protocol.
func (d *Demux) OnPacket(p packet.Packet, from packet.NodeID) {
	idx := d.classify(p)
	if idx < 0 || idx >= len(d.subs) {
		return
	}
	d.subs[idx].OnPacket(p, from)
}

// OnTimer implements Protocol.
func (d *Demux) OnTimer(id TimerID) {
	n := TimerID(len(d.subs))
	idx := int(id % n)
	d.subs[idx].OnTimer(id / n)
}

// Sub returns subprotocol i (for inspection in tests and experiments).
func (d *Demux) Sub(i int) Protocol { return d.subs[i] }

// subRuntime exposes a namespaced view of the shared runtime to one
// subprotocol.
type subRuntime struct {
	demux     *Demux
	idx       int
	wantRadio bool
	done      bool
}

var _ Runtime = (*subRuntime)(nil)

func (s *subRuntime) parent() Runtime { return s.demux.rt }

// ID implements Runtime.
func (s *subRuntime) ID() packet.NodeID { return s.parent().ID() }

// Now implements Runtime.
func (s *subRuntime) Now() time.Duration { return s.parent().Now() }

// Rand implements Runtime.
func (s *subRuntime) Rand() *rand.Rand { return s.parent().Rand() }

// Send implements Runtime.
func (s *subRuntime) Send(p packet.Packet) error { return s.parent().Send(p) }

// timerID namespaces a subprotocol timer into the shared space.
func (s *subRuntime) timerID(id TimerID) TimerID {
	return id*TimerID(len(s.demux.subs)) + TimerID(s.idx)
}

// SetTimer implements Runtime.
func (s *subRuntime) SetTimer(id TimerID, d time.Duration) {
	s.parent().SetTimer(s.timerID(id), d)
}

// CancelTimer implements Runtime.
func (s *subRuntime) CancelTimer(id TimerID) { s.parent().CancelTimer(s.timerID(id)) }

// TimerPending implements Runtime.
func (s *subRuntime) TimerPending(id TimerID) bool {
	return s.parent().TimerPending(s.timerID(id))
}

// RadioOn implements Runtime: the radio is on while any subprotocol
// wants it on.
func (s *subRuntime) RadioOn() {
	s.wantRadio = true
	s.parent().RadioOn()
}

// RadioOff implements Runtime: the radio turns off only when no
// subprotocol still wants it (one instance sleeping must not deafen a
// sibling mid-download).
func (s *subRuntime) RadioOff() {
	s.wantRadio = false
	for _, rt := range s.demux.rts {
		if rt.wantRadio {
			return
		}
	}
	s.parent().RadioOff()
}

// IsRadioOn implements Runtime.
func (s *subRuntime) IsRadioOn() bool { return s.parent().IsRadioOn() }

// SetTxPower implements Runtime.
func (s *subRuntime) SetTxPower(level int) { s.parent().SetTxPower(level) }

// TxPower implements Runtime.
func (s *subRuntime) TxPower() int { return s.parent().TxPower() }

// Store implements Runtime, partitioned by segment space.
func (s *subRuntime) Store(seg, pkt int, payload []byte) error {
	if seg < 1 || seg >= SegSpace {
		return fmt.Errorf("node: segment %d outside demux segment space", seg)
	}
	return s.parent().Store(s.idx*SegSpace+seg, pkt, payload)
}

// Load implements Runtime.
func (s *subRuntime) Load(seg, pkt int) []byte {
	if seg < 1 || seg >= SegSpace {
		return nil
	}
	return s.parent().Load(s.idx*SegSpace+seg, pkt)
}

// HasPacket implements Runtime.
func (s *subRuntime) HasPacket(seg, pkt int) bool {
	if seg < 1 || seg >= SegSpace {
		return false
	}
	return s.parent().HasPacket(s.idx*SegSpace+seg, pkt)
}

// EraseStore implements Runtime. The parent EEPROM is shared, so only
// this instance's segment space may be released; the harness store
// erases per segment.
func (s *subRuntime) EraseStore() {
	// The DES harness exposes its EEPROM, allowing a per-segment
	// erase; other runtimes fall back to a full erase (a subprotocol
	// calling EraseStore mid-run is already a recovery path).
	if n, ok := s.parent().(*Node); ok {
		for seg := 1; seg < SegSpace; seg++ {
			n.EEPROM().EraseSegment(s.idx*SegSpace + seg)
		}
		return
	}
	s.parent().EraseStore()
}

// Complete implements Runtime: the mote is reprogrammed once every
// subscribed program has arrived.
func (s *subRuntime) Complete() {
	s.done = true
	for _, rt := range s.demux.rts {
		if !rt.done {
			return
		}
	}
	s.parent().Complete()
}

// Battery implements Runtime.
func (s *subRuntime) Battery() float64 { return s.parent().Battery() }

// Event implements Runtime.
func (s *subRuntime) Event(ev Event) { s.parent().Event(ev) }

// ProgramClassifier routes MNP messages by ProgramID: programs[i] maps
// to subprotocol i; unknown programs are dropped. Non-MNP messages are
// dropped too.
func ProgramClassifier(programs ...uint8) Classifier {
	index := make(map[uint8]int, len(programs))
	for i, p := range programs {
		index[p] = i
	}
	return func(p packet.Packet) int {
		var prog uint8
		switch m := p.(type) {
		case *packet.Advertise:
			prog = m.ProgramID
		case *packet.DownloadRequest:
			prog = m.ProgramID
		case *packet.StartDownload:
			prog = m.ProgramID
		case *packet.Data:
			prog = m.ProgramID
		case *packet.EndDownload:
			prog = m.ProgramID
		case *packet.Query:
			prog = m.ProgramID
		case *packet.RepairRequest:
			prog = m.ProgramID
		case *packet.StartSignal:
			prog = m.ProgramID
		default:
			return -1
		}
		if i, ok := index[prog]; ok {
			return i
		}
		return -1
	}
}
