package node

import (
	"testing"
	"time"

	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/sim"
	"mnp/internal/topology"
)

// subProto records its own runtime and deliveries.
type subProto struct {
	rt      Runtime
	packets []packet.Packet
	timers  []TimerID
}

func (p *subProto) Init(rt Runtime) { p.rt = rt }
func (p *subProto) OnPacket(pk packet.Packet, _ packet.NodeID) {
	p.packets = append(p.packets, pk)
}
func (p *subProto) OnTimer(id TimerID) { p.timers = append(p.timers, id) }

func demuxRig(t *testing.T) (*sim.Kernel, *Node, *Demux, *subProto, *subProto) {
	t.Helper()
	k := sim.New(1)
	l, err := topology.Line(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := radio.DefaultParams()
	p.BERFloor, p.BERCeil, p.AsymSigma = 1e-12, 1e-11, 0
	m, err := radio.NewMedium(k, l, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := &subProto{}, &subProto{}
	d, err := NewDemux(ProgramClassifier(1, 2), a, b)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(0, k, m, d, Config{TxPower: radio.PowerSim}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	return k, n, d, a, b
}

func TestNewDemuxValidation(t *testing.T) {
	if _, err := NewDemux(nil, &subProto{}); err == nil {
		t.Error("nil classifier accepted")
	}
	if _, err := NewDemux(ProgramClassifier(1)); err == nil {
		t.Error("no subprotocols accepted")
	}
	if _, err := NewDemux(ProgramClassifier(1), nil); err == nil {
		t.Error("nil subprotocol accepted")
	}
}

func TestDemuxRoutesByProgram(t *testing.T) {
	_, _, d, a, b := demuxRig(t)
	d.OnPacket(&packet.Advertise{Src: 5, ProgramID: 1}, 5)
	d.OnPacket(&packet.Data{Src: 5, ProgramID: 2}, 5)
	d.OnPacket(&packet.Query{Src: 5, ProgramID: 3}, 5)     // unsubscribed
	d.OnPacket(&packet.DelugeAdv{Src: 5, ProgramID: 1}, 5) // non-MNP
	if len(a.packets) != 1 || a.packets[0].Kind() != packet.KindAdvertise {
		t.Fatalf("sub a got %v", a.packets)
	}
	if len(b.packets) != 1 || b.packets[0].Kind() != packet.KindData {
		t.Fatalf("sub b got %v", b.packets)
	}
	if d.Sub(0) != a || d.Sub(1) != b {
		t.Fatal("Sub accessor wrong")
	}
}

func TestDemuxTimerNamespacing(t *testing.T) {
	k, _, _, a, b := demuxRig(t)
	a.rt.SetTimer(3, 10*time.Millisecond)
	b.rt.SetTimer(3, 20*time.Millisecond)
	b.rt.SetTimer(5, 30*time.Millisecond)
	if !a.rt.TimerPending(3) || !b.rt.TimerPending(3) || !b.rt.TimerPending(5) {
		t.Fatal("timers not pending in their namespaces")
	}
	if a.rt.TimerPending(5) {
		t.Fatal("sub a sees sub b's timer")
	}
	a.rt.CancelTimer(3)
	if a.rt.TimerPending(3) {
		t.Fatal("cancel failed")
	}
	if !b.rt.TimerPending(3) {
		t.Fatal("cancel crossed namespaces")
	}
	k.Run(time.Second)
	if len(a.timers) != 0 {
		t.Fatalf("sub a fired %v", a.timers)
	}
	if len(b.timers) != 2 || b.timers[0] != 3 || b.timers[1] != 5 {
		t.Fatalf("sub b fired %v, want [3 5]", b.timers)
	}
}

func TestDemuxStoragePartitioned(t *testing.T) {
	_, n, _, a, b := demuxRig(t)
	if err := a.rt.Store(1, 0, []byte{0xA}); err != nil {
		t.Fatal(err)
	}
	if err := b.rt.Store(1, 0, []byte{0xB}); err != nil {
		t.Fatal(err)
	}
	if got := a.rt.Load(1, 0); len(got) != 1 || got[0] != 0xA {
		t.Fatalf("sub a read %v", got)
	}
	if got := b.rt.Load(1, 0); len(got) != 1 || got[0] != 0xB {
		t.Fatalf("sub b read %v", got)
	}
	if !a.rt.HasPacket(1, 0) || !b.rt.HasPacket(1, 0) {
		t.Fatal("HasPacket lost partitioned slots")
	}
	// Invalid segments are rejected instead of clobbering a sibling.
	if err := a.rt.Store(0, 0, []byte{1}); err == nil {
		t.Fatal("segment 0 accepted")
	}
	if err := a.rt.Store(SegSpace, 0, []byte{1}); err == nil {
		t.Fatal("out-of-space segment accepted")
	}
	if a.rt.Load(SegSpace, 0) != nil || a.rt.HasPacket(0, 0) {
		t.Fatal("out-of-space reads returned data")
	}
	// Erasing sub a's space leaves sub b intact.
	a.rt.EraseStore()
	if a.rt.HasPacket(1, 0) {
		t.Fatal("sub a erase failed")
	}
	if !b.rt.HasPacket(1, 0) {
		t.Fatal("sub a's erase clobbered sub b")
	}
	_ = n
}

func TestDemuxRadioRefcount(t *testing.T) {
	_, n, _, a, b := demuxRig(t)
	a.rt.RadioOn()
	b.rt.RadioOn()
	if !n.IsRadioOn() {
		t.Fatal("radio off with two wanters")
	}
	a.rt.RadioOff()
	if !n.IsRadioOn() {
		t.Fatal("radio off while sub b still wants it")
	}
	if !a.rt.IsRadioOn() {
		t.Fatal("IsRadioOn should reflect the shared radio")
	}
	b.rt.RadioOff()
	if n.IsRadioOn() {
		t.Fatal("radio on with no wanters")
	}
}

func TestDemuxDelegates(t *testing.T) {
	_, n, _, a, _ := demuxRig(t)
	if a.rt.ID() != n.ID() {
		t.Fatal("ID not delegated")
	}
	if a.rt.Now() != n.Now() {
		t.Fatal("Now not delegated")
	}
	if a.rt.Rand() == nil {
		t.Fatal("Rand not delegated")
	}
	a.rt.SetTxPower(radio.PowerFull)
	if a.rt.TxPower() != radio.PowerFull || n.TxPower() != radio.PowerFull {
		t.Fatal("power not delegated")
	}
	if a.rt.Battery() != n.Battery() {
		t.Fatal("Battery not delegated")
	}
	a.rt.Event(Event{Kind: EventGotSegment, Seg: 1})
	a.rt.RadioOn()
	if err := a.rt.Send(&packet.Query{Src: 0, ProgramID: 1, SegID: 1}); err != nil {
		t.Fatalf("Send not delegated: %v", err)
	}
}

func TestDemuxCompletionRequiresAll(t *testing.T) {
	_, n, _, a, b := demuxRig(t)
	a.rt.Complete()
	if n.Completed() {
		t.Fatal("node completed with one of two programs")
	}
	b.rt.Complete()
	if !n.Completed() {
		t.Fatal("node incomplete with both programs done")
	}
}

func TestProgramClassifierCoversAllMNPKinds(t *testing.T) {
	c := ProgramClassifier(7)
	msgs := []packet.Packet{
		&packet.Advertise{ProgramID: 7},
		&packet.DownloadRequest{ProgramID: 7},
		&packet.StartDownload{ProgramID: 7},
		&packet.Data{ProgramID: 7},
		&packet.EndDownload{ProgramID: 7},
		&packet.Query{ProgramID: 7},
		&packet.RepairRequest{ProgramID: 7},
		&packet.StartSignal{ProgramID: 7},
	}
	for _, m := range msgs {
		if c(m) != 0 {
			t.Errorf("%s not routed", m.Kind())
		}
	}
	if c(&packet.Advertise{ProgramID: 8}) != -1 {
		t.Error("unknown program routed")
	}
	if c(&packet.MoapData{ProgramID: 7}) != -1 {
		t.Error("non-MNP message routed")
	}
}
