// Package node is the mote runtime harness: it gives a protocol state
// machine a Runtime (timers, CSMA MAC, radio power control, EEPROM,
// randomness, completion reporting) and drives it from the simulation
// kernel. Protocol logic is written once against Runtime and runs
// unchanged on this discrete-event harness and on the goroutine-based
// live runtime (internal/livenet).
package node

import (
	"fmt"
	"math/rand"
	"time"

	"mnp/internal/eeprom"
	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/sim"
)

// TimerID names a protocol timer. Each protocol defines its own
// constants; a node keyes pending timers by ID, and setting an ID
// replaces any pending timer with that ID.
type TimerID int

// Runtime is the mote-facing API protocols program against.
type Runtime interface {
	// ID returns this node's address.
	ID() packet.NodeID
	// Now returns the current time since simulation start.
	Now() time.Duration
	// Rand returns the node's deterministic RNG.
	Rand() *rand.Rand

	// Send queues p for CSMA broadcast at the current transmit power.
	Send(p packet.Packet) error
	// SetTimer schedules OnTimer(id) after d, replacing any pending
	// timer with the same ID.
	SetTimer(id TimerID, d time.Duration)
	// CancelTimer cancels the pending timer with the given ID, if any.
	CancelTimer(id TimerID)
	// TimerPending reports whether a timer with the given ID is set.
	TimerPending(id TimerID) bool

	// RadioOn powers the radio up; RadioOff powers it down (the node
	// then neither sends, receives, nor carrier-senses).
	RadioOn()
	RadioOff()
	// IsRadioOn reports the radio state.
	IsRadioOn() bool
	// SetTxPower selects the TinyOS power level for subsequent sends.
	SetTxPower(level int)
	// TxPower returns the current power level.
	TxPower() int

	// Store writes a received packet payload to EEPROM.
	Store(seg, pkt int, payload []byte) error
	// Load reads a payload back (nil if absent).
	Load(seg, pkt int) []byte
	// HasPacket reports whether (seg, pkt) is stored, without the cost
	// of a read.
	HasPacket(seg, pkt int) bool
	// EraseStore releases the EEPROM, as the fail state does.
	EraseStore()

	// Complete reports that this node holds the entire program.
	Complete()
	// Battery returns the node's remaining battery fraction in [0, 1];
	// the §6 battery-aware extension keys advertisement power off it.
	Battery() float64
	// Event publishes a protocol observation to the metrics layer.
	Event(ev Event)
}

// Protocol is a dissemination state machine.
type Protocol interface {
	// Init starts the protocol; called once, before any events.
	Init(rt Runtime)
	// OnPacket delivers a received frame.
	OnPacket(p packet.Packet, from packet.NodeID)
	// OnTimer delivers a timer expiry.
	OnTimer(id TimerID)
}

// EventKind classifies protocol observations.
type EventKind int

// Protocol observation kinds.
const (
	EventStateChange EventKind = iota + 1
	EventParentSet
	EventGotSegment
	EventGotCode
	EventBecameSender
	EventRebooted
	EventStoreErased
	EventDecodeOps
)

// Event is a protocol observation routed to the Observer.
type Event struct {
	Kind  EventKind
	State string        // EventStateChange: new state name
	Seg   int           // EventGotSegment / EventBecameSender / EventDecodeOps: segment ID
	Peer  packet.NodeID // EventParentSet: the parent
	Ops   int           // EventDecodeOps: GF(256) row operations spent decoding
}

// Observer receives per-node observations for metrics collection.
type Observer interface {
	NodeEvent(id packet.NodeID, at time.Duration, ev Event)
	RadioState(id packet.NodeID, at time.Duration, on bool)
	// StorageOp reports an EEPROM access at slot (seg, pkt); reads and
	// writes both carry the slot so invariant checkers can validate the
	// write-once property online.
	StorageOp(id packet.NodeID, write bool, seg, pkt, bytes int)
}

// MultiObserver fans observations out to several observers in order
// (e.g. a metrics collector plus a trace log).
type MultiObserver []Observer

// NodeEvent implements Observer.
func (m MultiObserver) NodeEvent(id packet.NodeID, at time.Duration, ev Event) {
	for _, o := range m {
		o.NodeEvent(id, at, ev)
	}
}

// RadioState implements Observer.
func (m MultiObserver) RadioState(id packet.NodeID, at time.Duration, on bool) {
	for _, o := range m {
		o.RadioState(id, at, on)
	}
}

// StorageOp implements Observer.
func (m MultiObserver) StorageOp(id packet.NodeID, write bool, seg, pkt, bytes int) {
	for _, o := range m {
		o.StorageOp(id, write, seg, pkt, bytes)
	}
}

var _ Observer = MultiObserver(nil)

// NopObserver ignores all observations.
type NopObserver struct{}

// NodeEvent implements Observer.
func (NopObserver) NodeEvent(packet.NodeID, time.Duration, Event) {}

// RadioState implements Observer.
func (NopObserver) RadioState(packet.NodeID, time.Duration, bool) {}

// StorageOp implements Observer.
func (NopObserver) StorageOp(packet.NodeID, bool, int, int, int) {}

var _ Observer = NopObserver{}

// Config sets per-node harness parameters.
type Config struct {
	// TxPower is the initial TinyOS power level.
	TxPower int
	// EEPROMCapacity in bytes; DefaultCapacity if zero.
	EEPROMCapacity int
	// QueueCap bounds the MAC send queue; DefaultQueueCap if zero.
	QueueCap int
	// Battery is the starting battery fraction; 1.0 if zero.
	Battery float64
	// BackoffSlot is the CSMA backoff quantum; DefaultBackoffSlot if
	// zero.
	BackoffSlot time.Duration
}

// MAC timing defaults, approximating TinyOS B-MAC on the CC1000:
// initial backoff uniform over 1..32 slots, congestion backoff uniform
// over 1..16 slots, one slot ≈ 0.4 ms.
const (
	DefaultBackoffSlot  = 400 * time.Microsecond
	initialBackoffSlots = 32
	congestionSlots     = 16
	interFrameGap       = 200 * time.Microsecond
	// DefaultQueueCap bounds the MAC queue; MNP keeps at most a
	// handful of frames in flight.
	DefaultQueueCap = 24
)

// Node binds a protocol to the simulated radio and storage.
type Node struct {
	id       packet.NodeID
	kernel   *sim.Kernel
	medium   *radio.Medium
	proto    Protocol
	store    *eeprom.Store
	observer Observer
	rng      *rand.Rand
	cfg      Config

	// timers and timerFns are indexed by TimerID: protocol timer IDs
	// are small and dense, so a slice beats a map on the per-event hot
	// path, and the per-ID callbacks are built once instead of
	// allocating a closure per SetTimer.
	timers   []sim.Timer
	timerFns []func()
	// attemptFn and afterTxFn are the CSMA callbacks, bound once so the
	// MAC schedules them without allocating.
	attemptFn func()
	afterTxFn func()
	queue     []queuedFrame
	sending   bool
	dead      bool

	completed   bool
	completedAt time.Duration
	battery     float64
	txPower     int
}

// New builds a node. The protocol is not started until Start.
func New(id packet.NodeID, k *sim.Kernel, m *radio.Medium, proto Protocol, cfg Config, obs Observer) (*Node, error) {
	if k == nil || m == nil || proto == nil {
		return nil, fmt.Errorf("node: nil kernel, medium, or protocol")
	}
	if cfg.EEPROMCapacity == 0 {
		cfg.EEPROMCapacity = eeprom.DefaultCapacity
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.Battery == 0 {
		cfg.Battery = 1.0
	}
	if cfg.BackoffSlot == 0 {
		cfg.BackoffSlot = DefaultBackoffSlot
	}
	if obs == nil {
		obs = NopObserver{}
	}
	store, err := eeprom.New(cfg.EEPROMCapacity)
	if err != nil {
		return nil, err
	}
	n := &Node{
		id:       id,
		kernel:   k,
		medium:   m,
		proto:    proto,
		store:    store,
		observer: obs,
		rng:      rand.New(sim.NewCountingSource(rand.NewSource(int64(id)*0x9E3779B9 ^ 0x51F1))),
		cfg:      cfg,
		battery:  cfg.Battery,
		txPower:  cfg.TxPower,
	}
	n.attemptFn = n.attempt
	n.afterTxFn = n.afterTx
	if err := m.Register(id, n.onFrame); err != nil {
		return nil, err
	}
	return n, nil
}

// Start runs the protocol's Init.
func (n *Node) Start() { n.proto.Init(n) }

// Kill destroys the node: radio permanently off, timers cancelled,
// queue dropped. Used for failure injection.
func (n *Node) Kill() {
	n.dead = true
	for _, t := range n.timers {
		t.Cancel()
	}
	n.timers = n.timers[:0]
	n.timerFns = n.timerFns[:0]
	n.queue = nil
	n.sending = false
	n.medium.Destroy(n.id)
	n.observer.RadioState(n.id, n.kernel.Now(), false)
}

// Crash stops the node the way a power failure does: timers, the MAC
// queue, and the protocol's RAM state are lost, but the EEPROM store
// survives and the radio hardware stays registered. Unlike Kill, a
// crashed node can be revived with Restart.
func (n *Node) Crash() {
	if n.dead {
		return
	}
	n.dead = true
	for _, t := range n.timers {
		t.Cancel()
	}
	// timers and timerFns grow in lockstep in SetTimer; truncate both so
	// a restarted node rebuilds them together.
	n.timers = n.timers[:0]
	n.timerFns = n.timerFns[:0]
	n.queue = nil
	n.sending = false
	n.medium.SetRadio(n.id, false)
	n.observer.RadioState(n.id, n.kernel.Now(), false)
}

// Restart revives a crashed node with a fresh protocol instance, as a
// rebooting mote does: EEPROM contents persist, everything in RAM is
// new. The protocol's Init runs immediately.
func (n *Node) Restart(proto Protocol) error {
	if !n.dead {
		return fmt.Errorf("node %v: restart of a live node", n.id)
	}
	if n.medium.Destroyed(n.id) {
		return fmt.Errorf("node %v: destroyed, cannot restart", n.id)
	}
	if proto == nil {
		return fmt.Errorf("node %v: nil protocol", n.id)
	}
	n.dead = false
	n.proto = proto
	n.observer.NodeEvent(n.id, n.kernel.Now(), Event{Kind: EventRebooted})
	proto.Init(n)
	return nil
}

// Dead reports whether the node has been killed.
func (n *Node) Dead() bool { return n.dead }

// Completed reports whether the protocol called Complete.
func (n *Node) Completed() bool { return n.completed }

// CompletedAt returns the completion time ("get code time").
func (n *Node) CompletedAt() time.Duration { return n.completedAt }

// EEPROM exposes the node's flash store for verification.
func (n *Node) EEPROM() *eeprom.Store { return n.store }

// Protocol returns the node's protocol instance.
func (n *Node) Protocol() Protocol { return n.proto }

func (n *Node) onFrame(p packet.Packet, meta radio.RxMeta) {
	if n.dead {
		return
	}
	n.proto.OnPacket(p, meta.From)
}

// --- Runtime implementation ---

// ID implements Runtime.
func (n *Node) ID() packet.NodeID { return n.id }

// Now implements Runtime.
func (n *Node) Now() time.Duration { return n.kernel.Now() }

// Rand implements Runtime.
func (n *Node) Rand() *rand.Rand { return n.rng }

// queuedFrame pairs a packet with the transmit power selected when it
// was queued, so a later SetTxPower does not retroactively change it.
type queuedFrame struct {
	pkt   packet.Packet
	power int
}

// Send implements Runtime: enqueue for CSMA transmission at the
// current transmit power.
func (n *Node) Send(p packet.Packet) error {
	if n.dead {
		return fmt.Errorf("node %v: dead", n.id)
	}
	if len(n.queue) >= n.cfg.QueueCap {
		return fmt.Errorf("node %v: MAC queue full", n.id)
	}
	n.queue = append(n.queue, queuedFrame{pkt: p, power: n.txPower})
	if !n.sending {
		n.sending = true
		n.scheduleAttempt(n.initialBackoff())
	}
	return nil
}

// QueueLen reports the number of frames waiting in the MAC queue.
func (n *Node) QueueLen() int { return len(n.queue) }

func (n *Node) initialBackoff() time.Duration {
	return time.Duration(1+n.rng.Intn(initialBackoffSlots)) * n.cfg.BackoffSlot
}

func (n *Node) congestionBackoff() time.Duration {
	return time.Duration(1+n.rng.Intn(congestionSlots)) * n.cfg.BackoffSlot
}

func (n *Node) scheduleAttempt(after time.Duration) {
	n.kernel.MustSchedule(after, n.attemptFn)
}

// attempt is the CSMA step: carrier-sense, then transmit or back off.
func (n *Node) attempt() {
	if n.dead || len(n.queue) == 0 {
		n.sending = false
		return
	}
	if !n.medium.RadioOn(n.id) {
		// Radio is off (the protocol went to sleep with frames
		// queued). Pause; RadioOn resumes the queue.
		n.sending = false
		return
	}
	if n.medium.Busy(n.id) {
		n.scheduleAttempt(n.congestionBackoff())
		return
	}
	q := n.queue[0]
	air, err := n.medium.Transmit(n.id, q.pkt, q.power)
	if err != nil {
		// Transient condition (e.g. raced with our own previous frame);
		// retry after a congestion backoff.
		n.scheduleAttempt(n.congestionBackoff())
		return
	}
	n.queue = n.queue[1:]
	n.kernel.MustSchedule(air+interFrameGap, n.afterTxFn)
}

// afterTx runs one inter-frame gap after a transmission: move on to the
// next queued frame or go idle.
func (n *Node) afterTx() {
	if len(n.queue) > 0 {
		n.scheduleAttempt(n.initialBackoff())
	} else {
		n.sending = false
	}
}

// SetTimer implements Runtime.
func (n *Node) SetTimer(id TimerID, d time.Duration) {
	if n.dead || id < 0 {
		return
	}
	for int(id) >= len(n.timers) {
		n.timers = append(n.timers, sim.Timer{})
		n.timerFns = append(n.timerFns, nil)
	}
	n.timers[id].Cancel()
	if n.timerFns[id] == nil {
		id := id
		n.timerFns[id] = func() {
			n.timers[id] = sim.Timer{}
			if !n.dead {
				n.proto.OnTimer(id)
			}
		}
	}
	n.timers[id] = n.kernel.MustSchedule(d, n.timerFns[id])
}

// CancelTimer implements Runtime.
func (n *Node) CancelTimer(id TimerID) {
	if id >= 0 && int(id) < len(n.timers) {
		n.timers[id].Cancel()
		n.timers[id] = sim.Timer{}
	}
}

// TimerPending implements Runtime.
func (n *Node) TimerPending(id TimerID) bool {
	return id >= 0 && int(id) < len(n.timers) && n.timers[id].Active()
}

// RadioOn implements Runtime.
func (n *Node) RadioOn() {
	if n.dead || n.medium.RadioOn(n.id) {
		return
	}
	n.medium.SetRadio(n.id, true)
	n.observer.RadioState(n.id, n.kernel.Now(), true)
	if len(n.queue) > 0 && !n.sending {
		n.sending = true
		n.scheduleAttempt(n.initialBackoff())
	}
}

// RadioOff implements Runtime.
func (n *Node) RadioOff() {
	if n.dead || !n.medium.RadioOn(n.id) {
		return
	}
	n.medium.SetRadio(n.id, false)
	n.observer.RadioState(n.id, n.kernel.Now(), false)
}

// IsRadioOn implements Runtime.
func (n *Node) IsRadioOn() bool { return n.medium.RadioOn(n.id) }

// SetTxPower implements Runtime.
func (n *Node) SetTxPower(level int) { n.txPower = level }

// TxPower implements Runtime.
func (n *Node) TxPower() int { return n.txPower }

// Store implements Runtime.
func (n *Node) Store(seg, pkt int, payload []byte) error {
	if err := n.store.Write(seg, pkt, payload); err != nil {
		return err
	}
	n.observer.StorageOp(n.id, true, seg, pkt, len(payload))
	return nil
}

// Load implements Runtime.
func (n *Node) Load(seg, pkt int) []byte {
	p := n.store.Read(seg, pkt)
	if p != nil {
		n.observer.StorageOp(n.id, false, seg, pkt, len(p))
	}
	return p
}

// HasPacket implements Runtime.
func (n *Node) HasPacket(seg, pkt int) bool { return n.store.Has(seg, pkt) }

// EraseStore implements Runtime.
func (n *Node) EraseStore() {
	n.store.Erase()
	n.observer.NodeEvent(n.id, n.kernel.Now(), Event{Kind: EventStoreErased})
}

// Complete implements Runtime.
func (n *Node) Complete() {
	if n.completed {
		return
	}
	n.completed = true
	n.completedAt = n.kernel.Now()
	n.observer.NodeEvent(n.id, n.completedAt, Event{Kind: EventGotCode})
}

// Battery implements Runtime.
func (n *Node) Battery() float64 { return n.battery }

// SetBattery adjusts the remaining battery fraction (experiment setup
// for the §6 battery-aware extension).
func (n *Node) SetBattery(b float64) { n.battery = b }

// Event implements Runtime.
func (n *Node) Event(ev Event) {
	n.observer.NodeEvent(n.id, n.kernel.Now(), ev)
}

var _ Runtime = (*Node)(nil)
