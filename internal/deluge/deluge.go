// Package deluge implements the Deluge baseline (Hui & Culler,
// SenSys 2004) at the fidelity the paper's comparison needs: a
// three-phase ADV/REQ/DATA handshake with Trickle-suppressed
// advertisements, fixed-size pages received strictly in order
// (pipelining), bit-vector loss tracking — and, crucially, a radio
// that never sleeps, which is the energy contrast MNP exploits.
package deluge

import (
	"fmt"
	"time"

	"mnp/internal/bitvec"
	"mnp/internal/image"
	"mnp/internal/node"
	"mnp/internal/packet"
	"mnp/internal/trickle"
)

// DefaultPagePackets is Deluge's page size: 48 packets per page.
const DefaultPagePackets = 48

// Timer IDs.
const (
	timerTrickleFire node.TimerID = iota + 1
	timerTrickleEnd
	timerTxData
	timerRequest
	timerRxWatchdog
)

// Config tunes the baseline.
type Config struct {
	// Base marks the seeding node, whose EEPROM is preloaded.
	Base bool
	// Image is required at the base.
	Image *image.Image
	// PagePackets is the page size; DefaultPagePackets if zero.
	PagePackets int
	// Trickle configures the advertisement timer.
	Trickle trickle.Config
	// DataInterval paces packet transmission within a page.
	DataInterval time.Duration
	// RequestDelayMax bounds the random delay before requesting after
	// an advertisement (request suppression window).
	RequestDelayMax time.Duration
	// RxTimeout bounds the wait for page data before re-requesting.
	RxTimeout time.Duration
	// MaxRequests bounds consecutive re-requests for one page before
	// falling back to maintenance.
	MaxRequests int
}

// DefaultConfig returns Deluge's published parameters adapted to the
// shared Mica-2 timing model.
func DefaultConfig() Config {
	return Config{
		PagePackets:     DefaultPagePackets,
		Trickle:         trickle.DefaultConfig(),
		DataInterval:    30 * time.Millisecond,
		RequestDelayMax: 500 * time.Millisecond,
		RxTimeout:       2 * time.Second,
		MaxRequests:     8,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.PagePackets == 0 {
		c.PagePackets = d.PagePackets
	}
	if c.Trickle.K == 0 {
		c.Trickle = d.Trickle
	}
	if c.DataInterval == 0 {
		c.DataInterval = d.DataInterval
	}
	if c.RequestDelayMax == 0 {
		c.RequestDelayMax = d.RequestDelayMax
	}
	if c.RxTimeout == 0 {
		c.RxTimeout = d.RxTimeout
	}
	if c.MaxRequests == 0 {
		c.MaxRequests = d.MaxRequests
	}
	return c
}

type geometry struct {
	known        bool
	programID    uint8
	version      uint8
	pages        int
	pageNominal  int
	totalPackets int
}

func (g geometry) packetsIn(page int) int {
	if page < 1 || page > g.pages {
		return 0
	}
	rest := g.totalPackets - (page-1)*g.pageNominal
	if rest > g.pageNominal {
		return g.pageNominal
	}
	return rest
}

// Deluge is one node's protocol instance.
type Deluge struct {
	cfg Config
	rt  node.Runtime
	tr  *trickle.Trickle

	geom      geometry
	havePages int
	missing   *bitvec.Vector // page havePages+1

	// Receive side.
	fetching    bool
	fetchFrom   packet.NodeID
	requests    int
	reqPending  bool
	reqSuppress bool

	// Transmit side.
	txPage   int
	txVector *bitvec.Vector
}

var _ node.Protocol = (*Deluge)(nil)

// New returns a Deluge instance.
func New(cfg Config) *Deluge {
	return &Deluge{cfg: cfg.withDefaults()}
}

// HavePages returns the number of complete in-order pages held.
func (d *Deluge) HavePages() int { return d.havePages }

// Init implements node.Protocol.
func (d *Deluge) Init(rt node.Runtime) {
	d.rt = rt
	rt.RadioOn() // Deluge never turns the radio off
	tr, err := trickle.New(d.cfg.Trickle, trickle.Hooks{
		Rand:     rt.Rand(),
		SetFire:  func(dur time.Duration) { rt.SetTimer(timerTrickleFire, dur) },
		SetEnd:   func(dur time.Duration) { rt.SetTimer(timerTrickleEnd, dur) },
		Transmit: d.sendAdv,
	})
	if err != nil {
		panic(fmt.Sprintf("deluge: %v", err))
	}
	d.tr = tr
	if d.cfg.Base {
		if d.cfg.Image == nil {
			panic("deluge: base station requires an image")
		}
		im := d.cfg.Image
		pageNominal := d.cfg.PagePackets
		pages := (im.TotalPackets() + pageNominal - 1) / pageNominal
		d.geom = geometry{
			known:        true,
			programID:    im.ProgramID(),
			version:      1,
			pages:        pages,
			pageNominal:  pageNominal,
			totalPackets: im.TotalPackets(),
		}
		for seq := 0; seq < im.TotalPackets(); seq++ {
			payload, _ := im.FlatPayload(seq)
			page := seq/pageNominal + 1
			pkt := seq % pageNominal
			if err := rt.Store(page, pkt, payload); err != nil {
				panic(fmt.Sprintf("deluge: preloading base image: %v", err))
			}
		}
		d.havePages = pages
		rt.Complete()
	}
	d.tr.Start()
}

// OnTimer implements node.Protocol.
func (d *Deluge) OnTimer(id node.TimerID) {
	switch id {
	case timerTrickleFire:
		d.tr.Fire()
	case timerTrickleEnd:
		d.tr.IntervalEnd()
	case timerTxData:
		d.txTick()
	case timerRequest:
		d.sendRequest()
	case timerRxWatchdog:
		d.rxWatchdog()
	}
}

// OnPacket implements node.Protocol.
func (d *Deluge) OnPacket(p packet.Packet, from packet.NodeID) {
	switch pkt := p.(type) {
	case *packet.DelugeAdv:
		d.onAdv(pkt)
	case *packet.DelugeReq:
		d.onReq(pkt)
	case *packet.DelugeData:
		d.onData(pkt)
	}
}

func (d *Deluge) sendAdv() {
	if !d.geom.known {
		return
	}
	_ = d.rt.Send(&packet.DelugeAdv{
		Src:          d.rt.ID(),
		ProgramID:    d.geom.programID,
		Version:      d.geom.version,
		NumPages:     uint8(d.geom.pages),
		HavePages:    uint8(d.havePages),
		PagePackets:  uint8(d.geom.pageNominal),
		TotalPackets: uint16(d.geom.totalPackets),
	})
}

func (d *Deluge) onAdv(a *packet.DelugeAdv) {
	if !d.geom.known {
		if a.NumPages == 0 || a.PagePackets == 0 || a.TotalPackets == 0 {
			return
		}
		d.geom = geometry{
			known:        true,
			programID:    a.ProgramID,
			version:      a.Version,
			pages:        int(a.NumPages),
			pageNominal:  int(a.PagePackets),
			totalPackets: int(a.TotalPackets),
		}
	}
	if a.ProgramID != d.geom.programID {
		return
	}
	switch {
	case int(a.HavePages) == d.havePages:
		// Consistent: contributes to suppression.
		d.tr.Hear()
	case int(a.HavePages) > d.havePages:
		// Someone is ahead: inconsistency, and a download opportunity.
		d.tr.Reset()
		if !d.fetching && d.txVector == nil {
			d.scheduleRequest(a.Src)
		}
	default:
		// Someone is behind: inconsistency; our advertisement (soon,
		// thanks to the reset) will prompt their request.
		d.tr.Reset()
	}
}

func (d *Deluge) scheduleRequest(from packet.NodeID) {
	d.fetchFrom = from
	d.requests = 0
	d.reqPending = true
	d.reqSuppress = false
	delay := time.Duration(d.rt.Rand().Int63n(int64(d.cfg.RequestDelayMax)))
	d.rt.SetTimer(timerRequest, delay)
}

func (d *Deluge) sendRequest() {
	if !d.reqPending {
		return
	}
	if d.reqSuppress {
		// Another node already requested our page from the same
		// neighborhood; wait for the data instead of duplicating the
		// request.
		d.reqSuppress = false
		d.beginFetch()
		return
	}
	page := d.havePages + 1
	if page > d.geom.pages {
		d.reqPending = false
		return
	}
	d.ensureMissing()
	if d.missing == nil {
		// The advertised geometry was bogus (zero-size page); drop the
		// request rather than chase it.
		d.reqPending = false
		return
	}
	_ = d.rt.Send(&packet.DelugeReq{
		Src:         d.rt.ID(),
		DestID:      d.fetchFrom,
		ProgramID:   d.geom.programID,
		Page:        uint8(page),
		PagePackets: uint8(d.missing.Len()),
		Missing:     d.missing.Clone(),
	})
	d.requests++
	d.beginFetch()
}

func (d *Deluge) beginFetch() {
	d.reqPending = false
	d.fetching = true
	d.rt.SetTimer(timerRxWatchdog, d.cfg.RxTimeout)
}

func (d *Deluge) rxWatchdog() {
	if !d.fetching {
		return
	}
	if d.requests < d.cfg.MaxRequests {
		d.reqPending = true
		d.reqSuppress = false
		d.sendRequest()
		return
	}
	// Give up for now; maintenance advertisements will retrigger.
	d.fetching = false
}

func (d *Deluge) ensureMissing() {
	want := d.geom.packetsIn(d.havePages + 1)
	if d.missing != nil && d.missing.Len() == want {
		return
	}
	v, err := bitvec.AllSet(want)
	if err != nil {
		d.missing = nil
		return
	}
	d.missing = v
}

func (d *Deluge) onReq(r *packet.DelugeReq) {
	if !d.geom.known || r.ProgramID != d.geom.programID {
		return
	}
	page := int(r.Page)
	if r.DestID != d.rt.ID() {
		// Overheard request: if it covers the page we were about to
		// request from the same area, suppress our duplicate.
		if d.reqPending && page == d.havePages+1 {
			d.reqSuppress = true
		}
		return
	}
	if page < 1 || page > d.havePages {
		return // cannot serve a page we do not hold
	}
	want := d.geom.packetsIn(page)
	if d.txVector == nil || d.txPage != page {
		if d.txVector != nil && d.txPage != page {
			return // busy serving another page; requester will retry
		}
		v, err := bitvec.New(want)
		if err != nil {
			return
		}
		d.txPage = page
		d.txVector = v
		d.rt.SetTimer(timerTxData, d.cfg.DataInterval)
	}
	if r.Missing != nil && r.Missing.Len() == d.txVector.Len() {
		_ = d.txVector.Or(r.Missing)
	} else {
		d.txVector.SetAll()
	}
	// A request is an inconsistency in Trickle terms.
	d.tr.Reset()
}

func (d *Deluge) txTick() {
	if d.txVector == nil {
		return
	}
	pkt := d.txVector.First()
	if pkt < 0 {
		d.txVector = nil
		d.txPage = 0
		return
	}
	d.txVector.Clear(pkt)
	payload := d.rt.Load(d.txPage, pkt)
	if payload != nil {
		_ = d.rt.Send(&packet.DelugeData{
			Src:       d.rt.ID(),
			ProgramID: d.geom.programID,
			Page:      uint8(d.txPage),
			PacketID:  uint8(pkt),
			Payload:   payload,
		})
	}
	d.rt.SetTimer(timerTxData, d.cfg.DataInterval)
}

func (d *Deluge) onData(pkt *packet.DelugeData) {
	if !d.geom.known || pkt.ProgramID != d.geom.programID {
		return
	}
	page := int(pkt.Page)
	if page != d.havePages+1 {
		return // pages are taken strictly in order
	}
	d.ensureMissing()
	if d.missing == nil {
		return
	}
	id := int(pkt.PacketID)
	if id >= d.missing.Len() {
		return
	}
	if d.missing.Get(id) {
		if err := d.rt.Store(page, id, pkt.Payload); err != nil {
			return
		}
		d.missing.Clear(id)
	}
	if d.fetching {
		d.rt.SetTimer(timerRxWatchdog, d.cfg.RxTimeout)
	}
	if d.missing.None() {
		d.completePage()
	}
}

func (d *Deluge) completePage() {
	d.havePages++
	d.missing = nil
	d.fetching = false
	d.requests = 0
	d.rt.CancelTimer(timerRxWatchdog)
	d.rt.Event(node.Event{Kind: node.EventGotSegment, Seg: d.havePages})
	if d.havePages == d.geom.pages {
		d.rt.Complete()
	}
	// New state: reset the maintenance timer so neighbors learn fast.
	d.tr.Reset()
}
