package deluge

import (
	"mnp/internal/node"
	"mnp/internal/protoreg"
)

// ApplyOptions overlays declarative option strings onto a Deluge
// configuration; unknown keys or malformed values are errors.
func ApplyOptions(cfg *Config, options map[string]string) error {
	o := protoreg.NewOpts(options)
	o.Int("page_packets", &cfg.PagePackets)
	o.Duration("data_interval", &cfg.DataInterval)
	o.Duration("request_delay_max", &cfg.RequestDelayMax)
	o.Duration("rx_timeout", &cfg.RxTimeout)
	o.Int("max_requests", &cfg.MaxRequests)
	o.Duration("trickle_tau_min", &cfg.Trickle.TauMin)
	o.Duration("trickle_tau_max", &cfg.Trickle.TauMax)
	o.Int("trickle_k", &cfg.Trickle.K)
	return o.Err()
}

func init() {
	protoreg.Register("deluge", func(b protoreg.Build) (node.Protocol, error) {
		cfg := DefaultConfig()
		if b.Base {
			cfg.Base = true
			cfg.Image = b.Image
		}
		if err := ApplyOptions(&cfg, b.Options); err != nil {
			return nil, err
		}
		return New(cfg), nil
	})
}
