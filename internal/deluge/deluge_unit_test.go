package deluge

import (
	"testing"

	"mnp/internal/bitvec"
	"mnp/internal/image"
	"mnp/internal/node/nodetest"
	"mnp/internal/packet"
)

// smallImage: 3 pages of 8 packets (4-byte payloads).
func smallImage(t *testing.T) *image.Image {
	t.Helper()
	im, err := image.Random(1, 3, 17, image.WithSegmentPackets(8), image.WithPayloadSize(4))
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.PagePackets = 8
	return cfg
}

func newBaseRig(t *testing.T) (*Deluge, *nodetest.Runtime) {
	t.Helper()
	cfg := smallConfig()
	cfg.Base = true
	cfg.Image = smallImage(t)
	d := New(cfg)
	rt := nodetest.New(0)
	rt.Attach(d)
	return d, rt
}

func newReceiverRig(t *testing.T) (*Deluge, *nodetest.Runtime) {
	t.Helper()
	d := New(smallConfig())
	rt := nodetest.New(9)
	rt.Attach(d)
	return d, rt
}

func baseAdv(src packet.NodeID, have int) *packet.DelugeAdv {
	return &packet.DelugeAdv{
		Src: src, ProgramID: 1, Version: 1,
		NumPages: 3, HavePages: uint8(have), PagePackets: 8, TotalPackets: 24,
	}
}

func lastOfKind(rt *nodetest.Runtime, k packet.Kind) packet.Packet {
	for i := len(rt.Sent) - 1; i >= 0; i-- {
		if rt.Sent[i].Kind() == k {
			return rt.Sent[i]
		}
	}
	return nil
}

func countKind(rt *nodetest.Runtime, k packet.Kind) int {
	c := 0
	for _, p := range rt.Sent {
		if p.Kind() == k {
			c++
		}
	}
	return c
}

func TestBasePreloadsAndAdvertises(t *testing.T) {
	d, rt := newBaseRig(t)
	if !rt.Done {
		t.Fatal("base not complete")
	}
	if d.HavePages() != 3 {
		t.Fatalf("HavePages = %d", d.HavePages())
	}
	if !rt.Radio {
		t.Fatal("radio off")
	}
	// The trickle fire timer eventually sends an advertisement.
	rt.Fire(timerTrickleFire)
	adv, ok := lastOfKind(rt, packet.KindDelugeAdv).(*packet.DelugeAdv)
	if !ok {
		t.Fatal("no advertisement after trickle fire")
	}
	if adv.HavePages != 3 || adv.NumPages != 3 || adv.PagePackets != 8 || adv.TotalPackets != 24 {
		t.Fatalf("bad adv: %+v", adv)
	}
}

func TestConsistentAdvSuppressesOwn(t *testing.T) {
	d, rt := newBaseRig(t)
	// A same-state advertisement counts toward suppression (k=1).
	d.OnPacket(baseAdv(5, 3), 5)
	rt.Fire(timerTrickleFire)
	if countKind(rt, packet.KindDelugeAdv) != 0 {
		t.Fatal("advertised despite suppression")
	}
	// Next interval, quiet again: transmits.
	rt.Fire(timerTrickleEnd)
	rt.Fire(timerTrickleFire)
	if countKind(rt, packet.KindDelugeAdv) != 1 {
		t.Fatal("suppression leaked into next interval")
	}
}

func TestBehindAdvertiserTriggersRequest(t *testing.T) {
	d, rt := newReceiverRig(t)
	d.OnPacket(baseAdv(4, 3), 4)
	if !rt.TimerPending(timerRequest) {
		t.Fatal("no request scheduled")
	}
	rt.Fire(timerRequest)
	req, ok := lastOfKind(rt, packet.KindDelugeReq).(*packet.DelugeReq)
	if !ok {
		t.Fatal("no request sent")
	}
	if req.DestID != 4 || req.Page != 1 || req.PagePackets != 8 {
		t.Fatalf("bad request: %+v", req)
	}
	if req.Missing == nil || req.Missing.Count() != 8 {
		t.Fatalf("bad missing vector: %v", req.Missing)
	}
}

func TestOverheardRequestSuppressesOwn(t *testing.T) {
	d, rt := newReceiverRig(t)
	d.OnPacket(baseAdv(4, 3), 4)
	// Someone else requests page 1 first (destined elsewhere).
	other := &packet.DelugeReq{Src: 7, DestID: 4, ProgramID: 1, Page: 1, PagePackets: 8}
	d.OnPacket(other, 7)
	rt.Fire(timerRequest)
	if countKind(rt, packet.KindDelugeReq) != 0 {
		t.Fatal("duplicate request not suppressed")
	}
	// But the node still arms its fetch watchdog to collect the data.
	if !rt.TimerPending(timerRxWatchdog) {
		t.Fatal("suppressed requester not fetching")
	}
}

func TestServeRequestedPacketsOnly(t *testing.T) {
	d, rt := newBaseRig(t)
	miss := bitvec.MustNew(8)
	miss.Set(2)
	miss.Set(5)
	d.OnPacket(&packet.DelugeReq{Src: 9, DestID: 0, ProgramID: 1, Page: 2, PagePackets: 8, Missing: miss}, 9)
	for i := 0; i < 10 && rt.TimerPending(timerTxData); i++ {
		rt.Fire(timerTxData)
	}
	var ids []int
	for _, p := range rt.Sent {
		if dd, ok := p.(*packet.DelugeData); ok {
			if dd.Page != 2 {
				t.Fatalf("served page %d", dd.Page)
			}
			ids = append(ids, int(dd.PacketID))
		}
	}
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 5 {
		t.Fatalf("served packets %v, want [2 5]", ids)
	}
}

func TestCannotServePageNotHeld(t *testing.T) {
	d, rt := newReceiverRig(t)
	d.OnPacket(baseAdv(4, 3), 4) // learn geometry, havePages still 0
	d.OnPacket(&packet.DelugeReq{Src: 7, DestID: 9, ProgramID: 1, Page: 1, PagePackets: 8}, 7)
	if rt.TimerPending(timerTxData) {
		t.Fatal("serving a page we do not hold")
	}
}

func TestPagesInOrderAndCompletion(t *testing.T) {
	d, rt := newReceiverRig(t)
	img := smallImage(t)
	d.OnPacket(baseAdv(4, 3), 4)
	// Data for page 2 before page 1 is ignored.
	p20, _ := img.Payload(2, 0)
	d.OnPacket(&packet.DelugeData{Src: 4, ProgramID: 1, Page: 2, PacketID: 0, Payload: p20}, 4)
	if d.HavePages() != 0 || rt.EEPROM.Slots() != 0 {
		t.Fatal("out-of-order page accepted")
	}
	// Feed pages in order.
	for page := 1; page <= 3; page++ {
		for pkt := 0; pkt < 8; pkt++ {
			payload, _ := img.Payload(page, pkt)
			d.OnPacket(&packet.DelugeData{Src: 4, ProgramID: 1, Page: uint8(page), PacketID: uint8(pkt), Payload: payload}, 4)
		}
		if d.HavePages() != page {
			t.Fatalf("HavePages = %d after page %d", d.HavePages(), page)
		}
	}
	if !rt.Done {
		t.Fatal("not complete after all pages")
	}
	if rt.EEPROM.MaxWriteCount() != 1 {
		t.Fatal("write-once violated")
	}
}

func TestRxWatchdogRetriesThenGivesUp(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxRequests = 2
	d := New(cfg)
	rt := nodetest.New(9)
	rt.Attach(d)
	d.OnPacket(baseAdv(4, 3), 4)
	rt.Fire(timerRequest) // request #1
	rt.Fire(timerRxWatchdog)
	if got := countKind(rt, packet.KindDelugeReq); got != 2 {
		t.Fatalf("requests after first watchdog = %d, want 2", got)
	}
	rt.Fire(timerRxWatchdog)
	// MaxRequests reached: the node abandons the fetch.
	rt.Fire(timerRxWatchdog)
	if got := countKind(rt, packet.KindDelugeReq); got != 2 {
		t.Fatalf("requests after giving up = %d, want 2", got)
	}
}

func TestForeignProgramIgnored(t *testing.T) {
	d, rt := newReceiverRig(t)
	d.OnPacket(baseAdv(4, 3), 4) // learn program 1
	foreign := baseAdv(5, 3)
	foreign.ProgramID = 2
	d.OnPacket(foreign, 5)
	if rt.TimerPending(timerRequest) {
		// The first adv scheduled a request; clear and check the
		// foreign one did not rearm toward node 5.
		rt.Fire(timerRequest)
		req := lastOfKind(rt, packet.KindDelugeReq).(*packet.DelugeReq)
		if req.DestID == 5 {
			t.Fatal("requested a foreign program")
		}
	}
}
