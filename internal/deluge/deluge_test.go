package deluge

import (
	"testing"
	"time"

	"mnp/internal/image"
	"mnp/internal/node"
	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/sim"
	"mnp/internal/topology"
)

type testnet struct {
	kernel  *sim.Kernel
	network *node.Network
	img     *image.Image
	protos  []*Deluge
}

func buildNet(t *testing.T, rows, cols int, spacing float64, packets int, seed int64) *testnet {
	t.Helper()
	// Build an image with the requested number of 22-byte packets.
	raw := make([]byte, packets*22)
	for i := range raw {
		raw[i] = byte(i * 31)
	}
	img, err := image.New(1, raw)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := topology.Grid(rows, cols, spacing)
	if err != nil {
		t.Fatal(err)
	}
	kernel := sim.New(seed)
	medium, err := radio.NewMedium(kernel, layout, radio.DefaultParams(), seed+1)
	if err != nil {
		t.Fatal(err)
	}
	tn := &testnet{kernel: kernel, img: img}
	nw, err := node.NewNetwork(kernel, medium, layout, func(id packet.NodeID) (node.Protocol, node.Config) {
		cfg := DefaultConfig()
		if id == 0 {
			cfg.Base = true
			cfg.Image = img
		}
		d := New(cfg)
		tn.protos = append(tn.protos, d)
		return d, node.Config{TxPower: radio.PowerSim}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tn.network = nw
	nw.Start()
	return tn
}

func (tn *testnet) verifyAll(t *testing.T) {
	t.Helper()
	nominal := DefaultPagePackets
	for _, n := range tn.network.Nodes {
		if !n.Completed() {
			t.Fatalf("node %v incomplete", n.ID())
		}
		var data []byte
		for seq := 0; seq < tn.img.TotalPackets(); seq++ {
			p := n.EEPROM().Read(seq/nominal+1, seq%nominal)
			if p == nil {
				t.Fatalf("node %v missing flat packet %d", n.ID(), seq)
			}
			data = append(data, p...)
		}
		if !tn.img.Verify(data) {
			t.Fatalf("node %v image mismatch", n.ID())
		}
		if w := n.EEPROM().MaxWriteCount(); w > 1 {
			t.Fatalf("node %v rewrote EEPROM (max %d)", n.ID(), w)
		}
	}
}

func TestTwoNodeTransfer(t *testing.T) {
	tn := buildNet(t, 1, 2, 10, 100, 1) // 100 packets = 3 pages
	if !tn.network.RunUntilComplete(time.Hour) {
		t.Fatalf("incomplete: %d/%d", tn.network.CompletedCount(), len(tn.network.Nodes))
	}
	tn.verifyAll(t)
}

func TestMultihopPipelinedTransfer(t *testing.T) {
	// 1×5 line at 20 ft: strictly multihop; 96 packets = 2 pages.
	tn := buildNet(t, 1, 5, 20, 96, 2)
	if !tn.network.RunUntilComplete(2 * time.Hour) {
		t.Fatalf("incomplete: %d/%d", tn.network.CompletedCount(), len(tn.network.Nodes))
	}
	tn.verifyAll(t)
}

func TestGridTransfer(t *testing.T) {
	tn := buildNet(t, 3, 3, 10, 96, 3)
	if !tn.network.RunUntilComplete(2 * time.Hour) {
		t.Fatalf("incomplete: %d/%d", tn.network.CompletedCount(), len(tn.network.Nodes))
	}
	tn.verifyAll(t)
}

func TestRadioNeverSleeps(t *testing.T) {
	// The defining contrast with MNP: Deluge's idle listening time is
	// its completion time.
	tn := buildNet(t, 1, 3, 10, 48, 4)
	offSeen := false
	done := tn.kernel.RunUntil(func() bool {
		for _, n := range tn.network.Nodes {
			if !n.Dead() && !n.IsRadioOn() {
				offSeen = true
			}
		}
		return tn.network.AllCompleted()
	}, time.Hour)
	if !done {
		t.Fatal("incomplete")
	}
	if offSeen {
		t.Fatal("a Deluge radio turned off")
	}
}

func TestPagesArriveInOrder(t *testing.T) {
	tn := buildNet(t, 1, 2, 10, 144, 5) // 3 pages
	if !tn.network.RunUntilComplete(time.Hour) {
		t.Fatal("incomplete")
	}
	if got := tn.protos[1].HavePages(); got != 3 {
		t.Fatalf("HavePages = %d, want 3", got)
	}
}

func TestBaseWithoutImagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	k := sim.New(1)
	l, _ := topology.Line(1, 10)
	m, _ := radio.NewMedium(k, l, radio.DefaultParams(), 1)
	n, err := node.New(0, k, m, New(Config{Base: true}), node.Config{TxPower: radio.PowerSim}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
}

func TestDeterministic(t *testing.T) {
	run := func() time.Duration {
		tn := buildNet(t, 2, 2, 10, 48, 7)
		if !tn.network.RunUntilComplete(time.Hour) {
			t.Fatal("incomplete")
		}
		return tn.network.CompletionTime()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
