package energy

import (
	"math"
	"testing"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestTable1Values(t *testing.T) {
	// The exact Table 1 constants are part of the reproduction
	// contract; T1 in EXPERIMENTS.md prints them.
	if !almost(Table1.TransmitPacket, 20.0) {
		t.Errorf("TransmitPacket = %v", Table1.TransmitPacket)
	}
	if !almost(Table1.ReceivePacket, 8.0) {
		t.Errorf("ReceivePacket = %v", Table1.ReceivePacket)
	}
	if !almost(Table1.IdleListenMs, 1.250) {
		t.Errorf("IdleListenMs = %v", Table1.IdleListenMs)
	}
	if !almost(Table1.EEPROMRead16B, 1.111) {
		t.Errorf("EEPROMRead16B = %v", Table1.EEPROMRead16B)
	}
	if !almost(Table1.EEPROMWrite16B, 83.333) {
		t.Errorf("EEPROMWrite16B = %v", Table1.EEPROMWrite16B)
	}
}

func TestIdleListeningDominates(t *testing.T) {
	// The paper's premise: a second of idle listening (1250 nAh) costs
	// more than transmitting 60 packets. If the cost table ever loses
	// this property the protocol's motivation breaks.
	idlePerSecond := Table1.IdleListenMs * 1000
	if idlePerSecond <= 60*Table1.TransmitPacket {
		t.Fatalf("idle/s = %v should exceed 60 tx = %v", idlePerSecond, 60*Table1.TransmitPacket)
	}
}

func TestLedgerArithmetic(t *testing.T) {
	l := NewLedger(Table1)
	l.AddTx(10)
	l.AddRx(100)
	l.AddIdle(2 * time.Second)
	l.AddEEPROMWrite(22) // 2 units
	l.AddEEPROMRead(16)  // 1 unit

	wantRadio := 10*20.0 + 100*8.0 + 2000*1.25
	if !almost(l.RadioCharge(), wantRadio) {
		t.Errorf("RadioCharge = %v, want %v", l.RadioCharge(), wantRadio)
	}
	wantStorage := 2*83.333 + 1*1.111
	if !almost(l.StorageCharge(), wantStorage) {
		t.Errorf("StorageCharge = %v, want %v", l.StorageCharge(), wantStorage)
	}
	if !almost(l.Total(), wantRadio+wantStorage) {
		t.Errorf("Total = %v", l.Total())
	}
	if l.String() == "" {
		t.Error("empty String")
	}
}

func TestUnits16Rounding(t *testing.T) {
	tests := []struct{ bytes, units int }{
		{0, 0}, {-5, 0}, {1, 1}, {16, 1}, {17, 2}, {22, 2}, {32, 2}, {33, 3},
	}
	for _, tt := range tests {
		l := NewLedger(Table1)
		l.AddEEPROMWrite(tt.bytes)
		if l.EEPROMWrites != tt.units {
			t.Errorf("AddEEPROMWrite(%d) units = %d, want %d", tt.bytes, l.EEPROMWrites, tt.units)
		}
	}
}

func TestNegativeIdleIgnored(t *testing.T) {
	l := NewLedger(Table1)
	l.AddIdle(-time.Second)
	if l.IdleListening != 0 {
		t.Fatalf("negative idle recorded: %v", l.IdleListening)
	}
}

func TestZeroLedger(t *testing.T) {
	l := NewLedger(Table1)
	if l.Total() != 0 {
		t.Fatalf("fresh ledger total = %v", l.Total())
	}
}
