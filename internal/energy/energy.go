// Package energy reproduces the paper's energy accounting (Table 1):
// TOSSIM does not model energy, so MNP's evaluation counts operations —
// packets transmitted and received, milliseconds of idle listening, and
// EEPROM reads/writes — and multiplies by per-operation charge costs
// measured on Mica motes.
//
// Costs are in nAh (nano-ampere-hours), as in the paper. The digits of
// Table 1 were lost in the OCR of our source; the values below are the
// standard Mica measurements the paper cites (see DESIGN.md).
package energy

import (
	"fmt"
	"time"
)

// Costs holds the per-operation charge costs of Table 1, in nAh.
type Costs struct {
	TransmitPacket float64 // one packet transmission
	ReceivePacket  float64 // one packet reception
	IdleListenMs   float64 // one millisecond of idle listening
	EEPROMRead16B  float64 // reading 16 bytes of external flash
	EEPROMWrite16B float64 // writing 16 bytes of external flash
	DecodeRowOp    float64 // one GF(256) row operation while decoding coded frames
}

// Table1 is the paper's Table 1: power required by various Mica
// operations.
var Table1 = Costs{
	TransmitPacket: 20.000,
	ReceivePacket:  8.000,
	IdleListenMs:   1.250,
	EEPROMRead16B:  1.111,
	EEPROMWrite16B: 83.333,
	// Not in the paper (MNP does no coding): one Galois row
	// scale-and-add over a ~150-byte row on the ATmega128, derived from
	// the Deluge-era cycle counts for table-driven GF(256) multiplies.
	// A full 128-packet segment decode (~8k row ops) then charges about
	// as much as eight packet transmissions, which keeps the coded
	// protocols' CPU bill honest without drowning the radio numbers.
	DecodeRowOp: 0.020,
}

// Ledger accumulates one node's operation counts and converts them to
// charge. The zero value is not usable; create with NewLedger.
type Ledger struct {
	costs Costs

	TxPackets     int
	RxPackets     int
	IdleListening time.Duration
	EEPROMReads   int // 16-byte units
	EEPROMWrites  int // 16-byte units
	DecodeRowOps  int
}

// NewLedger returns a ledger using the given cost table.
func NewLedger(costs Costs) *Ledger {
	return &Ledger{costs: costs}
}

// AddTx records n transmitted packets.
func (l *Ledger) AddTx(n int) { l.TxPackets += n }

// AddRx records n received packets.
func (l *Ledger) AddRx(n int) { l.RxPackets += n }

// AddIdle records d of idle listening (radio on, neither transmitting
// nor receiving).
func (l *Ledger) AddIdle(d time.Duration) {
	if d > 0 {
		l.IdleListening += d
	}
}

// AddEEPROMRead records a read of n bytes, charged in 16-byte units.
func (l *Ledger) AddEEPROMRead(n int) { l.EEPROMReads += units16(n) }

// AddEEPROMWrite records a write of n bytes, charged in 16-byte units.
func (l *Ledger) AddEEPROMWrite(n int) { l.EEPROMWrites += units16(n) }

// AddDecode records n GF(256) row operations spent decoding coded
// frames (zero for the paper's uncoded protocols).
func (l *Ledger) AddDecode(n int) {
	if n > 0 {
		l.DecodeRowOps += n
	}
}

func units16(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + 15) / 16
}

// RadioCharge returns the charge spent on the radio in nAh.
func (l *Ledger) RadioCharge() float64 {
	return float64(l.TxPackets)*l.costs.TransmitPacket +
		float64(l.RxPackets)*l.costs.ReceivePacket +
		l.IdleListening.Seconds()*1000*l.costs.IdleListenMs
}

// StorageCharge returns the charge spent on EEPROM in nAh.
func (l *Ledger) StorageCharge() float64 {
	return float64(l.EEPROMReads)*l.costs.EEPROMRead16B +
		float64(l.EEPROMWrites)*l.costs.EEPROMWrite16B
}

// DecodeCharge returns the charge spent on coded-frame decoding in nAh.
func (l *Ledger) DecodeCharge() float64 {
	return float64(l.DecodeRowOps) * l.costs.DecodeRowOp
}

// Total returns the node's total charge in nAh.
func (l *Ledger) Total() float64 {
	return l.RadioCharge() + l.StorageCharge() + l.DecodeCharge()
}

// String summarizes the ledger. Decode operations appear only when any
// were charged, so the uncoded protocols' reports are unchanged.
func (l *Ledger) String() string {
	decode := ""
	if l.DecodeRowOps > 0 {
		decode = fmt.Sprintf(" decode=%d", l.DecodeRowOps)
	}
	return fmt.Sprintf("tx=%d rx=%d idle=%v eepromR=%d eepromW=%d%s total=%.1f nAh",
		l.TxPackets, l.RxPackets, l.IdleListening.Round(time.Millisecond),
		l.EEPROMReads, l.EEPROMWrites, decode, l.Total())
}
