package protoreg_test

import (
	"strings"
	"testing"
	"time"

	"mnp/internal/core"
	_ "mnp/internal/deluge"
	_ "mnp/internal/moap"
	"mnp/internal/packet"
	"mnp/internal/protoreg"
	_ "mnp/internal/rlnc"
	_ "mnp/internal/xnp"
)

func TestAllProtocolsRegistered(t *testing.T) {
	want := []string{"deluge", "mnp", "moap", "rlnc", "xnp"}
	got := protoreg.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		if _, ok := protoreg.Lookup(name); !ok {
			t.Errorf("Lookup(%q) missing", name)
		}
	}
	// Lookup is case-insensitive — CLI flags and scenario files may
	// capitalize.
	if _, ok := protoreg.Lookup("MNP"); !ok {
		t.Error("Lookup is case-sensitive; want insensitive")
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := protoreg.Lookup("gcp"); ok {
		t.Fatal("Lookup(gcp) succeeded; want miss")
	}
	err := protoreg.ValidateOptions("gcp", nil)
	if err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("ValidateOptions(gcp) = %v, want unknown-protocol error", err)
	}
}

func TestValidateOptions(t *testing.T) {
	cases := []struct {
		proto   string
		options map[string]string
		wantErr string
	}{
		{"mnp", nil, ""},
		{"mnp", map[string]string{"no_sleep": "true", "advertise_count": "3"}, ""},
		{"mnp", map[string]string{"no_sleep": "maybe"}, "no_sleep"},
		{"mnp", map[string]string{"nosleep": "true"}, "unknown option nosleep"},
		{"deluge", map[string]string{"page_packets": "24", "trickle_k": "2"}, ""},
		{"deluge", map[string]string{"window": "8"}, "unknown option"},
		{"moap", map[string]string{"window": "8", "max_naks": "2"}, ""},
		{"xnp", map[string]string{"query_interval": "3s"}, ""},
		{"xnp", map[string]string{"query_interval": "fast"}, "query_interval"},
	}
	for _, c := range cases {
		err := protoreg.ValidateOptions(c.proto, c.options)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s %v: unexpected error %v", c.proto, c.options, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s %v: error %v, want substring %q", c.proto, c.options, err, c.wantErr)
		}
	}
}

// TestOptsAtomicCommit pins the all-or-nothing contract: an option map
// with any bad or unknown key must leave every destination exactly as
// it was, even when other keys in the same map parsed fine. (The old
// behavior applied values eagerly in map-iteration order, so a failing
// Build could leave a half-mutated Config behind — harmless for
// builders that discard it, a haunting for any that reuse it.)
func TestOptsAtomicCommit(t *testing.T) {
	type config struct {
		sleep    bool
		count    int
		rate     float64
		interval time.Duration
	}
	base := config{sleep: true, count: 3, rate: 0.5, interval: time.Second}
	decode := func(m map[string]string) (config, error) {
		cfg := base
		o := protoreg.NewOpts(m)
		o.Bool("sleep", &cfg.sleep)
		o.Int("count", &cfg.count)
		o.Float("rate", &cfg.rate)
		o.Duration("interval", &cfg.interval)
		return cfg, o.Err()
	}

	good := map[string]string{"sleep": "false", "count": "9", "rate": "1.25", "interval": "250ms"}
	cfg, err := decode(good)
	if err != nil {
		t.Fatalf("clean map: %v", err)
	}
	if want := (config{false, 9, 1.25, 250 * time.Millisecond}); cfg != want {
		t.Fatalf("clean map: cfg = %+v, want %+v", cfg, want)
	}

	bad := []map[string]string{
		{"sleep": "false", "count": "nine"},          // parse error after a good key
		{"count": "9", "sleep": "maybe"},             // parse error, other key good
		{"count": "9", "rate": "1.25", "typo": "1"},  // unknown key, all others good
		{"interval": "250ms", "count": "9", "x": ""}, // unknown empty-valued key
	}
	for _, m := range bad {
		cfg, err := decode(m)
		if err == nil {
			t.Fatalf("map %v: expected error", m)
		}
		if cfg != base {
			t.Fatalf("map %v: config mutated to %+v despite error %v; want untouched %+v", m, cfg, err, base)
		}
	}
}

func TestMNPBuilderAppliesOptionsAndTune(t *testing.T) {
	b, ok := protoreg.Lookup("mnp")
	if !ok {
		t.Fatal("mnp not registered")
	}
	var tuned packet.NodeID
	p, err := b(protoreg.Build{
		ID:      7,
		Options: map[string]string{"data_interval": "45ms"},
		Tune: func(id packet.NodeID, c *core.Config) {
			tuned = id
			c.AdvertiseCount = 9
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p == nil {
		t.Fatal("builder returned nil protocol")
	}
	if tuned != 7 {
		t.Fatalf("tune hook saw node %v, want 7", tuned)
	}
	_ = time.Millisecond // options parsing covered by ValidateOptions cases
}
