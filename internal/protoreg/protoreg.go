// Package protoreg is the dissemination-protocol registry. Each
// protocol package (core, deluge, moap, xnp) registers a named builder
// from an init function; the experiment layer and the declarative
// scenario layer look protocols up by name instead of switching over a
// hard-coded enum, so adding a protocol is one Register call away and
// scenario files can say `name = "deluge"` without the experiment
// package knowing every implementation.
package protoreg

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"mnp/internal/image"
	"mnp/internal/node"
	"mnp/internal/packet"
)

// Build carries everything a protocol constructor needs to instantiate
// the state machine for one node.
type Build struct {
	// ID is the node being built.
	ID packet.NodeID
	// Base marks the seeding node; its configuration is preloaded with
	// Image.
	Base bool
	// Image is the program under dissemination (required at the base).
	Image *image.Image
	// Options are declarative protocol knobs, typically compiled from a
	// scenario file. Keys are protocol-specific (see each package's
	// register.go); an unknown key is an error. Nil leaves the protocol
	// at its package defaults, byte-identical to pre-registry builds.
	Options map[string]string
	// Tune is an optional protocol-specific typed hook applied after
	// Options — e.g. func(packet.NodeID, *core.Config) for MNP. Builders
	// that do not recognize the value ignore it.
	Tune any
}

// Builder constructs one node's protocol instance.
type Builder func(Build) (node.Protocol, error)

var registry = map[string]Builder{}

// Register adds a protocol under a unique lower-case name. It is meant
// to be called from package init functions and panics on duplicates or
// empty names — both are programmer errors.
func Register(name string, b Builder) {
	if name == "" || strings.ToLower(name) != name {
		panic(fmt.Sprintf("protoreg: invalid protocol name %q (must be non-empty lower-case)", name))
	}
	if b == nil {
		panic(fmt.Sprintf("protoreg: nil builder for %q", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("protoreg: protocol %q registered twice", name))
	}
	registry[name] = b
}

// Lookup finds a registered builder by name (case-insensitive).
func Lookup(name string) (Builder, bool) {
	b, ok := registry[strings.ToLower(name)]
	return b, ok
}

// Names lists the registered protocols in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ValidateOptions dry-builds a non-base instance of the named protocol
// so malformed option maps fail at configuration time, not mid-fleet
// construction.
func ValidateOptions(name string, options map[string]string) error {
	b, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("protoreg: unknown protocol %q (have %s)", name, strings.Join(Names(), ", "))
	}
	if _, err := b(Build{Options: options}); err != nil {
		return fmt.Errorf("protoreg: %s options: %w", name, err)
	}
	return nil
}

// Option-map decoding helpers shared by the per-protocol builders.
// Each Opt* consumes a key (so the builder can reject leftovers with
// CheckUnused), parses it into the destination, and accumulates the
// first error.

// Opts wraps an option map with single-error accumulation. Parsed
// values are buffered and committed by Err() only when the whole map
// decoded cleanly — a bad key must not leave the caller's config
// half-mutated, because builders validate against the same config
// value they then construct from.
type Opts struct {
	m       map[string]string
	used    map[string]bool
	err     error
	pending []func() // deferred assignments, applied atomically by Err
}

// NewOpts wraps an option map for decoding.
func NewOpts(m map[string]string) *Opts {
	return &Opts{m: m, used: make(map[string]bool, len(m))}
}

func (o *Opts) lookup(key string) (string, bool) {
	v, ok := o.m[key]
	if ok {
		o.used[key] = true
	}
	return v, ok
}

func (o *Opts) fail(key, val string, err error) {
	if o.err == nil {
		o.err = fmt.Errorf("option %s=%q: %w", key, val, err)
	}
}

// Bool parses key as a boolean into dst when present.
func (o *Opts) Bool(key string, dst *bool) {
	if v, ok := o.lookup(key); ok {
		b, err := strconv.ParseBool(v)
		if err != nil {
			o.fail(key, v, err)
			return
		}
		o.pending = append(o.pending, func() { *dst = b })
	}
}

// Int parses key as an integer into dst when present.
func (o *Opts) Int(key string, dst *int) {
	if v, ok := o.lookup(key); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			o.fail(key, v, err)
			return
		}
		o.pending = append(o.pending, func() { *dst = n })
	}
}

// Float parses key as a float into dst when present.
func (o *Opts) Float(key string, dst *float64) {
	if v, ok := o.lookup(key); ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			o.fail(key, v, err)
			return
		}
		o.pending = append(o.pending, func() { *dst = f })
	}
}

// Duration parses key as a time.Duration into dst when present.
func (o *Opts) Duration(key string, dst *time.Duration) {
	if v, ok := o.lookup(key); ok {
		d, err := time.ParseDuration(v)
		if err != nil {
			o.fail(key, v, err)
			return
		}
		o.pending = append(o.pending, func() { *dst = d })
	}
}

// Err returns the first decode error plus an unknown-key check: every
// key the builder did not consume is a typo worth rejecting loudly.
// Only when both checks pass are the buffered assignments applied, so
// an erroring map leaves every destination untouched.
func (o *Opts) Err() error {
	if o.err != nil {
		return o.err
	}
	var unknown []string
	for k := range o.m {
		if !o.used[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("unknown option %s", strings.Join(unknown, ", "))
	}
	for _, commit := range o.pending {
		commit()
	}
	o.pending = nil
	return nil
}
