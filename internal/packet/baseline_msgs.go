package packet

import (
	"encoding/binary"
	"fmt"

	"mnp/internal/bitvec"
)

// DelugeAdv is Deluge's Trickle-suppressed advertisement: the version
// of the image the node knows about and the number of complete pages
// it holds. Neighbors with fewer pages request the next page.
type DelugeAdv struct {
	Src          NodeID
	ProgramID    uint8
	Version      uint8
	NumPages     uint8  // total pages in the image
	HavePages    uint8  // pages Src holds completely
	PagePackets  uint8  // packets per full page
	TotalPackets uint16 // packets in the whole image
}

// Kind implements Packet.
func (*DelugeAdv) Kind() Kind { return KindDelugeAdv }

// Dest implements Packet.
func (*DelugeAdv) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (a *DelugeAdv) Source() NodeID { return a.Src }

func (a *DelugeAdv) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(a.Src))
	b = append(b, a.ProgramID, a.Version, a.NumPages, a.HavePages, a.PagePackets)
	return binary.BigEndian.AppendUint16(b, a.TotalPackets)
}

func (a *DelugeAdv) decodePayload(b []byte) error {
	if len(b) != 9 {
		return fmt.Errorf("deluge adv payload %d bytes, want 9", len(b))
	}
	a.Src = NodeID(binary.BigEndian.Uint16(b))
	a.ProgramID, a.Version, a.NumPages, a.HavePages, a.PagePackets = b[2], b[3], b[4], b[5], b[6]
	a.TotalPackets = binary.BigEndian.Uint16(b[7:])
	return nil
}

// DelugeReq asks DestID to transmit the packets of Page marked in
// Missing.
type DelugeReq struct {
	Src         NodeID
	DestID      NodeID
	ProgramID   uint8
	Page        uint8
	PagePackets uint8
	Missing     *bitvec.Vector
}

// Kind implements Packet.
func (*DelugeReq) Kind() Kind { return KindDelugeReq }

// Dest implements Packet.
func (r *DelugeReq) Dest() NodeID { return r.DestID }

// Source implements Packet.
func (r *DelugeReq) Source() NodeID { return r.Src }

func (r *DelugeReq) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(r.Src))
	b = binary.BigEndian.AppendUint16(b, uint16(r.DestID))
	b = append(b, r.ProgramID, r.Page, r.PagePackets)
	if r.Missing != nil {
		b = append(b, r.Missing.Bytes()...)
	}
	return b
}

func (r *DelugeReq) decodePayload(b []byte) error {
	if len(b) < 7 {
		return fmt.Errorf("deluge req payload %d bytes, want >= 7", len(b))
	}
	r.Src = NodeID(binary.BigEndian.Uint16(b))
	r.DestID = NodeID(binary.BigEndian.Uint16(b[2:]))
	r.ProgramID, r.Page, r.PagePackets = b[4], b[5], b[6]
	rest := b[7:]
	if len(rest) == 0 {
		r.Missing = nil
		return nil
	}
	v, err := bitvec.Decode(int(r.PagePackets), rest)
	if err != nil {
		return err
	}
	r.Missing = v
	return nil
}

// DelugeData carries one packet of a Deluge page.
type DelugeData struct {
	Src       NodeID
	ProgramID uint8
	Page      uint8
	PacketID  uint8
	Payload   []byte
}

// Kind implements Packet.
func (*DelugeData) Kind() Kind { return KindDelugeData }

// Dest implements Packet.
func (*DelugeData) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (d *DelugeData) Source() NodeID { return d.Src }

func (d *DelugeData) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(d.Src))
	b = append(b, d.ProgramID, d.Page, d.PacketID)
	return append(b, d.Payload...)
}

func (d *DelugeData) decodePayload(b []byte) error {
	if len(b) < 5 {
		return fmt.Errorf("deluge data payload %d bytes, want >= 5", len(b))
	}
	d.Src = NodeID(binary.BigEndian.Uint16(b))
	d.ProgramID, d.Page, d.PacketID = b[2], b[3], b[4]
	d.Payload = append([]byte(nil), b[5:]...)
	return nil
}

// MoapPublish announces that Src holds the complete image (MOAP is
// strictly hop-by-hop: only nodes with the whole image publish).
type MoapPublish struct {
	Src       NodeID
	ProgramID uint8
	Version   uint8
	Total     uint16 // total packets in the image
}

// Kind implements Packet.
func (*MoapPublish) Kind() Kind { return KindMoapPublish }

// Dest implements Packet.
func (*MoapPublish) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (p *MoapPublish) Source() NodeID { return p.Src }

func (p *MoapPublish) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(p.Src))
	b = append(b, p.ProgramID, p.Version)
	return binary.BigEndian.AppendUint16(b, p.Total)
}

func (p *MoapPublish) decodePayload(b []byte) error {
	if len(b) != 6 {
		return fmt.Errorf("moap publish payload %d bytes, want 6", len(b))
	}
	p.Src = NodeID(binary.BigEndian.Uint16(b))
	p.ProgramID, p.Version = b[2], b[3]
	p.Total = binary.BigEndian.Uint16(b[4:])
	return nil
}

// MoapSubscribe subscribes Src to DestID's transmission of the image.
type MoapSubscribe struct {
	Src       NodeID
	DestID    NodeID
	ProgramID uint8
}

// Kind implements Packet.
func (*MoapSubscribe) Kind() Kind { return KindMoapSubscribe }

// Dest implements Packet.
func (s *MoapSubscribe) Dest() NodeID { return s.DestID }

// Source implements Packet.
func (s *MoapSubscribe) Source() NodeID { return s.Src }

func (s *MoapSubscribe) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(s.Src))
	b = binary.BigEndian.AppendUint16(b, uint16(s.DestID))
	return append(b, s.ProgramID)
}

func (s *MoapSubscribe) decodePayload(b []byte) error {
	if len(b) != 5 {
		return fmt.Errorf("moap subscribe payload %d bytes, want 5", len(b))
	}
	s.Src = NodeID(binary.BigEndian.Uint16(b))
	s.DestID = NodeID(binary.BigEndian.Uint16(b[2:]))
	s.ProgramID = b[4]
	return nil
}

// MoapData carries one packet of the whole image, identified by a flat
// sequence number (MOAP has no segments).
type MoapData struct {
	Src       NodeID
	ProgramID uint8
	Seq       uint16
	Total     uint16
	Payload   []byte
}

// Kind implements Packet.
func (*MoapData) Kind() Kind { return KindMoapData }

// Dest implements Packet.
func (*MoapData) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (d *MoapData) Source() NodeID { return d.Src }

func (d *MoapData) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(d.Src))
	b = append(b, d.ProgramID)
	b = binary.BigEndian.AppendUint16(b, d.Seq)
	b = binary.BigEndian.AppendUint16(b, d.Total)
	return append(b, d.Payload...)
}

func (d *MoapData) decodePayload(b []byte) error {
	if len(b) < 7 {
		return fmt.Errorf("moap data payload %d bytes, want >= 7", len(b))
	}
	d.Src = NodeID(binary.BigEndian.Uint16(b))
	d.ProgramID = b[2]
	d.Seq = binary.BigEndian.Uint16(b[3:])
	d.Total = binary.BigEndian.Uint16(b[5:])
	d.Payload = append([]byte(nil), b[7:]...)
	return nil
}

// MoapNak is a unicast retransmission request for the earliest packet
// missing from Src's sliding window.
type MoapNak struct {
	Src       NodeID
	DestID    NodeID
	ProgramID uint8
	Seq       uint16
}

// Kind implements Packet.
func (*MoapNak) Kind() Kind { return KindMoapNak }

// Dest implements Packet.
func (n *MoapNak) Dest() NodeID { return n.DestID }

// Source implements Packet.
func (n *MoapNak) Source() NodeID { return n.Src }

func (n *MoapNak) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(n.Src))
	b = binary.BigEndian.AppendUint16(b, uint16(n.DestID))
	b = append(b, n.ProgramID)
	return binary.BigEndian.AppendUint16(b, n.Seq)
}

func (n *MoapNak) decodePayload(b []byte) error {
	if len(b) != 7 {
		return fmt.Errorf("moap nak payload %d bytes, want 7", len(b))
	}
	n.Src = NodeID(binary.BigEndian.Uint16(b))
	n.DestID = NodeID(binary.BigEndian.Uint16(b[2:]))
	n.ProgramID = b[4]
	n.Seq = binary.BigEndian.Uint16(b[5:])
	return nil
}

// XnpData carries one packet of the image from the base station in
// XNP's single-hop broadcast.
type XnpData struct {
	Src       NodeID
	ProgramID uint8
	Seq       uint16
	Total     uint16
	Payload   []byte
}

// Kind implements Packet.
func (*XnpData) Kind() Kind { return KindXnpData }

// Dest implements Packet.
func (*XnpData) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (d *XnpData) Source() NodeID { return d.Src }

func (d *XnpData) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(d.Src))
	b = append(b, d.ProgramID)
	b = binary.BigEndian.AppendUint16(b, d.Seq)
	b = binary.BigEndian.AppendUint16(b, d.Total)
	return append(b, d.Payload...)
}

func (d *XnpData) decodePayload(b []byte) error {
	if len(b) < 7 {
		return fmt.Errorf("xnp data payload %d bytes, want >= 7", len(b))
	}
	d.Src = NodeID(binary.BigEndian.Uint16(b))
	d.ProgramID = b[2]
	d.Seq = binary.BigEndian.Uint16(b[3:])
	d.Total = binary.BigEndian.Uint16(b[5:])
	d.Payload = append([]byte(nil), b[7:]...)
	return nil
}

// XnpQueryStatus asks all single-hop receivers to report their first
// missing packet so the base station can run a retransmission round.
type XnpQueryStatus struct {
	Src       NodeID
	ProgramID uint8
}

// Kind implements Packet.
func (*XnpQueryStatus) Kind() Kind { return KindXnpQueryStatus }

// Dest implements Packet.
func (*XnpQueryStatus) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (q *XnpQueryStatus) Source() NodeID { return q.Src }

func (q *XnpQueryStatus) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(q.Src))
	return append(b, q.ProgramID)
}

func (q *XnpQueryStatus) decodePayload(b []byte) error {
	if len(b) != 3 {
		return fmt.Errorf("xnp query payload %d bytes, want 3", len(b))
	}
	q.Src = NodeID(binary.BigEndian.Uint16(b))
	q.ProgramID = b[2]
	return nil
}

// XnpStatusComplete is the Seq value reporting "nothing missing".
const XnpStatusComplete uint16 = 0xFFFF

// XnpStatus reports the first packet Src is missing (or
// XnpStatusComplete).
type XnpStatus struct {
	Src       NodeID
	DestID    NodeID
	ProgramID uint8
	Seq       uint16
}

// Kind implements Packet.
func (*XnpStatus) Kind() Kind { return KindXnpStatus }

// Dest implements Packet.
func (s *XnpStatus) Dest() NodeID { return s.DestID }

// Source implements Packet.
func (s *XnpStatus) Source() NodeID { return s.Src }

func (s *XnpStatus) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(s.Src))
	b = binary.BigEndian.AppendUint16(b, uint16(s.DestID))
	b = append(b, s.ProgramID)
	return binary.BigEndian.AppendUint16(b, s.Seq)
}

func (s *XnpStatus) decodePayload(b []byte) error {
	if len(b) != 7 {
		return fmt.Errorf("xnp status payload %d bytes, want 7", len(b))
	}
	s.Src = NodeID(binary.BigEndian.Uint16(b))
	s.DestID = NodeID(binary.BigEndian.Uint16(b[2:]))
	s.ProgramID = b[4]
	s.Seq = binary.BigEndian.Uint16(b[5:])
	return nil
}
