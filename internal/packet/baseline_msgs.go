package packet

import (
	"fmt"

	"mnp/internal/bitvec"
)

// DelugeAdv is Deluge's Trickle-suppressed advertisement: the version
// of the image the node knows about and the number of complete pages
// it holds. Neighbors with fewer pages request the next page.
type DelugeAdv struct {
	Src          NodeID
	ProgramID    uint8
	Version      uint8
	NumPages     uint8  // total pages in the image
	HavePages    uint8  // pages Src holds completely
	PagePackets  uint8  // packets per full page
	TotalPackets uint16 // packets in the whole image
}

// Kind implements Packet.
func (*DelugeAdv) Kind() Kind { return KindDelugeAdv }

// Dest implements Packet.
func (*DelugeAdv) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (a *DelugeAdv) Source() NodeID { return a.Src }

func (a *DelugeAdv) appendPayload(b []byte) []byte {
	b = appendNodeID(b, a.Src)
	b = append(b, a.ProgramID, a.Version, a.NumPages, a.HavePages, a.PagePackets)
	return appendU16(b, a.TotalPackets)
}

func (a *DelugeAdv) decodePayload(b []byte) error {
	r := payloadReader{b: b}
	a.Src = r.nodeID()
	a.ProgramID, a.Version, a.NumPages, a.HavePages, a.PagePackets = r.u8(), r.u8(), r.u8(), r.u8(), r.u8()
	a.TotalPackets = r.u16()
	if !r.ok() {
		return fmt.Errorf("malformed deluge adv payload (%d bytes)", len(b))
	}
	return nil
}

// DelugeReq asks DestID to transmit the packets of Page marked in
// Missing.
type DelugeReq struct {
	Src         NodeID
	DestID      NodeID
	ProgramID   uint8
	Page        uint8
	PagePackets uint8
	Missing     *bitvec.Vector
}

// Kind implements Packet.
func (*DelugeReq) Kind() Kind { return KindDelugeReq }

// Dest implements Packet.
func (r *DelugeReq) Dest() NodeID { return r.DestID }

// Source implements Packet.
func (r *DelugeReq) Source() NodeID { return r.Src }

func (r *DelugeReq) appendPayload(b []byte) []byte {
	b = appendNodeID(b, r.Src)
	b = appendNodeID(b, r.DestID)
	b = append(b, r.ProgramID, r.Page, r.PagePackets)
	if r.Missing != nil {
		b = append(b, r.Missing.Bytes()...)
	}
	return b
}

func (r *DelugeReq) decodePayload(b []byte) error {
	rd := payloadReader{b: b}
	r.Src = rd.nodeID()
	r.DestID = rd.nodeID()
	r.ProgramID, r.Page, r.PagePackets = rd.u8(), rd.u8(), rd.u8()
	rest := rd.rest()
	if !rd.ok() {
		return fmt.Errorf("malformed deluge req payload (%d bytes)", len(b))
	}
	if len(rest) == 0 {
		r.Missing = nil
		return nil
	}
	v, err := bitvec.DecodeReuse(r.Missing, int(r.PagePackets), rest)
	if err != nil {
		return err
	}
	r.Missing = v
	return nil
}

// DelugeData carries one packet of a Deluge page.
type DelugeData struct {
	Src       NodeID
	ProgramID uint8
	Page      uint8
	PacketID  uint8
	Payload   []byte
}

// Kind implements Packet.
func (*DelugeData) Kind() Kind { return KindDelugeData }

// Dest implements Packet.
func (*DelugeData) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (d *DelugeData) Source() NodeID { return d.Src }

func (d *DelugeData) appendPayload(b []byte) []byte {
	b = appendNodeID(b, d.Src)
	b = append(b, d.ProgramID, d.Page, d.PacketID)
	return append(b, d.Payload...)
}

func (d *DelugeData) decodePayload(b []byte) error {
	r := payloadReader{b: b}
	d.Src = r.nodeID()
	d.ProgramID, d.Page, d.PacketID = r.u8(), r.u8(), r.u8()
	if r.failed {
		return fmt.Errorf("malformed deluge data payload (%d bytes)", len(b))
	}
	d.Payload = append(d.Payload[:0], r.rest()...)
	return nil
}

// MoapPublish announces that Src holds the complete image (MOAP is
// strictly hop-by-hop: only nodes with the whole image publish).
type MoapPublish struct {
	Src       NodeID
	ProgramID uint8
	Version   uint8
	Total     uint16 // total packets in the image
}

// Kind implements Packet.
func (*MoapPublish) Kind() Kind { return KindMoapPublish }

// Dest implements Packet.
func (*MoapPublish) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (p *MoapPublish) Source() NodeID { return p.Src }

func (p *MoapPublish) appendPayload(b []byte) []byte {
	b = appendNodeID(b, p.Src)
	b = append(b, p.ProgramID, p.Version)
	return appendU16(b, p.Total)
}

func (p *MoapPublish) decodePayload(b []byte) error {
	r := payloadReader{b: b}
	p.Src = r.nodeID()
	p.ProgramID, p.Version = r.u8(), r.u8()
	p.Total = r.u16()
	if !r.ok() {
		return fmt.Errorf("malformed moap publish payload (%d bytes)", len(b))
	}
	return nil
}

// MoapSubscribe subscribes Src to DestID's transmission of the image.
type MoapSubscribe struct {
	Src       NodeID
	DestID    NodeID
	ProgramID uint8
}

// Kind implements Packet.
func (*MoapSubscribe) Kind() Kind { return KindMoapSubscribe }

// Dest implements Packet.
func (s *MoapSubscribe) Dest() NodeID { return s.DestID }

// Source implements Packet.
func (s *MoapSubscribe) Source() NodeID { return s.Src }

func (s *MoapSubscribe) appendPayload(b []byte) []byte {
	b = appendNodeID(b, s.Src)
	b = appendNodeID(b, s.DestID)
	return append(b, s.ProgramID)
}

func (s *MoapSubscribe) decodePayload(b []byte) error {
	r := payloadReader{b: b}
	s.Src = r.nodeID()
	s.DestID = r.nodeID()
	s.ProgramID = r.u8()
	if !r.ok() {
		return fmt.Errorf("malformed moap subscribe payload (%d bytes)", len(b))
	}
	return nil
}

// MoapData carries one packet of the whole image, identified by a flat
// sequence number (MOAP has no segments).
type MoapData struct {
	Src       NodeID
	ProgramID uint8
	Seq       uint16
	Total     uint16
	Payload   []byte
}

// Kind implements Packet.
func (*MoapData) Kind() Kind { return KindMoapData }

// Dest implements Packet.
func (*MoapData) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (d *MoapData) Source() NodeID { return d.Src }

func (d *MoapData) appendPayload(b []byte) []byte {
	b = appendNodeID(b, d.Src)
	b = append(b, d.ProgramID)
	b = appendU16(b, d.Seq)
	b = appendU16(b, d.Total)
	return append(b, d.Payload...)
}

func (d *MoapData) decodePayload(b []byte) error {
	r := payloadReader{b: b}
	d.Src = r.nodeID()
	d.ProgramID = r.u8()
	d.Seq = r.u16()
	d.Total = r.u16()
	if r.failed {
		return fmt.Errorf("malformed moap data payload (%d bytes)", len(b))
	}
	d.Payload = append(d.Payload[:0], r.rest()...)
	return nil
}

// MoapNak is a unicast retransmission request for the earliest packet
// missing from Src's sliding window.
type MoapNak struct {
	Src       NodeID
	DestID    NodeID
	ProgramID uint8
	Seq       uint16
}

// Kind implements Packet.
func (*MoapNak) Kind() Kind { return KindMoapNak }

// Dest implements Packet.
func (n *MoapNak) Dest() NodeID { return n.DestID }

// Source implements Packet.
func (n *MoapNak) Source() NodeID { return n.Src }

func (n *MoapNak) appendPayload(b []byte) []byte {
	b = appendNodeID(b, n.Src)
	b = appendNodeID(b, n.DestID)
	b = append(b, n.ProgramID)
	return appendU16(b, n.Seq)
}

func (n *MoapNak) decodePayload(b []byte) error {
	r := payloadReader{b: b}
	n.Src = r.nodeID()
	n.DestID = r.nodeID()
	n.ProgramID = r.u8()
	n.Seq = r.u16()
	if !r.ok() {
		return fmt.Errorf("malformed moap nak payload (%d bytes)", len(b))
	}
	return nil
}

// XnpData carries one packet of the image from the base station in
// XNP's single-hop broadcast.
type XnpData struct {
	Src       NodeID
	ProgramID uint8
	Seq       uint16
	Total     uint16
	Payload   []byte
}

// Kind implements Packet.
func (*XnpData) Kind() Kind { return KindXnpData }

// Dest implements Packet.
func (*XnpData) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (d *XnpData) Source() NodeID { return d.Src }

func (d *XnpData) appendPayload(b []byte) []byte {
	b = appendNodeID(b, d.Src)
	b = append(b, d.ProgramID)
	b = appendU16(b, d.Seq)
	b = appendU16(b, d.Total)
	return append(b, d.Payload...)
}

func (d *XnpData) decodePayload(b []byte) error {
	r := payloadReader{b: b}
	d.Src = r.nodeID()
	d.ProgramID = r.u8()
	d.Seq = r.u16()
	d.Total = r.u16()
	if r.failed {
		return fmt.Errorf("malformed xnp data payload (%d bytes)", len(b))
	}
	d.Payload = append(d.Payload[:0], r.rest()...)
	return nil
}

// XnpQueryStatus asks all single-hop receivers to report their first
// missing packet so the base station can run a retransmission round.
type XnpQueryStatus struct {
	Src       NodeID
	ProgramID uint8
}

// Kind implements Packet.
func (*XnpQueryStatus) Kind() Kind { return KindXnpQueryStatus }

// Dest implements Packet.
func (*XnpQueryStatus) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (q *XnpQueryStatus) Source() NodeID { return q.Src }

func (q *XnpQueryStatus) appendPayload(b []byte) []byte {
	b = appendNodeID(b, q.Src)
	return append(b, q.ProgramID)
}

func (q *XnpQueryStatus) decodePayload(b []byte) error {
	r := payloadReader{b: b}
	q.Src = r.nodeID()
	q.ProgramID = r.u8()
	if !r.ok() {
		return fmt.Errorf("malformed xnp query payload (%d bytes)", len(b))
	}
	return nil
}

// XnpStatusComplete is the Seq value reporting "nothing missing".
const XnpStatusComplete uint16 = 0xFFFF

// XnpStatus reports the first packet Src is missing (or
// XnpStatusComplete).
type XnpStatus struct {
	Src       NodeID
	DestID    NodeID
	ProgramID uint8
	Seq       uint16
}

// Kind implements Packet.
func (*XnpStatus) Kind() Kind { return KindXnpStatus }

// Dest implements Packet.
func (s *XnpStatus) Dest() NodeID { return s.DestID }

// Source implements Packet.
func (s *XnpStatus) Source() NodeID { return s.Src }

func (s *XnpStatus) appendPayload(b []byte) []byte {
	b = appendNodeID(b, s.Src)
	b = appendNodeID(b, s.DestID)
	b = append(b, s.ProgramID)
	return appendU16(b, s.Seq)
}

func (s *XnpStatus) decodePayload(b []byte) error {
	r := payloadReader{b: b}
	s.Src = r.nodeID()
	s.DestID = r.nodeID()
	s.ProgramID = r.u8()
	s.Seq = r.u16()
	if !r.ok() {
		return fmt.Errorf("malformed xnp status payload (%d bytes)", len(b))
	}
	return nil
}
