package packet

import (
	"bytes"
	"testing"
)

// AppendEncode into a non-empty buffer appends exactly the bytes Encode
// produces, reusing the destination's capacity.
func TestAppendEncodeMatchesEncode(t *testing.T) {
	for _, p := range samplePackets() {
		want := Encode(p)
		prefix := []byte{0xde, 0xad}
		buf := make([]byte, 2, 128)
		copy(buf, prefix)
		got := AppendEncode(buf, p)
		if !bytes.Equal(got[:2], prefix) {
			t.Fatalf("%s: AppendEncode clobbered the prefix", p.Kind())
		}
		if !bytes.Equal(got[2:], want) {
			t.Fatalf("%s: AppendEncode = % x, want % x", p.Kind(), got[2:], want)
		}
		if &got[0] != &buf[0] {
			t.Fatalf("%s: AppendEncode reallocated despite capacity", p.Kind())
		}
	}
}

// DecodeTrusted round-trips frames identically to Decode, and skips
// only the CRC check: a corrupted CRC passes DecodeTrusted but a
// malformed structure still fails.
func TestDecodeTrusted(t *testing.T) {
	for _, p := range samplePackets() {
		frame := Encode(p)
		viaDecode, err := Decode(frame)
		if err != nil {
			t.Fatal(err)
		}
		viaTrusted, err := DecodeTrusted(frame)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(Encode(viaDecode), Encode(viaTrusted)) {
			t.Fatalf("%s: Decode and DecodeTrusted disagree", p.Kind())
		}

		bad := append([]byte(nil), frame...)
		bad[len(bad)-1] ^= 0xFF // break the CRC only
		if _, err := Decode(bad); err == nil {
			t.Fatalf("%s: Decode accepted a bad CRC", p.Kind())
		}
		if _, err := DecodeTrusted(bad); err != nil {
			t.Fatalf("%s: DecodeTrusted rejected a frame with bad CRC: %v", p.Kind(), err)
		}

		if _, err := DecodeTrusted(frame[:3]); err == nil {
			t.Fatalf("%s: DecodeTrusted accepted a truncated frame", p.Kind())
		}
	}
}

// crc16Reference is the original bit-at-a-time CCITT implementation the
// table-driven crc16 replaced.
func crc16Reference(data []byte) uint16 {
	var crc uint16 = 0xFFFF
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

func TestCRCTableMatchesBitwiseReference(t *testing.T) {
	inputs := [][]byte{
		nil,
		{0},
		{0xFF},
		[]byte("123456789"),
		bytes.Repeat([]byte{0xA5, 0x5A}, 100),
	}
	for seed := byte(0); seed < 32; seed++ {
		b := make([]byte, int(seed)*3+1)
		for i := range b {
			b[i] = seed*7 + byte(i)*13
		}
		inputs = append(inputs, b)
	}
	for _, in := range inputs {
		if got, want := crc16(in), crc16Reference(in); got != want {
			t.Fatalf("crc16(% x) = %#04x, want %#04x", in, got, want)
		}
	}
}
