package packet

import (
	"encoding/binary"
	"fmt"
)

// Node addresses on the wire.
//
// The classic TOS_Msg address is 16 bits, which caps a deployment at
// 65534 motes. The sparse radio geometry simulates deployments far past
// that, so addresses use an escape encoding: IDs below wideEscape keep
// the classic two-byte big-endian form (so every frame a sub-65534-node
// deployment produces is byte-identical to the 16-bit era), Broadcast
// keeps its classic 0xFFFF form, and anything else is the wideEscape
// sentinel followed by the full 32-bit ID.
const (
	// wideEscape is the 16-bit sentinel introducing a 32-bit address.
	wideEscape = 0xFFFE
	// bcastWire is Broadcast's classic 16-bit wire form.
	bcastWire = 0xFFFF
	// wideExtraBytes is what a wide address adds over the classic two.
	wideExtraBytes = 4
)

// nodeIDWireSize returns the encoded size of an address in bytes.
func nodeIDWireSize(id NodeID) int {
	if id < wideEscape || id == Broadcast {
		return 2
	}
	return 2 + wideExtraBytes
}

// appendNodeID encodes id onto b in the escape encoding above.
func appendNodeID(b []byte, id NodeID) []byte {
	switch {
	case id == Broadcast:
		return binary.BigEndian.AppendUint16(b, bcastWire)
	case id < wideEscape:
		return binary.BigEndian.AppendUint16(b, uint16(id))
	default:
		b = binary.BigEndian.AppendUint16(b, wideEscape)
		return binary.BigEndian.AppendUint32(b, uint32(id))
	}
}

// appendU16 encodes a big-endian 16-bit field.
func appendU16(b []byte, v uint16) []byte {
	return binary.BigEndian.AppendUint16(b, v)
}

// readNodeID decodes an address from the front of b, returning the ID
// and the number of bytes it occupied.
func readNodeID(b []byte) (NodeID, int, error) {
	if len(b) < 2 {
		return 0, 0, fmt.Errorf("address truncated (%d bytes)", len(b))
	}
	switch v := binary.BigEndian.Uint16(b); v {
	case bcastWire:
		return Broadcast, 2, nil
	case wideEscape:
		if len(b) < 2+wideExtraBytes {
			return 0, 0, fmt.Errorf("wide address truncated (%d bytes)", len(b))
		}
		return NodeID(binary.BigEndian.Uint32(b[2:])), 2 + wideExtraBytes, nil
	default:
		return NodeID(v), 2, nil
	}
}

// payloadReader walks a message payload left to right. A read past the
// end (or a malformed address) latches the failed flag and returns
// zeros, so codecs read all their fields unconditionally and check once
// at the end — exactly the shape a fixed-length check had, but tolerant
// of variable-width addresses.
type payloadReader struct {
	b      []byte
	off    int
	failed bool
}

func (r *payloadReader) nodeID() NodeID {
	id, n, err := readNodeID(r.b[r.off:])
	if err != nil {
		r.failed = true
		return 0
	}
	r.off += n
	return id
}

func (r *payloadReader) u8() uint8 {
	if r.off+1 > len(r.b) {
		r.failed = true
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *payloadReader) u16() uint16 {
	if r.off+2 > len(r.b) {
		r.failed = true
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

// rest consumes and returns everything left.
func (r *payloadReader) rest() []byte {
	v := r.b[r.off:]
	r.off = len(r.b)
	return v
}

// ok reports that every read succeeded and the payload was consumed
// exactly — the variable-width analogue of `len(b) != fixed`.
func (r *payloadReader) ok() bool { return !r.failed && r.off == len(r.b) }

// DecodeCache reuses one decoded message per kind across DecodeTrusted
// calls, including the payload buffers and bit vectors inside them, so
// steady-state frame delivery performs no allocation. The returned
// packet is valid only until the next Decode of the same kind: exactly
// the radio's contract, where handlers treat incoming packets as
// read-only and copy anything they retain at the storage boundary. The
// zero value is ready to use. Not safe for concurrent use.
type DecodeCache struct {
	byKind [KindGossipData + 1]Packet
}

// Decode parses a frame produced by Encode in this process (CRC
// skipped, like DecodeTrusted), reusing the cache's per-kind message.
func (c *DecodeCache) Decode(frame []byte) (Packet, error) {
	return decodeWith(c, frame, false)
}

func (c *DecodeCache) forKind(k Kind) (Packet, error) {
	if int(k) < len(c.byKind) {
		if p := c.byKind[k]; p != nil {
			return p, nil
		}
	}
	p, err := newByKind(k)
	if err != nil {
		return nil, err
	}
	c.byKind[k] = p
	return p, nil
}
